//===----------------------------------------------------------------------===//
///
/// \file
/// A preemptive round-robin green-thread scheduler built on one-shot
/// continuations (the paper's §4 "Multitasking" use case, made native).
///
/// This class is deliberately policy-only.  It owns the thread table, the
/// ready queue, the sleeper list and the channels, and it decides what runs
/// next — but it never touches the control stack.  The actual context
/// switches (capturing the running computation as a one-shot continuation,
/// reinstating another thread's) are performed by the VM, which calls in
/// here through a narrow interface:
///
///   VM suspends the running thread  -> suspendCurrent(...)
///   VM asks what to run next        -> pickNext()
///   VM transfers control            -> captureOneShot / invoke (src/core)
///
/// Because suspension uses captureOneShot and resumption uses the one-shot
/// invoke path, a steady-state context switch copies zero stack words: the
/// whole current window is encapsulated by pointer swap and reinstated the
/// same way.  tests/test_scheduler.cpp and bench/bench_scheduler.cpp assert
/// exactly that (WordsCopied stays flat while ContextSwitches climbs).
///
/// Each thread also carries the dynamic context that must not leak across
/// switches: the *winders* list (dynamic-wind) and the engine-timer
/// registers, mirroring what the Scheme-level %engine-timer-handler
/// documents.  Time for thread-sleep! is measured in context switches, not
/// wall clock, so every test and benchmark is deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SCHED_SCHEDULER_H
#define OSC_SCHED_SCHEDULER_H

#include "control/Prompt.h"
#include "object/Value.h"
#include "sched/Channel.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace osc {

class GCVisitor;

/// The per-computation VM state a context switch must swap besides the
/// control stack itself (which travels inside the captured continuation):
/// the *winders* global and the engine-timer registers.  Saved when a
/// computation is suspended, restored verbatim when it resumes.
struct SchedContext {
  Value Winders;             ///< Value of *winders* while suspended.
  Value Nursery;             ///< Value of *nursery* while suspended (the
                             ///< enclosing structured-concurrency scope,
                             ///< or #f).  Swapped exactly like *winders*.
  PromptTable Prompts;       ///< Active delimiters while suspended.
  int64_t Fuel = -1;         ///< Engine-timer ticks left; -1 disarmed.
  bool TimerExpired = false; ///< Pending unserviced expiry.
  Value TimerHandler;        ///< Armed engine handler, or Empty.
};

enum class ThreadState : uint8_t { Ready, Running, Blocked, Sleeping, Done };

/// Human-readable state name ("ready", "running", ...).
const char *threadStateName(ThreadState St);

class Scheduler {
public:
  /// One armed (with-deadline ...) extent on a thread's dynamic chain.
  /// Records live on the thread, innermost last; they are pushed/popped by
  /// the %deadline-push / %deadline-pop primitives from with-deadline's
  /// dynamic-wind, so they stay balanced under any one-shot escape (the
  /// unwind's after-thunks pop by Id, never by position).
  struct DeadlineRec {
    uint64_t Id;   ///< Unique handle %deadline-pop removes by.
    uint64_t Tick; ///< Absolute virtual tick at which the extent expires.
    Value Proc;    ///< Escape thunk: invokes the extent's one-shot k.
  };

  struct Thread {
    uint32_t Id = 0;
    ThreadState State = ThreadState::Ready;
    bool Started = false; ///< False until first dispatched (Thunk not yet run).
    Value Thunk;          ///< Start thunk; cleared on first dispatch.
    Value Resume; ///< One-shot continuation while suspended.  When the
                  ///< suspension point was the thread's own base frame the
                  ///< capture degenerates to the chain link — the shared
                  ///< thread-root guard — and "resuming" means returning
                  ///< Wake from the thread's root, i.e. exiting.
    Value Wake;   ///< Value the suspended operation resumes with.
    Value Result; ///< Exit value once Done.
    SchedContext Ctx;      ///< Dynamic context saved while suspended.
    int64_t SleepLeft = 0; ///< Remaining sleep, in context switches.
    std::vector<uint32_t> Joiners; ///< Threads blocked in (thread-join this).
    std::string PendingError; ///< Nonempty: raise this instead of resuming
                              ///< (e.g. the channel closed under a parked
                              ///< send, or a parked write hit EPIPE).
    ErrorKind PendingErrorKind =
        ErrorKind::Runtime; ///< Classification raised with PendingError.
    std::vector<DeadlineRec> Deadlines; ///< Armed with-deadline extents,
                                        ///< innermost last.
    uint64_t ParkSeq = 0; ///< Park generation: bumped per deadline-armed
                          ///< park so a stale reactor Timer waiter (its
                          ///< thread already woke) is recognized and
                          ///< discarded instead of fired.
    Value EscapeProc;     ///< Set when a deadline fired while parked: the
                          ///< dispatcher runs this thunk on a fresh chain
                          ///< instead of reinstating the poisoned Resume.
  };

  /// What the VM should transfer control to next.
  struct Next {
    enum Kind {
      Start,    ///< Run T's thunk on a fresh chain.
      Resume,   ///< Reinstate T's saved continuation with T's wake value.
      Finish,   ///< All threads done: resume the suspended main computation.
      Deadlock, ///< Nothing runnable but live threads remain blocked.
    } K;
    Thread *T = nullptr; ///< Valid for Start and Resume.
  };

  explicit Scheduler(Stats &S) : S(S) {}

  /// Points the scheduler at an event tracer (the owning VM's); null
  /// detaches.  Never owned.
  void setTrace(Trace *T) { Tr = T; }

  // --- Spawning and lookup --------------------------------------------------

  /// Creates a Ready thread that will run \p Thunk; returns its id.
  /// Threads may be spawned before a run or by running threads.
  uint32_t spawn(Value Thunk);
  Thread *lookup(int64_t Id) {
    if (Id < 0 || static_cast<size_t>(Id) >= Threads.size())
      return nullptr;
    return Threads[static_cast<size_t>(Id)].get();
  }
  Thread *current() { return CurrentId < 0 ? nullptr : lookup(CurrentId); }
  bool inThread() const { return CurrentId >= 0; }

  bool active() const { return Active; }
  int64_t interval() const { return Interval; }
  uint64_t completed() const { return CompletedThisRun; }
  uint32_t liveCount() const { return Live; }
  uint32_t blockedCount() const;
  size_t readyCount() const { return ReadyQ.size(); }
  size_t sleeperCount() const { return Sleepers.size(); }
  Value baseWinders() const { return BaseWinders; }
  Value mainK() const { return MainK; }
  SchedContext &mainContext() { return MainCtx; }

  // --- Run lifecycle --------------------------------------------------------

  /// Enters a run: \p MainContinuation is the suspended caller of
  /// scheduler-run, \p PreemptInterval the fuel per slice (<= 0 disables
  /// preemption), \p BaseW the winder list fresh threads start under.
  void beginRun(Value MainContinuation, int64_t PreemptInterval, Value BaseW);
  /// Leaves a completed run; the main continuation must already have been
  /// taken for reinstatement.  Thread records (and their results) survive
  /// so thread-join works after the run.
  void endRun();
  /// Tears down after an error left the run half-switched: every non-Done
  /// thread is dropped and all channel wait queues cleared.  Buffered
  /// channel data survives; values carried by parked senders do not.
  void abortRun();

  // --- Switching policy (called by the VM around control transfers) --------

  /// Parks the running thread as \p NewState with resumption state
  /// (\p K, \p Wake).  Ready threads go to the back of the run queue;
  /// Sleeping threads onto the sleeper list (SleepLeft must be set by the
  /// caller); Blocked threads are tracked only by whoever will wake them.
  void suspendCurrent(Value K, Value Wake, ThreadState NewState);
  /// Makes a Blocked or Sleeping thread runnable with \p WakeValue.
  void wake(Thread &T, Value WakeValue);
  /// Marks the current thread Done with \p Result and wakes its joiners.
  void finishCurrent(Value Result);
  /// Retires a *non-running* thread as Done with \p Result without ever
  /// resuming it: removes it from the ready queue or sleeper list (blocked
  /// threads are tracked only by their waker — the caller must have
  /// already detached them from channels and the reactor), drops its
  /// poisoned resume state and wakes its joiners with \p Result.  The
  /// nursery teardown path (VM::threadCancel) drives this.  Returns false
  /// when \p T is already Done or is the running thread.
  bool cancel(Thread &T, Value Result);
  /// Picks the next transfer and, for Start/Resume, marks that thread
  /// Running.  Each call ages sleepers by one tick; when only sleepers
  /// remain the clock fast-forwards to the nearest wake-up.
  Next pickNext();

  // --- Channels -------------------------------------------------------------

  uint32_t makeChannel(uint32_t Capacity);
  /// Removes \p Tid from every channel wait queue — called when a deadline
  /// fires for a channel-blocked thread, so no later send/recv/close can
  /// try to wake the already-escaped thread.
  void dropFromChannels(uint32_t Tid) {
    for (auto &C : Channels)
      if (C->removeWaiter(Tid))
        return; // A thread blocks on at most one channel.
  }
  Channel *channel(int64_t Id) {
    if (Id < 0 || static_cast<size_t>(Id) >= Channels.size())
      return nullptr;
    return Channels[static_cast<size_t>(Id)].get();
  }

  // --- GC -------------------------------------------------------------------

  /// Traced from VM::traceRoots (the scheduler is not its own provider).
  void traceRoots(GCVisitor &V);

private:
  void enqueueReady(Thread &T);
  /// Ages every sleeper by \p Ticks, moving the expired to the run queue in
  /// spawn order (deterministic).
  void ageSleepers(int64_t Ticks);

  Stats &S;
  Trace *Tr = nullptr;
  std::vector<std::unique_ptr<Thread>> Threads; ///< Index == thread id.
  std::deque<uint32_t> ReadyQ;
  std::vector<uint32_t> Sleepers;
  std::vector<std::unique_ptr<Channel>> Channels; ///< Index == channel id.

  bool Active = false;
  int64_t CurrentId = -1; ///< Running thread id, -1 when main runs.
  int64_t Interval = 0;
  uint32_t Live = 0; ///< Threads not yet Done.
  uint64_t CompletedThisRun = 0;
  Value MainK;       ///< Suspended scheduler-run caller.
  Value BaseWinders; ///< Winder list fresh threads start under.
  SchedContext MainCtx;
};

} // namespace osc

#endif // OSC_SCHED_SCHEDULER_H
