#include "sched/Scheduler.h"

#include "object/Heap.h"

#include <algorithm>
#include <cassert>

using namespace osc;

const char *osc::threadStateName(ThreadState St) {
  switch (St) {
  case ThreadState::Ready:
    return "ready";
  case ThreadState::Running:
    return "running";
  case ThreadState::Blocked:
    return "blocked";
  case ThreadState::Sleeping:
    return "sleeping";
  case ThreadState::Done:
    return "done";
  }
  return "?";
}

uint32_t Scheduler::spawn(Value Thunk) {
  auto T = std::make_unique<Thread>();
  T->Id = static_cast<uint32_t>(Threads.size());
  T->Thunk = Thunk;
  Thread &Ref = *T;
  Threads.push_back(std::move(T));
  Live += 1;
  S.ThreadsSpawned += 1;
  enqueueReady(Ref);
  return Ref.Id;
}

uint32_t Scheduler::blockedCount() const {
  uint32_t N = 0;
  for (const auto &T : Threads)
    if (T->State == ThreadState::Blocked)
      N += 1;
  return N;
}

void Scheduler::beginRun(Value MainContinuation, int64_t PreemptInterval,
                         Value BaseW) {
  assert(!Active && "scheduler re-entered");
  Active = true;
  CurrentId = -1;
  Interval = PreemptInterval;
  CompletedThisRun = 0;
  MainK = MainContinuation;
  BaseWinders = BaseW;
}

void Scheduler::endRun() {
  Active = false;
  CurrentId = -1;
  MainK = Value();
  BaseWinders = Value();
  MainCtx = SchedContext();
}

void Scheduler::abortRun() {
  // Every thread that has not finished is in an unrecoverable state (its
  // one-shot resume point may be gone); drop them all rather than resume
  // into garbage.  Done threads keep their results for thread-join.
  for (auto &T : Threads) {
    if (T->State == ThreadState::Done)
      continue;
    T->State = ThreadState::Done;
    T->Started = true;
    T->Thunk = Value();
    T->Resume = Value();
    T->Wake = Value();
    T->Result = Value::unspecified();
    T->Ctx = SchedContext();
    T->Joiners.clear();
    T->PendingError.clear();
    T->PendingErrorKind = ErrorKind::Runtime;
    T->Deadlines.clear();
    T->EscapeProc = Value();
  }
  Live = 0;
  ReadyQ.clear();
  Sleepers.clear();
  for (auto &C : Channels)
    C->clearWaiters();
  endRun();
}

void Scheduler::enqueueReady(Thread &T) {
  T.State = ThreadState::Ready;
  ReadyQ.push_back(T.Id);
  S.RunQueuePeak = std::max<uint64_t>(S.RunQueuePeak, ReadyQ.size());
}

void Scheduler::suspendCurrent(Value K, Value Wake, ThreadState NewState) {
  Thread *T = current();
  assert(T && T->State == ThreadState::Running && "no running thread");
  T->Resume = K;
  T->Wake = Wake;
  CurrentId = -1;
  OSC_TRACE(Tr, TraceEvent::SchedBlock, static_cast<uint64_t>(NewState),
            T->Id);
  switch (NewState) {
  case ThreadState::Ready:
    enqueueReady(*T);
    break;
  case ThreadState::Sleeping:
    T->State = ThreadState::Sleeping;
    Sleepers.push_back(T->Id);
    break;
  case ThreadState::Blocked:
    T->State = ThreadState::Blocked;
    break;
  default:
    assert(false && "invalid suspension state");
  }
}

void Scheduler::wake(Thread &T, Value WakeValue) {
  assert((T.State == ThreadState::Blocked ||
          T.State == ThreadState::Sleeping) &&
         "waking a thread that is not waiting");
  if (T.State == ThreadState::Sleeping)
    Sleepers.erase(std::find(Sleepers.begin(), Sleepers.end(), T.Id));
  T.Wake = WakeValue;
  OSC_TRACE(Tr, TraceEvent::SchedWake, T.Id);
  enqueueReady(T);
}

void Scheduler::finishCurrent(Value Result) {
  Thread *T = current();
  assert(T && "no current thread to finish");
  CurrentId = -1;
  T->State = ThreadState::Done;
  T->Thunk = Value();
  T->Resume = Value();
  T->Wake = Value();
  T->Ctx = SchedContext();
  T->Result = Result;
  T->Deadlines.clear();
  T->EscapeProc = Value();
  assert(Live > 0);
  Live -= 1;
  CompletedThisRun += 1;
  // Joiners resume with the finished thread's result.
  for (uint32_t J : T->Joiners) {
    Thread *W = lookup(J);
    if (W && W->State == ThreadState::Blocked)
      wake(*W, Result);
  }
  T->Joiners.clear();
}

bool Scheduler::cancel(Thread &T, Value Result) {
  if (T.State == ThreadState::Done || T.State == ThreadState::Running)
    return false;
  switch (T.State) {
  case ThreadState::Ready:
    // Either parked voluntarily or never started; drop its queue slot so
    // the dispatcher cannot pick the retired thread.
    ReadyQ.erase(std::find(ReadyQ.begin(), ReadyQ.end(), T.Id));
    break;
  case ThreadState::Sleeping:
    Sleepers.erase(std::find(Sleepers.begin(), Sleepers.end(), T.Id));
    break;
  case ThreadState::Blocked:
    // Tracked only by whoever would wake it; the caller already detached
    // it from channels and the reactor, so nobody holds its id now.
    break;
  default:
    break;
  }
  OSC_TRACE(Tr, TraceEvent::NurseryCancel, T.Id);
  T.State = ThreadState::Done;
  T.Started = true;
  T.Thunk = Value();
  T.Resume = Value(); // The one-shot resume point is poisoned, never run.
  T.Wake = Value();
  T.Ctx = SchedContext();
  T.Result = Result;
  T.PendingError.clear();
  T.PendingErrorKind = ErrorKind::Runtime;
  T.Deadlines.clear();
  T.EscapeProc = Value();
  assert(Live > 0);
  Live -= 1;
  CompletedThisRun += 1;
  S.NurseryCancels += 1;
  // Joiners observe the cancellation result, exactly as for a normal exit.
  for (uint32_t J : T.Joiners) {
    Thread *W = lookup(J);
    if (W && W->State == ThreadState::Blocked)
      wake(*W, Result);
  }
  T.Joiners.clear();
  return true;
}

void Scheduler::ageSleepers(int64_t Ticks) {
  if (Sleepers.empty())
    return;
  // Expired sleepers join the run queue in spawn order so wake-up order is
  // deterministic regardless of when each went to sleep.
  std::vector<uint32_t> Expired;
  for (size_t I = 0; I != Sleepers.size();) {
    Thread &T = *Threads[Sleepers[I]];
    T.SleepLeft -= Ticks;
    if (T.SleepLeft <= 0) {
      Expired.push_back(T.Id);
      Sleepers.erase(Sleepers.begin() + static_cast<ptrdiff_t>(I));
    } else {
      ++I;
    }
  }
  std::sort(Expired.begin(), Expired.end());
  for (uint32_t Id : Expired) {
    Thread &T = *Threads[Id];
    T.SleepLeft = 0;
    T.Wake = Value::unspecified();
    enqueueReady(T);
  }
}

Scheduler::Next Scheduler::pickNext() {
  assert(Active && CurrentId < 0 && "pickNext with a thread still running");
  // The sleep clock ticks once per dispatch; with nothing else runnable it
  // fast-forwards to the nearest wake-up instead of spinning.
  ageSleepers(1);
  if (ReadyQ.empty() && !Sleepers.empty()) {
    int64_t Nearest = Threads[Sleepers.front()]->SleepLeft;
    for (uint32_t Id : Sleepers)
      Nearest = std::min(Nearest, Threads[Id]->SleepLeft);
    ageSleepers(Nearest);
  }
  if (!ReadyQ.empty()) {
    Thread &T = *Threads[ReadyQ.front()];
    ReadyQ.pop_front();
    T.State = ThreadState::Running;
    CurrentId = T.Id;
    OSC_TRACE(Tr, TraceEvent::SchedSwitch, T.Started ? 1 : 0, T.Id);
    return {T.Started ? Next::Resume : Next::Start, &T};
  }
  if (Live == 0) {
    OSC_TRACE(Tr, TraceEvent::SchedSwitch, 2);
    return {Next::Finish, nullptr};
  }
  return {Next::Deadlock, nullptr};
}

uint32_t Scheduler::makeChannel(uint32_t Capacity) {
  uint32_t Id = static_cast<uint32_t>(Channels.size());
  Channels.push_back(std::make_unique<Channel>(Id, Capacity));
  return Id;
}

void Scheduler::traceRoots(GCVisitor &V) {
  for (auto &T : Threads) {
    V.visit(T->Thunk);
    V.visit(T->Resume);
    V.visit(T->Wake);
    V.visit(T->Result);
    V.visit(T->Ctx.Winders);
    V.visit(T->Ctx.Nursery);
    T->Ctx.Prompts.traceRoots(V);
    V.visit(T->Ctx.TimerHandler);
    V.visit(T->EscapeProc);
    for (DeadlineRec &D : T->Deadlines)
      V.visit(D.Proc);
  }
  V.visit(MainK);
  V.visit(BaseWinders);
  V.visit(MainCtx.Winders);
  V.visit(MainCtx.Nursery);
  MainCtx.Prompts.traceRoots(V);
  V.visit(MainCtx.TimerHandler);
  for (auto &C : Channels)
    C->traceRoots(V);
}
