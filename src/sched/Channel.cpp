#include "sched/Channel.h"

#include "object/Heap.h"

using namespace osc;

void Channel::traceRoots(GCVisitor &V) {
  for (Value &B : Buf)
    V.visit(B);
  for (PendingSend &P : WaitingSend)
    V.visit(P.V);
}
