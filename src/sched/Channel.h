//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded FIFO channels (CSP-style) for the green-thread scheduler.
///
/// A channel owns only data: a buffer of at most Capacity values plus two
/// wait queues of thread ids.  Capacity 0 makes it a rendezvous channel —
/// every send waits for a matching receive.  Deciding *who* runs next is the
/// Scheduler's job and performing the control transfer is the VM's; the
/// channel just answers "can this operation complete now, and whom does it
/// wake?".  That split keeps the channel trivially testable and keeps all
/// continuation handling in one place (the VM).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SCHED_CHANNEL_H
#define OSC_SCHED_CHANNEL_H

#include "object/Value.h"

#include <cstddef>
#include <cstdint>
#include <deque>

namespace osc {

class GCVisitor;

class Channel {
public:
  Channel(uint32_t Id, uint32_t Capacity) : Id(Id), Cap(Capacity) {}

  uint32_t id() const { return Id; }
  uint32_t capacity() const { return Cap; }
  size_t buffered() const { return Buf.size(); }
  size_t waitingReceivers() const { return WaitingRecv.size(); }
  size_t waitingSenders() const { return WaitingSend.size(); }
  bool closed() const { return Closed; }

  struct PendingSend {
    uint32_t Tid;
    Value V;
  };

  /// Everyone parked at the moment of close, in park order.  The VM wakes
  /// receivers with the EOF sentinel and senders with a trappable error;
  /// the channel itself stays Value-policy-free.
  struct CloseResult {
    std::deque<uint32_t> Receivers;
    std::deque<PendingSend> Senders;
  };

  /// Marks the channel closed and hands back every parked waiter.  Buffered
  /// values remain receivable (receives drain the buffer, then see EOF);
  /// further sends must be rejected by the caller via closed().
  CloseResult close() {
    Closed = true;
    CloseResult R{std::move(WaitingRecv), std::move(WaitingSend)};
    WaitingRecv.clear();
    WaitingSend.clear();
    return R;
  }

  /// Outcome of the non-blocking half of a send.
  struct SendResult {
    enum Kind {
      Delivered, ///< Handed directly to WokenReceiver; wake it with V.
      Buffered,  ///< Stored in the buffer; nobody to wake.
      MustBlock, ///< Buffer full and no receiver waiting.
    } K;
    uint32_t WokenReceiver = 0;
  };

  /// Attempts to send \p V without blocking.  A waiting receiver always
  /// takes priority over the buffer so a value never queues behind an
  /// already-parked consumer.
  SendResult trySend(Value V) {
    if (!WaitingRecv.empty()) {
      uint32_t R = WaitingRecv.front();
      WaitingRecv.pop_front();
      return {SendResult::Delivered, R};
    }
    if (Buf.size() < Cap) {
      Buf.push_back(V);
      return {SendResult::Buffered, 0};
    }
    return {SendResult::MustBlock, 0};
  }

  /// Parks \p Tid as a blocked sender carrying \p V.  The value travels
  /// with the waiter so FIFO order is preserved when receivers drain the
  /// buffer and refill it from the send queue.
  void blockSender(uint32_t Tid, Value V) { WaitingSend.push_back({Tid, V}); }

  /// Outcome of the non-blocking half of a receive.
  struct RecvResult {
    enum Kind {
      Got,       ///< V holds the received value.
      MustBlock, ///< Channel empty and no sender waiting.
    } K;
    Value V;
    bool WakeSender = false;  ///< A parked sender's value was accepted;
                              ///< wake WokenSender (its send completed).
    uint32_t WokenSender = 0;
  };

  /// Attempts to receive without blocking.  Draining one buffer slot pulls
  /// the oldest parked sender's value into the buffer (capacity permitting
  /// by construction), so message order is exactly send-completion order.
  RecvResult tryRecv() {
    if (!Buf.empty()) {
      RecvResult R{RecvResult::Got, Buf.front(), false, 0};
      Buf.pop_front();
      if (!WaitingSend.empty()) {
        PendingSend P = WaitingSend.front();
        WaitingSend.pop_front();
        Buf.push_back(P.V);
        R.WakeSender = true;
        R.WokenSender = P.Tid;
      }
      return R;
    }
    if (!WaitingSend.empty()) { // rendezvous (Cap == 0): take directly
      PendingSend P = WaitingSend.front();
      WaitingSend.pop_front();
      return {RecvResult::Got, P.V, true, P.Tid};
    }
    return {RecvResult::MustBlock, Value(), false, 0};
  }

  void blockReceiver(uint32_t Tid) { WaitingRecv.push_back(Tid); }

  /// Removes \p Tid from both wait queues (its deadline fired while it was
  /// parked here, so nothing may deliver to or wake it anymore).  Returns
  /// true when found; a removed sender's undelivered value is dropped with
  /// it.
  bool removeWaiter(uint32_t Tid) {
    for (auto It = WaitingRecv.begin(); It != WaitingRecv.end(); ++It)
      if (*It == Tid) {
        WaitingRecv.erase(It);
        return true;
      }
    for (auto It = WaitingSend.begin(); It != WaitingSend.end(); ++It)
      if (It->Tid == Tid) {
        WaitingSend.erase(It);
        return true;
      }
    return false;
  }

  /// Drops all parked waiters (scheduler abort after an error).  Buffered
  /// values survive; values carried by aborted senders are lost with them.
  void clearWaiters() {
    WaitingRecv.clear();
    WaitingSend.clear();
  }

  void traceRoots(GCVisitor &V);

private:
  uint32_t Id;
  uint32_t Cap;
  bool Closed = false;
  std::deque<Value> Buf;
  std::deque<uint32_t> WaitingRecv;
  std::deque<PendingSend> WaitingSend;
};

} // namespace osc

#endif // OSC_SCHED_CHANNEL_H
