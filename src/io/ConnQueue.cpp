#include "io/ConnQueue.h"

#include <unistd.h>

using namespace osc;

ConnQueue::~ConnQueue() {
  for (int Fd : Fds)
    ::close(Fd);
}

bool ConnQueue::push(int Fd) {
  std::lock_guard<std::mutex> L(Mu);
  if (IsClosed)
    return false;
  Fds.push_back(Fd);
  return true;
}

ConnQueue::Pop ConnQueue::pop() {
  std::lock_guard<std::mutex> L(Mu);
  if (!Fds.empty()) {
    Pop Out{Fds.front(), false};
    Fds.pop_front();
    return Out;
  }
  return Pop{-1, IsClosed};
}

void ConnQueue::close() {
  std::lock_guard<std::mutex> L(Mu);
  IsClosed = true;
}

bool ConnQueue::closed() const {
  std::lock_guard<std::mutex> L(Mu);
  return IsClosed;
}

size_t ConnQueue::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Fds.size();
}
