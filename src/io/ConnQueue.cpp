#include "io/ConnQueue.h"

#include <unistd.h>

using namespace osc;

ConnQueue::~ConnQueue() {
  // Destruction is single-threaded (the pool joins every producer and the
  // consumer first), so plain walks are safe here.
  for (int Fd : Drained)
    ::close(Fd);
  Node *N = Head.load(std::memory_order_relaxed);
  while (N) {
    Node *Next = N->Next;
    ::close(N->Fd);
    delete N;
    N = Next;
  }
}

bool ConnQueue::push(int Fd) {
  if (IsClosed.load(std::memory_order_acquire))
    return false;
  Node *N = new Node{nullptr, Fd};
  N->Next = Head.load(std::memory_order_relaxed);
  while (!Head.compare_exchange_weak(N->Next, N, std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
  Count.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ConnQueue::Pop ConnQueue::pop() {
  if (Drained.empty()) {
    // Swap the whole pending chain out in one exchange, then reverse the
    // LIFO chain into the private buffer so pops come out FIFO.  Oldest
    // push is deepest in the chain, so walking it back-to-front lands it
    // at the *end* of Drained — pops take from the back.
    Node *Chain = Head.exchange(nullptr, std::memory_order_acquire);
    while (Chain) {
      Drained.push_back(Chain->Fd);
      Node *Next = Chain->Next;
      delete Chain;
      Chain = Next;
    }
  }
  if (!Drained.empty()) {
    Pop Out{Drained.back(), false};
    Drained.pop_back();
    Count.fetch_sub(1, std::memory_order_relaxed);
    return Out;
  }
  // Empty: closed only counts once the shared chain was seen empty too
  // (the exchange above), so close-then-drain ordering holds.
  return Pop{-1, IsClosed.load(std::memory_order_acquire)};
}
