//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-thread connection handoff queue for the serving pool (src/serve).
///
/// The pool's accept thread pushes accepted fds; one worker VM pops them
/// from its `io-take-conn` primitive.  This is the only mutex in the I/O
/// path and it guards a few pointers per connection — every per-request
/// park/wake stays lock-free on the worker's own thread.
///
/// Close semantics mirror Channel's channel-close!: after close() no new
/// fd is accepted, but fds already queued drain first; pop() reports
/// Closed only once the queue is empty.  Fds still queued at destruction
/// are close(2)d — the queue owns an fd from push() until pop() hands it
/// over.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_IO_CONNQUEUE_H
#define OSC_IO_CONNQUEUE_H

#include <cstddef>
#include <deque>
#include <mutex>

namespace osc {

class ConnQueue {
public:
  /// Outcome of one pop attempt.
  struct Pop {
    int Fd = -1;         ///< Valid (>= 0) when a connection was dequeued.
    bool Closed = false; ///< Queue closed *and* drained; no more ever.
  };

  ConnQueue() = default;
  ~ConnQueue();
  ConnQueue(const ConnQueue &) = delete;
  ConnQueue &operator=(const ConnQueue &) = delete;

  /// Enqueues a connection fd.  Returns false (without taking ownership)
  /// when the queue is already closed.
  bool push(int Fd);

  /// Dequeues the oldest connection if any; otherwise reports whether the
  /// queue is closed-and-drained ({-1, true}) or merely empty ({-1, false}).
  Pop pop();

  /// Stops accepting new fds.  Queued fds still drain via pop().
  void close();

  bool closed() const;
  size_t size() const;

private:
  mutable std::mutex Mu;
  std::deque<int> Fds;
  bool IsClosed = false;
};

} // namespace osc

#endif // OSC_IO_CONNQUEUE_H
