//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free cross-thread connection handoff queue for the serving pool
/// (src/serve).
///
/// Producers (the pool's acceptor thread in CentralAcceptor mode, any
/// host thread calling Pool::handoff) push accepted fds; exactly one
/// consumer — the worker VM's `io-take-conn` primitive — pops them.  The
/// queue is an MPSC Treiber stack with consumer-side batch reversal:
/// push is one compare-exchange on the head pointer, pop swaps the whole
/// pending chain out with a single exchange and drains it in FIFO order
/// from a consumer-private buffer.  No mutex anywhere, so the acceptor
/// never blocks behind a shard and a shard never blocks behind the
/// acceptor; per-request park/wake traffic stays entirely on the
/// worker's own thread.
///
/// Close semantics mirror Channel's channel-close!: after close() no new
/// fd is accepted, but fds already queued drain first; pop() reports
/// Closed only once both the shared chain and the consumer buffer are
/// empty.  Fds still queued at destruction are close(2)d — the queue
/// owns an fd from push() until pop() hands it over.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_IO_CONNQUEUE_H
#define OSC_IO_CONNQUEUE_H

#include <atomic>
#include <cstddef>
#include <vector>

namespace osc {

class ConnQueue {
public:
  /// Outcome of one pop attempt.
  struct Pop {
    int Fd = -1;         ///< Valid (>= 0) when a connection was dequeued.
    bool Closed = false; ///< Queue closed *and* drained; no more ever.
  };

  ConnQueue() = default;
  ~ConnQueue();
  ConnQueue(const ConnQueue &) = delete;
  ConnQueue &operator=(const ConnQueue &) = delete;

  /// Enqueues a connection fd.  Any thread.  Returns false (without
  /// taking ownership) when the queue is already closed.
  bool push(int Fd);

  /// Dequeues the oldest connection if any; otherwise reports whether the
  /// queue is closed-and-drained ({-1, true}) or merely empty ({-1, false}).
  /// Single consumer: only the owning worker thread may call this.
  Pop pop();

  /// Stops accepting new fds.  Queued fds still drain via pop().
  void close() { IsClosed.store(true, std::memory_order_release); }

  bool closed() const { return IsClosed.load(std::memory_order_acquire); }

  /// Approximate depth (pushes minus pops), readable from any thread —
  /// the acceptor's load signal.  Transient staleness only ever costs a
  /// slightly imperfect placement.
  size_t size() const { return Count.load(std::memory_order_relaxed); }

private:
  struct Node {
    Node *Next = nullptr;
    int Fd = -1;
  };

  std::atomic<Node *> Head{nullptr}; ///< LIFO chain of un-drained pushes.
  std::atomic<bool> IsClosed{false};
  std::atomic<size_t> Count{0};
  std::vector<int> Drained; ///< Consumer-private FIFO buffer (oldest last).
};

} // namespace osc

#endif // OSC_IO_CONNQUEUE_H
