//===----------------------------------------------------------------------===//
///
/// \file
/// Non-blocking file-descriptor wrappers for the I/O reactor (src/io).
///
/// A Port owns one non-blocking fd — one end of a pipe or socketpair, a
/// connected loopback TCP stream, or a listening socket — plus the line
/// buffers the Scheme-visible protocol works in.  Ports expose only the
/// *non-blocking halves* of each operation (fill the input buffer, flush
/// the output buffer, accept one connection): whether a would-block result
/// parks the calling green thread is the VM's decision, exactly as
/// Channel::trySend / tryRecv leave blocking policy to the scheduler glue.
///
/// A port never touches a Value and never allocates on the Scheme heap, so
/// the whole layer is testable without an interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_IO_PORT_H
#define OSC_IO_PORT_H

#include <cstdint>
#include <string>
#include <string_view>

namespace osc {

class Port {
public:
  enum class Kind : uint8_t {
    Stream,   ///< Bidirectional byte stream (pipe end, socketpair, TCP).
    Listener, ///< Listening loopback TCP socket; only acceptConn applies.
    Wakeup,   ///< Read end of the reactor's cross-thread self-pipe; becomes
              ///< readable when another thread calls Reactor::notify().
  };

  /// Outcome of one non-blocking attempt.
  enum class Io : uint8_t {
    Progress,   ///< Bytes moved (or nothing was pending).
    WouldBlock, ///< The fd is not ready; retry on readiness.
    Eof,        ///< Peer closed its end (reads only).
    Error,      ///< Hard failure; lastError() has the message.
  };

  /// Tag for the adopting constructor below.
  struct AdoptFd {};

  /// Wraps an fd the src/io factories created (already non-blocking).
  Port(uint32_t Id, int Fd, Kind K) : Id(Id), Fd(Fd), K(K) {}

  /// Adopts a live fd that originated *outside* src/io — e.g. a connection
  /// accepted on another thread and handed to this reactor.  Takes
  /// ownership and switches the fd to non-blocking (every Port invariant
  /// assumes O_NONBLOCK; an inherited blocking fd would stall the VM).
  Port(uint32_t Id, int Fd, Kind K, AdoptFd);

  ~Port() { closeNow(); }
  Port(const Port &) = delete;
  Port &operator=(const Port &) = delete;

  uint32_t id() const { return Id; }
  int fd() const { return Fd; }
  Kind kind() const { return K; }
  bool closed() const { return Fd < 0; }
  bool atEof() const { return SawEof; }
  const std::string &lastError() const { return Err; }

  /// Bound TCP port for listeners (0 otherwise); recorded by the creator.
  uint16_t tcpPort() const { return TcpPort; }
  void setTcpPort(uint16_t P) { TcpPort = P; }

  // --- Buffered line input ---------------------------------------------------

  /// Takes one complete line (without the terminator; a trailing \r is also
  /// stripped) out of the input buffer.  After EOF or close the unterminated
  /// tail, if any, counts as the final line.  Returns false when no line is
  /// available yet.
  bool takeLine(std::string &Out);

  /// Reads everything currently available on the fd into the input buffer.
  /// \p BytesIn is incremented by the bytes moved.
  Io fillInput(uint64_t &BytesIn);

  size_t inputBuffered() const { return InBuf.size(); }

  // --- Buffered output -------------------------------------------------------

  /// Appends to the output buffer.  Returns false — and queues nothing —
  /// when the append would push the buffered-but-unsent output past the
  /// cap (see setOutputCap): the caller must treat the port as a hopeless
  /// slow client and drop it rather than buffer without bound.
  bool queueOutput(std::string_view S) {
    if (OutCap && OutBuf.size() + S.size() > OutCap)
      return false;
    OutBuf.append(S);
    return true;
  }
  bool outputPending() const { return !OutBuf.empty(); }

  /// Hard cap in bytes on buffered output; 0 disables.
  void setOutputCap(size_t Bytes) { OutCap = Bytes; }
  size_t outputCap() const { return OutCap; }

  // --- Per-port deadline -----------------------------------------------------
  //
  // Slow-client defense: when nonzero, every park on this port is armed
  // with `now + DeadlineTicks` on the reactor's virtual tick clock, and a
  // park that expires drops the connection (io-drop) instead of waiting
  // forever.  Set from Scheme via io-set-deadline!.

  void setDeadlineTicks(uint64_t T) { DeadlineTicks = T; }
  uint64_t deadlineTicks() const { return DeadlineTicks; }

  /// Writes as much of the output buffer as the fd accepts right now.
  /// \p BytesOut is incremented by the bytes moved.
  Io flushOutput(uint64_t &BytesOut);

  // --- Listener --------------------------------------------------------------

  /// Accepts one pending connection.  Returns the new non-blocking fd,
  /// -1 when none is pending (would block), -2 on a hard error.
  int acceptConn();

  /// Flushes best-effort, then closes the fd.  Idempotent; buffered input
  /// stays readable through takeLine (close behaves like EOF).
  void closeNow();

private:
  uint32_t Id;
  int Fd;
  Kind K;
  bool SawEof = false;
  uint16_t TcpPort = 0;
  std::string InBuf;
  std::string OutBuf;
  std::string Err;
  size_t OutCap = 0;           ///< Output-buffer hard cap; 0 = unbounded.
  uint64_t DeadlineTicks = 0;  ///< Per-park deadline distance; 0 = none.
};

// --- fd factories (all loopback/local; every fd comes back non-blocking) -----

/// pipe(2).  Returns false and sets \p Err on failure.
bool openPipePair(int &ReadFd, int &WriteFd, std::string &Err);

/// Puts an existing fd into non-blocking mode.
bool makeNonBlocking(int Fd);

/// socketpair(2), AF_UNIX stream: both ends bidirectional.
bool openSocketPairFds(int &A, int &B, std::string &Err);

/// Listening TCP socket bound to 127.0.0.1:\p Port (0 picks an ephemeral
/// port; \p Port is updated to the bound one).  Returns the fd or -1.
/// With \p ReusePort true the socket is bound with SO_REUSEPORT so several
/// listeners (one per pool shard) can share one port and let the kernel
/// load-balance accepts across them; if the option cannot be set the call
/// fails rather than silently binding exclusively.
int openListener(uint16_t &Port, int Backlog, std::string &Err,
                 bool ReusePort = false);

/// *Blocking* loopback TCP connect — the host-side client half used by
/// tests and benchmarks, never by the VM.  Returns the fd or -1.
int connectLoopback(uint16_t Port, std::string &Err);

/// Blocks up to \p TimeoutMs for \p Fd to become readable (\p ForWrite
/// false) or writable.  Used for I/O performed by the main computation,
/// where there is no scheduler to park in.  Negative timeout waits forever.
bool pollOneFd(int Fd, bool ForWrite, int TimeoutMs);

} // namespace osc

#endif // OSC_IO_PORT_H
