//===----------------------------------------------------------------------===//
///
/// \file
/// The fd-readiness reactor: poll(2) + a deterministic waiter registry.
///
/// The reactor is to I/O what Channel is to message passing: it owns only
/// data — the port table and the list of parked operations — and answers
/// one question, "which parked operations can make progress now?".  Policy
/// (who runs next) stays in the Scheduler and every control transfer stays
/// in the VM: when a read/write/accept would block, the VM parks the green
/// thread with captureOneShot and registers a PendingIo here; when the run
/// queue drains, the VM asks takeReady() and wakes the returned threads —
/// reinstating each continuation with zero words copied.
///
/// Determinism: poll(2) readiness arrives as an unordered fd set, so one
/// poll batch is sorted by (port id, registration seq) before it is handed
/// back.  Port ids are allocated in program order (unlike raw fd numbers,
/// which depend on what the OS recycles), so two runs of the same program
/// against the same peer behavior wake threads in the same order and
/// produce byte-identical IoWait/IoReady traces.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_IO_REACTOR_H
#define OSC_IO_REACTOR_H

#include "io/Port.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace osc {

/// What a parked thread is waiting to finish.
enum class IoOp : uint8_t {
  ReadLine, ///< io-read-line: a full line (or EOF) in the input buffer.
  Write,    ///< io-write: the output buffer fully flushed.
  Accept,   ///< io-accept: one pending connection.
  TakeConn, ///< io-take-conn: a handed-off fd in the pool's ConnQueue;
            ///< parks on the wakeup port, not on a connection fd.
};

const char *ioOpName(IoOp Op);

/// One parked operation: which thread, which port, what it waits for, and
/// the registration sequence number that breaks wake-order ties.  A re-park
/// (readiness arrived but the operation still cannot finish, e.g. a partial
/// line) keeps its original Seq so waiters on one port stay FIFO.
struct PendingIo {
  uint64_t Seq;
  uint32_t Tid;
  uint32_t PortId;
  IoOp Op;
};

class Reactor {
public:
  /// Ignores SIGPIPE process-wide (once): broken-pipe writes must surface
  /// as EPIPE errors on the port, not kill the host.
  Reactor();
  ~Reactor();
  Reactor(const Reactor &) = delete;
  Reactor &operator=(const Reactor &) = delete;

  // --- Port table (fixnum ids, like threads and channels) -------------------

  uint32_t addPort(int Fd, Port::Kind K);

  /// Adopts an fd created outside src/io (switched to non-blocking; see
  /// Port's adopting constructor) into the port table.
  uint32_t addAdoptedPort(int Fd, Port::Kind K);
  Port *port(int64_t Id) {
    if (Id < 0 || static_cast<size_t>(Id) >= Ports.size())
      return nullptr;
    return Ports[static_cast<size_t>(Id)].get();
  }
  size_t portCount() const { return Ports.size(); }

  // --- Waiter registry -------------------------------------------------------

  /// Registers a fresh parked operation (new Seq).
  void park(uint32_t Tid, uint32_t PortId, IoOp Op);
  /// Re-registers \p P unchanged (original Seq) after a readiness event
  /// that did not complete the operation.
  void repark(const PendingIo &P) { Waiters.push_back(P); }
  size_t waiterCount() const { return Waiters.size(); }

  /// True when at least one parked operation is an \p Op.
  bool hasWaiter(IoOp Op) const;

  /// poll(2)s the waiters' fds for up to \p TimeoutMs (negative = forever)
  /// and removes-and-returns every waiter whose fd is ready, sorted by
  /// (port id, seq).  Empty result means the poll timed out (or there was
  /// nothing to wait for).  Waiters on already-closed ports are always
  /// ready (they complete with EOF/error).
  std::vector<PendingIo> takeReady(int TimeoutMs);

  /// Removes-and-returns every waiter parked on \p PortId, in Seq order —
  /// io-close uses this to wake them before the fd goes away.
  std::vector<PendingIo> takeWaitersFor(uint32_t PortId);

  /// Drops all waiters (scheduler abort; parked threads are gone).
  void clearWaiters() { Waiters.clear(); }

  // --- Cross-thread wakeup (self-pipe) --------------------------------------
  //
  // A reactor normally belongs entirely to one VM thread; poll(2) only
  // returns when one of *its own* fds goes ready.  The serving pool needs
  // to hand work to a worker blocked in poll, so the reactor can own a
  // self-pipe: the read end sits in the port table as a Kind::Wakeup port
  // (pollable and parkable like any other), and notify() — the ONLY
  // Reactor entry point that is safe from other threads — makes it
  // readable by writing one byte to the write end.

  /// Creates the self-pipe and its Wakeup port.  Idempotent.  Returns
  /// false and sets \p Err on failure.
  bool enableWakeup(std::string &Err);

  /// Thread-safe: makes the wakeup port readable.  One byte per call; a
  /// full pipe (EAGAIN) is fine — the port is already readable.
  void notify();

  /// Reads and discards everything buffered in the self-pipe.  Must be
  /// called from the reactor's own thread *before* checking the condition
  /// the notification advertised (drain-then-check, so a notify landing
  /// after the check is never lost).
  void drainWakeup();

  /// Port id of the Wakeup port, or -1 when enableWakeup was never called.
  int64_t wakeupPortId() const { return WakePortId; }

private:
  std::vector<std::unique_ptr<Port>> Ports; ///< Index == port id.
  std::vector<PendingIo> Waiters;
  uint64_t NextSeq = 0;
  int64_t WakePortId = -1; ///< Index of the Wakeup port, -1 if disabled.
  int WakeWriteFd = -1;    ///< Write end of the self-pipe (reactor-owned).
};

} // namespace osc

#endif // OSC_IO_REACTOR_H
