//===----------------------------------------------------------------------===//
///
/// \file
/// The fd-readiness reactor: poll(2) + a deterministic waiter registry.
///
/// The reactor is to I/O what Channel is to message passing: it owns only
/// data — the port table and the list of parked operations — and answers
/// one question, "which parked operations can make progress now?".  Policy
/// (who runs next) stays in the Scheduler and every control transfer stays
/// in the VM: when a read/write/accept would block, the VM parks the green
/// thread with captureOneShot and registers a PendingIo here; when the run
/// queue drains, the VM asks takeReady() and wakes the returned threads —
/// reinstating each continuation with zero words copied.
///
/// Determinism: poll(2) readiness arrives as an unordered fd set, so one
/// poll batch is sorted by (port id, registration seq) before it is handed
/// back.  Port ids are allocated in program order (unlike raw fd numbers,
/// which depend on what the OS recycles), so two runs of the same program
/// against the same peer behavior wake threads in the same order and
/// produce byte-identical IoWait/IoReady traces.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_IO_REACTOR_H
#define OSC_IO_REACTOR_H

#include "io/Port.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace osc {

/// What a parked thread is waiting to finish.
enum class IoOp : uint8_t {
  ReadLine, ///< io-read-line: a full line (or EOF) in the input buffer.
  Write,    ///< io-write: the output buffer fully flushed.
  Accept,   ///< io-accept: one pending connection.
  TakeConn, ///< io-take-conn: a handed-off fd in the pool's ConnQueue;
            ///< parks on the wakeup port, not on a connection fd.
  Timer,    ///< fd-less deadline waiter (channel block under with-deadline);
            ///< never fd-ready, only ever expires.
};

const char *ioOpName(IoOp Op);

/// One parked operation: which thread, which port, what it waits for, and
/// the registration sequence number that breaks wake-order ties.  A re-park
/// (readiness arrived but the operation still cannot finish, e.g. a partial
/// line) keeps its original Seq so waiters on one port stay FIFO.
///
/// DeadlineTick arms the deadline wheel: the waiter expires (is handed back
/// through takeReady's Expired list instead of completing) once the
/// reactor's virtual tick clock reaches it.  Timer waiters additionally
/// carry the parking thread's park generation (ParkSeq) so a timer whose
/// thread already woke through the channel is recognized as stale and
/// discarded instead of fired — timers are cancelled lazily, never
/// searched for.
struct PendingIo {
  uint64_t Seq;
  uint32_t Tid;
  uint32_t PortId;
  IoOp Op;
  uint64_t DeadlineTick = 0; ///< 0 = no deadline; fires at NowTick >= this.
  uint64_t ParkSeq = 0;      ///< Thread park generation (Timer validity).

  /// PortId of fd-less Timer waiters.
  static constexpr uint32_t NoPort = 0xffffffffu;
};

class Reactor {
public:
  /// Ignores SIGPIPE process-wide (once): broken-pipe writes must surface
  /// as EPIPE errors on the port, not kill the host.
  Reactor();
  ~Reactor();
  Reactor(const Reactor &) = delete;
  Reactor &operator=(const Reactor &) = delete;

  // --- Port table (fixnum ids, like threads and channels) -------------------

  uint32_t addPort(int Fd, Port::Kind K);

  /// Adopts an fd created outside src/io (switched to non-blocking; see
  /// Port's adopting constructor) into the port table.
  uint32_t addAdoptedPort(int Fd, Port::Kind K);

  /// Output-buffer hard cap applied to every subsequently created port
  /// (0 = unbounded).  Set once from Config::MaxOutputBufferBytes.
  void setDefaultOutputCap(size_t Bytes) { DefaultOutCap = Bytes; }
  Port *port(int64_t Id) {
    if (Id < 0 || static_cast<size_t>(Id) >= Ports.size())
      return nullptr;
    return Ports[static_cast<size_t>(Id)].get();
  }
  size_t portCount() const { return Ports.size(); }

  // --- Waiter registry -------------------------------------------------------

  /// Registers a fresh parked operation (new Seq).  \p DeadlineTick of 0
  /// parks without a deadline; otherwise the waiter expires once the
  /// virtual tick clock reaches it.
  void park(uint32_t Tid, uint32_t PortId, IoOp Op, uint64_t DeadlineTick = 0,
            uint64_t ParkSeq = 0);
  /// Registers an fd-less Timer waiter for a thread blocked outside the
  /// reactor (channel wait under with-deadline).
  void parkTimer(uint32_t Tid, uint64_t DeadlineTick, uint64_t ParkSeq);
  /// Re-registers \p P unchanged (original Seq, original deadline) after a
  /// readiness event that did not complete the operation.
  void repark(const PendingIo &P) { Waiters.push_back(P); }
  size_t waiterCount() const { return Waiters.size(); }

  /// True when at least one parked operation is an \p Op.
  bool hasWaiter(IoOp Op) const;
  /// Waiters with an armed deadline (the IoWaitDeadlinePeak numerator).
  size_t timedWaiterCount() const;

  // --- The virtual tick clock (deadline wheel) -------------------------------
  //
  // Deadlines are measured in *virtual poll ticks*, not wall time: the
  // clock advances exactly once per takeReady batch, so the tick at which
  // a deadline fires is a function of the poll sequence and traces that
  // include timeouts stay byte-identical run to run.  Wall time enters
  // only as the per-batch poll clamp (tickMs) that keeps a tick roughly
  // tickMs long when deadlines are armed.

  uint64_t nowTick() const { return NowTick; }
  int tickMs() const { return TickMs; }
  void setTickMs(int Ms) { TickMs = Ms > 0 ? Ms : 1; }

  /// poll(2)s the waiters' fds for up to \p TimeoutMs (negative = forever)
  /// and removes-and-returns every waiter whose fd is ready, sorted by
  /// (port id, seq).  Empty result means the poll timed out (or there was
  /// nothing to wait for).  Waiters on already-closed ports are always
  /// ready (they complete with EOF/error).
  ///
  /// Each call with a non-empty waiter set advances the tick clock once;
  /// when any waiter has an armed deadline the kernel wait is clamped to
  /// tickMs() so ticks keep flowing, and waiters whose deadline has been
  /// reached (and that are not fd-ready — readiness wins) are removed and
  /// appended to \p Expired (same deterministic order) when it is non-null,
  /// or silently kept for the next batch when it is null.
  std::vector<PendingIo> takeReady(int TimeoutMs,
                                   std::vector<PendingIo> *Expired = nullptr);

  /// Removes-and-returns every waiter parked on \p PortId, in Seq order —
  /// io-close uses this to wake them before the fd goes away.
  std::vector<PendingIo> takeWaitersFor(uint32_t PortId);

  /// Silently discards every waiter belonging to thread \p Tid (fd waits
  /// and Timer waiters alike).  Thread cancellation uses this: the thread
  /// is being retired without ever resuming, so nothing may complete or
  /// expire on its behalf later.
  void dropWaitersFor(uint32_t Tid);

  /// Drops all waiters (scheduler abort; parked threads are gone).
  void clearWaiters() { Waiters.clear(); }

  // --- Cross-thread wakeup (self-pipe) --------------------------------------
  //
  // A reactor normally belongs entirely to one VM thread; poll(2) only
  // returns when one of *its own* fds goes ready.  The serving pool needs
  // to hand work to a worker blocked in poll, so the reactor can own a
  // self-pipe: the read end sits in the port table as a Kind::Wakeup port
  // (pollable and parkable like any other), and notify() — the ONLY
  // Reactor entry point that is safe from other threads — makes it
  // readable by writing one byte to the write end.

  /// Creates the self-pipe and its Wakeup port.  Idempotent.  Returns
  /// false and sets \p Err on failure.
  bool enableWakeup(std::string &Err);

  /// Like enableWakeup, but over a pipe the *host* owns: both fds are
  /// dup(2)'d into the reactor (the Wakeup port adopts the duped read
  /// end, the duped write end backs notify()), so the pipe itself
  /// outlives this reactor.  The serving pool uses this to keep one
  /// wakeup pipe per shard across worker restarts: the acceptor writes
  /// to the host's fd without ever touching — or locking against — the
  /// shard's current Reactor instance.  Idempotent per reactor.
  bool enableWakeupFrom(int ReadFd, int WriteFd, std::string &Err);

  /// Thread-safe: makes the wakeup port readable.  One byte per call; a
  /// full pipe (EAGAIN) is fine — the port is already readable.
  void notify();

  /// Reads and discards everything buffered in the self-pipe.  Must be
  /// called from the reactor's own thread *before* checking the condition
  /// the notification advertised (drain-then-check, so a notify landing
  /// after the check is never lost).
  void drainWakeup();

  /// Port id of the Wakeup port, or -1 when enableWakeup was never called.
  int64_t wakeupPortId() const { return WakePortId; }

private:
  std::vector<std::unique_ptr<Port>> Ports; ///< Index == port id.
  size_t DefaultOutCap = 0; ///< queueOutput cap stamped on new ports.
  std::vector<PendingIo> Waiters;
  uint64_t NextSeq = 0;
  uint64_t NowTick = 0; ///< Virtual tick clock; +1 per takeReady batch.
  int TickMs = 5;       ///< Wall-ms clamp per batch when deadlines armed.
  int64_t WakePortId = -1; ///< Index of the Wakeup port, -1 if disabled.
  int WakeWriteFd = -1;    ///< Write end of the self-pipe (reactor-owned).
};

} // namespace osc

#endif // OSC_IO_REACTOR_H
