#include "io/Port.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace osc;

namespace {

std::string errnoMessage(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

} // namespace

bool osc::makeNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

Port::Port(uint32_t Id, int Fd, Kind K, AdoptFd) : Id(Id), Fd(Fd), K(K) {
  if (Fd >= 0 && !makeNonBlocking(Fd))
    Err = errnoMessage("fcntl");
}

bool Port::takeLine(std::string &Out) {
  size_t Nl = InBuf.find('\n');
  if (Nl == std::string::npos) {
    // After EOF (or a local close) the unterminated tail is the final line.
    if ((SawEof || closed()) && !InBuf.empty()) {
      Out = std::move(InBuf);
      InBuf.clear();
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      return true;
    }
    return false;
  }
  Out.assign(InBuf, 0, Nl);
  InBuf.erase(0, Nl + 1);
  if (!Out.empty() && Out.back() == '\r')
    Out.pop_back();
  return true;
}

Port::Io Port::fillInput(uint64_t &BytesIn) {
  if (closed() || SawEof)
    return Io::Eof;
  bool Moved = false;
  for (;;) {
    char Buf[4096];
    ssize_t N = ::read(Fd, Buf, sizeof Buf);
    if (N > 0) {
      InBuf.append(Buf, static_cast<size_t>(N));
      BytesIn += static_cast<uint64_t>(N);
      Moved = true;
      continue;
    }
    if (N == 0) {
      SawEof = true;
      return Io::Eof;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return Moved ? Io::Progress : Io::WouldBlock;
    Err = errnoMessage("read");
    return Io::Error;
  }
}

Port::Io Port::flushOutput(uint64_t &BytesOut) {
  if (closed()) {
    Err = "port is closed";
    return Io::Error;
  }
  while (!OutBuf.empty()) {
    ssize_t N = ::write(Fd, OutBuf.data(), OutBuf.size());
    if (N > 0) {
      OutBuf.erase(0, static_cast<size_t>(N));
      BytesOut += static_cast<uint64_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return Io::WouldBlock;
    Err = errnoMessage("write");
    return Io::Error;
  }
  return Io::Progress;
}

int Port::acceptConn() {
  if (closed())
    return -2;
  for (;;) {
    int NewFd = ::accept(Fd, nullptr, nullptr);
    if (NewFd >= 0) {
      if (!makeNonBlocking(NewFd)) {
        ::close(NewFd);
        Err = errnoMessage("fcntl");
        return -2;
      }
      return NewFd;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return -1;
    Err = errnoMessage("accept");
    return -2;
  }
}

void Port::closeNow() {
  if (Fd < 0)
    return;
  // Best-effort flush: io-write only leaves bytes here while a writer is
  // parked mid-flush, but a drop-what-fits attempt costs nothing.
  if (!OutBuf.empty()) {
    uint64_t Ignored = 0;
    flushOutput(Ignored);
    OutBuf.clear();
  }
  ::close(Fd);
  Fd = -1;
}

bool osc::openPipePair(int &ReadFd, int &WriteFd, std::string &Err) {
  int Fds[2];
  if (::pipe(Fds) != 0) {
    Err = errnoMessage("pipe");
    return false;
  }
  if (!makeNonBlocking(Fds[0]) || !makeNonBlocking(Fds[1])) {
    Err = errnoMessage("fcntl");
    ::close(Fds[0]);
    ::close(Fds[1]);
    return false;
  }
  ReadFd = Fds[0];
  WriteFd = Fds[1];
  return true;
}

bool osc::openSocketPairFds(int &A, int &B, std::string &Err) {
  int Fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0) {
    Err = errnoMessage("socketpair");
    return false;
  }
  if (!makeNonBlocking(Fds[0]) || !makeNonBlocking(Fds[1])) {
    Err = errnoMessage("fcntl");
    ::close(Fds[0]);
    ::close(Fds[1]);
    return false;
  }
  A = Fds[0];
  B = Fds[1];
  return true;
}

int osc::openListener(uint16_t &Port, int Backlog, std::string &Err,
                      bool ReusePort) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoMessage("socket");
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof One);
  if (ReusePort) {
#ifdef SO_REUSEPORT
    if (::setsockopt(Fd, SOL_SOCKET, SO_REUSEPORT, &One, sizeof One) != 0) {
      Err = errnoMessage("setsockopt(SO_REUSEPORT)");
      ::close(Fd);
      return -1;
    }
#else
    Err = "SO_REUSEPORT is not available on this platform";
    ::close(Fd);
    return -1;
#endif
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) != 0 ||
      ::listen(Fd, Backlog) != 0 || !makeNonBlocking(Fd)) {
    Err = errnoMessage("bind/listen");
    ::close(Fd);
    return -1;
  }
  socklen_t Len = sizeof Addr;
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Err = errnoMessage("getsockname");
    ::close(Fd);
    return -1;
  }
  Port = ntohs(Addr.sin_port);
  return Fd;
}

int osc::connectLoopback(uint16_t Port, std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoMessage("socket");
    return -1;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  for (;;) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) == 0)
      return Fd;
    if (errno == EINTR)
      continue;
    Err = errnoMessage("connect");
    ::close(Fd);
    return -1;
  }
}

bool osc::pollOneFd(int Fd, bool ForWrite, int TimeoutMs) {
  pollfd P{};
  P.fd = Fd;
  P.events = ForWrite ? POLLOUT : POLLIN;
  for (;;) {
    int N = ::poll(&P, 1, TimeoutMs);
    if (N > 0)
      return true;
    if (N == 0)
      return false;
    if (errno != EINTR)
      return false;
  }
}
