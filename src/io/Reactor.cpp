#include "io/Reactor.h"

#include <algorithm>
#include <cerrno>
#include <csignal>

#include <poll.h>
#include <unistd.h>

using namespace osc;

const char *osc::ioOpName(IoOp Op) {
  switch (Op) {
  case IoOp::ReadLine:
    return "read-line";
  case IoOp::Write:
    return "write";
  case IoOp::Accept:
    return "accept";
  case IoOp::TakeConn:
    return "take-conn";
  case IoOp::Timer:
    return "timer";
  }
  return "?";
}

Reactor::Reactor() {
  // A peer may close mid-write at any time; without this the default
  // SIGPIPE disposition would kill the whole process instead of letting
  // flushOutput report EPIPE.
  static bool Ignored = false;
  if (!Ignored) {
    std::signal(SIGPIPE, SIG_IGN);
    Ignored = true;
  }
}

Reactor::~Reactor() {
  if (WakeWriteFd >= 0)
    ::close(WakeWriteFd);
}

uint32_t Reactor::addPort(int Fd, Port::Kind K) {
  uint32_t Id = static_cast<uint32_t>(Ports.size());
  Ports.push_back(std::make_unique<Port>(Id, Fd, K));
  Ports.back()->setOutputCap(DefaultOutCap);
  return Id;
}

uint32_t Reactor::addAdoptedPort(int Fd, Port::Kind K) {
  uint32_t Id = static_cast<uint32_t>(Ports.size());
  Ports.push_back(std::make_unique<Port>(Id, Fd, K, Port::AdoptFd{}));
  Ports.back()->setOutputCap(DefaultOutCap);
  return Id;
}

bool Reactor::hasWaiter(IoOp Op) const {
  for (const PendingIo &W : Waiters)
    if (W.Op == Op)
      return true;
  return false;
}

bool Reactor::enableWakeup(std::string &Err) {
  if (WakePortId >= 0)
    return true;
  int ReadFd = -1, WriteFd = -1;
  if (!openPipePair(ReadFd, WriteFd, Err))
    return false;
  WakePortId = addPort(ReadFd, Port::Kind::Wakeup);
  WakeWriteFd = WriteFd;
  return true;
}

bool Reactor::enableWakeupFrom(int ReadFd, int WriteFd, std::string &Err) {
  if (WakePortId >= 0)
    return true;
  int Rd = ::dup(ReadFd);
  if (Rd < 0) {
    Err = "dup(wakeup read fd) failed";
    return false;
  }
  int Wr = ::dup(WriteFd);
  if (Wr < 0) {
    Err = "dup(wakeup write fd) failed";
    ::close(Rd);
    return false;
  }
  // The dup shares the original's file description, including O_NONBLOCK
  // set by openPipePair; the adopting Port constructor re-asserts it.
  WakePortId = addAdoptedPort(Rd, Port::Kind::Wakeup);
  WakeWriteFd = Wr;
  return true;
}

void Reactor::notify() {
  if (WakeWriteFd < 0)
    return;
  char B = 1;
  for (;;) {
    ssize_t N = ::write(WakeWriteFd, &B, 1);
    if (N >= 0 || errno != EINTR)
      return; // EAGAIN: pipe full, already readable — mission accomplished.
  }
}

void Reactor::drainWakeup() {
  Port *P = WakePortId >= 0 ? port(WakePortId) : nullptr;
  if (!P || P->closed())
    return;
  char Buf[256];
  for (;;) {
    ssize_t N = ::read(P->fd(), Buf, sizeof Buf);
    if (N > 0)
      continue;
    if (N < 0 && errno == EINTR)
      continue;
    return; // Empty (EAGAIN) or EOF/error: nothing more to discard.
  }
}

void Reactor::park(uint32_t Tid, uint32_t PortId, IoOp Op,
                   uint64_t DeadlineTick, uint64_t ParkSeq) {
  Waiters.push_back({NextSeq++, Tid, PortId, Op, DeadlineTick, ParkSeq});
}

void Reactor::parkTimer(uint32_t Tid, uint64_t DeadlineTick, uint64_t ParkSeq) {
  Waiters.push_back(
      {NextSeq++, Tid, PendingIo::NoPort, IoOp::Timer, DeadlineTick, ParkSeq});
}

size_t Reactor::timedWaiterCount() const {
  size_t N = 0;
  for (const PendingIo &W : Waiters)
    if (W.DeadlineTick)
      ++N;
  return N;
}

std::vector<PendingIo> Reactor::takeReady(int TimeoutMs,
                                          std::vector<PendingIo> *Expired) {
  std::vector<PendingIo> Ready;
  if (Waiters.empty())
    return Ready;

  // One pollfd per distinct fd; a port with both a parked reader and a
  // parked writer gets its events merged.  Closed ports are ready without
  // asking the kernel — their waiters complete with EOF/error.  Timer
  // waiters have no fd at all; they only expire.
  std::vector<pollfd> Pfds;
  std::vector<char> IsReady(Waiters.size(), 0);
  bool AnyClosed = false, AnyDeadline = false;
  for (size_t I = 0; I < Waiters.size(); ++I) {
    if (Waiters[I].DeadlineTick)
      AnyDeadline = true;
    if (Waiters[I].Op == IoOp::Timer)
      continue;
    Port *P = port(Waiters[I].PortId);
    if (!P || P->closed()) {
      IsReady[I] = 1;
      AnyClosed = true;
      continue;
    }
    short Ev = Waiters[I].Op == IoOp::Write ? POLLOUT : POLLIN;
    auto It = std::find_if(Pfds.begin(), Pfds.end(),
                           [&](const pollfd &F) { return F.fd == P->fd(); });
    if (It == Pfds.end()) {
      pollfd F{};
      F.fd = P->fd();
      F.events = Ev;
      Pfds.push_back(F);
    } else {
      It->events |= Ev;
    }
  }

  // With a closed-port waiter already ready, just sample the kernel.  An
  // armed deadline clamps the wait to one tick so the virtual clock keeps
  // flowing; a Timer-only waiter set still sleeps that one tick (there is
  // nothing to poll, but a tick must take a tick).
  int Wait = AnyClosed ? 0 : TimeoutMs;
  if (AnyDeadline && (Wait < 0 || Wait > TickMs))
    Wait = TickMs;
  if (!Pfds.empty() || AnyDeadline) {
    for (;;) {
      int N = ::poll(Pfds.data(), static_cast<nfds_t>(Pfds.size()), Wait);
      if (N >= 0)
        break;
      if (errno != EINTR)
        return Ready; // Treat a hard poll failure as a timeout.
    }
    for (size_t I = 0; I < Waiters.size(); ++I) {
      if (IsReady[I] || Waiters[I].Op == IoOp::Timer)
        continue;
      Port *P = port(Waiters[I].PortId);
      auto It = std::find_if(Pfds.begin(), Pfds.end(),
                             [&](const pollfd &F) { return F.fd == P->fd(); });
      if (It == Pfds.end())
        continue;
      short Want = Waiters[I].Op == IoOp::Write ? POLLOUT : POLLIN;
      // Error/hangup means the operation can finish too — with an
      // EOF/error result rather than bytes.
      if (It->revents & (Want | POLLERR | POLLHUP | POLLNVAL))
        IsReady[I] = 1;
    }
  }

  // One batch, one tick.  Expiry is checked against the advanced clock so
  // a deadline of "now + 1 tick" can fire on the very next batch.
  ++NowTick;
  std::vector<char> IsExpired(Waiters.size(), 0);
  if (Expired)
    for (size_t I = 0; I < Waiters.size(); ++I)
      if (!IsReady[I] && Waiters[I].DeadlineTick &&
          Waiters[I].DeadlineTick <= NowTick)
        IsExpired[I] = 1;

  std::vector<PendingIo> Rest;
  for (size_t I = 0; I < Waiters.size(); ++I)
    (IsReady[I] ? Ready : IsExpired[I] ? *Expired : Rest)
        .push_back(Waiters[I]);
  Waiters = std::move(Rest);

  // poll(2) reports readiness in fd order, which the OS recycles
  // nondeterministically; (port id, seq) is stable run to run.
  auto ByPortSeq = [](const PendingIo &A, const PendingIo &B) {
    if (A.PortId != B.PortId)
      return A.PortId < B.PortId;
    return A.Seq < B.Seq;
  };
  std::sort(Ready.begin(), Ready.end(), ByPortSeq);
  if (Expired)
    std::sort(Expired->begin(), Expired->end(), ByPortSeq);
  return Ready;
}

std::vector<PendingIo> Reactor::takeWaitersFor(uint32_t PortId) {
  std::vector<PendingIo> Out, Rest;
  for (const PendingIo &W : Waiters)
    (W.PortId == PortId ? Out : Rest).push_back(W);
  Waiters = std::move(Rest);
  std::sort(Out.begin(), Out.end(),
            [](const PendingIo &A, const PendingIo &B) { return A.Seq < B.Seq; });
  return Out;
}

void Reactor::dropWaitersFor(uint32_t Tid) {
  Waiters.erase(std::remove_if(Waiters.begin(), Waiters.end(),
                               [Tid](const PendingIo &W) {
                                 return W.Tid == Tid;
                               }),
                Waiters.end());
}
