#include "regex/Regex.h"

#include <cstring>
#include <memory>
#include <vector>

using namespace osc;
using namespace osc::regex;

void ProgramBuffer::grow() {
  uint32_t NewCap = Cap * 2;
  auto *NewBuf = new uint32_t[NewCap];
  std::memcpy(NewBuf, data(), N * sizeof(uint32_t));
  delete[] Spill;
  Spill = NewBuf;
  Cap = NewCap;
}

// --- Parser ------------------------------------------------------------------
//
// Recursive descent over the classic grammar:
//
//   alt    := cat ('|' cat)*
//   cat    := repeat*
//   repeat := atom ('*' | '+' | '?' | '{' m (',' n?)? '}')?
//   atom   := literal | '.' | '^' | '$' | class | '(' alt ')' | escape
//
// The tree is tiny and short-lived; the compiler below walks it once.

namespace {

struct Node {
  enum NK {
    NChar,
    NAny,
    NClass,
    NCat,
    NAlt,
    NStar,
    NPlus,
    NOpt,
    NRep,
    NBegin,
    NEnd,
    NEmpty,
  };
  NK K = NEmpty;
  uint8_t C = 0;          ///< NChar.
  uint32_t Bits[8] = {};  ///< NClass membership bitmap.
  int Min = 0, Max = 0;   ///< NRep bounds; Max == -1 means unbounded.
  std::unique_ptr<Node> L, R;
};

using NodePtr = std::unique_ptr<Node>;

void setBit(uint32_t *Bits, uint8_t C) { Bits[C >> 5] |= 1u << (C & 31); }

void setRange(uint32_t *Bits, uint8_t Lo, uint8_t Hi) {
  for (unsigned C = Lo; C <= Hi; ++C)
    setBit(Bits, static_cast<uint8_t>(C));
}

/// One parsed escape: either a single literal byte or a class bitmap
/// (\d, \w, \s and their complements).
struct Escape {
  bool IsClass = false;
  uint8_t Ch = 0;
  uint32_t Bits[8] = {};
};

struct Parser {
  std::string_view Pat;
  size_t Pos = 0;
  std::string Err;

  bool atEnd() const { return Pos >= Pat.size(); }
  char peek() const { return Pat[Pos]; }
  char advance() { return Pat[Pos++]; }
  bool accept(char C) {
    if (atEnd() || Pat[Pos] != C)
      return false;
    ++Pos;
    return true;
  }
  NodePtr fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
    return nullptr;
  }

  bool parseEscape(Escape &E) {
    if (atEnd()) {
      Err = "trailing backslash";
      return false;
    }
    char C = advance();
    switch (C) {
    case 'n':
      E.Ch = '\n';
      return true;
    case 't':
      E.Ch = '\t';
      return true;
    case 'r':
      E.Ch = '\r';
      return true;
    case 'd':
    case 'D':
      E.IsClass = true;
      setRange(E.Bits, '0', '9');
      break;
    case 'w':
    case 'W':
      E.IsClass = true;
      setRange(E.Bits, 'a', 'z');
      setRange(E.Bits, 'A', 'Z');
      setRange(E.Bits, '0', '9');
      setBit(E.Bits, '_');
      break;
    case 's':
    case 'S':
      E.IsClass = true;
      setBit(E.Bits, ' ');
      setBit(E.Bits, '\t');
      setBit(E.Bits, '\n');
      setBit(E.Bits, '\r');
      setBit(E.Bits, '\f');
      setBit(E.Bits, '\v');
      break;
    default:
      // Any punctuation escapes to itself; an unknown letter or digit is
      // reserved and rejected so it can gain a meaning later.
      if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
          (C >= '0' && C <= '9')) {
        Err = std::string("bad escape '\\") + C + "'";
        return false;
      }
      E.Ch = static_cast<uint8_t>(C);
      return true;
    }
    if (C >= 'A' && C <= 'Z') // complement form
      for (int I = 0; I != 8; ++I)
        E.Bits[I] = ~E.Bits[I];
    return true;
  }

  NodePtr parseClass() {
    auto N = std::make_unique<Node>();
    N->K = Node::NClass;
    bool Negate = accept('^');
    bool First = true;
    for (;;) {
      if (atEnd())
        return fail("unterminated character class");
      if (peek() == ']' && !First) {
        advance();
        break;
      }
      First = false;
      // Lead item: literal, ']' in first position, or an escape.
      bool LeadIsClass = false;
      uint8_t Lo = 0;
      if (peek() == '\\') {
        advance();
        Escape E;
        if (!parseEscape(E))
          return nullptr;
        if (E.IsClass) {
          for (int I = 0; I != 8; ++I)
            N->Bits[I] |= E.Bits[I];
          LeadIsClass = true;
        } else {
          Lo = E.Ch;
        }
      } else {
        Lo = static_cast<uint8_t>(advance());
      }
      // Range tail: '-' not followed by ']' extends the lead item.
      if (!LeadIsClass && !atEnd() && peek() == '-' && Pos + 1 < Pat.size() &&
          Pat[Pos + 1] != ']') {
        advance(); // '-'
        uint8_t Hi;
        if (peek() == '\\') {
          advance();
          Escape E;
          if (!parseEscape(E))
            return nullptr;
          if (E.IsClass) {
            Err = "class escape cannot end a range";
            return nullptr;
          }
          Hi = E.Ch;
        } else {
          Hi = static_cast<uint8_t>(advance());
        }
        if (Lo > Hi)
          return fail("reversed class range");
        setRange(N->Bits, Lo, Hi);
      } else if (!LeadIsClass) {
        setBit(N->Bits, Lo);
      }
    }
    if (Negate)
      for (int I = 0; I != 8; ++I)
        N->Bits[I] = ~N->Bits[I];
    return N;
  }

  NodePtr parseAtom() {
    char C = advance();
    auto N = std::make_unique<Node>();
    switch (C) {
    case '.':
      N->K = Node::NAny;
      return N;
    case '^':
      N->K = Node::NBegin;
      return N;
    case '$':
      N->K = Node::NEnd;
      return N;
    case '[':
      return parseClass();
    case '(': {
      NodePtr Body = parseAlt();
      if (!Body)
        return nullptr;
      if (!accept(')'))
        return fail("unmatched '('");
      return Body;
    }
    case '*':
    case '+':
    case '?':
      return fail(std::string("nothing to repeat before '") + C + "'");
    case '{':
      return fail("nothing to repeat before '{'");
    case '\\': {
      Escape E;
      if (!parseEscape(E))
        return nullptr;
      if (E.IsClass) {
        N->K = Node::NClass;
        std::memcpy(N->Bits, E.Bits, sizeof(N->Bits));
      } else {
        N->K = Node::NChar;
        N->C = E.Ch;
      }
      return N;
    }
    default:
      N->K = Node::NChar;
      N->C = static_cast<uint8_t>(C);
      return N;
    }
  }

  /// Parses "{m}", "{m,}" or "{m,n}" after the '{' was consumed.
  bool parseBounds(int &Min, int &Max) {
    auto Number = [&](int &Out) {
      if (atEnd() || peek() < '0' || peek() > '9')
        return false;
      Out = 0;
      while (!atEnd() && peek() >= '0' && peek() <= '9') {
        Out = Out * 10 + (advance() - '0');
        if (Out > 255) {
          Err = "repetition bound exceeds 255";
          return false;
        }
      }
      return true;
    };
    if (!Number(Min)) {
      if (Err.empty())
        Err = "bad repetition bound";
      return false;
    }
    Max = Min;
    if (accept(',')) {
      if (!atEnd() && peek() == '}')
        Max = -1;
      else if (!Number(Max)) {
        if (Err.empty())
          Err = "bad repetition bound";
        return false;
      }
    }
    if (!accept('}')) {
      if (Err.empty())
        Err = "unterminated repetition";
      return false;
    }
    if (Max >= 0 && Min > Max) {
      Err = "reversed repetition bounds";
      return false;
    }
    return true;
  }

  NodePtr parseRepeat() {
    NodePtr Atom = parseAtom();
    if (!Atom)
      return nullptr;
    if (atEnd())
      return Atom;
    char Q = peek();
    if (Q != '*' && Q != '+' && Q != '?' && Q != '{')
      return Atom;
    advance();
    auto N = std::make_unique<Node>();
    if (Q == '{') {
      N->K = Node::NRep;
      if (!parseBounds(N->Min, N->Max))
        return nullptr;
    } else {
      N->K = Q == '*' ? Node::NStar : Q == '+' ? Node::NPlus : Node::NOpt;
    }
    N->L = std::move(Atom);
    if (!atEnd() && (peek() == '*' || peek() == '+' || peek() == '?' ||
                     peek() == '{'))
      return fail("nested quantifier (group the inner one)");
    return N;
  }

  NodePtr parseCat() {
    auto N = std::make_unique<Node>();
    N->K = Node::NEmpty;
    while (!atEnd() && peek() != '|' && peek() != ')') {
      NodePtr R = parseRepeat();
      if (!R)
        return nullptr;
      if (N->K == Node::NEmpty) {
        N = std::move(R);
      } else {
        auto Cat = std::make_unique<Node>();
        Cat->K = Node::NCat;
        Cat->L = std::move(N);
        Cat->R = std::move(R);
        N = std::move(Cat);
      }
    }
    return N;
  }

  NodePtr parseAlt() {
    NodePtr N = parseCat();
    if (!N)
      return nullptr;
    while (accept('|')) {
      NodePtr R = parseCat();
      if (!R)
        return nullptr;
      auto Alt = std::make_unique<Node>();
      Alt->K = Node::NAlt;
      Alt->L = std::move(N);
      Alt->R = std::move(R);
      N = std::move(Alt);
    }
    return N;
  }
};

// --- Compiler ----------------------------------------------------------------

struct Emitter {
  ProgramBuffer &Out;
  bool Overflow = false;

  void push(uint32_t W) {
    if (!Out.push(W))
      Overflow = true;
  }

  void emit(const Node &N) {
    if (Overflow)
      return;
    switch (N.K) {
    case Node::NChar:
      push(OpChar);
      push(N.C);
      return;
    case Node::NAny:
      push(OpAny);
      return;
    case Node::NClass:
      push(OpClass);
      for (int I = 0; I != 8; ++I)
        push(N.Bits[I]);
      return;
    case Node::NCat:
      emit(*N.L);
      emit(*N.R);
      return;
    case Node::NAlt: {
      uint32_t S = Out.size();
      push(OpSplit);
      push(0);
      push(0);
      if (Overflow)
        return;
      Out[S + 1] = Out.size();
      emit(*N.L);
      uint32_t J = Out.size();
      push(OpJmp);
      push(0);
      if (Overflow)
        return;
      Out[S + 2] = Out.size();
      emit(*N.R);
      if (Overflow)
        return;
      Out[J + 1] = Out.size();
      return;
    }
    case Node::NStar:
      emitStar(*N.L);
      return;
    case Node::NPlus: {
      uint32_t B = Out.size();
      emit(*N.L);
      uint32_t S = Out.size();
      push(OpSplit);
      push(B);
      push(0);
      if (Overflow)
        return;
      Out[S + 2] = Out.size();
      return;
    }
    case Node::NOpt:
      emitOpt(*N.L);
      return;
    case Node::NRep: {
      // Expanded at compile time: Min mandatory copies, then either a
      // star (unbounded) or Max-Min optional copies.  Flat '?' copies
      // recognize exactly the same language as the nested form.
      for (int I = 0; I != N.Min && !Overflow; ++I)
        emit(*N.L);
      if (N.Max < 0)
        emitStar(*N.L);
      else
        for (int I = N.Min; I != N.Max && !Overflow; ++I)
          emitOpt(*N.L);
      return;
    }
    case Node::NBegin:
      push(OpBegin);
      return;
    case Node::NEnd:
      push(OpEnd);
      return;
    case Node::NEmpty:
      return;
    }
  }

  void emitStar(const Node &Body) {
    uint32_t S = Out.size();
    push(OpSplit);
    push(0);
    push(0);
    if (Overflow)
      return;
    Out[S + 1] = Out.size(); // greedy: prefer the body
    emit(Body);
    push(OpJmp);
    push(S);
    if (Overflow)
      return;
    Out[S + 2] = Out.size();
  }

  void emitOpt(const Node &Body) {
    uint32_t S = Out.size();
    push(OpSplit);
    push(0);
    push(0);
    if (Overflow)
      return;
    Out[S + 1] = Out.size(); // greedy: prefer taking the body
    emit(Body);
    if (Overflow)
      return;
    Out[S + 2] = Out.size();
  }
};

} // namespace

bool regex::compile(std::string_view Pattern, ProgramBuffer &Out,
                    std::string &Err) {
  Parser P{Pattern};
  NodePtr Root = P.parseAlt();
  if (!Root) {
    Err = P.Err.empty() ? "parse error" : P.Err;
    return false;
  }
  if (!P.atEnd()) {
    // parseAlt stops at a ')' it has no opening paren for.
    Err = P.peek() == ')' ? "unmatched ')'" : "trailing garbage";
    return false;
  }
  Emitter E{Out};
  E.emit(*Root);
  E.push(OpMatch);
  if (E.Overflow) {
    Err = "pattern too large";
    return false;
  }
  return true;
}

// --- The Pike VM -------------------------------------------------------------
//
// The persistent thread list holds only *blocked* states: consuming
// instructions (OpChar/OpAny/OpClass) waiting for the next byte, and
// OpEnd assertions waiting to learn whether the stream is over.  All
// epsilon structure (OpJmp/OpSplit/OpBegin) is resolved eagerly by the
// closure below, and OpMatch is recorded the moment a closure reaches
// it.  Dedup is per position by pc, so a position costs at most NInstrs
// closure visits: total work is bounded by (bytes + 1) * NInstrs — the
// linear bound bench_regex asserts on the pathological column.

namespace {

/// Builds the thread list for one input position: seeds from the stepped
/// survivors of the previous list (plus the unanchored spawn), expanding
/// epsilon closures depth-first so earlier-started threads stay first —
/// the order the leftmost rule and the greedy Split preference rely on.
struct NfaClosure {
  Machine &M;
  RegexThread *Next;
  uint32_t NNext = 0;
  uint32_t *Mark;
  uint32_t Gen;
  std::vector<uint32_t> &Stack;
  bool AtEnd;

  /// Records a Match reached at the position under construction.
  void record(int64_t Start) {
    int64_t End = static_cast<int64_t>(M.Offset);
    if (M.Mode == ModeFull) {
      // Only "did a Match land exactly at the end of input" will matter;
      // remember the furthest one and let finish() compare.
      if (End > M.BestEnd) {
        M.BestStart = 0;
        M.BestEnd = End;
      }
      return;
    }
    if (M.BestStart < 0 || Start < M.BestStart ||
        (Start == M.BestStart && End > M.BestEnd)) {
      M.BestStart = Start;
      M.BestEnd = End;
    }
  }

  void add(uint32_t Pc0, int64_t Start) {
    // Leftmost pruning: once a match starting at BestStart exists, any
    // thread starting later can never beat it.
    if (M.BestStart >= 0 && M.Mode == ModeSearch && Start > M.BestStart)
      return;
    Stack.clear();
    Stack.push_back(Pc0);
    while (!Stack.empty()) {
      uint32_t Pc = Stack.back();
      Stack.pop_back();
      if (Mark[Pc] == Gen)
        continue;
      Mark[Pc] = Gen;
      M.Steps += 1;
      switch (M.Prog[Pc]) {
      case OpJmp:
        Stack.push_back(M.Prog[Pc + 1]);
        break;
      case OpSplit: // push the preferred branch last so it pops first
        Stack.push_back(M.Prog[Pc + 2]);
        Stack.push_back(M.Prog[Pc + 1]);
        break;
      case OpBegin:
        if (M.Offset == 0)
          Stack.push_back(Pc + 1);
        break;
      case OpEnd:
        if (AtEnd)
          Stack.push_back(Pc + 1);
        else
          Next[NNext++] = {Pc, Start}; // stalled until end-of-input
        break;
      case OpMatch:
        record(Start);
        break;
      default: // OpChar / OpAny / OpClass block on the next byte
        Next[NNext++] = {Pc, Start};
        break;
      }
    }
  }
};

/// True when pc 0's closure at any offset > 0 is provably empty — i.e.
/// every path is blocked by a '^'.  A static property of the program, so
/// the unanchored spawn loop can be skipped entirely.
bool spawnDeadPastZero(const uint32_t *Prog, uint32_t NInstrs) {
  std::vector<uint8_t> Seen(NInstrs, 0);
  std::vector<uint32_t> Stack{0};
  while (!Stack.empty()) {
    uint32_t Pc = Stack.back();
    Stack.pop_back();
    if (Seen[Pc])
      continue;
    Seen[Pc] = 1;
    switch (Prog[Pc]) {
    case OpJmp:
      Stack.push_back(Prog[Pc + 1]);
      break;
    case OpSplit:
      Stack.push_back(Prog[Pc + 1]);
      Stack.push_back(Prog[Pc + 2]);
      break;
    case OpBegin:
      break; // blocked at offset > 0
    default:
      return false; // a consuming op, '$', or Match is reachable
    }
  }
  return true;
}

/// Settles Decided if the answer can no longer change.
void decide(Machine &M, bool AtFinish) {
  if (M.Decided != Undecided)
    return;
  if (M.Mode == ModeSearch) {
    if (AtFinish)
      M.Decided = M.BestStart >= 0 ? Matched : NoMatch;
    else if (M.NThreads == 0) {
      if (M.BestStart >= 0)
        M.Decided = Matched; // nothing left that could start earlier
      else if (M.SpawnDead)
        M.Decided = NoMatch; // anchored pattern, anchor position dead
    }
    return;
  }
  // ModeFull: a match must land exactly at end of input.
  int64_t Off = static_cast<int64_t>(M.Offset);
  if (AtFinish)
    M.Decided = M.BestEnd == Off ? Matched : NoMatch;
  else if (M.NThreads == 0 && M.BestEnd < Off)
    M.Decided = NoMatch;
}

} // namespace

void regex::init(Machine &M) {
  M.NThreads = 0;
  M.Offset = 0;
  M.BestStart = M.BestEnd = -1;
  M.Decided = Undecided;
  M.Steps = 0;
  M.SpawnDead =
      M.Mode == ModeFull || spawnDeadPastZero(M.Prog, M.NInstrs);
  std::vector<uint32_t> Mark(M.NInstrs, 0);
  std::vector<uint32_t> Stack;
  std::vector<RegexThread> Next(M.NInstrs);
  NfaClosure C{M, Next.data(), 0, Mark.data(), 1, Stack, /*AtEnd=*/false};
  C.add(0, 0);
  std::memcpy(M.Threads, Next.data(), C.NNext * sizeof(RegexThread));
  M.NThreads = C.NNext;
  decide(M, /*AtFinish=*/false);
}

void regex::feed(Machine &M, std::string_view Chunk) {
  if (M.Decided != Undecided || Chunk.empty())
    return;
  std::vector<uint32_t> Mark(M.NInstrs, 0);
  std::vector<uint32_t> Stack;
  std::vector<RegexThread> Next(M.NInstrs);
  uint32_t Gen = 0;
  for (char Raw : Chunk) {
    uint8_t B = static_cast<uint8_t>(Raw);
    M.Offset += 1; // successors live at the position after this byte
    NfaClosure C{M, Next.data(), 0, Mark.data(), ++Gen, Stack, /*AtEnd=*/false};
    for (uint32_t I = 0; I != M.NThreads; ++I) {
      RegexThread T = M.Threads[I];
      if (M.BestStart >= 0 && M.Mode == ModeSearch && T.Start > M.BestStart)
        continue;
      switch (M.Prog[T.Pc]) {
      case OpChar:
        if (M.Prog[T.Pc + 1] == B)
          C.add(T.Pc + 2, T.Start);
        break;
      case OpAny:
        if (B != '\n')
          C.add(T.Pc + 1, T.Start);
        break;
      case OpClass:
        if ((M.Prog[T.Pc + 1 + (B >> 5)] >> (B & 31)) & 1)
          C.add(T.Pc + 9, T.Start);
        break;
      default: // a stalled '$' dies on any byte
        break;
      }
    }
    if (M.Mode == ModeSearch && M.BestStart < 0 && !M.SpawnDead)
      C.add(0, static_cast<int64_t>(M.Offset));
    std::memcpy(M.Threads, Next.data(), C.NNext * sizeof(RegexThread));
    M.NThreads = C.NNext;
    decide(M, /*AtFinish=*/false);
    if (M.Decided != Undecided)
      return; // the rest of the chunk cannot change the answer
  }
}

void regex::finish(Machine &M) {
  if (M.Decided != Undecided)
    return;
  std::vector<uint32_t> Mark(M.NInstrs, 0);
  std::vector<uint32_t> Stack;
  std::vector<RegexThread> Next(M.NInstrs);
  NfaClosure C{M, Next.data(), 0, Mark.data(), 1, Stack, /*AtEnd=*/true};
  for (uint32_t I = 0; I != M.NThreads; ++I) {
    RegexThread T = M.Threads[I];
    if (M.BestStart >= 0 && M.Mode == ModeSearch && T.Start > M.BestStart)
      continue;
    if (M.Prog[T.Pc] == OpEnd)
      C.add(T.Pc + 1, T.Start); // '$' holds now; may reach Match
  }
  M.NThreads = 0; // no byte is coming: every blocked state is dead
  decide(M, /*AtFinish=*/true);
}
