//===----------------------------------------------------------------------===//
///
/// \file
/// A bytecode-compiled regular-expression engine: pattern parser, compact
/// small-buffer bytecode compiler, and a Pike-style virtual machine that
/// simulates the NFA with thread lists — linear in input length times
/// program size, immune to the exponential blowup a backtracking engine
/// hits on patterns like (a?)^n a^n.
///
/// The executor is *streaming*: input arrives in chunks and the live
/// thread list (plus the best-match-so-far) carries across chunk
/// boundaries, so a matcher can be suspended inside a server-side
/// generator between I/O waits.  The persistent half of that state lives
/// in a RegexStream heap object (object/Objects.h); this header's
/// Machine is the engine's flat working view of it, loaded and stored by
/// the primitives around each feed.
///
/// Supported syntax: literals, '.', character classes [..] (ranges,
/// negation, \d \w \s and their complements), grouping (..),
/// alternation |, the quantifiers * + ? and bounded repetition {m,n}
/// (expanded at compile time, n <= 255), and the anchors ^ (offset 0 of
/// the stream) and $ (end of input).  Matching is leftmost-then-longest:
/// the earliest match start wins, and at that start the longest extent.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_REGEX_REGEX_H
#define OSC_REGEX_REGEX_H

#include "object/Objects.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace osc {
namespace regex {

/// Bytecode: a flat array of 32-bit words, one opcode word followed by
/// its operand words.  Branch targets are absolute word offsets.
enum Op : uint32_t {
  OpChar = 0, ///< [OpChar, byte] — match one exact byte.
  OpAny,      ///< [OpAny] — '.', any byte except '\n'.
  OpClass,    ///< [OpClass, b0..b7] — 256-bit membership bitmap.
  OpMatch,    ///< [OpMatch] — accept here.
  OpJmp,      ///< [OpJmp, t] — continue at t.
  OpSplit,    ///< [OpSplit, t1, t2] — fork; t1 is the preferred branch.
  OpBegin,    ///< [OpBegin] — '^': holds only at stream offset 0.
  OpEnd,      ///< [OpEnd] — '$': holds only at end of input.
};

/// Words each opcode occupies (operand words included).
inline uint32_t opWidth(uint32_t O) {
  switch (O) {
  case OpChar:
    return 2;
  case OpClass:
    return 9;
  case OpJmp:
    return 2;
  case OpSplit:
    return 3;
  default:
    return 1;
  }
}

/// Compile target with crex-style small-buffer storage: programs up to
/// InlineWords words — the common case for protocol-sized patterns —
/// never touch the allocator; larger ones spill to the heap once.
class ProgramBuffer {
public:
  static constexpr uint32_t InlineWords = 56;
  /// Programs are capped at MaxWords: bounded repetition is expanded at
  /// compile time, so without a cap {255,255} nests could multiply a
  /// pattern into an arbitrarily large program.
  static constexpr uint32_t MaxWords = 1u << 16;

  ProgramBuffer() = default;
  ~ProgramBuffer() { delete[] Spill; }
  ProgramBuffer(const ProgramBuffer &) = delete;
  ProgramBuffer &operator=(const ProgramBuffer &) = delete;

  uint32_t size() const { return N; }
  const uint32_t *data() const { return Spill ? Spill : Stack; }
  uint32_t &operator[](uint32_t I) { return (Spill ? Spill : Stack)[I]; }

  /// Appends \p W; returns false once MaxWords is exceeded (the caller
  /// turns that into a "pattern too large" parse error).
  bool push(uint32_t W) {
    if (N == MaxWords)
      return false;
    if (N == Cap)
      grow();
    (Spill ? Spill : Stack)[N++] = W;
    return true;
  }

private:
  void grow();

  uint32_t Stack[InlineWords];
  uint32_t *Spill = nullptr;
  uint32_t N = 0;
  uint32_t Cap = InlineWords;
};

/// Compiles \p Pattern into \p Out.  On success returns true; on a parse
/// error returns false with a human-readable message in \p Err.
bool compile(std::string_view Pattern, ProgramBuffer &Out, std::string &Err);

/// What a streaming matcher knows so far.
enum Decision : uint8_t {
  Undecided = 0, ///< More input could still change the answer.
  Matched,       ///< Best is final: no live thread can improve on it.
  NoMatch,       ///< No match exists in any extension of the input.
};

enum Mode : uint8_t {
  ModeSearch = 0, ///< Unanchored: find the leftmost-longest match.
  ModeFull,       ///< Anchored both ends: does the whole input match?
};

/// The engine's flat working view of one matcher: the compiled program,
/// the persistent thread list (capacity == NInstrs; dedup by pc bounds
/// it), and the incremental match state.  The primitives load this from
/// a RegexStream heap object before a feed and store it back after;
/// whole-string match/search stack-allocate one.
struct Machine {
  const uint32_t *Prog = nullptr;
  uint32_t NInstrs = 0;
  RegexThread *Threads = nullptr; ///< Caller-owned, NInstrs entries.
  uint32_t NThreads = 0;
  uint64_t Offset = 0;    ///< Absolute bytes consumed so far.
  int64_t BestStart = -1; ///< Leftmost match start; -1 while none.
  int64_t BestEnd = -1;
  uint8_t Mode = ModeSearch;
  uint8_t Decided = Undecided;
  bool SpawnDead = false; ///< '^'-anchored: spawns past offset 0 die.
  uint64_t Steps = 0;     ///< Thread-state visits (linearity witness).
};

/// Plants the initial thread (offset 0) and its epsilon closure.
void init(Machine &M);

/// Consumes \p Chunk, carrying the thread list across the boundary.
void feed(Machine &M, std::string_view Chunk);

/// Declares end of input: resolves '$' assertions and finalizes Decided
/// (never leaves it Undecided).
void finish(Machine &M);

} // namespace regex
} // namespace osc

#endif // OSC_REGEX_REGEX_H
