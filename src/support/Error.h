//===----------------------------------------------------------------------===//
///
/// \file
/// Structured errors for the embedding API.
///
/// Every failure surface — Interp::eval, Server, Pool — reports through the
/// same two-field shape: a coarse machine-readable ErrorKind for dispatch
/// ("retry? rephrase? restart the worker?") and the human-readable message.
/// The kind is deliberately coarse: it classifies *which layer* rejected the
/// work, not the exact failure, so embedders can route errors without
/// parsing message strings.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SUPPORT_ERROR_H
#define OSC_SUPPORT_ERROR_H

#include <cstdint>
#include <ostream>
#include <string>

namespace osc {

/// Which layer rejected the work.
enum class ErrorKind : uint8_t {
  None,          ///< No error (Ok results carry this).
  Parse,         ///< Reader / expander / compiler rejected the source.
  Runtime,       ///< The program itself failed (type error, (error ...), ...).
  Fault,         ///< An injected FaultPlan event fired (tests only).
  Io,            ///< A port / reactor / socket operation failed.
  Timeout,       ///< A deadline expired (with-deadline, timed park, wedge).
  ServerStopped, ///< The server or pool is not running (or was stopped).
};

/// Stable kebab-case kind name ("parse", "server-stopped", ...).
inline const char *errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::None:
    return "ok";
  case ErrorKind::Parse:
    return "parse";
  case ErrorKind::Runtime:
    return "runtime";
  case ErrorKind::Fault:
    return "fault";
  case ErrorKind::Io:
    return "io";
  case ErrorKind::Timeout:
    return "timeout";
  case ErrorKind::ServerStopped:
    return "server-stopped";
  }
  return "?";
}

/// One error: kind + message.  Converts to true when it holds an error, so
/// `if (auto E = pool.handoffTo(...))` reads naturally.
struct Error {
  ErrorKind Kind = ErrorKind::None;
  std::string Message;

  explicit operator bool() const { return Kind != ErrorKind::None; }
  bool ok() const { return Kind == ErrorKind::None; }
};

inline std::ostream &operator<<(std::ostream &OS, const Error &E) {
  return OS << errorKindName(E.Kind) << ": " << E.Message;
}

} // namespace osc

#endif // OSC_SUPPORT_ERROR_H
