//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics for internal invariant violations.  These mirror LLVM's
/// report_fatal_error / llvm_unreachable split: oscFatal aborts with a
/// message and oscUnreachable marks code paths that must never execute.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SUPPORT_DIAG_H
#define OSC_SUPPORT_DIAG_H

namespace osc {

/// Print \p Msg to stderr and abort.  Used for violated internal invariants
/// that cannot be expressed as an assert (e.g. they must fire in release
/// builds too, such as heap exhaustion).
[[noreturn]] void oscFatal(const char *Msg);

/// Marks a point in the program that should never be reached.
[[noreturn]] void oscUnreachable(const char *Msg);

} // namespace osc

#endif // OSC_SUPPORT_DIAG_H
