#include "support/Diag.h"

#include <cstdio>
#include <cstdlib>

using namespace osc;

void osc::oscFatal(const char *Msg) {
  std::fprintf(stderr, "osc fatal error: %s\n", Msg);
  std::abort();
}

void osc::oscUnreachable(const char *Msg) {
  std::fprintf(stderr, "osc unreachable executed: %s\n", Msg);
  std::abort();
}
