//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the control machinery.
///
/// The rare interleavings the paper's design must survive — a GC between
/// capture and reinstatement, a segment allocation failing mid-overflow, a
/// timer preemption inside dynamic-wind — almost never occur under the
/// default tunables, so stress loops cannot be trusted to hit them.  A
/// FaultPlan makes each of them a scheduled, replayable event: the plan is
/// part of Config, honored by Heap (forced collections), ControlStack
/// (failed segment allocations) and the VM (forced timer expiries), and
/// every firing is a deterministic function of the program alone.
///
/// This header lives in the support layer so the object layer (Heap) can
/// honor a plan without depending on core/Config.h.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SUPPORT_FAULT_H
#define OSC_SUPPORT_FAULT_H

#include <cstdint>
#include <vector>

namespace osc {

/// A deterministic schedule of injected faults.  Default-constructed plans
/// are fully disarmed and cost one predictable branch per checkpoint.
struct FaultPlan {
  /// Force a collection at the next GC safepoint once this many objects
  /// have been allocated since the previous collection.  1 forces a GC at
  /// effectively every safepoint.  0 disables.
  uint64_t GcEveryNAllocs = 0;

  /// Fail the Nth fresh stack-segment allocation (1-based, counted over
  /// the ControlStack's lifetime; cache hits do not count, and the initial
  /// segment allocated at construction/reset is request #1).  The failure
  /// surfaces as a SegmentAllocFault, which the VM converts into an
  /// ordinary trappable Scheme error.  0 disables.
  uint64_t FailSegmentAlloc = 0;

  /// Fire the engine/scheduler preemption timer at exactly these procedure
  /// call ordinals (1-based, ascending, counted per VM::run), regardless of
  /// the armed fuel.  The expiry is serviced through the normal machinery
  /// (at the next Return or procedure entry), so this forces preemption at
  /// chosen points inside dynamic-wind, mid-capture sequences, etc.
  std::vector<uint64_t> PreemptAtCalls;

  bool anyArmed() const {
    return GcEveryNAllocs != 0 || FailSegmentAlloc != 0 ||
           !PreemptAtCalls.empty();
  }
};

/// Thrown by ControlStack when FaultPlan::FailSegmentAlloc fires; caught by
/// VM::run and converted into a failed RunResult, leaving the VM usable.
struct SegmentAllocFault {
  uint64_t Ordinal;        ///< Which fresh-segment request failed (1-based).
  uint32_t RequestedWords; ///< The MinWords the request asked for.
};

} // namespace osc

#endif // OSC_SUPPORT_FAULT_H
