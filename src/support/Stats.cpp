#include "support/Stats.h"

#include <sstream>

using namespace osc;

Stats::Snapshot Stats::snapshot() const {
  Snapshot Out;
#define OSC_STATS_FIELD(Name) Out.Name = Name.load();
  OSC_STATS_COUNTERS(OSC_STATS_FIELD)
#undef OSC_STATS_FIELD
  return Out;
}

Stats::Snapshot &Stats::Snapshot::operator+=(const Snapshot &O) {
#define OSC_STATS_FIELD(Name) Name += O.Name;
  OSC_STATS_COUNTERS(OSC_STATS_FIELD)
#undef OSC_STATS_FIELD
  return *this;
}

Stats::Snapshot Stats::Snapshot::operator-(const Snapshot &O) const {
  Snapshot Out;
#define OSC_STATS_FIELD(Name) Out.Name = Name - O.Name;
  OSC_STATS_COUNTERS(OSC_STATS_FIELD)
#undef OSC_STATS_FIELD
  return Out;
}

std::string Stats::Snapshot::toString() const {
  std::ostringstream OS;
#define OSC_STATS_FIELD(Name) OS << #Name << " " << Name << "\n";
  OSC_STATS_COUNTERS(OSC_STATS_FIELD)
#undef OSC_STATS_FIELD
  return OS.str();
}
