#include "support/Stats.h"

#include <sstream>

using namespace osc;

std::string Stats::toString() const {
  std::ostringstream OS;
#define OSC_STAT(Name) OS << #Name << " " << Name << "\n"
  OSC_STAT(BytesAllocated);
  OSC_STAT(ObjectsAllocated);
  OSC_STAT(GcCount);
  OSC_STAT(GcBytesFreed);
  OSC_STAT(ClosuresAllocated);
  OSC_STAT(SegmentsAllocated);
  OSC_STAT(SegmentCacheHits);
  OSC_STAT(SegmentCacheReleases);
  OSC_STAT(MultiShotCaptures);
  OSC_STAT(OneShotCaptures);
  OSC_STAT(MultiShotInvokes);
  OSC_STAT(OneShotInvokes);
  OSC_STAT(EmptyCaptures);
  OSC_STAT(Promotions);
  OSC_STAT(PromotionWalkSteps);
  OSC_STAT(WordsCopied);
  OSC_STAT(Underflows);
  OSC_STAT(Overflows);
  OSC_STAT(Splits);
  OSC_STAT(Instructions);
  OSC_STAT(ProcedureCalls);
  OSC_STAT(ContextSwitches);
  OSC_STAT(PreemptiveSwitches);
  OSC_STAT(VoluntaryYields);
  OSC_STAT(ChannelBlocks);
  OSC_STAT(RunQueuePeak);
  OSC_STAT(ThreadsSpawned);
  OSC_STAT(ChannelMessages);
  OSC_STAT(ChannelsClosed);
  OSC_STAT(IoParks);
  OSC_STAT(IoWakes);
  OSC_STAT(IoWaitPeak);
  OSC_STAT(BytesRead);
  OSC_STAT(BytesWritten);
  OSC_STAT(AcceptedConnections);
  OSC_STAT(RequestsServed);
#undef OSC_STAT
  return OS.str();
}
