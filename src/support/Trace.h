//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, fixed-capacity ring buffer of control events.
///
/// Stats (Stats.h) answers "how many"; the tracer answers "which, in what
/// order".  Every interesting transition of the control machinery — capture,
/// reinstatement, promotion, overflow, underflow, splitting, sealing, GC,
/// segment-cache drops, wind crossings, scheduler switches — can emit one
/// record: an event kind, a monotonic sequence number and up to three payload
/// words.  There are deliberately no timestamps and no addresses, so two runs
/// of the same program produce byte-identical traces; the sequence number is
/// the trace's clock.
///
/// Cost model: holders keep a `Trace *` that is usually non-null but
/// disabled; every emit site is guarded (the OSC_TRACE macro) so a disabled
/// tracer costs one predictable branch and no call.  Stats::Instructions is
/// unaffected either way — guards execute no bytecode.
///
/// The buffer is a ring: when full, the oldest records are overwritten and
/// dropped() reports how many were lost.  Export formats: toString() (one
/// "#seq name payload..." line per record) and toChromeJson() (Chrome
/// about:tracing / Perfetto instant events, with the sequence number as the
/// timestamp).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SUPPORT_TRACE_H
#define OSC_SUPPORT_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace osc {

/// Every event the tracer can record, grouped by the layer that emits it.
enum class TraceEvent : uint8_t {
  // Control stack (src/core).
  CaptureMulti,   ///< call/cc sealed the occupied portion. p0=boundary words.
  CaptureOneShot, ///< call/1cc encapsulated a window. p0=boundary, p1=segsize.
  CaptureEmpty,   ///< Empty-segment capture short-circuit (the link is the k).
  Seal,           ///< §3.4 displaced seal. p0=boundary, p1=displacement.
  InvokeMulti,    ///< Multi-shot reinstatement. p0=words copied.
  InvokeOneShot,  ///< One-shot reinstatement (zero copy). p0=segsize.
  Promote,        ///< Linear promotion of one one-shot. p0=its size words.
  PromoteFlag,    ///< SharedFlag promotion: the single flag write.
  Overflow,       ///< Segment overflow. p0=boundary, p1=words moved up.
  Underflow,      ///< Return past a segment base.
  Split,          ///< Copy-bound split (Fig. 3). p0=bottom words, p1=top words.

  // Heap (src/object).
  Alloc,     ///< Object allocation. p0=ObjKind, p1=bytes.
  GcStart,   ///< Collection begins. p0=bytes allocated since last GC.
  GcEnd,     ///< Collection ends. p0=live bytes, p1=freed bytes.
  CacheDrop, ///< Segment cache discarded at GC. p0=entries dropped.

  // VM (src/vm).
  CallCC,    ///< Explicit call/cc reached the capture path.
  Call1CC,   ///< Explicit call/1cc reached the capture path.
  WindEnter, ///< dynamic-wind extent entered (before-thunk completed).
  WindExit,  ///< dynamic-wind extent exited (after-thunk completed).

  // Scheduler (src/sched).
  SchedSwitch, ///< Control transfer. p0=kind (0 start, 1 resume, 2 finish),
               ///< p1=thread id (absent for finish).
  SchedBlock,  ///< Thread parked. p0=new ThreadState, p1=thread id.
  SchedWake,   ///< Blocked/sleeping thread made runnable. p0=thread id.

  // I/O reactor (src/io).  Payloads carry port ids, never raw fds — fd
  // numbers depend on what the OS recycles and would break run-to-run
  // trace equality.
  IoWait,    ///< Thread parked on fd readiness. p0=port id, p1=IoOp,
             ///< p2=thread id.
  IoReady,   ///< Parked operation completed and its thread woken.
             ///< p0=port id, p1=IoOp, p2=thread id.
  Accept,    ///< Connection accepted. p0=listener port id, p1=new port id.
  ChanClose, ///< channel-close!. p0=channel id, p1=receivers woken,
             ///< p2=senders woken.
  IoTimeout, ///< A deadline fired on a parked wait. p0=port id (0 for a
             ///< fd-less timer), p1=IoOp, p2=thread id.
  IoDrop,    ///< Connection dropped by overload defense. p0=port id,
             ///< p1=reason (0 output overflow, 1 deadline, 2 idle reap).
  Shed,      ///< Admission control refused a connection with BUSY.
             ///< p0=port id.

  // Delimited control (src/control + src/vm).
  Reset,  ///< Prompt planted. p0=record id.
  Shift,  ///< Slice cut up to the nearest matching mark. p0=record id,
          ///< p1=slice chain members, p2=members deep-cloned (0 in the
          ///< one-shot steady state: zero stack words copied).
  Splice, ///< Slice spliced back in front of the invoke-site continuation.
          ///< p0=record id, p1=slice chain members (0 for an empty slice).

  // Effect handlers + structured concurrency (src/control + src/sched).
  Handle,        ///< Handler prompt planted by with-handler. p0=record id,
                 ///< p1=1 for shallow mode, 0 for deep.
  Perform,       ///< perform cut the slice to its handler's mark and
                 ///< dispatched. p0=record id, p1=slice chain members,
                 ///< p2=members deep-cloned (0 in the one-shot steady
                 ///< state).
  NurseryCancel, ///< A nursery poisoned and retired a child green thread
                 ///< (scope exit, child failure, or connection teardown).
                 ///< p0=thread id.

  // VM dispatch (src/vm).
  Cache, ///< Inline-cache probe. p0=site kind (0 get-global, 1 set-global,
         ///< 2 call, 3 tail-call), p1=1 hit / 0 miss, p2=cache index.
         ///< Deterministic per config point, but config-dependent (off when
         ///< Config::InlineCaches is off), so trace-comparing sweeps filter
         ///< it out like heap events.
};

/// Stable, kebab-case event name ("capture-multi", "sched-switch", ...).
const char *traceEventName(TraceEvent E);

class Trace {
public:
  static constexpr uint32_t MaxPayloadWords = 3;

  struct Record {
    uint64_t Seq;     ///< Monotonic since the last clear(); 0-based.
    TraceEvent Kind;
    uint8_t NPayload; ///< How many of Payload[] are meaningful.
    uint64_t Payload[MaxPayloadWords];
  };

  explicit Trace(uint32_t CapacityEvents = 1u << 16);

  bool enabled() const { return Enabled; }
  /// Clears the buffer and starts recording.
  void start() {
    clear();
    Enabled = true;
  }
  void stop() { Enabled = false; }
  void clear() {
    NextSeq = 0;
  }

  void emit(TraceEvent K) { push(K, 0); }
  void emit(TraceEvent K, uint64_t A) {
    Record &R = push(K, 1);
    R.Payload[0] = A;
  }
  void emit(TraceEvent K, uint64_t A, uint64_t B) {
    Record &R = push(K, 2);
    R.Payload[0] = A;
    R.Payload[1] = B;
  }
  void emit(TraceEvent K, uint64_t A, uint64_t B, uint64_t C) {
    Record &R = push(K, 3);
    R.Payload[0] = A;
    R.Payload[1] = B;
    R.Payload[2] = C;
  }

  /// Records currently held (<= capacity).
  size_t size() const {
    return NextSeq < Ring.size() ? static_cast<size_t>(NextSeq) : Ring.size();
  }
  size_t capacity() const { return Ring.size(); }
  /// Total records emitted since the last clear (including overwritten).
  uint64_t emitted() const { return NextSeq; }
  /// Records lost to ring wraparound.
  uint64_t dropped() const { return NextSeq - size(); }

  /// Oldest-first copy of the held records.
  std::vector<Record> snapshot() const;
  /// One "#seq name payload..." line per held record, oldest first; a final
  /// "... N earlier event(s) dropped" header line when the ring wrapped.
  std::string toString() const;
  /// Chrome about:tracing / Perfetto JSON ("traceEvents" array of instant
  /// events, sequence number as timestamp).
  std::string toChromeJson() const;

private:
  Record &push(TraceEvent K, uint8_t N) {
    Record &R = Ring[static_cast<size_t>(NextSeq % Ring.size())];
    R.Seq = NextSeq++;
    R.Kind = K;
    R.NPayload = N;
    return R;
  }

  std::vector<Record> Ring; ///< Fixed capacity, allocated once.
  uint64_t NextSeq = 0;
  bool Enabled = false;
};

/// Guarded emit: one branch when \p TR is null or disabled, no call.
#define OSC_TRACE(TR, ...)                                                     \
  do {                                                                         \
    ::osc::Trace *T_ = (TR);                                                   \
    if (T_ && T_->enabled())                                                   \
      T_->emit(__VA_ARGS__);                                                   \
  } while (0)

} // namespace osc

#endif // OSC_SUPPORT_TRACE_H
