//===----------------------------------------------------------------------===//
///
/// \file
/// Execution counters shared by the heap, the control stack and the VM.
///
/// The paper reports relative results in both milliseconds and allocation
/// volume ("allocates 23% less memory", "allocates very little additional
/// memory after the first recursion").  Wall-clock numbers on 2026 hardware
/// cannot be compared with a 1996 DEC Alpha, so alongside times the benchmark
/// harness reports these machine-independent counters; they determine the
/// shapes the paper's figures show (copy traffic, segment churn, allocation).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SUPPORT_STATS_H
#define OSC_SUPPORT_STATS_H

#include <cstdint>
#include <string>

namespace osc {

/// Counter block for one interpreter instance.  All counters are monotonic
/// over the life of the instance; benchmarks snapshot/diff them.
struct Stats {
  // Heap.
  uint64_t BytesAllocated = 0;   ///< Total bytes ever allocated.
  uint64_t ObjectsAllocated = 0; ///< Total heap objects ever allocated.
  uint64_t GcCount = 0;          ///< Collections performed.
  uint64_t GcBytesFreed = 0;     ///< Bytes reclaimed by all collections.
  uint64_t ClosuresAllocated = 0; ///< Closure objects created (§5: the
                                  ///< stack model's Boyer allocates none).

  // Control stack (src/core).
  uint64_t SegmentsAllocated = 0;    ///< Fresh stack segments from the heap.
  uint64_t SegmentCacheHits = 0;     ///< Segments satisfied from the cache.
  uint64_t SegmentCacheReleases = 0; ///< Segments returned to the cache.
  uint64_t MultiShotCaptures = 0;    ///< call/cc captures (explicit).
  uint64_t OneShotCaptures = 0;      ///< call/1cc captures (explicit).
  uint64_t MultiShotInvokes = 0;     ///< Multi-shot reinstatements.
  uint64_t OneShotInvokes = 0;       ///< One-shot reinstatements.
  uint64_t EmptyCaptures = 0;        ///< Empty-segment capture short-circuits.
  uint64_t Promotions = 0;           ///< One-shots promoted to multi-shot.
  uint64_t PromotionWalkSteps = 0;   ///< Chain links visited while promoting.
  uint64_t WordsCopied = 0;  ///< Stack words memcpy'd (reinstate + overflow).
  uint64_t Underflows = 0;   ///< Returns past a segment base.
  uint64_t Overflows = 0;    ///< Segment overflows handled.
  uint64_t Splits = 0;       ///< Continuation splits (copy bound).

  // VM.
  uint64_t Instructions = 0;   ///< Bytecode instructions executed.
  uint64_t ProcedureCalls = 0; ///< CALL + TAILCALL of closures/natives.

  // Scheduler (src/sched).  ContextSwitches counts every control transfer
  // the scheduler performs (thread starts, resumes and the final return to
  // the suspended main computation); the benchmark harness diffs it against
  // WordsCopied to prove a steady-state native switch copies zero stack
  // words (the paper's Figure 5 claim, machine-independently).
  uint64_t ContextSwitches = 0;    ///< All scheduler control transfers.
  uint64_t PreemptiveSwitches = 0; ///< Timer-forced (involuntary) switches.
  uint64_t VoluntaryYields = 0;    ///< Explicit (yield) calls.
  uint64_t ChannelBlocks = 0;      ///< send/recv suspensions on full/empty.
  uint64_t RunQueuePeak = 0;       ///< High-water mark of the ready queue.
  uint64_t ThreadsSpawned = 0;     ///< Green threads ever created.
  uint64_t ChannelMessages = 0;    ///< Values accepted into a channel.
  uint64_t ChannelsClosed = 0;     ///< channel-close! calls that closed.

  // I/O reactor (src/io) and serving layer (src/serve).  IoParks is the
  // denominator of the serving layer's headline metric: WordsCopied delta
  // divided by IoParks must be zero in steady state (each park/resume is a
  // one-shot capture + one-shot invoke; nothing is memcpy'd).
  uint64_t IoParks = 0;              ///< Threads parked awaiting readiness.
  uint64_t IoWakes = 0;              ///< Parked threads handed back ready.
  uint64_t IoWaitPeak = 0;           ///< High-water mark of parked threads.
  uint64_t BytesRead = 0;            ///< Bytes moved fd -> input buffers.
  uint64_t BytesWritten = 0;         ///< Bytes moved output buffers -> fd.
  uint64_t AcceptedConnections = 0;  ///< Connections accepted by io-accept.
  uint64_t RequestsServed = 0;       ///< serve-request-done! calls.

  /// Renders all counters, one "name value" pair per line.
  std::string toString() const;
};

} // namespace osc

#endif // OSC_SUPPORT_STATS_H
