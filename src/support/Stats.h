//===----------------------------------------------------------------------===//
///
/// \file
/// Execution counters shared by the heap, the control stack and the VM.
///
/// The paper reports relative results in both milliseconds and allocation
/// volume ("allocates 23% less memory", "allocates very little additional
/// memory after the first recursion").  Wall-clock numbers on 2026 hardware
/// cannot be compared with a 1996 DEC Alpha, so alongside times the benchmark
/// harness reports these machine-independent counters; they determine the
/// shapes the paper's figures show (copy traffic, segment churn, allocation).
///
/// Each counter has exactly one writer (the VM thread that owns the Stats
/// block) but, since the serving Pool runs one interpreter per OS thread and
/// aggregates load/stats while workers run, any thread may *read* one.
/// Counter therefore wraps a relaxed atomic: increments stay a plain
/// load+add+store (no lock-prefixed RMW on the per-instruction hot path —
/// single-writer makes that exact), and cross-thread readers get tear-free
/// values via snapshot().  Counters are approximate only in the sense that a
/// concurrent snapshot sees some recent consistent-per-counter state, which
/// is all load-balancing and progress reporting need.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SUPPORT_STATS_H
#define OSC_SUPPORT_STATS_H

#include <atomic>
#include <cstdint>
#include <string>

namespace osc {

/// The single source of truth for the counter set.  X-macro so the Counter
/// fields, the Snapshot fields and every whole-block operation (snapshot,
/// aggregate, diff, print) can never drift apart.  Comments must be /* */:
/// a // comment would eat the continuation backslash.
// clang-format off
#define OSC_STATS_COUNTERS(X)                                                  \
  /* Heap. */                                                                  \
  X(BytesAllocated)     /* Total bytes ever allocated. */                      \
  X(ObjectsAllocated)   /* Total heap objects ever allocated. */               \
  X(GcCount)            /* Collections performed. */                           \
  X(GcBytesFreed)       /* Bytes reclaimed by all collections. */              \
  X(ClosuresAllocated)  /* Closure objects created (S5: the stack model's      \
                           Boyer allocates none). */                           \
  /* Control stack (src/core). */                                              \
  X(SegmentsAllocated)    /* Fresh stack segments from the heap. */            \
  X(SegmentCacheHits)     /* Segments satisfied from the cache. */             \
  X(SegmentCacheReleases) /* Segments returned to the cache. */                \
  X(MultiShotCaptures)    /* call/cc captures (explicit). */                   \
  X(OneShotCaptures)      /* call/1cc captures (explicit). */                  \
  X(MultiShotInvokes)     /* Multi-shot reinstatements. */                     \
  X(OneShotInvokes)       /* One-shot reinstatements. */                       \
  X(EmptyCaptures)        /* Empty-segment capture short-circuits. */          \
  X(Promotions)           /* One-shots promoted to multi-shot. */              \
  X(PromotionWalkSteps)   /* Chain links visited while promoting. */           \
  X(WordsCopied)          /* Stack words memcpy'd (reinstate + overflow). */   \
  X(Underflows)           /* Returns past a segment base. */                   \
  X(Overflows)            /* Segment overflows handled. */                     \
  X(Splits)               /* Continuation splits (copy bound). */              \
  /* VM. */                                                                    \
  X(Instructions)         /* Bytecode instructions executed.  Fused            \
                             superinstructions count as the pair they          \
                             replace, so the total is invariant across         \
                             dispatch modes and fusion masks. */               \
  X(ProcedureCalls)       /* CALL + TAILCALL of closures/natives. */           \
  X(CacheHits)            /* Inline-cache hits (global refs + call sites). */  \
  X(CacheMisses)          /* Inline-cache misses (slow path + refill). */      \
  /* Scheduler (src/sched).  ContextSwitches counts every control transfer     \
     the scheduler performs (thread starts, resumes and the final return to    \
     the suspended main computation); the benchmark harness diffs it against   \
     WordsCopied to prove a steady-state native switch copies zero stack       \
     words (the paper's Figure 5 claim, machine-independently). */             \
  X(ContextSwitches)      /* All scheduler control transfers. */               \
  X(PreemptiveSwitches)   /* Timer-forced (involuntary) switches. */           \
  X(VoluntaryYields)      /* Explicit (yield) calls. */                        \
  X(ChannelBlocks)        /* send/recv suspensions on full/empty. */           \
  X(RunQueuePeak)         /* High-water mark of the ready queue. */            \
  X(ThreadsSpawned)       /* Green threads ever created. */                    \
  X(ChannelMessages)      /* Values accepted into a channel. */                \
  X(ChannelsClosed)       /* channel-close! calls that closed. */              \
  /* I/O reactor (src/io) and serving layer (src/serve).  IoParks is the       \
     denominator of the serving layer's headline metric: WordsCopied delta     \
     divided by IoParks must be zero in steady state (each park/resume is a    \
     one-shot capture + one-shot invoke; nothing is memcpy'd). */              \
  X(IoParks)              /* Threads parked awaiting readiness. */             \
  X(IoWakes)              /* Parked threads handed back ready. */              \
  X(IoWaitPeak)           /* High-water mark of parked threads. */             \
  X(BytesRead)            /* Bytes moved fd -> input buffers. */               \
  X(BytesWritten)         /* Bytes moved output buffers -> fd. */              \
  X(AcceptedConnections)  /* Connections accepted or adopted. */               \
  X(AcceptBatches)        /* Park-wakes that delivered >= 1 connection         \
                             (io-accept / io-take-conn resumes); non-parking   \
                             accepts join the current batch, so Accepted /     \
                             Batches is the mean accept batch size. */         \
  X(ConnectionsClosed)    /* Stream ports closed (io-close / EOF teardown);    \
                             Accepted - Closed = live connections, the pool's  \
                             least-loaded signal. */                           \
  X(RequestsServed)       /* serve-request-done! calls. */                     \
  /* Overload protection (deadline wheel + admission control).  Every         \
     timeout cancellation is a poisoned one-shot invoke, so Timeouts adds     \
     nothing to WordsCopied — the oracle pins that. */                        \
  X(Timeouts)             /* Deadlines fired (parks + with-deadline). */      \
  X(RequestsShed)         /* Connections refused with BUSY at admission. */   \
  X(ConnsReaped)          /* Connections dropped (idle / slow / overflow). */ \
  X(WorkerRestarts)       /* Pool workers auto-restarted after a crash. */    \
  X(IoWaitDeadlinePeak)   /* High-water mark of deadline-armed waiters. */    \
  /* Delimited control (src/control).  SliceClonedWords isolates the only    \
     copying path delimited capture has (deep-cloning shared chain members   \
     before the splice may relink them); a pure one-shot extent keeps it at  \
     zero, which bench_control asserts per yield. */                         \
  X(PromptResets)         /* (reset tag thunk) prompts planted. */           \
  X(SliceCaptures)        /* (shift tag k body) slices cut to a mark. */     \
  X(SliceSplices)         /* Delimited k invokes that spliced a slice. */    \
  X(SliceClonedWords)     /* Stack words copied by cloneShared. */           \
  /* Effect handlers + structured concurrency.  Performs rides the same     \
     cut/splice path as shift, so the zero-copy claim extends verbatim:     \
     WordsCopied stays flat per perform+resume (bench_control asserts it   \
     against the DelimOneShot=false copying shim). */                      \
  X(HandlersInstalled)    /* (with-handler ...) prompts planted. */        \
  X(Performs)             /* (perform tag op ...) dispatches. */           \
  X(NurseryCancels)       /* Green threads cancelled by nursery escape     \
                             poisoning (scope exit / child failure /       \
                             connection reap). */                          \
  /* Regex engine (src/regex).  RegexSteps counts Pike-VM thread-state    \
     visits; dedup-by-pc bounds it by (bytes + 1) * program size, the     \
     machine-independent linearity witness bench_regex gates the          \
     pathological (a?)^n a^n column on. */                                \
  X(RegexCompiles)        /* Patterns compiled to bytecode. */            \
  X(RegexExecs)           /* match/search/stream runs started. */         \
  X(RegexStreamFeeds)     /* Chunks fed to streaming matchers. */         \
  X(RegexBytesScanned)    /* Input bytes the executor consumed. */        \
  X(RegexSteps)           /* Thread-state visits (linearity bound). */
// clang-format on

/// Counter block for one interpreter instance.  All counters are monotonic
/// over the life of the instance (except high-water marks, which are
/// monotonic too — they only ratchet up); benchmarks snapshot/diff them.
struct Stats {
  /// Single-writer relaxed-atomic counter.  The owning VM thread mutates
  /// (plain read-modify-write expressed as two relaxed accesses, which is
  /// race-free because there is exactly one writer); any thread may read.
  /// Copyable so Stats itself stays copyable (copies are plain values).
  class Counter {
  public:
    Counter() = default;
    Counter(uint64_t N) : V(N) {}
    Counter(const Counter &O) : V(O.load()) {}
    Counter &operator=(const Counter &O) {
      V.store(O.load(), std::memory_order_relaxed);
      return *this;
    }
    Counter &operator=(uint64_t N) {
      V.store(N, std::memory_order_relaxed);
      return *this;
    }
    /// Owner-thread increment: NOT an atomic RMW (no lock prefix), safe
    /// because each counter has exactly one writer.
    Counter &operator+=(uint64_t N) {
      V.store(V.load(std::memory_order_relaxed) + N,
              std::memory_order_relaxed);
      return *this;
    }
    operator uint64_t() const { return load(); }
    uint64_t load() const { return V.load(std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> V{0};
  };

  /// A tear-free point-in-time copy: plain integers, trivially copyable,
  /// safe to read, diff and sum from any thread.  This is the only shape
  /// the embedding API hands out (Interp/Server/Pool all return Snapshot);
  /// live Counter references stay internal.
  struct Snapshot {
#define OSC_STATS_FIELD(Name) uint64_t Name = 0;
    OSC_STATS_COUNTERS(OSC_STATS_FIELD)
#undef OSC_STATS_FIELD

    /// Element-wise accumulate: Pool::snapshot() sums worker snapshots.
    /// (High-water marks add too — an aggregate peak over independent
    /// shards is at most the sum; callers wanting per-shard peaks read
    /// the per-worker snapshots.)
    Snapshot &operator+=(const Snapshot &O);
    /// Element-wise difference against an earlier baseline.
    Snapshot operator-(const Snapshot &O) const;
    /// Renders all counters, one "name value" pair per line.
    std::string toString() const;
  };

#define OSC_STATS_FIELD(Name) Counter Name;
  OSC_STATS_COUNTERS(OSC_STATS_FIELD)
#undef OSC_STATS_FIELD

  /// Tear-free copy of every counter, callable from any thread while the
  /// owning VM keeps running.
  Snapshot snapshot() const;

  /// Renders all counters, one "name value" pair per line.
  std::string toString() const { return snapshot().toString(); }
};

} // namespace osc

#endif // OSC_SUPPORT_STATS_H
