#include "support/Trace.h"

#include "support/Diag.h"

#include <algorithm>

using namespace osc;

const char *osc::traceEventName(TraceEvent E) {
  switch (E) {
  case TraceEvent::CaptureMulti:
    return "capture-multi";
  case TraceEvent::CaptureOneShot:
    return "capture-oneshot";
  case TraceEvent::CaptureEmpty:
    return "capture-empty";
  case TraceEvent::Seal:
    return "seal";
  case TraceEvent::InvokeMulti:
    return "invoke-multi";
  case TraceEvent::InvokeOneShot:
    return "invoke-oneshot";
  case TraceEvent::Promote:
    return "promote";
  case TraceEvent::PromoteFlag:
    return "promote-flag";
  case TraceEvent::Overflow:
    return "overflow";
  case TraceEvent::Underflow:
    return "underflow";
  case TraceEvent::Split:
    return "split";
  case TraceEvent::Alloc:
    return "alloc";
  case TraceEvent::GcStart:
    return "gc-start";
  case TraceEvent::GcEnd:
    return "gc-end";
  case TraceEvent::CacheDrop:
    return "cache-drop";
  case TraceEvent::CallCC:
    return "call/cc";
  case TraceEvent::Call1CC:
    return "call/1cc";
  case TraceEvent::WindEnter:
    return "wind-enter";
  case TraceEvent::WindExit:
    return "wind-exit";
  case TraceEvent::SchedSwitch:
    return "sched-switch";
  case TraceEvent::SchedBlock:
    return "sched-block";
  case TraceEvent::SchedWake:
    return "sched-wake";
  case TraceEvent::IoWait:
    return "io-wait";
  case TraceEvent::IoReady:
    return "io-ready";
  case TraceEvent::Accept:
    return "accept";
  case TraceEvent::ChanClose:
    return "chan-close";
  case TraceEvent::IoTimeout:
    return "io-timeout";
  case TraceEvent::IoDrop:
    return "io-drop";
  case TraceEvent::Shed:
    return "shed";
  case TraceEvent::Reset:
    return "reset";
  case TraceEvent::Shift:
    return "shift";
  case TraceEvent::Splice:
    return "splice";
  case TraceEvent::Handle:
    return "handle";
  case TraceEvent::Perform:
    return "perform";
  case TraceEvent::NurseryCancel:
    return "nursery-cancel";
  case TraceEvent::Cache:
    return "cache";
  }
  oscUnreachable("bad TraceEvent");
}

Trace::Trace(uint32_t CapacityEvents)
    : Ring(std::max<uint32_t>(CapacityEvents, 1)) {}

std::vector<Trace::Record> Trace::snapshot() const {
  std::vector<Record> Out;
  size_t N = size();
  Out.reserve(N);
  uint64_t First = NextSeq - N;
  for (uint64_t S = First; S != NextSeq; ++S)
    Out.push_back(Ring[static_cast<size_t>(S % Ring.size())]);
  return Out;
}

std::string Trace::toString() const {
  std::string Out;
  if (uint64_t D = dropped())
    Out += "... " + std::to_string(D) + " earlier event(s) dropped\n";
  for (const Record &R : snapshot()) {
    Out += "#" + std::to_string(R.Seq) + " " + traceEventName(R.Kind);
    for (uint8_t I = 0; I != R.NPayload; ++I)
      Out += " " + std::to_string(R.Payload[I]);
    Out += "\n";
  }
  return Out;
}

std::string Trace::toChromeJson() const {
  // Instant events on one synthetic thread; the deterministic sequence
  // number stands in for the timestamp, so the JSON is deterministic too.
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const Record &R : snapshot()) {
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"name\":\"";
    Out += traceEventName(R.Kind);
    Out += "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":" +
           std::to_string(R.Seq) + ",\"args\":{";
    for (uint8_t I = 0; I != R.NPayload; ++I) {
      if (I)
        Out += ",";
      Out += "\"p" + std::to_string(I) + "\":" + std::to_string(R.Payload[I]);
    }
    Out += "}}";
  }
  Out += "],\"displayTimeUnit\":\"ms\"}";
  return Out;
}
