//===----------------------------------------------------------------------===//
///
/// \file
/// Delimited control on the one-shot substrate (src/control).
///
/// A *prompt* (the delimiter planted by `(reset tag thunk)`) is a marked
/// boundary in the continuation chain: the PromptRecord remembers, by
/// identity, the continuation the reset site captured one-shot — the Mark.
/// Everything the program pushes inside the reset extent sits *above* the
/// Mark in the chain, so `(shift tag k body)` can delimit its capture by
/// cutting the chain exactly where a link equals the Mark, reusing the
/// paper's Figure-3 split idiom (re-view, re-link — never copy) instead of
/// copying frames out of the stack.
///
/// The records themselves live on a per-thread PromptTable (swapped with
/// the scheduler context like *winders*); the matching stack frame is the
/// prompt stub frame the VM builds above each reset's base frame, whose
/// single slot holds the record id (core/FrameWalk.h::FramePromptId).
/// Returning through the stub pops the record, and escapes that jump past
/// the stub leave a stale record behind that findLive() later skips by
/// re-walking the chain for the Mark.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_CONTROL_PROMPT_H
#define OSC_CONTROL_PROMPT_H

#include "core/ControlStack.h"
#include "object/Heap.h"
#include "object/Objects.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace osc {

/// One active delimiter.  All Values are GC-traced via PromptTable.
///
/// A plain reset leaves Handler Empty.  with-handler installs the same
/// boundary plus a handler procedure: perform searches only records whose
/// Handler is non-Empty, cuts the slice to the Mark exactly like shift,
/// pops this record (the handler body runs *outside* its own delimiter,
/// so an unhandled op inside the handler forwards outward and a clause
/// that never invokes k is abortive for free), and calls Handler with the
/// op, the one-shot delimited k and the argument list.  Shallow marks a
/// handler whose resumption does NOT reinstall it: invoking the captured
/// k re-pushes the boundary with Handler cleared, so the next perform in
/// the resumed slice dispatches to the next handler out.
struct PromptRecord {
  Value Tag;     ///< The reset's tag (compared by identity).
  Value Mark;    ///< Continuation captured at the reset site: the boundary.
  Value Winders; ///< *winders* at reset entry (shift unwinds back to it).
  uint64_t Id;   ///< Matches the stub frame's FramePromptId slot.
  Value Handler; ///< Effect-handler procedure, or Empty for a plain reset.
  bool Shallow = false; ///< Shallow mode: k's re-push clears Handler.
};

/// The per-thread stack of active delimiters, innermost last.  The VM owns
/// one live table; suspended green threads keep theirs in SchedContext.
class PromptTable {
public:
  void push(const PromptRecord &R) { Records.push_back(R); }
  void clear() { Records.clear(); }

  bool empty() const { return Records.empty(); }
  size_t size() const { return Records.size(); }
  const PromptRecord &top() const { return Records.back(); }
  const PromptRecord &at(size_t I) const { return Records[I]; }

  /// Innermost record whose Tag is identical to \p Tag *and* whose Mark is
  /// still reachable from \p ChainHead (records stranded by an undelimited
  /// escape are dropped on the way).  With \p RequireHandler, only records
  /// carrying a non-Empty Handler match — perform must never target a
  /// plain reset that happens to share the tag.  Returns the index, or -1
  /// if none.
  int64_t findLive(Value Tag, Value ChainHead, bool RequireHandler = false);

  /// Pops records from the top until (and including) the one with \p Id.
  /// No-op when \p Id is not present (a stale stub return after an escape
  /// already unwound it).
  void popThrough(uint64_t Id);

  /// Removes and returns every record above index \p Idx (exclusive), in
  /// stack order (outermost first).  They belong to the slice being cut.
  std::vector<PromptRecord> takeAbove(size_t Idx);

  void traceRoots(GCVisitor &V);

private:
  std::vector<PromptRecord> Records;
};

/// A delimited slice cut out of the chain by cutSliceToMark.
struct DelimSlice {
  Value Top;            ///< Topmost continuation, or Empty for an empty slice.
  Continuation *Bottom = nullptr; ///< The member whose Link was the Mark
                                  ///< (null when empty); spliceOntoMark
                                  ///< rewrites its Link.
  uint32_t Members = 0; ///< Chain members in the slice.
  uint32_t Cloned = 0;  ///< How many were deep-cloned (0 in steady state).
  /// (original, clone) for every member cloneShared replaced.  PromptRecords
  /// cut out with the slice may name an original as their Mark; the caller
  /// remaps them so the records stay live when the slice is spliced back.
  std::vector<std::pair<Continuation *, Continuation *>> Remapped;
};

/// True when \p Mark is reachable from \p ChainHead by following links
/// (stopping at halt / the thread guard / any shot member).
bool chainReaches(Value ChainHead, Value Mark);

/// Cuts the delimited slice between the current computation and \p Mark.
///
/// Pre: the caller already captured the current window (one-shot on the
/// fast path) so CS.link() heads the chain, and \p Mark is reachable.
/// Walks the chain from \p Head to the member linking to \p Mark; every
/// member that is *not* an exclusively-owned one-shot (promoted, or
/// captured multi-shot inside the extent) is deep-cloned via
/// ControlStack::cloneShared so the later splice can rewrite the bottom
/// link without mutating a continuation other captures may still hold.
/// In the steady state (pure one-shot chain) this touches only headers:
/// zero stack words move.  Afterwards the caller aborts to the prompt with
/// CS.setLink(Mark).
DelimSlice cutSliceToMark(ControlStack &CS, Value Head, Value Mark);

/// Splices \p Slice back in front of \p NewLink (the continuation captured
/// at the invoke site): the one-shot re-instatement half of the Figure-3
/// idiom — a single link store.  Empty slices are a no-op.
void spliceOntoMark(DelimSlice &Slice, Value NewLink);

} // namespace osc

#endif // OSC_CONTROL_PROMPT_H
