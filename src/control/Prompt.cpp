#include "control/Prompt.h"

#include "support/Diag.h"

using namespace osc;

// --- PromptTable ---------------------------------------------------------------

int64_t PromptTable::findLive(Value Tag, Value ChainHead,
                              bool RequireHandler) {
  while (!Records.empty()) {
    const PromptRecord &R = Records.back();
    if (!chainReaches(ChainHead, R.Mark)) {
      // Stranded by an undelimited escape (call/cc jumped past the stub
      // without popping): the delimiter's extent is gone, so the record is
      // dead weight.  Dropping here keeps the table a faithful mirror of
      // the chain without making escapes pay to search for stubs.
      Records.pop_back();
      continue;
    }
    break;
  }
  for (size_t I = Records.size(); I != 0; --I) {
    const PromptRecord &R = Records[I - 1];
    if (R.Tag.identical(Tag) && !(RequireHandler && R.Handler.isEmpty()) &&
        chainReaches(ChainHead, R.Mark))
      return static_cast<int64_t>(I - 1);
  }
  return -1;
}

void PromptTable::popThrough(uint64_t Id) {
  for (size_t I = Records.size(); I != 0; --I) {
    if (Records[I - 1].Id == Id) {
      Records.resize(I - 1);
      return;
    }
  }
  // Absent: a stale stub returned after an escape already unwound past it
  // and a later findLive() pruned the record.  Nothing to do.
}

std::vector<PromptRecord> PromptTable::takeAbove(size_t Idx) {
  std::vector<PromptRecord> Out(Records.begin() + Idx + 1, Records.end());
  Records.resize(Idx + 1);
  return Out;
}

void PromptTable::traceRoots(GCVisitor &V) {
  for (PromptRecord &R : Records) {
    V.visit(R.Tag);
    V.visit(R.Mark);
    V.visit(R.Winders);
    V.visit(R.Handler);
  }
}

// --- Chain walks ---------------------------------------------------------------

bool osc::chainReaches(Value ChainHead, Value Mark) {
  Value Cur = ChainHead;
  for (;;) {
    if (Cur.identical(Mark))
      return true;
    auto *K = dynObj<Continuation>(Cur);
    // Halt, the thread guard (a shared shot sentinel), and any shot member
    // all end the walk: nothing beyond them is part of this computation.
    if (!K || K->isHalt() || K->isShot())
      return false;
    Cur = K->Link;
  }
}

DelimSlice osc::cutSliceToMark(ControlStack &CS, Value Head, Value Mark) {
  DelimSlice Slice;
  if (Head.identical(Mark))
    return Slice; // Empty slice: shift in tail position at the delimiter.

  Continuation *Prev = nullptr;
  Value Cur = Head;
  bool CloneRest = false;
  for (;;) {
    auto *K = dynObj<Continuation>(Cur);
    if (!K || K->isHalt() || K->isShot())
      oscFatal("cutSliceToMark: mark vanished from a validated chain");
    if (!K->isOneShot() || K->ByValue || CloneRest) {
      // Promoted, multi-shot, or aliased by a dormant first-class k: some
      // other capture may still reference this member, so the splice must
      // not rewrite its Link in place.  Deep-clone it into an exclusively-
      // owned one-shot view (the only copying path in delimited capture;
      // pure one-shot extents never take it).  And because an alias reaches
      // everything below the member through its Link, sharing is suffix-
      // closed: once one member is cloned, the rest of the slice down to
      // the bottom (whose Link the splice rewrites) must be cloned too, so
      // the alias keeps returning through the capture-time chain.
      // (Promotion already has this shape — promoteChain promotes the whole
      // chain below a multi-shot capture — so CloneRest only changes
      // behavior for the by-value case.)
      CloneRest = true;
      Continuation *Clone = CS.cloneShared(K);
      Slice.Remapped.emplace_back(K, Clone);
      Slice.Cloned += 1;
      K = Clone;
      Cur = Value::object(K);
    }
    Slice.Members += 1;
    if (Prev)
      Prev->Link = Cur;
    else
      Slice.Top = Cur;
    if (K->Link.identical(Mark)) {
      Slice.Bottom = K;
      return Slice;
    }
    Prev = K;
    Cur = K->Link;
  }
}

void osc::spliceOntoMark(DelimSlice &Slice, Value NewLink) {
  if (Slice.Bottom)
    Slice.Bottom->Link = NewLink;
}
