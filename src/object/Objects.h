//===----------------------------------------------------------------------===//
///
/// \file
/// Heap object layouts.
///
/// All heap objects begin with an ObjHeader carrying the kind, the mark bit
/// for the non-moving mark-sweep collector, and an intrusive link used by
/// the sweep phase.  Variable-length objects (strings, vectors, code,
/// closures, stack segments) store their payload inline after the fixed
/// fields.
///
/// StackSegment and Continuation are the data half of the paper's
/// contribution; the operations on them live in src/core/ControlStack.h.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_OBJECT_OBJECTS_H
#define OSC_OBJECT_OBJECTS_H

#include "object/Value.h"

#include <cassert>
#include <cstdint>
#include <string_view>

namespace osc {

class VM;

enum class ObjKind : uint8_t {
  Pair,
  Symbol,
  String,
  Vector,
  Cell,
  Flonum,
  Closure,
  Code,
  Native,
  Continuation,
  StackSegment,
  RegexProg,
  RegexStream,
};

/// Returns a human-readable name for \p K ("pair", "vector", ...).
const char *objKindName(ObjKind K);

/// Common header of every heap object.
struct ObjHeader {
  ObjHeader *Next = nullptr; ///< Intrusive all-objects list for sweeping.
  uint32_t SizeBytes = 0;    ///< Full allocation size, for accounting.
  ObjKind Kind;
  bool Mark = false;

  ObjKind kind() const { return Kind; }
};

/// Obtains the object header behind \p V, asserting it is of kind \p K.
template <typename T> T *castObj(Value V) {
  assert(V.isObject() && V.asObject()->Kind == T::ClassKind &&
         "value is not of the expected heap kind");
  return static_cast<T *>(V.asObject());
}

template <typename T> bool isObj(Value V) {
  return V.isObject() && V.asObject()->Kind == T::ClassKind;
}

template <typename T> T *dynObj(Value V) {
  return isObj<T>(V) ? static_cast<T *>(V.asObject()) : nullptr;
}

// --- Simple objects ---------------------------------------------------------

struct Pair : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Pair;
  Value Car;
  Value Cdr;
};

struct Cell : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Cell;
  Value Val;
};

struct Flonum : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Flonum;
  double D;
};

/// Interned symbol.  Carries the global (top-level) binding inline so global
/// reference is a single indirection.
struct Symbol : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Symbol;
  Value Global; ///< Top-level binding; Undefined until defined.
  uint32_t Len;
  char Name[1]; ///< Inline, NUL-terminated.

  std::string_view name() const { return {Name, Len}; }
};

struct String : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::String;
  uint32_t Len;
  char Data[1]; ///< Inline, NUL-terminated.

  std::string_view view() const { return {Data, Len}; }
};

struct Vector : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Vector;
  uint32_t Len;
  Value Elems[1]; ///< Inline.

  Value get(uint32_t I) const {
    assert(I < Len && "vector index out of range");
    return Elems[I];
  }
  void set(uint32_t I, Value V) {
    assert(I < Len && "vector index out of range");
    Elems[I] = V;
  }
};

// --- Code and procedures -----------------------------------------------------

/// One monomorphic inline-cache slot, embedded in the Code allocation
/// right after the instruction words.  The VM fills and probes these when
/// Config::InlineCaches is on; Key == 0 means empty.  GC does NOT trace
/// cache slots — keys are weak by construction: a global-site key is the
/// Symbol already pinned by the code's constant vector, and a call-site
/// key is only trusted while Gen still equals the GC epoch it was filled
/// in (the heap is non-moving, so an address can only be recycled after a
/// collection, which bumps the epoch and invalidates the slot).
struct CacheSlot {
  uint64_t Key; ///< Cached resolution identity (Symbol* / callee bits).
  uint64_t Gen; ///< Generation the fill is valid for (global gen / GC epoch).
  uint64_t Aux; ///< Per-kind payload: the callee's frame Need for call sites.
};

/// Compiled bytecode for one lambda.
///
/// The instruction stream is a flat array of 32-bit words.  Frame-size words
/// are embedded in the stream immediately before each return point (§3.1 of
/// the paper), so a stack walker can recover the extent of the frame below a
/// return address from the address alone; see core/FrameWalk.h.
struct Code : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Code;
  Value Name;       ///< Symbol or #f, for diagnostics.
  Value Consts;     ///< Vector of literals/symbols referenced by index.
  uint32_t NParams; ///< Required parameter count.
  bool HasRest;     ///< Extra arguments collected into a list.
  uint32_t MaxDepth; ///< Static max words this code pushes above its frame
                     ///< base, used for the segment-overflow check.
  uint32_t NInstrs;
  uint32_t NCaches;   ///< Inline-cache slots following the instructions.
  uint32_t Instrs[1]; ///< Inline instruction words.

  /// The inline-cache slot array: after the instruction words, rounded up
  /// to CacheSlot alignment.  Heap::allocCode sizes the allocation with
  /// the same formula.
  CacheSlot *caches() {
    uintptr_t P = reinterpret_cast<uintptr_t>(Instrs + NInstrs);
    uintptr_t A = alignof(CacheSlot);
    return reinterpret_cast<CacheSlot *>((P + A - 1) & ~(A - 1));
  }

  /// The frame-size word for the call whose return point is \p RetPc: the
  /// number of words in the caller's frame below the callee's frame base.
  uint32_t frameSizeAt(int64_t RetPc) const {
    assert(RetPc >= 1 && static_cast<uint32_t>(RetPc) <= NInstrs &&
           "return pc out of range");
    return Instrs[RetPc - 1];
  }
};

/// A closure: code plus captured free-variable values (flat closure).
struct Closure : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Closure;
  Value CodeVal; ///< The Code object.
  uint32_t NFree;
  Value Free[1]; ///< Inline captured values.

  Code *code() const { return castObj<Code>(CodeVal); }
};

/// Calling convention for natives: args live in a contiguous slice.  A
/// native signals an error via VM::fail and returns the (ignored) result.
using NativeFn = Value (*)(VM &Vm, Value *Args, uint32_t NArgs);

/// Natives the interpreter loop must handle specially because they
/// manipulate control (they cannot be expressed as a plain C++ call).
enum class NativeSpecial : uint8_t {
  None,
  Apply,          ///< (apply f a b ... rest-list)
  CallCC,         ///< %call/cc — multi-shot capture
  Call1CC,        ///< %call/1cc — one-shot capture
  CallWithValues, ///< %call-with-values
  Values,         ///< values
  // Scheduler operations (src/sched): each may capture the current
  // computation as a one-shot continuation and transfer control to another
  // green thread, so they must run in the dispatch loop like call/1cc.
  SchedRun,       ///< %sched-run — drive threads until all complete
  SchedYield,     ///< %yield — voluntary context switch
  SchedExit,      ///< %thread-exit — finish the current thread
  SchedJoin,      ///< %join — block until a thread completes
  SchedSleep,     ///< %sleep — suspend for N context switches
  ChanSend,       ///< %chan-send — may block on a full channel
  ChanRecv,       ///< %chan-recv — may block on an empty channel
  // Reactor operations (src/io): park the calling green thread on fd
  // readiness with a one-shot capture, exactly like a channel block.
  IoReadLine,     ///< %io-read-line — may park until a line arrives
  IoWrite,        ///< %io-write — may park until the fd drains
  IoAccept,       ///< %io-accept — may park until a connection arrives
  IoTakeConn,     ///< %io-take-conn — may park until the pool hands off a
                  ///< connection (or its ConnQueue closes)
  // Delimited control (src/control): prompts and slices manipulate the
  // continuation chain directly, so like call/1cc they run in the dispatch
  // loop rather than as plain natives.
  Reset,          ///< %reset — plant a tagged prompt and call the thunk
  Shift,          ///< %shift — cut the slice up to the nearest matching
                  ///< prompt and call the receiver with it
  DelimInvoke,    ///< %delim-invoke — splice a cut slice back in front of
                  ///< the current continuation (one-shot)
  // Effect handlers (src/control): the same boundary machinery as
  // reset/shift, plus a handler procedure on the record.
  WithHandler,    ///< %with-handler — plant a tagged prompt carrying a
                  ///< handler procedure and call the thunk
  Perform,        ///< %perform — cut the slice up to the nearest matching
                  ///< *handler* record, pop it, and run the handler at
                  ///< the boundary with the op, a one-shot k and the args
};

struct Native : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Native;
  Value Name; ///< Symbol, for error messages.
  NativeFn Fn;
  uint16_t MinArgs;
  int16_t MaxArgs; ///< -1 for variadic.
  NativeSpecial Special;
};

// --- Compiled regular expressions (src/regex) --------------------------------

/// A compiled regex program: the source pattern (for printing and
/// diagnostics) plus the flat bytecode emitted by regex::compile, stored
/// inline exactly like Code stores its instruction words.  Immutable
/// after allocation, so one program can back any number of concurrent
/// matchers.
struct RegexProg : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::RegexProg;
  Value Pattern; ///< The source pattern String.
  uint32_t NInstrs;
  uint32_t Instrs[1]; ///< Inline bytecode words.
};

/// One blocked NFA thread of a streaming matcher: the instruction it
/// waits at and the absolute input offset its match attempt started at.
struct RegexThread {
  uint32_t Pc;
  int64_t Start;
};

/// The persistent state of one incremental (streaming) matcher: the
/// program, the live thread list carried across chunk boundaries, and
/// the best-match-so-far bookkeeping.  regex::Machine is the engine's
/// flat view of these fields; the primitives copy in/out around each
/// feed.  Thread Start offsets are plain integers, so the GC only has
/// the Prog reference to trace.
struct RegexStream : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::RegexStream;
  Value Prog;        ///< The RegexProg being run.
  uint64_t Offset;   ///< Absolute bytes scanned so far.
  int64_t BestStart; ///< Leftmost match start; -1 while none.
  int64_t BestEnd;
  uint64_t Steps;   ///< Cumulative thread-state visits.
  uint8_t Mode;     ///< regex::Mode.
  uint8_t Decided;  ///< regex::Decision.
  bool SpawnDead;   ///< '^'-anchored: spawns past offset 0 are dead.
  uint32_t NThreads;
  uint32_t Cap;              ///< Thread capacity (== program NInstrs).
  RegexThread Threads[1];    ///< Inline, Cap entries.
};

// --- The segmented control stack (data half) ---------------------------------

/// One stack segment: a GC-managed array of Value slots.
///
/// Fresh segments are zero-filled so that tracing never sees an
/// uninitialized word (the zero pattern is the Empty immediate).  A segment
/// may be *shared* between the current stack record and one or more
/// continuations (multi-shot capture seals a prefix; §3.4 seal-displacement
/// splits one buffer between a one-shot continuation and the current
/// stack); shared segments are never returned to the segment cache.
struct StackSegment : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::StackSegment;
  uint32_t Capacity; ///< Total slots.
  bool Shared;       ///< Referenced by >1 record/continuation view.
  Value Slots[1];    ///< Inline.
};

/// A continuation object (the paper's converted stack record, Fig. 2).
///
/// Two size fields distinguish the flavors:
///   multi-shot: Size == SegSize == number of sealed (occupied) words
///   one-shot:   Size  < SegSize; SegSize is the encapsulated capacity
///   shot:       Size == SegSize == -1 (a consumed one-shot)
///
/// Start supports sub-views of a shared buffer (splitting per Fig. 3 and
/// §3.4 sealing).  RetCode/RetPc hold the return address displaced by the
/// underflow marker.  Flag supports the shared-flag O(1) promotion scheme
/// the paper proposes in §3.3: when the flag cell holds #t every one-shot
/// continuation sharing it has been promoted.
struct Continuation : ObjHeader {
  static constexpr ObjKind ClassKind = ObjKind::Continuation;
  Value Seg;     ///< StackSegment, or Empty for the halt continuation.
  uint32_t Start; ///< First slot of this view within Seg.
  int64_t Size;   ///< Occupied words (relative to Start); -1 once shot.
  int64_t SegSize; ///< Encapsulated capacity (relative to Start); -1 shot.
  Value Link;    ///< Next continuation in the chain, or Empty for halt.
  Value RetCode; ///< Code object to resume, or the underflow marker for
                 ///< the distinguished halt continuation.
  int64_t RetPc; ///< Resume pc within RetCode.
  Value Flag;    ///< Shared promotion flag Cell, or #f when unused.
  /// True when this member escaped to the program as a first-class k
  /// (call/1cc receiver, engine timer handler).  Such a member is shared
  /// between the live chain and the captured value even though it is
  /// one-shot, so a delimited cut must clone rather than relink it — the
  /// dormant k still expects to return through the capture-time chain.
  /// Internal one-shot captures (prompt marks, scheduler parks) never set
  /// it and keep the zero-copy cut.
  bool ByValue = false;

  bool isShot() const { return Size < 0; }
  /// Consumes the continuation *without* reinstating it — deadline
  /// cancellation poisons a parked thread's resume point this way.  Same
  /// marking a one-shot invoke leaves behind, so a poisoned park can never
  /// be resumed (unlike a multi-shot cancellation, which could resurrect),
  /// and the abandoned window is reclaimed by GC: zero words copied.
  void markShot() {
    Size = -1;
    SegSize = -1;
  }
  /// True for an un-promoted one-shot continuation.  With the shared-flag
  /// scheme a #t flag means "promoted" even though SegSize still differs.
  bool isOneShot() const {
    if (isShot() || Size == SegSize)
      return false;
    if (isObj<Cell>(Flag) && castObj<Cell>(Flag)->Val.isTrue())
      return false;
    return true;
  }
  bool isHalt() const { return RetCode.isUnderflowMarker(); }
  StackSegment *segment() const { return castObj<StackSegment>(Seg); }
  Value *slots() const { return segment()->Slots + Start; }
};

} // namespace osc

#endif // OSC_OBJECT_OBJECTS_H
