#include "object/Heap.h"

#include "support/Diag.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace osc;

const char *osc::objKindName(ObjKind K) {
  switch (K) {
  case ObjKind::Pair:
    return "pair";
  case ObjKind::Symbol:
    return "symbol";
  case ObjKind::String:
    return "string";
  case ObjKind::Vector:
    return "vector";
  case ObjKind::Cell:
    return "cell";
  case ObjKind::Flonum:
    return "flonum";
  case ObjKind::Closure:
    return "closure";
  case ObjKind::Code:
    return "code";
  case ObjKind::Native:
    return "native";
  case ObjKind::Continuation:
    return "continuation";
  case ObjKind::StackSegment:
    return "stack-segment";
  case ObjKind::RegexProg:
    return "regex";
  case ObjKind::RegexStream:
    return "regex-stream";
  }
  oscUnreachable("bad ObjKind");
}

RootProvider::~RootProvider() = default;

GCRoot::GCRoot(Heap &H, Value Initial) : H(H), Held(Initial) {
  H.Roots.push_back(this);
}

GCRoot::~GCRoot() {
  // Roots are overwhelmingly destroyed in LIFO order; handle the general
  // case anyway.
  auto It = std::find(H.Roots.rbegin(), H.Roots.rend(), this);
  assert(It != H.Roots.rend() && "GCRoot not registered");
  H.Roots.erase(std::next(It).base());
}

Heap::Heap(Stats &S, uint64_t GcThresholdBytes)
    : S(S), GcThresholdBytes(GcThresholdBytes) {}

Heap::~Heap() {
  ObjHeader *O = AllObjects;
  while (O) {
    ObjHeader *Next = O->Next;
    std::free(O);
    O = Next;
  }
}

void *Heap::rawAlloc(size_t Bytes, ObjKind Kind) {
  Bytes = (Bytes + 7) & ~size_t(7);
  void *Mem = std::malloc(Bytes);
  if (!Mem) {
    std::fprintf(stderr, "osc: allocation of %zu bytes (kind %s) failed\n",
                 Bytes, objKindName(Kind));
    oscFatal("heap exhausted (malloc failed)");
  }
  auto *O = static_cast<ObjHeader *>(Mem);
  O->Next = AllObjects;
  O->SizeBytes = static_cast<uint32_t>(Bytes);
  O->Kind = Kind;
  O->Mark = false;
  AllObjects = O;
  S.BytesAllocated += Bytes;
  S.ObjectsAllocated += 1;
  BytesSinceGC += Bytes;
  AllocsSinceGC += 1;
  OSC_TRACE(Tr, TraceEvent::Alloc, static_cast<uint64_t>(Kind), Bytes);
  return Mem;
}

Pair *Heap::allocPair(Value Car, Value Cdr) {
  auto *P = static_cast<Pair *>(rawAlloc(sizeof(Pair), ObjKind::Pair));
  P->Car = Car;
  P->Cdr = Cdr;
  return P;
}

Cell *Heap::allocCell(Value V) {
  auto *C = static_cast<Cell *>(rawAlloc(sizeof(Cell), ObjKind::Cell));
  C->Val = V;
  return C;
}

Flonum *Heap::allocFlonum(double D) {
  auto *F = static_cast<Flonum *>(rawAlloc(sizeof(Flonum), ObjKind::Flonum));
  F->D = D;
  return F;
}

String *Heap::allocString(std::string_view Str) {
  auto *O = static_cast<String *>(
      rawAlloc(sizeof(String) + Str.size(), ObjKind::String));
  O->Len = static_cast<uint32_t>(Str.size());
  std::memcpy(O->Data, Str.data(), Str.size());
  O->Data[Str.size()] = '\0';
  return O;
}

Vector *Heap::allocVector(uint32_t Len, Value Fill) {
  size_t Bytes = sizeof(Vector) + (Len ? Len - 1 : 0) * sizeof(Value);
  auto *V = static_cast<Vector *>(rawAlloc(Bytes, ObjKind::Vector));
  V->Len = Len;
  for (uint32_t I = 0; I != Len; ++I)
    V->Elems[I] = Fill;
  return V;
}

Closure *Heap::allocClosure(Value CodeVal, uint32_t NFree) {
  size_t Bytes = sizeof(Closure) + (NFree ? NFree - 1 : 0) * sizeof(Value);
  auto *C = static_cast<Closure *>(rawAlloc(Bytes, ObjKind::Closure));
  S.ClosuresAllocated += 1;
  C->CodeVal = CodeVal;
  C->NFree = NFree;
  for (uint32_t I = 0; I != NFree; ++I)
    C->Free[I] = Value::unspecified();
  return C;
}

Code *Heap::allocCode(Value Name, Value Consts, uint32_t NParams, bool HasRest,
                      uint32_t MaxDepth, const uint32_t *Instrs,
                      uint32_t NInstrs, uint32_t NCaches) {
  size_t Bytes = sizeof(Code) + (NInstrs ? NInstrs - 1 : 0) * sizeof(uint32_t);
  // Inline-cache slots follow the instruction words at CacheSlot alignment
  // (Code::caches()); the alignof slop covers the round-up.
  if (NCaches)
    Bytes += NCaches * sizeof(CacheSlot) + alignof(CacheSlot);
  auto *C = static_cast<Code *>(rawAlloc(Bytes, ObjKind::Code));
  C->Name = Name;
  C->Consts = Consts;
  C->NParams = NParams;
  C->HasRest = HasRest;
  C->MaxDepth = MaxDepth;
  C->NInstrs = NInstrs;
  C->NCaches = NCaches;
  std::memcpy(C->Instrs, Instrs, NInstrs * sizeof(uint32_t));
  if (NCaches)
    std::memset(C->caches(), 0, NCaches * sizeof(CacheSlot));
  return C;
}

Native *Heap::allocNative(Value Name, NativeFn Fn, uint16_t MinArgs,
                          int16_t MaxArgs, NativeSpecial Special) {
  auto *N = static_cast<Native *>(rawAlloc(sizeof(Native), ObjKind::Native));
  N->Name = Name;
  N->Fn = Fn;
  N->MinArgs = MinArgs;
  N->MaxArgs = MaxArgs;
  N->Special = Special;
  return N;
}

RegexProg *Heap::allocRegexProg(Value Pattern, const uint32_t *Instrs,
                                uint32_t NInstrs) {
  size_t Bytes =
      sizeof(RegexProg) + (NInstrs ? NInstrs - 1 : 0) * sizeof(uint32_t);
  auto *P = static_cast<RegexProg *>(rawAlloc(Bytes, ObjKind::RegexProg));
  P->Pattern = Pattern;
  P->NInstrs = NInstrs;
  std::memcpy(P->Instrs, Instrs, NInstrs * sizeof(uint32_t));
  return P;
}

RegexStream *Heap::allocRegexStream(Value Prog, uint32_t Cap) {
  size_t Bytes =
      sizeof(RegexStream) + (Cap ? Cap - 1 : 0) * sizeof(RegexThread);
  auto *M = static_cast<RegexStream *>(rawAlloc(Bytes, ObjKind::RegexStream));
  M->Prog = Prog;
  M->Offset = 0;
  M->BestStart = -1;
  M->BestEnd = -1;
  M->Steps = 0;
  M->Mode = 0;
  M->Decided = 0;
  M->SpawnDead = false;
  M->NThreads = 0;
  M->Cap = Cap;
  return M;
}

Continuation *Heap::allocContinuation() {
  auto *K = static_cast<Continuation *>(
      rawAlloc(sizeof(Continuation), ObjKind::Continuation));
  K->Seg = Value();
  K->Start = 0;
  K->Size = 0;
  K->SegSize = 0;
  K->Link = Value();
  K->RetCode = Value::underflowMarker();
  K->RetPc = 0;
  K->Flag = Value::falseV();
  return K;
}

StackSegment *Heap::allocSegment(uint32_t Capacity) {
  size_t Bytes =
      sizeof(StackSegment) + (Capacity ? Capacity - 1 : 0) * sizeof(Value);
  auto *Seg =
      static_cast<StackSegment *>(rawAlloc(Bytes, ObjKind::StackSegment));
  Seg->Capacity = Capacity;
  Seg->Shared = false;
  // Zero-fill so tracing an untouched slot sees the Empty pattern.
  std::memset(static_cast<void *>(Seg->Slots), 0, Capacity * sizeof(Value));
  return Seg;
}

Symbol *Heap::intern(std::string_view Name) {
  auto It = Symbols.find(std::string(Name));
  if (It != Symbols.end())
    return It->second;
  auto *Sym = static_cast<Symbol *>(
      rawAlloc(sizeof(Symbol) + Name.size(), ObjKind::Symbol));
  Sym->Global = Value::undefined();
  Sym->Len = static_cast<uint32_t>(Name.size());
  std::memcpy(Sym->Name, Name.data(), Name.size());
  Sym->Name[Name.size()] = '\0';
  Symbols.emplace(std::string(Name), Sym);
  return Sym;
}

uint64_t Heap::segmentWordsInHeap() const {
  uint64_t Words = 0;
  for (ObjHeader *O = AllObjects; O; O = O->Next)
    if (O->Kind == ObjKind::StackSegment)
      Words += static_cast<StackSegment *>(O)->Capacity;
  return Words;
}

void Heap::addRootProvider(RootProvider *P) { RootProviders.push_back(P); }

void Heap::removeRootProvider(RootProvider *P) {
  auto It = std::find(RootProviders.begin(), RootProviders.end(), P);
  if (It != RootProviders.end())
    RootProviders.erase(It);
}

void Heap::traceObject(ObjHeader *O, GCVisitor &V) {
  switch (O->Kind) {
  case ObjKind::Pair: {
    auto *P = static_cast<Pair *>(O);
    V.visit(P->Car);
    V.visit(P->Cdr);
    return;
  }
  case ObjKind::Symbol:
    V.visit(static_cast<Symbol *>(O)->Global);
    return;
  case ObjKind::String:
  case ObjKind::Flonum:
    return;
  case ObjKind::Vector: {
    auto *Vec = static_cast<Vector *>(O);
    V.visitRange(Vec->Elems, Vec->Len);
    return;
  }
  case ObjKind::Cell:
    V.visit(static_cast<Cell *>(O)->Val);
    return;
  case ObjKind::Closure: {
    auto *C = static_cast<Closure *>(O);
    V.visit(C->CodeVal);
    V.visitRange(C->Free, C->NFree);
    return;
  }
  case ObjKind::Code: {
    auto *C = static_cast<Code *>(O);
    V.visit(C->Name);
    V.visit(C->Consts);
    return;
  }
  case ObjKind::Native:
    V.visit(static_cast<Native *>(O)->Name);
    return;
  case ObjKind::Continuation: {
    auto *K = static_cast<Continuation *>(O);
    V.visit(K->Seg);
    V.visit(K->Link);
    V.visit(K->RetCode);
    V.visit(K->Flag);
    // Scan exactly the occupied range of this continuation's view; shot
    // continuations (Size < 0) retain nothing.
    if (K->Size > 0 && K->Seg.isObject())
      V.visitRange(K->slots(), static_cast<size_t>(K->Size));
    return;
  }
  case ObjKind::StackSegment:
    // Segments carry no intrinsic children; live slot ranges are scanned by
    // whoever views them (continuations above, the control stack root).
    return;
  case ObjKind::RegexProg:
    V.visit(static_cast<RegexProg *>(O)->Pattern);
    return;
  case ObjKind::RegexStream:
    // Thread entries are plain pc/offset integers, not Values.
    V.visit(static_cast<RegexStream *>(O)->Prog);
    return;
  }
  oscUnreachable("bad ObjKind in traceObject");
}

void Heap::collect() {
  OSC_TRACE(Tr, TraceEvent::GcStart, BytesSinceGC);
  for (RootProvider *P : RootProviders)
    P->willCollect();

  std::vector<ObjHeader *> Worklist;
  GCVisitor V(Worklist);

  // Interned symbols are permanent roots (the table owns them).
  for (auto &[Name, Sym] : Symbols)
    V.visit(Value::object(Sym));
  for (GCRoot *R : Roots)
    V.visit(R->Held);
  for (RootProvider *P : RootProviders)
    P->traceRoots(V);

  while (!Worklist.empty()) {
    ObjHeader *O = Worklist.back();
    Worklist.pop_back();
    traceObject(O, V);
  }

  // Sweep.
  uint64_t Freed = 0;
  uint64_t Live = 0;
  ObjHeader **Link = &AllObjects;
  while (ObjHeader *O = *Link) {
    if (O->Mark) {
      O->Mark = false;
      Live += O->SizeBytes;
      Link = &O->Next;
      continue;
    }
    *Link = O->Next;
    Freed += O->SizeBytes;
    std::free(O);
  }

  LiveBytes = Live;
  S.GcCount += 1;
  S.GcBytesFreed += Freed;
  BytesSinceGC = 0;
  AllocsSinceGC = 0;
  OSC_TRACE(Tr, TraceEvent::GcEnd, Live, Freed);
  // Grow the threshold if the live set dominates it, so steady-state
  // programs do not collect pathologically often.
  GcThresholdBytes = std::max(GcThresholdBytes, Live * 2);
}
