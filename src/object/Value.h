//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged 64-bit Scheme values.
///
/// Encoding (low bits):
///   xxxx...xxx1  fixnum, 63-bit two's complement payload in the high bits
///   xxxx...x000  heap pointer (8-byte aligned, never zero)
///   xxxx...x010  immediate constant; kind in bits [7:3], payload above
///   0            the distinguished "empty slot" pattern; fresh stack
///                segments are zero-filled, so a zero word is never a
///                pointer and tracing uninitialized slots is safe
///
/// Every slot of a stack segment holds a Value (return addresses are stored
/// as a code-object pointer plus a fixnum pc), which is what makes precise
/// tracing of captured continuations possible.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_OBJECT_VALUE_H
#define OSC_OBJECT_VALUE_H

#include <cassert>
#include <cstdint>

namespace osc {

struct ObjHeader;

/// Kinds of immediate (non-heap, non-fixnum) values.
enum class ImmKind : uint8_t {
  Empty = 0,       ///< The all-zero word; only found in untouched stack slots.
  Nil,             ///< The empty list ().
  False,           ///< #f
  True,            ///< #t
  Unspecified,     ///< Result of expressions with unspecified values.
  Eof,             ///< End-of-file object.
  Undefined,       ///< Unbound-variable / letrec-init marker.
  Underflow,       ///< Return-address marker for segment base frames (§3.2).
  Char,            ///< Character; code point in the payload.
};

/// A tagged Scheme value.  Trivially copyable; passed by value everywhere.
class Value {
  uint64_t Bits;

  static constexpr uint64_t ImmTag = 0b010;

  constexpr explicit Value(uint64_t Raw) : Bits(Raw) {}

public:
  /// Default-constructs the Empty pattern (zero word).
  constexpr Value() : Bits(0) {}

  static constexpr Value fromRaw(uint64_t Raw) { return Value(Raw); }
  constexpr uint64_t raw() const { return Bits; }

  // --- Constructors -------------------------------------------------------

  static constexpr Value fixnum(int64_t N) {
    return Value((static_cast<uint64_t>(N) << 1) | 1);
  }
  static constexpr Value imm(ImmKind K, uint64_t Payload = 0) {
    return Value((Payload << 8) | (static_cast<uint64_t>(K) << 3) | ImmTag);
  }
  static constexpr Value nil() { return imm(ImmKind::Nil); }
  static constexpr Value falseV() { return imm(ImmKind::False); }
  static constexpr Value trueV() { return imm(ImmKind::True); }
  static constexpr Value boolean(bool B) { return B ? trueV() : falseV(); }
  static constexpr Value unspecified() { return imm(ImmKind::Unspecified); }
  static constexpr Value eof() { return imm(ImmKind::Eof); }
  static constexpr Value undefined() { return imm(ImmKind::Undefined); }
  static constexpr Value underflowMarker() { return imm(ImmKind::Underflow); }
  static constexpr Value charV(uint32_t CodePoint) {
    return imm(ImmKind::Char, CodePoint);
  }
  static Value object(const ObjHeader *O) {
    auto Raw = reinterpret_cast<uint64_t>(O);
    assert((Raw & 7) == 0 && Raw != 0 && "heap objects must be 8-aligned");
    return Value(Raw);
  }

  // --- Predicates ----------------------------------------------------------

  constexpr bool isFixnum() const { return Bits & 1; }
  constexpr bool isObject() const { return (Bits & 7) == 0 && Bits != 0; }
  constexpr bool isImm() const { return (Bits & 7) == ImmTag; }
  constexpr bool isImm(ImmKind K) const {
    return isImm() && immKind() == K;
  }
  /// The all-zero word found in untouched stack slots.
  constexpr bool isEmpty() const { return Bits == 0; }
  constexpr bool isNil() const { return isImm(ImmKind::Nil); }
  constexpr bool isFalse() const { return isImm(ImmKind::False); }
  constexpr bool isTrue() const { return isImm(ImmKind::True); }
  constexpr bool isBoolean() const { return isFalse() || isTrue(); }
  constexpr bool isChar() const { return isImm(ImmKind::Char); }
  constexpr bool isUndefined() const { return isImm(ImmKind::Undefined); }
  constexpr bool isUnderflowMarker() const {
    return isImm(ImmKind::Underflow);
  }
  /// Scheme truthiness: everything but #f is true.
  constexpr bool isTruthy() const { return !isFalse(); }

  // --- Accessors -----------------------------------------------------------

  constexpr int64_t asFixnum() const {
    assert(isFixnum() && "not a fixnum");
    return static_cast<int64_t>(Bits) >> 1;
  }
  constexpr ImmKind immKind() const {
    assert(isImm() && "not an immediate");
    return static_cast<ImmKind>((Bits >> 3) & 0x1f);
  }
  constexpr uint32_t asChar() const {
    assert(isChar() && "not a character");
    return static_cast<uint32_t>(Bits >> 8);
  }
  ObjHeader *asObject() const {
    assert(isObject() && "not a heap object");
    return reinterpret_cast<ObjHeader *>(Bits);
  }

  // --- Identity ------------------------------------------------------------

  /// Scheme eq?: pointer/bit identity.
  constexpr bool identical(Value Other) const { return Bits == Other.Bits; }
  constexpr bool operator==(const Value &Other) const = default;
};

static_assert(sizeof(Value) == 8, "Value must be a single machine word");

} // namespace osc

#endif // OSC_OBJECT_VALUE_H
