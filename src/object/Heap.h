//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation and precise, non-moving mark-sweep garbage collection.
///
/// Collections run only at VM safepoints (Heap::needsGC is polled by the
/// interpreter loop and by Interp between evaluations), never from inside an
/// allocation, so C++ code may hold raw Values across allocations within one
/// safepoint interval.  Longer-lived host references are registered through
/// GCRoot or RootProvider.
///
/// Stack segments are traced through the objects that view them (the
/// current ControlStack and captured Continuations), each scanning exactly
/// its occupied range, so dead words above a seal are never marked and
/// cached segments are reclaimed at every collection — matching §3.2's
/// "the stacks in this cache can be discarded by the storage manager during
/// garbage collection".
///
//===----------------------------------------------------------------------===//

#ifndef OSC_OBJECT_HEAP_H
#define OSC_OBJECT_HEAP_H

#include "object/Objects.h"
#include "object/Value.h"
#include "support/Fault.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <string_view>
#include <unordered_map>
#include <vector>

namespace osc {

class Heap;

/// Visitor handed to root providers and used internally for marking.
class GCVisitor {
public:
  explicit GCVisitor(std::vector<ObjHeader *> &Worklist)
      : Worklist(Worklist) {}

  /// Marks \p V if it references an unmarked heap object.
  void visit(Value V) {
    if (!V.isObject())
      return;
    ObjHeader *O = V.asObject();
    if (O->Mark)
      return;
    O->Mark = true;
    Worklist.push_back(O);
  }
  void visitRange(const Value *Begin, size_t N) {
    for (size_t I = 0; I != N; ++I)
      visit(Begin[I]);
  }

private:
  std::vector<ObjHeader *> &Worklist;
};

/// Anything that owns GC roots (the VM, the interpreter) implements this and
/// registers itself with the heap.
class RootProvider {
public:
  virtual ~RootProvider();
  virtual void traceRoots(GCVisitor &V) = 0;
  /// Called at the start of each collection, before marking.  The control
  /// stack uses this to drop its segment cache (§3.2: cached stacks are
  /// discarded by the storage manager during garbage collection).
  virtual void willCollect() {}
};

/// RAII registration of a single host-held Value as a GC root.
class GCRoot {
public:
  GCRoot(Heap &H, Value Initial = Value());
  ~GCRoot();
  GCRoot(const GCRoot &) = delete;
  GCRoot &operator=(const GCRoot &) = delete;

  Value get() const { return Held; }
  void set(Value V) { Held = V; }
  GCRoot &operator=(Value V) {
    Held = V;
    return *this;
  }

private:
  friend class Heap;
  Heap &H;
  Value Held;
};

/// The garbage-collected heap for one interpreter instance.
class Heap {
public:
  explicit Heap(Stats &S, uint64_t GcThresholdBytes = 4u << 20);
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  // --- Allocation ----------------------------------------------------------

  Pair *allocPair(Value Car, Value Cdr);
  Cell *allocCell(Value V);
  Flonum *allocFlonum(double D);
  String *allocString(std::string_view S);
  Vector *allocVector(uint32_t Len, Value Fill = Value::unspecified());
  Closure *allocClosure(Value CodeVal, uint32_t NFree);
  Code *allocCode(Value Name, Value Consts, uint32_t NParams, bool HasRest,
                  uint32_t MaxDepth, const uint32_t *Instrs, uint32_t NInstrs,
                  uint32_t NCaches = 0);
  Native *allocNative(Value Name, NativeFn Fn, uint16_t MinArgs,
                      int16_t MaxArgs, NativeSpecial Special);
  Continuation *allocContinuation();
  /// Allocates a compiled regex program; copies \p Instrs inline.
  RegexProg *allocRegexProg(Value Pattern, const uint32_t *Instrs,
                            uint32_t NInstrs);
  /// Allocates a streaming matcher with room for \p Cap blocked threads
  /// (one per program instruction suffices; the engine dedups by pc).
  RegexStream *allocRegexStream(Value Prog, uint32_t Cap);
  /// Allocates a zero-filled stack segment of \p Capacity slots.
  StackSegment *allocSegment(uint32_t Capacity);

  /// Interns \p Name, returning the unique Symbol for it.
  Symbol *intern(std::string_view Name);

  // --- Collection ----------------------------------------------------------

  void addRootProvider(RootProvider *P);
  void removeRootProvider(RootProvider *P);

  /// Points the heap at an event tracer (usually the owning VM's); null
  /// detaches.  The heap never owns the tracer.
  void setTrace(Trace *T) { Tr = T; }
  /// Points the heap at a fault plan to honor (GcEveryNAllocs); null
  /// detaches.  The plan must outlive the attachment.
  void setFaultPlan(const FaultPlan *P) { Faults = P; }

  bool needsGC() const {
    if (BytesSinceGC >= GcThresholdBytes)
      return true;
    return Faults && Faults->GcEveryNAllocs != 0 &&
           AllocsSinceGC >= Faults->GcEveryNAllocs;
  }
  /// Runs a full mark-sweep collection.
  void collect();

  /// Live bytes at the end of the last collection (0 before the first).
  uint64_t liveBytesAfterLastGC() const { return LiveBytes; }

  /// Total slots of all stack segments currently in the heap.  Meaningful
  /// right after collect(): it then measures exactly the segment space
  /// pinned by the control stack and by live continuations (the
  /// fragmentation §3.4 is about).
  uint64_t segmentWordsInHeap() const;
  Stats &stats() { return S; }

private:
  friend class GCRoot;

  void *rawAlloc(size_t Bytes, ObjKind Kind);
  void traceObject(ObjHeader *O, GCVisitor &V);

  Stats &S;
  Trace *Tr = nullptr;               ///< Event tracer; may be null.
  const FaultPlan *Faults = nullptr; ///< Injection schedule; may be null.
  uint64_t GcThresholdBytes;
  uint64_t BytesSinceGC = 0;
  uint64_t AllocsSinceGC = 0;
  uint64_t LiveBytes = 0;
  ObjHeader *AllObjects = nullptr;
  std::vector<RootProvider *> RootProviders;
  std::vector<GCRoot *> Roots;
  std::unordered_map<std::string, Symbol *> Symbols;
};

} // namespace osc

#endif // OSC_OBJECT_HEAP_H
