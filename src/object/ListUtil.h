//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for working with Scheme lists from C++.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_OBJECT_LISTUTIL_H
#define OSC_OBJECT_LISTUTIL_H

#include "object/Heap.h"
#include "object/Objects.h"
#include "object/Value.h"

#include <vector>

namespace osc {

inline Value car(Value V) { return castObj<Pair>(V)->Car; }
inline Value cdr(Value V) { return castObj<Pair>(V)->Cdr; }
inline Value cons(Heap &H, Value A, Value D) {
  return Value::object(H.allocPair(A, D));
}

/// Length of a proper list; -1 for improper/cyclic-free non-lists.
int64_t listLength(Value L);

/// True if \p L is a proper (nil-terminated, acyclic) list.
bool isProperList(Value L);

/// Builds a list from \p Elems (first element becomes the head).
Value listFromVector(Heap &H, const std::vector<Value> &Elems);

/// Flattens a proper list into \p Out; returns false on an improper list.
bool listToVector(Value L, std::vector<Value> &Out);

/// Structural equality (R4RS equal?): recursive over pairs, vectors and
/// strings, eqv? on everything else.
bool schemeEqual(Value A, Value B);

/// eqv?: eq? plus numeric/char equality on fixnums, flonums, chars.
bool schemeEqv(Value A, Value B);

} // namespace osc

#endif // OSC_OBJECT_LISTUTIL_H
