#include "object/ListUtil.h"

using namespace osc;

int64_t osc::listLength(Value L) {
  int64_t N = 0;
  // Brent-style cycle guard: bound the walk.
  Value Slow = L;
  bool Step = false;
  while (isObj<Pair>(L)) {
    L = cdr(L);
    ++N;
    if (Step) {
      Slow = cdr(Slow);
      if (Slow.identical(L))
        return -1; // cyclic
    }
    Step = !Step;
  }
  return L.isNil() ? N : -1;
}

bool osc::isProperList(Value L) { return listLength(L) >= 0; }

Value osc::listFromVector(Heap &H, const std::vector<Value> &Elems) {
  Value L = Value::nil();
  for (auto It = Elems.rbegin(); It != Elems.rend(); ++It)
    L = cons(H, *It, L);
  return L;
}

bool osc::listToVector(Value L, std::vector<Value> &Out) {
  while (isObj<Pair>(L)) {
    Out.push_back(car(L));
    L = cdr(L);
  }
  return L.isNil();
}

bool osc::schemeEqv(Value A, Value B) {
  if (A.identical(B))
    return true;
  if (isObj<Flonum>(A) && isObj<Flonum>(B))
    return castObj<Flonum>(A)->D == castObj<Flonum>(B)->D;
  return false;
}

bool osc::schemeEqual(Value A, Value B) {
  if (schemeEqv(A, B))
    return true;
  if (isObj<Pair>(A) && isObj<Pair>(B))
    return schemeEqual(car(A), car(B)) && schemeEqual(cdr(A), cdr(B));
  if (isObj<String>(A) && isObj<String>(B))
    return castObj<String>(A)->view() == castObj<String>(B)->view();
  if (isObj<Vector>(A) && isObj<Vector>(B)) {
    auto *VA = castObj<Vector>(A);
    auto *VB = castObj<Vector>(B);
    if (VA->Len != VB->Len)
      return false;
    for (uint32_t I = 0; I != VA->Len; ++I)
      if (!schemeEqual(VA->Elems[I], VB->Elems[I]))
        return false;
    return true;
  }
  return false;
}
