//===----------------------------------------------------------------------===//
///
/// \file
/// The embedding API: everything a host application needs to evaluate
/// Scheme with one-shot and multi-shot continuations.
///
/// Typical use:
/// \code
///   osc::Config Cfg;
///   Cfg.Overflow = osc::OverflowPolicy::OneShot;
///   osc::Interp I(Cfg);
///   auto R = I.eval("(call/1cc (lambda (k) (k 42)))");
///   // R.Ok, R.Val, I.valueToString(R.Val)
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OSC_VM_INTERP_H
#define OSC_VM_INTERP_H

#include "core/Config.h"
#include "core/ControlStack.h"
#include "object/Heap.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "vm/VM.h"

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace osc {

class Interp {
public:
  /// Constructs an interpreter with the given control-representation
  /// configuration and loads the prelude.
  explicit Interp(const Config &Cfg = Config());
  ~Interp();
  Interp(const Interp &) = delete;
  Interp &operator=(const Interp &) = delete;

  struct Result {
    bool Ok = false;
    Value Val;
    /// Classification of the failure: Parse for reader / expander /
    /// compiler errors (before any code ran), Runtime / Fault / Io for
    /// execution errors, None on success.
    ErrorKind Kind = ErrorKind::None;
    std::string Error;
    /// On runtime errors: innermost-first procedure names recovered by
    /// walking the stack via the frame-size words (§3.1).
    std::vector<std::string> Backtrace;

    /// The failure as a structured osc::Error (Kind + Message).
    osc::Error error() const { return {Kind, Error}; }
  };

  /// Reads every datum in \p Source and evaluates them in order; returns
  /// the value of the last one.  The returned value stays GC-rooted until
  /// the next eval.
  Result eval(std::string_view Source);

  /// Evaluates \p Source and renders the result (or error) as a string —
  /// the one-liner most tests want.
  std::string evalToString(std::string_view Source);

  /// Renders a value in write (machine) or display (human) form.
  std::string valueToString(Value V, bool Write = true) const;

  /// Registers a host procedure callable from Scheme.
  void defineNative(std::string_view Name, NativeFn Fn, uint16_t MinArgs,
                    int16_t MaxArgs);
  /// Registers a whole table of host procedures at once — the ergonomic
  /// form for embedders with more than a couple of natives:
  /// \code
  ///   static const osc::NativeDef Natives[] = {
  ///       {"host-add", hostAdd, 2, 2},
  ///       {"host-log", hostLog, 1, -1},
  ///   };
  ///   I.defineNatives(Natives);
  /// \endcode
  void defineNatives(std::span<const NativeDef> Defs);
  /// Binds a global variable.
  void defineGlobal(std::string_view Name, Value V);

  Heap &heap() { return *H; }
  VM &vm() { return *M; }
  ControlStack &control() { return M->control(); }
  Stats &stats() { return S; }
  /// A coherent point-in-time copy of every counter — the safe way to
  /// observe stats (Snapshot is plain integers; it can be kept, diffed
  /// with operator-, and summed with operator+= across interpreters).
  Stats::Snapshot snapshot() const { return S.snapshot(); }
  const Config &config() const { return Cfg; }
  /// The VM's control-event tracer (also reachable from Scheme via
  /// trace-start! / trace-stop! / trace-dump).
  Trace &trace() { return M->trace(); }
  /// The live fault-injection plan; arm after construction so the prelude
  /// load is not subjected to the faults.
  FaultPlan &faults() { return M->faults(); }

  /// Forces a full garbage collection.
  void collect() { H->collect(); }

  /// Redirects (display ...) / (write ...) / (newline) into a buffer
  /// retrievable with takeOutput() — the hook tests and host apps use to
  /// observe program output.
  void captureOutput(bool Enable) { M->captureOutput(Enable); }
  std::string takeOutput() { return M->takeOutput(); }

private:
  Config Cfg;
  Stats S;
  std::unique_ptr<Heap> H;
  std::unique_ptr<VM> M;
  std::unique_ptr<GCRoot> LastValue;
};

} // namespace osc

#endif // OSC_VM_INTERP_H
