//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode interpreter over the segmented control stack.
///
/// The VM executes frames on a ControlStack window exactly per the paper's
/// model: a frame-pointer register, no stack pointer beyond the watermark,
/// frame-size words read from the code stream, underflow markers at segment
/// bases.  call/cc, call/1cc, call-with-values, values and apply are
/// control-manipulating operations handled in the dispatch loop; everything
/// else is an ordinary native.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_VM_VM_H
#define OSC_VM_VM_H

#include "control/Prompt.h"
#include "core/Config.h"
#include "core/ControlStack.h"
#include "object/Heap.h"
#include "object/Objects.h"
#include "support/Error.h"
#include "support/Fault.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace osc {

class Scheduler;
struct SchedContext;
enum class ThreadState : uint8_t;
class Reactor;
class Port;
struct PendingIo;
class ConnQueue;

/// One row of a native-procedure registration table (see
/// VM::defineNatives): collapses the per-primitive defineNative
/// boilerplate into data.
struct NativeDef {
  const char *Name;
  NativeFn Fn;
  uint16_t MinArgs;
  int16_t MaxArgs; ///< -1 for variadic.
  NativeSpecial Special = NativeSpecial::None;
};

class VM : public RootProvider {
public:
  VM(Heap &H, Stats &S, const Config &Cfg);
  ~VM() override;
  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  struct RunResult {
    bool Ok = false;
    Value Val;
    std::string Error;
    /// Which layer rejected the work (support/Error.h); None when Ok.
    ErrorKind Kind = ErrorKind::None;
    /// On error: innermost-first procedure names, reconstructed by walking
    /// the frames of the current window and the continuation chain using
    /// the frame-size words (§3.1 — the same mechanism exception handlers
    /// and debuggers use in the paper's system).
    std::vector<std::string> Backtrace;
  };

  /// Runs a compiled zero-argument top-level code object to completion
  /// (the halt continuation) or error.
  RunResult run(Code *Toplevel);

  // --- Services for natives -------------------------------------------------

  Heap &heap() { return H; }
  Stats &stats() { return S; }
  ControlStack &control() { return CS; }
  const Config &config() const { return Cfg; }
  /// The VM's event tracer (support/Trace.h).  Owned here; the control
  /// stack, heap and scheduler emit into it through pointers installed at
  /// construction.  Off until start()/trace-start!.
  Trace &trace() { return Tr; }
  /// The live fault-injection schedule (support/Fault.h).  Mutable so tests
  /// can arm faults after construction (e.g. relative to the segment
  /// allocations the prelude already performed); the preemption schedule is
  /// consumed per run.
  FaultPlan &faults() { return Cfg.Faults; }

  /// Records a runtime error; the interpreter loop aborts at the next
  /// check.  Returns unspecified so natives can `return Vm.fail(...)`.
  Value fail(const std::string &Msg);
  /// Same, with an explicit classification (the no-kind overload records
  /// ErrorKind::Runtime).  First error wins, kind included.
  Value fail(const std::string &Msg, ErrorKind Kind);
  bool failed() const { return Failed; }

  /// Writes \p S to the program's output: the capture buffer when capture
  /// is enabled, stdout otherwise.  Used by display/write/newline.
  void writeOutput(std::string_view S);
  /// Redirects display/write/newline into an internal buffer.
  void captureOutput(bool Enable) {
    Capturing = Enable;
    if (!Enable)
      OutBuffer.clear();
  }
  /// Returns and clears the captured output.
  std::string takeOutput() {
    std::string S = std::move(OutBuffer);
    OutBuffer.clear();
    return S;
  }

  // --- Engine timer (extension; engines are the thread substrate the
  // paper cites [9,15]) ------------------------------------------------------
  //
  // The timer decrements once per procedure call.  When it reaches zero
  // the VM, at the next Return, captures the rest of the computation as a
  // one-shot continuation and calls the handler with (k v): invoking
  // (k v) resumes the preempted computation returning v.

  /// Arms the timer: \p Ticks procedure calls, then \p Handler fires.
  void setTimer(int64_t Ticks, Value Handler) {
    Fuel = Ticks;
    TimerHandler = Handler;
  }
  /// Disarms the timer; returns the unconsumed ticks.
  int64_t stopTimer() {
    int64_t Left = Fuel > 0 ? Fuel : 0;
    Fuel = -1;
    TimerExpired = false;
    return Left;
  }
  int64_t remainingFuel() const { return Fuel; }

  // --- Green-thread scheduler (src/sched) ------------------------------------
  //
  // The scheduler generalizes the engine timer into a full preemptive
  // round-robin thread system: the same timer drives involuntary switches,
  // but instead of calling a Scheme handler the VM itself captures the
  // running thread with captureOneShot and reinstates the next one — a
  // steady-state context switch copies zero stack words.  The Scheduler
  // object holds policy (queues, thread table, channels); all control
  // transfers happen here in the VM.

  Scheduler &scheduler() { return *Sched; }

  /// (%spawn thunk): creates the green thread and, when the spawner holds
  /// an open nursery, records the child in it and arranges for the child
  /// to inherit it (structured concurrency at spawn time, in one native
  /// call).  Returns the thread id as a fixnum.
  Value spawnThread(Value Thunk);

  /// (%thread-cancel! tid): deadline-style poisoning of a parked/ready
  /// green thread — marks its one-shot resume point shot (never
  /// reinstated; zero words copied), removes it from every wait structure
  /// (ready queue, sleepers, channels, reactor) and retires it as Done
  /// with the 'cancelled symbol, waking joiners.  #t if the thread was
  /// retired, #f if it was already done or is the running thread.  The
  /// nursery layer (prelude) drives this for scope teardown; public so
  /// the plain %thread-cancel! native can reach it.
  Value threadCancel(Value TidV);

  // --- I/O reactor (src/io) --------------------------------------------------
  //
  // io-read-line / io-write / io-accept on a fd that is not ready park the
  // running green thread exactly like a channel block: a one-shot capture,
  // a PendingIo registered with the reactor, and a zero-copy reinstatement
  // when poll(2) reports readiness.  Performed by the main computation
  // (outside scheduler-run) the same operations block inline instead.

  Reactor &reactor() { return *Rx; }
  /// Attaches the serving pool's fd handoff queue (never owned; null
  /// detaches) and enables the reactor's cross-thread wakeup so notify()
  /// can interrupt a poll.  io-take-conn pulls from this queue.  Returns
  /// false and sets \p Err when the wakeup pipe cannot be created.
  bool attachConnQueue(ConnQueue *Q, std::string &Err);
  /// Same, but wires the wakeup to a *host-owned* pipe (see
  /// Reactor::enableWakeupFrom): the pool allocates one pipe per shard and
  /// re-attaches it across worker restarts, so the acceptor's notify fd
  /// never dangles when a crashed worker's reactor is torn down.
  bool attachConnQueue(ConnQueue *Q, int WakeReadFd, int WakeWriteFd,
                       std::string &Err);
  ConnQueue *connQueue() { return ConnQ; }
  /// The interned EOF sentinel (what io-read-line yields at end of stream
  /// and channel-recv yields on a closed empty channel).
  Value eofObject() const { return EofObj; }
  /// The interned timeout sentinel (what with-deadline yields when its
  /// extent expired; unreadable like the EOF object, so unforgeable).
  Value timeoutObject() const { return TimeoutObj; }

  // --- Deadline wheel (overload protection) ----------------------------------
  //
  // (with-deadline ms thunk) is pure prelude Scheme: call/1cc captures the
  // extent's escape k, and dynamic-wind brackets the thunk with
  // %deadline-push / %deadline-pop so the armed record stays balanced
  // under any escape.  The record lives on the current green thread;
  // when the thread parks, the earliest armed record's tick rides on the
  // reactor waiter (or on an fd-less Timer waiter for channel blocks),
  // and expiry poisons the parked one-shot and runs the escape thunk on a
  // fresh chain — delivery is one markShot plus one one-shot invoke of k,
  // zero words copied.

  /// Converts wall milliseconds to virtual poll ticks (>= 1).
  uint64_t msToTicks(int64_t Ms) const;
  /// Arms a deadline record on the current thread: in \p Ms, run \p Proc.
  /// Returns the record's fixnum id.  Outside a scheduler thread the
  /// record is not armed (deadlines fire at reactor poll points, which
  /// the main computation never reaches) — a fresh id is still returned
  /// so push/pop stay balanced.
  Value deadlinePush(Value MsV, Value Proc);
  /// Disarms the record with id \p IdV if still armed (#t/#f).
  Value deadlinePop(Value IdV);
  /// Wakes every thread parked on \p P (readers/acceptors complete with the
  /// buffered tail or EOF; writers get a trappable error), then closes it.
  void ioClosePort(Port *P);

  /// Binds \p Name's global to \p V.
  void defineGlobal(std::string_view Name, Value V);
  /// Registers a native procedure under \p Name.
  void defineNative(std::string_view Name, NativeFn Fn, uint16_t MinArgs,
                    int16_t MaxArgs,
                    NativeSpecial Special = NativeSpecial::None);
  /// Registers a whole table of natives at once.
  void defineNatives(std::span<const NativeDef> Defs);

  // RootProvider:
  void traceRoots(GCVisitor &V) override;

private:
  /// How a procedure is being entered.  Continuation receivers are entered
  /// by first planting a fresh base frame and then using Tail (reusing it).
  enum class SiteKind : uint8_t {
    NonTail, ///< From Call; D identifies the caller frame extent.
    Tail,    ///< From TailCall; the current frame is reused.
  };
  struct Site {
    SiteKind Kind;
    uint32_t D = 0;
  };

  /// The dispatch loop body of run(); throws SegmentAllocFault out to run()
  /// when FaultPlan::FailSegmentAlloc fires inside the control stack.
  /// Selects one of the two loop instantiations below by
  /// Config::ThreadedDispatch; both are generated from VMDispatch.inc and
  /// execute byte-identically (same instruction boundaries, same fault
  /// points, same Stats::Instructions), differing only in dispatch
  /// mechanics.
  void interpLoop();
  /// Portable `switch` dispatch: one indirect branch shared by every
  /// opcode.  The differential-oracle baseline.
  void interpLoopSwitch();
  /// Computed-goto (direct-threaded) dispatch: a label table indexed by
  /// opcode, one indirect branch *per handler* so the branch predictor
  /// learns per-opcode successor distributions (the MoarVM/interp.c
  /// idiom).  Falls back to the switch loop where the GNU labels-as-values
  /// extension is unavailable.
  void interpLoopThreaded();
  /// \p ArityChecked is set by the call-site inline-cache hit path: a hit
  /// proves the same closure was entered from this site with the same
  /// static argument count before, so the arity re-check is skipped.
  bool enterClosure(Closure *Cl, uint32_t NArgs, bool ArityChecked = false);
  /// Builds a frame for \p Site and enters \p Callee with \p Args.  The
  /// general path used for special natives, apply spreading, continuation
  /// receivers and cwv; the hot paths in the loop bypass it.
  void enterCall(Value Callee, std::vector<Value> Args, Site S);
  void invokeContinuationWithValues(Continuation *K,
                                    const std::vector<Value> &Vals);
  /// Returns the current values to the current frame's return address;
  /// handles underflow.  Sets Halted/FinalValue at the halt continuation.
  void returnValues();
  void captureAndCall(bool OneShot, Value Receiver, Site S);
  void doCallWithValues(Value Producer, Value Consumer, Site S);

  // Delimited control (VM.cpp, "Delimited control" section; src/control
  // holds the chain-surgery half).  All three run in the dispatch loop.
  /// (%reset tag thunk): capture one-shot at \p S (the Mark), push a
  /// PromptRecord, and call \p Thunk on a fresh base with a prompt stub
  /// frame (return point PromptStub@1) carrying the record id.
  void doReset(Value Tag, Value Thunk, Site S);
  /// (%shift tag receiver): cut the slice up to the innermost live prompt
  /// for \p Tag, abort to its Mark, and call \p Receiver with the packaged
  /// slice on a fresh stub frame for the same record.
  void doShift(Value Tag, Value Receiver, Site S);
  /// (%delim-invoke dk v): capture one-shot at \p S, splice \p Dk's slice
  /// in front of it (re-pushing the prompt records the slice carries), and
  /// resume the slice top with \p V.
  void doDelimInvoke(Value Dk, Value V, Site S);
  /// Plants a prompt stub frame (base frame + PromptStub@1 return point +
  /// the record id in FramePromptId) and enters \p Callee on top of it.
  void enterWithPromptStub(uint64_t Id, Value Callee,
                           std::vector<Value> Args);
  /// Packs a cut slice into the opaque delimited-continuation vector
  /// %shift/%perform hand their receivers (layout: DelimKSlot in VM.cpp).
  /// Remaps \p Saved records' Marks onto deep clones first.
  /// \p RepushHandler is what the splice re-pushes as the record's handler:
  /// the record's own for shift and deep handlers, Empty for a perform on a
  /// shallow handler (the resumed slice loses that handler).
  Vector *packDelimK(const PromptRecord &R, const DelimSlice &Slice,
                     std::vector<PromptRecord> &Saved, Value RepushHandler);

  // Effect handlers (same section of VM.cpp; the veneer over the prompt
  // machinery above).  Both run in the dispatch loop.
  /// (%with-handler tag handler thunk shallow): doReset, except the record
  /// carries \p Handler (and the shallow-mode flag) so perform can find it.
  void doWithHandler(Value Tag, Value Handler, Value Thunk, Value Shallow,
                     Site S);
  /// (%perform tag receiver): cut the slice up to the innermost live
  /// *handler* record for \p Tag, pop that record (the handler runs
  /// outside its own delimiter), abort to its Mark, and call \p Receiver
  /// with the record's handler, the packaged slice and the reset-entry
  /// winders on a fresh plain base frame — its normal return IS the
  /// with-handler form's return.
  void doPerform(Value Tag, Value Receiver, Site S);

  // Scheduler glue (VM.cpp, "Green-thread scheduler" section).  The Site
  // identifies the suspended operation's resume point, exactly as for
  // call/1cc.
  /// Computes the capture point of the pending call at \p S (shared with
  /// captureAndCall).
  void siteCapturePoint(Site S, uint32_t &Boundary, Value &RetCode,
                        int64_t &RetPc);
  /// Captures the rest of the current computation as a one-shot
  /// continuation, as if the call at \p S were a call/1cc.
  Value captureSiteOneShot(Site S);
  /// The capture every scheduler context switch uses: one-shot normally,
  /// multi-shot under the Config::SchedOneShotSwitch=false baseline shim
  /// (whose reinstatements then copy the suspended frames back).
  Value schedCapture(uint32_t Boundary, Value RetCode, int64_t RetPc);
  /// Returns \p V from the native call at \p S without a context switch.
  void nativeReturn(Value V, Site S);
  void schedSaveContext(SchedContext &C);
  void schedRestoreContext(const SchedContext &C, bool FreshSlice);
  /// Parks the running thread and transfers control to whatever the
  /// scheduler picks next.
  void schedSuspendAndDispatch(Value K, Value Wake, ThreadState NewState);
  void schedDispatch();
  void schedRun(Value IntervalV, Site S);
  void schedYield(Site S);
  void schedExit(Value V);
  void schedJoin(Value TidV, Site S);
  void schedSleep(Value TicksV, Site S);
  void chanSend(Value ChV, Value V, Site S);
  void chanRecv(Value ChV, Site S);

  // Reactor glue (VM.cpp, "I/O reactor" section).
  void ioReadLine(Value PortV, Site S);
  void ioWrite(Value PortV, Value StrV, Site S);
  void ioAccept(Value PortV, Site S);
  void ioTakeConn(Site S);
  /// Pops one handed-off fd if available: adopts it into the port table
  /// and returns the new port id as a fixnum; EOF object when the queue is
  /// closed and drained; Empty when it is merely empty (caller parks).
  Value ioTryTakeConn();
  /// Parks the current thread on (\p P, \p Op): registers the waiter,
  /// captures the continuation at \p S one-shot and dispatches away.
  void ioPark(Port *P, int OpRaw, Site S);
  /// Retries the non-blocking half of a parked operation whose fd became
  /// ready; wakes the thread with the result, or re-parks.  Returns true
  /// when a thread was woken (or poisoned with a pending error).
  bool ioComplete(const PendingIo &P);
  /// Handles a waiter whose deadline expired: fires the innermost armed
  /// with-deadline record (escape delivery), or drops a port whose own
  /// deadline lapsed, or poisons the thread with ErrorKind::Timeout.
  /// Returns true when a thread was woken.
  bool ioExpire(const PendingIo &P);
  /// The armed tick of the current thread's earliest deadline record
  /// (0 = none armed).
  uint64_t currentDeadlineTick();
  /// Registers an fd-less Timer waiter for the current thread's earliest
  /// deadline record, if any — called just before a channel block parks.
  void armBlockTimer();
  /// Escape-or-poison delivery for thread \p Tid whose wait expired.
  bool fireThreadDeadline(uint32_t Tid, uint32_t PortId, int OpRaw);
  /// Overload defense: drops \p P (trace io-drop with \p Reason, count it
  /// reaped+closed, wake its waiters against the closed fd).
  void ioDropPort(Port *P, uint64_t Reason);
  /// Runs the reactor until at least one parked thread wakes; false on
  /// poll timeout.  The wall budget spans poll batches: with deadlines
  /// armed each batch is clamped to one tick, and ticking continues until
  /// a wake or \p TimeoutMs of wall time elapses.
  bool ioPollAndWake(int TimeoutMs);
  /// abortRun plus dropping the reactor's waiters (their threads are gone).
  void abortScheduler();
  uint32_t calleeNeed(Value Callee, uint32_t NArgs) const;
  /// Walks the logical stack innermost-first: current window frames, then
  /// each continuation in the chain, bounded by \p MaxFrames.
  std::vector<std::string> captureBacktrace(unsigned MaxFrames = 32) const;
  uint32_t buildFrame(Site S, const Value *Args, uint32_t NArgs,
                      uint32_t Need);
  void setValues(const Value *Vals, uint32_t N);
  void collectValues(std::vector<Value> &Out) const;

  Heap &H;
  Stats &S;
  Config Cfg;
  Trace Tr; ///< Before CS: hooks are installed right after CS constructs.
  ControlStack CS;

  // Registers.
  Value Acc;
  Value CurCodeVal;
  Code *Cur = nullptr;
  int64_t Pc = 0;
  uint32_t NumValues = 1;
  std::vector<Value> MultiVals;

  bool Failed = false;
  std::string ErrMsg;
  ErrorKind ErrKind = ErrorKind::None;
  bool Halted = false;
  Value FinalValue;

  /// Global-binding generation: bumped by every *definition* (DefGlobal,
  /// defineGlobal, defineNative) but not by set!.  A global-site inline
  /// cache filled under one generation is invalidated by the next
  /// definition; starts at 1 so a zeroed CacheSlot (Gen 0) never hits.
  uint64_t GlobalGen = 1;

  // Engine timer state.
  int64_t Fuel = -1;        ///< Ticks left; -1 when disarmed.
  bool TimerExpired = false; ///< Set at 0; serviced at the next Return.
  Value TimerHandler;

  // Fault-plan preemption schedule (Cfg.Faults.PreemptAtCalls): the call
  // ordinal within the current run and the next schedule entry to fire.
  // Both reset at each run().
  uint64_t PreemptTick = 0;
  size_t PreemptCursor = 0;

  bool Capturing = false;
  std::string OutBuffer;

  Value CwvStub; ///< Code object whose pc=1 is the cwv resume point.
  Value PromptStub; ///< Code object whose pc=1 is the prompt-pop resume
                    ///< point (the return address of every prompt stub
                    ///< frame planted by doReset/doShift).

  // Delimited-control state (src/control).  The live table belongs to the
  // running green thread; schedSave/RestoreContext swap it with the
  // thread's SchedContext exactly like *winders*.
  PromptTable Prompts;
  uint64_t NextPromptId = 0;

  // Scheduler state.
  std::unique_ptr<Scheduler> Sched;
  Value ThreadGuard; ///< Shared shot continuation marking thread-chain
                     ///< roots: a fresh thread's base frame links here, so
                     ///< an underflow (or base-frame capture) that reaches
                     ///< it is recognized as thread exit.
  Symbol *WindersSym = nullptr; ///< Interned *winders*, swapped per thread.
  Symbol *NurserySym = nullptr; ///< Interned *nursery*, swapped per thread
                                ///< (the prelude's current-nursery pointer
                                ///< is dynamic state like *winders*).

  // I/O reactor state.
  std::unique_ptr<Reactor> Rx;
  Value EofObj; ///< Interned "#<eof>" symbol (unreadable, so unforgeable).
  ConnQueue *ConnQ = nullptr; ///< Pool fd handoff queue; never owned.

  // Deadline wheel state.
  Value TimeoutObj; ///< Interned "#<timeout>" symbol (unforgeable).
  uint64_t NextDeadlineId = 0; ///< Handle source for %deadline-push.
};

/// Installs the standard primitive library into \p Vm (Primitives.cpp).
void installPrimitives(VM &Vm);

/// Installs the regex subsystem's natives (RegexPrims.cpp); called by
/// installPrimitives.
void installRegexPrimitives(VM &Vm);

/// Source text of the Scheme prelude (Prelude.cpp): list utilities,
/// dynamic-wind, the call/cc and call/1cc wrappers, derived procedures.
const char *preludeSource();

} // namespace osc

#endif // OSC_VM_VM_H
