#include "vm/VM.h"

using namespace osc;

/// The Scheme prelude, evaluated when an Interp is constructed.
///
/// Most of it is ordinary library code; the load-bearing part is the
/// dynamic-wind machinery: call/cc and call/1cc wrap the primitive captured
/// continuation in a procedure that rewinds the winders chain before
/// transferring control (the classic Scheme implementation the paper's
/// system also maintains alongside one-shot continuations).
const char *osc::preludeSource() {
  return R"PRELUDE(
;; --- cxr compositions -------------------------------------------------------
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))
(define (cdddr p) (cdr (cddr p)))
(define (cadddr p) (car (cdddr p)))

;; --- higher-order list utilities ---------------------------------------------
(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))
(define (map2 f a b)
  (if (or (null? a) (null? b))
      '()
      (cons (f (car a) (car b)) (map2 f (cdr a) (cdr b)))))
(define (map f l . ls)
  (if (null? ls) (map1 f l) (map2 f l (car ls))))
(define (for-each f l . ls)
  (if (null? ls)
      (let loop ((l l))
        (if (null? l) (if #f #f) (begin (f (car l)) (loop (cdr l)))))
      (let loop ((a l) (b (car ls)))
        (if (or (null? a) (null? b))
            (if #f #f)
            (begin (f (car a) (car b)) (loop (cdr a) (cdr b)))))))
(define (filter pred l)
  (cond ((null? l) '())
        ((pred (car l)) (cons (car l) (filter pred (cdr l))))
        (else (filter pred (cdr l)))))
(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))
(define (fold-right f acc l)
  (if (null? l) acc (f (car l) (fold-right f acc (cdr l)))))
(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))
(define (last-pair l)
  (if (pair? (cdr l)) (last-pair (cdr l)) l))

;; --- dynamic-wind and the continuation wrappers ---------------------------------
;;
;; *winders* is the stack of (before . after) pairs.  A captured
;; continuation remembers the winders in effect at capture time; invoking it
;; unwinds/rewinds to that point before transferring control.
(define *winders* '())

(define (%common-tail x y)
  (let ((lx (length x)) (ly (length y)))
    (let loop ((x (if (> lx ly) (list-tail x (- lx ly)) x))
               (y (if (> ly lx) (list-tail y (- ly lx)) y)))
      (if (eq? x y) x (loop (cdr x) (cdr y))))))

(define (%do-wind new)
  (let ((tail (%common-tail new *winders*)))
    ;; Unwind out of the current extent...
    (let f ((l *winders*))
      (unless (eq? l tail)
        (set! *winders* (cdr l))
        ((cdr (car l)))
        (%trace-wind 1)
        (f (cdr l))))
    ;; ...then rewind into the target extent.
    (let f ((l new))
      (unless (eq? l tail)
        (f (cdr l))
        ((car (car l)))
        (%trace-wind 0)
        (set! *winders* l)))))

(define (call-with-current-continuation p)
  (let ((saved *winders*))
    (%call/cc
     (lambda (k)
       (p (lambda vals
            (unless (eq? saved *winders*) (%do-wind saved))
            (apply k vals)))))))
(define call/cc call-with-current-continuation)

(define (call/1cc p)
  (let ((saved *winders*))
    (%call/1cc
     (lambda (k)
       (p (lambda vals
            (unless (eq? saved *winders*) (%do-wind saved))
            (apply k vals)))))))

(define (dynamic-wind before thunk after)
  (before)
  (%trace-wind 0)
  (set! *winders* (cons (cons before after) *winders*))
  (call-with-values
   thunk
   (lambda results
     (set! *winders* (cdr *winders*))
     (after)
     (%trace-wind 1)
     (apply values results))))

(define call-with-values %call-with-values)

;; --- engines (Dybvig & Hieb; the thread substrate the paper cites) -----------
;;
;; (make-engine thunk) -> engine; (engine ticks success expire) runs the
;; computation for at most ticks procedure calls.  On completion, calls
;; (success remaining-ticks result); on preemption, calls (expire
;; new-engine).  Every suspension is a one-shot continuation captured by
;; the VM timer; engines do not nest.

(define %do-complete #f)
(define %do-expire #f)
(define %engine-base-winders '())

;; Preemption does not run dynamic-wind thunks (an engine switch is not an
;; escape); instead the engine's winders are suspended with it and restored
;; on resume, and the scheduler gets its own winders back.
(define (%engine-timer-handler k v)
  (let ((w *winders*))
    (set! *winders* %engine-base-winders)
    (%do-expire
     (lambda (ticks success expire)
       (%run-engine (lambda () (set! *winders* w) (k v))
                    ticks success expire)))))

;; The escape continuation receives a *thunk* which is run after the
;; engine's extent has been discarded; calling (success ...) or (expire
;; ...) inside the extent would nest the client's scheduler under the
;; handler and leak one pending escape (and its pinned segment) per slice.
(define (%run-engine resume ticks success expire)
  ((call/1cc
    (lambda (escape)
      (set! %engine-base-winders *winders*)
      (set! %do-complete
            (lambda (left result)
              (escape (lambda () (success left result)))))
      (set! %do-expire
            (lambda (eng) (escape (lambda () (expire eng)))))
      ;; +2 covers the scheduler's own resume calls below, so even a
      ;; 1-tick slice makes real progress (otherwise a 1-tick engine would
      ;; expire before reaching user code and loop forever).
      (%set-timer! (+ ticks 2) %engine-timer-handler)
      (resume)))))

(define (make-engine thunk)
  (lambda (ticks success expire)
    (%run-engine
     (lambda ()
       (let ((result (thunk)))
         (let ((left (%stop-timer!)))
           (%do-complete left result))))
     ticks success expire)))

;; --- green threads (src/sched; native successor to engines) ------------------
;;
;; The native scheduler generalizes the engine timer: (spawn thunk) creates
;; a green thread, (scheduler-run ticks) runs all spawned threads round-
;; robin with a preemption slice of ticks procedure calls (0 = cooperative)
;; and returns how many threads completed.  Context switches are one-shot
;; captures performed inside the VM — no Scheme handler runs, and a steady-
;; state switch copies no stack words.  Engines keep working unchanged on
;; the raw timer; an engine running inside a thread is preempted by its own
;; timer first (engine semantics win within its slice).
;;
;; Thread and channel handles are fixnums.  channel-try-recv returns #f on
;; an empty channel, so a program that sends #f itself should wrap payloads
;; (e.g. in a one-element list) or use the blocking channel-recv.

(define spawn %spawn)
(define (thread-exit v) (%thread-exit v))
(define (thread-join tid) (%join tid))
(define (thread-sleep! ticks) (%sleep ticks))
(define (scheduler-run . ticks)
  (%sched-run (if (null? ticks) 0 (car ticks))))
(define (channel-send! ch v) (%chan-send ch v))
(define (channel-recv ch) (%chan-recv ch))

;; --- ports and the I/O reactor (src/io) --------------------------------------
;;
;; Port handles are fixnums like threads and channels.  Inside a green
;; thread, io-read-line / io-write / io-accept park the thread on fd
;; readiness (a one-shot capture; resuming copies no stack words); outside
;; the scheduler they block the whole program.  io-read-line returns the
;; EOF object at end of stream, io-accept returns it when the listener is
;; closed, and channel-recv returns it on a closed, drained channel.

(define (eof-object) *eof*)
(define (eof-object? x) (eq? x *eof*))
(define (io-read-line p) (%io-read-line p))
(define (io-write p s) (%io-write p s))
(define (io-accept p) (%io-accept p))

;; Pool workers take handed-off connections instead of accepting their own:
;; io-take-conn parks until the host pushes an fd onto this worker's handoff
;; queue, returning a fresh stream port id (or EOF once the queue is closed
;; and drained).
(define (io-take-conn) (%io-take-conn))

;; --- deadlines (the VM's deadline wheel) -------------------------------------
;;
;; (with-deadline ms thunk) runs thunk; if it blocks (channel wait or I/O
;; park) past the deadline, the VM poisons the parked one-shot resume point
;; (zero words copied, no possible resurrection) and runs the escape thunk
;; registered here, which invokes the extent's one-shot k — so after-thunks
;; of any dynamic-winds entered inside thunk run on the way out, including
;; the one below that pops the deadline record (by id, so the pop survives
;; any other escape).  The timeout object is an unforgeable sentinel like
;; *eof*; CPU-bound code is never interrupted — deadlines fire only at the
;; reactor's poll points.

(define (timeout-object) *timeout*)
(define (timeout-object? x) (eq? x *timeout*))

(define (with-deadline ms thunk)
  (call/1cc
   (lambda (k)
     (let ((id #f))
       (dynamic-wind
        (lambda () (set! id (%deadline-push ms (lambda () (k *timeout*)))))
        thunk
        (lambda () (%deadline-pop id)))))))

;; --- delimited control (src/control; tagged reset/shift) ---------------------
;;
;; (reset tag body...) plants a delimiter; (shift tag k body...) cuts the
;; continuation up to the nearest live delimiter with an identical tag and
;; binds k to a *one-shot* delimited continuation (invoking it twice is an
;; error).  The cut reuses the paper's split idiom — headers are relinked,
;; no stack words are copied — and the delimiter travels with k, so a
;; resumed slice can shift again (what make-generator below relies on).
;;
;; Winder travel across the delimiter: the abort from the shift site to the
;; reset runs the after-thunks of every dynamic-wind entered inside the
;; extent; invoking k re-runs their before-thunks, rebased onto the invoke
;; site's own winder chain.  The native %shift hands the receiver the
;; winders saved at reset entry for exactly this purpose.

(define (%reset-proc tag thunk) (%reset tag thunk))

(define (%shift-proc tag f)
  (let ((w-shift *winders*))
    (%shift
     tag
     (lambda (dk w-reset)
       ;; The slice's winders are the prefix of w-shift above w-reset,
       ;; collected outermost-first for re-entry.
       (let ((prefix (let loop ((l w-shift) (acc '()))
                       (if (eq? l w-reset)
                           acc
                           (loop (cdr l) (cons (car l) acc))))))
         ;; Abort direction: unwind out of the extent's winders.
         (unless (eq? w-reset *winders*) (%do-wind w-reset))
         (f (lambda (v)
              ;; Re-entry direction: rewind the slice's winders on top of
              ;; whatever the invoke site has wound.
              (let loop ((p prefix))
                (unless (null? p)
                  ((car (car p)))
                  (%trace-wind 0)
                  (set! *winders* (cons (car p) *winders*))
                  (loop (cdr p))))
              (%delim-invoke dk v))))))))

;; --- effect handlers (src/control veneer over the prompt machinery) ----------
;;
;; (with-handler tag ((op k args...) body...)... body...) installs a handler
;; on the same PromptTable reset uses; (perform tag op args...) cuts the
;; slice up to the innermost matching handler exactly like shift — headers
;; relinked, zero stack words copied — pops the handler's record (so the
;; clause runs *outside* its own delimiter: never invoking k aborts for
;; free, and an unlisted op forwards to the next handler out) and runs the
;; matching clause with k bound to the one-shot continuation of the perform
;; site.  Deep handlers (the default) reinstall themselves when k is
;; invoked; with-shallow-handler resumes bare.  k is one-shot: a second
;; invocation fails like any delimited continuation.
;;
;; Winder travel matches reset/shift: the abort from the perform site runs
;; the after-thunks of every dynamic-wind entered inside the extent, and
;; invoking k re-runs their before-thunks rebased onto the invoke site.

(define (%with-handler-proc tag handler thunk shallow)
  (%with-handler tag handler thunk shallow))

(define (%perform-proc tag op args)
  (let ((w-perform *winders*))
    (%perform
     tag
     (lambda (handler dk w-entry)
       ;; The slice's winders are the prefix of w-perform above w-entry,
       ;; collected outermost-first for re-entry (the %shift-proc pattern).
       (let ((prefix (let loop ((l w-perform) (acc '()))
                       (if (eq? l w-entry)
                           acc
                           (loop (cdr l) (cons (car l) acc))))))
         ;; Abort direction: unwind out of the extent's winders.
         (unless (eq? w-entry *winders*) (%do-wind w-entry))
         (handler op
                  (lambda (v)
                    ;; Re-entry direction: rewind the slice's winders on top
                    ;; of whatever the invoke site has wound.
                    (let loop ((p prefix))
                      (unless (null? p)
                        ((car (car p)))
                        (%trace-wind 0)
                        (set! *winders* (cons (car p) *winders*))
                        (loop (cdr p))))
                    (%delim-invoke dk v))
                  args))))))

(define (perform tag op . args)
  (%perform-proc tag op args))

;; --- structured concurrency: nurseries (src/sched veneer) --------------------
;;
;; (nursery body...) opens a scope; (spawn thunk) inside it enrolls the
;; child, and child scopes enroll themselves in their parent.  When the
;; scope exits — normally, by escape, or because its own thread is being
;; torn down — every still-live descendant is cancelled innermost-scope
;; first, each in spawn order, by deadline-style poisoning: the child's
;; parked one-shot resume point is marked shot (never reinstated, zero
;; words copied) and its joiners wake with 'cancelled.  (nursery-fail v)
;; inside a child cancels all of its siblings immediately and exits the
;; child with (cons '%nursery-failed v).
;;
;; *nursery* is the running green thread's innermost open scope (or #f);
;; the VM swaps it at every context switch exactly like *winders*.  %spawn
;; itself does the enrollment and makes the child inherit the spawner's
;; scope (VM::spawnThread), so the tree structure follows spawning, not
;; scheduling, and spawn stays a single native call.

(define *nursery* #f)

(define (%nursery-make) (vector '() '() #t))

(define (%nursery-cancel-all! n)
  (vector-set! n 2 #f)
  ;; Sub-scopes die before this scope's own children; both lists were
  ;; consed, so reverse restores deterministic spawn order.
  (for-each %nursery-cancel-all! (reverse (vector-ref n 1)))
  (for-each (lambda (tid) (%thread-cancel! tid))
            (reverse (vector-ref n 0)))
  (vector-set! n 0 '())
  (vector-set! n 1 '()))

(define (%nursery-scope thunk)
  (let ((n (%nursery-make))
        (outer *nursery*))
    (if outer (vector-set! outer 1 (cons n (vector-ref outer 1))))
    (dynamic-wind
     (lambda () (set! *nursery* n))
     thunk
     (lambda ()
       (set! *nursery* outer)
       (%nursery-cancel-all! n)))))

(define (nursery-fail v)
  (let ((n *nursery*))
    (if n (%nursery-cancel-all! n))
    (thread-exit (cons '%nursery-failed v))))

(define (thread-cancel! tid) (%thread-cancel! tid))

;; --- generators on reset/shift ----------------------------------------------
;;
;; (make-generator proc) returns a generator g; (generator-next g [v])
;; resumes it, returning the next yielded value, or *eof* once proc
;; returns.  Inside proc, (yield v) suspends — a one-shot capture to the
;; generator's delimiter, zero stack words copied — and evaluates to the
;; value passed to the resuming generator-next.  (yield) with no argument
;; keeps its old meaning: the scheduler's cooperative yield.

(define %generator-tag '%generator-prompt)

(define (yield . v)
  (if (null? v)
      (%yield)
      (shift %generator-tag k (cons k (car v)))))

(define (make-generator proc)
  ;; step is 'fresh, then the parked one-shot continuation, then 'done.
  ;; A yield surfaces as (k . value); normal completion surfaces as #f
  ;; (the wrapper below discards proc's result), so the two cannot clash.
  (let ((step 'fresh))
    (lambda (v)
      (if (eq? step 'done)
          *eof*
          (let ((r (if (eq? step 'fresh)
                       (reset %generator-tag (begin (proc v) #f))
                       (step v))))
            (if (pair? r)
                (begin (set! step (car r)) (cdr r))
                (begin (set! step 'done) *eof*)))))))

(define (generator-next g . v)
  (g (if (null? v) (if #f #f) (car v))))

;; --- async/await on reset/shift + green threads ------------------------------
;;
;; (async body...) runs body in a fresh green thread under an %async-tag
;; delimiter and immediately returns a *future* — a one-slot channel that
;; eventually carries (list result).  Inside an async body, (await fut)
;; shifts to the delimiter: the rest of the body parks as a one-shot
;; continuation while the receiver blocks in channel-recv (the scheduler's
;; park path; for reactor-backed channels this is the same ioPark point
;; I/O uses), then splices the body back in with the settled value.
;; Futures are single-consumption: await (or future-get) each one once.
;; Only meaningful under (scheduler-run ...).

(define %async-tag '%async-prompt)

(define (%async thunk)
  (let ((done (make-channel 1)))
    (spawn (lambda ()
             (let ((r (reset %async-tag (thunk))))
               (channel-send! done (list r)))))
    done))

;; Blocking read of a future from outside any async body.
(define (future-get fut) (car (channel-recv fut)))

(define (await fut)
  (shift %async-tag k (k (car (channel-recv fut)))))

(define (positive? x) (> x 0))
(define (negative? x) (< x 0))

;; --- characters --------------------------------------------------------------------
(define (char=? a b) (eq? a b))
(define (char<? a b) (< (char->integer a) (char->integer b)))
(define (char>? a b) (> (char->integer a) (char->integer b)))
(define (char<=? a b) (<= (char->integer a) (char->integer b)))
(define (char>=? a b) (>= (char->integer a) (char->integer b)))

;; --- misc ------------------------------------------------------------------------
(define (list-copy l)
  (if (pair? l) (cons (car l) (list-copy (cdr l))) l))
(define (vector-map f v)
  (list->vector (map1 f (vector->list v))))
)PRELUDE";
}
