#include "vm/Interp.h"

#include "compiler/CodeGen.h"
#include "compiler/Expander.h"
#include "sexp/Printer.h"
#include "sexp/Reader.h"
#include "support/Diag.h"

using namespace osc;

Interp::Interp(const Config &C) : Cfg(C) {
  H = std::make_unique<Heap>(S, Cfg.GcThresholdBytes);
  M = std::make_unique<VM>(*H, S, Cfg);
  LastValue = std::make_unique<GCRoot>(*H);
  installPrimitives(*M);
  Result R = eval(preludeSource());
  if (!R.Ok)
    oscFatal(("prelude failed to load: " + R.Error).c_str());
}

Interp::~Interp() = default;

Interp::Result Interp::eval(std::string_view Source) {
  Result Res;

  std::vector<Value> Forms;
  {
    Reader Rd(*H, Source);
    std::string Err;
    if (!Rd.readAll(Forms, Err)) {
      Res.Kind = ErrorKind::Parse;
      Res.Error = Err;
      return Res;
    }
  }
  if (Forms.empty()) {
    Res.Ok = true;
    Res.Val = Value::unspecified();
    return Res;
  }

  // Root the datums across compilation and execution of earlier forms.
  GCRoot FormsRoot(*H);
  {
    Value L = Value::nil();
    for (auto It = Forms.rbegin(); It != Forms.rend(); ++It)
      L = Value::object(H->allocPair(*It, L));
    FormsRoot.set(L);
  }

  // The whole unit is one program (load semantics): a continuation captured
  // by one form includes the evaluation of the forms after it.
  Value Unit =
      Value::object(H->allocPair(Value::object(H->intern("begin")),
                                 FormsRoot.get()));
  GCRoot UnitRoot(*H, Unit);

  Expander Ex(*H);
  CodeGen Gen(*H, Cfg);
  Value Expanded;
  std::string Err;
  if (!Ex.expandToplevel(Unit, Expanded, Err)) {
    Res.Kind = ErrorKind::Parse;
    Res.Error = Err;
    return Res;
  }
  GCRoot ExpandedRoot(*H, Expanded);
  Code *C = Gen.compileToplevel(Expanded, Err);
  if (!C) {
    Res.Kind = ErrorKind::Parse;
    Res.Error = Err;
    return Res;
  }
  GCRoot CodeRoot(*H, Value::object(C));
  VM::RunResult R = M->run(C);
  if (!R.Ok) {
    Res.Kind = R.Kind == ErrorKind::None ? ErrorKind::Runtime : R.Kind;
    Res.Error = R.Error;
    Res.Backtrace = std::move(R.Backtrace);
    return Res;
  }
  LastValue->set(R.Val);
  if (H->needsGC())
    H->collect();

  Res.Ok = true;
  Res.Val = R.Val;
  return Res;
}

std::string Interp::evalToString(std::string_view Source) {
  Result R = eval(Source);
  if (!R.Ok)
    return "error: " + R.Error;
  return writeToString(R.Val);
}

std::string Interp::valueToString(Value V, bool Write) const {
  return Write ? writeToString(V) : displayToString(V);
}

void Interp::defineNative(std::string_view Name, NativeFn Fn,
                          uint16_t MinArgs, int16_t MaxArgs) {
  M->defineNative(Name, Fn, MinArgs, MaxArgs);
}

void Interp::defineNatives(std::span<const NativeDef> Defs) {
  M->defineNatives(Defs);
}

void Interp::defineGlobal(std::string_view Name, Value V) {
  M->defineGlobal(Name, V);
}
