#include "vm/VM.h"

#include "io/Reactor.h"
#include "object/ListUtil.h"
#include "sched/Scheduler.h"
#include "sexp/Printer.h"
#include "sexp/Reader.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>

using namespace osc;

namespace {

// --- Numeric helpers ----------------------------------------------------------

bool isNumber(Value V) { return V.isFixnum() || isObj<Flonum>(V); }

double asDouble(Value V) {
  return V.isFixnum() ? static_cast<double>(V.asFixnum())
                      : castObj<Flonum>(V)->D;
}

Value requireNumber(VM &Vm, Value V, const char *Who) {
  if (!isNumber(V))
    return Vm.fail(std::string(Who) + ": not a number: " + writeToString(V));
  return V;
}

template <typename FixOp, typename FloOp>
Value numFold(VM &Vm, Value *Args, uint32_t N, int64_t Unit, FixOp Fx,
              FloOp Fl, const char *Who) {
  bool AnyFlo = false;
  for (uint32_t I = 0; I != N; ++I) {
    if (!isNumber(Args[I]))
      return Vm.fail(std::string(Who) +
                     ": not a number: " + writeToString(Args[I]));
    AnyFlo |= isObj<Flonum>(Args[I]);
  }
  if (!AnyFlo) {
    int64_t Acc = N ? Args[0].asFixnum() : Unit;
    if (N == 1 && (Who[0] == '-' || Who[0] == '/'))
      return Value::fixnum(Fx(Unit, Acc));
    for (uint32_t I = 1; I < N; ++I)
      Acc = Fx(Acc, Args[I].asFixnum());
    return Value::fixnum(Acc);
  }
  double Acc = N ? asDouble(Args[0]) : static_cast<double>(Unit);
  if (N == 1 && (Who[0] == '-' || Who[0] == '/'))
    return Value::object(Vm.heap().allocFlonum(Fl(Unit, Acc)));
  for (uint32_t I = 1; I < N; ++I)
    Acc = Fl(Acc, asDouble(Args[I]));
  return Value::object(Vm.heap().allocFlonum(Acc));
}

template <typename Cmp>
Value numCompare(VM &Vm, Value *Args, uint32_t N, Cmp C, const char *Who) {
  for (uint32_t I = 0; I != N; ++I)
    if (!isNumber(Args[I]))
      return Vm.fail(std::string(Who) +
                     ": not a number: " + writeToString(Args[I]));
  for (uint32_t I = 0; I + 1 < N; ++I) {
    bool Ok;
    if (Args[I].isFixnum() && Args[I + 1].isFixnum())
      Ok = C(Args[I].asFixnum(), Args[I + 1].asFixnum());
    else
      Ok = C(asDouble(Args[I]), asDouble(Args[I + 1]));
    if (!Ok)
      return Value::falseV();
  }
  return Value::trueV();
}

// --- Numeric primitives ---------------------------------------------------------

Value primAdd(VM &Vm, Value *A, uint32_t N) {
  return numFold(
      Vm, A, N, 0, [](int64_t X, int64_t Y) { return X + Y; },
      [](double X, double Y) { return X + Y; }, "+");
}
Value primSub(VM &Vm, Value *A, uint32_t N) {
  return numFold(
      Vm, A, N, 0, [](int64_t X, int64_t Y) { return X - Y; },
      [](double X, double Y) { return X - Y; }, "-");
}
Value primMul(VM &Vm, Value *A, uint32_t N) {
  return numFold(
      Vm, A, N, 1, [](int64_t X, int64_t Y) { return X * Y; },
      [](double X, double Y) { return X * Y; }, "*");
}
Value primDiv(VM &Vm, Value *A, uint32_t N) {
  double Acc = asDouble(requireNumber(Vm, A[0], "/"));
  if (Vm.failed())
    return Value::unspecified();
  if (N == 1)
    return Value::object(Vm.heap().allocFlonum(1.0 / Acc));
  for (uint32_t I = 1; I != N; ++I) {
    double D = asDouble(requireNumber(Vm, A[I], "/"));
    if (Vm.failed())
      return Value::unspecified();
    Acc /= D;
  }
  return Value::object(Vm.heap().allocFlonum(Acc));
}
Value primQuotient(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum() || !A[1].isFixnum())
    return Vm.fail("quotient: expects fixnums");
  if (A[1].asFixnum() == 0)
    return Vm.fail("quotient: division by zero");
  return Value::fixnum(A[0].asFixnum() / A[1].asFixnum());
}
Value primRemainder(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum() || !A[1].isFixnum())
    return Vm.fail("remainder: expects fixnums");
  if (A[1].asFixnum() == 0)
    return Vm.fail("remainder: division by zero");
  return Value::fixnum(A[0].asFixnum() % A[1].asFixnum());
}
Value primModulo(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum() || !A[1].isFixnum())
    return Vm.fail("modulo: expects fixnums");
  int64_t X = A[0].asFixnum(), Y = A[1].asFixnum();
  if (Y == 0)
    return Vm.fail("modulo: division by zero");
  int64_t M = X % Y;
  if (M != 0 && ((M < 0) != (Y < 0)))
    M += Y;
  return Value::fixnum(M);
}
Value primLt(VM &Vm, Value *A, uint32_t N) {
  return numCompare(Vm, A, N, [](auto X, auto Y) { return X < Y; }, "<");
}
Value primLe(VM &Vm, Value *A, uint32_t N) {
  return numCompare(Vm, A, N, [](auto X, auto Y) { return X <= Y; }, "<=");
}
Value primGt(VM &Vm, Value *A, uint32_t N) {
  return numCompare(Vm, A, N, [](auto X, auto Y) { return X > Y; }, ">");
}
Value primGe(VM &Vm, Value *A, uint32_t N) {
  return numCompare(Vm, A, N, [](auto X, auto Y) { return X >= Y; }, ">=");
}
Value primNumEq(VM &Vm, Value *A, uint32_t N) {
  return numCompare(Vm, A, N, [](auto X, auto Y) { return X == Y; }, "=");
}
Value primAbs(VM &Vm, Value *A, uint32_t) {
  if (A[0].isFixnum())
    return Value::fixnum(std::abs(A[0].asFixnum()));
  if (auto *F = dynObj<Flonum>(A[0]))
    return Value::object(Vm.heap().allocFlonum(std::fabs(F->D)));
  return Vm.fail("abs: not a number: " + writeToString(A[0]));
}
Value primMin(VM &Vm, Value *A, uint32_t N) {
  Value Best = A[0];
  for (uint32_t I = 1; I != N; ++I) {
    requireNumber(Vm, A[I], "min");
    if (Vm.failed())
      return Value::unspecified();
    if (asDouble(A[I]) < asDouble(Best))
      Best = A[I];
  }
  return Best;
}
Value primMax(VM &Vm, Value *A, uint32_t N) {
  Value Best = A[0];
  for (uint32_t I = 1; I != N; ++I) {
    requireNumber(Vm, A[I], "max");
    if (Vm.failed())
      return Value::unspecified();
    if (asDouble(A[I]) > asDouble(Best))
      Best = A[I];
  }
  return Best;
}
Value primEven(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum())
    return Vm.fail("even?: expects a fixnum");
  return Value::boolean(A[0].asFixnum() % 2 == 0);
}
Value primOdd(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum())
    return Vm.fail("odd?: expects a fixnum");
  return Value::boolean(A[0].asFixnum() % 2 != 0);
}

// --- Type predicates --------------------------------------------------------------

Value primNumberP(VM &, Value *A, uint32_t) {
  return Value::boolean(isNumber(A[0]));
}
Value primIntegerP(VM &, Value *A, uint32_t) {
  if (A[0].isFixnum())
    return Value::trueV();
  if (auto *F = dynObj<Flonum>(A[0]))
    return Value::boolean(F->D == std::floor(F->D));
  return Value::falseV();
}
Value primBooleanP(VM &, Value *A, uint32_t) {
  return Value::boolean(A[0].isBoolean());
}
Value primSymbolP(VM &, Value *A, uint32_t) {
  return Value::boolean(isObj<Symbol>(A[0]));
}
Value primStringP(VM &, Value *A, uint32_t) {
  return Value::boolean(isObj<String>(A[0]));
}
Value primCharP(VM &, Value *A, uint32_t) {
  return Value::boolean(A[0].isChar());
}
Value primVectorP(VM &, Value *A, uint32_t) {
  return Value::boolean(isObj<Vector>(A[0]));
}
Value primProcedureP(VM &, Value *A, uint32_t) {
  return Value::boolean(isObj<Closure>(A[0]) || isObj<Native>(A[0]) ||
                        isObj<Continuation>(A[0]));
}
Value primListP(VM &, Value *A, uint32_t) {
  return Value::boolean(isProperList(A[0]));
}
Value primEqv(VM &, Value *A, uint32_t) {
  return Value::boolean(schemeEqv(A[0], A[1]));
}
Value primEqual(VM &, Value *A, uint32_t) {
  return Value::boolean(schemeEqual(A[0], A[1]));
}

// --- Pairs and lists ----------------------------------------------------------------

Value primSetCar(VM &Vm, Value *A, uint32_t) {
  if (auto *P = dynObj<Pair>(A[0])) {
    P->Car = A[1];
    return Value::unspecified();
  }
  return Vm.fail("set-car!: not a pair");
}
Value primSetCdr(VM &Vm, Value *A, uint32_t) {
  if (auto *P = dynObj<Pair>(A[0])) {
    P->Cdr = A[1];
    return Value::unspecified();
  }
  return Vm.fail("set-cdr!: not a pair");
}
Value primList(VM &Vm, Value *A, uint32_t N) {
  Value L = Value::nil();
  for (uint32_t I = N; I-- > 0;)
    L = cons(Vm.heap(), A[I], L);
  return L;
}
Value primLength(VM &Vm, Value *A, uint32_t) {
  int64_t N = listLength(A[0]);
  if (N < 0)
    return Vm.fail("length: not a proper list: " + writeToString(A[0]));
  return Value::fixnum(N);
}
Value primAppend(VM &Vm, Value *A, uint32_t N) {
  if (N == 0)
    return Value::nil();
  Value Result = A[N - 1];
  for (uint32_t I = N - 1; I-- > 0;) {
    std::vector<Value> Elems;
    if (!listToVector(A[I], Elems))
      return Vm.fail("append: not a proper list: " + writeToString(A[I]));
    for (auto It = Elems.rbegin(); It != Elems.rend(); ++It)
      Result = cons(Vm.heap(), *It, Result);
  }
  return Result;
}
Value primReverse(VM &Vm, Value *A, uint32_t) {
  Value L = A[0];
  Value R = Value::nil();
  while (isObj<Pair>(L)) {
    R = cons(Vm.heap(), car(L), R);
    L = cdr(L);
  }
  if (!L.isNil())
    return Vm.fail("reverse: not a proper list");
  return R;
}
Value primListTail(VM &Vm, Value *A, uint32_t) {
  if (!A[1].isFixnum())
    return Vm.fail("list-tail: bad index");
  Value L = A[0];
  for (int64_t I = A[1].asFixnum(); I-- > 0;) {
    if (!isObj<Pair>(L))
      return Vm.fail("list-tail: index out of range");
    L = cdr(L);
  }
  return L;
}
Value primListRef(VM &Vm, Value *A, uint32_t N) {
  Value Tail = primListTail(Vm, A, N);
  if (Vm.failed())
    return Tail;
  if (!isObj<Pair>(Tail))
    return Vm.fail("list-ref: index out of range");
  return car(Tail);
}

template <bool UseEqv, bool UseEqual>
Value memGeneric(VM &Vm, Value *A, const char *Who) {
  Value L = A[1];
  while (isObj<Pair>(L)) {
    Value X = car(L);
    bool Hit = UseEqual ? schemeEqual(X, A[0])
                        : (UseEqv ? schemeEqv(X, A[0]) : X.identical(A[0]));
    if (Hit)
      return L;
    L = cdr(L);
  }
  if (!L.isNil())
    return Vm.fail(std::string(Who) + ": not a proper list");
  return Value::falseV();
}
Value primMemq(VM &Vm, Value *A, uint32_t) {
  return memGeneric<false, false>(Vm, A, "memq");
}
Value primMemv(VM &Vm, Value *A, uint32_t) {
  return memGeneric<true, false>(Vm, A, "memv");
}
Value primMember(VM &Vm, Value *A, uint32_t) {
  return memGeneric<false, true>(Vm, A, "member");
}

template <bool UseEqv, bool UseEqual>
Value assGeneric(VM &Vm, Value *A, const char *Who) {
  Value L = A[1];
  while (isObj<Pair>(L)) {
    Value Entry = car(L);
    if (isObj<Pair>(Entry)) {
      Value K = car(Entry);
      bool Hit = UseEqual ? schemeEqual(K, A[0])
                          : (UseEqv ? schemeEqv(K, A[0]) : K.identical(A[0]));
      if (Hit)
        return Entry;
    }
    L = cdr(L);
  }
  if (!L.isNil())
    return Vm.fail(std::string(Who) + ": not a proper list");
  return Value::falseV();
}
Value primAssq(VM &Vm, Value *A, uint32_t) {
  return assGeneric<false, false>(Vm, A, "assq");
}
Value primAssv(VM &Vm, Value *A, uint32_t) {
  return assGeneric<true, false>(Vm, A, "assv");
}
Value primAssoc(VM &Vm, Value *A, uint32_t) {
  return assGeneric<false, true>(Vm, A, "assoc");
}

// --- Vectors --------------------------------------------------------------------------

Value primMakeVector(VM &Vm, Value *A, uint32_t N) {
  if (!A[0].isFixnum() || A[0].asFixnum() < 0)
    return Vm.fail("make-vector: bad length");
  Value Fill = N >= 2 ? A[1] : Value::unspecified();
  return Value::object(
      Vm.heap().allocVector(static_cast<uint32_t>(A[0].asFixnum()), Fill));
}
Value primVector(VM &Vm, Value *A, uint32_t N) {
  Vector *V = Vm.heap().allocVector(N);
  for (uint32_t I = 0; I != N; ++I)
    V->set(I, A[I]);
  return Value::object(V);
}
Value primVectorLength(VM &Vm, Value *A, uint32_t) {
  if (auto *V = dynObj<Vector>(A[0]))
    return Value::fixnum(V->Len);
  return Vm.fail("vector-length: not a vector");
}
Value primVectorRef(VM &Vm, Value *A, uint32_t) {
  auto *V = dynObj<Vector>(A[0]);
  if (!V || !A[1].isFixnum())
    return Vm.fail("vector-ref: bad arguments");
  int64_t I = A[1].asFixnum();
  if (I < 0 || I >= V->Len)
    return Vm.fail("vector-ref: index out of range");
  return V->Elems[I];
}
Value primVectorSet(VM &Vm, Value *A, uint32_t) {
  auto *V = dynObj<Vector>(A[0]);
  if (!V || !A[1].isFixnum())
    return Vm.fail("vector-set!: bad arguments");
  int64_t I = A[1].asFixnum();
  if (I < 0 || I >= V->Len)
    return Vm.fail("vector-set!: index out of range");
  V->Elems[I] = A[2];
  return Value::unspecified();
}
Value primVectorToList(VM &Vm, Value *A, uint32_t) {
  auto *V = dynObj<Vector>(A[0]);
  if (!V)
    return Vm.fail("vector->list: not a vector");
  Value L = Value::nil();
  for (uint32_t I = V->Len; I-- > 0;)
    L = cons(Vm.heap(), V->Elems[I], L);
  return L;
}
Value primListToVector(VM &Vm, Value *A, uint32_t) {
  std::vector<Value> Elems;
  if (!listToVector(A[0], Elems))
    return Vm.fail("list->vector: not a proper list");
  Vector *V = Vm.heap().allocVector(static_cast<uint32_t>(Elems.size()));
  for (uint32_t I = 0; I != Elems.size(); ++I)
    V->set(I, Elems[I]);
  return Value::object(V);
}
Value primVectorFill(VM &Vm, Value *A, uint32_t) {
  auto *V = dynObj<Vector>(A[0]);
  if (!V)
    return Vm.fail("vector-fill!: not a vector");
  for (uint32_t I = 0; I != V->Len; ++I)
    V->Elems[I] = A[1];
  return Value::unspecified();
}

// --- Strings, chars, symbols --------------------------------------------------------------

Value primStringLength(VM &Vm, Value *A, uint32_t) {
  if (auto *S = dynObj<String>(A[0]))
    return Value::fixnum(S->Len);
  return Vm.fail("string-length: not a string");
}
Value primStringAppend(VM &Vm, Value *A, uint32_t N) {
  std::string Out;
  for (uint32_t I = 0; I != N; ++I) {
    auto *S = dynObj<String>(A[I]);
    if (!S)
      return Vm.fail("string-append: not a string");
    Out += S->view();
  }
  return Value::object(Vm.heap().allocString(Out));
}
Value primSubstring(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<String>(A[0]);
  if (!S || !A[1].isFixnum() || !A[2].isFixnum())
    return Vm.fail("substring: bad arguments");
  int64_t B = A[1].asFixnum(), E = A[2].asFixnum();
  if (B < 0 || E < B || E > S->Len)
    return Vm.fail("substring: index out of range");
  return Value::object(Vm.heap().allocString(S->view().substr(B, E - B)));
}
Value primStringEq(VM &Vm, Value *A, uint32_t N) {
  for (uint32_t I = 0; I != N; ++I)
    if (!isObj<String>(A[I]))
      return Vm.fail("string=?: not a string");
  for (uint32_t I = 0; I + 1 < N; ++I)
    if (castObj<String>(A[I])->view() != castObj<String>(A[I + 1])->view())
      return Value::falseV();
  return Value::trueV();
}
Value primStringLt(VM &Vm, Value *A, uint32_t) {
  if (!isObj<String>(A[0]) || !isObj<String>(A[1]))
    return Vm.fail("string<?: not a string");
  return Value::boolean(castObj<String>(A[0])->view() <
                        castObj<String>(A[1])->view());
}
Value primStringRef(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<String>(A[0]);
  if (!S || !A[1].isFixnum())
    return Vm.fail("string-ref: bad arguments");
  int64_t I = A[1].asFixnum();
  if (I < 0 || I >= S->Len)
    return Vm.fail("string-ref: index out of range");
  return Value::charV(static_cast<unsigned char>(S->Data[I]));
}
Value primStringToSymbol(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<String>(A[0]);
  if (!S)
    return Vm.fail("string->symbol: not a string");
  return Value::object(Vm.heap().intern(S->view()));
}
Value primSymbolToString(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<Symbol>(A[0]);
  if (!S)
    return Vm.fail("symbol->string: not a symbol");
  return Value::object(Vm.heap().allocString(S->name()));
}
Value primNumberToString(VM &Vm, Value *A, uint32_t) {
  if (!isNumber(A[0]))
    return Vm.fail("number->string: not a number");
  return Value::object(Vm.heap().allocString(writeToString(A[0])));
}
Value primStringToNumber(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<String>(A[0]);
  if (!S)
    return Vm.fail("string->number: not a string");
  errno = 0;
  char *End = nullptr;
  long long N = std::strtoll(S->Data, &End, 10);
  if (errno == 0 && End == S->Data + S->Len && S->Len > 0)
    return Value::fixnum(N);
  errno = 0;
  double D = std::strtod(S->Data, &End);
  if (errno == 0 && End == S->Data + S->Len && S->Len > 0)
    return Value::object(Vm.heap().allocFlonum(D));
  return Value::falseV();
}
Value primCharToInteger(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isChar())
    return Vm.fail("char->integer: not a character");
  return Value::fixnum(A[0].asChar());
}
Value primIntegerToChar(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum() || A[0].asFixnum() < 0)
    return Vm.fail("integer->char: bad code point");
  return Value::charV(static_cast<uint32_t>(A[0].asFixnum()));
}
Value primGensym(VM &Vm, Value *, uint32_t) {
  static uint64_t Counter = 0;
  return Value::object(
      Vm.heap().intern(" gensym" + std::to_string(Counter++)));
}

// --- Output ----------------------------------------------------------------------------------

Value primDisplay(VM &Vm, Value *A, uint32_t) {
  Vm.writeOutput(displayToString(A[0]));
  return Value::unspecified();
}
Value primWrite(VM &Vm, Value *A, uint32_t) {
  Vm.writeOutput(writeToString(A[0]));
  return Value::unspecified();
}
Value primNewline(VM &Vm, Value *, uint32_t) {
  Vm.writeOutput("\n");
  return Value::unspecified();
}
Value primStringToList(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<String>(A[0]);
  if (!S)
    return Vm.fail("string->list: not a string");
  Value L = Value::nil();
  for (uint32_t I = S->Len; I-- > 0;)
    L = cons(Vm.heap(), Value::charV(static_cast<unsigned char>(S->Data[I])),
             L);
  return L;
}
Value primListToString(VM &Vm, Value *A, uint32_t) {
  std::vector<Value> Chars;
  if (!listToVector(A[0], Chars))
    return Vm.fail("list->string: not a proper list");
  std::string Out;
  for (Value C : Chars) {
    if (!C.isChar())
      return Vm.fail("list->string: not a character: " + writeToString(C));
    Out.push_back(static_cast<char>(C.asChar()));
  }
  return Value::object(Vm.heap().allocString(Out));
}
/// (sort lst less?) with \p less? restricted to the builtin orderings the
/// VM can call directly (<, >, string<?); general procedures would need a
/// VM re-entry, which natives deliberately cannot do.
Value primSortNumeric(VM &Vm, Value *A, uint32_t) {
  std::vector<Value> Elems;
  if (!listToVector(A[0], Elems))
    return Vm.fail("sort-numbers: not a proper list");
  for (Value V : Elems)
    if (!V.isFixnum() && !isObj<Flonum>(V))
      return Vm.fail("sort-numbers: not a number: " + writeToString(V));
  std::stable_sort(Elems.begin(), Elems.end(), [](Value X, Value Y) {
    double A = X.isFixnum() ? static_cast<double>(X.asFixnum())
                            : castObj<Flonum>(X)->D;
    double B = Y.isFixnum() ? static_cast<double>(Y.asFixnum())
                            : castObj<Flonum>(Y)->D;
    return A < B;
  });
  return listFromVector(Vm.heap(), Elems);
}

// --- Control / meta -----------------------------------------------------------------------------

Value primError(VM &Vm, Value *A, uint32_t N) {
  std::string Msg = "error: ";
  Msg += displayToString(A[0]);
  for (uint32_t I = 1; I != N; ++I)
    Msg += " " + writeToString(A[I]);
  return Vm.fail(Msg);
}
Value primGc(VM &Vm, Value *, uint32_t) {
  Vm.heap().collect();
  return Value::unspecified();
}
Value primContinuationP(VM &, Value *A, uint32_t) {
  return Value::boolean(isObj<Continuation>(A[0]));
}
Value primContinuationOneShotP(VM &Vm, Value *A, uint32_t) {
  auto *K = dynObj<Continuation>(A[0]);
  if (!K)
    return Vm.fail("%continuation-one-shot?: not a continuation");
  return Value::boolean(K->isOneShot());
}
Value primContinuationShotP(VM &Vm, Value *A, uint32_t) {
  auto *K = dynObj<Continuation>(A[0]);
  if (!K)
    return Vm.fail("%continuation-shot?: not a continuation");
  return Value::boolean(K->isShot());
}
Value primSetTimer(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum() || A[0].asFixnum() <= 0)
    return Vm.fail("%set-timer!: ticks must be a positive fixnum");
  Vm.setTimer(A[0].asFixnum(), A[1]);
  return Value::unspecified();
}
Value primStopTimer(VM &Vm, Value *, uint32_t) {
  return Value::fixnum(Vm.stopTimer());
}
Value primCurrentTimeNs(VM &, Value *, uint32_t) {
  auto Now = std::chrono::steady_clock::now().time_since_epoch();
  return Value::fixnum(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count());
}
Value primVmStat(VM &Vm, Value *A, uint32_t) {
  auto *Sym = dynObj<Symbol>(A[0]);
  if (!Sym)
    return Vm.fail("vm-stat: expects a symbol");
  const Stats &St = Vm.stats();
  std::string_view N = Sym->name();
  uint64_t V;
  if (N == "bytes-allocated")
    V = St.BytesAllocated;
  else if (N == "closures-allocated")
    V = St.ClosuresAllocated;
  else if (N == "gc-count")
    V = St.GcCount;
  else if (N == "segments-allocated")
    V = St.SegmentsAllocated;
  else if (N == "segment-cache-hits")
    V = St.SegmentCacheHits;
  else if (N == "multi-shot-captures")
    V = St.MultiShotCaptures;
  else if (N == "one-shot-captures")
    V = St.OneShotCaptures;
  else if (N == "multi-shot-invokes")
    V = St.MultiShotInvokes;
  else if (N == "one-shot-invokes")
    V = St.OneShotInvokes;
  else if (N == "promotions")
    V = St.Promotions;
  else if (N == "words-copied")
    V = St.WordsCopied;
  else if (N == "underflows")
    V = St.Underflows;
  else if (N == "overflows")
    V = St.Overflows;
  else if (N == "splits")
    V = St.Splits;
  else if (N == "instructions")
    V = St.Instructions;
  else if (N == "procedure-calls")
    V = St.ProcedureCalls;
  else if (N == "cache-hits")
    V = St.CacheHits;
  else if (N == "cache-misses")
    V = St.CacheMisses;
  else if (N == "empty-captures")
    V = St.EmptyCaptures;
  else if (N == "context-switches")
    V = St.ContextSwitches;
  else if (N == "preemptive-switches")
    V = St.PreemptiveSwitches;
  else if (N == "voluntary-yields")
    V = St.VoluntaryYields;
  else if (N == "channel-blocks")
    V = St.ChannelBlocks;
  else if (N == "run-queue-peak")
    V = St.RunQueuePeak;
  else if (N == "threads-spawned")
    V = St.ThreadsSpawned;
  else if (N == "channel-messages")
    V = St.ChannelMessages;
  else if (N == "channels-closed")
    V = St.ChannelsClosed;
  else if (N == "io-parks")
    V = St.IoParks;
  else if (N == "io-wakes")
    V = St.IoWakes;
  else if (N == "io-wait-peak")
    V = St.IoWaitPeak;
  else if (N == "bytes-read")
    V = St.BytesRead;
  else if (N == "bytes-written")
    V = St.BytesWritten;
  else if (N == "accepted-connections")
    V = St.AcceptedConnections;
  else if (N == "accept-batches")
    V = St.AcceptBatches;
  else if (N == "connections-closed")
    V = St.ConnectionsClosed;
  else if (N == "requests-served")
    V = St.RequestsServed;
  else if (N == "timeouts")
    V = St.Timeouts;
  else if (N == "requests-shed")
    V = St.RequestsShed;
  else if (N == "conns-reaped")
    V = St.ConnsReaped;
  else if (N == "worker-restarts")
    V = St.WorkerRestarts;
  else if (N == "io-wait-deadline-peak")
    V = St.IoWaitDeadlinePeak;
  else if (N == "prompt-resets")
    V = St.PromptResets;
  else if (N == "slice-captures")
    V = St.SliceCaptures;
  else if (N == "slice-splices")
    V = St.SliceSplices;
  else if (N == "slice-cloned-words")
    V = St.SliceClonedWords;
  else if (N == "handlers-installed")
    V = St.HandlersInstalled;
  else if (N == "performs")
    V = St.Performs;
  else if (N == "nursery-cancels")
    V = St.NurseryCancels;
  else if (N == "regex-compiles")
    V = St.RegexCompiles;
  else if (N == "regex-execs")
    V = St.RegexExecs;
  else if (N == "regex-stream-feeds")
    V = St.RegexStreamFeeds;
  else if (N == "regex-bytes-scanned")
    V = St.RegexBytesScanned;
  else if (N == "regex-steps")
    V = St.RegexSteps;
  else
    return Vm.fail("vm-stat: unknown counter: " + std::string(N));
  return Value::fixnum(static_cast<int64_t>(V));
}
Value primVmResidentStackWords(VM &Vm, Value *, uint32_t) {
  return Value::fixnum(
      static_cast<int64_t>(Vm.control().residentSegmentWords()));
}
Value primVmLiveSegmentWords(VM &Vm, Value *, uint32_t) {
  Vm.heap().collect();
  return Value::fixnum(static_cast<int64_t>(Vm.heap().segmentWordsInHeap()));
}
Value primVmChainLength(VM &Vm, Value *, uint32_t) {
  return Value::fixnum(Vm.control().chainLength());
}
Value primVmCacheSize(VM &Vm, Value *, uint32_t) {
  return Value::fixnum(static_cast<int64_t>(Vm.control().cacheSize()));
}

// --- The event tracer (support/Trace.h) -------------------------------------

Value primTraceStart(VM &Vm, Value *, uint32_t) {
  Vm.trace().start();
  return Value::unspecified();
}
Value primTraceStop(VM &Vm, Value *, uint32_t) {
  Vm.trace().stop();
  return Value::unspecified();
}
Value primTraceDump(VM &Vm, Value *A, uint32_t N) {
  // (trace-dump) or (trace-dump 'text) -> one line per event;
  // (trace-dump 'json) -> Chrome about:tracing JSON.
  bool Json = false;
  if (N == 1) {
    auto *Sym = dynObj<Symbol>(A[0]);
    if (!Sym || (Sym->name() != "text" && Sym->name() != "json"))
      return Vm.fail("trace-dump: expected 'text or 'json");
    Json = Sym->name() == "json";
  }
  // Note: while recording is on, building the string itself emits alloc
  // events (visible in a later dump, not this one); stop first for a
  // stable buffer.
  std::string Dump = Json ? Vm.trace().toChromeJson() : Vm.trace().toString();
  return Value::object(Vm.heap().allocString(Dump));
}
Value primTraceEventCount(VM &Vm, Value *, uint32_t) {
  return Value::fixnum(static_cast<int64_t>(Vm.trace().emitted()));
}
Value primTraceWind(VM &Vm, Value *A, uint32_t) {
  // Called by the prelude's dynamic-wind machinery: 0 = extent entered,
  // nonzero = extent exited.  A plain flag-check native so the wind paths
  // stay pure Scheme while still appearing in the event stream.
  Trace &T = Vm.trace();
  if (T.enabled())
    T.emit(A[0].isFixnum() && A[0].asFixnum() != 0 ? TraceEvent::WindExit
                                                   : TraceEvent::WindEnter);
  return Value::unspecified();
}

// --- Green threads and channels (src/sched) ---------------------------------
//
// Thread and channel handles are fixnum ids into the scheduler's tables:
// cheap, printable and stable across a scheduler run.  The switching
// operations (%yield, %join, ...) are specials dispatched in the VM loop;
// the ones below never transfer control and are ordinary natives.

Value primSpawn(VM &Vm, Value *A, uint32_t) {
  if (!isObj<Closure>(A[0]) && !isObj<Native>(A[0]))
    return Vm.fail("spawn: not a procedure: " + writeToString(A[0]));
  return Vm.spawnThread(A[0]);
}
Value primSelf(VM &Vm, Value *, uint32_t) {
  Scheduler::Thread *T = Vm.scheduler().current();
  return T ? Value::fixnum(T->Id) : Value::falseV();
}
Value primThreadCancel(VM &Vm, Value *A, uint32_t) {
  // Never transfers control (the target is by definition not the running
  // thread), so it stays an ordinary native; the VM does the poisoning.
  return Vm.threadCancel(A[0]);
}
Value primThreadState(VM &Vm, Value *A, uint32_t) {
  Scheduler::Thread *T =
      A[0].isFixnum() ? Vm.scheduler().lookup(A[0].asFixnum()) : nullptr;
  if (!T)
    return Vm.fail("thread-state: not a thread id: " + writeToString(A[0]));
  return Value::object(Vm.heap().intern(threadStateName(T->State)));
}
Value primChanMake(VM &Vm, Value *A, uint32_t) {
  if (!A[0].isFixnum() || A[0].asFixnum() < 0)
    return Vm.fail("make-channel: capacity must be a non-negative fixnum");
  return Value::fixnum(
      Vm.scheduler().makeChannel(static_cast<uint32_t>(A[0].asFixnum())));
}
Value primChanTrySend(VM &Vm, Value *A, uint32_t) {
  Channel *Ch =
      A[0].isFixnum() ? Vm.scheduler().channel(A[0].asFixnum()) : nullptr;
  if (!Ch)
    return Vm.fail("channel-try-send!: not a channel: " + writeToString(A[0]));
  Channel::SendResult R = Ch->trySend(A[1]);
  if (R.K == Channel::SendResult::MustBlock)
    return Value::falseV();
  Vm.stats().ChannelMessages += 1;
  if (R.K == Channel::SendResult::Delivered)
    Vm.scheduler().wake(*Vm.scheduler().lookup(R.WokenReceiver), A[1]);
  return Value::trueV();
}
Value primChanTryRecv(VM &Vm, Value *A, uint32_t) {
  Channel *Ch =
      A[0].isFixnum() ? Vm.scheduler().channel(A[0].asFixnum()) : nullptr;
  if (!Ch)
    return Vm.fail("channel-try-recv: not a channel: " + writeToString(A[0]));
  Channel::RecvResult R = Ch->tryRecv();
  if (R.K == Channel::RecvResult::MustBlock)
    return Value::falseV();
  if (R.WakeSender) {
    Vm.stats().ChannelMessages += 1;
    Vm.scheduler().wake(*Vm.scheduler().lookup(R.WokenSender),
                        Value::unspecified());
  }
  // A #f payload is indistinguishable from "empty"; callers that send #f
  // should wrap it (documented with the prelude shim).
  return R.V;
}
Value primChanLength(VM &Vm, Value *A, uint32_t) {
  Channel *Ch =
      A[0].isFixnum() ? Vm.scheduler().channel(A[0].asFixnum()) : nullptr;
  if (!Ch)
    return Vm.fail("channel-length: not a channel: " + writeToString(A[0]));
  return Value::fixnum(static_cast<int64_t>(Ch->buffered()));
}
Value primChanCapacity(VM &Vm, Value *A, uint32_t) {
  Channel *Ch =
      A[0].isFixnum() ? Vm.scheduler().channel(A[0].asFixnum()) : nullptr;
  if (!Ch)
    return Vm.fail("channel-capacity: not a channel: " + writeToString(A[0]));
  return Value::fixnum(Ch->capacity());
}

Value primChanClose(VM &Vm, Value *A, uint32_t) {
  Channel *Ch =
      A[0].isFixnum() ? Vm.scheduler().channel(A[0].asFixnum()) : nullptr;
  if (!Ch)
    return Vm.fail("channel-close!: not a channel: " + writeToString(A[0]));
  if (Ch->closed())
    return Value::unspecified(); // Idempotent.
  Channel::CloseResult R = Ch->close();
  Vm.stats().ChannelsClosed += 1;
  Trace &T = Vm.trace();
  if (T.enabled())
    T.emit(TraceEvent::ChanClose, Ch->id(), R.Receivers.size(),
           R.Senders.size());
  // Wake everyone parked on the channel, in park order: receivers resume
  // with the EOF sentinel (the values their senders carried are handed
  // out first by the normal refill path, so nothing is reordered), and
  // senders are poisoned with a trappable error — their value has nowhere
  // to go.
  Scheduler &Sc = Vm.scheduler();
  for (uint32_t Tid : R.Receivers)
    Sc.wake(*Sc.lookup(Tid), Vm.eofObject());
  for (const Channel::PendingSend &P : R.Senders) {
    Scheduler::Thread *St = Sc.lookup(P.Tid);
    St->PendingError = "channel-send!: channel " + std::to_string(Ch->id()) +
                       " was closed while a send was parked";
    Sc.wake(*St, Value::unspecified());
  }
  return Value::unspecified();
}
Value primChanClosedP(VM &Vm, Value *A, uint32_t) {
  Channel *Ch =
      A[0].isFixnum() ? Vm.scheduler().channel(A[0].asFixnum()) : nullptr;
  if (!Ch)
    return Vm.fail("channel-closed?: not a channel: " + writeToString(A[0]));
  return Value::boolean(Ch->closed());
}

// --- Ports and the I/O reactor (src/io) --------------------------------------
//
// Port handles are fixnum ids into the reactor's table, mirroring thread
// and channel handles.  The blocking operations (%io-read-line, %io-write,
// %io-accept) are specials dispatched in the VM loop; everything below
// never parks and runs as an ordinary native.

Value primOpenPipe(VM &Vm, Value *, uint32_t) {
  int R = -1, W = -1;
  std::string Err;
  if (!openPipePair(R, W, Err))
    return Vm.fail("open-pipe: " + Err);
  Reactor &Rx = Vm.reactor();
  uint32_t Rid = Rx.addPort(R, Port::Kind::Stream);
  uint32_t Wid = Rx.addPort(W, Port::Kind::Stream);
  return cons(Vm.heap(), Value::fixnum(Rid), Value::fixnum(Wid));
}
Value primOpenSocketpair(VM &Vm, Value *, uint32_t) {
  int A = -1, B = -1;
  std::string Err;
  if (!openSocketPairFds(A, B, Err))
    return Vm.fail("open-socketpair: " + Err);
  Reactor &Rx = Vm.reactor();
  uint32_t Aid = Rx.addPort(A, Port::Kind::Stream);
  uint32_t Bid = Rx.addPort(B, Port::Kind::Stream);
  return cons(Vm.heap(), Value::fixnum(Aid), Value::fixnum(Bid));
}
Value primIoListen(VM &Vm, Value *A, uint32_t N) {
  uint16_t Port16 = 0;
  if (N == 1) {
    if (!A[0].isFixnum() || A[0].asFixnum() < 0 || A[0].asFixnum() > 65535)
      return Vm.fail("io-listen: port must be a fixnum in 0..65535");
    Port16 = static_cast<uint16_t>(A[0].asFixnum());
  }
  std::string Err;
  int Fd = openListener(Port16, /*Backlog=*/128, Err);
  if (Fd < 0)
    return Vm.fail("io-listen: " + Err);
  uint32_t Id = Vm.reactor().addPort(Fd, Port::Kind::Listener);
  Vm.reactor().port(Id)->setTcpPort(Port16);
  return Value::fixnum(Id);
}
Port *portArg(VM &Vm, const char *Who, Value V) {
  Port *P = V.isFixnum() ? Vm.reactor().port(V.asFixnum()) : nullptr;
  if (!P)
    Vm.fail(std::string(Who) + ": not a port: " + writeToString(V));
  return P;
}
Value primIoTcpPort(VM &Vm, Value *A, uint32_t) {
  Port *P = portArg(Vm, "io-tcp-port", A[0]);
  if (!P)
    return Value::unspecified();
  return Value::fixnum(P->tcpPort());
}
Value primIoClose(VM &Vm, Value *A, uint32_t) {
  Port *P = portArg(Vm, "io-close", A[0]);
  if (!P)
    return Value::unspecified();
  Vm.ioClosePort(P);
  return Value::unspecified();
}
Value primIoClosedP(VM &Vm, Value *A, uint32_t) {
  Port *P = portArg(Vm, "io-closed?", A[0]);
  if (!P)
    return Value::unspecified();
  return Value::boolean(P->closed());
}
Value primIoTryAccept(VM &Vm, Value *A, uint32_t) {
  // (io-try-accept listener): the non-parking half of io-accept — one
  // pending connection's fresh port id, #f when the backlog is empty,
  // the EOF object when the listener is closed.  The ReusePort worker's
  // shutdown path drains its backlog with this before closing the
  // listener, so connections the kernel already completed get served
  // instead of reset.
  Port *P = portArg(Vm, "io-try-accept", A[0]);
  if (!P)
    return Value::unspecified();
  if (P->kind() != Port::Kind::Listener)
    return Vm.fail("io-try-accept: not a listener: " + writeToString(A[0]),
                   ErrorKind::Io);
  if (P->closed())
    return Vm.eofObject();
  int NewFd = P->acceptConn();
  if (NewFd >= 0) {
    uint32_t NewId = Vm.reactor().addPort(NewFd, Port::Kind::Stream);
    Vm.stats().AcceptedConnections += 1;
    OSC_TRACE(&Vm.trace(), TraceEvent::Accept, P->id(), NewId);
    return Value::fixnum(NewId);
  }
  if (NewFd == -2)
    return Vm.fail("io-try-accept: port " + std::to_string(P->id()) + ": " +
                       P->lastError(),
                   ErrorKind::Io);
  return Value::boolean(false);
}
Value primStringToDatum(VM &Vm, Value *A, uint32_t) {
  auto *S = dynObj<String>(A[0]);
  if (!S)
    return Vm.fail("string->datum: not a string: " + writeToString(A[0]));
  ReadResult R = readDatum(Vm.heap(), S->view());
  // Both unreadable text and an empty string read as the EOF object, so
  // protocol code can funnel every malformed request into one branch.
  if (!R.Ok || R.AtEof)
    return Vm.eofObject();
  return R.Datum;
}
Value primServeRequestDone(VM &Vm, Value *, uint32_t) {
  Vm.stats().RequestsServed += 1;
  return Value::unspecified();
}
Value primServeShed(VM &Vm, Value *A, uint32_t) {
  // Admission control: the caller is about to refuse this connection with
  // a fast BUSY reply.  Only the bookkeeping lives here; writing the reply
  // and closing stay in Scheme so protocols can shape their own refusal.
  Port *P = portArg(Vm, "serve-shed!", A[0]);
  if (!P)
    return Value::unspecified();
  Vm.stats().RequestsShed += 1;
  OSC_TRACE(&Vm.trace(), TraceEvent::Shed, P->id());
  return Value::unspecified();
}
Value primIoSetDeadline(VM &Vm, Value *A, uint32_t) {
  // (io-set-deadline! port ms): every subsequent park on the port must
  // wake within ms (measured in virtual poll ticks) or the connection is
  // reaped.  0 clears the deadline.
  Port *P = portArg(Vm, "io-set-deadline!", A[0]);
  if (!P)
    return Value::unspecified();
  if (!A[1].isFixnum() || A[1].asFixnum() < 0)
    return Vm.fail("io-set-deadline!: milliseconds must be a non-negative "
                   "fixnum, got " +
                   writeToString(A[1]));
  int64_t Ms = A[1].asFixnum();
  P->setDeadlineTicks(Ms == 0 ? 0 : Vm.msToTicks(Ms));
  return Value::unspecified();
}
Value primDeadlinePush(VM &Vm, Value *A, uint32_t) {
  return Vm.deadlinePush(A[0], A[1]);
}
Value primDeadlinePop(VM &Vm, Value *A, uint32_t) {
  return Vm.deadlinePop(A[0]);
}
Value primSchedStats(VM &Vm, Value *, uint32_t) {
  const Stats &St = Vm.stats();
  Heap &H = Vm.heap();
  Value L = Value::nil();
  auto Add = [&](const char *Name, uint64_t V) {
    Value P = cons(H, Value::object(H.intern(Name)),
                   Value::fixnum(static_cast<int64_t>(V)));
    L = cons(H, P, L);
  };
  // Pushed in reverse so the alist reads front-to-back in this order.
  Add("io-wait-deadline-peak", St.IoWaitDeadlinePeak);
  Add("worker-restarts", St.WorkerRestarts);
  Add("conns-reaped", St.ConnsReaped);
  Add("requests-shed", St.RequestsShed);
  Add("timeouts", St.Timeouts);
  Add("words-copied", St.WordsCopied);
  Add("one-shot-invokes", St.OneShotInvokes);
  Add("one-shot-captures", St.OneShotCaptures);
  Add("bytes-written", St.BytesWritten);
  Add("bytes-read", St.BytesRead);
  Add("requests-served", St.RequestsServed);
  Add("connections-closed", St.ConnectionsClosed);
  Add("accept-batches", St.AcceptBatches);
  Add("accepted-connections", St.AcceptedConnections);
  Add("io-wait-peak", St.IoWaitPeak);
  Add("io-wakes", St.IoWakes);
  Add("io-parks", St.IoParks);
  Add("run-queue-peak", St.RunQueuePeak);
  Add("channels-closed", St.ChannelsClosed);
  Add("channel-messages", St.ChannelMessages);
  Add("channel-blocks", St.ChannelBlocks);
  Add("voluntary-yields", St.VoluntaryYields);
  Add("preemptive-switches", St.PreemptiveSwitches);
  Add("context-switches", St.ContextSwitches);
  Add("threads-spawned", St.ThreadsSpawned);
  return L;
}

Value noFn(VM &Vm, Value *, uint32_t) {
  return Vm.fail("special native invoked outside the dispatch loop");
}

} // namespace

// Specials are dispatched in the VM loop, never via Fn (noFn is a guard):
// the control operators, plus every scheduler/reactor operation that may
// park the calling computation and reinstate another green thread.
static const NativeDef SpecialDefs[] = {
    // Control.
    {"apply", noFn, 2, -1, NativeSpecial::Apply},
    {"%call/cc", noFn, 1, 1, NativeSpecial::CallCC},
    {"%call/1cc", noFn, 1, 1, NativeSpecial::Call1CC},
    {"%call-with-values", noFn, 2, 2, NativeSpecial::CallWithValues},
    {"values", noFn, 0, -1, NativeSpecial::Values},
    // Scheduler.
    {"%sched-run", noFn, 1, 1, NativeSpecial::SchedRun},
    {"%yield", noFn, 0, 0, NativeSpecial::SchedYield},
    {"%thread-exit", noFn, 1, 1, NativeSpecial::SchedExit},
    {"%join", noFn, 1, 1, NativeSpecial::SchedJoin},
    {"%sleep", noFn, 1, 1, NativeSpecial::SchedSleep},
    {"%chan-send", noFn, 2, 2, NativeSpecial::ChanSend},
    {"%chan-recv", noFn, 1, 1, NativeSpecial::ChanRecv},
    // I/O: may park the calling thread on fd readiness (or, for
    // take-conn, on the pool's handoff wakeup).
    {"%io-read-line", noFn, 1, 1, NativeSpecial::IoReadLine},
    {"%io-write", noFn, 2, 2, NativeSpecial::IoWrite},
    {"%io-accept", noFn, 1, 1, NativeSpecial::IoAccept},
    {"%io-take-conn", noFn, 0, 0, NativeSpecial::IoTakeConn},
    // Delimited control (src/control): tagged prompts and one-shot slices.
    {"%reset", noFn, 2, 2, NativeSpecial::Reset},
    {"%shift", noFn, 2, 2, NativeSpecial::Shift},
    {"%delim-invoke", noFn, 2, 2, NativeSpecial::DelimInvoke},
    // Effect handlers: the veneer over the prompt machinery.
    // (%with-handler tag handler thunk shallow) / (%perform tag receiver).
    {"%with-handler", noFn, 4, 4, NativeSpecial::WithHandler},
    {"%perform", noFn, 2, 2, NativeSpecial::Perform},
};

static const NativeDef PrimDefs[] = {
    // Numbers.
    {"+", primAdd, 0, -1},
    {"-", primSub, 1, -1},
    {"*", primMul, 0, -1},
    {"/", primDiv, 1, -1},
    {"quotient", primQuotient, 2, 2},
    {"remainder", primRemainder, 2, 2},
    {"modulo", primModulo, 2, 2},
    {"<", primLt, 2, -1},
    {"<=", primLe, 2, -1},
    {">", primGt, 2, -1},
    {">=", primGe, 2, -1},
    {"=", primNumEq, 2, -1},
    {"abs", primAbs, 1, 1},
    {"min", primMin, 1, -1},
    {"max", primMax, 1, -1},
    {"even?", primEven, 1, 1},
    {"odd?", primOdd, 1, 1},

    // Predicates.
    {"number?", primNumberP, 1, 1},
    {"integer?", primIntegerP, 1, 1},
    {"boolean?", primBooleanP, 1, 1},
    {"symbol?", primSymbolP, 1, 1},
    {"string?", primStringP, 1, 1},
    {"char?", primCharP, 1, 1},
    {"vector?", primVectorP, 1, 1},
    {"procedure?", primProcedureP, 1, 1},
    {"list?", primListP, 1, 1},
    {"eqv?", primEqv, 2, 2},
    {"equal?", primEqual, 2, 2},

    // Pairs and lists (car/cdr/cons/eq?/null?/pair? are also natives so
    // they exist as first-class procedures; calls are usually open-coded).
    {"car",
     [](VM &Vm, Value *A, uint32_t) {
       if (auto *P = dynObj<Pair>(A[0]))
         return P->Car;
       return Vm.fail("car: not a pair: " + writeToString(A[0]));
     },
     1, 1},
    {"cdr",
     [](VM &Vm, Value *A, uint32_t) {
       if (auto *P = dynObj<Pair>(A[0]))
         return P->Cdr;
       return Vm.fail("cdr: not a pair: " + writeToString(A[0]));
     },
     1, 1},
    {"cons",
     [](VM &Vm, Value *A, uint32_t) { return cons(Vm.heap(), A[0], A[1]); },
     2, 2},
    {"eq?",
     [](VM &, Value *A, uint32_t) {
       return Value::boolean(A[0].identical(A[1]));
     },
     2, 2},
    {"null?",
     [](VM &, Value *A, uint32_t) { return Value::boolean(A[0].isNil()); },
     1, 1},
    {"pair?",
     [](VM &, Value *A, uint32_t) { return Value::boolean(isObj<Pair>(A[0])); },
     1, 1},
    {"not",
     [](VM &, Value *A, uint32_t) { return Value::boolean(A[0].isFalse()); },
     1, 1},
    {"zero?",
     [](VM &Vm, Value *A, uint32_t) {
       if (A[0].isFixnum())
         return Value::boolean(A[0].asFixnum() == 0);
       if (auto *F = dynObj<Flonum>(A[0]))
         return Value::boolean(F->D == 0.0);
       return Vm.fail("zero?: not a number");
     },
     1, 1},
    {"set-car!", primSetCar, 2, 2},
    {"set-cdr!", primSetCdr, 2, 2},
    {"list", primList, 0, -1},
    {"length", primLength, 1, 1},
    {"append", primAppend, 0, -1},
    {"reverse", primReverse, 1, 1},
    {"list-tail", primListTail, 2, 2},
    {"list-ref", primListRef, 2, 2},
    {"memq", primMemq, 2, 2},
    {"memv", primMemv, 2, 2},
    {"member", primMember, 2, 2},
    {"assq", primAssq, 2, 2},
    {"assv", primAssv, 2, 2},
    {"assoc", primAssoc, 2, 2},

    // Vectors.
    {"make-vector", primMakeVector, 1, 2},
    {"vector", primVector, 0, -1},
    {"vector-length", primVectorLength, 1, 1},
    {"vector-ref", primVectorRef, 2, 2},
    {"vector-set!", primVectorSet, 3, 3},
    {"vector->list", primVectorToList, 1, 1},
    {"list->vector", primListToVector, 1, 1},
    {"vector-fill!", primVectorFill, 2, 2},

    // Strings / chars / symbols.
    {"string-length", primStringLength, 1, 1},
    {"string-append", primStringAppend, 0, -1},
    {"substring", primSubstring, 3, 3},
    {"string=?", primStringEq, 2, -1},
    {"string<?", primStringLt, 2, 2},
    {"string-ref", primStringRef, 2, 2},
    {"string->symbol", primStringToSymbol, 1, 1},
    {"symbol->string", primSymbolToString, 1, 1},
    {"number->string", primNumberToString, 1, 1},
    {"string->number", primStringToNumber, 1, 1},
    {"char->integer", primCharToInteger, 1, 1},
    {"integer->char", primIntegerToChar, 1, 1},
    {"gensym", primGensym, 0, 0},
    {"string->list", primStringToList, 1, 1},
    {"list->string", primListToString, 1, 1},
    {"sort-numbers", primSortNumeric, 1, 1},

    // Output.
    {"display", primDisplay, 1, 1},
    {"write", primWrite, 1, 1},
    {"newline", primNewline, 0, 0},

    // Control / meta.
    {"error", primError, 1, -1},
    {"gc", primGc, 0, 0},
    {"continuation?", primContinuationP, 1, 1},
    {"%continuation-one-shot?", primContinuationOneShotP, 1, 1},
    {"%continuation-shot?", primContinuationShotP, 1, 1},
    {"current-time-ns", primCurrentTimeNs, 0, 0},
    {"%set-timer!", primSetTimer, 2, 2},
    {"%stop-timer!", primStopTimer, 0, 0},
    {"vm-stat", primVmStat, 1, 1},
    {"vm-resident-stack-words", primVmResidentStackWords, 0, 0},
    {"vm-live-segment-words", primVmLiveSegmentWords, 0, 0},
    {"vm-chain-length", primVmChainLength, 0, 0},
    {"vm-cache-size", primVmCacheSize, 0, 0},
    {"trace-start!", primTraceStart, 0, 0},
    {"trace-stop!", primTraceStop, 0, 0},
    {"trace-dump", primTraceDump, 0, 1},
    {"trace-event-count", primTraceEventCount, 0, 0},
    {"%trace-wind", primTraceWind, 1, 1},

    // Green threads and channels (non-switching halves).
    {"%spawn", primSpawn, 1, 1},
    {"%thread-cancel!", primThreadCancel, 1, 1},
    {"current-thread", primSelf, 0, 0},
    {"thread-state", primThreadState, 1, 1},
    {"make-channel", primChanMake, 1, 1},
    {"channel-try-send!", primChanTrySend, 2, 2},
    {"channel-try-recv", primChanTryRecv, 1, 1},
    {"channel-length", primChanLength, 1, 1},
    {"channel-capacity", primChanCapacity, 1, 1},
    {"channel-close!", primChanClose, 1, 1},
    {"channel-closed?", primChanClosedP, 1, 1},
    {"sched-stats", primSchedStats, 0, 0},

    // Ports and the I/O reactor (non-parking halves).
    {"open-pipe", primOpenPipe, 0, 0},
    {"open-socketpair", primOpenSocketpair, 0, 0},
    {"io-listen", primIoListen, 0, 1},
    {"io-tcp-port", primIoTcpPort, 1, 1},
    {"io-close", primIoClose, 1, 1},
    {"io-closed?", primIoClosedP, 1, 1},
    {"io-try-accept", primIoTryAccept, 1, 1},
    {"string->datum", primStringToDatum, 1, 1},
    {"serve-request-done!", primServeRequestDone, 0, 0},
    {"serve-shed!", primServeShed, 1, 1},
    {"io-set-deadline!", primIoSetDeadline, 2, 2},

    // The deadline wheel (with-deadline's push/pop halves).
    {"%deadline-push", primDeadlinePush, 2, 2},
    {"%deadline-pop", primDeadlinePop, 1, 1},
};

void osc::installPrimitives(VM &Vm) {
  Vm.defineNatives(SpecialDefs);
  Vm.defineNatives(PrimDefs);
  installRegexPrimitives(Vm);

  // The EOF sentinel (also what channel-recv yields on a closed channel).
  Vm.defineGlobal("*eof*", Vm.eofObject());
  // The timeout sentinel with-deadline returns when the deadline fires.
  Vm.defineGlobal("*timeout*", Vm.timeoutObject());
}
