#include "vm/VM.h"

#include "compiler/Bytecode.h"
#include "core/FrameWalk.h"
#include "object/ListUtil.h"
#include "sexp/Printer.h"
#include "support/Diag.h"

#include <algorithm>
#include <cstring>

using namespace osc;

VM::VM(Heap &H, Stats &S, const Config &Cfg)
    : H(H), S(S), Cfg(Cfg), CS(H, S, this->Cfg) {
  H.addRootProvider(this);

  // The call-with-values resume stub: returning into (stub, pc=1) lands on
  // CwvApply with the consumer in the stub frame's single slot.  Instrs[0]
  // is the frame-size word for that return point: header + consumer = 3.
  uint32_t StubInstrs[2] = {3, static_cast<uint32_t>(Op::CwvApply)};
  Vector *NoConsts = H.allocVector(0);
  Code *Stub = H.allocCode(Value::object(H.intern("call-with-values-stub")),
                           Value::object(NoConsts), 0, false, /*MaxDepth=*/8,
                           StubInstrs, 2);
  CwvStub = Value::object(Stub);
}

VM::~VM() { H.removeRootProvider(this); }

void VM::writeOutput(std::string_view Sv) {
  if (Capturing) {
    OutBuffer.append(Sv);
    return;
  }
  std::fwrite(Sv.data(), 1, Sv.size(), stdout);
}

Value VM::fail(const std::string &Msg) {
  if (!Failed) {
    Failed = true;
    ErrMsg = Msg;
  }
  return Value::unspecified();
}

void VM::defineGlobal(std::string_view Name, Value V) {
  H.intern(Name)->Global = V;
}

void VM::defineNative(std::string_view Name, NativeFn Fn, uint16_t MinArgs,
                      int16_t MaxArgs, NativeSpecial Special) {
  Symbol *Sym = H.intern(Name);
  Native *N =
      H.allocNative(Value::object(Sym), Fn, MinArgs, MaxArgs, Special);
  Sym->Global = Value::object(N);
}

void VM::traceRoots(GCVisitor &V) {
  V.visit(Acc);
  V.visit(CurCodeVal);
  V.visit(CwvStub);
  V.visit(FinalValue);
  V.visit(TimerHandler);
  V.visitRange(MultiVals.data(), MultiVals.size());
}

// --- Small helpers -----------------------------------------------------------

namespace {

bool isNumber(Value V) { return V.isFixnum() || isObj<Flonum>(V); }

double asDouble(Value V) {
  return V.isFixnum() ? static_cast<double>(V.asFixnum())
                      : castObj<Flonum>(V)->D;
}

std::string arityMessage(Value Callee, uint32_t NArgs) {
  return "wrong number of arguments (" + std::to_string(NArgs) + ") to " +
         writeToString(Callee);
}

} // namespace

std::vector<std::string> VM::captureBacktrace(unsigned MaxFrames) const {
  std::vector<std::string> Out;
  auto NameOf = [](Value CodeV) -> std::string {
    auto *C = dynObj<Code>(CodeV);
    if (!C)
      return "<?>";
    if (isObj<Symbol>(C->Name))
      return std::string(castObj<Symbol>(C->Name)->name());
    return "<anonymous>";
  };
  // Innermost frame: the code being executed right now.
  if (Cur)
    Out.push_back(NameOf(CurCodeVal));

  // Walk callers via the frame-size words, hopping into the continuation
  // chain at each segment base.  Errors can surface mid-surgery, so every
  // step is defensively validated rather than asserted.
  const Value *Sl = CS.slots();
  uint32_t F = CS.Fp;
  Value Link = CS.link();
  while (Out.size() < MaxFrames) {
    Value RetC = Sl[F + FrameRetCode];
    if (RetC.isUnderflowMarker()) {
      auto *K = dynObj<Continuation>(Link);
      if (!K || K->isHalt() || K->isShot() || K->Size <= 0)
        break;
      auto *C = dynObj<Code>(K->RetCode);
      if (!C || K->RetPc < 1 ||
          static_cast<uint32_t>(K->RetPc) > C->NInstrs)
        break;
      Out.push_back(NameOf(K->RetCode));
      uint32_t D = C->frameSizeAt(K->RetPc);
      if (static_cast<int64_t>(D) > K->Size)
        break;
      Sl = K->slots();
      F = static_cast<uint32_t>(K->Size) - D;
      Link = K->Link;
      continue;
    }
    auto *C = dynObj<Code>(RetC);
    if (!C)
      break;
    Value RetPcV = Sl[F + FrameRetPc];
    if (!RetPcV.isFixnum())
      break;
    int64_t RetPc = RetPcV.asFixnum();
    if (RetPc < 1 || static_cast<uint32_t>(RetPc) > C->NInstrs)
      break;
    Out.push_back(NameOf(RetC));
    uint32_t D = C->frameSizeAt(RetPc);
    if (D > F)
      break;
    F -= D;
  }
  return Out;
}

uint32_t VM::calleeNeed(Value Callee, uint32_t NArgs) const {
  uint32_t Base = FrameHeaderWords + NArgs;
  if (auto *Cl = dynObj<Closure>(Callee))
    return std::max(Cl->code()->MaxDepth, Base);
  return Base;
}

void VM::setValues(const Value *Vals, uint32_t N) {
  NumValues = N;
  MultiVals.assign(Vals, Vals + N);
  Acc = N >= 1 ? Vals[0] : Value::unspecified();
}

void VM::collectValues(std::vector<Value> &Out) const {
  if (NumValues == 1) {
    Out.assign(1, Acc);
    return;
  }
  Out.assign(MultiVals.begin(), MultiVals.begin() + NumValues);
}

// --- Frame construction and procedure entry -------------------------------------

uint32_t VM::buildFrame(Site St, const Value *Args, uint32_t NArgs,
                        uint32_t Need) {
  uint32_t NewFp;
  if (St.Kind == SiteKind::NonTail) {
    CallFramePlan Plan = CS.prepareCall(CurCodeVal, Pc, St.D, NArgs, Need);
    Value *Sl = CS.slots();
    NewFp = Plan.NewFp;
    if (Plan.BaseFrame) {
      Sl[NewFp + FrameRetCode] = Value::underflowMarker();
      Sl[NewFp + FrameRetPc] = Value::fixnum(0);
    } else {
      Sl[NewFp + FrameRetCode] = CurCodeVal;
      Sl[NewFp + FrameRetPc] = Value::fixnum(Pc);
    }
  } else {
    // Tail: the existing header is kept (or was rewritten by relocation).
    CallFramePlan Plan = CS.prepareTailCall(NArgs, Need);
    NewFp = Plan.NewFp;
  }
  Value *Sl = CS.slots();
  for (uint32_t I = 0; I != NArgs; ++I)
    Sl[NewFp + FrameArgs + I] = Args[I];
  CS.Fp = NewFp;
  CS.Top = NewFp + FrameHeaderWords + NArgs;
  return NewFp;
}

bool VM::enterClosure(Closure *Cl, uint32_t NArgs) {
  Code *C = Cl->code();
  uint32_t Req = C->NParams;
  if (NArgs < Req || (!C->HasRest && NArgs > Req)) {
    fail(arityMessage(Value::object(Cl), NArgs));
    return false;
  }
  Value *Sl = CS.slots();
  uint32_t Base = CS.Fp;
  uint32_t NSlots = Req + (C->HasRest ? 1 : 0);
  if (C->HasRest) {
    Value Rest = Value::nil();
    for (uint32_t I = NArgs; I-- > Req;)
      Rest = cons(H, Sl[Base + FrameArgs + I], Rest);
    Sl[Base + FrameArgs + Req] = Rest;
  }
  // Copy captured variables into their frame slots: frames are fully
  // self-contained, so continuation capture and GC never need a closure
  // register.
  for (uint32_t I = 0; I != Cl->NFree; ++I)
    Sl[Base + FrameArgs + NSlots + I] = Cl->Free[I];
  CS.Top = Base + FrameHeaderWords + NSlots + Cl->NFree;
  Cur = C;
  CurCodeVal = Cl->CodeVal;
  Pc = 1; // Pc 0 holds the entry frame-size word.
  S.ProcedureCalls += 1;

  if (TimerExpired) {
    // Engine preemption at procedure entry: the frame is fully built and
    // nothing has executed, so (code, pc=1) with the sealed stack is a
    // complete representation of "run this procedure".  Tail loops are
    // preempted here; non-tail code is also preempted at returns.
    TimerExpired = false;
    Fuel = -1;
    Value Handler = TimerHandler;
    TimerHandler = Value();
    Value K = CS.captureOneShot(CS.Top, CurCodeVal, 1);
    CS.beginBaseFrame(FrameHeaderWords + 2);
    CS.plantBaseFrame();
    enterCall(Handler, {K, Value::unspecified()}, Site{SiteKind::Tail, 0});
  }
  return true;
}

void VM::returnValues() {
  Value *Sl = CS.slots();
  Value RetC = Sl[CS.Fp + FrameRetCode];
  if (RetC.isUnderflowMarker()) {
    auto *K = castObj<Continuation>(CS.link());
    if (K->isShot()) {
      fail("one-shot continuation invoked a second time (via return)");
      return;
    }
    ResumePoint RP = CS.underflow();
    if (RP.Halted) {
      Halted = true;
      FinalValue = Acc;
      return;
    }
    Cur = castObj<Code>(RP.Code);
    CurCodeVal = RP.Code;
    Pc = RP.Pc;
    CS.growWindow(CS.Fp + Cur->MaxDepth);
    return;
  }
  auto *C = castObj<Code>(RetC);
  int64_t RetPc = Sl[CS.Fp + FrameRetPc].asFixnum();
  uint32_t D = C->frameSizeAt(RetPc);
  uint32_t OldFp = CS.Fp;
  CS.Fp = OldFp - D;
  CS.Top = OldFp;
  Cur = C;
  CurCodeVal = RetC;
  Pc = RetPc;
  CS.growWindow(CS.Fp + Cur->MaxDepth);
}

void VM::invokeContinuationWithValues(Continuation *K,
                                      const std::vector<Value> &Vals) {
  if (K->isHalt()) {
    Halted = true;
    FinalValue = Vals.empty() ? Value::unspecified() : Vals[0];
    return;
  }
  if (K->isShot()) {
    fail("one-shot continuation invoked a second time");
    return;
  }
  ResumePoint RP = CS.invoke(K);
  Cur = castObj<Code>(RP.Code);
  CurCodeVal = RP.Code;
  Pc = RP.Pc;
  CS.growWindow(CS.Fp + Cur->MaxDepth);
  setValues(Vals.data(), static_cast<uint32_t>(Vals.size()));
}

void VM::captureAndCall(bool OneShot, Value Receiver, Site St) {
  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  if (St.Kind == SiteKind::NonTail) {
    Boundary = CS.Fp + St.D;
    RetC = CurCodeVal;
    RetP = Pc;
  } else {
    // Tail: the current frame is dead; its return address is the capture
    // point.  At a segment base this degenerates to the empty-segment case.
    Boundary = CS.Fp;
    Value *Sl = CS.slots();
    RetC = Sl[CS.Fp + FrameRetCode];
    RetP = Sl[CS.Fp + FrameRetPc].isFixnum()
               ? Sl[CS.Fp + FrameRetPc].asFixnum()
               : 0;
  }
  Value K = OneShot ? CS.captureOneShot(Boundary, RetC, RetP)
                    : CS.captureMultiShot(Boundary, RetC, RetP);
  // Call the receiver on a fresh base frame: returning from it underflows
  // into the captured continuation — the implicit invocation of Fig. 2.
  CS.beginBaseFrame(FrameHeaderWords + 1);
  CS.plantBaseFrame();
  enterCall(Receiver, {K}, Site{SiteKind::Tail, 0});
}

void VM::doCallWithValues(Value Producer, Value Consumer, Site St) {
  uint32_t ProdNeed = calleeNeed(Producer, 0);
  uint32_t StubWords = FrameHeaderWords + 1; // header + consumer
  uint32_t Need = StubWords + FrameHeaderWords + ProdNeed;
  Value StubArgs[1] = {Consumer};
  uint32_t StubFp = buildFrame(St, StubArgs, 1, Need);

  // Producer frame above the stub; its return resumes the stub at pc=1.
  Value *Sl = CS.slots();
  uint32_t PFp = StubFp + StubWords;
  Sl[PFp + FrameRetCode] = CwvStub;
  Sl[PFp + FrameRetPc] = Value::fixnum(1);
  CS.Fp = PFp;
  CS.Top = PFp + FrameHeaderWords;

  if (auto *Cl = dynObj<Closure>(Producer)) {
    enterClosure(Cl, 0);
    return;
  }
  if (auto *Nat = dynObj<Native>(Producer);
      Nat && Nat->Special == NativeSpecial::None) {
    if (Nat->MinArgs > 0) {
      fail(arityMessage(Producer, 0));
      return;
    }
    Acc = Nat->Fn(*this, nullptr, 0);
    NumValues = 1;
    if (!Failed)
      returnValues();
    return;
  }
  if (auto *K = dynObj<Continuation>(Producer)) {
    invokeContinuationWithValues(K, {});
    return;
  }
  // Special natives as producers (e.g. (call-with-values values list)):
  // route through the general path with the producer frame as Tail site.
  enterCall(Producer, {}, Site{SiteKind::Tail, 0});
}

void VM::enterCall(Value Callee, std::vector<Value> Args, Site St) {
  for (;;) {
    if (Failed || Halted)
      return;
    uint32_t N = static_cast<uint32_t>(Args.size());

    if (auto *K = dynObj<Continuation>(Callee)) {
      invokeContinuationWithValues(K, Args);
      return;
    }

    if (auto *Nat = dynObj<Native>(Callee)) {
      if (N < Nat->MinArgs ||
          (Nat->MaxArgs >= 0 && N > static_cast<uint32_t>(Nat->MaxArgs))) {
        fail(arityMessage(Callee, N));
        return;
      }
      switch (Nat->Special) {
      case NativeSpecial::None:
        Acc = Nat->Fn(*this, Args.data(), N);
        NumValues = 1;
        if (Failed)
          return;
        if (St.Kind == SiteKind::NonTail) {
          CS.Top = CS.Fp + St.D;
          return;
        }
        returnValues();
        return;
      case NativeSpecial::Apply: {
        // (apply f a b ... rest-list)
        Value F = Args[0];
        std::vector<Value> Flat(Args.begin() + 1, Args.end() - 1);
        Value L = Args.back();
        if (!listToVector(L, Flat)) {
          fail("apply: last argument is not a proper list");
          return;
        }
        Callee = F;
        Args = std::move(Flat);
        continue;
      }
      case NativeSpecial::Values:
        setValues(Args.data(), N);
        if (St.Kind == SiteKind::NonTail) {
          CS.Top = CS.Fp + St.D;
          return;
        }
        returnValues();
        return;
      case NativeSpecial::CallCC:
        captureAndCall(/*OneShot=*/false, Args[0], St);
        return;
      case NativeSpecial::Call1CC:
        captureAndCall(/*OneShot=*/true, Args[0], St);
        return;
      case NativeSpecial::CallWithValues:
        doCallWithValues(Args[0], Args[1], St);
        return;
      }
      oscUnreachable("bad NativeSpecial");
    }

    if (auto *Cl = dynObj<Closure>(Callee)) {
      buildFrame(St, Args.data(), N, calleeNeed(Callee, N));
      enterClosure(Cl, N);
      return;
    }

    fail("attempt to apply non-procedure " + writeToString(Callee));
    return;
  }
}

// --- The interpreter loop ---------------------------------------------------------

VM::RunResult VM::run(Code *Toplevel) {
  Failed = false;
  Halted = false;
  ErrMsg.clear();
  FinalValue = Value::unspecified();
  Acc = Value::unspecified();
  NumValues = 1;
  Fuel = -1;
  TimerExpired = false;
  TimerHandler = Value();

  CS.reset();
  CS.beginBaseFrame(std::max(Toplevel->MaxDepth, 2u));
  CS.plantBaseFrame();
  Cur = Toplevel;
  CurCodeVal = Value::object(Toplevel);
  Pc = 1; // Pc 0 holds the entry frame-size word.

  while (!Failed && !Halted) {
    Value *Sl = CS.slots();
    const Vector *Ko = castObj<Vector>(Cur->Consts);
    assert(Pc >= 0 && static_cast<uint32_t>(Pc) < Cur->NInstrs &&
           "pc out of range");
    Op O = static_cast<Op>(Cur->Instrs[Pc++]);
    S.Instructions += 1;

    switch (O) {
    case Op::Const:
      Acc = Ko->Elems[Cur->Instrs[Pc++]];
      break;
    case Op::GetLocal:
      Acc = Sl[CS.Fp + Cur->Instrs[Pc++]];
      break;
    case Op::GetLocalCell:
      Acc = castObj<Cell>(Sl[CS.Fp + Cur->Instrs[Pc++]])->Val;
      break;
    case Op::SetLocalCell:
      castObj<Cell>(Sl[CS.Fp + Cur->Instrs[Pc++]])->Val = Acc;
      break;
    case Op::GetGlobal: {
      auto *Sym = castObj<Symbol>(Ko->Elems[Cur->Instrs[Pc++]]);
      if (Sym->Global.isUndefined()) {
        fail("unbound variable: " + std::string(Sym->name()));
        break;
      }
      Acc = Sym->Global;
      break;
    }
    case Op::SetGlobal: {
      auto *Sym = castObj<Symbol>(Ko->Elems[Cur->Instrs[Pc++]]);
      if (Sym->Global.isUndefined()) {
        fail("set! of unbound variable: " + std::string(Sym->name()));
        break;
      }
      Sym->Global = Acc;
      break;
    }
    case Op::DefGlobal:
      castObj<Symbol>(Ko->Elems[Cur->Instrs[Pc++]])->Global = Acc;
      break;
    case Op::Push:
      assert(CS.Top < CS.capacity() && "push past window capacity");
      Sl[CS.Top++] = Acc;
      break;
    case Op::MakeCell: {
      uint32_t Off = Cur->Instrs[Pc++];
      Sl[CS.Fp + Off] = Value::object(H.allocCell(Sl[CS.Fp + Off]));
      break;
    }
    case Op::MakeClosure: {
      Value CodeV = Ko->Elems[Cur->Instrs[Pc++]];
      uint32_t NFree = Cur->Instrs[Pc++];
      Closure *Cl = H.allocClosure(CodeV, NFree);
      for (uint32_t I = 0; I != NFree; ++I)
        Cl->Free[I] = Sl[CS.Top - NFree + I];
      CS.Top -= NFree;
      Acc = Value::object(Cl);
      break;
    }
    case Op::Jump:
      Pc = Cur->Instrs[Pc];
      break;
    case Op::JumpIfFalse: {
      uint32_t Target = Cur->Instrs[Pc++];
      if (Acc.isFalse())
        Pc = Target;
      break;
    }
    case Op::SetTop:
      CS.Top = CS.Fp + Cur->Instrs[Pc++];
      break;
    case Op::Frame:
      CS.Top += FrameHeaderWords;
      break;

    case Op::Call: {
      uint32_t N = Cur->Instrs[Pc++];
      uint32_t D = Cur->Instrs[Pc++];
      if (Fuel > 0 && --Fuel == 0)
        TimerExpired = true; // Serviced at the next Return.
      if (H.needsGC())
        H.collect();
      Value Callee = Acc;
      if (auto *Cl = dynObj<Closure>(Callee)) {
        uint32_t Need = calleeNeed(Callee, N);
        CallFramePlan Plan = CS.prepareCall(CurCodeVal, Pc, D, N, Need);
        Value *Sl2 = CS.slots();
        if (Plan.BaseFrame) {
          Sl2[Plan.NewFp + FrameRetCode] = Value::underflowMarker();
          Sl2[Plan.NewFp + FrameRetPc] = Value::fixnum(0);
        } else {
          Sl2[Plan.NewFp + FrameRetCode] = CurCodeVal;
          Sl2[Plan.NewFp + FrameRetPc] = Value::fixnum(Pc);
        }
        CS.Fp = Plan.NewFp;
        CS.Top = Plan.NewFp + FrameHeaderWords + N;
        enterClosure(Cl, N);
        break;
      }
      if (auto *Nat = dynObj<Native>(Callee);
          Nat && Nat->Special == NativeSpecial::None) {
        if (N < Nat->MinArgs ||
            (Nat->MaxArgs >= 0 && N > static_cast<uint32_t>(Nat->MaxArgs))) {
          fail(arityMessage(Callee, N));
          break;
        }
        S.ProcedureCalls += 1;
        Acc = Nat->Fn(*this, Sl + CS.Fp + D + FrameHeaderWords, N);
        NumValues = 1;
        CS.Top = CS.Fp + D;
        break;
      }
      std::vector<Value> Args(Sl + CS.Fp + D + FrameHeaderWords,
                              Sl + CS.Fp + D + FrameHeaderWords + N);
      enterCall(Callee, std::move(Args), Site{SiteKind::NonTail, D});
      break;
    }

    case Op::TailCall: {
      uint32_t N = Cur->Instrs[Pc++];
      if (Fuel > 0 && --Fuel == 0)
        TimerExpired = true;
      if (H.needsGC())
        H.collect();
      Sl = CS.slots();
      std::memmove(Sl + CS.Fp + FrameHeaderWords, Sl + CS.Top - N,
                   N * sizeof(Value));
      CS.Top = CS.Fp + FrameHeaderWords + N;
      Value Callee = Acc;
      if (auto *Cl = dynObj<Closure>(Callee)) {
        uint32_t Need = calleeNeed(Callee, N);
        CallFramePlan Plan = CS.prepareTailCall(N, Need);
        CS.Fp = Plan.NewFp;
        CS.Top = Plan.NewFp + FrameHeaderWords + N;
        enterClosure(Cl, N);
        break;
      }
      if (auto *Nat = dynObj<Native>(Callee);
          Nat && Nat->Special == NativeSpecial::None) {
        if (N < Nat->MinArgs ||
            (Nat->MaxArgs >= 0 && N > static_cast<uint32_t>(Nat->MaxArgs))) {
          fail(arityMessage(Callee, N));
          break;
        }
        S.ProcedureCalls += 1;
        Acc = Nat->Fn(*this, CS.slots() + CS.Fp + FrameHeaderWords, N);
        NumValues = 1;
        if (!Failed)
          returnValues();
        break;
      }
      std::vector<Value> Args(Sl + CS.Fp + FrameHeaderWords,
                              Sl + CS.Fp + FrameHeaderWords + N);
      enterCall(Callee, std::move(Args), Site{SiteKind::Tail, 0});
      break;
    }

    case Op::Return:
      NumValues = 1;
      if (TimerExpired) {
        // Engine preemption: capture the rest of the computation — "return
        // Acc from this frame onward" — as a one-shot continuation and
        // hand it to the timer handler along with the value.  Invoking
        // (k v) later resumes the preempted computation.
        TimerExpired = false;
        Fuel = -1;
        Value Handler = TimerHandler;
        TimerHandler = Value();
        Value V = Acc;
        Value RetC = Sl[CS.Fp + FrameRetCode];
        int64_t RetP = Sl[CS.Fp + FrameRetPc].isFixnum()
                           ? Sl[CS.Fp + FrameRetPc].asFixnum()
                           : 0;
        Value K = CS.captureOneShot(CS.Fp, RetC, RetP);
        CS.beginBaseFrame(FrameHeaderWords + 2);
        CS.plantBaseFrame();
        enterCall(Handler, {K, V}, Site{SiteKind::Tail, 0});
        break;
      }
      returnValues();
      break;

    case Op::CwvApply: {
      Value Consumer = Sl[CS.Fp + FrameArgs];
      std::vector<Value> Vals;
      collectValues(Vals);
      enterCall(Consumer, std::move(Vals), Site{SiteKind::Tail, 0});
      break;
    }

    // --- Open-coded primitives ------------------------------------------

    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::NumLt:
    case Op::NumLe:
    case Op::NumGt:
    case Op::NumGe:
    case Op::NumEq: {
      Value L = Sl[CS.Top - 1];
      --CS.Top;
      Value R = Acc;
      if (L.isFixnum() && R.isFixnum()) {
        int64_t A = L.asFixnum(), B = R.asFixnum();
        switch (O) {
        case Op::Add:
          Acc = Value::fixnum(A + B);
          break;
        case Op::Sub:
          Acc = Value::fixnum(A - B);
          break;
        case Op::Mul:
          Acc = Value::fixnum(A * B);
          break;
        case Op::NumLt:
          Acc = Value::boolean(A < B);
          break;
        case Op::NumLe:
          Acc = Value::boolean(A <= B);
          break;
        case Op::NumGt:
          Acc = Value::boolean(A > B);
          break;
        case Op::NumGe:
          Acc = Value::boolean(A >= B);
          break;
        default:
          Acc = Value::boolean(A == B);
          break;
        }
        break;
      }
      if (!isNumber(L) || !isNumber(R)) {
        fail(std::string(opName(O)) + ": not a number: " +
             writeToString(isNumber(L) ? R : L));
        break;
      }
      double A = asDouble(L), B = asDouble(R);
      switch (O) {
      case Op::Add:
        Acc = Value::object(H.allocFlonum(A + B));
        break;
      case Op::Sub:
        Acc = Value::object(H.allocFlonum(A - B));
        break;
      case Op::Mul:
        Acc = Value::object(H.allocFlonum(A * B));
        break;
      case Op::NumLt:
        Acc = Value::boolean(A < B);
        break;
      case Op::NumLe:
        Acc = Value::boolean(A <= B);
        break;
      case Op::NumGt:
        Acc = Value::boolean(A > B);
        break;
      case Op::NumGe:
        Acc = Value::boolean(A >= B);
        break;
      default:
        Acc = Value::boolean(A == B);
        break;
      }
      break;
    }

    case Op::Cons: {
      Value L = Sl[CS.Top - 1];
      --CS.Top;
      Acc = cons(H, L, Acc);
      break;
    }
    case Op::IsEq: {
      Value L = Sl[CS.Top - 1];
      --CS.Top;
      Acc = Value::boolean(L.identical(Acc));
      break;
    }
    case Op::Car:
      if (auto *P = dynObj<Pair>(Acc))
        Acc = P->Car;
      else
        fail("car: not a pair: " + writeToString(Acc));
      break;
    case Op::Cdr:
      if (auto *P = dynObj<Pair>(Acc))
        Acc = P->Cdr;
      else
        fail("cdr: not a pair: " + writeToString(Acc));
      break;
    case Op::IsNull:
      Acc = Value::boolean(Acc.isNil());
      break;
    case Op::IsPair:
      Acc = Value::boolean(isObj<Pair>(Acc));
      break;
    case Op::Not:
      Acc = Value::boolean(Acc.isFalse());
      break;
    case Op::IsZero:
      if (Acc.isFixnum())
        Acc = Value::boolean(Acc.asFixnum() == 0);
      else if (auto *F = dynObj<Flonum>(Acc))
        Acc = Value::boolean(F->D == 0.0);
      else
        fail("zero?: not a number: " + writeToString(Acc));
      break;
    }
  }

  RunResult R;
  if (Failed) {
    R.Ok = false;
    R.Error = ErrMsg;
    R.Backtrace = captureBacktrace();
    return R;
  }
  R.Ok = true;
  R.Val = FinalValue;
  return R;
}
