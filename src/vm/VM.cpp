#include "vm/VM.h"

#include "compiler/Bytecode.h"
#include "core/FrameWalk.h"
#include "io/ConnQueue.h"
#include "io/Reactor.h"
#include "object/ListUtil.h"
#include "sched/Scheduler.h"
#include "sexp/Printer.h"
#include "support/Diag.h"

#include <algorithm>
#include <chrono>
#include <cstring>

using namespace osc;

VM::VM(Heap &H, Stats &S, const Config &Cfg)
    : H(H), S(S), Cfg(Cfg), Tr(this->Cfg.TraceBufferEvents),
      CS(H, S, this->Cfg) {
  H.addRootProvider(this);

  // Distribute the tracer and the fault plan to the layers that honor
  // them.  The heap's pointers are detached in ~VM: the VM owns both, and
  // a heap can outlive its VM in embedding scenarios.
  CS.setTrace(&Tr);
  H.setTrace(&Tr);
  H.setFaultPlan(&this->Cfg.Faults);

  // The call-with-values resume stub: returning into (stub, pc=1) lands on
  // CwvApply with the consumer in the stub frame's single slot.  Instrs[0]
  // is the frame-size word for that return point: header + consumer = 3.
  uint32_t StubInstrs[2] = {3, static_cast<uint32_t>(Op::CwvApply)};
  Vector *NoConsts = H.allocVector(0);
  Code *Stub = H.allocCode(Value::object(H.intern("call-with-values-stub")),
                           Value::object(NoConsts), 0, false, /*MaxDepth=*/8,
                           StubInstrs, 2);
  CwvStub = Value::object(Stub);

  // The prompt resume stub: returning into (stub, pc=1) lands on PromptPop
  // with the PromptRecord id in the stub frame's single slot
  // (FramePromptId).  Same shape as the cwv stub: header + id = 3.
  uint32_t PromptInstrs[2] = {3, static_cast<uint32_t>(Op::PromptPop)};
  Code *PStub = H.allocCode(Value::object(H.intern("prompt-stub")),
                            Value::object(NoConsts), 0, false, /*MaxDepth=*/8,
                            PromptInstrs, 2);
  PromptStub = Value::object(PStub);

  Sched = std::make_unique<Scheduler>(S);
  Sched->setTrace(&Tr);
  WindersSym = H.intern("*winders*");
  NurserySym = H.intern("*nursery*");
  // The thread-root guard: a permanently shot continuation shared by every
  // green thread's chain as its bottom link.  Like the halt sentinel it has
  // no segment and no link, so stack walkers stop at it; unlike halt it is
  // recognized by identity, so a return (or base-frame capture) reaching it
  // means "this thread's thunk finished" rather than "the program ended".
  Continuation *Guard = H.allocContinuation();
  Guard->Size = -1;
  Guard->SegSize = -1;
  ThreadGuard = Value::object(Guard);

  Rx = std::make_unique<Reactor>();
  Rx->setTickMs(this->Cfg.PollTickMs);
  Rx->setDefaultOutputCap(this->Cfg.MaxOutputBufferBytes);
  // The EOF sentinel is an interned symbol the reader cannot produce
  // ("#<" is a read error), so (eq? x *eof*) is a safe end-of-stream test.
  EofObj = Value::object(H.intern("#<eof>"));
  // Same trick for the with-deadline timeout sentinel.
  TimeoutObj = Value::object(H.intern("#<timeout>"));
}

VM::~VM() {
  H.setTrace(nullptr);
  H.setFaultPlan(nullptr);
  H.removeRootProvider(this);
}

void VM::writeOutput(std::string_view Sv) {
  if (Capturing) {
    OutBuffer.append(Sv);
    return;
  }
  std::fwrite(Sv.data(), 1, Sv.size(), stdout);
}

Value VM::fail(const std::string &Msg) { return fail(Msg, ErrorKind::Runtime); }

Value VM::fail(const std::string &Msg, ErrorKind Kind) {
  if (!Failed) {
    Failed = true;
    ErrMsg = Msg;
    ErrKind = Kind;
  }
  return Value::unspecified();
}

void VM::defineGlobal(std::string_view Name, Value V) {
  H.intern(Name)->Global = V;
  ++GlobalGen; // A definition; invalidates global-site inline caches.
}

void VM::defineNative(std::string_view Name, NativeFn Fn, uint16_t MinArgs,
                      int16_t MaxArgs, NativeSpecial Special) {
  Symbol *Sym = H.intern(Name);
  Native *N =
      H.allocNative(Value::object(Sym), Fn, MinArgs, MaxArgs, Special);
  Sym->Global = Value::object(N);
  ++GlobalGen; // A definition; invalidates global-site inline caches.
}

void VM::defineNatives(std::span<const NativeDef> Defs) {
  for (const NativeDef &D : Defs)
    defineNative(D.Name, D.Fn, D.MinArgs, D.MaxArgs, D.Special);
}

void VM::traceRoots(GCVisitor &V) {
  V.visit(Acc);
  V.visit(CurCodeVal);
  V.visit(CwvStub);
  V.visit(PromptStub);
  Prompts.traceRoots(V);
  V.visit(FinalValue);
  V.visit(TimerHandler);
  V.visit(ThreadGuard);
  V.visit(EofObj);
  V.visit(TimeoutObj);
  V.visitRange(MultiVals.data(), MultiVals.size());
  Sched->traceRoots(V);
}

// --- Small helpers -----------------------------------------------------------

namespace {

bool isNumber(Value V) { return V.isFixnum() || isObj<Flonum>(V); }

double asDouble(Value V) {
  return V.isFixnum() ? static_cast<double>(V.asFixnum())
                      : castObj<Flonum>(V)->D;
}

std::string arityMessage(Value Callee, uint32_t NArgs) {
  return "wrong number of arguments (" + std::to_string(NArgs) + ") to " +
         writeToString(Callee);
}

} // namespace

std::vector<std::string> VM::captureBacktrace(unsigned MaxFrames) const {
  std::vector<std::string> Out;
  auto NameOf = [](Value CodeV) -> std::string {
    auto *C = dynObj<Code>(CodeV);
    if (!C)
      return "<?>";
    if (isObj<Symbol>(C->Name))
      return std::string(castObj<Symbol>(C->Name)->name());
    return "<anonymous>";
  };
  // Innermost frame: the code being executed right now.
  if (Cur)
    Out.push_back(NameOf(CurCodeVal));

  // Walk callers via the frame-size words, hopping into the continuation
  // chain at each segment base.  Errors can surface mid-surgery, so every
  // step is defensively validated rather than asserted.
  const Value *Sl = CS.slots();
  uint32_t F = CS.Fp;
  Value Link = CS.link();
  while (Out.size() < MaxFrames) {
    Value RetC = Sl[F + FrameRetCode];
    if (RetC.isUnderflowMarker()) {
      auto *K = dynObj<Continuation>(Link);
      if (!K || K->isHalt() || K->isShot() || K->Size <= 0)
        break;
      auto *C = dynObj<Code>(K->RetCode);
      if (!C || K->RetPc < 1 ||
          static_cast<uint32_t>(K->RetPc) > C->NInstrs)
        break;
      Out.push_back(NameOf(K->RetCode));
      uint32_t D = C->frameSizeAt(K->RetPc);
      if (static_cast<int64_t>(D) > K->Size)
        break;
      Sl = K->slots();
      F = static_cast<uint32_t>(K->Size) - D;
      Link = K->Link;
      continue;
    }
    auto *C = dynObj<Code>(RetC);
    if (!C)
      break;
    Value RetPcV = Sl[F + FrameRetPc];
    if (!RetPcV.isFixnum())
      break;
    int64_t RetPc = RetPcV.asFixnum();
    if (RetPc < 1 || static_cast<uint32_t>(RetPc) > C->NInstrs)
      break;
    Out.push_back(NameOf(RetC));
    uint32_t D = C->frameSizeAt(RetPc);
    if (D > F)
      break;
    F -= D;
  }
  return Out;
}

uint32_t VM::calleeNeed(Value Callee, uint32_t NArgs) const {
  uint32_t Base = FrameHeaderWords + NArgs;
  if (auto *Cl = dynObj<Closure>(Callee))
    return std::max(Cl->code()->MaxDepth, Base);
  return Base;
}

void VM::setValues(const Value *Vals, uint32_t N) {
  NumValues = N;
  MultiVals.assign(Vals, Vals + N);
  Acc = N >= 1 ? Vals[0] : Value::unspecified();
}

void VM::collectValues(std::vector<Value> &Out) const {
  if (NumValues == 1) {
    Out.assign(1, Acc);
    return;
  }
  Out.assign(MultiVals.begin(), MultiVals.begin() + NumValues);
}

// --- Frame construction and procedure entry -------------------------------------

uint32_t VM::buildFrame(Site St, const Value *Args, uint32_t NArgs,
                        uint32_t Need) {
  uint32_t NewFp;
  if (St.Kind == SiteKind::NonTail) {
    CallFramePlan Plan = CS.prepareCall(CurCodeVal, Pc, St.D, NArgs, Need);
    Value *Sl = CS.slots();
    NewFp = Plan.NewFp;
    if (Plan.BaseFrame) {
      Sl[NewFp + FrameRetCode] = Value::underflowMarker();
      Sl[NewFp + FrameRetPc] = Value::fixnum(0);
    } else {
      Sl[NewFp + FrameRetCode] = CurCodeVal;
      Sl[NewFp + FrameRetPc] = Value::fixnum(Pc);
    }
  } else {
    // Tail: the existing header is kept (or was rewritten by relocation).
    CallFramePlan Plan = CS.prepareTailCall(NArgs, Need);
    NewFp = Plan.NewFp;
  }
  Value *Sl = CS.slots();
  for (uint32_t I = 0; I != NArgs; ++I)
    Sl[NewFp + FrameArgs + I] = Args[I];
  CS.Fp = NewFp;
  CS.Top = NewFp + FrameHeaderWords + NArgs;
  return NewFp;
}

bool VM::enterClosure(Closure *Cl, uint32_t NArgs, bool ArityChecked) {
  Code *C = Cl->code();
  uint32_t Req = C->NParams;
  if (!ArityChecked && (NArgs < Req || (!C->HasRest && NArgs > Req))) {
    fail(arityMessage(Value::object(Cl), NArgs));
    return false;
  }
  Value *Sl = CS.slots();
  uint32_t Base = CS.Fp;
  uint32_t NSlots = Req + (C->HasRest ? 1 : 0);
  if (C->HasRest) {
    Value Rest = Value::nil();
    for (uint32_t I = NArgs; I-- > Req;)
      Rest = cons(H, Sl[Base + FrameArgs + I], Rest);
    Sl[Base + FrameArgs + Req] = Rest;
  }
  // Copy captured variables into their frame slots: frames are fully
  // self-contained, so continuation capture and GC never need a closure
  // register.
  for (uint32_t I = 0; I != Cl->NFree; ++I)
    Sl[Base + FrameArgs + NSlots + I] = Cl->Free[I];
  CS.Top = Base + FrameHeaderWords + NSlots + Cl->NFree;
  Cur = C;
  CurCodeVal = Cl->CodeVal;
  Pc = 1; // Pc 0 holds the entry frame-size word.
  S.ProcedureCalls += 1;

  if (TimerExpired) {
    // Preemption at procedure entry: the frame is fully built and nothing
    // has executed, so (code, pc=1) with the sealed stack is a complete
    // representation of "run this procedure".  Tail loops are preempted
    // here; non-tail code is also preempted at returns.
    TimerExpired = false;
    Fuel = -1;
    if (!TimerHandler.isEmpty()) {
      // Engine: hand the capture to the Scheme handler.
      Value Handler = TimerHandler;
      TimerHandler = Value();
      Value K = CS.captureOneShot(CS.Top, CurCodeVal, 1);
      if (auto *KC = dynObj<Continuation>(K))
        KC->ByValue = true; // The k escapes to the Scheme handler.
      CS.beginBaseFrame(FrameHeaderWords + 2);
      CS.plantBaseFrame();
      enterCall(Handler, {K, Value::unspecified()}, Site{SiteKind::Tail, 0});
    } else if (Sched->inThread()) {
      // Scheduler: same capture, but the VM parks the thread and
      // reinstates the next one directly — no Scheme handler runs.
      S.PreemptiveSwitches += 1;
      Value K = schedCapture(CS.Top, CurCodeVal, 1);
      schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Ready);
    }
  }
  return true;
}

void VM::returnValues() {
  Value *Sl = CS.slots();
  Value RetC = Sl[CS.Fp + FrameRetCode];
  if (RetC.isUnderflowMarker()) {
    if (CS.link().identical(ThreadGuard)) {
      // A green thread returned from its root frame: the thunk is done and
      // the returned value is the thread's result.
      if (Sched->inThread()) {
        Sched->finishCurrent(Acc);
        schedDispatch();
        return;
      }
      fail("thread root frame returned outside the scheduler");
      return;
    }
    auto *K = castObj<Continuation>(CS.link());
    if (K->isShot()) {
      fail("one-shot continuation invoked a second time (via return)");
      return;
    }
    ResumePoint RP = CS.underflow();
    if (RP.Halted) {
      Halted = true;
      FinalValue = Acc;
      return;
    }
    Cur = castObj<Code>(RP.Code);
    CurCodeVal = RP.Code;
    Pc = RP.Pc;
    CS.growWindow(CS.Fp + Cur->MaxDepth);
    return;
  }
  auto *C = castObj<Code>(RetC);
  int64_t RetPc = Sl[CS.Fp + FrameRetPc].asFixnum();
  uint32_t D = C->frameSizeAt(RetPc);
  uint32_t OldFp = CS.Fp;
  CS.Fp = OldFp - D;
  CS.Top = OldFp;
  Cur = C;
  CurCodeVal = RetC;
  Pc = RetPc;
  CS.growWindow(CS.Fp + Cur->MaxDepth);
}

void VM::invokeContinuationWithValues(Continuation *K,
                                      const std::vector<Value> &Vals) {
  if (Value::object(K).identical(ThreadGuard)) {
    // The thread-root guard, handed out by a degenerate base-frame capture
    // (captureOneShot's Boundary == 0 case: a call/1cc in tail position at
    // the root of a thread's chain).  "The rest of the computation" is the
    // thread returning from its thunk, so invoking it delivers the
    // thread's result — not the program's (the guard is recognized by
    // identity exactly so it is never confused with the halt sentinel).
    if (Sched->inThread()) {
      Sched->finishCurrent(Vals.empty() ? Value::unspecified() : Vals[0]);
      schedDispatch();
      return;
    }
    fail("thread-root continuation invoked outside the scheduler");
    return;
  }
  if (K->isHalt()) {
    Halted = true;
    FinalValue = Vals.empty() ? Value::unspecified() : Vals[0];
    return;
  }
  if (K->isShot()) {
    fail("one-shot continuation invoked a second time");
    return;
  }
  ResumePoint RP = CS.invoke(K);
  Cur = castObj<Code>(RP.Code);
  CurCodeVal = RP.Code;
  Pc = RP.Pc;
  CS.growWindow(CS.Fp + Cur->MaxDepth);
  setValues(Vals.data(), static_cast<uint32_t>(Vals.size()));
}

void VM::siteCapturePoint(Site St, uint32_t &Boundary, Value &RetCode,
                          int64_t &RetPc) {
  if (St.Kind == SiteKind::NonTail) {
    Boundary = CS.Fp + St.D;
    RetCode = CurCodeVal;
    RetPc = Pc;
    return;
  }
  // Tail: the current frame is dead; its return address is the capture
  // point.  At a segment base this degenerates to the empty-segment case.
  Boundary = CS.Fp;
  const Value *Sl = CS.slots();
  RetCode = Sl[CS.Fp + FrameRetCode];
  RetPc = Sl[CS.Fp + FrameRetPc].isFixnum()
              ? Sl[CS.Fp + FrameRetPc].asFixnum()
              : 0;
}

Value VM::captureSiteOneShot(Site St) {
  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  return schedCapture(Boundary, RetC, RetP);
}

Value VM::schedCapture(uint32_t Boundary, Value RetC, int64_t RetP) {
  if (!Cfg.SchedOneShotSwitch)
    return CS.captureMultiShot(Boundary, RetC, RetP);
  return CS.captureOneShot(Boundary, RetC, RetP);
}

void VM::captureAndCall(bool OneShot, Value Receiver, Site St) {
  OSC_TRACE(&Tr, OneShot ? TraceEvent::Call1CC : TraceEvent::CallCC);
  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  Value K = OneShot ? CS.captureOneShot(Boundary, RetC, RetP)
                    : CS.captureMultiShot(Boundary, RetC, RetP);
  // The k escapes to the program: the member now has a first-class alias,
  // so a later delimited cut through it must clone instead of relink
  // (Prompt.cpp).  This also covers the empty-capture short-circuit,
  // where the returned k IS an existing chain member.
  if (auto *KC = dynObj<Continuation>(K))
    KC->ByValue = true;
  // Call the receiver on a fresh base frame: returning from it underflows
  // into the captured continuation — the implicit invocation of Fig. 2.
  CS.beginBaseFrame(FrameHeaderWords + 1);
  CS.plantBaseFrame();
  enterCall(Receiver, {K}, Site{SiteKind::Tail, 0});
}

void VM::doCallWithValues(Value Producer, Value Consumer, Site St) {
  uint32_t ProdNeed = calleeNeed(Producer, 0);
  uint32_t StubWords = FrameHeaderWords + 1; // header + consumer
  uint32_t Need = StubWords + FrameHeaderWords + ProdNeed;
  Value StubArgs[1] = {Consumer};
  uint32_t StubFp = buildFrame(St, StubArgs, 1, Need);

  // Producer frame above the stub; its return resumes the stub at pc=1.
  Value *Sl = CS.slots();
  uint32_t PFp = StubFp + StubWords;
  Sl[PFp + FrameRetCode] = CwvStub;
  Sl[PFp + FrameRetPc] = Value::fixnum(1);
  CS.Fp = PFp;
  CS.Top = PFp + FrameHeaderWords;

  if (auto *Cl = dynObj<Closure>(Producer)) {
    enterClosure(Cl, 0);
    return;
  }
  if (auto *Nat = dynObj<Native>(Producer);
      Nat && Nat->Special == NativeSpecial::None) {
    if (Nat->MinArgs > 0) {
      fail(arityMessage(Producer, 0));
      return;
    }
    Acc = Nat->Fn(*this, nullptr, 0);
    NumValues = 1;
    if (!Failed)
      returnValues();
    return;
  }
  if (auto *K = dynObj<Continuation>(Producer)) {
    invokeContinuationWithValues(K, {});
    return;
  }
  // Special natives as producers (e.g. (call-with-values values list)):
  // route through the general path with the producer frame as Tail site.
  enterCall(Producer, {}, Site{SiteKind::Tail, 0});
}

// --- Delimited control (src/control) ----------------------------------------
//
// A prompt is three things kept in sync: the Mark (the continuation below
// the reset site, captured one-shot so planting a delimiter costs exactly
// one Figure-2 capture), a PromptRecord on the per-thread table, and a
// *prompt stub frame* — a base frame whose return point is PromptStub@1 and
// whose single slot holds the record id, so a normal return through the
// delimiter pops the record before underflowing into the Mark.  shift cuts
// the chain where a link equals the Mark (src/control/Prompt.cpp): in the
// steady state every member between shift and reset is an exclusively-owned
// one-shot, so the cut is header relinking only — zero stack words move —
// and the later splice is a single link store plus a one-shot invoke.

namespace {

/// Layout of the opaque delimited-continuation package %shift hands to its
/// receiver (a Vector; the prelude wraps it in a procedure before user code
/// can see it).
enum DelimKSlot : uint32_t {
  DkMarker = 0,   ///< The unforgeable #<delim-k> symbol.
  DkTop,          ///< Slice top continuation, or Empty for an empty slice.
  DkBottom,       ///< Slice bottom continuation, or Empty.
  DkTag,          ///< The prompt's tag.
  DkId,           ///< Fixnum PromptRecord id (reused at splice time).
  DkWinders,      ///< *winders* at reset entry (for the record's re-push).
  DkSaved,        ///< Vector of 6-tuples: records cut out with the slice.
  DkShot,         ///< #t once invoked: delimited ks are one-shot.
  DkOrigMark,     ///< The Mark the slice was cut from; saved records whose
                  ///< Mark equals it are remapped onto the splice point.
  DkHandler,      ///< Handler the splice re-pushes with the record: the
                  ///< record's own for shift and deep handlers, Empty for
                  ///< plain resets and for a perform on a shallow handler
                  ///< (the resumed slice loses that handler).
  DkShallow,      ///< Shallow flag re-pushed with the record.
  DkSlotCount,
};

// Tag, Mark, Winders, Id, Handler, Shallow per carried record.
constexpr uint32_t DkSavedFields = 6;

} // namespace

void VM::enterWithPromptStub(uint64_t Id, Value Callee,
                             std::vector<Value> Args) {
  // The stub frame doubles as the fresh window's base frame: its header is
  // the underflow marker (returning past it resumes the Mark, which is the
  // window's link) and its one slot carries the record id for PromptPop.
  uint32_t StubWords = FrameHeaderWords + 1;
  CS.beginBaseFrame(StubWords + FrameHeaderWords + 2);
  CS.plantBaseFrame();
  Value *Sl = CS.slots();
  Sl[FramePromptId] = Value::fixnum(static_cast<int64_t>(Id));
  // Callee frame above the stub; its return resumes the stub at pc=1,
  // exactly the doCallWithValues producer-frame pattern.
  uint32_t CFp = StubWords;
  Sl[CFp + FrameRetCode] = PromptStub;
  Sl[CFp + FrameRetPc] = Value::fixnum(1);
  CS.Fp = CFp;
  CS.Top = CFp + FrameHeaderWords;
  enterCall(Callee, std::move(Args), Site{SiteKind::Tail, 0});
}

Vector *VM::packDelimK(const PromptRecord &R, const DelimSlice &Slice,
                       std::vector<PromptRecord> &Saved,
                       Value RepushHandler) {
  // Marks naming a member that was deep-cloned are remapped onto the clone
  // so they stay live inside the package.
  for (PromptRecord &SR : Saved)
    for (const auto &[Orig, Clone] : Slice.Remapped)
      if (SR.Mark.identical(Value::object(Orig)))
        SR.Mark = Value::object(Clone);

  Vector *SavedVec =
      H.allocVector(static_cast<uint32_t>(Saved.size()) * DkSavedFields);
  for (size_t I = 0; I != Saved.size(); ++I) {
    SavedVec->Elems[I * DkSavedFields + 0] = Saved[I].Tag;
    SavedVec->Elems[I * DkSavedFields + 1] = Saved[I].Mark;
    SavedVec->Elems[I * DkSavedFields + 2] = Saved[I].Winders;
    SavedVec->Elems[I * DkSavedFields + 3] =
        Value::fixnum(static_cast<int64_t>(Saved[I].Id));
    SavedVec->Elems[I * DkSavedFields + 4] = Saved[I].Handler;
    SavedVec->Elems[I * DkSavedFields + 5] =
        Saved[I].Shallow ? Value::trueV() : Value::falseV();
  }

  Vector *Dk = H.allocVector(DkSlotCount);
  Dk->Elems[DkMarker] = Value::object(H.intern("#<delim-k>"));
  Dk->Elems[DkTop] = Slice.Top;
  Dk->Elems[DkBottom] =
      Slice.Bottom ? Value::object(Slice.Bottom) : Value();
  Dk->Elems[DkTag] = R.Tag;
  Dk->Elems[DkId] = Value::fixnum(static_cast<int64_t>(R.Id));
  Dk->Elems[DkWinders] = R.Winders;
  Dk->Elems[DkSaved] = Value::object(SavedVec);
  Dk->Elems[DkShot] = Value::falseV();
  Dk->Elems[DkOrigMark] = R.Mark;
  Dk->Elems[DkHandler] = RepushHandler;
  Dk->Elems[DkShallow] = R.Shallow ? Value::trueV() : Value::falseV();
  return Dk;
}

void VM::doReset(Value Tag, Value Thunk, Site St) {
  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  // The Mark: everything below the reset site.  One-shot on the real path;
  // the Config::DelimOneShot=false shim captures multi-shot so every later
  // reinstatement pays the Figure-3 copy — the baseline bench_control
  // compares against.
  Value Mark = Cfg.DelimOneShot ? CS.captureOneShot(Boundary, RetC, RetP)
                                : CS.captureMultiShot(Boundary, RetC, RetP);
  uint64_t Id = ++NextPromptId;
  Prompts.push({Tag, Mark, WindersSym->Global, Id, Value(), false});
  S.PromptResets += 1;
  OSC_TRACE(&Tr, TraceEvent::Reset, Id);
  enterWithPromptStub(Id, Thunk, {});
}

void VM::doShift(Value Tag, Value Receiver, Site St) {
  // Find the innermost live prompt for this tag *before* capturing: the
  // lookup validates that the record's Mark is still reachable from the
  // current chain (stale records from undelimited escapes are pruned).
  int64_t Idx = Prompts.findLive(Tag, CS.link());
  if (Idx < 0) {
    fail("shift: no reset for tag " + writeToString(Tag));
    return;
  }
  PromptRecord R = Prompts.at(static_cast<size_t>(Idx));

  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  Value KTop = Cfg.DelimOneShot ? CS.captureOneShot(Boundary, RetC, RetP)
                                : CS.captureMultiShot(Boundary, RetC, RetP);
  // After the capture the chain head is KTop; cut it down to the Mark and
  // abort the current (fresh) window to the prompt.
  DelimSlice Slice = cutSliceToMark(CS, KTop, R.Mark);
  CS.setLink(R.Mark);

  // Records above the found one belong to the slice (inner delimiters the
  // captured extent contains); they travel inside the package and are
  // re-pushed at splice time.
  std::vector<PromptRecord> Saved =
      Prompts.takeAbove(static_cast<size_t>(Idx));

  Vector *Dk = packDelimK(R, Slice, Saved, /*RepushHandler=*/R.Handler);

  S.SliceCaptures += 1;
  OSC_TRACE(&Tr, TraceEvent::Shift, R.Id, Slice.Members, Slice.Cloned);
  // The receiver runs back at the prompt, under a fresh stub frame for the
  // *same* record (the shift body stays delimited; its normal return pops
  // the record and underflows into the Mark).  It gets the package and the
  // reset-entry winders so the prelude can unwind the extent's after-thunks.
  enterWithPromptStub(R.Id, Receiver, {Value::object(Dk), R.Winders});
}

void VM::doWithHandler(Value Tag, Value Handler, Value Thunk, Value Shallow,
                       Site St) {
  // Identical to doReset except the record carries the handler procedure
  // (and the shallow-mode flag), making it a perform target.  Same Mark
  // capture, same stub frame, same one-shot/copying-shim split.
  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  Value Mark = Cfg.DelimOneShot ? CS.captureOneShot(Boundary, RetC, RetP)
                                : CS.captureMultiShot(Boundary, RetC, RetP);
  uint64_t Id = ++NextPromptId;
  bool Sh = Shallow.isTrue();
  Prompts.push({Tag, Mark, WindersSym->Global, Id, Handler, Sh});
  S.HandlersInstalled += 1;
  OSC_TRACE(&Tr, TraceEvent::Handle, Id, Sh ? 1 : 0);
  enterWithPromptStub(Id, Thunk, {});
}

void VM::doPerform(Value Tag, Value Receiver, Site St) {
  // Only records carrying a handler match: plain resets sharing the tag
  // are transparent to perform, so prompts and handlers nest freely.
  int64_t Idx = Prompts.findLive(Tag, CS.link(), /*RequireHandler=*/true);
  if (Idx < 0) {
    fail("perform: no handler for tag " + writeToString(Tag));
    return;
  }
  PromptRecord R = Prompts.at(static_cast<size_t>(Idx));

  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  Value KTop = Cfg.DelimOneShot ? CS.captureOneShot(Boundary, RetC, RetP)
                                : CS.captureMultiShot(Boundary, RetC, RetP);
  // Cut exactly like shift: the slice is the extent between the perform
  // site and the with-handler boundary, relinked — not copied — in the
  // one-shot steady state.
  DelimSlice Slice = cutSliceToMark(CS, KTop, R.Mark);
  CS.setLink(R.Mark);

  // Inner delimiters travel with the slice; the handler record itself is
  // POPPED (shift0 discipline).  The handler body therefore runs outside
  // its own delimiter: a clause that never invokes k is abortive for free,
  // and a re-perform inside the handler forwards to the next handler out.
  std::vector<PromptRecord> Saved =
      Prompts.takeAbove(static_cast<size_t>(Idx));
  Prompts.popThrough(R.Id);

  // Deep handlers resume under themselves: the splice re-pushes the record
  // with its handler intact.  Shallow handlers resume bare — decided here
  // at cut time, so the splice needs no mode dispatch.
  Vector *Dk = packDelimK(R, Slice, Saved,
                          /*RepushHandler=*/R.Shallow ? Value() : R.Handler);

  S.Performs += 1;
  S.SliceCaptures += 1;
  OSC_TRACE(&Tr, TraceEvent::Perform, R.Id, Slice.Members, Slice.Cloned);
  // The receiver runs at the prompt on a fresh *plain* base frame — no
  // stub, because the record is gone: a normal return from the handler IS
  // the with-handler form's return, underflowing straight into the Mark.
  CS.beginBaseFrame(FrameHeaderWords + 3);
  CS.plantBaseFrame();
  enterCall(Receiver, {R.Handler, Value::object(Dk), R.Winders},
            Site{SiteKind::Tail, 0});
}

void VM::doDelimInvoke(Value DkV, Value V, Site St) {
  auto *Dk = dynObj<Vector>(DkV);
  if (!Dk || Dk->Len != DkSlotCount ||
      !Dk->Elems[DkMarker].identical(Value::object(H.intern("#<delim-k>")))) {
    fail("%delim-invoke: not a delimited continuation: " +
         writeToString(DkV));
    return;
  }
  if (Dk->Elems[DkShot].isTrue()) {
    // Delimited continuations inherit the substrate's one-shot discipline;
    // the flag (not markShot) carries the check so the error is identical
    // under the copying shim.
    fail("delimited continuation invoked a second time");
    return;
  }
  Dk->Elems[DkShot] = Value::trueV();
  uint64_t Id = static_cast<uint64_t>(Dk->Elems[DkId].asFixnum());

  if (Dk->Elems[DkTop].isEmpty()) {
    // Empty slice: (shift t k ...) sat in tail position at its prompt, so
    // "the rest of the extent" is the identity; re-establishing a prompt
    // around an empty computation is unobservable.
    S.SliceSplices += 1;
    OSC_TRACE(&Tr, TraceEvent::Splice, Id, 0);
    nativeReturn(V, St);
    return;
  }

  uint32_t Boundary;
  Value RetC;
  int64_t RetP;
  siteCapturePoint(St, Boundary, RetC, RetP);
  if (Cfg.DelimOneShot)
    CS.captureOneShot(Boundary, RetC, RetP);
  else
    CS.captureMultiShot(Boundary, RetC, RetP);
  Value NewLink = CS.link(); // The continuation of the (k v) call itself.

  // Re-establish the delimiter at the splice point: same tag, same id,
  // reset-entry winders, but the Mark is *here* now — an inner shift after
  // resumption cuts back to this invoke site.  DkHandler rides along, which
  // is what makes deep handlers deep: resuming a deep handler's k puts the
  // handler back over the slice, while a shallow handler's k (and a plain
  // shift's k over a reset) re-pushes a bare prompt.  Then the inner
  // records the slice carried, innermost last, dead-end Marks remapped too.
  Prompts.push({Dk->Elems[DkTag], NewLink, Dk->Elems[DkWinders], Id,
                Dk->Elems[DkHandler], Dk->Elems[DkShallow].isTrue()});
  auto *SavedVec = castObj<Vector>(Dk->Elems[DkSaved]);
  for (uint32_t I = 0; I + DkSavedFields <= SavedVec->Len;
       I += DkSavedFields) {
    Value SMark = SavedVec->Elems[I + 1].identical(Dk->Elems[DkOrigMark])
                      ? NewLink
                      : SavedVec->Elems[I + 1];
    Prompts.push({SavedVec->Elems[I + 0], SMark, SavedVec->Elems[I + 2],
                  static_cast<uint64_t>(SavedVec->Elems[I + 3].asFixnum()),
                  SavedVec->Elems[I + 4], SavedVec->Elems[I + 5].isTrue()});
  }

  // The one-shot reinstatement half of the Figure-3 idiom: one link store
  // splices the whole slice in front of the invoke-site continuation, then
  // the slice top resumes with a zero-copy invoke (it is marked shot on the
  // way, poisoning reuse at the substrate level as well).
  auto *Bottom = castObj<Continuation>(Dk->Elems[DkBottom]);
  DelimSlice Slice;
  Slice.Bottom = Bottom;
  spliceOntoMark(Slice, NewLink);
  S.SliceSplices += 1;
  if (Tr.enabled()) {
    uint32_t Members = 1;
    for (Value C = Dk->Elems[DkTop]; !C.identical(Dk->Elems[DkBottom]);
         ++Members)
      C = castObj<Continuation>(C)->Link;
    Tr.emit(TraceEvent::Splice, Id, Members);
  }
  invokeContinuationWithValues(castObj<Continuation>(Dk->Elems[DkTop]), {V});
}

void VM::enterCall(Value Callee, std::vector<Value> Args, Site St) {
  for (;;) {
    if (Failed || Halted)
      return;
    uint32_t N = static_cast<uint32_t>(Args.size());

    if (auto *K = dynObj<Continuation>(Callee)) {
      invokeContinuationWithValues(K, Args);
      return;
    }

    if (auto *Nat = dynObj<Native>(Callee)) {
      if (N < Nat->MinArgs ||
          (Nat->MaxArgs >= 0 && N > static_cast<uint32_t>(Nat->MaxArgs))) {
        fail(arityMessage(Callee, N));
        return;
      }
      switch (Nat->Special) {
      case NativeSpecial::None:
        Acc = Nat->Fn(*this, Args.data(), N);
        NumValues = 1;
        if (Failed)
          return;
        if (St.Kind == SiteKind::NonTail) {
          CS.Top = CS.Fp + St.D;
          return;
        }
        returnValues();
        return;
      case NativeSpecial::Apply: {
        // (apply f a b ... rest-list)
        Value F = Args[0];
        std::vector<Value> Flat(Args.begin() + 1, Args.end() - 1);
        Value L = Args.back();
        if (!listToVector(L, Flat)) {
          fail("apply: last argument is not a proper list");
          return;
        }
        Callee = F;
        Args = std::move(Flat);
        continue;
      }
      case NativeSpecial::Values:
        setValues(Args.data(), N);
        if (St.Kind == SiteKind::NonTail) {
          CS.Top = CS.Fp + St.D;
          return;
        }
        returnValues();
        return;
      case NativeSpecial::CallCC:
        captureAndCall(/*OneShot=*/false, Args[0], St);
        return;
      case NativeSpecial::Call1CC:
        captureAndCall(/*OneShot=*/true, Args[0], St);
        return;
      case NativeSpecial::CallWithValues:
        doCallWithValues(Args[0], Args[1], St);
        return;
      case NativeSpecial::SchedRun:
        schedRun(Args[0], St);
        return;
      case NativeSpecial::SchedYield:
        schedYield(St);
        return;
      case NativeSpecial::SchedExit:
        schedExit(Args[0]);
        return;
      case NativeSpecial::SchedJoin:
        schedJoin(Args[0], St);
        return;
      case NativeSpecial::SchedSleep:
        schedSleep(Args[0], St);
        return;
      case NativeSpecial::ChanSend:
        chanSend(Args[0], Args[1], St);
        return;
      case NativeSpecial::ChanRecv:
        chanRecv(Args[0], St);
        return;
      case NativeSpecial::IoReadLine:
        ioReadLine(Args[0], St);
        return;
      case NativeSpecial::IoWrite:
        ioWrite(Args[0], Args[1], St);
        return;
      case NativeSpecial::IoAccept:
        ioAccept(Args[0], St);
        return;
      case NativeSpecial::IoTakeConn:
        ioTakeConn(St);
        return;
      case NativeSpecial::Reset:
        doReset(Args[0], Args[1], St);
        return;
      case NativeSpecial::Shift:
        doShift(Args[0], Args[1], St);
        return;
      case NativeSpecial::DelimInvoke:
        doDelimInvoke(Args[0], Args[1], St);
        return;
      case NativeSpecial::WithHandler:
        doWithHandler(Args[0], Args[1], Args[2], Args[3], St);
        return;
      case NativeSpecial::Perform:
        doPerform(Args[0], Args[1], St);
        return;
      }
      oscUnreachable("bad NativeSpecial");
    }

    if (auto *Cl = dynObj<Closure>(Callee)) {
      buildFrame(St, Args.data(), N, calleeNeed(Callee, N));
      enterClosure(Cl, N);
      return;
    }

    fail("attempt to apply non-procedure " + writeToString(Callee));
    return;
  }
}

// --- Green-thread scheduler glue (src/sched) --------------------------------
//
// The Scheduler object decides *what* runs next; every actual control
// transfer happens here, built from the same two operations as call/1cc:
// captureOneShot to park the running computation and the one-shot invoke
// path to reinstate the next.  A steady-state switch is therefore a pair of
// pointer swaps — WordsCopied does not move (bench/bench_scheduler.cpp and
// the `sched` tests assert this).

void VM::nativeReturn(Value V, Site St) {
  // Mirrors how enterCall returns an ordinary native's result: either pop
  // back to the caller's frame extent or perform a full tail return.
  Acc = V;
  NumValues = 1;
  if (St.Kind == SiteKind::NonTail) {
    CS.Top = CS.Fp + St.D;
    return;
  }
  returnValues();
}

void VM::schedSaveContext(SchedContext &C) {
  C.Winders = WindersSym->Global;
  C.Nursery = NurserySym->Global;
  C.Prompts = std::move(Prompts);
  Prompts.clear();
  C.Fuel = Fuel;
  C.TimerExpired = TimerExpired;
  C.TimerHandler = TimerHandler;
  Fuel = -1;
  TimerExpired = false;
  TimerHandler = Value();
}

void VM::schedRestoreContext(const SchedContext &C, bool FreshSlice) {
  WindersSym->Global = C.Winders;
  NurserySym->Global = C.Nursery.isEmpty() ? Value::falseV() : C.Nursery;
  Prompts = C.Prompts;
  if (FreshSlice && C.TimerHandler.isEmpty()) {
    // Ordinary thread: it gets a full preemption slice.  A context with an
    // armed engine handler instead resumes under its own timer — an engine
    // running inside a thread keeps its engine semantics.
    TimerHandler = Value();
    TimerExpired = false;
    Fuel = Sched->interval() > 0 ? Sched->interval() : -1;
    return;
  }
  Fuel = C.Fuel;
  TimerExpired = C.TimerExpired;
  TimerHandler = C.TimerHandler;
}

void VM::schedSuspendAndDispatch(Value K, Value Wake, ThreadState NewState) {
  schedSaveContext(Sched->current()->Ctx);
  Sched->suspendCurrent(K, Wake, NewState);
  schedDispatch();
}

void VM::schedDispatch() {
  for (;;) {
    Scheduler::Next N = Sched->pickNext();
    switch (N.K) {
    case Scheduler::Next::Start: {
      Scheduler::Thread &T = *N.T;
      S.ContextSwitches += 1;
      Value Thunk = T.Thunk;
      T.Thunk = Value();
      T.Started = true;
      // Fresh dynamic context: the winder list scheduler-run was entered
      // under, the nursery the spawner held at spawn time (spawnThread
      // stashed it in the child's saved context), no inherited prompts,
      // and a full preemption slice.
      WindersSym->Global = Sched->baseWinders();
      NurserySym->Global =
          T.Ctx.Nursery.isEmpty() ? Value::falseV() : T.Ctx.Nursery;
      Prompts.clear();
      TimerHandler = Value();
      TimerExpired = false;
      Fuel = Sched->interval() > 0 ? Sched->interval() : -1;
      // The thread runs on a fresh chain rooted at the thread guard, so
      // returning from the thunk is recognized as thread exit rather than
      // an underflow into whatever computation was current before.
      CS.beginBaseFrame(FrameHeaderWords + 2);
      CS.setLink(ThreadGuard);
      CS.plantBaseFrame();
      enterCall(Thunk, {}, Site{SiteKind::Tail, 0});
      return;
    }
    case Scheduler::Next::Resume: {
      Scheduler::Thread &T = *N.T;
      if (!T.EscapeProc.isEmpty()) {
        // A deadline fired while this thread was parked.  Its one-shot
        // resume point is already poisoned (markShot — it can never be
        // reinstated), so instead of invoking it we run the armed escape
        // thunk on a fresh guard-rooted chain under the thread's restored
        // dynamic context: the thunk unwinds via the with-deadline
        // extent's one-shot k, running pending after-thunks on the way.
        S.ContextSwitches += 1;
        Value Esc = T.EscapeProc;
        T.EscapeProc = Value();
        T.Resume = Value();
        T.Wake = Value();
        schedRestoreContext(T.Ctx, /*FreshSlice=*/true);
        T.Ctx = SchedContext();
        CS.beginBaseFrame(FrameHeaderWords + 2);
        CS.setLink(ThreadGuard);
        CS.plantBaseFrame();
        enterCall(Esc, {}, Site{SiteKind::Tail, 0});
        return;
      }
      if (!T.PendingError.empty()) {
        // The operation this thread was parked on failed underneath it
        // (channel closed under a parked send, EPIPE under a parked
        // write).  Raise it as the run's error, like any in-thread error.
        std::string E = T.PendingError;
        ErrorKind EK = T.PendingErrorKind;
        abortScheduler();
        fail(E, EK);
        return;
      }
      if (T.Resume.identical(ThreadGuard)) {
        // The thread was suspended at its own base frame (its capture
        // degenerated to the chain link): waking it means returning the
        // wake value from the thread's root, i.e. the thread is done.
        Value W = T.Wake;
        Sched->finishCurrent(W);
        continue;
      }
      S.ContextSwitches += 1;
      Value K = T.Resume;
      Value W = T.Wake;
      T.Resume = Value();
      T.Wake = Value();
      schedRestoreContext(T.Ctx, /*FreshSlice=*/true);
      T.Ctx = SchedContext();
      invokeContinuationWithValues(castObj<Continuation>(K), {W});
      return;
    }
    case Scheduler::Next::Finish: {
      // Every thread completed: resume the suspended caller of
      // scheduler-run with the number of threads that ran.
      S.ContextSwitches += 1;
      Value K = Sched->mainK();
      Value Count = Value::fixnum(static_cast<int64_t>(Sched->completed()));
      schedRestoreContext(Sched->mainContext(), /*FreshSlice=*/false);
      Sched->endRun();
      if (auto *Kc = dynObj<Continuation>(K)) {
        invokeContinuationWithValues(Kc, {Count});
        return;
      }
      fail("scheduler: lost the main continuation");
      return;
    }
    case Scheduler::Next::Deadlock: {
      if (Rx->waiterCount() > 0) {
        // Not a structural deadlock: threads are parked on fd readiness,
        // which an external peer (or another port in this program) can
        // still provide.  Block in poll(2) until one wakes.
        if (ioPollAndWake(Cfg.IoPollTimeoutMs))
          continue;
        if (ConnQ && !ConnQ->closed() && Rx->hasWaiter(IoOp::TakeConn)) {
          // A pool worker idling on io-take-conn is not stuck: the accept
          // thread can hand off a connection at any time.  Outwait the
          // timeout instead of failing the shard.
          continue;
        }
        size_t NParked = Rx->waiterCount();
        abortScheduler();
        fail("io: poll timed out with " + std::to_string(NParked) +
                 " thread(s) parked on I/O",
             ErrorKind::Timeout);
        return;
      }
      uint32_t NBlocked = Sched->blockedCount();
      abortScheduler();
      fail("scheduler: deadlock: " + std::to_string(NBlocked) +
           " thread(s) blocked with an empty run queue");
      return;
    }
    }
  }
}

void VM::schedRun(Value IntervalV, Site St) {
  if (!IntervalV.isFixnum()) {
    fail("scheduler-run: interval must be a fixnum, got " +
         writeToString(IntervalV));
    return;
  }
  if (Sched->active()) {
    fail("scheduler-run: the scheduler is already running");
    return;
  }
  if (Sched->readyCount() == 0) {
    nativeReturn(Value::fixnum(0), St); // Nothing spawned: trivial run.
    return;
  }
  Value MainK = captureSiteOneShot(St);
  Sched->beginRun(MainK, IntervalV.asFixnum(), WindersSym->Global);
  schedSaveContext(Sched->mainContext());
  schedDispatch();
}

void VM::schedYield(Site St) {
  if (!Sched->inThread()) {
    nativeReturn(Value::unspecified(), St); // Harmless outside a run.
    return;
  }
  S.VoluntaryYields += 1;
  if (Sched->readyCount() == 0 && Sched->sleeperCount() == 0) {
    nativeReturn(Value::unspecified(), St); // Nobody to switch to.
    return;
  }
  Value K = captureSiteOneShot(St);
  schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Ready);
}

void VM::schedExit(Value V) {
  if (!Sched->inThread()) {
    fail("thread-exit: no current thread");
    return;
  }
  // Note: like an engine being killed, exiting skips any pending
  // dynamic-wind after-thunks of the thread; the thread's winder list dies
  // with it (docs/INTERNALS.md, § Scheduler).
  Sched->finishCurrent(V);
  schedDispatch();
}

void VM::schedJoin(Value TidV, Site St) {
  Scheduler::Thread *T =
      TidV.isFixnum() ? Sched->lookup(TidV.asFixnum()) : nullptr;
  if (!T) {
    fail("thread-join: not a thread id: " + writeToString(TidV));
    return;
  }
  if (T->State == ThreadState::Done) {
    nativeReturn(T->Result, St); // Join of a finished thread never blocks.
    return;
  }
  if (!Sched->inThread()) {
    fail("thread-join: thread " + std::to_string(T->Id) +
         " has not finished and no scheduler is running "
         "(call scheduler-run first)");
    return;
  }
  if (T == Sched->current()) {
    fail("thread-join: a thread cannot join itself");
    return;
  }
  T->Joiners.push_back(Sched->current()->Id);
  Value K = captureSiteOneShot(St);
  schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Blocked);
}

void VM::schedSleep(Value TicksV, Site St) {
  if (!TicksV.isFixnum() || TicksV.asFixnum() < 0) {
    fail("thread-sleep!: expected a non-negative number of ticks, got " +
         writeToString(TicksV));
    return;
  }
  if (!Sched->inThread()) {
    fail("thread-sleep!: no current thread");
    return;
  }
  int64_t Ticks = TicksV.asFixnum();
  if (Ticks == 0) {
    nativeReturn(Value::unspecified(), St);
    return;
  }
  Sched->current()->SleepLeft = Ticks;
  Value K = captureSiteOneShot(St);
  schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Sleeping);
}

Value VM::spawnThread(Value Thunk) {
  uint32_t Tid = Sched->spawn(Thunk);
  Scheduler::Thread *T = Sched->lookup(Tid);
  // Structured concurrency happens at spawn time, not start time: the child
  // inherits the spawner's *nursery* through its saved context (the Start
  // dispatch installs it), and an open nursery records the child so the
  // scope's exit can cancel it.  Doing this here rather than in a prelude
  // wrapper keeps spawn a single native call — programs that never open a
  // nursery execute exactly the same call sequence as before.
  Value N = NurserySym->Global;
  T->Ctx.Nursery = N;
  if (auto *Rec = dynObj<Vector>(N);
      Rec && Rec->Len >= 3 && Rec->Elems[2].isTrue())
    Rec->Elems[0] =
        Value::object(H.allocPair(Value::fixnum(Tid), Rec->Elems[0]));
  return Value::fixnum(Tid);
}

Value VM::threadCancel(Value TidV) {
  Scheduler::Thread *T =
      TidV.isFixnum() ? Sched->lookup(TidV.asFixnum()) : nullptr;
  if (!T) {
    fail("%thread-cancel!: not a thread id: " + writeToString(TidV));
    return Value();
  }
  if (T->State == ThreadState::Done || T == Sched->current())
    return Value::boolean(false);
  // Deadline-style poisoning (fireThreadDeadline's idiom): mark the parked
  // one-shot resume point shot without reinstating it.  The abandoned
  // suspension can never run again and its stack window is reclaimed by GC
  // — the cancellation copies zero words.
  if (auto *K = dynObj<Continuation>(T->Resume); K && !K->isShot())
    K->markShot();
  // Detach from every structure that could still wake or complete it:
  // channel wait queues and the reactor's waiter registry (fd waits and
  // armed Timer records alike).
  Sched->dropFromChannels(T->Id);
  Rx->dropWaitersFor(T->Id);
  Value Cancelled = Value::object(H.intern("cancelled"));
  return Value::boolean(Sched->cancel(*T, Cancelled));
}

void VM::chanSend(Value ChV, Value V, Site St) {
  Channel *Ch = ChV.isFixnum() ? Sched->channel(ChV.asFixnum()) : nullptr;
  if (!Ch) {
    fail("channel-send!: not a channel: " + writeToString(ChV));
    return;
  }
  if (Ch->closed()) {
    fail("channel-send!: channel " + std::to_string(Ch->id()) + " is closed");
    return;
  }
  Channel::SendResult R = Ch->trySend(V);
  switch (R.K) {
  case Channel::SendResult::Delivered: {
    // A parked receiver takes the value directly; it becomes runnable and
    // its channel-recv call will return V.
    S.ChannelMessages += 1;
    Scheduler::Thread *Rx = Sched->lookup(R.WokenReceiver);
    Sched->wake(*Rx, V);
    nativeReturn(Value::unspecified(), St);
    return;
  }
  case Channel::SendResult::Buffered:
    S.ChannelMessages += 1;
    nativeReturn(Value::unspecified(), St);
    return;
  case Channel::SendResult::MustBlock: {
    if (!Sched->inThread()) {
      fail("channel-send!: channel " + std::to_string(Ch->id()) +
           " is full and no scheduler is running");
      return;
    }
    S.ChannelBlocks += 1;
    Ch->blockSender(Sched->current()->Id, V);
    armBlockTimer();
    Value K = captureSiteOneShot(St);
    schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Blocked);
    return;
  }
  }
}

void VM::chanRecv(Value ChV, Site St) {
  Channel *Ch = ChV.isFixnum() ? Sched->channel(ChV.asFixnum()) : nullptr;
  if (!Ch) {
    fail("channel-recv: not a channel: " + writeToString(ChV));
    return;
  }
  Channel::RecvResult R = Ch->tryRecv();
  if (R.K == Channel::RecvResult::Got) {
    if (R.WakeSender) {
      // A parked sender's value was accepted (into the buffer, or directly
      // on a rendezvous channel): its channel-send! call completes now.
      S.ChannelMessages += 1;
      Scheduler::Thread *Tx = Sched->lookup(R.WokenSender);
      Sched->wake(*Tx, Value::unspecified());
    }
    nativeReturn(R.V, St);
    return;
  }
  if (Ch->closed()) {
    // A closed channel reads like a stream at end: the buffer (already
    // drained above) then EOF forever.
    nativeReturn(EofObj, St);
    return;
  }
  if (!Sched->inThread()) {
    fail("channel-recv: channel " + std::to_string(Ch->id()) +
         " is empty and no scheduler is running");
    return;
  }
  S.ChannelBlocks += 1;
  Ch->blockReceiver(Sched->current()->Id);
  armBlockTimer();
  Value K = captureSiteOneShot(St);
  schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Blocked);
}

// --- I/O reactor glue (src/io) ----------------------------------------------
//
// The same park shape as a channel block, with fd readiness as the wake
// condition: try the non-blocking half; if it would block inside a green
// thread, register a PendingIo with the reactor, capture the rest of the
// thread one-shot and dispatch away.  When the run queue drains the
// dispatch loop polls the reactor, re-runs the non-blocking half of each
// ready operation (ioComplete) and wakes its thread — a reinstatement
// that, like every native context switch, copies zero stack words.  The
// main computation (no scheduler) blocks inline in poll(2) instead.

namespace {

/// The port argument of an I/O primitive, or null after VM::fail.
Port *ioPortArg(VM &Vm, const char *Who, Value PortV, Port::Kind Want) {
  Port *P = PortV.isFixnum() ? Vm.reactor().port(PortV.asFixnum()) : nullptr;
  if (!P) {
    Vm.fail(std::string(Who) + ": not a port: " + writeToString(PortV),
            ErrorKind::Io);
    return nullptr;
  }
  if (P->kind() != Want) {
    Vm.fail(std::string(Who) + ": port " + std::to_string(P->id()) +
                (Want == Port::Kind::Listener ? " is not a listener"
                                              : " is not a stream"),
            ErrorKind::Io);
    return nullptr;
  }
  return P;
}

} // namespace

void VM::ioPark(Port *P, int OpRaw, Site St) {
  S.IoParks += 1;
  Scheduler::Thread *T = Sched->current();
  uint32_t Tid = T->Id;
  OSC_TRACE(&Tr, TraceEvent::IoWait, P->id(), static_cast<uint64_t>(OpRaw),
            Tid);
  // Earliest of the thread's armed with-deadline extent and the port's own
  // per-park deadline (slow-client defense); 0 parks untimed.
  uint64_t Tick = currentDeadlineTick();
  if (P->deadlineTicks()) {
    uint64_t PortTick = Rx->nowTick() + P->deadlineTicks();
    if (!Tick || PortTick < Tick)
      Tick = PortTick;
  }
  T->ParkSeq += 1;
  Rx->park(Tid, P->id(), static_cast<IoOp>(OpRaw), Tick, T->ParkSeq);
  if (Rx->waiterCount() > S.IoWaitPeak)
    S.IoWaitPeak = Rx->waiterCount();
  if (Tick && Rx->timedWaiterCount() > S.IoWaitDeadlinePeak)
    S.IoWaitDeadlinePeak = Rx->timedWaiterCount();
  Value K = captureSiteOneShot(St);
  schedSuspendAndDispatch(K, Value::unspecified(), ThreadState::Blocked);
}

void VM::ioReadLine(Value PortV, Site St) {
  Port *P = ioPortArg(*this, "io-read-line", PortV, Port::Kind::Stream);
  if (!P)
    return;
  for (;;) {
    std::string Line;
    if (P->takeLine(Line)) {
      nativeReturn(Value::object(H.allocString(Line)), St);
      return;
    }
    if (P->closed() || P->atEof()) {
      nativeReturn(EofObj, St);
      return;
    }
    uint64_t NIn = 0;
    Port::Io R = P->fillInput(NIn);
    S.BytesRead += NIn;
    if (R == Port::Io::Error) {
      fail("io-read-line: port " + std::to_string(P->id()) + ": " +
               P->lastError(),
           ErrorKind::Io);
      return;
    }
    if (R == Port::Io::WouldBlock) {
      if (Sched->inThread()) {
        ioPark(P, static_cast<int>(IoOp::ReadLine), St);
        return;
      }
      if (!pollOneFd(P->fd(), /*ForWrite=*/false, Cfg.IoPollTimeoutMs)) {
        fail("io-read-line: timed out waiting on port " +
                 std::to_string(P->id()),
             ErrorKind::Timeout);
        return;
      }
    }
    // Progress or Eof: retry takeLine on the refilled buffer.
  }
}

void VM::ioWrite(Value PortV, Value StrV, Site St) {
  Port *P = ioPortArg(*this, "io-write", PortV, Port::Kind::Stream);
  if (!P)
    return;
  auto *Str = dynObj<String>(StrV);
  if (!Str) {
    fail("io-write: not a string: " + writeToString(StrV));
    return;
  }
  if (!P->queueOutput(Str->view())) {
    // The bounded output buffer is full: the peer is not draining what we
    // already owe it.  Buffering without bound would let one slow client
    // hold arbitrary memory, so the connection is dropped instead; the
    // caller sees #f (a dropped connection is an expected overload
    // outcome, not a run error).
    ioDropPort(P, /*Reason=*/0);
    nativeReturn(Value::boolean(false), St);
    return;
  }
  for (;;) {
    uint64_t NOut = 0;
    Port::Io R = P->flushOutput(NOut);
    S.BytesWritten += NOut;
    if (R == Port::Io::Progress) {
      nativeReturn(Value::unspecified(), St);
      return;
    }
    if (R == Port::Io::Error) {
      fail("io-write: port " + std::to_string(P->id()) + ": " +
               P->lastError(),
           ErrorKind::Io);
      return;
    }
    if (Sched->inThread()) {
      ioPark(P, static_cast<int>(IoOp::Write), St);
      return;
    }
    if (!pollOneFd(P->fd(), /*ForWrite=*/true, Cfg.IoPollTimeoutMs)) {
      fail("io-write: timed out waiting on port " + std::to_string(P->id()),
           ErrorKind::Timeout);
      return;
    }
  }
}

void VM::ioAccept(Value PortV, Site St) {
  Port *P = ioPortArg(*this, "io-accept", PortV, Port::Kind::Listener);
  if (!P)
    return;
  for (;;) {
    if (P->closed()) {
      nativeReturn(EofObj, St); // Listener closed: the accept loop is over.
      return;
    }
    int NewFd = P->acceptConn();
    if (NewFd >= 0) {
      uint32_t NewId = Rx->addPort(NewFd, Port::Kind::Stream);
      S.AcceptedConnections += 1;
      OSC_TRACE(&Tr, TraceEvent::Accept, P->id(), NewId);
      nativeReturn(Value::fixnum(NewId), St);
      return;
    }
    if (NewFd == -2) {
      fail("io-accept: port " + std::to_string(P->id()) + ": " +
               P->lastError(),
           ErrorKind::Io);
      return;
    }
    if (Sched->inThread()) {
      ioPark(P, static_cast<int>(IoOp::Accept), St);
      return;
    }
    if (!pollOneFd(P->fd(), /*ForWrite=*/false, Cfg.IoPollTimeoutMs)) {
      fail("io-accept: timed out waiting on port " + std::to_string(P->id()),
           ErrorKind::Timeout);
      return;
    }
  }
}

bool VM::attachConnQueue(ConnQueue *Q, std::string &Err) {
  if (Q && !Rx->enableWakeup(Err))
    return false;
  ConnQ = Q;
  return true;
}

bool VM::attachConnQueue(ConnQueue *Q, int WakeReadFd, int WakeWriteFd,
                         std::string &Err) {
  if (Q && !Rx->enableWakeupFrom(WakeReadFd, WakeWriteFd, Err))
    return false;
  ConnQ = Q;
  return true;
}

Value VM::ioTryTakeConn() {
  // Drain *before* checking the queue: a notify() that lands after the
  // pop() below leaves its byte in the pipe, so the next poll still wakes.
  // Draining after would open a lost-wakeup window.
  Rx->drainWakeup();
  ConnQueue::Pop R = ConnQ->pop();
  if (R.Fd >= 0) {
    uint32_t NewId = Rx->addAdoptedPort(R.Fd, Port::Kind::Stream);
    S.AcceptedConnections += 1;
    // Same event as io-accept; p0 is the wakeup port standing in for the
    // (remote) listener.  Port ids, never fds, so dumps stay deterministic.
    OSC_TRACE(&Tr, TraceEvent::Accept,
              static_cast<uint32_t>(Rx->wakeupPortId()), NewId);
    if (ConnQ->size() > 0)
      Rx->notify(); // The drain may have eaten other handoffs' bytes; re-arm.
    return Value::fixnum(NewId);
  }
  if (R.Closed)
    return EofObj;
  return Value(); // Empty and still open: the caller parks.
}

void VM::ioTakeConn(Site St) {
  if (!ConnQ || Rx->wakeupPortId() < 0) {
    fail("io-take-conn: no connection queue attached", ErrorKind::Io);
    return;
  }
  Port *Wk = Rx->port(Rx->wakeupPortId());
  for (;;) {
    Value V = ioTryTakeConn();
    if (!V.isEmpty()) {
      nativeReturn(V, St);
      return;
    }
    if (Sched->inThread()) {
      ioPark(Wk, static_cast<int>(IoOp::TakeConn), St);
      return;
    }
    // Main computation: block inline on the wakeup pipe, like any other
    // main-computation I/O.  The idle-worker exemption lives in the
    // scheduler's Deadlock branch, not here: a bare main-loop take-conn
    // honors the configured timeout.
    if (!pollOneFd(Wk->fd(), /*ForWrite=*/false, Cfg.IoPollTimeoutMs)) {
      fail("io-take-conn: timed out waiting for a handoff",
           ErrorKind::Timeout);
      return;
    }
  }
}

bool VM::ioComplete(const PendingIo &P) {
  Scheduler::Thread *T = Sched->lookup(P.Tid);
  if (!T || T->State != ThreadState::Blocked)
    return false; // Stale waiter (its thread was dropped by an abort).
  Port *Pt = Rx->port(P.PortId);

  auto WakeWith = [&](Value V) {
    S.IoWakes += 1;
    OSC_TRACE(&Tr, TraceEvent::IoReady, P.PortId,
              static_cast<uint64_t>(P.Op), P.Tid);
    Sched->wake(*T, V);
    return true;
  };
  auto Poison = [&](const std::string &E) {
    T->PendingError = E;
    T->PendingErrorKind = ErrorKind::Io;
    return WakeWith(Value::unspecified());
  };

  switch (P.Op) {
  case IoOp::ReadLine: {
    std::string Line;
    if (Pt->takeLine(Line))
      return WakeWith(Value::object(H.allocString(Line)));
    if (Pt->closed() || Pt->atEof())
      return WakeWith(EofObj);
    uint64_t NIn = 0;
    Port::Io R = Pt->fillInput(NIn);
    S.BytesRead += NIn;
    if (Pt->takeLine(Line))
      return WakeWith(Value::object(H.allocString(Line)));
    if (R == Port::Io::Eof)
      return WakeWith(EofObj); // No terminated tail either: end of stream.
    if (R == Port::Io::Error)
      return Poison("io-read-line: port " + std::to_string(Pt->id()) + ": " +
                    Pt->lastError());
    Rx->repark(P); // Bytes (or none) but no full line yet.
    return false;
  }
  case IoOp::Write: {
    if (Pt->closed())
      return Poison("io-write: port " + std::to_string(Pt->id()) +
                    " was closed while a write was parked");
    uint64_t NOut = 0;
    Port::Io R = Pt->flushOutput(NOut);
    S.BytesWritten += NOut;
    if (R == Port::Io::Progress)
      return WakeWith(Value::unspecified());
    if (R == Port::Io::Error)
      return Poison("io-write: port " + std::to_string(Pt->id()) + ": " +
                    Pt->lastError());
    Rx->repark(P);
    return false;
  }
  case IoOp::Accept: {
    if (Pt->closed())
      return WakeWith(EofObj);
    int NewFd = Pt->acceptConn();
    if (NewFd >= 0) {
      uint32_t NewId = Rx->addPort(NewFd, Port::Kind::Stream);
      S.AcceptedConnections += 1;
      S.AcceptBatches += 1;
      OSC_TRACE(&Tr, TraceEvent::Accept, Pt->id(), NewId);
      return WakeWith(Value::fixnum(NewId));
    }
    if (NewFd == -2)
      return Poison("io-accept: port " + std::to_string(Pt->id()) + ": " +
                    Pt->lastError());
    Rx->repark(P);
    return false;
  }
  case IoOp::TakeConn: {
    if (!ConnQ)
      return Poison("io-take-conn: the connection queue was detached while "
                    "a take was parked");
    Value V = ioTryTakeConn();
    if (!V.isEmpty()) {
      // One park-wake that delivered a connection = one batch; handoffs
      // taken without re-parking (the loop in ioTakeConn / the non-empty
      // tries above) ride the same batch, so Accepted/Batches measures
      // how many fds each wakeup carried.
      if (V.isFixnum())
        S.AcceptBatches += 1;
      return WakeWith(V);
    }
    Rx->repark(P); // Spurious wakeup (another waiter won the race).
    return false;
  }
  }
  oscUnreachable("bad IoOp");
}

// --- The deadline wheel (timed parks, with-deadline, slow-client reaping) ----

uint64_t VM::msToTicks(int64_t Ms) const {
  int64_t Per = Cfg.PollTickMs > 0 ? Cfg.PollTickMs : 1;
  int64_t T = Ms / Per;
  return T < 1 ? 1 : static_cast<uint64_t>(T);
}

Value VM::deadlinePush(Value MsV, Value Proc) {
  if (!MsV.isFixnum() || MsV.asFixnum() < 0) {
    fail("with-deadline: milliseconds must be a non-negative fixnum, got " +
         writeToString(MsV));
    return Value::unspecified();
  }
  uint64_t Id = ++NextDeadlineId;
  // Outside a green thread there is no park to cancel, so the record is
  // not armed — but a fresh id is still returned so the surrounding
  // dynamic-wind's push/pop stays balanced.
  if (Sched->inThread())
    Sched->current()->Deadlines.push_back(
        {Id, Rx->nowTick() + msToTicks(MsV.asFixnum()), Proc});
  return Value::fixnum(static_cast<int64_t>(Id));
}

Value VM::deadlinePop(Value IdV) {
  Scheduler::Thread *T = Sched->current();
  if (!T || !IdV.isFixnum())
    return Value::boolean(false);
  uint64_t Id = static_cast<uint64_t>(IdV.asFixnum());
  auto &Ds = T->Deadlines;
  // By id, innermost first — never by position, so the pop survives any
  // one-shot escape that already removed or reordered inner extents.
  for (auto It = Ds.end(); It != Ds.begin();) {
    --It;
    if (It->Id == Id) {
      Ds.erase(It);
      return Value::boolean(true);
    }
  }
  return Value::boolean(false);
}

uint64_t VM::currentDeadlineTick() {
  Scheduler::Thread *T = Sched->current();
  if (!T)
    return 0;
  uint64_t Min = 0;
  for (const Scheduler::DeadlineRec &D : T->Deadlines)
    if (!Min || D.Tick < Min)
      Min = D.Tick;
  return Min;
}

void VM::armBlockTimer() {
  uint64_t Tick = currentDeadlineTick();
  if (!Tick)
    return;
  // The thread is about to block on a channel — somewhere the reactor
  // cannot see — under an armed with-deadline.  An fd-less Timer waiter
  // carries the deadline into the poll loop; the park generation lets a
  // timer whose thread already woke through the channel be discarded as
  // stale at expiry (lazy cancellation: timers are never searched for).
  Scheduler::Thread *T = Sched->current();
  T->ParkSeq += 1;
  Rx->parkTimer(T->Id, Tick, T->ParkSeq);
  if (Rx->timedWaiterCount() > S.IoWaitDeadlinePeak)
    S.IoWaitDeadlinePeak = Rx->timedWaiterCount();
}

bool VM::fireThreadDeadline(uint32_t Tid, uint32_t PortId, int OpRaw) {
  Scheduler::Thread *T = Sched->lookup(Tid);
  if (!T || T->State != ThreadState::Blocked)
    return false;
  // The record to honor: earliest expiry tick, innermost extent (highest
  // id) on ties.  It is NOT popped here — the escape thunk unwinds through
  // with-deadline's dynamic-wind, whose after-thunk pops it by id.
  Scheduler::DeadlineRec *R = nullptr;
  for (Scheduler::DeadlineRec &D : T->Deadlines)
    if (D.Tick <= Rx->nowTick() &&
        (!R || D.Tick < R->Tick || (D.Tick == R->Tick && D.Id > R->Id)))
      R = &D;
  S.Timeouts += 1;
  OSC_TRACE(&Tr, TraceEvent::IoTimeout,
            PortId == PendingIo::NoPort ? 0 : PortId,
            static_cast<uint64_t>(OpRaw), Tid);
  // Poison the parked resume point: mark the one-shot shot without
  // reinstating it.  The abandoned suspension can never be resumed (the
  // invoke path rejects shot continuations) and its stack window is
  // reclaimed by GC — the cancellation copies zero words.
  // (The thread-root guard is itself permanently shot, so a degenerate
  // base-frame capture is naturally excluded.)
  if (auto *K = dynObj<Continuation>(T->Resume); K && !K->isShot())
    K->markShot();
  T->Resume = Value();
  // The thread may be parked in a channel's wait queue; nothing must
  // deliver to or wake it after this point.
  Sched->dropFromChannels(Tid);
  if (R) {
    T->EscapeProc = R->Proc;
    Sched->wake(*T, Value::unspecified());
  } else {
    // No armed extent (a bare timed park, or the extents were already
    // popped): surface a trappable run-level timeout instead.
    T->PendingError = "io: deadline expired while parked on " +
                      std::string(ioOpName(static_cast<IoOp>(OpRaw)));
    T->PendingErrorKind = ErrorKind::Timeout;
    Sched->wake(*T, Value::unspecified());
  }
  return true;
}

void VM::ioDropPort(Port *P, uint64_t Reason) {
  if (!P || P->closed())
    return;
  OSC_TRACE(&Tr, TraceEvent::IoDrop, P->id(), Reason);
  S.ConnsReaped += 1;
  if (P->kind() == Port::Kind::Stream)
    S.ConnectionsClosed += 1;
  std::vector<PendingIo> Ws = Rx->takeWaitersFor(P->id());
  P->closeNow();
  // Unlike io-close (whose parked writers get poisoned — closing under a
  // parked write is a program error there), a reaped connection is an
  // expected overload outcome: readers wake with the buffered tail or
  // EOF, writers with #f.
  for (const PendingIo &W : Ws) {
    Scheduler::Thread *T = Sched->lookup(W.Tid);
    if (!T || T->State != ThreadState::Blocked)
      continue;
    S.IoWakes += 1;
    OSC_TRACE(&Tr, TraceEvent::IoReady, W.PortId, static_cast<uint64_t>(W.Op),
              W.Tid);
    if (W.Op == IoOp::Write) {
      Sched->wake(*T, Value::boolean(false));
    } else {
      std::string Line;
      Sched->wake(*T, P->takeLine(Line) ? Value::object(H.allocString(Line))
                                        : EofObj);
    }
  }
}

bool VM::ioExpire(const PendingIo &P) {
  if (P.Op == IoOp::Timer) {
    // Valid only if its thread is still in the same park it was armed for;
    // otherwise the thread already woke through the channel and this timer
    // is stale (lazily cancelled).
    Scheduler::Thread *T = Sched->lookup(P.Tid);
    if (!T || T->State != ThreadState::Blocked || T->ParkSeq != P.ParkSeq)
      return false;
    return fireThreadDeadline(P.Tid, PendingIo::NoPort,
                              static_cast<int>(P.Op));
  }
  Scheduler::Thread *T = Sched->lookup(P.Tid);
  if (!T || T->State != ThreadState::Blocked || T->ParkSeq != P.ParkSeq)
    return false;
  // An fd wait expired.  An armed with-deadline extent wins (the escape
  // fires and the connection survives); otherwise this was the port's own
  // deadline — slow-client defense — and the connection is reaped.
  bool HasRecord = false;
  for (const Scheduler::DeadlineRec &D : T->Deadlines)
    if (D.Tick <= Rx->nowTick())
      HasRecord = true;
  Port *Pt = Rx->port(P.PortId);
  if (!HasRecord && Pt && Pt->deadlineTicks()) {
    S.Timeouts += 1;
    OSC_TRACE(&Tr, TraceEvent::IoTimeout, P.PortId,
              static_cast<uint64_t>(P.Op), P.Tid);
    Rx->repark(P); // Rejoin the port's waiter list; the drop wakes it.
    ioDropPort(Pt, /*Reason=*/1);
    return true;
  }
  return fireThreadDeadline(P.Tid, P.PortId, static_cast<int>(P.Op));
}

bool VM::ioPollAndWake(int TimeoutMs) {
  auto Start = std::chrono::steady_clock::now();
  while (Rx->waiterCount() > 0) {
    std::vector<PendingIo> Expired;
    std::vector<PendingIo> Ready = Rx->takeReady(TimeoutMs, &Expired);
    bool Woke = false;
    // Readiness first (it beat the deadline inside the batch), then expiry
    // — both lists arrive in the reactor's deterministic order.
    for (const PendingIo &P : Ready)
      Woke |= ioComplete(P);
    for (const PendingIo &P : Expired)
      Woke |= ioExpire(P);
    if (Woke)
      return true;
    if (Ready.empty() && Expired.empty()) {
      if (Rx->timedWaiterCount() == 0)
        return false; // The full-length poll timed out.
      // Deadlines armed: each batch was clamped to one tick, so keep
      // ticking until the configured wall budget is spent.
      auto Spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
      if (TimeoutMs >= 0 && Spent >= TimeoutMs)
        return false;
    }
    // Events that woke nobody (re-parks, stale timers): poll again.
  }
  return false;
}

void VM::ioClosePort(Port *P) {
  if (!P)
    return;
  // Wake everyone parked on this port first: with the fd closed, each
  // completion sees EOF (readers drain any buffered tail), and parked
  // writers are poisoned with a trappable error.
  std::vector<PendingIo> Ws = Rx->takeWaitersFor(P->id());
  if (P->kind() == Port::Kind::Stream && !P->closed())
    S.ConnectionsClosed += 1;
  P->closeNow();
  // A closed port never re-parks: every completion wakes (or the waiter
  // was stale and its thread already gone).
  for (const PendingIo &W : Ws)
    ioComplete(W);
}

void VM::abortScheduler() {
  Sched->abortRun();
  Rx->clearWaiters(); // Their threads were just dropped.
}

// --- The interpreter loop ---------------------------------------------------------

VM::RunResult VM::run(Code *Toplevel) {
  Failed = false;
  Halted = false;
  ErrMsg.clear();
  ErrKind = ErrorKind::None;
  FinalValue = Value::unspecified();
  Acc = Value::unspecified();
  NumValues = 1;
  Fuel = -1;
  TimerExpired = false;
  TimerHandler = Value();
  PreemptTick = 0;
  PreemptCursor = 0;
  if (Sched->active())
    abortScheduler(); // A previous run died mid-switch; drop its threads.

  try {
    CS.reset();
    CS.beginBaseFrame(std::max(Toplevel->MaxDepth, 2u));
    CS.plantBaseFrame();
    Cur = Toplevel;
    CurCodeVal = Value::object(Toplevel);
    Pc = 1; // Pc 0 holds the entry frame-size word.
    interpLoop();
  } catch (const SegmentAllocFault &F) {
    // An injected allocation failure (FaultPlan::FailSegmentAlloc).  The
    // control stack mutated nothing before throwing, so the next run's
    // reset() starts from a consistent state; only this result is lost.
    fail("stack segment allocation failed (injected fault at request #" +
             std::to_string(F.Ordinal) + ", " +
             std::to_string(F.RequestedWords) + " words)",
         ErrorKind::Fault);
    if (Sched->active())
      abortScheduler();
    Cur = nullptr; // The backtrace walk is not meaningful mid-surgery.
  }

  RunResult R;
  if (Failed) {
    R.Ok = false;
    R.Error = ErrMsg;
    R.Kind = ErrKind == ErrorKind::None ? ErrorKind::Runtime : ErrKind;
    if (Cur)
      R.Backtrace = captureBacktrace();
    return R;
  }
  R.Ok = true;
  R.Val = FinalValue;
  return R;
}


// --- The dispatch loop -------------------------------------------------------
//
// Both loop bodies below are generated from vm/VMDispatch.inc; see that
// file for the shared-handler structure and the mode-invariance rules.

// Computed goto (the GNU labels-as-values extension) backs the threaded
// loop; where it is unavailable — or explicitly disabled with
// -DOSC_NO_COMPUTED_GOTO — both Config::ThreadedDispatch settings run the
// portable switch loop, which is semantically identical.
#if defined(__GNUC__) && !defined(OSC_NO_COMPUTED_GOTO)
#define OSC_COMPUTED_GOTO 1
#else
#define OSC_COMPUTED_GOTO 0
#endif

void VM::interpLoop() {
#if OSC_COMPUTED_GOTO
  if (Cfg.ThreadedDispatch)
    return interpLoopThreaded();
#endif
  interpLoopSwitch();
}

void VM::interpLoopSwitch() {
#define OSC_DISPATCH_THREADED 0
#include "vm/VMDispatch.inc"
#undef OSC_DISPATCH_THREADED
}

#if OSC_COMPUTED_GOTO

void VM::interpLoopThreaded() {
#define OSC_DISPATCH_THREADED 1
#include "vm/VMDispatch.inc"
#undef OSC_DISPATCH_THREADED
}

#else

void VM::interpLoopThreaded() { interpLoopSwitch(); }

#endif
