//===----------------------------------------------------------------------===//
///
/// \file
/// Scheme bindings for the regex subsystem (src/regex): compilation to a
/// RegexProg heap object, whole-string match/search, and the streaming
/// matcher used by the MATCH/STREAM protocol verb.  All of these are
/// plain natives — the executor never parks — so regex work composes
/// freely with one-shot captures around it (a feed inside a generator
/// body suspends between chunks, not inside the engine).
///
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "regex/Regex.h"
#include "sexp/Printer.h"

#include <string>
#include <vector>

using namespace osc;

namespace {

RegexProg *progArg(Value V) { return dynObj<RegexProg>(V); }

String *stringArg(Value V) { return dynObj<String>(V); }

/// Loads the engine's flat view from a matcher heap object.  Steps is
/// zeroed so the store below can accumulate just this call's work.
regex::Machine loadMachine(RegexStream *S, RegexProg *P) {
  regex::Machine M;
  M.Prog = P->Instrs;
  M.NInstrs = P->NInstrs;
  M.Threads = S->Threads;
  M.NThreads = S->NThreads;
  M.Offset = S->Offset;
  M.BestStart = S->BestStart;
  M.BestEnd = S->BestEnd;
  M.Mode = S->Mode;
  M.Decided = S->Decided;
  M.SpawnDead = S->SpawnDead;
  M.Steps = 0;
  return M;
}

void storeMachine(VM &Vm, RegexStream *S, const regex::Machine &M) {
  S->NThreads = M.NThreads;
  S->Offset = M.Offset;
  S->BestStart = M.BestStart;
  S->BestEnd = M.BestEnd;
  S->Mode = M.Mode;
  S->Decided = M.Decided;
  S->SpawnDead = M.SpawnDead;
  S->Steps += M.Steps;
  Vm.stats().RegexSteps += M.Steps;
}

/// The scalar outcome of a whole-string run (the thread array is gone by
/// the time the caller looks).
struct RunResult {
  uint8_t Decided;
  int64_t Start;
  int64_t End;
};

RunResult runWhole(VM &Vm, RegexProg *P, std::string_view Text,
                   uint8_t Mode) {
  std::vector<RegexThread> Threads(P->NInstrs);
  regex::Machine M;
  M.Prog = P->Instrs;
  M.NInstrs = P->NInstrs;
  M.Threads = Threads.data();
  M.Mode = Mode;
  regex::init(M);
  regex::feed(M, Text);
  regex::finish(M);
  Vm.stats().RegexExecs += 1;
  Vm.stats().RegexBytesScanned += M.Offset;
  Vm.stats().RegexSteps += M.Steps;
  return {M.Decided, M.BestStart, M.BestEnd};
}

/// Renders a settled decision as the Scheme-facing result: a
/// (start . end) pair on a match, the symbol nomatch otherwise.
Value decisionValue(VM &Vm, uint8_t Decided, int64_t Start, int64_t End) {
  if (Decided == regex::Matched)
    return Value::object(
        Vm.heap().allocPair(Value::fixnum(Start), Value::fixnum(End)));
  return Value::object(Vm.heap().intern("nomatch"));
}

Value compileTo(VM &Vm, Value PatV, bool Trappable) {
  auto *Pat = stringArg(PatV);
  if (!Pat)
    return Vm.fail("regex-compile: expects a pattern string, got " +
                   writeToString(PatV));
  regex::ProgramBuffer Buf;
  std::string Err;
  if (!regex::compile(Pat->view(), Buf, Err)) {
    if (!Trappable)
      return Value::falseV();
    return Vm.fail("regex-compile: " + Err + " in pattern \"" +
                   std::string(Pat->view()) + "\"");
  }
  Vm.stats().RegexCompiles += 1;
  return Value::object(Vm.heap().allocRegexProg(PatV, Buf.data(), Buf.size()));
}

Value primRegexCompile(VM &Vm, Value *A, uint32_t) {
  return compileTo(Vm, A[0], /*Trappable=*/true);
}

/// Like regex-compile but yields #f instead of an error — the serving
/// protocol uses this so a client's bad pattern answers ERR rather than
/// unwinding the connection thread.
Value primRegexTryCompile(VM &Vm, Value *A, uint32_t) {
  return compileTo(Vm, A[0], /*Trappable=*/false);
}

Value primRegexP(VM &, Value *A, uint32_t) {
  return isObj<RegexProg>(A[0]) ? Value::trueV() : Value::falseV();
}

Value primRegexProgramSize(VM &Vm, Value *A, uint32_t) {
  auto *P = progArg(A[0]);
  if (!P)
    return Vm.fail("regex-program-size: expects a compiled regex");
  return Value::fixnum(P->NInstrs);
}

Value primRegexMatch(VM &Vm, Value *A, uint32_t) {
  auto *P = progArg(A[0]);
  if (!P)
    return Vm.fail("regex-match: expects a compiled regex");
  auto *S = stringArg(A[1]);
  if (!S)
    return Vm.fail("regex-match: expects a string to match");
  RunResult R = runWhole(Vm, P, S->view(), regex::ModeFull);
  return R.Decided == regex::Matched ? Value::trueV() : Value::falseV();
}

Value primRegexSearch(VM &Vm, Value *A, uint32_t) {
  auto *P = progArg(A[0]);
  if (!P)
    return Vm.fail("regex-search: expects a compiled regex");
  auto *S = stringArg(A[1]);
  if (!S)
    return Vm.fail("regex-search: expects a string to search");
  RunResult R = runWhole(Vm, P, S->view(), regex::ModeSearch);
  if (R.Decided != regex::Matched)
    return Value::falseV();
  return Value::object(
      Vm.heap().allocPair(Value::fixnum(R.Start), Value::fixnum(R.End)));
}

Value primRegexStream(VM &Vm, Value *A, uint32_t) {
  auto *P = progArg(A[0]);
  if (!P)
    return Vm.fail("regex-stream: expects a compiled regex");
  RegexStream *S = Vm.heap().allocRegexStream(A[0], P->NInstrs);
  regex::Machine M = loadMachine(S, P);
  M.Mode = regex::ModeSearch;
  regex::init(M);
  storeMachine(Vm, S, M);
  Vm.stats().RegexExecs += 1;
  return Value::object(S);
}

RegexStream *streamArg(VM &Vm, Value V, const char *Who) {
  auto *S = dynObj<RegexStream>(V);
  if (!S) {
    Vm.fail(std::string(Who) + ": expects a regex stream matcher");
    return nullptr;
  }
  return S;
}

Value primRegexStreamFeed(VM &Vm, Value *A, uint32_t) {
  auto *S = streamArg(Vm, A[0], "regex-stream-feed!");
  if (!S)
    return Value::falseV();
  auto *Chunk = stringArg(A[1]);
  if (!Chunk)
    return Vm.fail("regex-stream-feed!: expects a string chunk");
  auto *P = castObj<RegexProg>(S->Prog);
  regex::Machine M = loadMachine(S, P);
  uint64_t Before = M.Offset;
  regex::feed(M, Chunk->view());
  Vm.stats().RegexStreamFeeds += 1;
  Vm.stats().RegexBytesScanned += M.Offset - Before;
  storeMachine(Vm, S, M);
  if (S->Decided == regex::Undecided)
    return Value::falseV();
  return decisionValue(Vm, S->Decided, S->BestStart, S->BestEnd);
}

Value primRegexStreamEnd(VM &Vm, Value *A, uint32_t) {
  auto *S = streamArg(Vm, A[0], "regex-stream-end!");
  if (!S)
    return Value::falseV();
  auto *P = castObj<RegexProg>(S->Prog);
  regex::Machine M = loadMachine(S, P);
  regex::finish(M);
  storeMachine(Vm, S, M);
  return decisionValue(Vm, S->Decided, S->BestStart, S->BestEnd);
}

Value primRegexStreamDoneP(VM &Vm, Value *A, uint32_t) {
  auto *S = streamArg(Vm, A[0], "regex-stream-done?");
  if (!S)
    return Value::falseV();
  return S->Decided != regex::Undecided ? Value::trueV() : Value::falseV();
}

Value primRegexStreamOffset(VM &Vm, Value *A, uint32_t) {
  auto *S = streamArg(Vm, A[0], "regex-stream-offset");
  if (!S)
    return Value::falseV();
  return Value::fixnum(static_cast<int64_t>(S->Offset));
}

const NativeDef RegexDefs[] = {
    {"regex-compile", primRegexCompile, 1, 1},
    {"regex-try-compile", primRegexTryCompile, 1, 1},
    {"regex?", primRegexP, 1, 1},
    {"regex-program-size", primRegexProgramSize, 1, 1},
    {"regex-match", primRegexMatch, 2, 2},
    {"regex-search", primRegexSearch, 2, 2},
    {"regex-stream", primRegexStream, 1, 1},
    {"regex-stream-feed!", primRegexStreamFeed, 2, 2},
    {"regex-stream-end!", primRegexStreamEnd, 1, 1},
    {"regex-stream-done?", primRegexStreamDoneP, 1, 1},
    {"regex-stream-offset", primRegexStreamOffset, 1, 1},
};

} // namespace

void osc::installRegexPrimitives(VM &Vm) { Vm.defineNatives(RegexDefs); }
