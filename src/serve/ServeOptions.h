//===----------------------------------------------------------------------===//
///
/// \file
/// The one serving-options surface shared by Server and Pool.
///
/// A Server is behaviorally a 1-worker Pool — same Scheme protocol core,
/// same overload knobs, same Stats::Snapshot shape — so the two classes
/// take the same options struct.  Knobs that only make sense for the
/// sharded pool (Workers, Mode, MaxWorkerRestarts, Program, TraceWorkers)
/// are documented as such and ignored by Server; everything else applies
/// to both (per shard, in the pool's case).
///
/// The old per-class `Server::Options` / `Pool::Options` names remain as
/// deprecated aliases of this struct for one release.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SERVE_SERVEOPTIONS_H
#define OSC_SERVE_SERVEOPTIONS_H

#include "core/Config.h"

#include <cstdint>

namespace osc {

/// How a Pool's workers get their connections.
enum class ListenMode : uint8_t {
  /// Each worker's reactor owns its own listening socket bound to the
  /// shared port with SO_REUSEPORT; the kernel load-balances incoming
  /// connections across the shards and every accept happens in-shard,
  /// with no acceptor thread, no cross-thread fd handoff and no wakeup
  /// write on the hot path.  The default.  If the first listener cannot
  /// be created with SO_REUSEPORT the pool falls back to CentralAcceptor
  /// (Pool::listenMode() reports the effective mode).
  ReusePort,
  /// One acceptor thread accepts on a single shared listener and hands
  /// each fd to the least-loaded worker through its lock-free ConnQueue,
  /// draining every pending connection per wakeup and poking each
  /// touched worker's self-pipe once per batch.  The deterministic
  /// differential baseline, and the portable fallback.
  CentralAcceptor,
};

/// Returns "reuseport" / "central".
const char *listenModeName(ListenMode M);

/// Options for both serving fronts (Server and Pool).  Per-connection and
/// per-shard knobs apply to the Server's single embedded Interp exactly as
/// they apply to each Pool worker.
struct ServeOptions {
  uint16_t Port = 0;     ///< TCP port; 0 picks an ephemeral loopback port.
  int Workers = 1;       ///< Pool only: shard count (one OS thread each).
  int MaxInflight = 64;  ///< Backpressure bound (channel capacity) per shard.
  int64_t PreemptInterval = 0; ///< Scheduler slice; 0 = cooperative.
  int Backlog = 128;     ///< listen(2) backlog (per listener).
  int MaxConns = 0;      ///< Admission cap per shard: past this many live
                         ///< connections new arrivals get one fast BUSY
                         ///< line and are closed (RequestsShed).  0 = off.
  int ConnDeadlineMs = 0; ///< Per-connection park deadline: a client that
                          ///< keeps a read or write parked longer is
                          ///< dropped (ConnsReaped).  0 = none.
  int MaxWorkerRestarts = 3; ///< Pool only: times a crashed worker program
                             ///< is restarted on a fresh Interp (its
                             ///< handoff queue and, in ReusePort mode, a
                             ///< re-bound listener survive) before the
                             ///< shard is given up on.
  ListenMode Mode = ListenMode::ReusePort; ///< Pool only: accept path.
  Config VmCfg;          ///< Control-representation knobs (every worker).
  const char *Program = nullptr; ///< Pool test hook: replaces the worker
                                 ///< serving program.
  bool TraceWorkers = false; ///< Pool only: arm every worker's tracer.
};

} // namespace osc

#endif // OSC_SERVE_SERVEOPTIONS_H
