#include "serve/Client.h"

#include "io/Port.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

using namespace osc;

bool Client::connect(uint16_t Port, std::string &Err) {
  close();
  Fd = connectLoopback(Port, Err);
  return Fd >= 0;
}

void Client::adopt(int NewFd) {
  close();
  Fd = NewFd;
}

bool Client::sendLine(const std::string &Line) {
  if (Fd < 0)
    return false;
  std::string Out = Line + "\n";
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t N = ::write(Fd, Out.data() + Off, Out.size() - Off);
    if (N > 0) {
      Off += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool Client::recvLine(std::string &Out, int TimeoutMs) {
  if (Fd < 0)
    return false;
  for (;;) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Out.assign(Buf, 0, Nl);
      Buf.erase(0, Nl + 1);
      if (!Out.empty() && Out.back() == '\r')
        Out.pop_back();
      return true;
    }
    if (!pollOneFd(Fd, /*ForWrite=*/false, TimeoutMs))
      return false; // Timed out.
    char Tmp[4096];
    ssize_t N = ::read(Fd, Tmp, sizeof Tmp);
    if (N > 0) {
      Buf.append(Tmp, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    return false; // EOF (or hard error) before a complete line.
  }
}

bool Client::request(const std::string &Line, std::string &Reply,
                     int TimeoutMs) {
  return sendLine(Line) && recvLine(Reply, TimeoutMs);
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}
