//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking loopback client for the eval server's line protocol.
///
/// This is the *host* half of the story — what tests, benchmarks and the
/// Server's own stop() handshake use to talk to a running server.  It is
/// plain blocking POSIX I/O on purpose: the interesting machinery (parking
/// on one-shot continuations) all lives on the server side, and the client
/// must not depend on any of it.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SERVE_CLIENT_H
#define OSC_SERVE_CLIENT_H

#include <cstdint>
#include <string>

namespace osc {

class Client {
public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept : Fd(O.Fd), Buf(std::move(O.Buf)) {
    O.Fd = -1;
  }

  bool connected() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Blocking connect to 127.0.0.1:\p Port.
  bool connect(uint16_t Port, std::string &Err);

  /// Takes ownership of an already-connected fd (e.g. one end of a
  /// socketpair handed to a specific pool worker), closing any previous
  /// connection first.
  void adopt(int NewFd);

  /// Writes \p Line plus a newline, retrying until everything is out.
  bool sendLine(const std::string &Line);

  /// Reads one line (terminator stripped) with \p TimeoutMs per poll.
  /// False on timeout or EOF before a complete line.
  bool recvLine(std::string &Out, int TimeoutMs = 10000);

  /// sendLine + recvLine — one protocol round trip.
  bool request(const std::string &Line, std::string &Reply,
               int TimeoutMs = 10000);

  void close();

private:
  int Fd = -1;
  std::string Buf; ///< Bytes received past the last returned line.
};

} // namespace osc

#endif // OSC_SERVE_CLIENT_H
