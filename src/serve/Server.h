//===----------------------------------------------------------------------===//
///
/// \file
/// The continuation-per-request eval server (src/serve).
///
/// A Server embeds one Interp and runs a Scheme serving program inside it:
/// an acceptor green thread io-accepts loopback connections, and every
/// connection gets its own green thread speaking a newline-delimited
/// protocol.  Each time a request thread waits for bytes it parks on a
/// one-shot continuation; each wake reinstates it with zero stack words
/// copied — the paper's cheap control transfer carrying a server's whole
/// concurrency story.  Backpressure is the existing bounded Channel: the
/// connection loop takes a token from a channel of capacity MaxInflight
/// before spawning a handler and returns it after, so at most MaxInflight
/// requests are in flight.
///
/// Protocol (one request per line; one reply line per request, except
/// STREAM which replies with several):
///   PING            -> PONG
///   EVAL <sexpr>    -> the fixnum result, or ERR (fixnum arithmetic only)
///   STREAM (e ...)  -> one "PART <result>" line per expression (ERR for a
///                      bad element), then DONE; parts are produced lazily
///                      by a generator built on the delimited-control layer
///                      (src/control), so each element evaluates only when
///                      its PART is about to be written
///   QUIT            -> BYE, then the server closes its listener and stops
///   anything else   -> ERR
///
/// Threading: the Scheme program runs on one std::thread (the VM is
/// single-threaded); clients are other OS threads or processes talking TCP.
/// snapshot() is safe from any thread at any time.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SERVE_SERVER_H
#define OSC_SERVE_SERVER_H

#include "core/Config.h"
#include "serve/ServeOptions.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "vm/Interp.h"

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace osc {

class Server {
public:
  /// Deprecated alias, kept for one release: the server now shares one
  /// options surface with Pool.  A Server is behaviorally a 1-worker
  /// pool, so the pool-only knobs (Workers, Mode, MaxWorkerRestarts,
  /// Program, TraceWorkers) are simply ignored here.
  using Options [[deprecated("use osc::ServeOptions")]] = ServeOptions;

  explicit Server(ServeOptions O) : Opt(std::move(O)) {}
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Creates the interpreter and the listening socket and starts the
  /// serving program on its own std::thread.  False (with error()) if the
  /// socket could not be created.
  bool start();
  /// Connects, sends QUIT, waits for BYE and joins the serving thread.
  /// Idempotent.  All client connections should be closed by then.
  void stop();
  /// Joins the serving thread without initiating shutdown: returns when
  /// some client's QUIT (or a server error) ends the serving program.
  void wait();

  bool running() const { return Thr.joinable(); }
  uint16_t tcpPort() const { return BoundPort; }
  /// The last failure, classified: Io for socket setup problems, and the
  /// serving program's own ErrorKind once the serving thread has been
  /// joined (stop()/wait()).  ok() while everything is healthy.
  const Error &error() const { return Err; }

  /// Counters captured at start(), before any request ran: diff
  /// snapshot() against this to measure only the serving work.
  const Stats::Snapshot &baseline() const { return Base; }
  /// A coherent copy of the counters.  Only meaningful after stop() (the
  /// serving thread owns the live Stats until then).
  Stats::Snapshot snapshot() const { return I->snapshot(); }
  /// The serving program's eval result.  Only meaningful after stop().
  const Interp::Result &result() const { return R; }

  /// The Scheme serving program (exposed for tests; expects the globals
  /// *listener*, *max-inflight* and *preempt* to be bound).
  static const char *serveSource();
  /// The protocol core shared with Pool workers: backpressure tokens,
  /// the safe fixnum evaluator, answer/handle-request and a conn-loop
  /// whose QUIT branch calls the variant hook (on-quit).  Each variant
  /// appends its own accept loop and on-quit definition.
  static const char *protocolSource();

private:
  ServeOptions Opt;
  std::unique_ptr<Interp> I;
  std::thread Thr;
  Interp::Result R;
  Stats::Snapshot Base;
  uint16_t BoundPort = 0;
  Error Err;
};

} // namespace osc

#endif // OSC_SERVE_SERVER_H
