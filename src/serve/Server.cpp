#include "serve/Server.h"

#include "io/Reactor.h"
#include "serve/Client.h"

using namespace osc;

// The protocol core.  Pure Scheme over the io/sched primitives so the
// whole request path — accept, read, compute, write — runs on green
// threads whose every wait is a parked one-shot continuation.  The host
// binds *max-inflight* and *preempt* before evaluating this; each
// variant (Server's acceptor, Pool's take-conn worker) appends its own
// accept loop plus an (on-quit) definition saying what a client's QUIT
// tears down beyond its own connection.
const char *Server::protocolSource() {
  return R"scheme(
;; Backpressure: a conn-loop takes a token before handling a request and
;; returns it after, so at most *max-inflight* requests are in flight;
;; the excess park in channel-send! like any other blocked sender.
(define %tokens (make-channel *max-inflight*))

(define (starts-with? s p)
  (and (>= (string-length s) (string-length p))
       (string=? (substring s 0 (string-length p)) p)))

;; A tiny fixnum calculator: the EVAL payload is data, never code.  Any
;; shape this does not recognize — unbound names, non-fixnum leaves, a
;; zero divisor — folds to 'err.
(define (safe-eval-list l)
  (cond ((null? l) '())
        ((pair? l)
         (let ((h (safe-eval (car l))))
           (if (eq? h 'err)
               'err
               (let ((t (safe-eval-list (cdr l))))
                 (if (eq? t 'err) 'err (cons h t))))))
        (else 'err)))

(define (safe-eval e)
  (cond
    ((integer? e) e)
    ((pair? e)
     (let ((op (car e)) (args (safe-eval-list (cdr e))))
       (cond
         ((eq? args 'err) 'err)
         ((eq? op '+) (apply + args))
         ((eq? op '*) (apply * args))
         ((and (eq? op '-) (pair? args)) (apply - args))
         ((and (eq? op 'quotient) (pair? args) (pair? (cdr args))
               (null? (cdr (cdr args))) (not (= 0 (car (cdr args)))))
          (quotient (car args) (car (cdr args))))
         ((and (eq? op 'remainder) (pair? args) (pair? (cdr args))
               (null? (cdr (cdr args))) (not (= 0 (car (cdr args)))))
          (remainder (car args) (car (cdr args))))
         ((and (eq? op '<) (pair? args) (pair? (cdr args)))
          (if (apply < args) 1 0))
         ((and (eq? op '=) (pair? args) (pair? (cdr args)))
          (if (apply = args) 1 0))
         ((and (eq? op 'min) (pair? args)) (apply min args))
         ((and (eq? op 'max) (pair? args)) (apply max args))
         (else 'err))))
    (else 'err)))

;; MATCH <pattern> <text>: whole-payload regex search.  The pattern ends
;; at the first space that is neither inside a [...] class nor preceded
;; by a backslash — so a literal space in a pattern is spelled [ ] or
;; "\ "; everything after the separator, spaces included, is the text.
;; Bad patterns answer ERR via regex-try-compile — a client typo must
;; not unwind the connection thread.
(define (pattern-split s)
  (let loop ((i 0) (in-class #f) (esc #f))
    (if (>= i (string-length s))
        #f
        (let ((c (substring s i (+ i 1))))
          (cond
            (esc (loop (+ i 1) in-class #f))
            ((string=? c "\\") (loop (+ i 1) in-class #t))
            ((and in-class (string=? c "]")) (loop (+ i 1) #f #f))
            ((and (not in-class) (string=? c "[")) (loop (+ i 1) #t #f))
            ((and (not in-class) (string=? c " ")) i)
            (else (loop (+ i 1) in-class #f)))))))

(define (match-reply r)
  (if (pair? r)
      (string-append "FOUND " (number->string (car r)) " "
                     (number->string (cdr r)))
      "NOMATCH"))

(define (handle-match payload)
  (let ((sp (pattern-split payload)))
    (if (not sp)
        "ERR"
        (let ((re (regex-try-compile (substring payload 0 sp))))
          (if (not re)
              "ERR"
              (let ((r (regex-search
                        re (substring payload (+ sp 1)
                                      (string-length payload)))))
                (if r (match-reply r) "NOMATCH")))))))

(define (answer line)
  (cond
    ((string=? line "PING") "PONG")
    ((starts-with? line "EVAL ")
     (let ((d (string->datum (substring line 5 (string-length line)))))
       (if (eof-object? d)
           "ERR"
           (let ((v (safe-eval d)))
             (if (eq? v 'err) "ERR" (number->string v))))))
    ((starts-with? line "MATCH ")
     (handle-match (substring line 6 (string-length line))))
    (else "ERR")))

;; STREAM (e1 e2 ...): one PART line per expression, then DONE.  The parts
;; come out of a generator: each element's evaluation runs inside the
;; generator's reset, parks at (yield v) as a one-shot delimited capture,
;; and resumes with zero stack words copied when the writer loop asks for
;; the next part — even when the io-write in between parked the whole
;; connection thread (the suspended slice lives in the heap, not on the
;; thread's chain, so it travels across scheduler switches for free).
(define (handle-stream conn payload)
  (let ((d (string->datum payload)))
    (if (not (pair? d))
        (io-write conn "ERR\n")
        (let ((g (make-generator
                  (lambda (v)
                    (for-each (lambda (e) (yield (safe-eval e))) d)
                    'done))))
          (let loop ()
            (let ((p (generator-next g)))
              (if (eof-object? p)
                  (io-write conn "DONE\n")
                  (begin
                    (io-write conn
                              (string-append
                               "PART "
                               (if (eq? p 'err) "ERR" (number->string p))
                               "\n"))
                    (loop)))))))))

;; MATCH/STREAM <pattern>: incremental regex over chunks the client
;; sends as lines after the verb.  Lock-step: every chunk line gets a
;; reply — AGAIN while the matcher is undecided, FOUND s e / NOMATCH the
;; moment it settles (an END line forces the decision at end-of-input).
;; The matcher is driven from a generator exactly like STREAM's parts:
;; the body reads a chunk inside the generator's reset, feeds the
;; RegexStream, and parks at (yield reply) as a one-shot delimited
;; capture; the drive loop below resumes it with zero stack words copied
;; after each io-write.  The io-read-line inside the body parks the
;; whole connection thread with the suspended slice riding in the heap,
;; so a slow client is reaped by the ordinary *conn-deadline-ms* clock:
;; the parked read wakes with EOF, the generator returns, and the verb
;; unwinds exactly like an EOF'd conn-loop.
(define (handle-match-stream conn pat)
  (let ((re (regex-try-compile pat)))
    (if (not re)
        (io-write conn "ERR\n")
        (let ((g (make-generator
                  (lambda (v)
                    (let ((st (regex-stream re)))
                      (let loop ()
                        (let ((chunk (io-read-line conn)))
                          (cond
                            ((eof-object? chunk) 'eof)
                            ((string=? chunk "END")
                             (yield (match-reply (regex-stream-end! st)))
                             'done)
                            (else
                             (let ((r (regex-stream-feed! st chunk)))
                               (if r
                                   (begin (yield (match-reply r)) 'done)
                                   (begin (yield "AGAIN") (loop)))))))))))))
          (let drive ()
            (let ((reply (generator-next g)))
              (if (eof-object? reply)
                  'done
                  (begin
                    (io-write conn (string-append reply "\n"))
                    (drive)))))))))

;; One green thread per request: it writes the reply (parking if the
;; socket is full) and bumps the RequestsServed counter.  The counter is
;; bumped *before* the reply goes out: once a client has seen the reply the
;; request is guaranteed counted, even if a QUIT racing in on the same
;; connection tears the handler down right after (nursery teardown below).
(define (handle-request conn line)
  (serve-request-done!)
  (if (starts-with? line "STREAM ")
      (handle-stream conn (substring line 7 (string-length line)))
      (io-write conn (string-append (answer line) "\n"))))

;; One green thread per connection, one per request under the connection's
;; nursery.  The reader takes a token and spawns the handler WITHOUT
;; joining it (requests pipeline; a serial request/reply client sees no
;; difference), so the connection owns a task tree: when the reader exits
;; — QUIT, client EOF, or the reactor reaping a slow/idle connection and
;; waking the parked read with EOF — the nursery scope closes and every
;; still-parked handler is cancelled by one-shot poisoning, in spawn
;; order, byte-identically run to run.  QUIT answers BYE, closes the
;; connection, then runs the variant hook (Server: close the listener so
;; the parked acceptor wakes with EOF; Pool: nothing — workers stop when
;; the host closes their handoff queue).
(define (conn-loop conn bump)
  (let ((line (io-read-line conn)))
    (cond
      ((eof-object? line) (io-close conn))
      ((string=? line "QUIT")
       (io-write conn "BYE\n")
       (io-close conn)
       (on-quit))
      ;; MATCH/STREAM runs inline, not spawned: the handler reads chunk
      ;; lines off this very connection, so a spawned copy would race the
      ;; pipelined reader for bytes.  The conn resumes normal dispatch
      ;; when the verb settles (or the connection is reaped mid-stream,
      ;; in which case the recursive io-read-line sees EOF and unwinds).
      ((starts-with? line "MATCH/STREAM ")
       (serve-request-done!)
       (handle-match-stream conn (substring line 13 (string-length line)))
       (conn-loop conn bump))
      (else
       (channel-send! %tokens 1)
       (bump 1)
       (spawn (lambda ()
                (handle-request conn line)
                (channel-recv %tokens)
                (bump -1)))
       (conn-loop conn bump)))))

;; Overload protection.  %live-conns counts connections currently owned by
;; a conn thread; admit-conn refuses new arrivals past *max-conns* with a
;; fast BUSY line (shed, not queued — the client learns immediately) and
;; arms the per-connection park deadline on the admitted ones, so a client
;; that stalls a read or write past *conn-deadline-ms* is reaped by the
;; reactor (the thread sees EOF / #f and unwinds normally, cancelling its
;; whole request tree on the way).
(define %live-conns 0)

(define (conn-thread conn)
  (set! %live-conns (+ %live-conns 1))
  (let ((pending 0))
    (nursery
     (conn-loop conn (lambda (d) (set! pending (+ pending d)))))
    ;; Reclaim tokens orphaned by cancelled handlers: pending counts this
    ;; connection's un-returned tokens, and sends/recvs balance globally,
    ;; so the buffer holds at least that many — try-recv never parks.
    (let drain ((k pending))
      (if (> k 0)
          (begin (channel-try-recv %tokens) (drain (- k 1))))))
  (set! %live-conns (- %live-conns 1)))

(define (admit-conn conn)
  (if (and (> *max-conns* 0) (>= %live-conns *max-conns*))
      (begin
        (serve-shed! conn)
        (io-write conn "BUSY\n")
        (io-close conn))
      (begin
        (if (> *conn-deadline-ms* 0)
            (io-set-deadline! conn *conn-deadline-ms*))
        (spawn (lambda () (conn-thread conn))))))
)scheme";
}

// The stand-alone server: accept from *listener* directly; QUIT closes
// the listener, which ends the acceptor and (once connections drain) the
// whole serving program.
const char *Server::serveSource() {
  static const std::string Src = std::string(protocolSource()) + R"scheme(
(define (on-quit) (io-close *listener*))

(define (acceptor)
  (let ((conn (io-accept *listener*)))
    (if (eof-object? conn)
        'closed
        (begin
          (admit-conn conn)
          (acceptor)))))

(spawn acceptor)
(scheduler-run *preempt*)
)scheme";
  return Src.c_str();
}

bool Server::start() {
  if (Thr.joinable()) {
    Err = {ErrorKind::Runtime, "server already running"};
    return false;
  }
  I = std::make_unique<Interp>(Opt.VmCfg);

  // The listener is created host-side so the bound (possibly ephemeral)
  // port is known before the serving thread even starts; the Scheme
  // program receives it as an already-open port id.
  uint16_t P = Opt.Port;
  std::string E;
  int Fd = openListener(P, Opt.Backlog, E);
  if (Fd < 0) {
    Err = {ErrorKind::Io, "io-listen: " + E};
    I.reset();
    return false;
  }
  VM &M = I->vm();
  uint32_t Lid = M.reactor().addPort(Fd, Port::Kind::Listener);
  M.reactor().port(Lid)->setTcpPort(P);
  BoundPort = P;

  I->defineGlobal("*listener*", Value::fixnum(Lid));
  I->defineGlobal("*max-inflight*", Value::fixnum(Opt.MaxInflight));
  I->defineGlobal("*preempt*", Value::fixnum(Opt.PreemptInterval));
  I->defineGlobal("*max-conns*", Value::fixnum(Opt.MaxConns));
  I->defineGlobal("*conn-deadline-ms*", Value::fixnum(Opt.ConnDeadlineMs));
  Err = Error();
  Base = I->snapshot();

  Thr = std::thread([this] { R = I->eval(serveSource()); });
  return true;
}

void Server::stop() {
  if (!Thr.joinable())
    return;
  // The graceful path is in-protocol: QUIT makes its connection thread
  // close the listener, the acceptor sees EOF and exits, and once every
  // connection is gone scheduler-run completes and eval returns.
  Client C;
  std::string E;
  if (C.connect(BoundPort, E)) {
    std::string Reply;
    C.request("QUIT", Reply);
    C.close();
  }
  Thr.join();
  if (!R.Ok)
    Err = R.error();
}

void Server::wait() {
  if (!Thr.joinable())
    return;
  Thr.join();
  if (!R.Ok)
    Err = R.error();
}

Server::~Server() { stop(); }
