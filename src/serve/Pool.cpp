#include "serve/Pool.h"

#include "io/ConnQueue.h"
#include "io/Port.h"
#include "io/Reactor.h"
#include "serve/Server.h"

#include <algorithm>
#include <cerrno>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

using namespace osc;

const char *osc::listenModeName(ListenMode M) {
  return M == ListenMode::ReusePort ? "reuseport" : "central";
}

// The worker programs: the shared protocol core, an on-quit that tears
// down nothing beyond the connection (pool shutdown is host-driven, by
// closing the handoff queue), and the mode's accept loop(s).
const char *Pool::workerSource(ListenMode M) {
  // CentralAcceptor: every io-take-conn parks this green thread on the
  // reactor's wakeup port until the acceptor thread hands over a
  // connection; EOF means the queue closed — wind down.
  static const std::string Central =
      std::string(Server::protocolSource()) + R"scheme(
(define (on-quit) 'ok)

(define (worker-loop)
  (let ((conn (io-take-conn)))
    (if (eof-object? conn)
        'closed
        (begin
          (admit-conn conn)
          (worker-loop)))))

(spawn worker-loop)
(scheduler-run *preempt*)
)scheme";
  // ReusePort: the hot path is the acceptor — the kernel load-balanced
  // each connection to this shard's own SO_REUSEPORT listener, so the
  // accept happens in-shard with no cross-thread traffic at all.  The
  // taker is the host's control path: it parks on the wakeup pipe until
  // Pool::handoff pushes a targeted connection (admitted exactly like an
  // accepted one) or Pool::stop closes the queue — the shutdown signal,
  // answered by closing the shard's listener so the parked acceptor
  // wakes with EOF and the program winds down once connections drain.
  static const std::string Reuse =
      std::string(Server::protocolSource()) + R"scheme(
(define (on-quit) 'ok)

(define (acceptor)
  (let ((conn (io-accept *listener*)))
    (if (eof-object? conn)
        'closed
        (begin
          (admit-conn conn)
          (acceptor)))))

;; Shutdown drains the backlog first: connections the kernel already
;; completed on this shard's listener are admitted (and served) before
;; the listener closes; only never-established arrivals are refused.
(define (drain-backlog)
  (let ((conn (io-try-accept *listener*)))
    (if (and conn (not (eof-object? conn)))
        (begin
          (admit-conn conn)
          (drain-backlog))
        'drained)))

(define (taker)
  (let ((conn (io-take-conn)))
    (if (eof-object? conn)
        (begin
          (drain-backlog)
          (io-close *listener*))
        (begin
          (admit-conn conn)
          (taker)))))

(spawn acceptor)
(spawn taker)
(scheduler-run *preempt*)
)scheme";
  return M == ListenMode::ReusePort ? Reuse.c_str() : Central.c_str();
}

// Out of line so Worker's members (unique_ptr over the forward-declared
// ConnQueue) only need a complete type here.
Pool::Pool(ServeOptions O) : Opt(std::move(O)) {}

Pool::Worker::~Worker() {
  if (WakeRd >= 0)
    ::close(WakeRd);
  if (WakeWr >= 0)
    ::close(WakeWr);
}

std::unique_ptr<Interp> Pool::makeInterp(Worker &W, int LFd,
                                         std::string &Err) const {
  auto I = std::make_unique<Interp>(Opt.VmCfg);
  // Queue first: the wakeup port must be port 0 in every worker and
  // every restart, so per-shard traces line up across modes and runs.
  if (!I->vm().attachConnQueue(W.Q.get(), W.WakeRd, W.WakeWr, Err)) {
    if (LFd >= 0)
      ::close(LFd);
    return nullptr;
  }
  if (EffMode == ListenMode::ReusePort) {
    if (LFd < 0) {
      // Restart path: the crashed Interp's listener dies with its port
      // table, so re-bind a fresh one to the shared port (SO_REUSEPORT
      // admits it alongside the other shards' live listeners).
      uint16_t P = BoundPort;
      LFd = openListener(P, Opt.Backlog, Err, /*ReusePort=*/true);
      if (LFd < 0)
        return nullptr;
    }
    VM &M = I->vm();
    uint32_t Lid = M.reactor().addPort(LFd, Port::Kind::Listener);
    M.reactor().port(Lid)->setTcpPort(BoundPort);
    I->defineGlobal("*listener*", Value::fixnum(Lid));
  }
  I->defineGlobal("*max-inflight*", Value::fixnum(Opt.MaxInflight));
  I->defineGlobal("*preempt*", Value::fixnum(Opt.PreemptInterval));
  I->defineGlobal("*max-conns*", Value::fixnum(Opt.MaxConns));
  I->defineGlobal("*conn-deadline-ms*", Value::fixnum(Opt.ConnDeadlineMs));
  if (Opt.TraceWorkers)
    I->trace().start();
  return I;
}

bool Pool::start() {
  if (running()) {
    Err = {ErrorKind::Runtime, "pool already running"};
    return false;
  }
  Ws.clear();
  Stopping.store(false, std::memory_order_relaxed);
  Err = Error();

  if (Opt.Workers < 1) {
    Err = {ErrorKind::Runtime, "pool needs at least one worker"};
    return false;
  }

  uint16_t P = Opt.Port;
  std::string E;
  EffMode = Opt.Mode;
  std::vector<int> ShardFds; // One listener per worker (ReusePort only).
  auto CloseShardFds = [&ShardFds] {
    for (int Fd : ShardFds)
      if (Fd >= 0)
        ::close(Fd);
    ShardFds.clear();
  };

  if (EffMode == ListenMode::ReusePort) {
    // Worker 0's listener resolves the (possibly ephemeral) port; the
    // rest bind the resolved port, each with SO_REUSEPORT so the kernel
    // load-balances arrivals across them.  If SO_REUSEPORT itself is
    // unavailable, fall back to the central path; any later bind failure
    // is a real error.
    int F0 = openListener(P, Opt.Backlog, E, /*ReusePort=*/true);
    if (F0 < 0) {
      EffMode = ListenMode::CentralAcceptor;
      P = Opt.Port;
    } else {
      ShardFds.push_back(F0);
      for (int N = 1; N != Opt.Workers; ++N) {
        int F = openListener(P, Opt.Backlog, E, /*ReusePort=*/true);
        if (F < 0) {
          CloseShardFds();
          Err = {ErrorKind::Io, "io-listen: " + E};
          return false;
        }
        ShardFds.push_back(F);
      }
    }
  }
  if (EffMode == ListenMode::CentralAcceptor) {
    ListenFd = openListener(P, Opt.Backlog, E);
    if (ListenFd < 0) {
      Err = {ErrorKind::Io, "io-listen: " + E};
      return false;
    }
  }
  BoundPort = P;

  auto Fail = [&](int N, const std::string &Msg) {
    Err = {ErrorKind::Io, "worker " + std::to_string(N) + ": " + Msg};
    Ws.clear(); // Worker dtors close the wakeup pipes.
    CloseShardFds();
    if (ListenFd >= 0) {
      ::close(ListenFd);
      ListenFd = -1;
    }
    return false;
  };

  for (int N = 0; N != Opt.Workers; ++N) {
    auto W = std::make_unique<Worker>();
    W->Q = std::make_unique<ConnQueue>();
    if (!openPipePair(W->WakeRd, W->WakeWr, E))
      return Fail(N, E);
    int LFd = -1;
    if (EffMode == ListenMode::ReusePort) {
      LFd = ShardFds[static_cast<size_t>(N)];
      ShardFds[static_cast<size_t>(N)] = -1; // makeInterp takes ownership.
    }
    W->I = makeInterp(*W, LFd, E);
    if (!W->I)
      return Fail(N, E);
    W->Base = W->I->snapshot();
    W->Live.store(&W->I->vm().stats(), std::memory_order_release);
    Ws.push_back(std::move(W));
  }

  // Interps exist, queues are attached and Live pointers are published
  // before any thread starts, so neither a worker thread nor the
  // acceptor ever sees a half-built pool.
  for (auto &W : Ws) {
    Worker *Wp = W.get();
    Wp->Thr = std::thread([this, Wp] { workerMain(*Wp); });
  }
  if (EffMode == ListenMode::CentralAcceptor)
    Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Pool::workerMain(Worker &W) {
  const char *Program = Opt.Program ? Opt.Program : workerSource(EffMode);
  for (;;) {
    W.R = W.I->eval(Program);
    if (W.R.Ok || Stopping.load(std::memory_order_relaxed) ||
        W.Restarts >= Opt.MaxWorkerRestarts)
      return;
    // The shard's program crashed.  Its Interp is unusable (the error may
    // have left the scheduler half-switched), but the handoff queue, the
    // wakeup pipe — and every fd queued — are host-owned and survive:
    // stand up a fresh Interp on the same queue (re-binding the shard's
    // listener in ReusePort mode) and re-run the program, which drains
    // the queued connections as if they had just been handed off.
    std::string E;
    auto Fresh = makeInterp(W, -1, E);
    if (!Fresh)
      return; // Keep the crash result; the shard is lost.
    // Keep the shard's counters continuous: bank the dead Interp's totals
    // (net of the fresh one's prelude work, so diffs against Base still
    // measure only serving), and account the connections that died with
    // it as closed so Accepted - Closed keeps meaning "live".
    Stats::Snapshot Dead = W.I->snapshot();
    Dead.ConnectionsClosed =
        std::max(Dead.ConnectionsClosed, Dead.AcceptedConnections);
    Stats::Snapshot FreshBase = Fresh->snapshot();
    Fresh->vm().stats().WorkerRestarts += 1;
    // In-flight connections die with the crashed Interp: close its whole
    // port table now (clients see EOF) but keep the object alive in the
    // graveyard — the acceptor may still be reading the Stats block
    // behind the Live pointer it loaded a moment ago.
    Reactor &DeadRx = W.I->vm().reactor();
    for (size_t PI = 0; PI != DeadRx.portCount(); ++PI)
      DeadRx.port(static_cast<int64_t>(PI))->closeNow();
    {
      std::lock_guard<std::mutex> L(Mu);
      W.Carry += Dead - FreshBase;
      W.Live.store(&Fresh->vm().stats(), std::memory_order_release);
      W.Graveyard.push_back(std::move(W.I));
      W.I = std::move(Fresh);
      W.Restarts += 1;
    }
    // No notify() needed: if fds are queued, the new program's first
    // io-take-conn pops one before ever parking.
  }
}

void Pool::notifyWorker(Worker &W) {
  // Same contract as Reactor::notify, but against the host-owned write
  // end, which is valid for the pool's whole life — no lock against a
  // mid-restart Interp swap.  EAGAIN (pipe full) is success: the wakeup
  // port is already readable.
  char B = 1;
  for (;;) {
    ssize_t N = ::write(W.WakeWr, &B, 1);
    if (N >= 0 || errno != EINTR)
      return;
  }
}

void Pool::acceptLoop() {
  // Poll with a short timeout instead of blocking in accept(2): closing a
  // listener out from under a blocked accept is not a portable wakeup, a
  // poll deadline is.
  std::vector<char> Touched(static_cast<size_t>(workers()), 0);
  bool Draining = false;
  for (;;) {
    // Shutdown runs one final non-blocking drain before the thread exits:
    // connections the kernel already completed into the backlog belong to
    // clients whose connect() succeeded, so they are placed, not reset.
    // stop() closes the handoff queues only after joining this thread, so
    // every drained fd still has an open queue to land in.
    if (!Draining)
      Draining = Stopping.load(std::memory_order_relaxed);
    if (!Draining && !pollOneFd(ListenFd, /*ForWrite=*/false, /*TimeoutMs=*/50))
      continue;
    // Batch: accept and place every connection the kernel has pending,
    // then poke each touched worker once — a burst of B arrivals costs
    // one poll wakeup and at most min(B, workers) pipe writes.  The
    // queue pushes update size() as we go, so leastLoaded keeps
    // spreading the batch instead of dumping it on one shard.
    std::fill(Touched.begin(), Touched.end(), 0);
    bool Any = false;
    bool Dead = false;
    for (;;) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          break;
        Dead = true; // Listener gone or unrecoverable.
        break;
      }
      int N = leastLoaded();
      if (!Ws[static_cast<size_t>(N)]->Q->push(Fd)) {
        ::close(Fd);
        continue;
      }
      Touched[static_cast<size_t>(N)] = 1;
      Any = true;
    }
    if (Any)
      for (int N = 0; N != workers(); ++N)
        if (Touched[static_cast<size_t>(N)])
          notifyWorker(*Ws[static_cast<size_t>(N)]);
    if (Draining || Dead)
      return;
  }
}

int Pool::leastLoaded() const {
  int Best = 0;
  uint64_t BestLoad = ~uint64_t{0};
  for (int N = 0; N != workers(); ++N) {
    const Worker &W = *Ws[static_cast<size_t>(N)];
    // Queue depth + live connections.  The counters are the shard's own
    // relaxed atomics behind the published Live pointer (kept valid
    // across restarts by the graveyard); a transiently stale read just
    // means a slightly imperfect placement, never a lost connection.
    const Stats &S = *W.Live.load(std::memory_order_acquire);
    uint64_t Accepted = S.AcceptedConnections;
    uint64_t Closed = S.ConnectionsClosed;
    uint64_t Load = W.Q->size() + (Accepted > Closed ? Accepted - Closed : 0);
    if (Load < BestLoad) {
      BestLoad = Load;
      Best = N;
    }
  }
  return Best;
}

Error Pool::handoff(int Worker, int Fd) {
  if (Worker < 0 || Worker >= workers())
    return {ErrorKind::Runtime,
            "handoff: no such worker: " + std::to_string(Worker)};
  if (Stopping.load(std::memory_order_relaxed))
    return {ErrorKind::ServerStopped, "pool is stopping"};
  auto &W = *Ws[static_cast<size_t>(Worker)];
  if (!W.Q->push(Fd))
    return {ErrorKind::ServerStopped,
            "worker " + std::to_string(Worker) + ": handoff queue closed"};
  // The worker may be blocked in poll(2); make its wakeup port readable.
  notifyWorker(W);
  return {};
}

void Pool::stop() {
  if (Ws.empty())
    return;
  Stopping.store(true, std::memory_order_relaxed);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  // Close every handoff queue: each worker's take-conn loop drains what
  // is left, then sees EOF and winds down — directly (CentralAcceptor)
  // or by closing its shard's listener first (ReusePort); either way the
  // scheduler run ends once in-flight connections finish.  The poke goes
  // down the host-owned pipe, so a shard mid-restart still gets it.
  for (auto &W : Ws) {
    W->Q->close();
    notifyWorker(*W);
  }
  for (auto &W : Ws)
    if (W->Thr.joinable())
      W->Thr.join();
  if (Err.ok()) {
    for (int N = 0; N != workers(); ++N) {
      const Interp::Result &R = Ws[static_cast<size_t>(N)]->R;
      if (!R.Ok) {
        Err = {R.Kind, "worker " + std::to_string(N) + ": " + R.Error};
        break;
      }
    }
  }
}

Pool::~Pool() { stop(); }

Stats::Snapshot Pool::snapshot() const {
  Stats::Snapshot Sum;
  std::lock_guard<std::mutex> L(Mu);
  for (auto &W : Ws) {
    Sum += W->I->snapshot();
    Sum += W->Carry;
  }
  return Sum;
}

Stats::Snapshot Pool::snapshot(int Worker) const {
  std::lock_guard<std::mutex> L(Mu);
  const auto &W = *Ws.at(static_cast<size_t>(Worker));
  Stats::Snapshot S = W.I->snapshot();
  S += W.Carry;
  return S;
}

Stats::Snapshot Pool::baseline() const {
  Stats::Snapshot Sum;
  for (auto &W : Ws)
    Sum += W->Base;
  return Sum;
}

Stats::Snapshot Pool::baseline(int Worker) const {
  return Ws.at(static_cast<size_t>(Worker))->Base;
}

const Interp::Result &Pool::result(int Worker) const {
  return Ws.at(static_cast<size_t>(Worker))->R;
}

std::string Pool::traceDump(int Worker) const {
  // Tag every line with the shard id so concatenated dumps stay
  // unambiguous; each shard numbers its own events from zero.
  std::string Raw;
  {
    std::lock_guard<std::mutex> L(Mu);
    Raw = Ws.at(static_cast<size_t>(Worker))->I->trace().toString();
  }
  std::string Tag = "w" + std::to_string(Worker) + " ";
  std::string Out;
  Out.reserve(Raw.size() + Tag.size() * 64);
  std::istringstream In(Raw);
  std::string Line;
  while (std::getline(In, Line)) {
    Out += Tag;
    Out += Line;
    Out += '\n';
  }
  return Out;
}
