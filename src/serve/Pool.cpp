#include "serve/Pool.h"

#include "io/ConnQueue.h"
#include "io/Port.h"
#include "io/Reactor.h"
#include "serve/Server.h"

#include <algorithm>
#include <cerrno>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

using namespace osc;

// The worker program: the shared protocol core, an on-quit that tears
// down nothing beyond the connection (pool shutdown is host-driven, by
// closing the handoff queue), and a take-conn accept loop.
const char *Pool::workerSource() {
  static const std::string Src =
      std::string(Server::protocolSource()) + R"scheme(
(define (on-quit) 'ok)

;; The shard's accept loop: every io-take-conn parks this green thread on
;; the reactor's wakeup port until the host hands over a connection;
;; EOF means the queue closed — wind down.
(define (worker-loop)
  (let ((conn (io-take-conn)))
    (if (eof-object? conn)
        'closed
        (begin
          (admit-conn conn)
          (worker-loop)))))

(spawn worker-loop)
(scheduler-run *preempt*)
)scheme";
  return Src.c_str();
}

// Out of line so Worker's members (unique_ptr over the forward-declared
// ConnQueue) only need a complete type here.
Pool::Pool(Options O) : Opt(std::move(O)) {}

bool Pool::start() {
  if (running()) {
    Err = {ErrorKind::Runtime, "pool already running"};
    return false;
  }
  Ws.clear();
  Stopping.store(false, std::memory_order_relaxed);
  Err = Error();

  if (Opt.Workers < 1) {
    Err = {ErrorKind::Runtime, "pool needs at least one worker"};
    return false;
  }

  uint16_t P = Opt.Port;
  std::string E;
  ListenFd = openListener(P, Opt.Backlog, E);
  if (ListenFd < 0) {
    Err = {ErrorKind::Io, "io-listen: " + E};
    return false;
  }
  BoundPort = P;

  const char *Program = Opt.Program ? Opt.Program : workerSource();
  for (int N = 0; N != Opt.Workers; ++N) {
    auto W = std::make_unique<Worker>();
    W->I = std::make_unique<Interp>(Opt.VmCfg);
    W->Q = std::make_unique<ConnQueue>();
    if (!W->I->vm().attachConnQueue(W->Q.get(), E)) {
      Err = {ErrorKind::Io, "worker " + std::to_string(N) + ": " + E};
      Ws.clear();
      ::close(ListenFd);
      ListenFd = -1;
      return false;
    }
    defineWorkerGlobals(*W->I);
    if (Opt.TraceWorkers)
      W->I->trace().start();
    W->Base = W->I->snapshot();
    Ws.push_back(std::move(W));
  }

  // Interps exist and queues are attached before any thread starts, so a
  // worker thread never sees a half-built pool.
  for (auto &W : Ws) {
    Worker *Wp = W.get();
    Wp->Thr = std::thread([this, Wp, Program] { workerMain(*Wp, Program); });
  }
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Pool::defineWorkerGlobals(Interp &I) const {
  I.defineGlobal("*max-inflight*", Value::fixnum(Opt.MaxInflight));
  I.defineGlobal("*preempt*", Value::fixnum(Opt.PreemptInterval));
  I.defineGlobal("*max-conns*", Value::fixnum(Opt.MaxConns));
  I.defineGlobal("*conn-deadline-ms*", Value::fixnum(Opt.ConnDeadlineMs));
}

void Pool::workerMain(Worker &W, const char *Program) {
  for (;;) {
    W.R = W.I->eval(Program);
    if (W.R.Ok || Stopping.load(std::memory_order_relaxed) ||
        W.Restarts >= Opt.MaxWorkerRestarts)
      return;
    // The shard's program crashed.  Its Interp is unusable (the error may
    // have left the scheduler half-switched), but the handoff queue — and
    // every fd queued in it — is host-owned and survives: stand up a fresh
    // Interp on the same queue and re-run the program, which drains the
    // queued connections as if they had just been handed off.  In-flight
    // connections died with the old Interp (their fds close with its port
    // table).
    auto Fresh = std::make_unique<Interp>(Opt.VmCfg);
    std::string E;
    if (!Fresh->vm().attachConnQueue(W.Q.get(), E))
      return; // Keep the crash result; the shard is lost.
    defineWorkerGlobals(*Fresh);
    if (Opt.TraceWorkers)
      Fresh->trace().start();
    // Keep the shard's counters continuous: bank the dead Interp's totals
    // (net of the fresh one's prelude work, so diffs against Base still
    // measure only serving), and account the connections that died with
    // it as closed so Accepted - Closed keeps meaning "live".
    Stats::Snapshot Dead = W.I->snapshot();
    Dead.ConnectionsClosed =
        std::max(Dead.ConnectionsClosed, Dead.AcceptedConnections);
    Stats::Snapshot FreshBase = Fresh->snapshot();
    Fresh->vm().stats().WorkerRestarts += 1;
    {
      std::lock_guard<std::mutex> L(Mu);
      W.Carry += Dead - FreshBase;
      W.I = std::move(Fresh);
      W.Restarts += 1;
    }
    // No notify() needed: if fds are queued, the new program's first
    // io-take-conn pops one before ever parking.
  }
}

void Pool::acceptLoop() {
  // Poll with a short timeout instead of blocking in accept(2): closing a
  // listener out from under a blocked accept is not a portable wakeup, a
  // poll deadline is.
  while (!Stopping.load(std::memory_order_relaxed)) {
    if (!pollOneFd(ListenFd, /*ForWrite=*/false, /*TimeoutMs=*/50))
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED)
        continue;
      return; // Listener gone (shutdown) or unrecoverable.
    }
    Error E = handoff(leastLoaded(), Fd);
    if (E)
      ::close(Fd);
  }
}

int Pool::leastLoaded() const {
  int Best = 0;
  uint64_t BestLoad = ~uint64_t{0};
  std::lock_guard<std::mutex> L(Mu); // vs. workerMain swapping a shard's Interp
  for (int N = 0; N != workers(); ++N) {
    const Worker &W = *Ws[static_cast<size_t>(N)];
    // Queue depth + live connections.  The counters are the shard's own
    // relaxed atomics; a transiently stale read just means a slightly
    // imperfect placement, never a lost connection.
    const Stats &S = W.I->stats();
    uint64_t Accepted = S.AcceptedConnections;
    uint64_t Closed = S.ConnectionsClosed;
    uint64_t Load = W.Q->size() + (Accepted > Closed ? Accepted - Closed : 0);
    if (Load < BestLoad) {
      BestLoad = Load;
      Best = N;
    }
  }
  return Best;
}

Error Pool::handoff(int Worker, int Fd) {
  if (Worker < 0 || Worker >= workers())
    return {ErrorKind::Runtime,
            "handoff: no such worker: " + std::to_string(Worker)};
  if (Stopping.load(std::memory_order_relaxed))
    return {ErrorKind::ServerStopped, "pool is stopping"};
  auto &W = *Ws[static_cast<size_t>(Worker)];
  if (!W.Q->push(Fd))
    return {ErrorKind::ServerStopped,
            "worker " + std::to_string(Worker) + ": handoff queue closed"};
  // The worker may be blocked in poll(2); make its wakeup port readable.
  // Under the lock because workerMain may be swapping this shard's Interp
  // (a restart's first take-conn drains the queue without needing the
  // poke, so whichever Interp the pointer resolves to is fine).
  std::lock_guard<std::mutex> L(Mu);
  W.I->vm().reactor().notify();
  return {};
}

void Pool::stop() {
  if (Ws.empty())
    return;
  Stopping.store(true, std::memory_order_relaxed);
  if (Acceptor.joinable())
    Acceptor.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  // Close every handoff queue: each worker's take-conn loop drains what
  // is left, then sees EOF and stops respawning conn threads; its
  // scheduler run ends once in-flight connections finish.
  {
    std::lock_guard<std::mutex> L(Mu); // vs. a shard mid-restart
    for (auto &W : Ws) {
      W->Q->close();
      W->I->vm().reactor().notify();
    }
  }
  for (auto &W : Ws)
    if (W->Thr.joinable())
      W->Thr.join();
  if (Err.ok()) {
    for (int N = 0; N != workers(); ++N) {
      const Interp::Result &R = Ws[static_cast<size_t>(N)]->R;
      if (!R.Ok) {
        Err = {R.Kind, "worker " + std::to_string(N) + ": " + R.Error};
        break;
      }
    }
  }
}

Pool::~Pool() { stop(); }

Stats::Snapshot Pool::snapshot() const {
  Stats::Snapshot Sum;
  std::lock_guard<std::mutex> L(Mu);
  for (auto &W : Ws) {
    Sum += W->I->snapshot();
    Sum += W->Carry;
  }
  return Sum;
}

Stats::Snapshot Pool::snapshot(int Worker) const {
  std::lock_guard<std::mutex> L(Mu);
  const auto &W = *Ws.at(static_cast<size_t>(Worker));
  Stats::Snapshot S = W.I->snapshot();
  S += W.Carry;
  return S;
}

Stats::Snapshot Pool::baseline() const {
  Stats::Snapshot Sum;
  for (auto &W : Ws)
    Sum += W->Base;
  return Sum;
}

Stats::Snapshot Pool::baseline(int Worker) const {
  return Ws.at(static_cast<size_t>(Worker))->Base;
}

const Interp::Result &Pool::result(int Worker) const {
  return Ws.at(static_cast<size_t>(Worker))->R;
}

std::string Pool::traceDump(int Worker) const {
  // Tag every line with the shard id so concatenated dumps stay
  // unambiguous; each shard numbers its own events from zero.
  std::string Raw = Ws.at(static_cast<size_t>(Worker))->I->trace().toString();
  std::string Tag = "w" + std::to_string(Worker) + " ";
  std::string Out;
  Out.reserve(Raw.size() + Tag.size() * 64);
  std::istringstream In(Raw);
  std::string Line;
  while (std::getline(In, Line)) {
    Out += Tag;
    Out += Line;
    Out += '\n';
  }
  return Out;
}
