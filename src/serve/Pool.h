//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded serving pool: N workers, each a whole Interp + Reactor on its
/// own OS thread, behind one TCP port.
///
/// The VM is single-threaded by design — a continuation captured on one
/// control stack means nothing on another — so the pool scales the
/// continuation-per-request server the only way that preserves the paper's
/// cost model: shard it.  Every worker runs the same Scheme serving program
/// as the stand-alone Server (the protocol core is literally shared source;
/// see Server::protocolSource), and connections reach a shard through one
/// of two accept paths (ServeOptions::Mode):
///
/// ListenMode::ReusePort (default): every worker's reactor owns its own
/// listening socket bound to the shared port with SO_REUSEPORT, and an
/// acceptor green thread io-accepts in-shard — the kernel load-balances
/// arrivals across the listeners, and the hot path has no acceptor
/// thread, no cross-thread fd handoff and no self-pipe write at all.
/// Each worker still owns a handoff queue and a taker green thread parked
/// on io-take-conn: that is how host-driven shutdown reaches the shard
/// (stop() closes the queue; the taker wakes with EOF and closes the
/// shard's listener) and how Pool::handoff targets a specific shard.
///
/// ListenMode::CentralAcceptor: one acceptor thread accepts on a single
/// shared listener and hands each fd to the least-loaded worker.  The
/// handoff is lock-free end to end: the fd goes through the shard's MPSC
/// ConnQueue (one compare-exchange), the load signal is each shard's own
/// relaxed-atomic counters read through a published pointer, and the
/// wakeup is one byte written to a host-owned pipe — the acceptor never
/// takes a shard mutex.  Ready connections are drained in batches: every
/// fd the kernel has pending is accepted and placed in one sweep, then
/// each touched worker is poked once, so a burst of B connections costs
/// one poll wakeup and at most min(B, workers) pipe writes instead of B.
///
/// Either way the connection lives out its life on one shard, every
/// park/resume is a one-shot capture + invoke with zero words copied, and
/// per-shard traces stay deterministic because each worker has its own
/// sequence numbering and fd numbers never enter a trace (port ids do).
///
/// Stats: each worker owns its Stats; Pool::snapshot() sums per-worker
/// Snapshots, so throughput and the zero-copy invariant can be checked per
/// shard or for the whole pool (bench/bench_pool.cpp does both).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SERVE_POOL_H
#define OSC_SERVE_POOL_H

#include "core/Config.h"
#include "serve/ServeOptions.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "vm/Interp.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace osc {

class ConnQueue;

class Pool {
public:
  /// Deprecated alias, kept for one release: the pool now shares one
  /// options surface with Server.
  using Options [[deprecated("use osc::ServeOptions")]] = ServeOptions;

  explicit Pool(ServeOptions O);
  ~Pool();
  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  /// Creates the listeners, the workers (each with its own Interp, handoff
  /// queue and wakeup pipe) and — in CentralAcceptor mode — the acceptor
  /// thread.  False (with error()) if any piece could not be set up; no
  /// threads are left running on failure.
  bool start();
  /// Stops accepting, closes every handoff queue (each worker's take-conn
  /// loop sees EOF — and, in ReusePort mode, closes its shard's listener —
  /// so its program winds down once in-flight connections drain), joins
  /// all threads.  Idempotent.  Clients should have closed their
  /// connections by then, like Server::stop().
  void stop();

  bool running() const { return !Ws.empty() && Ws.front()->Thr.joinable(); }
  uint16_t tcpPort() const { return BoundPort; }
  int workers() const { return static_cast<int>(Ws.size()); }
  /// The accept path actually in effect: Opt.Mode, unless ReusePort was
  /// requested but unavailable (no SO_REUSEPORT on this platform), in
  /// which case start() falls back to CentralAcceptor and reports it here.
  ListenMode listenMode() const { return EffMode; }
  /// The first failure, classified — setup problems (Io), a worker
  /// program's own error after stop() ("worker N: ..."), or ServerStopped
  /// for handoffs after stop.
  const Error &error() const { return Err; }

  /// Sum of every worker's counters (coherent per shard, summed across
  /// shards).  Safe while running — each counter is a relaxed atomic —
  /// but exact only after stop().
  Stats::Snapshot snapshot() const;
  /// One worker's counters.
  Stats::Snapshot snapshot(int Worker) const;
  /// Per-worker counters captured at start(), summed.
  Stats::Snapshot baseline() const;
  Stats::Snapshot baseline(int Worker) const;
  /// A worker's eval result; only meaningful after stop().
  const Interp::Result &result(int Worker) const;
  /// A worker's trace, one "w<id> #seq name ..." line per event — tagged
  /// so dumps from different shards can be told apart (and concatenated
  /// without ambiguity).  Only meaningful after stop().
  std::string traceDump(int Worker) const;

  /// Hands an accepted connection to a specific worker, as the acceptor
  /// thread does internally.  Works in both modes (a ReusePort shard's
  /// taker admits handed-off fds exactly like accepted ones).  On success
  /// the pool owns \p Fd; on failure (ServerStopped once the pool is
  /// stopping) the caller keeps it.  Lock-free: a queue push plus one
  /// pipe write.  Exposed so tests can target a shard deterministically.
  Error handoff(int Worker, int Fd);

  /// The worker serving program for \p M: Server::protocolSource() plus
  /// the mode's accept loop(s) — a take-conn loop for CentralAcceptor; an
  /// in-shard io-accept loop plus the shutdown-watching take-conn loop
  /// for ReusePort (expects *listener*).  Both expect *max-inflight* and
  /// *preempt*.
  static const char *workerSource(ListenMode M);

private:
  struct Worker {
    std::unique_ptr<Interp> I;
    std::unique_ptr<ConnQueue> Q;
    std::thread Thr;
    Interp::Result R;
    Stats::Snapshot Base;
    Stats::Snapshot Carry; ///< Counters accumulated from Interps this
                           ///< shard lost to crashes (net of each fresh
                           ///< Interp's own prelude work), so snapshots
                           ///< stay continuous across restarts.
    int Restarts = 0;
    /// Host-owned wakeup pipe, created before the worker's first Interp
    /// and surviving every restart (each Interp's reactor dup(2)s it; see
    /// Reactor::enableWakeupFrom).  The acceptor's poke is a write to
    /// WakeWr — a stable fd, so no lock against the Interp swap.
    int WakeRd = -1;
    int WakeWr = -1;
    /// The current Interp's counters, published for the acceptor's
    /// lock-free load reads.  Crashed Interps retire to Graveyard (ports
    /// closed, object alive) so a racing read through a just-replaced
    /// pointer still lands on live memory.
    std::atomic<const Stats *> Live{nullptr};
    std::vector<std::unique_ptr<Interp>> Graveyard;

    ~Worker();
  };

  void acceptLoop();
  /// Runs the shard's serving program, restarting it on a fresh Interp
  /// (same handoff queue and wakeup pipe; queued fds drain into the new
  /// program, and a ReusePort shard re-binds its listener) after a crash,
  /// up to MaxWorkerRestarts times.
  void workerMain(Worker &W);
  /// Builds one worker's Interp: queue attach (wakeup = port 0), the
  /// shard listener in ReusePort mode (port 1, from \p ListenFd if >= 0,
  /// else freshly bound to BoundPort), globals, tracer.  Null + \p Err
  /// on failure (an adopted \p ListenFd is closed).
  std::unique_ptr<Interp> makeInterp(Worker &W, int ListenFd,
                                     std::string &Err) const;
  /// Queue depth plus live (accepted - closed) connections, from the
  /// shard's own counters; ties break toward the lowest worker id.
  /// Lock-free (reads the published Stats pointers).
  int leastLoaded() const;
  /// One byte down the shard's host-owned wakeup pipe.  Lock-free.
  static void notifyWorker(Worker &W);

  ServeOptions Opt;
  ListenMode EffMode = ListenMode::ReusePort;
  std::vector<std::unique_ptr<Worker>> Ws;
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};
  /// Guards each Worker's Interp pointer: workerMain swaps it on restart
  /// while snapshot()/traceDump()/result() read through it from other
  /// threads.  The acceptor path never takes it.
  mutable std::mutex Mu;
  int ListenFd = -1; ///< CentralAcceptor's shared listener; -1 otherwise.
  uint16_t BoundPort = 0;
  Error Err;
};

} // namespace osc

#endif // OSC_SERVE_POOL_H
