//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded serving pool: N workers, each a whole Interp + Reactor on its
/// own OS thread, behind one accept path.
///
/// The VM is single-threaded by design — a continuation captured on one
/// control stack means nothing on another — so the pool scales the
/// continuation-per-request server the only way that preserves the paper's
/// cost model: shard it.  Every worker runs the same Scheme serving program
/// as the stand-alone Server (the protocol core is literally shared source;
/// see Server::protocolSource), with one difference: instead of io-accept
/// on a listener, a worker's accept loop calls io-take-conn, which parks on
/// the reactor's cross-thread wakeup pipe until the pool's acceptor thread
/// pushes an accepted fd onto that worker's handoff queue.
///
/// The handoff is the only cross-thread traffic.  The acceptor accepts on
/// the shared listener, picks the least-loaded worker (handoff-queue depth
/// plus live connections, from each shard's own counters), pushes the fd,
/// and pokes that worker's Reactor::notify().  From there everything is
/// shard-local: the wakeup port becomes readable, the parked worker thread
/// resumes through the usual one-shot invoke path (zero words copied), and
/// the connection lives out its life on that shard.  Per-shard traces stay
/// deterministic because each worker has its own sequence numbering and
/// fd numbers never enter a trace (port ids do).
///
/// Stats: each worker owns its Stats; Pool::snapshot() sums per-worker
/// Snapshots, so throughput and the zero-copy invariant can be checked per
/// shard or for the whole pool (bench/bench_pool.cpp does both).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SERVE_POOL_H
#define OSC_SERVE_POOL_H

#include "core/Config.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "vm/Interp.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace osc {

class ConnQueue;

class Pool {
public:
  struct Options {
    int Workers = 4;             ///< Shard count (each is one OS thread).
    uint16_t Port = 0;           ///< 0 picks an ephemeral loopback port.
    int MaxInflight = 64;        ///< Backpressure bound per worker.
    int64_t PreemptInterval = 0; ///< Scheduler slice; 0 = cooperative.
    int Backlog = 128;
    int MaxConns = 0;       ///< Per-shard admission cap (BUSY past it); 0 =
                            ///< unlimited.  See Server::Options::MaxConns.
    int ConnDeadlineMs = 0; ///< Per-connection park deadline per shard; 0 =
                            ///< none.  See Server::Options::ConnDeadlineMs.
    int MaxWorkerRestarts = 3; ///< Times a crashed worker program is
                               ///< restarted on a fresh Interp (its handoff
                               ///< queue and queued fds survive) before the
                               ///< shard is given up on.
    Config VmCfg;         ///< Control-representation knobs (every worker).
    const char *Program = nullptr; ///< Test hook: replaces workerSource().
    bool TraceWorkers = false;     ///< Arm every worker's tracer at start.
  };

  explicit Pool(Options O);
  ~Pool();
  Pool(const Pool &) = delete;
  Pool &operator=(const Pool &) = delete;

  /// Creates the listener, the workers (each with its own Interp and
  /// handoff queue) and the acceptor thread.  False (with error()) if any
  /// piece could not be set up; no threads are left running on failure.
  bool start();
  /// Stops accepting, closes every handoff queue (each worker's take-conn
  /// loop sees EOF and its program winds down once in-flight connections
  /// drain), joins all threads.  Idempotent.  Clients should have closed
  /// their connections by then, like Server::stop().
  void stop();

  bool running() const { return !Ws.empty() && Ws.front()->Thr.joinable(); }
  uint16_t tcpPort() const { return BoundPort; }
  int workers() const { return static_cast<int>(Ws.size()); }
  /// The first failure, classified — setup problems (Io), a worker
  /// program's own error after stop() ("worker N: ..."), or ServerStopped
  /// for handoffs after stop.
  const Error &error() const { return Err; }

  /// Sum of every worker's counters (coherent per shard, summed across
  /// shards).  Safe while running — each counter is a relaxed atomic —
  /// but exact only after stop().
  Stats::Snapshot snapshot() const;
  /// One worker's counters.
  Stats::Snapshot snapshot(int Worker) const;
  /// Per-worker counters captured at start(), summed.
  Stats::Snapshot baseline() const;
  Stats::Snapshot baseline(int Worker) const;
  /// A worker's eval result; only meaningful after stop().
  const Interp::Result &result(int Worker) const;
  /// A worker's trace, one "w<id> #seq name ..." line per event — tagged
  /// so dumps from different shards can be told apart (and concatenated
  /// without ambiguity).  Only meaningful after stop().
  std::string traceDump(int Worker) const;

  /// Hands an accepted connection to a specific worker, as the acceptor
  /// thread does internally.  On success the pool owns \p Fd; on failure
  /// (ServerStopped once the pool is stopping) the caller keeps it.
  /// Exposed so tests can target a shard deterministically.
  Error handoff(int Worker, int Fd);

  /// The worker serving program: Server::protocolSource() plus a
  /// take-conn accept loop (expects *max-inflight* and *preempt*).
  static const char *workerSource();

private:
  struct Worker {
    std::unique_ptr<Interp> I;
    std::unique_ptr<ConnQueue> Q;
    std::thread Thr;
    Interp::Result R;
    Stats::Snapshot Base;
    Stats::Snapshot Carry; ///< Counters accumulated from Interps this
                           ///< shard lost to crashes (net of each fresh
                           ///< Interp's own prelude work), so snapshots
                           ///< stay continuous across restarts.
    int Restarts = 0;
  };

  void acceptLoop();
  /// Runs the shard's serving program, restarting it on a fresh Interp
  /// (same handoff queue; queued fds drain into the new program) after a
  /// crash, up to MaxWorkerRestarts times.
  void workerMain(Worker &W, const char *Program);
  void defineWorkerGlobals(Interp &I) const;
  /// Queue depth plus live (accepted - closed) connections, from the
  /// shard's own counters; ties break toward the lowest worker id.
  int leastLoaded() const;

  Options Opt;
  std::vector<std::unique_ptr<Worker>> Ws;
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};
  /// Guards each Worker's Interp pointer: workerMain swaps it on restart
  /// while the acceptor (leastLoaded/handoff) and snapshot() read through
  /// it from other threads.
  mutable std::mutex Mu;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  Error Err;
};

} // namespace osc

#endif // OSC_SERVE_POOL_H
