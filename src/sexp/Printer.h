//===----------------------------------------------------------------------===//
///
/// \file
/// Datum printer: renders Values in external (write) or display form.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SEXP_PRINTER_H
#define OSC_SEXP_PRINTER_H

#include "object/Value.h"

#include <string>

namespace osc {

/// Renders \p V in machine-readable form (strings quoted/escaped,
/// characters as #\x).  Cycle-safe up to a depth bound.
std::string writeToString(Value V);

/// Renders \p V in human form (strings raw, characters literal).
std::string displayToString(Value V);

} // namespace osc

#endif // OSC_SEXP_PRINTER_H
