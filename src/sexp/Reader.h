//===----------------------------------------------------------------------===//
///
/// \file
/// S-expression reader: parses program text into heap-allocated datums.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_SEXP_READER_H
#define OSC_SEXP_READER_H

#include "object/Heap.h"
#include "object/Value.h"

#include <string>
#include <string_view>
#include <vector>

namespace osc {

/// Result of reading one datum.
struct ReadResult {
  bool Ok = false;
  bool AtEof = false; ///< No datum before end of input (not an error).
  Value Datum;
  std::string Error; ///< Message with line info when !Ok.
};

/// A recursive-descent reader over one input buffer.
///
/// Supports: lists (proper and dotted), vectors #(...), fixnums, flonums,
/// #t/#f, characters (#\a, #\space, #\newline, #\tab), strings with escapes,
/// symbols, quote/quasiquote/unquote/unquote-splicing sugar, line comments
/// (;) and datum comments (#;).
class Reader {
public:
  Reader(Heap &H, std::string_view Input);

  /// Reads the next datum.  AtEof is set when input is exhausted.
  ReadResult read();

  /// Reads all datums until end of input; returns false and sets \p Error
  /// on the first syntax error.
  bool readAll(std::vector<Value> &Out, std::string &Error);

private:
  bool atEnd() const { return Pos >= Input.size(); }
  char peek() const { return Input[Pos]; }
  char advance();
  void skipAtmosphere(); ///< Whitespace + comments.
  ReadResult error(const std::string &Msg);
  ReadResult readDatum();
  ReadResult readList(char Close);
  ReadResult readVector();
  ReadResult readString();
  ReadResult readHash();
  ReadResult readAtom();
  ReadResult readAbbrev(const char *SymbolName);

  Heap &H;
  std::string_view Input;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Convenience: reads a single datum from \p Text.
ReadResult readDatum(Heap &H, std::string_view Text);

} // namespace osc

#endif // OSC_SEXP_READER_H
