#include "sexp/Reader.h"

#include "object/ListUtil.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace osc;

static bool isDelimiter(char C) {
  return std::isspace(static_cast<unsigned char>(C)) || C == '(' || C == ')' ||
         C == '[' || C == ']' || C == '"' || C == ';';
}

static bool isSymbolChar(char C) { return !isDelimiter(C); }

Reader::Reader(Heap &H, std::string_view Input) : H(H), Input(Input) {}

char Reader::advance() {
  char C = Input[Pos++];
  if (C == '\n')
    ++Line;
  return C;
}

void Reader::skipAtmosphere() {
  while (!atEnd()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == ';') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    // Datum comment #;<datum>
    if (C == '#' && Pos + 1 < Input.size() && Input[Pos + 1] == ';') {
      advance();
      advance();
      skipAtmosphere();
      ReadResult Skipped = readDatum();
      if (!Skipped.Ok)
        return; // The syntax error will re-surface on the next read.
      continue;
    }
    return;
  }
}

ReadResult Reader::error(const std::string &Msg) {
  ReadResult R;
  R.Error = "read error at line " + std::to_string(Line) + ": " + Msg;
  return R;
}

ReadResult Reader::read() {
  skipAtmosphere();
  if (atEnd()) {
    ReadResult R;
    R.AtEof = true;
    return R;
  }
  return readDatum();
}

bool Reader::readAll(std::vector<Value> &Out, std::string &Error) {
  for (;;) {
    ReadResult R = read();
    if (R.AtEof)
      return true;
    if (!R.Ok) {
      Error = R.Error;
      return false;
    }
    Out.push_back(R.Datum);
  }
}

ReadResult Reader::readDatum() {
  skipAtmosphere();
  if (atEnd())
    return error("unexpected end of input");
  char C = peek();
  switch (C) {
  case '(':
    advance();
    return readList(')');
  case '[':
    advance();
    return readList(']');
  case ')':
  case ']':
    return error("unexpected closing paren");
  case '"':
    advance();
    return readString();
  case '#':
    return readHash();
  case '\'':
    advance();
    return readAbbrev("quote");
  case '`':
    advance();
    return readAbbrev("quasiquote");
  case ',':
    advance();
    if (!atEnd() && peek() == '@') {
      advance();
      return readAbbrev("unquote-splicing");
    }
    return readAbbrev("unquote");
  default:
    return readAtom();
  }
}

ReadResult Reader::readAbbrev(const char *SymbolName) {
  ReadResult Inner = readDatum();
  if (!Inner.Ok)
    return Inner;
  GCRoot Guard(H, Inner.Datum);
  Value Sym = Value::object(H.intern(SymbolName));
  Inner.Datum = cons(H, Sym, cons(H, Guard.get(), Value::nil()));
  return Inner;
}

ReadResult Reader::readList(char Close) {
  std::vector<Value> Elems;
  Value Tail = Value::nil();
  for (;;) {
    skipAtmosphere();
    if (atEnd())
      return error("unterminated list");
    if (peek() == Close) {
      advance();
      break;
    }
    if (peek() == ')' || peek() == ']')
      return error("mismatched closing paren");
    // Dotted tail.
    if (peek() == '.' && Pos + 1 < Input.size() &&
        isDelimiter(Input[Pos + 1])) {
      if (Elems.empty())
        return error("dot at start of list");
      advance();
      ReadResult R = readDatum();
      if (!R.Ok)
        return R;
      Tail = R.Datum;
      skipAtmosphere();
      if (atEnd() || peek() != Close)
        return error("expected closing paren after dotted tail");
      advance();
      break;
    }
    ReadResult R = readDatum();
    if (!R.Ok)
      return R;
    Elems.push_back(R.Datum);
  }
  Value L = Tail;
  for (auto It = Elems.rbegin(); It != Elems.rend(); ++It)
    L = cons(H, *It, L);
  ReadResult R;
  R.Ok = true;
  R.Datum = L;
  return R;
}

ReadResult Reader::readVector() {
  std::vector<Value> Elems;
  for (;;) {
    skipAtmosphere();
    if (atEnd())
      return error("unterminated vector");
    if (peek() == ')') {
      advance();
      break;
    }
    ReadResult R = readDatum();
    if (!R.Ok)
      return R;
    Elems.push_back(R.Datum);
  }
  Vector *V = H.allocVector(static_cast<uint32_t>(Elems.size()));
  for (uint32_t I = 0; I != Elems.size(); ++I)
    V->set(I, Elems[I]);
  ReadResult R;
  R.Ok = true;
  R.Datum = Value::object(V);
  return R;
}

ReadResult Reader::readString() {
  std::string S;
  for (;;) {
    if (atEnd())
      return error("unterminated string");
    char C = advance();
    if (C == '"')
      break;
    if (C == '\\') {
      if (atEnd())
        return error("unterminated escape");
      char E = advance();
      switch (E) {
      case 'n':
        S.push_back('\n');
        break;
      case 't':
        S.push_back('\t');
        break;
      case 'r':
        S.push_back('\r');
        break;
      case '\\':
      case '"':
        S.push_back(E);
        break;
      default:
        return error(std::string("bad string escape '\\") + E + "'");
      }
      continue;
    }
    S.push_back(C);
  }
  ReadResult R;
  R.Ok = true;
  R.Datum = Value::object(H.allocString(S));
  return R;
}

ReadResult Reader::readHash() {
  advance(); // '#'
  if (atEnd())
    return error("lone '#'");
  char C = advance();
  ReadResult R;
  switch (C) {
  case 't':
    R.Ok = true;
    R.Datum = Value::trueV();
    return R;
  case 'f':
    R.Ok = true;
    R.Datum = Value::falseV();
    return R;
  case '(':
    return readVector();
  case '\\': {
    if (atEnd())
      return error("bad character literal");
    std::string Name;
    Name.push_back(advance());
    while (!atEnd() && isSymbolChar(peek()) && peek() != '\\')
      Name.push_back(advance());
    uint32_t Cp;
    if (Name.size() == 1)
      Cp = static_cast<unsigned char>(Name[0]);
    else if (Name == "space")
      Cp = ' ';
    else if (Name == "newline")
      Cp = '\n';
    else if (Name == "tab")
      Cp = '\t';
    else if (Name == "nul")
      Cp = 0;
    else
      return error("unknown character name #\\" + Name);
    R.Ok = true;
    R.Datum = Value::charV(Cp);
    return R;
  }
  default:
    return error(std::string("unknown '#' syntax: #") + C);
  }
}

ReadResult Reader::readAtom() {
  std::string Tok;
  while (!atEnd() && isSymbolChar(peek()))
    Tok.push_back(advance());
  if (Tok.empty())
    return error("empty token");

  ReadResult R;
  // Try fixnum.
  {
    errno = 0;
    char *End = nullptr;
    long long N = std::strtoll(Tok.c_str(), &End, 10);
    if (errno == 0 && End == Tok.c_str() + Tok.size() &&
        (std::isdigit(static_cast<unsigned char>(Tok[0])) ||
         ((Tok[0] == '-' || Tok[0] == '+') && Tok.size() > 1))) {
      R.Ok = true;
      R.Datum = Value::fixnum(N);
      return R;
    }
  }
  // Try flonum.
  {
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Tok.c_str(), &End);
    bool LooksNumeric = std::isdigit(static_cast<unsigned char>(Tok[0])) ||
                        ((Tok[0] == '-' || Tok[0] == '+' || Tok[0] == '.') &&
                         Tok.size() > 1 &&
                         std::isdigit(static_cast<unsigned char>(Tok[1])));
    if (errno == 0 && End == Tok.c_str() + Tok.size() && LooksNumeric) {
      R.Ok = true;
      R.Datum = Value::object(H.allocFlonum(D));
      return R;
    }
  }
  // Symbol.
  R.Ok = true;
  R.Datum = Value::object(H.intern(Tok));
  return R;
}

ReadResult osc::readDatum(Heap &H, std::string_view Text) {
  Reader Rd(H, Text);
  return Rd.read();
}
