#include "sexp/Printer.h"

#include "object/Objects.h"
#include "support/Diag.h"

#include <cstdio>
#include <sstream>

using namespace osc;

namespace {

constexpr unsigned MaxPrintDepth = 512;

void printValue(std::ostringstream &OS, Value V, bool Write, unsigned Depth) {
  if (Depth > MaxPrintDepth) {
    OS << "...";
    return;
  }
  if (V.isFixnum()) {
    OS << V.asFixnum();
    return;
  }
  if (V.isImm()) {
    switch (V.immKind()) {
    case ImmKind::Empty:
      OS << "#<empty>";
      return;
    case ImmKind::Nil:
      OS << "()";
      return;
    case ImmKind::False:
      OS << "#f";
      return;
    case ImmKind::True:
      OS << "#t";
      return;
    case ImmKind::Unspecified:
      OS << "#<unspecified>";
      return;
    case ImmKind::Eof:
      OS << "#<eof>";
      return;
    case ImmKind::Undefined:
      OS << "#<undefined>";
      return;
    case ImmKind::Underflow:
      OS << "#<underflow>";
      return;
    case ImmKind::Char: {
      uint32_t C = V.asChar();
      if (!Write) {
        OS << static_cast<char>(C);
        return;
      }
      if (C == ' ')
        OS << "#\\space";
      else if (C == '\n')
        OS << "#\\newline";
      else if (C == '\t')
        OS << "#\\tab";
      else
        OS << "#\\" << static_cast<char>(C);
      return;
    }
    }
    oscUnreachable("bad ImmKind");
  }

  ObjHeader *O = V.asObject();
  switch (O->Kind) {
  case ObjKind::Pair: {
    OS << '(';
    Value Cur = V;
    bool First = true;
    unsigned Guard = 0;
    while (isObj<Pair>(Cur)) {
      if (!First)
        OS << ' ';
      First = false;
      printValue(OS, castObj<Pair>(Cur)->Car, Write, Depth + 1);
      Cur = castObj<Pair>(Cur)->Cdr;
      if (++Guard > 100000) {
        OS << " ...";
        Cur = Value::nil();
        break;
      }
    }
    if (!Cur.isNil()) {
      OS << " . ";
      printValue(OS, Cur, Write, Depth + 1);
    }
    OS << ')';
    return;
  }
  case ObjKind::Symbol:
    OS << castObj<Symbol>(V)->name();
    return;
  case ObjKind::String: {
    auto View = castObj<String>(V)->view();
    if (!Write) {
      OS << View;
      return;
    }
    OS << '"';
    for (char C : View) {
      if (C == '"' || C == '\\')
        OS << '\\' << C;
      else if (C == '\n')
        OS << "\\n";
      else if (C == '\t')
        OS << "\\t";
      else
        OS << C;
    }
    OS << '"';
    return;
  }
  case ObjKind::Vector: {
    auto *Vec = castObj<Vector>(V);
    OS << "#(";
    for (uint32_t I = 0; I != Vec->Len; ++I) {
      if (I)
        OS << ' ';
      printValue(OS, Vec->Elems[I], Write, Depth + 1);
    }
    OS << ')';
    return;
  }
  case ObjKind::Cell:
    OS << "#<cell ";
    printValue(OS, castObj<osc::Cell>(V)->Val, Write, Depth + 1);
    OS << '>';
    return;
  case ObjKind::Flonum: {
    char Buf[32];
    double D = castObj<Flonum>(V)->D;
    std::snprintf(Buf, sizeof(Buf), "%g", D);
    OS << Buf;
    // Make flonums visibly distinct from fixnums.
    std::string_view S(Buf);
    if (S.find('.') == std::string_view::npos &&
        S.find('e') == std::string_view::npos &&
        S.find("inf") == std::string_view::npos &&
        S.find("nan") == std::string_view::npos)
      OS << ".0";
    return;
  }
  case ObjKind::Closure: {
    auto *C = castObj<Closure>(V);
    Value Name = C->code()->Name;
    OS << "#<procedure";
    if (isObj<Symbol>(Name))
      OS << ' ' << castObj<Symbol>(Name)->name();
    OS << '>';
    return;
  }
  case ObjKind::Code:
    OS << "#<code>";
    return;
  case ObjKind::Native: {
    auto *N = castObj<Native>(V);
    OS << "#<native";
    if (isObj<Symbol>(N->Name))
      OS << ' ' << castObj<Symbol>(N->Name)->name();
    OS << '>';
    return;
  }
  case ObjKind::Continuation: {
    auto *K = castObj<Continuation>(V);
    if (K->isShot())
      OS << "#<continuation shot>";
    else if (K->isHalt())
      OS << "#<continuation halt>";
    else
      OS << "#<continuation " << (K->Size == K->SegSize ? "multi" : "one")
         << "-shot size=" << K->Size << '>';
    return;
  }
  case ObjKind::StackSegment:
    OS << "#<stack-segment " << castObj<StackSegment>(V)->Capacity << '>';
    return;
  case ObjKind::RegexProg: {
    auto *P = castObj<RegexProg>(V);
    OS << "#<regex";
    if (isObj<String>(P->Pattern))
      OS << " \"" << castObj<String>(P->Pattern)->view() << '"';
    OS << '>';
    return;
  }
  case ObjKind::RegexStream: {
    auto *M = castObj<RegexStream>(V);
    OS << "#<regex-stream offset=" << M->Offset << '>';
    return;
  }
  }
  oscUnreachable("bad ObjKind in printValue");
}

} // namespace

std::string osc::writeToString(Value V) {
  std::ostringstream OS;
  printValue(OS, V, /*Write=*/true, 0);
  return OS.str();
}

std::string osc::displayToString(Value V) {
  std::ostringstream OS;
  printValue(OS, V, /*Write=*/false, 0);
  return OS.str();
}
