//===----------------------------------------------------------------------===//
///
/// \file
/// The single public header for embedding the one-shot-continuation
/// runtime.  Everything a host application needs is reachable from here:
///
///   osc::Config          — control-representation knobs (core/Config.h)
///   osc::Interp          — evaluate Scheme, register natives (vm/Interp.h)
///   osc::NativeDef       — {name, fn, arity} rows for defineNatives
///   osc::Error/ErrorKind — classified failures (support/Error.h)
///   osc::Stats::Snapshot — coherent counter copies (support/Stats.h)
///   osc::ServeOptions    — the one options surface both serving fronts
///                          take (serve/ServeOptions.h)
///   osc::ListenMode      — the pool's accept path: per-shard
///                          SO_REUSEPORT listeners or a central acceptor
///   osc::Server          — the continuation-per-request eval server
///   osc::Pool            — the sharded multi-worker serving pool
///   osc::Client          — a blocking client for the line protocol
///
/// Embedders should include this header and nothing under src/core,
/// src/object, src/vm or src/io directly; those are internal and move
/// without notice.  See docs/EMBEDDING.md for a guided tour.
///
/// \code
///   #include "osc.h"
///
///   osc::Interp I;
///   auto R = I.eval("(call/1cc (lambda (k) (k 42)))");
///   if (!R.Ok)
///     std::cerr << R.error() << "\n";   // "kind: message"
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OSC_OSC_H
#define OSC_OSC_H

#include "core/Config.h"
#include "serve/Client.h"
#include "serve/Pool.h"
#include "serve/ServeOptions.h"
#include "serve/Server.h"
#include "support/Error.h"
#include "support/Stats.h"
#include "vm/Interp.h"

#endif // OSC_OSC_H
