//===----------------------------------------------------------------------===//
///
/// \file
/// Direct-style bytecode generation from expanded core forms.
///
/// Responsibilities that matter to the control representation:
///   * proper tail calls (TailCall reuses the caller's frame, so tail
///     recursion runs in constant stack space and the empty-segment capture
///     case of §3.2 is reachable);
///   * the frame-size word: every Call is emitted as [Call][n][D] where D
///     is the static depth of the caller frame at the call, so
///     Instrs[RetPc-1] recovers the caller frame extent (§3.1);
///   * MaxDepth: the static maximum frame extent, used by the VM for the
///     segment-overflow check;
///   * assignment conversion: assigned bindings live in heap cells so flat
///     closures can share mutable state;
///   * inline-cache indices: every GetGlobal/SetGlobal/Call/TailCall site
///     gets a dense per-code cache-slot index, emitted unconditionally so
///     the bytecode shape never depends on Config::InlineCaches;
///   * superinstruction fusion: a peephole pass over the finished stream
///     fuses the opcode pairs enabled in Config::Superinstructions,
///     relocating jump targets and never fusing across a jump target (the
///     second instruction of a fused pair ceases to be an entry point).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_COMPILER_CODEGEN_H
#define OSC_COMPILER_CODEGEN_H

#include "core/Config.h"
#include "object/Heap.h"
#include "object/Value.h"

#include <string>

namespace osc {

struct Code;

class CodeGen {
public:
  /// \p Cfg supplies the fusion mask (Config::Superinstructions); the
  /// default-config overload keeps every rule on, the production setting.
  CodeGen(Heap &H, const Config &Cfg) : H(H), FuseMask(Cfg.Superinstructions) {}
  explicit CodeGen(Heap &H) : H(H), FuseMask(Config().Superinstructions) {}

  /// Compiles one fully expanded top-level form into a zero-argument code
  /// object.  Returns nullptr and fills \p Error on failure.
  Code *compileToplevel(Value Form, std::string &Error);

private:
  Heap &H;
  uint32_t FuseMask; ///< Enabled FuseRule bits (compiler/Bytecode.h).
};

} // namespace osc

#endif // OSC_COMPILER_CODEGEN_H
