#include "compiler/Expander.h"

#include "object/ListUtil.h"
#include "sexp/Printer.h"

using namespace osc;

Expander::Expander(Heap &H) : H(H) {
  auto S = [&](const char *N) { return Value::object(H.intern(N)); };
  SQuote = S("quote");
  SQuasiquote = S("quasiquote");
  SUnquote = S("unquote");
  SUnquoteSplicing = S("unquote-splicing");
  SIf = S("if");
  SSet = S("set!");
  SLambda = S("lambda");
  SBegin = S("begin");
  SLet = S("let");
  SLetStar = S("let*");
  SLetrec = S("letrec");
  SLetrecStar = S("letrec*");
  SDefine = S("define");
  SCond = S("cond");
  SCase = S("case");
  SAnd = S("and");
  SOr = S("or");
  SWhen = S("when");
  SUnless = S("unless");
  SDo = S("do");
  SElse = S("else");
  SArrow = S("=>");
  SNot = S("not");
  SCons = S("cons");
  SAppend = S("append");
  SListToVector = S("list->vector");
  SList = S("list");
  SMemv = S("memv");
  SEqv = S("eqv?");
  SReset = S("reset");
  SShift = S("shift");
  SAsync = S("async");
  SResetProc = S("%reset-proc");
  SShiftProc = S("%shift-proc");
  SAsyncProc = S("%async");
  SWithHandler = S("with-handler");
  SWithShallowHandler = S("with-shallow-handler");
  SNursery = S("nursery");
  SWithHandlerProc = S("%with-handler-proc");
  SPerformProc = S("%perform-proc");
  SNurseryScope = S("%nursery-scope");
  SEq = S("eq?");
  SApply = S("apply");
}

Value Expander::fail(const std::string &Msg) {
  if (!Failed) {
    Failed = true;
    Error = "syntax error: " + Msg;
  }
  return Value::unspecified();
}

Value Expander::list1(Value A) { return cons(H, A, Value::nil()); }
Value Expander::list2(Value A, Value B) { return cons(H, A, list1(B)); }
Value Expander::list3(Value A, Value B, Value C) {
  return cons(H, A, list2(B, C));
}
Value Expander::list4(Value A, Value B, Value C, Value D) {
  return cons(H, A, list3(B, C, D));
}

Symbol *Expander::gensym(const char *Hint) {
  // The leading space cannot appear in read symbols, so these are fresh.
  return H.intern(" " + std::string(Hint) + std::to_string(GensymCounter++));
}

bool Expander::expandToplevel(Value Form, Value &Out, std::string &Err) {
  Failed = false;
  Error.clear();

  // (define (f . args) body...) sugar and plain (define x e) are only legal
  // at top level (or inside bodies, where expandBody handles them).
  if (isObj<Pair>(Form) && car(Form).identical(SDefine)) {
    Value Rest = cdr(Form);
    if (!isObj<Pair>(Rest)) {
      Err = "syntax error: bad define";
      return false;
    }
    Value Target = car(Rest);
    if (isObj<Pair>(Target)) {
      // (define (f . formals) body...) => (define f (lambda formals body...))
      Value Name = car(Target);
      Value Formals = cdr(Target);
      Value Lam = cons(H, SLambda, cons(H, Formals, cdr(Rest)));
      Form = list3(SDefine, Name, Lam);
      Rest = cdr(Form);
      Target = Name;
    }
    if (!isObj<Symbol>(Target) || !isObj<Pair>(cdr(Rest)) ||
        !cdr(cdr(Rest)).isNil()) {
      Err = "syntax error: bad define";
      return false;
    }
    Value Init = expand(car(cdr(Rest)));
    if (Failed) {
      Err = Error;
      return false;
    }
    Out = list3(SDefine, Target, Init);
    return true;
  }

  // (begin form...) at top level: expand each form at top level so defines
  // inside are still top-level defines.
  if (isObj<Pair>(Form) && car(Form).identical(SBegin)) {
    std::vector<Value> Forms;
    if (!listToVector(cdr(Form), Forms)) {
      Err = "syntax error: bad begin";
      return false;
    }
    std::vector<Value> Expanded;
    for (Value F : Forms) {
      Value E;
      if (!expandToplevel(F, E, Err))
        return false;
      Expanded.push_back(E);
    }
    Out = cons(H, SBegin, listFromVector(H, Expanded));
    return true;
  }

  Out = expand(Form);
  if (Failed) {
    Err = Error;
    return false;
  }
  return true;
}

Value Expander::expandList(Value Forms) {
  std::vector<Value> Out;
  if (!listToVector(Forms, Out))
    return fail("improper form list");
  for (Value &V : Out)
    V = expand(V);
  return listFromVector(H, Out);
}

Value Expander::expand(Value Form) {
  if (Failed)
    return Form;
  if (!isObj<Pair>(Form))
    return Form; // Symbols and literals expand to themselves.

  Value Head = car(Form);
  if (isObj<Symbol>(Head)) {
    if (Head.identical(SQuote))
      return Form;
    if (Head.identical(SIf)) {
      Value Rest = cdr(Form);
      int64_t N = listLength(Rest);
      if (N != 2 && N != 3)
        return fail("if expects 2 or 3 subforms");
      Value C = expand(car(Rest));
      Value T = expand(car(cdr(Rest)));
      Value E = N == 3 ? expand(car(cdr(cdr(Rest))))
                       : list2(SQuote, Value::unspecified());
      return list4(SIf, C, T, E);
    }
    if (Head.identical(SSet)) {
      Value Rest = cdr(Form);
      if (listLength(Rest) != 2 || !isObj<Symbol>(car(Rest)))
        return fail("bad set!");
      return list3(SSet, car(Rest), expand(car(cdr(Rest))));
    }
    if (Head.identical(SLambda))
      return expandLambda(Form);
    if (Head.identical(SBegin)) {
      Value Body = cdr(Form);
      if (Body.isNil())
        return list2(SQuote, Value::unspecified());
      return expandBody(Body);
    }
    if (Head.identical(SLet))
      return expandLet(Form);
    if (Head.identical(SLetStar))
      return expandLetStar(Form);
    if (Head.identical(SLetrec) || Head.identical(SLetrecStar))
      return expandLetrec(Form);
    if (Head.identical(SCond))
      return expandCond(Form);
    if (Head.identical(SCase))
      return expandCase(Form);
    if (Head.identical(SAnd))
      return expandAnd(cdr(Form));
    if (Head.identical(SOr))
      return expandOr(cdr(Form));
    if (Head.identical(SWhen)) {
      Value Rest = cdr(Form);
      if (!isObj<Pair>(Rest) || !isObj<Pair>(cdr(Rest)))
        return fail("bad when");
      return list4(SIf, expand(car(Rest)), expandBody(cdr(Rest)),
                   list2(SQuote, Value::unspecified()));
    }
    if (Head.identical(SUnless)) {
      Value Rest = cdr(Form);
      if (!isObj<Pair>(Rest) || !isObj<Pair>(cdr(Rest)))
        return fail("bad unless");
      return list4(SIf, expand(car(Rest)),
                   list2(SQuote, Value::unspecified()),
                   expandBody(cdr(Rest)));
    }
    if (Head.identical(SDo))
      return expandDo(Form);
    if (Head.identical(SQuasiquote)) {
      if (listLength(cdr(Form)) != 1)
        return fail("bad quasiquote");
      return expand(expandQuasi(car(cdr(Form)), 1));
    }
    if (Head.identical(SReset)) {
      // (reset tag body...) => (%reset-proc tag (lambda () body...))
      Value Rest = cdr(Form);
      if (!isObj<Pair>(Rest) || !isObj<Pair>(cdr(Rest)))
        return fail("reset expects a tag and a body");
      Value Thunk = cons(H, SLambda, cons(H, Value::nil(), cdr(Rest)));
      return expand(list3(SResetProc, car(Rest), Thunk));
    }
    if (Head.identical(SShift)) {
      // (shift tag k body...) => (%shift-proc tag (lambda (k) body...))
      Value Rest = cdr(Form);
      if (!isObj<Pair>(Rest) || !isObj<Pair>(cdr(Rest)) ||
          !isObj<Symbol>(car(cdr(Rest))) || !isObj<Pair>(cdr(cdr(Rest))))
        return fail("shift expects a tag, a continuation name and a body");
      Value Fn = cons(H, SLambda,
                      cons(H, list1(car(cdr(Rest))), cdr(cdr(Rest))));
      return expand(list3(SShiftProc, car(Rest), Fn));
    }
    if (Head.identical(SAsync)) {
      // (async body...) => (%async (lambda () body...))
      Value Body = cdr(Form);
      if (!isObj<Pair>(Body))
        return fail("async body is empty");
      Value Thunk = cons(H, SLambda, cons(H, Value::nil(), Body));
      return expand(list2(SAsyncProc, Thunk));
    }
    if (Head.identical(SWithHandler))
      return expandWithHandler(Form, /*Shallow=*/false);
    if (Head.identical(SWithShallowHandler))
      return expandWithHandler(Form, /*Shallow=*/true);
    if (Head.identical(SNursery)) {
      // (nursery body...) => (%nursery-scope (lambda () body...))
      Value Body = cdr(Form);
      if (!isObj<Pair>(Body))
        return fail("nursery body is empty");
      Value Thunk = cons(H, SLambda, cons(H, Value::nil(), Body));
      return expand(list2(SNurseryScope, Thunk));
    }
    if (Head.identical(SDefine))
      return fail("define is only allowed at top level or body start");
  }
  // Application.
  return expandList(Form);
}

Value Expander::expandLambda(Value Form) {
  Value Rest = cdr(Form);
  if (!isObj<Pair>(Rest))
    return fail("bad lambda");
  Value Formals = car(Rest);
  Value Body = cdr(Rest);
  if (Body.isNil())
    return fail("lambda body is empty");
  // Validate formals: symbol | (sym ...) | (sym ... . sym)
  Value F = Formals;
  while (isObj<Pair>(F)) {
    if (!isObj<Symbol>(car(F)))
      return fail("lambda formal is not a symbol");
    F = cdr(F);
  }
  if (!F.isNil() && !isObj<Symbol>(F))
    return fail("bad lambda formals");
  return cons(H, SLambda, cons(H, Formals, list1(expandBody(Body))));
}

Value Expander::expandBody(Value Forms) {
  std::vector<Value> Body;
  if (!listToVector(Forms, Body) || Body.empty())
    return fail("bad body");

  // Collect leading internal defines.
  std::vector<Value> Names;
  std::vector<Value> Inits;
  size_t I = 0;
  for (; I != Body.size(); ++I) {
    Value F = Body[I];
    if (!isObj<Pair>(F) || !car(F).identical(SDefine))
      break;
    Value Rest = cdr(F);
    if (!isObj<Pair>(Rest))
      return fail("bad internal define");
    Value Target = car(Rest);
    if (isObj<Pair>(Target)) {
      Value Name = car(Target);
      Value Lam = cons(H, SLambda, cons(H, cdr(Target), cdr(Rest)));
      Names.push_back(Name);
      Inits.push_back(Lam);
      continue;
    }
    if (!isObj<Symbol>(Target) || listLength(cdr(Rest)) != 1)
      return fail("bad internal define");
    Names.push_back(Target);
    Inits.push_back(car(cdr(Rest)));
  }
  if (I == Body.size())
    return fail("body has no expression after internal defines");

  std::vector<Value> Tail(Body.begin() + I, Body.end());
  if (Names.empty()) {
    if (Tail.size() == 1)
      return expand(Tail[0]);
    std::vector<Value> Expanded;
    for (Value F : Tail)
      Expanded.push_back(expand(F));
    return cons(H, SBegin, listFromVector(H, Expanded));
  }

  // (letrec* ((n i)...) tail...) rewritten directly here as
  // (let ((n <undefined>)...) (set! n i)... tail...)
  std::vector<Value> Bindings;
  for (Value N : Names)
    Bindings.push_back(list2(N, Value::undefined()));
  std::vector<Value> NewBody;
  for (size_t J = 0; J != Names.size(); ++J)
    NewBody.push_back(list3(SSet, Names[J], Inits[J]));
  NewBody.insert(NewBody.end(), Tail.begin(), Tail.end());
  Value LetForm =
      cons(H, SLet, cons(H, listFromVector(H, Bindings),
                         listFromVector(H, NewBody)));
  return expand(LetForm);
}

Value Expander::expandLet(Value Form) {
  Value Rest = cdr(Form);
  if (!isObj<Pair>(Rest))
    return fail("bad let");
  if (isObj<Symbol>(car(Rest))) {
    // Named let.
    if (!isObj<Pair>(cdr(Rest)))
      return fail("bad named let");
    return expandNamedLet(car(Rest), car(cdr(Rest)), cdr(cdr(Rest)));
  }
  Value Bindings = car(Rest);
  Value Body = cdr(Rest);
  std::vector<Value> Bs;
  if (!listToVector(Bindings, Bs))
    return fail("bad let bindings");
  std::vector<Value> Out;
  for (Value B : Bs) {
    if (listLength(B) != 2 || !isObj<Symbol>(car(B)))
      return fail("bad let binding");
    Out.push_back(list2(car(B), expand(car(cdr(B)))));
  }
  return cons(H, SLet,
              cons(H, listFromVector(H, Out), list1(expandBody(Body))));
}

Value Expander::expandNamedLet(Value Name, Value Bindings, Value Body) {
  std::vector<Value> Bs;
  if (!listToVector(Bindings, Bs))
    return fail("bad named-let bindings");
  std::vector<Value> Vars;
  std::vector<Value> Inits;
  for (Value B : Bs) {
    if (listLength(B) != 2 || !isObj<Symbol>(car(B)))
      return fail("bad named-let binding");
    Vars.push_back(car(B));
    Inits.push_back(car(cdr(B)));
  }
  // ((letrec ((name (lambda (vars...) body...))) name) inits...)
  Value Lam =
      cons(H, SLambda, cons(H, listFromVector(H, Vars), Body));
  Value LetrecForm =
      list3(SLetrec, list1(list2(Name, Lam)), Name);
  return expand(cons(H, LetrecForm, listFromVector(H, Inits)));
}

Value Expander::expandLetStar(Value Form) {
  Value Rest = cdr(Form);
  if (!isObj<Pair>(Rest))
    return fail("bad let*");
  Value Bindings = car(Rest);
  Value Body = cdr(Rest);
  if (Bindings.isNil())
    return expand(cons(H, SLet, cons(H, Value::nil(), Body)));
  if (!isObj<Pair>(Bindings))
    return fail("bad let* bindings");
  Value First = car(Bindings);
  Value RestBindings = cdr(Bindings);
  if (RestBindings.isNil())
    return expand(cons(H, SLet, cons(H, list1(First), Body)));
  Value Inner = cons(H, SLetStar, cons(H, RestBindings, Body));
  return expand(cons(H, SLet, cons(H, list1(First), list1(Inner))));
}

Value Expander::expandLetrec(Value Form) {
  // Both letrec and letrec* get the sequential (letrec*) semantics, which
  // is a valid implementation of letrec for procedure initializers.
  Value Rest = cdr(Form);
  if (!isObj<Pair>(Rest))
    return fail("bad letrec");
  Value Bindings = car(Rest);
  Value Body = cdr(Rest);
  std::vector<Value> Bs;
  if (!listToVector(Bindings, Bs))
    return fail("bad letrec bindings");
  std::vector<Value> NewBindings;
  std::vector<Value> NewBody;
  for (Value B : Bs) {
    if (listLength(B) != 2 || !isObj<Symbol>(car(B)))
      return fail("bad letrec binding");
    NewBindings.push_back(list2(car(B), Value::undefined()));
    NewBody.push_back(list3(SSet, car(B), car(cdr(B))));
  }
  std::vector<Value> BodyForms;
  if (!listToVector(Body, BodyForms) || BodyForms.empty())
    return fail("letrec body is empty");
  NewBody.insert(NewBody.end(), BodyForms.begin(), BodyForms.end());
  return expand(cons(H, SLet, cons(H, listFromVector(H, NewBindings),
                                   listFromVector(H, NewBody))));
}

Value Expander::expandCond(Value Form) {
  std::vector<Value> Clauses;
  if (!listToVector(cdr(Form), Clauses))
    return fail("bad cond");
  Value Result = list2(SQuote, Value::unspecified());
  for (auto It = Clauses.rbegin(); It != Clauses.rend(); ++It) {
    Value C = *It;
    if (!isObj<Pair>(C))
      return fail("bad cond clause");
    Value Test = car(C);
    Value Rest = cdr(C);
    if (Test.identical(SElse)) {
      if (It != Clauses.rbegin())
        return fail("cond else clause must be last");
      Result = expandBody(Rest);
      continue;
    }
    if (isObj<Pair>(Rest) && car(Rest).identical(SArrow)) {
      // (test => receiver)
      if (listLength(Rest) != 2)
        return fail("bad cond => clause");
      Value T = Value::object(gensym("t"));
      Value Recv = car(cdr(Rest));
      Value Inner =
          list4(SIf, T, list2(Recv, T), Result);
      Result = cons(H, SLet, cons(H, list1(list2(T, Test)), list1(Inner)));
      continue;
    }
    if (Rest.isNil()) {
      // (test): the test value itself.
      Value T = Value::object(gensym("t"));
      Value Inner = list4(SIf, T, T, Result);
      Result = cons(H, SLet, cons(H, list1(list2(T, Test)), list1(Inner)));
      continue;
    }
    Result = list4(SIf, Test, cons(H, SBegin, Rest), Result);
  }
  return expand(Result);
}

Value Expander::expandCase(Value Form) {
  Value Rest = cdr(Form);
  if (!isObj<Pair>(Rest))
    return fail("bad case");
  Value Key = car(Rest);
  std::vector<Value> Clauses;
  if (!listToVector(cdr(Rest), Clauses))
    return fail("bad case");
  Value T = Value::object(gensym("k"));
  Value Result = list2(SQuote, Value::unspecified());
  for (auto It = Clauses.rbegin(); It != Clauses.rend(); ++It) {
    Value C = *It;
    if (!isObj<Pair>(C))
      return fail("bad case clause");
    if (car(C).identical(SElse)) {
      Result = cons(H, SBegin, cdr(C));
      continue;
    }
    Value Data = car(C);
    Value Test = list3(SMemv, T, list2(SQuote, Data));
    Result = list4(SIf, Test, cons(H, SBegin, cdr(C)), Result);
  }
  Value LetForm =
      cons(H, SLet, cons(H, list1(list2(T, Key)), list1(Result)));
  return expand(LetForm);
}

Value Expander::expandAnd(Value Args) {
  if (Args.isNil())
    return list2(SQuote, Value::trueV());
  if (!isObj<Pair>(Args))
    return fail("bad and");
  if (cdr(Args).isNil())
    return expand(car(Args));
  Value Rest = expandAnd(cdr(Args));
  if (Failed)
    return Rest;
  return list4(SIf, expand(car(Args)), Rest,
               list2(SQuote, Value::falseV()));
}

Value Expander::expandOr(Value Args) {
  if (Args.isNil())
    return list2(SQuote, Value::falseV());
  if (!isObj<Pair>(Args))
    return fail("bad or");
  if (cdr(Args).isNil())
    return expand(car(Args));
  Value T = Value::object(gensym("t"));
  Value Rest = expandOr(cdr(Args));
  if (Failed)
    return Rest;
  Value Inner = list4(SIf, T, T, Rest);
  return expand(
      cons(H, SLet, cons(H, list1(list2(T, car(Args))), list1(Inner))));
}

Value Expander::expandDo(Value Form) {
  // (do ((var init step)...) (test result...) body...)
  Value Rest = cdr(Form);
  if (listLength(Rest) < 2)
    return fail("bad do");
  std::vector<Value> Specs;
  if (!listToVector(car(Rest), Specs))
    return fail("bad do bindings");
  Value TestClause = car(cdr(Rest));
  Value Body = cdr(cdr(Rest));
  if (!isObj<Pair>(TestClause))
    return fail("bad do test clause");

  std::vector<Value> Vars, Inits, Steps;
  for (Value Spec : Specs) {
    int64_t N = listLength(Spec);
    if ((N != 2 && N != 3) || !isObj<Symbol>(car(Spec)))
      return fail("bad do binding");
    Vars.push_back(car(Spec));
    Inits.push_back(car(cdr(Spec)));
    Steps.push_back(N == 3 ? car(cdr(cdr(Spec))) : car(Spec));
  }

  Value Loop = Value::object(gensym("do-loop"));
  Value Test = car(TestClause);
  Value Results = cdr(TestClause);
  Value ResultExpr = Results.isNil()
                         ? list2(SQuote, Value::unspecified())
                         : cons(H, SBegin, Results);

  // (loop step...)
  Value Recur = cons(H, Loop, listFromVector(H, Steps));
  Value LoopBody;
  if (Body.isNil())
    LoopBody = Recur;
  else {
    std::vector<Value> Seq;
    listToVector(Body, Seq);
    Seq.push_back(Recur);
    LoopBody = cons(H, SBegin, listFromVector(H, Seq));
  }
  Value IfForm = list4(SIf, Test, ResultExpr, LoopBody);

  // (let loop ((var init)...) if-form)
  std::vector<Value> Bindings;
  for (size_t I = 0; I != Vars.size(); ++I)
    Bindings.push_back(list2(Vars[I], Inits[I]));
  Value NamedLet =
      cons(H, SLet,
           cons(H, Loop, cons(H, listFromVector(H, Bindings), list1(IfForm))));
  return expand(NamedLet);
}

Value Expander::expandWithHandler(Value Form, bool Shallow) {
  // (with-handler tag ((op k . formals) clause-body...)... body...)
  //   => (let ((t tag))
  //        (%with-handler-proc t
  //          (lambda (op k args)
  //            (if (eq? op 'op1) (apply (lambda (k . formals) ...) k args)
  //                ...
  //                (k (%perform-proc t op args))))   ; forward unlisted ops
  //          (lambda () body...)
  //          'shallow?))
  // Clauses are consumed greedily while the next form has clause shape and
  // at least one form remains after it (the protected body).
  const char *Name = Shallow ? "with-shallow-handler" : "with-handler";
  Value Rest = cdr(Form);
  if (!isObj<Pair>(Rest) || !isObj<Pair>(cdr(Rest)))
    return fail(std::string(Name) + " expects a tag, clauses and a body");
  Value TagExpr = car(Rest);
  std::vector<Value> Forms;
  if (!listToVector(cdr(Rest), Forms))
    return fail(std::string(Name) + ": improper form list");

  auto IsClause = [&](Value C) {
    if (!isObj<Pair>(C) || !isObj<Pair>(cdr(C)))
      return false; // Needs an (op k ...) head and a non-empty body.
    Value Head = car(C);
    return isObj<Pair>(Head) && isObj<Symbol>(car(Head)) &&
           isObj<Pair>(cdr(Head)) && isObj<Symbol>(car(cdr(Head)));
  };

  std::vector<Value> Clauses;
  size_t I = 0;
  while (I + 1 < Forms.size() && IsClause(Forms[I]))
    Clauses.push_back(Forms[I++]);
  if (Clauses.empty())
    return fail(std::string(Name) +
                " needs at least one ((op k args...) body...) clause");
  std::vector<Value> Body(Forms.begin() + I, Forms.end());

  Value TagV = Value::object(gensym("htag"));
  Value OpV = Value::object(gensym("op"));
  Value KV = Value::object(gensym("k"));
  Value ArgsV = Value::object(gensym("args"));

  // Unlisted op: re-perform for the same tag — the handler's own record is
  // already popped, so this reaches the next handler out — and resume our
  // slice with its answer.  An outer abortive clause never resumes it.
  Value Dispatch = list2(KV, list4(SPerformProc, TagV, OpV, ArgsV));
  for (auto It = Clauses.rbegin(); It != Clauses.rend(); ++It) {
    Value C = *It;
    Value OpSym = car(car(C));
    Value Lam = cons(H, SLambda, cons(H, cdr(car(C)), cdr(C)));
    Value ApplyForm = list4(SApply, Lam, KV, ArgsV);
    Value Test = list3(SEq, OpV, list2(SQuote, OpSym));
    Dispatch = list4(SIf, Test, ApplyForm, Dispatch);
  }
  Value Handler =
      cons(H, SLambda, cons(H, list3(OpV, KV, ArgsV), list1(Dispatch)));
  Value Thunk =
      cons(H, SLambda, cons(H, Value::nil(), listFromVector(H, Body)));
  Value Call = cons(H, SWithHandlerProc,
                    list4(TagV, Handler, Thunk,
                          list2(SQuote, Value::boolean(Shallow))));
  return expand(
      cons(H, SLet, cons(H, list1(list2(TagV, TagExpr)), list1(Call))));
}

Value Expander::expandQuasi(Value Tmpl, int Depth) {
  if (isObj<Pair>(Tmpl)) {
    Value Head = car(Tmpl);
    if (Head.identical(SUnquote)) {
      if (listLength(cdr(Tmpl)) != 1)
        return fail("bad unquote");
      if (Depth == 1)
        return car(cdr(Tmpl));
      return list3(SList, list2(SQuote, SUnquote),
                   expandQuasi(car(cdr(Tmpl)), Depth - 1));
    }
    if (Head.identical(SQuasiquote)) {
      if (listLength(cdr(Tmpl)) != 1)
        return fail("bad nested quasiquote");
      return list3(SList, list2(SQuote, SQuasiquote),
                   expandQuasi(car(cdr(Tmpl)), Depth + 1));
    }
    if (isObj<Pair>(Head) && car(Head).identical(SUnquoteSplicing) &&
        Depth == 1) {
      if (listLength(cdr(Head)) != 1)
        return fail("bad unquote-splicing");
      return list3(SAppend, car(cdr(Head)), expandQuasi(cdr(Tmpl), Depth));
    }
    return list3(SCons, expandQuasi(Head, Depth),
                 expandQuasi(cdr(Tmpl), Depth));
  }
  if (isObj<Vector>(Tmpl)) {
    auto *V = castObj<Vector>(Tmpl);
    Value L = Value::nil();
    for (uint32_t I = V->Len; I-- > 0;)
      L = cons(H, V->Elems[I], L);
    return list2(SListToVector, expandQuasi(L, Depth));
  }
  return list2(SQuote, Tmpl);
}
