#include "compiler/Bytecode.h"

#include "sexp/Printer.h"
#include "support/Diag.h"

#include <sstream>

using namespace osc;

namespace {

struct OpInfo {
  const char *Mnemonic;
  unsigned NOperands;
};

constexpr OpInfo OpInfos[] = {
#define OSC_OP_INFO(Name, Mnemonic, NOperands) {Mnemonic, NOperands},
    OSC_OPCODES(OSC_OP_INFO)
#undef OSC_OP_INFO
};

static_assert(sizeof(OpInfos) / sizeof(OpInfos[0]) == NumOpcodes,
              "opcode info table out of sync with the opcode list");

/// True if \p O's first operand indexes the constant vector (drives the
/// disassembler's "; <literal>" annotation).
bool firstOperandIsConst(Op O) {
  switch (O) {
  case Op::Const:
  case Op::GetGlobal:
  case Op::SetGlobal:
  case Op::DefGlobal:
  case Op::ConstPush:
  case Op::GetGlobalCall:
  case Op::GetGlobalTailCall:
    return true;
  default:
    return false;
  }
}

} // namespace

unsigned osc::opOperandCount(Op O) {
  uint32_t I = static_cast<uint32_t>(O);
  if (I >= NumOpcodes)
    oscUnreachable("bad opcode");
  return OpInfos[I].NOperands;
}

const char *osc::opName(Op O) {
  uint32_t I = static_cast<uint32_t>(O);
  if (I >= NumOpcodes)
    oscUnreachable("bad opcode");
  return OpInfos[I].Mnemonic;
}

std::string osc::disassemble(const Code *C) {
  std::ostringstream OS;
  OS << "code";
  if (isObj<Symbol>(C->Name))
    OS << " " << castObj<Symbol>(C->Name)->name();
  OS << " params=" << C->NParams << (C->HasRest ? "+rest" : "")
     << " maxdepth=" << C->MaxDepth;
  if (C->NCaches)
    OS << " caches=" << C->NCaches;
  OS << "\n";
  const Vector *Consts = castObj<Vector>(C->Consts);
  OS << "  0: <entry-frame-size " << C->Instrs[0] << ">\n";
  uint32_t Pc = 1;
  while (Pc < C->NInstrs) {
    Op O = static_cast<Op>(C->Instrs[Pc]);
    OS << "  " << Pc << ": " << opName(O);
    unsigned NOps = opOperandCount(O);
    for (unsigned I = 1; I <= NOps; ++I)
      OS << " " << C->Instrs[Pc + I];
    if (firstOperandIsConst(O))
      OS << "    ; " << writeToString(Consts->get(C->Instrs[Pc + 1]));
    OS << "\n";
    Pc += 1 + NOps;
  }
  return OS.str();
}
