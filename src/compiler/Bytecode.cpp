#include "compiler/Bytecode.h"

#include "sexp/Printer.h"
#include "support/Diag.h"

#include <sstream>

using namespace osc;

unsigned osc::opOperandCount(Op O) {
  switch (O) {
  case Op::Const:
  case Op::GetLocal:
  case Op::GetLocalCell:
  case Op::SetLocalCell:
  case Op::GetGlobal:
  case Op::SetGlobal:
  case Op::DefGlobal:
  case Op::MakeCell:
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::SetTop:
  case Op::TailCall:
    return 1;
  case Op::MakeClosure:
  case Op::Call:
    return 2;
  case Op::Push:
  case Op::Frame:
  case Op::Return:
  case Op::CwvApply:
  case Op::PromptPop:
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::NumLt:
  case Op::NumLe:
  case Op::NumGt:
  case Op::NumGe:
  case Op::NumEq:
  case Op::Cons:
  case Op::Car:
  case Op::Cdr:
  case Op::IsNull:
  case Op::IsPair:
  case Op::Not:
  case Op::IsZero:
  case Op::IsEq:
    return 0;
  }
  oscUnreachable("bad opcode");
}

const char *osc::opName(Op O) {
  switch (O) {
  case Op::Const:
    return "const";
  case Op::GetLocal:
    return "get-local";
  case Op::GetLocalCell:
    return "get-local-cell";
  case Op::SetLocalCell:
    return "set-local-cell";
  case Op::GetGlobal:
    return "get-global";
  case Op::SetGlobal:
    return "set-global";
  case Op::DefGlobal:
    return "def-global";
  case Op::Push:
    return "push";
  case Op::MakeCell:
    return "make-cell";
  case Op::MakeClosure:
    return "make-closure";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jump-if-false";
  case Op::SetTop:
    return "set-top";
  case Op::Frame:
    return "frame";
  case Op::Call:
    return "call";
  case Op::TailCall:
    return "tail-call";
  case Op::Return:
    return "return";
  case Op::CwvApply:
    return "cwv-apply";
  case Op::PromptPop:
    return "prompt-pop";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::NumLt:
    return "num<";
  case Op::NumLe:
    return "num<=";
  case Op::NumGt:
    return "num>";
  case Op::NumGe:
    return "num>=";
  case Op::NumEq:
    return "num=";
  case Op::Cons:
    return "cons";
  case Op::Car:
    return "car";
  case Op::Cdr:
    return "cdr";
  case Op::IsNull:
    return "null?";
  case Op::IsPair:
    return "pair?";
  case Op::Not:
    return "not";
  case Op::IsZero:
    return "zero?";
  case Op::IsEq:
    return "eq?";
  }
  oscUnreachable("bad opcode");
}

std::string osc::disassemble(const Code *C) {
  std::ostringstream OS;
  OS << "code";
  if (isObj<Symbol>(C->Name))
    OS << " " << castObj<Symbol>(C->Name)->name();
  OS << " params=" << C->NParams << (C->HasRest ? "+rest" : "")
     << " maxdepth=" << C->MaxDepth << "\n";
  const Vector *Consts = castObj<Vector>(C->Consts);
  OS << "  0: <entry-frame-size " << C->Instrs[0] << ">\n";
  uint32_t Pc = 1;
  while (Pc < C->NInstrs) {
    Op O = static_cast<Op>(C->Instrs[Pc]);
    OS << "  " << Pc << ": " << opName(O);
    unsigned NOps = opOperandCount(O);
    for (unsigned I = 1; I <= NOps; ++I)
      OS << " " << C->Instrs[Pc + I];
    if (O == Op::Const || O == Op::GetGlobal || O == Op::SetGlobal ||
        O == Op::DefGlobal)
      OS << "    ; " << writeToString(Consts->get(C->Instrs[Pc + 1]));
    OS << "\n";
    Pc += 1 + NOps;
  }
  return OS.str();
}
