#include "compiler/CodeGen.h"

#include "compiler/Bytecode.h"
#include "core/FrameWalk.h"
#include "object/ListUtil.h"
#include "sexp/Printer.h"
#include "support/Diag.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace osc;

namespace {

struct LocalBinding {
  Symbol *Name;
  uint32_t Offset; ///< Slot offset from the frame base.
  bool Boxed;
};

/// Per-lambda compilation context.
///
/// Captured variables are copied into frame slots at entry (the slots after
/// the parameters), so a running frame is self-contained: continuation
/// capture and GC tracing never need a closure register.  A lambda's code
/// therefore references captured variables as ordinary locals; the Frees
/// list only drives closure creation in the parent.
struct FnCtx {
  FnCtx *Parent = nullptr;
  std::vector<LocalBinding> Locals;
  std::vector<Symbol *> FreeNames; ///< In closure slot order.
  std::vector<uint32_t> Instrs;
  std::vector<Value> Consts;
  std::unordered_map<uint64_t, uint32_t> ConstIndex;
  uint32_t NCaches = 0; ///< Inline-cache slots handed out so far.
  uint32_t Depth = FrameHeaderWords;
  uint32_t MaxDepth = FrameHeaderWords;

  void bumpDepth(uint32_t N = 1) {
    Depth += N;
    if (Depth > MaxDepth)
      MaxDepth = Depth;
  }
};

enum class RefKind { Local, Global };

struct Resolved {
  RefKind Kind;
  uint32_t Offset = 0;
  bool Boxed = false;
};

struct PrimSpec {
  Op Opcode;
  unsigned Arity;
};

class Compiler {
public:
  Compiler(Heap &H, uint32_t FuseMask) : H(H), FuseMask(FuseMask) {
    auto S = [&](const char *N) { return H.intern(N); };
    SQuote = S("quote");
    SIf = S("if");
    SSet = S("set!");
    SLambda = S("lambda");
    SBegin = S("begin");
    SLet = S("let");
    SDefine = S("define");
    Prims = {
        {S("+"), {Op::Add, 2}},        {S("-"), {Op::Sub, 2}},
        {S("*"), {Op::Mul, 2}},        {S("<"), {Op::NumLt, 2}},
        {S("<="), {Op::NumLe, 2}},     {S(">"), {Op::NumGt, 2}},
        {S(">="), {Op::NumGe, 2}},     {S("="), {Op::NumEq, 2}},
        {S("cons"), {Op::Cons, 2}},    {S("eq?"), {Op::IsEq, 2}},
        {S("car"), {Op::Car, 1}},      {S("cdr"), {Op::Cdr, 1}},
        {S("null?"), {Op::IsNull, 1}}, {S("pair?"), {Op::IsPair, 1}},
        {S("not"), {Op::Not, 1}},      {S("zero?"), {Op::IsZero, 1}},
    };
  }

  Code *run(Value Form, std::string &Err) {
    FnCtx Top;
    // Entry frame-size word: code execution begins at pc 1, so (code, 1)
    // is a valid resume point meaning "run this frame from its entry" —
    // used by the engine timer to suspend at procedure entry.
    Top.Instrs.push_back(FrameHeaderWords);
    compileToplevelForm(Form, Top, /*Tail=*/true);
    if (Failed) {
      Err = Error;
      return nullptr;
    }
    return finishCode(Top, Value::object(H.intern("toplevel")), 0, false);
  }

private:
  // --- Emission helpers ------------------------------------------------------

  void emit(FnCtx &C, Op O) { C.Instrs.push_back(static_cast<uint32_t>(O)); }
  void emit1(FnCtx &C, Op O, uint32_t A) {
    emit(C, O);
    C.Instrs.push_back(A);
  }
  void emit2(FnCtx &C, Op O, uint32_t A, uint32_t B) {
    emit(C, O);
    C.Instrs.push_back(A);
    C.Instrs.push_back(B);
  }
  void emit3(FnCtx &C, Op O, uint32_t A, uint32_t B, uint32_t D) {
    emit2(C, O, A, B);
    C.Instrs.push_back(D);
  }
  /// Hands out the next inline-cache slot index.  Always emitted: the
  /// bytecode shape is independent of whether the VM uses the slots.
  uint32_t cacheIndex(FnCtx &C) { return C.NCaches++; }
  uint32_t emitJump(FnCtx &C, Op O) {
    emit(C, O);
    C.Instrs.push_back(0);
    return static_cast<uint32_t>(C.Instrs.size()) - 1;
  }
  void patchJump(FnCtx &C, uint32_t At) {
    C.Instrs[At] = static_cast<uint32_t>(C.Instrs.size());
  }

  uint32_t constIndex(FnCtx &C, Value V) {
    bool EqAble = V.isFixnum() || V.isImm() || isObj<Symbol>(V);
    if (EqAble) {
      auto It = C.ConstIndex.find(V.raw());
      if (It != C.ConstIndex.end())
        return It->second;
    }
    C.Consts.push_back(V);
    uint32_t Idx = static_cast<uint32_t>(C.Consts.size()) - 1;
    if (EqAble)
      C.ConstIndex.emplace(V.raw(), Idx);
    return Idx;
  }
  void emitConst(FnCtx &C, Value V) { emit1(C, Op::Const, constIndex(C, V)); }

  void fail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Error = "compile error: " + Msg;
    }
  }

  // --- Name resolution --------------------------------------------------------

  Resolved resolve(FnCtx &C, Symbol *S) {
    for (auto It = C.Locals.rbegin(); It != C.Locals.rend(); ++It)
      if (It->Name == S)
        return {RefKind::Local, It->Offset, It->Boxed};
    return {RefKind::Global, 0, false};
  }

  /// True if \p S is bound as a local anywhere up the context chain,
  /// i.e. a reference to it inside a nested lambda must be captured.
  static bool boundInChain(FnCtx *C, Symbol *S) {
    for (; C; C = C->Parent)
      for (auto It = C->Locals.rbegin(); It != C->Locals.rend(); ++It)
        if (It->Name == S)
          return true;
    return false;
  }

  // --- Free-variable and assignment analysis ------------------------------------

  static bool formalsContain(Value Formals, Value S) {
    while (isObj<Pair>(Formals)) {
      if (car(Formals).identical(S))
        return true;
      Formals = cdr(Formals);
    }
    return Formals.identical(S);
  }

  /// Collects, in first-reference order, the symbols free in \p Form given
  /// the bound-name stack \p Bound.
  void freeSymbols(Value Form, std::vector<Symbol *> &Bound,
                   std::vector<Symbol *> &Out,
                   std::unordered_set<Symbol *> &Seen) {
    if (isObj<Symbol>(Form)) {
      Symbol *S = castObj<Symbol>(Form);
      if (std::find(Bound.rbegin(), Bound.rend(), S) == Bound.rend() &&
          Seen.insert(S).second)
        Out.push_back(S);
      return;
    }
    if (!isObj<Pair>(Form))
      return;
    Value Head = car(Form);
    if (Head.identical(Value::object(SQuote)))
      return;
    if (Head.identical(Value::object(SLambda))) {
      size_t Mark = Bound.size();
      Value F = car(cdr(Form));
      while (isObj<Pair>(F)) {
        Bound.push_back(castObj<Symbol>(car(F)));
        F = cdr(F);
      }
      if (isObj<Symbol>(F))
        Bound.push_back(castObj<Symbol>(F));
      freeSymbols(car(cdr(cdr(Form))), Bound, Out, Seen);
      Bound.resize(Mark);
      return;
    }
    if (Head.identical(Value::object(SLet))) {
      Value Bindings = car(cdr(Form));
      size_t Mark = Bound.size();
      for (Value B = Bindings; isObj<Pair>(B); B = cdr(B))
        freeSymbols(car(cdr(car(B))), Bound, Out, Seen);
      for (Value B = Bindings; isObj<Pair>(B); B = cdr(B))
        Bound.push_back(castObj<Symbol>(car(car(B))));
      freeSymbols(car(cdr(cdr(Form))), Bound, Out, Seen);
      Bound.resize(Mark);
      return;
    }
    if (Head.identical(Value::object(SSet))) {
      freeSymbols(car(cdr(Form)), Bound, Out, Seen);
      freeSymbols(car(cdr(cdr(Form))), Bound, Out, Seen);
      return;
    }
    // if / begin / application: scan every subform.
    for (Value Cur = Form; isObj<Pair>(Cur); Cur = cdr(Cur))
      freeSymbols(car(Cur), Bound, Out, Seen);
  }

  /// True if a (set! S ...) targeting this binding of S occurs in \p Form.
  bool assignedIn(Value Form, Value S) {
    if (!isObj<Pair>(Form))
      return false;
    Value Head = car(Form);
    if (Head.identical(Value::object(SQuote)))
      return false;
    if (Head.identical(Value::object(SSet))) {
      if (car(cdr(Form)).identical(S))
        return true;
      return assignedIn(car(cdr(cdr(Form))), S);
    }
    if (Head.identical(Value::object(SLambda))) {
      if (formalsContain(car(cdr(Form)), S))
        return false;
      return assignedIn(car(cdr(cdr(Form))), S);
    }
    if (Head.identical(Value::object(SLet))) {
      Value Bindings = car(cdr(Form));
      Value Body = car(cdr(cdr(Form)));
      bool Shadowed = false;
      for (Value B = Bindings; isObj<Pair>(B); B = cdr(B)) {
        if (assignedIn(car(cdr(car(B))), S))
          return true;
        if (car(car(B)).identical(S))
          Shadowed = true;
      }
      return !Shadowed && assignedIn(Body, S);
    }
    for (Value Cur = Form; isObj<Pair>(Cur); Cur = cdr(Cur))
      if (assignedIn(car(Cur), S))
        return true;
    return false;
  }

  // --- Expression compilation -----------------------------------------------------

  void maybeReturn(FnCtx &C, bool Tail) {
    if (Tail)
      emit(C, Op::Return);
  }

  void compileRef(FnCtx &C, Symbol *S) {
    Resolved R = resolve(C, S);
    if (R.Kind == RefKind::Local) {
      emit1(C, R.Boxed ? Op::GetLocalCell : Op::GetLocal, R.Offset);
      return;
    }
    emit2(C, Op::GetGlobal, constIndex(C, Value::object(S)), cacheIndex(C));
  }

  void compileExpr(Value E, FnCtx &C, bool Tail) {
    if (Failed)
      return;
    if (isObj<Symbol>(E)) {
      compileRef(C, castObj<Symbol>(E));
      maybeReturn(C, Tail);
      return;
    }
    if (!isObj<Pair>(E)) {
      emitConst(C, E);
      maybeReturn(C, Tail);
      return;
    }

    Value Head = car(E);
    if (isObj<Symbol>(Head)) {
      Symbol *HS = castObj<Symbol>(Head);
      if (HS == SQuote) {
        emitConst(C, car(cdr(E)));
        maybeReturn(C, Tail);
        return;
      }
      if (HS == SIf) {
        compileIf(E, C, Tail);
        return;
      }
      if (HS == SSet) {
        compileSet(E, C, Tail);
        return;
      }
      if (HS == SLambda) {
        compileLambda(E, C, Value::falseV());
        maybeReturn(C, Tail);
        return;
      }
      if (HS == SBegin) {
        compileBegin(cdr(E), C, Tail);
        return;
      }
      if (HS == SLet) {
        compileLet(E, C, Tail);
        return;
      }
      if (HS == SDefine) {
        fail("define is not allowed in an expression context");
        return;
      }
    }
    compileApp(E, C, Tail);
  }

  void compileIf(Value E, FnCtx &C, bool Tail) {
    Value Rest = cdr(E);
    compileExpr(car(Rest), C, false);
    uint32_t ElseJump = emitJump(C, Op::JumpIfFalse);
    // Both arms start from the same stack depth.  A tail-position arm may
    // leave C.Depth inflated (a let in tail position skips its SetTop —
    // the Return makes it moot), and Call bakes the compile-time depth
    // into the instruction, so the other arm must not inherit it.
    uint32_t BranchDepth = C.Depth;
    compileExpr(car(cdr(Rest)), C, Tail);
    if (Tail) {
      patchJump(C, ElseJump);
      C.Depth = BranchDepth;
      compileExpr(car(cdr(cdr(Rest))), C, true);
      return;
    }
    uint32_t EndJump = emitJump(C, Op::Jump);
    patchJump(C, ElseJump);
    C.Depth = BranchDepth;
    compileExpr(car(cdr(cdr(Rest))), C, false);
    patchJump(C, EndJump);
  }

  void compileSet(Value E, FnCtx &C, bool Tail) {
    Value Name = car(cdr(E));
    Value Init = car(cdr(cdr(E)));
    if (isObj<Pair>(Init) && isObj<Symbol>(car(Init)) &&
        castObj<Symbol>(car(Init)) == SLambda)
      compileLambda(Init, C, Name);
    else
      compileExpr(Init, C, false);
    Symbol *S = castObj<Symbol>(Name);
    Resolved R = resolve(C, S);
    if (R.Kind == RefKind::Local) {
      assert(R.Boxed && "assignment analysis must box assigned locals");
      emit1(C, Op::SetLocalCell, R.Offset);
    } else {
      emit2(C, Op::SetGlobal, constIndex(C, Value::object(S)), cacheIndex(C));
    }
    emitConst(C, Value::unspecified());
    maybeReturn(C, Tail);
  }

  void compileBegin(Value Forms, FnCtx &C, bool Tail) {
    if (Forms.isNil()) {
      emitConst(C, Value::unspecified());
      maybeReturn(C, Tail);
      return;
    }
    while (isObj<Pair>(cdr(Forms))) {
      compileExpr(car(Forms), C, false);
      Forms = cdr(Forms);
    }
    compileExpr(car(Forms), C, Tail);
  }

  void compileLet(Value E, FnCtx &C, bool Tail) {
    Value Bindings = car(cdr(E));
    Value Body = car(cdr(cdr(E)));
    uint32_t DepthBefore = C.Depth;
    size_t NLocalsBefore = C.Locals.size();

    std::vector<Value> Names;
    for (Value B = Bindings; isObj<Pair>(B); B = cdr(B)) {
      Value Name = car(car(B));
      Value Init = car(cdr(car(B)));
      Names.push_back(Name);
      if (isObj<Pair>(Init) && isObj<Symbol>(car(Init)) &&
          castObj<Symbol>(car(Init)) == SLambda)
        compileLambda(Init, C, Name);
      else
        compileExpr(Init, C, false);
      emit(C, Op::Push);
      C.bumpDepth();
    }
    for (size_t I = 0; I != Names.size(); ++I) {
      uint32_t Off = DepthBefore + static_cast<uint32_t>(I);
      bool Boxed = assignedIn(Body, Names[I]);
      if (Boxed)
        emit1(C, Op::MakeCell, Off);
      C.Locals.push_back({castObj<Symbol>(Names[I]), Off, Boxed});
    }

    compileExpr(Body, C, Tail);

    C.Locals.resize(NLocalsBefore);
    if (!Tail && !Names.empty()) {
      emit1(C, Op::SetTop, DepthBefore);
      C.Depth = DepthBefore;
    }
  }

  void compileLambda(Value E, FnCtx &C, Value NameHint) {
    Value Formals = car(cdr(E));
    Value Body = car(cdr(cdr(E)));

    FnCtx Child;
    Child.Parent = &C;

    uint32_t NParams = 0;
    bool HasRest = false;
    std::vector<Value> ParamNames;
    Value F = Formals;
    while (isObj<Pair>(F)) {
      ParamNames.push_back(car(F));
      ++NParams;
      F = cdr(F);
    }
    if (isObj<Symbol>(F)) {
      HasRest = true;
      ParamNames.push_back(F);
    }
    uint32_t NSlots = NParams + (HasRest ? 1 : 0);

    // Which outer bindings does the body capture?  Free symbols that are
    // bound somewhere up the context chain become closure captures, copied
    // into the slots right after the parameters at entry; the rest are
    // globals.
    std::vector<Symbol *> Bound;
    for (Value P : ParamNames)
      Bound.push_back(castObj<Symbol>(P));
    std::vector<Symbol *> FreeCandidates;
    std::unordered_set<Symbol *> Seen;
    freeSymbols(Body, Bound, FreeCandidates, Seen);

    for (Symbol *S : FreeCandidates)
      if (boundInChain(&C, S))
        Child.FreeNames.push_back(S);

    Child.Depth = Child.MaxDepth =
        FrameHeaderWords + NSlots +
        static_cast<uint32_t>(Child.FreeNames.size());
    // Entry frame-size word (see run()): the frame extent right after
    // entry, i.e. header + parameters (+ rest slot) + captured variables.
    Child.Instrs.push_back(Child.Depth);

    for (uint32_t I = 0; I != NSlots; ++I) {
      uint32_t Off = FrameHeaderWords + I;
      bool Boxed = assignedIn(Body, ParamNames[I]);
      if (Boxed)
        emit1(Child, Op::MakeCell, Off);
      Child.Locals.push_back({castObj<Symbol>(ParamNames[I]), Off, Boxed});
    }
    for (uint32_t I = 0; I != Child.FreeNames.size(); ++I) {
      uint32_t Off = FrameHeaderWords + NSlots + I;
      // A captured binding's boxedness comes from its defining scope; the
      // cell (not its contents) was captured, so accesses go through it.
      Resolved Src = resolveInChain(C, Child.FreeNames[I]);
      Child.Locals.push_back({Child.FreeNames[I], Off, Src.Boxed});
    }

    compileExpr(Body, Child, /*Tail=*/true);
    if (Failed)
      return;

    Code *ChildCode = finishCode(Child, NameHint, NParams, HasRest);

    // Capture: push each free variable's slot raw (cells included) in the
    // parent, then close over them.
    for (Symbol *S : Child.FreeNames) {
      Resolved R = resolve(C, S);
      if (R.Kind != RefKind::Local) {
        oscUnreachable("captured variable not bound in parent context");
      }
      emit1(C, Op::GetLocal, R.Offset);
      emit(C, Op::Push);
      C.bumpDepth();
    }
    emit2(C, Op::MakeClosure, constIndex(C, Value::object(ChildCode)),
          static_cast<uint32_t>(Child.FreeNames.size()));
    C.Depth -= static_cast<uint32_t>(Child.FreeNames.size());
  }

  /// Resolves \p S against \p C and its ancestors for boxedness.
  Resolved resolveInChain(FnCtx &C, Symbol *S) {
    for (FnCtx *Ctx = &C; Ctx; Ctx = Ctx->Parent) {
      Resolved R = resolve(*Ctx, S);
      if (R.Kind == RefKind::Local)
        return R;
    }
    return {RefKind::Global, 0, false};
  }

  void compileApp(Value E, FnCtx &C, bool Tail) {
    std::vector<Value> Parts;
    if (!listToVector(E, Parts) || Parts.empty()) {
      fail("bad application: " + writeToString(E));
      return;
    }
    Value Operator = Parts[0];
    uint32_t NArgs = static_cast<uint32_t>(Parts.size()) - 1;

    // Open-coded primitives: only when the operator symbol is not lexically
    // bound (rebinding a builtin global does not affect already-compiled
    // open-coded call sites; see README).
    if (isObj<Symbol>(Operator)) {
      Symbol *S = castObj<Symbol>(Operator);
      auto It = Prims.find(S);
      if (It != Prims.end() && It->second.Arity == NArgs &&
          resolveInChain(C, S).Kind == RefKind::Global) {
        if (NArgs == 1) {
          compileExpr(Parts[1], C, false);
        } else {
          compileExpr(Parts[1], C, false);
          emit(C, Op::Push);
          C.bumpDepth();
          compileExpr(Parts[2], C, false);
          C.Depth -= 1;
        }
        emit(C, It->second.Opcode);
        maybeReturn(C, Tail);
        return;
      }
    }

    if (Tail) {
      for (uint32_t I = 1; I <= NArgs; ++I) {
        compileExpr(Parts[I], C, false);
        emit(C, Op::Push);
        C.bumpDepth();
      }
      compileExpr(Operator, C, false);
      emit2(C, Op::TailCall, cacheIndex(C), NArgs);
      C.Depth -= NArgs;
      return;
    }

    uint32_t D = C.Depth;
    emit(C, Op::Frame);
    C.bumpDepth(FrameHeaderWords);
    for (uint32_t I = 1; I <= NArgs; ++I) {
      compileExpr(Parts[I], C, false);
      emit(C, Op::Push);
      C.bumpDepth();
    }
    compileExpr(Operator, C, false);
    // D is the last operand word: the return pc points just past it, so
    // Instrs[RetPc - 1] recovers the frame-size word (§3.1).
    emit3(C, Op::Call, cacheIndex(C), NArgs, D);
    C.Depth = D;
  }

  // --- Top level -------------------------------------------------------------------

  void compileToplevelForm(Value E, FnCtx &C, bool Tail) {
    if (Failed)
      return;
    if (isObj<Pair>(E) && isObj<Symbol>(car(E))) {
      Symbol *HS = castObj<Symbol>(car(E));
      if (HS == SDefine) {
        Value Name = car(cdr(E));
        Value Init = car(cdr(cdr(E)));
        if (isObj<Pair>(Init) && isObj<Symbol>(car(Init)) &&
            castObj<Symbol>(car(Init)) == SLambda)
          compileLambda(Init, C, Name);
        else
          compileExpr(Init, C, false);
        emit1(C, Op::DefGlobal, constIndex(C, Name));
        emitConst(C, Value::unspecified());
        maybeReturn(C, Tail);
        return;
      }
      if (HS == SBegin) {
        Value Forms = cdr(E);
        if (Forms.isNil()) {
          emitConst(C, Value::unspecified());
          maybeReturn(C, Tail);
          return;
        }
        while (isObj<Pair>(cdr(Forms))) {
          compileToplevelForm(car(Forms), C, false);
          Forms = cdr(Forms);
        }
        compileToplevelForm(car(Forms), C, Tail);
        return;
      }
    }
    compileExpr(E, C, Tail);
  }

  // --- Superinstruction fusion (peephole) -------------------------------------

  /// Looks up the fusion rule for the adjacent pair (\p A, \p B) under the
  /// enabled mask.  Returns false when the pair has no enabled rule.
  bool fuseRule(Op A, Op B, Op &Fused) const {
    struct Rule {
      Op A, B, Fused;
      uint32_t Bit;
    };
    // One row per FuseRule bit, in bit order.
    static constexpr Rule Rules[] = {
        {Op::GetLocal, Op::Push, Op::GetLocalPush, FuseGetLocalPush},
        {Op::Const, Op::Push, Op::ConstPush, FuseConstPush},
        {Op::GetGlobal, Op::Call, Op::GetGlobalCall, FuseGetGlobalCall},
        {Op::GetGlobal, Op::TailCall, Op::GetGlobalTailCall,
         FuseGetGlobalTailCall},
        {Op::NumLt, Op::JumpIfFalse, Op::LtJumpIfFalse, FuseLtJumpIfFalse},
        {Op::NumLe, Op::JumpIfFalse, Op::LeJumpIfFalse, FuseLeJumpIfFalse},
        {Op::NumGt, Op::JumpIfFalse, Op::GtJumpIfFalse, FuseGtJumpIfFalse},
        {Op::NumGe, Op::JumpIfFalse, Op::GeJumpIfFalse, FuseGeJumpIfFalse},
        {Op::NumEq, Op::JumpIfFalse, Op::NumEqJumpIfFalse,
         FuseNumEqJumpIfFalse},
        {Op::IsZero, Op::JumpIfFalse, Op::ZeroJumpIfFalse,
         FuseZeroJumpIfFalse},
        {Op::IsNull, Op::JumpIfFalse, Op::NullJumpIfFalse,
         FuseNullJumpIfFalse},
        {Op::GetLocal, Op::Return, Op::GetLocalReturn, FuseGetLocalReturn},
    };
    for (const Rule &R : Rules)
      if (R.A == A && R.B == B && (FuseMask & R.Bit)) {
        Fused = R.Fused;
        return true;
      }
    return false;
  }

  /// Rewrites \p C.Instrs, greedily fusing enabled adjacent pairs left to
  /// right.  Correctness constraints:
  ///   * a pair is skipped when its second instruction is a jump target —
  ///     fusing would erase an entry point;
  ///   * Jump/JumpIfFalse targets (including the targets carried by fused
  ///     conditional branches) are relocated through an old-pc -> new-pc
  ///     map built while copying;
  ///   * return points need no map: a call's return pc is "just past the
  ///     call", which exists in the new stream by construction, and every
  ///     fused call keeps D as its last word so Instrs[RetPc-1] holds;
  ///   * the entry frame-size word Instrs[0] and all depth/index operands
  ///     are not pcs and pass through untouched.
  void fuseSuperinstructions(FnCtx &C) {
    if (!FuseMask || C.Instrs.size() <= 1)
      return;
    std::vector<uint32_t> &In = C.Instrs;
    const uint32_t End = static_cast<uint32_t>(In.size());

    std::unordered_set<uint32_t> Targets;
    for (uint32_t Pc = 1; Pc < End;
         Pc += 1 + opOperandCount(static_cast<Op>(In[Pc]))) {
      Op O = static_cast<Op>(In[Pc]);
      if (O == Op::Jump || O == Op::JumpIfFalse)
        Targets.insert(In[Pc + 1]);
    }

    std::vector<uint32_t> Out;
    Out.reserve(In.size());
    Out.push_back(In[0]);
    // OldToNew[p] = index in Out of the instruction that began at old pc p
    // (meaningful only at old instruction starts; index End maps the
    // one-past-the-end target patchJump can produce).
    std::vector<uint32_t> OldToNew(End + 1, 0);
    std::vector<uint32_t> Relocs; ///< Out indices holding old jump targets.

    uint32_t Pc = 1;
    while (Pc < End) {
      OldToNew[Pc] = static_cast<uint32_t>(Out.size());
      Op O = static_cast<Op>(In[Pc]);
      unsigned NOps = opOperandCount(O);
      uint32_t NextPc = Pc + 1 + NOps;
      Op Fused;
      if (NextPc < End && !Targets.count(NextPc) &&
          fuseRule(O, static_cast<Op>(In[NextPc]), Fused)) {
        Op B = static_cast<Op>(In[NextPc]);
        unsigned BOps = opOperandCount(B);
        Out.push_back(static_cast<uint32_t>(Fused));
        // First instruction's operands, verbatim (off / k / k+gci).
        for (unsigned I = 1; I <= NOps; ++I)
          Out.push_back(In[Pc + I]);
        // Second instruction's operands: jump targets get relocated.
        if (B == Op::JumpIfFalse)
          Relocs.push_back(static_cast<uint32_t>(Out.size()));
        for (unsigned I = 1; I <= BOps; ++I)
          Out.push_back(In[NextPc + I]);
        Pc = NextPc + 1 + BOps;
        continue;
      }
      Out.push_back(In[Pc]);
      if (O == Op::Jump || O == Op::JumpIfFalse)
        Relocs.push_back(static_cast<uint32_t>(Out.size()));
      for (unsigned I = 1; I <= NOps; ++I)
        Out.push_back(In[Pc + I]);
      Pc = NextPc;
    }
    OldToNew[End] = static_cast<uint32_t>(Out.size());

    for (uint32_t At : Relocs)
      Out[At] = OldToNew[Out[At]];
    In = std::move(Out);
  }

  Code *finishCode(FnCtx &C, Value Name, uint32_t NParams, bool HasRest) {
    fuseSuperinstructions(C);
    Vector *Consts =
        H.allocVector(static_cast<uint32_t>(C.Consts.size()), Value::nil());
    for (uint32_t I = 0; I != C.Consts.size(); ++I)
      Consts->set(I, C.Consts[I]);
    return H.allocCode(Name, Value::object(Consts), NParams, HasRest,
                       C.MaxDepth, C.Instrs.data(),
                       static_cast<uint32_t>(C.Instrs.size()), C.NCaches);
  }

  Heap &H;
  uint32_t FuseMask;
  bool Failed = false;
  std::string Error;
  Symbol *SQuote, *SIf, *SSet, *SLambda, *SBegin, *SLet, *SDefine;
  std::unordered_map<Symbol *, PrimSpec> Prims;
};

} // namespace

// Config.h states the default fusion mask as a literal (it cannot include
// this layer); keep the two in lockstep.
static_assert(osc::FuseAll == 0xfffu,
              "FuseAll drifted from Config::Superinstructions' default");

Code *CodeGen::compileToplevel(Value Form, std::string &Error) {
  Compiler C(H, FuseMask);
  return C.run(Form, Error);
}
