//===----------------------------------------------------------------------===//
///
/// \file
/// Macro-expansion of derived forms into the core language.
///
/// Core forms after expansion: quote, if, set!, lambda, begin, let
/// (parallel, compiled without closure allocation), define (top level
/// only), literals, variable references and applications.
///
/// Derived forms handled: let*, letrec, letrec*, named let, cond (incl. =>
/// and else), case, and, or, when, unless, do, quasiquote, internal
/// defines (rewritten to letrec*), and the (define (f . args) ...) sugar.
///
/// Delimited-control sugar (the prelude supplies the %-procedures):
///   (reset tag body...)   => (%reset-proc tag (lambda () body...))
///   (shift tag k body...) => (%shift-proc tag (lambda (k) body...))
///   (async body...)       => (%async (lambda () body...))
///   (with-handler tag ((op k args...) cbody...)... body...)
///                         => (%with-handler-proc tag <dispatcher>
///                                                (lambda () body...) '#f)
///   (with-shallow-handler ...)  same, with the shallow flag '#t
///   (nursery body...)     => (%nursery-scope (lambda () body...))
///
//===----------------------------------------------------------------------===//

#ifndef OSC_COMPILER_EXPANDER_H
#define OSC_COMPILER_EXPANDER_H

#include "object/Heap.h"
#include "object/Value.h"

#include <string>
#include <vector>

namespace osc {

class Expander {
public:
  explicit Expander(Heap &H);

  /// Expands one top-level form.  Returns false and fills \p Error on a
  /// syntax error.
  bool expandToplevel(Value Form, Value &Out, std::string &Error);

private:
  Value expand(Value Form);
  Value expandBody(Value Forms); ///< Body with internal defines -> one expr.
  Value expandLambda(Value Form);
  Value expandLet(Value Form);
  Value expandNamedLet(Value Name, Value Bindings, Value Body);
  Value expandLetStar(Value Form);
  Value expandLetrec(Value Form);
  Value expandCond(Value Form);
  Value expandCase(Value Form);
  Value expandAnd(Value Args);
  Value expandOr(Value Args);
  Value expandDo(Value Form);
  Value expandQuasi(Value Tmpl, int Depth);
  /// (with-handler tag clause... body...) and its shallow variant: builds
  /// the dispatcher lambda over the clauses and hands everything to the
  /// prelude's %with-handler-proc.
  Value expandWithHandler(Value Form, bool Shallow);
  Value expandList(Value Forms); ///< Expands each element of a list.

  Value fail(const std::string &Msg); ///< Records the first error.
  Value list1(Value A);
  Value list2(Value A, Value B);
  Value list3(Value A, Value B, Value C);
  Value list4(Value A, Value B, Value C, Value D);
  Symbol *gensym(const char *Hint);

  Heap &H;
  bool Failed = false;
  std::string Error;
  uint64_t GensymCounter = 0;

  // Interned keyword symbols.
  Value SQuote, SQuasiquote, SUnquote, SUnquoteSplicing, SIf, SSet, SLambda,
      SBegin, SLet, SLetStar, SLetrec, SLetrecStar, SDefine, SCond, SCase,
      SAnd, SOr, SWhen, SUnless, SDo, SElse, SArrow, SNot, SCons, SAppend,
      SListToVector, SList, SMemv, SEqv, SReset, SShift, SAsync, SResetProc,
      SShiftProc, SAsyncProc, SWithHandler, SWithShallowHandler, SNursery,
      SWithHandlerProc, SPerformProc, SNurseryScope, SEq, SApply;
};

} // namespace osc

#endif // OSC_COMPILER_EXPANDER_H
