//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode instruction set.
///
/// Instructions are sequences of 32-bit words: one opcode word followed by
/// its operand words.  The Call encoding is load-bearing for the control
/// representation: `Call ci n D` occupies four words and the return pc
/// points *after* D, so `Instrs[RetPc - 1]` is the frame-size word the
/// paper places in the code stream immediately before the return point
/// (§3.1).  Stack walkers (frame splitting, overflow copy-up, continuation
/// resume) rely on exactly this — which is also why every fused call
/// superinstruction below keeps D as its *last* operand word.
///
/// The opcode set is a single X-macro so the enum, the mnemonic table, the
/// operand-count table and the threaded-dispatch label table (VM.cpp) can
/// never drift apart.  Ops that carry an inline-cache slot (GetGlobal,
/// SetGlobal, Call, TailCall and their fusions) always encode the cache
/// index, whether or not Config::InlineCaches is on: the bytecode for a
/// program is a function of the fusion mask only, never of the IC switch.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_COMPILER_BYTECODE_H
#define OSC_COMPILER_BYTECODE_H

#include "object/Objects.h"

#include <cstdint>
#include <string>

namespace osc {

// clang-format off
/// X(Name, Mnemonic, NOperands).  Operand layouts:
///   Const k            acc = Consts[k]
///   GetLocal off       acc = frame[off]
///   GetLocalCell off   acc = cell-at-frame[off].value
///   SetLocalCell off   cell-at-frame[off].value = acc
///   GetGlobal k ci     acc = global of symbol Consts[k]; IC slot ci
///   SetGlobal k ci     global of symbol Consts[k] = acc; IC slot ci
///   DefGlobal k        define global of symbol Consts[k] = acc
///   Push               stack[Top++] = acc
///   MakeCell off       frame[off] = new cell(frame[off])
///   MakeClosure k n    acc = closure of Consts[k] capturing n pushed values
///   Jump t             pc = t
///   JumpIfFalse t      if acc is #f: pc = t
///   SetTop d           Top = Fp + d (leaving a non-tail let scope)
///   Frame              reserve the two callee frame header slots
///   Call ci n D        invoke acc with n args at [Fp+D+2, Fp+D+2+n)
///   TailCall ci n      move n args to Fp+2 and invoke acc, reusing the frame
///   Return             return acc to the frame's return address
///   CwvApply           call-with-values stub resume point
///   PromptPop          prompt stub resume point (pop the PromptRecord)
/// Binary open-coded primitives pop one operand; acc is the right operand
/// and receives the result.  Superinstructions (emitted by the compiler's
/// peephole pass, CodeGen.cpp) concatenate the operand words of the two
/// ops they replace, except that fused conditional branches carry only the
/// branch target.
#define OSC_OPCODES(X)                                                        \
  X(Const,             "const",                 1)                            \
  X(GetLocal,          "get-local",             1)                            \
  X(GetLocalCell,      "get-local-cell",        1)                            \
  X(SetLocalCell,      "set-local-cell",        1)                            \
  X(GetGlobal,         "get-global",            2)                            \
  X(SetGlobal,         "set-global",            2)                            \
  X(DefGlobal,         "def-global",            1)                            \
  X(Push,              "push",                  0)                            \
  X(MakeCell,          "make-cell",             1)                            \
  X(MakeClosure,       "make-closure",          2)                            \
  X(Jump,              "jump",                  1)                            \
  X(JumpIfFalse,       "jump-if-false",         1)                            \
  X(SetTop,            "set-top",               1)                            \
  X(Frame,             "frame",                 0)                            \
  X(Call,              "call",                  3)                            \
  X(TailCall,          "tail-call",             2)                            \
  X(Return,            "return",                0)                            \
  X(CwvApply,          "cwv-apply",             0)                            \
  X(PromptPop,         "prompt-pop",            0)                            \
  X(Add,               "add",                   0)                            \
  X(Sub,               "sub",                   0)                            \
  X(Mul,               "mul",                   0)                            \
  X(NumLt,             "num<",                  0)                            \
  X(NumLe,             "num<=",                 0)                            \
  X(NumGt,             "num>",                  0)                            \
  X(NumGe,             "num>=",                 0)                            \
  X(NumEq,             "num=",                  0)                            \
  X(Cons,              "cons",                  0)                            \
  X(Car,               "car",                   0)                            \
  X(Cdr,               "cdr",                   0)                            \
  X(IsNull,            "null?",                 0)                            \
  X(IsPair,            "pair?",                 0)                            \
  X(Not,               "not",                   0)                            \
  X(IsZero,            "zero?",                 0)                            \
  X(IsEq,              "eq?",                   0)                            \
  /* Superinstructions: the highest-frequency dynamic opcode pairs on the  */ \
  /* bench_dispatch workloads (measured table in INTERNALS.md §14).        */ \
  X(GetLocalPush,      "get-local+push",        1) /* off                  */ \
  X(ConstPush,         "const+push",            1) /* k                    */ \
  X(GetGlobalCall,     "get-global+call",       5) /* k gci ci n D         */ \
  X(GetGlobalTailCall, "get-global+tail-call",  4) /* k gci ci n           */ \
  X(LtJumpIfFalse,     "num<+jump-if-false",    1) /* t                    */ \
  X(LeJumpIfFalse,     "num<=+jump-if-false",   1) /* t                    */ \
  X(GtJumpIfFalse,     "num>+jump-if-false",    1) /* t                    */ \
  X(GeJumpIfFalse,     "num>=+jump-if-false",   1) /* t                    */ \
  X(NumEqJumpIfFalse,  "num=+jump-if-false",    1) /* t                    */ \
  X(ZeroJumpIfFalse,   "zero?+jump-if-false",   1) /* t                    */ \
  X(NullJumpIfFalse,   "null?+jump-if-false",   1) /* t                    */ \
  X(GetLocalReturn,    "get-local+return",      1) /* off                  */
// clang-format on

enum class Op : uint32_t {
#define OSC_OP_ENUM(Name, Mnemonic, NOperands) Name,
  OSC_OPCODES(OSC_OP_ENUM)
#undef OSC_OP_ENUM
};

/// Total opcode count; sizes the threaded-dispatch label table.
constexpr uint32_t NumOpcodes = 0
#define OSC_OP_COUNT(Name, Mnemonic, NOperands) +1
    OSC_OPCODES(OSC_OP_COUNT)
#undef OSC_OP_COUNT
    ;

/// One bit per peephole fusion rule, so Config::Superinstructions can
/// toggle each superinstruction independently.  The bit order matches the
/// fused-opcode order above.
enum FuseRule : uint32_t {
  FuseGetLocalPush = 1u << 0,
  FuseConstPush = 1u << 1,
  FuseGetGlobalCall = 1u << 2,
  FuseGetGlobalTailCall = 1u << 3,
  FuseLtJumpIfFalse = 1u << 4,
  FuseLeJumpIfFalse = 1u << 5,
  FuseGtJumpIfFalse = 1u << 6,
  FuseGeJumpIfFalse = 1u << 7,
  FuseNumEqJumpIfFalse = 1u << 8,
  FuseZeroJumpIfFalse = 1u << 9,
  FuseNullJumpIfFalse = 1u << 10,
  FuseGetLocalReturn = 1u << 11,
  FuseAll = (1u << 12) - 1,
};

/// Number of operand words following each opcode.
unsigned opOperandCount(Op O);

/// Opcode mnemonic for the disassembler.
const char *opName(Op O);

/// Renders \p C's instruction stream, one instruction per line.
std::string disassemble(const Code *C);

} // namespace osc

#endif // OSC_COMPILER_BYTECODE_H
