//===----------------------------------------------------------------------===//
///
/// \file
/// Bytecode instruction set.
///
/// Instructions are sequences of 32-bit words: one opcode word followed by
/// its operand words.  The Call encoding is load-bearing for the control
/// representation: `Call n D` occupies three words and the return pc points
/// *after* D, so `Instrs[RetPc - 1]` is the frame-size word the paper
/// places in the code stream immediately before the return point (§3.1).
/// Stack walkers (frame splitting, overflow copy-up, continuation resume)
/// rely on exactly this.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_COMPILER_BYTECODE_H
#define OSC_COMPILER_BYTECODE_H

#include "object/Objects.h"

#include <cstdint>
#include <string>

namespace osc {

enum class Op : uint32_t {
  /// acc = Consts[k]
  Const,
  /// acc = frame[off]
  GetLocal,
  /// acc = cell-at-frame[off].value
  GetLocalCell,
  /// cell-at-frame[off].value = acc
  SetLocalCell,
  /// acc = global of symbol Consts[k]; error if undefined
  GetGlobal,
  /// global of symbol Consts[k] = acc; error if not yet defined
  SetGlobal,
  /// define global of symbol Consts[k] = acc
  DefGlobal,
  /// stack[Top++] = acc
  Push,
  /// frame[off] = new cell(frame[off])   (boxed bindings)
  MakeCell,
  /// acc = closure of Consts[k], capturing nfree pushed values
  MakeClosure,
  /// pc = target
  Jump,
  /// if acc is #f: pc = target
  JumpIfFalse,
  /// Top = Fp + d   (leaving a non-tail let scope)
  SetTop,
  /// Reserve the two callee frame header slots: Top += 2
  Frame,
  /// Call n D: invoke acc with n args at [Fp+D+2, Fp+D+2+n)
  Call,
  /// TailCall n: move n args to Fp+2 and invoke acc, reusing the frame
  TailCall,
  /// Return acc to the frame's return address (may underflow)
  Return,
  /// Resume point of the call-with-values stub: apply the consumer stored
  /// in this frame to the values just returned
  CwvApply,
  /// Resume point of the prompt stub planted by (reset tag thunk): pop the
  /// PromptRecord whose id is in this frame's FramePromptId slot, then
  /// return the value(s) that just arrived onward
  PromptPop,

  // Open-coded primitives (binary ops pop one operand; acc is the right
  // operand and receives the result).
  Add,
  Sub,
  Mul,
  NumLt,
  NumLe,
  NumGt,
  NumGe,
  NumEq,
  Cons,
  Car,
  Cdr,
  IsNull,
  IsPair,
  Not,
  IsZero,
  IsEq,
};

/// Number of operand words following each opcode.
unsigned opOperandCount(Op O);

/// Opcode mnemonic for the disassembler.
const char *opName(Op O);

/// Renders \p C's instruction stream, one instruction per line.
std::string disassemble(const Code *C);

} // namespace osc

#endif // OSC_COMPILER_BYTECODE_H
