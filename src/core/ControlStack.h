//===----------------------------------------------------------------------===//
///
/// \file
/// The segmented control stack: the paper's contribution (Sections 3.1–3.4).
///
/// The logical control stack is a chain: the *current* stack segment (a
/// window [Start, Start+Cap) of a StackSegment buffer, with the live
/// portion [0, Top) relative to Start), linked through continuation objects
/// down to the distinguished halt continuation.  All capture, reinstatement,
/// promotion, splitting, overflow and caching logic lives here; the VM only
/// asks for a place to build frames and for resume points.
///
/// Invariants:
///   * the frame at offset 0 of the current window is always a base frame
///     (its ret-code slot holds the underflow marker);
///   * every slot in [0, Top) holds a valid Value, so GC tracing of the
///     window is precise;
///   * Link is the continuation the base frame returns into.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_CORE_CONTROLSTACK_H
#define OSC_CORE_CONTROLSTACK_H

#include "core/Config.h"
#include "core/FrameWalk.h"
#include "object/Heap.h"
#include "object/Objects.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cstdint>
#include <vector>

namespace osc {

/// Where the VM should resume execution after a continuation has been
/// reinstated.
struct ResumePoint {
  Value Code;    ///< Code object to resume, or underflow marker for halt.
  int64_t Pc;    ///< Resume pc.
  uint32_t Fp;   ///< Frame pointer (offset in the current window).
  uint32_t Top;  ///< Stack watermark on resume (== Fp + frame-size word).
  bool Halted;   ///< True when the halt continuation was reached.
};

/// Placement of a callee frame computed by the overflow-aware call paths.
struct CallFramePlan {
  uint32_t NewFp;  ///< Where the callee frame begins.
  bool BaseFrame;  ///< True if the frame landed at a fresh segment base and
                   ///< the VM must write the underflow header instead of
                   ///< the real return address (the real return address has
                   ///< been captured into the overflow continuation).
};

class ControlStack : public RootProvider {
public:
  ControlStack(Heap &H, Stats &S, const Config &C);
  ~ControlStack() override;
  ControlStack(const ControlStack &) = delete;
  ControlStack &operator=(const ControlStack &) = delete;

  // --- Hot-path state (accessed directly by the interpreter loop) ---------

  uint32_t Fp = 0;  ///< Current frame base, relative to the window start.
  uint32_t Top = 0; ///< Watermark: one past the highest initialized slot.

  /// Slot array of the current window.  Invalidated by any operation that
  /// may switch segments (capture, invoke, prepare*Call, reset).
  Value *slots() { return Seg->Slots + Start; }
  const Value *slots() const { return Seg->Slots + Start; }
  uint32_t capacity() const { return Cap; }
  Value link() const { return Link; }

  /// Replaces the continuation below the current window.  Used by the
  /// scheduler when starting a fresh green thread: the new chain is
  /// detached from whatever computation happened to be current and rooted
  /// at the shared thread-root guard instead, so the thread's eventual
  /// return (or a capture at its base frame) is recognized as thread exit
  /// rather than an underflow into an unrelated suspended computation.
  void setLink(Value NewLink) { Link = NewLink; }

  /// (Re)initializes to an empty stack: a fresh initial segment whose base
  /// frame underflows into the halt continuation.  After reset the VM
  /// builds the initial frame via plantBaseFrame.
  void reset();

  /// Writes the underflow header at offset 0 and positions Fp/Top so a
  /// program frame can be built at the segment base.
  void plantBaseFrame();

  // --- Call-path room management (overflow, §3.2) --------------------------

  /// Prepares room for a non-tail call.  On entry the pending callee frame
  /// material sits at [Fp+D, Fp+D+2+NArgs): two uninitialized header slots
  /// followed by the arguments; the callee needs \p CalleeNeed slots from
  /// its frame base.  Returns where the callee frame now begins (segments
  /// may have been switched per the overflow policy).  \p CurCode/\p RetPc
  /// identify the return point for any continuation formed.
  CallFramePlan prepareCall(Value CurCode, int64_t RetPc, uint32_t D,
                            uint32_t NArgs, uint32_t CalleeNeed);

  /// Same for a tail call: the pending frame reuses the current frame; the
  /// arguments already sit at [Fp+2, Fp+2+NArgs) and the existing header at
  /// Fp is kept.  Returns the (possibly relocated) frame base.
  CallFramePlan prepareTailCall(uint32_t NArgs, uint32_t CalleeNeed);

  // --- Capture (Fig. 2) -----------------------------------------------------

  /// Captures the continuation of the call to call/cc whose pending frame
  /// boundary is \p Boundary (= Fp+D for a non-tail call, Fp for a tail
  /// call) and whose return point is (\p RetCode, \p RetPc); \p RetCode is
  /// the underflow marker for the empty-segment case.  Seals the occupied
  /// portion, shortens the current segment, and promotes all one-shot
  /// continuations in the chain (§3.3).  Returns the continuation value.
  Value captureMultiShot(uint32_t Boundary, Value RetCode, int64_t RetPc);

  /// Captures a one-shot continuation: encapsulates the entire current
  /// window and installs a fresh segment (or, with seal displacement, the
  /// remainder of this one, §3.4).
  Value captureOneShot(uint32_t Boundary, Value RetCode, int64_t RetPc);

  /// Ensures the current window is an empty base: used after a capture to
  /// guarantee room for \p Need slots before the VM plants the base frame
  /// and calls the receiver.  May replace the window with a fresh segment.
  void beginBaseFrame(uint32_t Need);

  // --- Invocation (Figs. 3 and 4) -------------------------------------------

  /// True if invoking \p K must fail because it was already shot.
  static bool isShot(const Continuation *K) { return K->isShot(); }

  /// Reinstates \p K (multi-shot: bounded copy with splitting; one-shot:
  /// zero-copy segment swap + shot marking).  Pre: !isShot(K) && !K->isHalt().
  ResumePoint invoke(Continuation *K);

  /// Handles a return past the current segment base: implicitly invokes the
  /// link continuation.  Returns a ResumePoint with Halted set when the
  /// halt continuation is reached.
  ResumePoint underflow();

  /// Deep-clones a shared (promoted or multi-shot) continuation into an
  /// exclusively-owned one-shot view on a fresh segment.  Delimited capture
  /// uses this for chain members it cannot relink in place because other
  /// captures may still reference them; the copy is counted in WordsCopied.
  /// Pre: !K->isShot() && !K->isHalt().
  Continuation *cloneShared(Continuation *K);

  /// Ensures the current window has at least \p NeedCap slots, relocating
  /// the live contents [0, Top) into a larger segment if not.  Used when a
  /// resumed frame's static extent exceeds the window it was reinstated
  /// into (possible with §3.4 seal-displacement views and tightly sized
  /// reinstatement windows); Fp and Top are preserved.
  void growWindow(uint32_t NeedCap);

  // --- Segment cache (§3.2) -------------------------------------------------

  size_t cacheSize() const { return Cache.size(); }

  // --- Observability --------------------------------------------------------

  /// Points the stack at an event tracer (usually the owning VM's); null
  /// detaches.  Never owned.
  void setTrace(Trace *T) { Tr = T; }
  /// Fresh-segment allocation requests to date (cache hits excluded); the
  /// ordinal space FaultPlan::FailSegmentAlloc indexes.
  uint64_t segmentAllocRequests() const { return SegmentAllocs; }

  // --- Introspection (tests, benchmarks) ------------------------------------

  /// Total words of stack-segment buffer reachable from the current chain,
  /// counting each buffer once.  Measures the fragmentation §3.4 discusses.
  uint64_t residentSegmentWords() const;
  /// Number of continuation links from the current segment down to halt.
  uint32_t chainLength() const;
  Continuation *haltContinuation() const { return Halt; }

  // RootProvider:
  void traceRoots(GCVisitor &V) override;
  void willCollect() override;

private:
  StackSegment *newSegment(uint32_t MinWords);
  void releaseSegment(StackSegment *S);
  /// Discards the current window, caching the buffer when eligible.
  /// \p Keep is the buffer about to become current (never cached).
  void discardCurrentWindow(StackSegment *Keep);
  Continuation *makeContinuation(uint32_t Boundary, Value RetCode,
                                 int64_t RetPc);
  void promoteChain();
  void splitForCopyBound(Continuation *K);
  ResumePoint resumeInto(Continuation *K);
  /// Moves the pending call material into a fresh window per the overflow
  /// policy.  \p PendBegin/\p PendEnd delimit the slots that must survive
  /// (header + args); \p HeaderLive is true when the pending header at
  /// \p PendBegin already holds a real return address (tail call) rather
  /// than two uninitialized slots (non-tail call).
  CallFramePlan overflowRelocate(Value CurCode, int64_t RetPc,
                                 uint32_t Boundary, uint32_t PendBegin,
                                 uint32_t PendEnd, uint32_t CalleeNeed,
                                 bool HeaderLive);

  Heap &H;
  Stats &S;
  const Config &Cfg;
  Trace *Tr = nullptr;
  uint64_t SegmentAllocs = 0; ///< Fresh-segment requests (fault ordinals).

  StackSegment *Seg = nullptr;
  uint32_t Start = 0;
  uint32_t Cap = 0;
  Value Link;        ///< Continuation below the current segment.
  Continuation *Halt = nullptr;
  Value CurrentFlag; ///< Shared promotion flag cell (SharedFlag mode).

  std::vector<StackSegment *> Cache;
};

} // namespace osc

#endif // OSC_CORE_CONTROLSTACK_H
