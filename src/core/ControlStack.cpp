#include "core/ControlStack.h"

#include "support/Diag.h"

#include <algorithm>
#include <cstring>

using namespace osc;

ControlStack::ControlStack(Heap &H, Stats &S, const Config &C)
    : H(H), S(S), Cfg(C) {
  H.addRootProvider(this);
  reset();
}

ControlStack::~ControlStack() { H.removeRootProvider(this); }

void ControlStack::reset() {
  // The segment cache deliberately survives resets (it is a free list; the
  // collector clears it at every GC anyway).
  if (Seg)
    discardCurrentWindow(nullptr);
  Seg = nullptr; // Keep tracing sane while we allocate below.
  Link = Value();
  Halt = H.allocContinuation(); // Defaults are exactly the halt sentinel.
  Link = Value::object(Halt);
  CurrentFlag = Cfg.Promotion == PromotionStrategy::SharedFlag
                    ? Value::object(H.allocCell(Value::falseV()))
                    : Value::falseV();
  Seg = newSegment(Cfg.InitialSegmentWords);
  Start = 0;
  Cap = Seg->Capacity;
  Fp = 0;
  Top = 0;
}

void ControlStack::plantBaseFrame() {
  Value *Sl = slots();
  Sl[FrameRetCode] = Value::underflowMarker();
  Sl[FrameRetPc] = Value::fixnum(0);
  Fp = 0;
  Top = FrameHeaderWords;
}

// --- Segments and the cache (§3.2) ------------------------------------------

StackSegment *ControlStack::newSegment(uint32_t MinWords) {
  if (Cfg.SegmentCacheEnabled) {
    for (size_t I = 0; I != Cache.size(); ++I) {
      if (Cache[I]->Capacity >= MinWords) {
        StackSegment *Hit = Cache[I];
        Cache[I] = Cache.back();
        Cache.pop_back();
        S.SegmentCacheHits += 1;
        Hit->Shared = false;
        return Hit;
      }
    }
  }
  SegmentAllocs += 1;
  if (Cfg.Faults.FailSegmentAlloc != 0 &&
      SegmentAllocs == Cfg.Faults.FailSegmentAlloc)
    throw SegmentAllocFault{SegmentAllocs, MinWords};
  S.SegmentsAllocated += 1;
  return H.allocSegment(MinWords);
}

void ControlStack::releaseSegment(StackSegment *Sg) {
  if (!Cfg.SegmentCacheEnabled)
    return;
  Cache.push_back(Sg);
  S.SegmentCacheReleases += 1;
}

void ControlStack::discardCurrentWindow(StackSegment *Keep) {
  if (Seg && Seg != Keep && !Seg->Shared && Start == 0 &&
      Cap == Seg->Capacity)
    releaseSegment(Seg);
}

// --- Promotion (§3.3) ---------------------------------------------------------

void ControlStack::promoteChain() {
  if (Cfg.Promotion == PromotionStrategy::SharedFlag) {
    // O(1): flip the flag every unpromoted one-shot in the chain shares.
    if (auto *FlagCell = dynObj<Cell>(CurrentFlag))
      if (!FlagCell->Val.isTrue()) {
        FlagCell->Val = Value::trueV();
        S.Promotions += 1;
        OSC_TRACE(Tr, TraceEvent::PromoteFlag);
      }
    CurrentFlag = Value::object(H.allocCell(Value::falseV()));
    return;
  }
  // Linear walk down the chain until the first multi-shot continuation;
  // everything below it was promoted when it was captured.
  Value Cur = Link;
  while (auto *K = dynObj<Continuation>(Cur)) {
    S.PromotionWalkSteps += 1;
    if (K->isHalt() || K->isShot() || K->Size == K->SegSize)
      break;
    K->SegSize = K->Size;
    S.Promotions += 1;
    OSC_TRACE(Tr, TraceEvent::Promote, static_cast<uint64_t>(K->Size));
    Cur = K->Link;
  }
}

// --- Capture (Fig. 2) ----------------------------------------------------------

Continuation *ControlStack::makeContinuation(uint32_t Boundary, Value RetCode,
                                             int64_t RetPc) {
  Continuation *K = H.allocContinuation();
  K->Seg = Value::object(Seg);
  K->Start = Start;
  K->Size = Boundary;
  K->SegSize = Boundary; // Callers adjust for one-shot captures.
  K->Link = Link;
  K->RetCode = RetCode;
  K->RetPc = RetPc;
  K->Flag = Value::falseV();
  K->ByValue = false;
  return K;
}

Value ControlStack::captureMultiShot(uint32_t Boundary, Value RetCode,
                                     int64_t RetPc) {
  // call/cc is obligated to promote every one-shot continuation in the
  // captured chain, including those created implicitly by overflow.
  promoteChain();
  if (Boundary == 0) {
    // Tail-position capture with an empty segment: the link *is* the
    // continuation; no sealing, preserving proper tail recursion.
    S.EmptyCaptures += 1;
    OSC_TRACE(Tr, TraceEvent::CaptureEmpty);
    return Link;
  }
  Continuation *K = makeContinuation(Boundary, RetCode, RetPc);
  if (Cfg.Promotion == PromotionStrategy::SharedFlag)
    K->Flag = CurrentFlag; // Restored as the era flag if K is reinstated.
  Seg->Shared = true;      // K and the shortened current window share it.
  Start += Boundary;
  Cap -= Boundary;
  Link = Value::object(K);
  S.MultiShotCaptures += 1;
  OSC_TRACE(Tr, TraceEvent::CaptureMulti, Boundary);
  return Value::object(K);
}

Value ControlStack::captureOneShot(uint32_t Boundary, Value RetCode,
                                   int64_t RetPc) {
  if (Boundary == 0) {
    S.EmptyCaptures += 1;
    OSC_TRACE(Tr, TraceEvent::CaptureEmpty);
    return Link;
  }
  Continuation *K = makeContinuation(Boundary, RetCode, RetPc);
  if (Cfg.Promotion == PromotionStrategy::SharedFlag)
    K->Flag = CurrentFlag;

  uint32_t SD = Cfg.SealDisplacementWords;
  if (SD > 0 && Boundary + SD < Cap) {
    // §3.4: seal a bounded distance above the occupied portion and keep
    // using the remainder of this segment, so the dormant one-shot pins at
    // most SD unoccupied words.
    K->SegSize = Boundary + SD;
    Seg->Shared = true; // K's view and the remainder share the buffer.
    Start += Boundary + SD;
    Cap -= Boundary + SD;
    OSC_TRACE(Tr, TraceEvent::Seal, Boundary, SD);
  } else {
    // Fig. 2: encapsulate the entire segment; take a fresh one (usually
    // from the cache) as the current segment.
    K->SegSize = Cap;
    Seg = newSegment(Cfg.SegmentWords);
    Start = 0;
    Cap = Seg->Capacity;
  }
  Link = Value::object(K);
  S.OneShotCaptures += 1;
  OSC_TRACE(Tr, TraceEvent::CaptureOneShot, Boundary,
            static_cast<uint64_t>(K->SegSize));
  return Value::object(K);
}

void ControlStack::beginBaseFrame(uint32_t Need) {
  if (Cap < Need) {
    // Allocate before discarding so an injected allocation failure cannot
    // leave the still-current buffer in the cache.  The released buffer can
    // never satisfy this request (its capacity is Cap < Need <= MinWords),
    // so the order does not change cache behavior.
    StackSegment *Fresh = newSegment(std::max(Cfg.SegmentWords, Need));
    discardCurrentWindow(Fresh);
    Seg = Fresh;
    Start = 0;
    Cap = Seg->Capacity;
  }
  Fp = 0;
  Top = 0;
}

// --- Overflow (§3.2) ------------------------------------------------------------

CallFramePlan ControlStack::overflowRelocate(Value CurCode, int64_t RetPc,
                                             uint32_t Boundary,
                                             uint32_t PendBegin,
                                             uint32_t PendEnd,
                                             uint32_t CalleeNeed,
                                             bool HeaderLive) {
  S.Overflows += 1;
  OSC_TRACE(Tr, TraceEvent::Overflow, Boundary, PendEnd - Boundary);
  Value *Old = slots();

  Continuation *K = nullptr;
  if (Boundary > 0) {
    Value RC;
    int64_t RP;
    if (Boundary == PendBegin && !HeaderLive) {
      RC = CurCode;
      RP = RetPc;
    } else {
      RC = Old[Boundary + FrameRetCode];
      RP = Old[Boundary + FrameRetPc].asFixnum();
    }
    assert(!RC.isUnderflowMarker() &&
           "boundary 0 must be used for base-frame relocation");
    K = makeContinuation(Boundary, RC, RP);
    if (Cfg.Overflow == OverflowPolicy::MultiShot) {
      // Implicit call/cc: seal as multi-shot; must promote the chain below.
      promoteChain();
      Seg->Shared = true;
    } else {
      // Implicit call/1cc: encapsulate the whole window, zero copy-back.
      K->SegSize = Cap;
      if (Cfg.Promotion == PromotionStrategy::SharedFlag)
        K->Flag = CurrentFlag;
    }
  }

  uint32_t MoveWords = PendEnd - Boundary;
  StackSegment *OldSeg = Seg;
  StackSegment *Fresh =
      newSegment(std::max(Cfg.SegmentWords, MoveWords + CalleeNeed + 64));
  std::memcpy(Fresh->Slots, Old + Boundary, MoveWords * sizeof(Value));
  S.WordsCopied += MoveWords;

  if (K) {
    Fresh->Slots[FrameRetCode] = Value::underflowMarker();
    Fresh->Slots[FrameRetPc] = Value::fixnum(0);
    Link = Value::object(K);
  } else {
    // Boundary == 0: the entire window (including its base frame) moved;
    // the link is unchanged and the old buffer may be recycled.
    discardCurrentWindow(Fresh);
  }
  (void)OldSeg;

  Seg = Fresh;
  Start = 0;
  Cap = Fresh->Capacity;
  uint32_t NewFp = PendBegin - Boundary;
  return {NewFp, /*BaseFrame=*/K != nullptr && Boundary == PendBegin &&
                     !HeaderLive};
}

CallFramePlan ControlStack::prepareCall(Value CurCode, int64_t RetPc,
                                        uint32_t D, uint32_t NArgs,
                                        uint32_t CalleeNeed) {
  uint32_t NewFp = Fp + D;
  uint32_t Need = std::max(CalleeNeed, FrameHeaderWords + NArgs);
  if (NewFp + Need <= Cap)
    return {NewFp, false};

  uint32_t Boundary = NewFp;
  if (Cfg.Overflow == OverflowPolicy::OneShot &&
      Cfg.OverflowCopyUpFrames > 0) {
    // Copy up to OverflowCopyUpFrames completed frames for hysteresis: an
    // immediate return then runs within the fresh segment instead of
    // bouncing straight back into the (full) encapsulated one.
    const Value *Sl = slots();
    uint32_t F = Fp;
    for (uint32_t I = 1; I < Cfg.OverflowCopyUpFrames && !isBaseFrame(Sl, F);
         ++I)
      F = previousFrame(Sl, F);
    Boundary = isBaseFrame(Sl, F) ? 0 : F;
  }
  return overflowRelocate(CurCode, RetPc, Boundary, NewFp,
                          NewFp + FrameHeaderWords + NArgs, Need,
                          /*HeaderLive=*/false);
}

CallFramePlan ControlStack::prepareTailCall(uint32_t NArgs,
                                            uint32_t CalleeNeed) {
  uint32_t Need = std::max(CalleeNeed, FrameHeaderWords + NArgs);
  if (Fp + Need <= Cap)
    return {Fp, false};

  uint32_t Boundary = Fp;
  const Value *Sl = slots();
  if (isBaseFrame(Sl, Fp)) {
    Boundary = 0; // The reused frame is the base frame: move everything.
  } else if (Cfg.Overflow == OverflowPolicy::OneShot &&
             Cfg.OverflowCopyUpFrames > 0) {
    uint32_t F = Fp;
    for (uint32_t I = 0; I < Cfg.OverflowCopyUpFrames && !isBaseFrame(Sl, F);
         ++I)
      F = previousFrame(Sl, F);
    Boundary = isBaseFrame(Sl, F) ? 0 : F;
  }
  return overflowRelocate(Value(), 0, Boundary, Fp,
                          Fp + FrameHeaderWords + NArgs, Need,
                          /*HeaderLive=*/true);
}

// --- Invocation (Figs. 3 and 4) ---------------------------------------------------

void ControlStack::splitForCopyBound(Continuation *K) {
  if (K->Size <= static_cast<int64_t>(Cfg.CopyBoundWords))
    return;
  Value *Sl = K->slots();
  auto *TopCode = castObj<Code>(K->RetCode);
  int64_t TopFrame = K->Size - TopCode->frameSizeAt(K->RetPc);
  if (TopFrame <= 0)
    return; // A single frame is the minimum reinstatement unit.

  // Find the lowest frame base T with Size - T <= bound: copy as much as
  // possible without exceeding the bound (splitting has overhead, §3.2).
  int64_t T = TopFrame;
  while (!isBaseFrame(Sl, static_cast<uint32_t>(T))) {
    int64_t Prev = previousFrame(Sl, static_cast<uint32_t>(T));
    if (K->Size - Prev > static_cast<int64_t>(Cfg.CopyBoundWords))
      break;
    T = Prev;
  }
  if (T <= 0 || isBaseFrame(Sl, static_cast<uint32_t>(T)))
    return;

  // The bottom piece is a zero-copy view of the same buffer.
  Continuation *K2 = H.allocContinuation();
  K2->Seg = K->Seg;
  K2->Start = K->Start;
  K2->Size = K2->SegSize = T;
  K2->Link = K->Link;
  K2->RetCode = Sl[T + FrameRetCode];
  K2->RetPc = Sl[T + FrameRetPc].asFixnum();
  K2->Flag = K->Flag;

  // The split frame becomes the base frame of the top piece.  Views of a
  // buffer are pairwise disjoint, so this mutation is invisible elsewhere.
  Sl[T + FrameRetCode] = Value::underflowMarker();
  Sl[T + FrameRetPc] = Value::fixnum(0);
  K->Start += static_cast<uint32_t>(T);
  K->Size -= T;
  K->SegSize = K->Size;
  K->Link = Value::object(K2);
  S.Splits += 1;
  OSC_TRACE(Tr, TraceEvent::Split, static_cast<uint64_t>(K2->Size),
            static_cast<uint64_t>(K->Size));
}

ResumePoint ControlStack::resumeInto(Continuation *K) {
  auto *C = castObj<Code>(K->RetCode);
  uint32_t D = C->frameSizeAt(K->RetPc);
  assert(D <= K->Size && "resume frame size exceeds sealed size");
  ResumePoint RP;
  RP.Code = K->RetCode;
  RP.Pc = K->RetPc;
  RP.Fp = static_cast<uint32_t>(K->Size) - D;
  RP.Top = static_cast<uint32_t>(K->Size);
  RP.Halted = false;
  return RP;
}

ResumePoint ControlStack::invoke(Continuation *K) {
  assert(!K->isShot() && "invoking a shot continuation");
  assert(!K->isHalt() && "the halt continuation is handled by the VM");

  bool MultiShot = K->Size == K->SegSize;
  if (!MultiShot && isObj<Cell>(K->Flag) &&
      castObj<Cell>(K->Flag)->Val.isTrue()) {
    // Shared-flag promoted: normalize lazily and treat as multi-shot.
    K->SegSize = K->Size;
    MultiShot = true;
  }

  ResumePoint RP = resumeInto(K);

  if (MultiShot) {
    S.MultiShotInvokes += 1;
    splitForCopyBound(K);
    RP = resumeInto(K); // Splitting may have re-based K.
    if (K->Size > static_cast<int64_t>(Cap)) {
      // Allocate before discarding (see beginBaseFrame).  The released
      // buffer has capacity Cap < K->Size + 64 <= MinWords, so it could
      // never have been the cache hit; behavior is unchanged.
      StackSegment *Fresh =
          newSegment(std::max<uint32_t>(Cfg.SegmentWords, K->Size + 64));
      discardCurrentWindow(Fresh);
      Seg = Fresh;
      Start = 0;
      Cap = Seg->Capacity;
    }
    // Fig. 3: overwrite the current segment with the saved one.
    std::memcpy(slots(), K->slots(), K->Size * sizeof(Value));
    S.WordsCopied += K->Size;
    Link = K->Link;
    OSC_TRACE(Tr, TraceEvent::InvokeMulti, static_cast<uint64_t>(K->Size));
  } else {
    // Fig. 4: discard the current segment and return to the saved one.
    S.OneShotInvokes += 1;
    OSC_TRACE(Tr, TraceEvent::InvokeOneShot,
              static_cast<uint64_t>(K->SegSize));
    discardCurrentWindow(K->segment());
    Seg = K->segment();
    Start = K->Start;
    Cap = static_cast<uint32_t>(K->SegSize);
    Link = K->Link;
    // Mark shot so subsequent invocations are detected and prevented.
    K->Size = -1;
    K->SegSize = -1;
  }

  if (Cfg.Promotion == PromotionStrategy::SharedFlag &&
      isObj<Cell>(K->Flag))
    CurrentFlag = K->Flag;

  Fp = RP.Fp;
  Top = RP.Top;
  return RP;
}

Continuation *ControlStack::cloneShared(Continuation *K) {
  assert(!K->isShot() && !K->isHalt() && "cloning a dead continuation");
  uint32_t Words = static_cast<uint32_t>(K->Size);
  // Allocate the header first: allocSegment zero-fills, so a GC between the
  // two allocations (there is none today — collections run only at VM
  // safepoints — but the order costs nothing) would see a consistent pair.
  Continuation *C = H.allocContinuation();
  StackSegment *Fresh = newSegment(Words + 1); // +1 keeps Size < SegSize.
  std::memcpy(Fresh->Slots, K->slots(), Words * sizeof(Value));
  S.WordsCopied += Words;
  S.SliceClonedWords += Words;
  C->Seg = Value::object(Fresh);
  C->Start = 0;
  C->Size = Words;
  C->SegSize = Fresh->Capacity; // Strictly > Size: an unpromoted one-shot.
  C->Link = K->Link;
  C->RetCode = K->RetCode;
  C->RetPc = K->RetPc;
  C->Flag = Value::falseV(); // Exclusively owned: no shared promotion flag.
  C->ByValue = false;        // The clone has no first-class alias.
  return C;
}

ResumePoint ControlStack::underflow() {
  S.Underflows += 1;
  OSC_TRACE(Tr, TraceEvent::Underflow);
  auto *K = castObj<Continuation>(Link);
  ResumePoint RP;
  if (K->isHalt()) {
    RP.Halted = true;
    RP.Code = Value();
    RP.Pc = 0;
    RP.Fp = RP.Top = 0;
    return RP;
  }
  if (K->isShot())
    oscFatal("underflow into a shot one-shot continuation "
             "(checked by the VM before reaching here)");
  return invoke(K);
}

void ControlStack::growWindow(uint32_t NeedCap) {
  if (NeedCap <= Cap)
    return;
  StackSegment *Fresh = newSegment(std::max(Cfg.SegmentWords, NeedCap + 64));
  std::memcpy(Fresh->Slots, slots(), Top * sizeof(Value));
  S.WordsCopied += Top;
  discardCurrentWindow(Fresh);
  Seg = Fresh;
  Start = 0;
  Cap = Fresh->Capacity;
}

// --- Introspection -------------------------------------------------------------

uint64_t ControlStack::residentSegmentWords() const {
  std::vector<const StackSegment *> Seen;
  uint64_t Words = 0;
  auto Count = [&](const StackSegment *Sg) {
    if (!Sg || std::find(Seen.begin(), Seen.end(), Sg) != Seen.end())
      return;
    Seen.push_back(Sg);
    Words += Sg->Capacity;
  };
  Count(Seg);
  Value Cur = Link;
  while (auto *K = dynObj<Continuation>(Cur)) {
    if (K->Seg.isObject())
      Count(castObj<StackSegment>(K->Seg));
    Cur = K->Link;
  }
  return Words;
}

uint32_t ControlStack::chainLength() const {
  uint32_t N = 0;
  Value Cur = Link;
  while (auto *K = dynObj<Continuation>(Cur)) {
    ++N;
    if (K->isHalt())
      break;
    Cur = K->Link;
  }
  return N;
}

// --- GC integration -------------------------------------------------------------

void ControlStack::traceRoots(GCVisitor &V) {
  if (Seg) {
    V.visit(Value::object(Seg));
    V.visitRange(slots(), Top);
  }
  V.visit(Link);
  V.visit(CurrentFlag);
  if (Halt)
    V.visit(Value::object(Halt));
}

void ControlStack::willCollect() {
  // §3.2: the storage manager discards cached stack segments.
  if (!Cache.empty())
    OSC_TRACE(Tr, TraceEvent::CacheDrop, Cache.size());
  Cache.clear();
}
