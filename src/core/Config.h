//===----------------------------------------------------------------------===//
///
/// \file
/// Tunables for the segmented-stack control representation.
///
/// Every design choice the paper discusses is a knob here so the benchmark
/// harness can ablate them: copy bound (Fig. 3), overflow policy with
/// copy-up hysteresis (§3.2), promotion strategy (§3.3), seal displacement
/// (§3.4) and the segment cache (§3.2).
///
//===----------------------------------------------------------------------===//

#ifndef OSC_CORE_CONFIG_H
#define OSC_CORE_CONFIG_H

#include "support/Fault.h"

#include <cstdint>

namespace osc {

/// How a stack-segment overflow is handled (§3.2).
enum class OverflowPolicy : uint8_t {
  /// Overflow is an implicit call/cc: the occupied portion is sealed into a
  /// multi-shot continuation and a fresh segment is allocated.  Returning
  /// through the seal copies frames back (bounded by the copy bound).
  MultiShot,
  /// Overflow is an implicit call/1cc: the whole segment is encapsulated in
  /// a one-shot continuation, with the top OverflowCopyUpFrames frames
  /// copied into the new segment for hysteresis.  Returning through the
  /// seal reinstates the old segment with zero copying.
  OneShot,
};

/// How one-shot continuations are promoted when a multi-shot continuation
/// captures them (§3.3).
enum class PromotionStrategy : uint8_t {
  /// Walk the chain, promoting each one-shot until a multi-shot is found.
  /// Amortized fine (each one-shot promoted at most once) but individual
  /// call/cc operations have no hard bound.
  Linear,
  /// The paper's proposed O(1) scheme: all one-shots in a chain share a
  /// boxed flag; setting it promotes them all simultaneously.
  SharedFlag,
};

struct Config {
  /// Default stack segment size in slots (the paper's default stack is
  /// 16KB; with 8-byte slots that is 2048 words).
  uint32_t SegmentWords = 2048;
  /// The initial segment is made large to reduce overflow frequency for
  /// deeply recursive programs and programs creating many continuations.
  uint32_t InitialSegmentWords = 16384;
  /// Upper bound on the words copied by one multi-shot reinstatement;
  /// larger saved segments are split first (Fig. 3).
  uint32_t CopyBoundWords = 512;
  OverflowPolicy Overflow = OverflowPolicy::OneShot;
  /// Frames copied into the fresh segment on one-shot overflow so that an
  /// immediate return does not bounce straight back into another overflow.
  uint32_t OverflowCopyUpFrames = 8;
  PromotionStrategy Promotion = PromotionStrategy::Linear;
  /// When nonzero, call/1cc seals the current segment this many slots above
  /// the occupied portion and keeps using the remainder, bounding the free
  /// space a dormant one-shot continuation pins (§3.4).  Zero disables.
  uint32_t SealDisplacementWords = 0;
  /// The stack-segment free-list cache (§3.2).  Disabling it makes
  /// call/1cc-heavy programs "unacceptably slow" per the paper; the
  /// ablation benchmark quantifies that.
  bool SegmentCacheEnabled = true;
  /// GC trigger: bytes allocated since the last collection.
  uint64_t GcThresholdBytes = 8u << 20;
  /// How long the scheduler waits in one poll(2) call when every runnable
  /// thread is parked on I/O before declaring the run wedged.  External
  /// peers (loopback clients) are real wall-clock actors, so unlike
  /// channel-only deadlock this cannot be decided structurally.
  int IoPollTimeoutMs = 10000;
  /// Wall milliseconds per *virtual poll tick*, the deadline wheel's clock.
  /// Deadlines are stored in ticks (ms / PollTickMs, min 1) and the tick
  /// counter advances once per reactor poll batch, so traces that include
  /// timeouts stay deterministic: the tick at which a deadline fires is a
  /// function of the poll sequence, never of wall time.
  int PollTickMs = 5;
  /// Hard cap in bytes on a port's buffered-but-unsent output.  A client
  /// that stops reading cannot pin unbounded memory: once the cap would be
  /// exceeded the connection is dropped (io-drop trace, ConnsReaped).
  /// Zero disables the cap.
  uint32_t MaxOutputBufferBytes = 1u << 20;
  /// When false, the scheduler's context-switch captures use multi-shot
  /// continuations (capture is still cheap; every *reinstatement* copies
  /// the suspended stack back word by word).  This is the call/cc baseline
  /// column in bench_serve — the paper's Figure 5 comparison applied to
  /// I/O parking.  Leave true for the real system.
  bool SchedOneShotSwitch = true;
  /// When true (and the compiler supports computed goto) the VM dispatch
  /// loop is token-threaded: one indirect branch per handler instead of
  /// one shared switch branch.  Semantically invisible — the differential
  /// oracle runs both modes byte-identically — so leave true except when
  /// ablating dispatch cost (bench_dispatch's switch columns).
  bool ThreadedDispatch = true;
  /// Bitmask of peephole fusion rules (FuseRule in compiler/Bytecode.h).
  /// Each enabled bit lets the compiler fuse one high-frequency opcode
  /// pair into a superinstruction.  The emitted bytecode is a function of
  /// this mask; execution semantics never are.
  uint32_t Superinstructions = 0xfffu; // FuseAll
  /// Monomorphic inline caches for global references (per-site resolved
  /// cell, invalidated by a generation counter on any global definition)
  /// and closure-call sites (last callee + precomputed frame need,
  /// invalidated by GC).  Toggles runtime behavior only: cache-index
  /// operands are always present in the bytecode.
  bool InlineCaches = true;
  /// When false, delimited capture (shift) uses multi-shot captures and the
  /// slice cut deep-clones every chain member instead of relinking one-shot
  /// views in place — the copying shim bench_control compares against to
  /// assert the zero-copy steady state.  Leave true for the real system.
  bool DelimOneShot = true;
  /// Capacity (in records) of the VM's event tracer (support/Trace.h).
  /// The buffer is allocated once at VM construction; recording is off
  /// until trace-start! / Trace::start.
  uint32_t TraceBufferEvents = 1u << 16;
  /// Deterministic fault-injection schedule (support/Fault.h), honored by
  /// Heap (forced GCs), ControlStack (failed segment allocations) and the
  /// VM (forced timer expiries).  Disarmed by default.
  FaultPlan Faults;
};

} // namespace osc

#endif // OSC_CORE_CONFIG_H
