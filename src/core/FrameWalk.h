//===----------------------------------------------------------------------===//
///
/// \file
/// Walking frames within a stack segment.
///
/// There are no dynamic links on the stack (§3.1).  A frame begins with its
/// return address — a code object and a pc — and the *frame-size word*
/// embedded in the code stream immediately before the return point gives
/// the extent of the frame below it.  Walking from a frame to its
/// predecessor is therefore: read the return address at the frame base,
/// fetch Code::frameSizeAt(pc), and subtract.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_CORE_FRAMEWALK_H
#define OSC_CORE_FRAMEWALK_H

#include "object/Objects.h"
#include "object/Value.h"

#include <cassert>
#include <cstdint>

namespace osc {

/// Byte-offset layout of a frame (Fig. 1, with the return address split
/// into two traceable words as explained in DESIGN.md).
enum FrameSlot : uint32_t {
  FrameRetCode = 0, ///< Code object, or the underflow marker at a base.
  FrameRetPc = 1,   ///< Fixnum pc within RetCode.
  FrameArgs = 2,    ///< First argument.
  /// In a *prompt stub frame* (the frame (reset tag thunk) builds under the
  /// thunk, whose return point is the VM's PromptPop stub code) the single
  /// argument slot holds the fixnum id of the PromptRecord the stub pops on
  /// the way out.  Same offset as FrameArgs; the alias names the intent.
  FramePromptId = FrameArgs,
};

/// Number of header words at the base of every frame.
constexpr uint32_t FrameHeaderWords = 2;

/// True if the frame at \p FrameOff is a segment base frame (its return
/// address was displaced by the underflow handler).
inline bool isBaseFrame(const Value *Slots, uint32_t FrameOff) {
  return Slots[FrameOff + FrameRetCode].isUnderflowMarker();
}

/// Returns the base offset of the frame preceding the one at \p FrameOff.
/// Pre: the frame at \p FrameOff is not a base frame.
inline uint32_t previousFrame(const Value *Slots, uint32_t FrameOff) {
  Value RetCode = Slots[FrameOff + FrameRetCode];
  assert(!RetCode.isUnderflowMarker() && "walked past a segment base frame");
  auto *C = castObj<Code>(RetCode);
  int64_t RetPc = Slots[FrameOff + FrameRetPc].asFixnum();
  uint32_t FrameSize = C->frameSizeAt(RetPc);
  assert(FrameSize <= FrameOff && "frame-size word inconsistent with stack");
  return FrameOff - FrameSize;
}

/// Walks down from the frame at \p FrameOff, at most \p MaxFrames steps,
/// stopping early at the segment base frame.  Returns the base offset of
/// the lowest frame visited.  MaxFrames == 0 returns \p FrameOff.
inline uint32_t walkDownFrames(const Value *Slots, uint32_t FrameOff,
                               uint32_t MaxFrames) {
  while (MaxFrames-- > 0 && !isBaseFrame(Slots, FrameOff))
    FrameOff = previousFrame(Slots, FrameOff);
  return FrameOff;
}

} // namespace osc

#endif // OSC_CORE_FRAMEWALK_H
