# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_vm_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_continuations[1]_include.cmake")
include("/root/repo/build/tests/test_oneshot[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_wind[1]_include.cmake")
include("/root/repo/build/tests/test_overflow[1]_include.cmake")
include("/root/repo/build/tests/test_sexp[1]_include.cmake")
include("/root/repo/build/tests/test_object[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_core_stack[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_interop[1]_include.cmake")
include("/root/repo/build/tests/test_values[1]_include.cmake")
include("/root/repo/build/tests/test_api[1]_include.cmake")
include("/root/repo/build/tests/test_errors[1]_include.cmake")
include("/root/repo/build/tests/test_prelude[1]_include.cmake")
include("/root/repo/build/tests/test_delimited[1]_include.cmake")
include("/root/repo/build/tests/test_r4rs[1]_include.cmake")
include("/root/repo/build/tests/test_threads[1]_include.cmake")
