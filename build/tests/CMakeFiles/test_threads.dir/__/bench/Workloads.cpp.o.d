tests/CMakeFiles/test_threads.dir/__/bench/Workloads.cpp.o: \
 /root/repo/bench/Workloads.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/Workloads.h
