
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_engines.cpp" "tests/CMakeFiles/test_engines.dir/test_engines.cpp.o" "gcc" "tests/CMakeFiles/test_engines.dir/test_engines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/osc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/osc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/osc_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/osc_object.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
