file(REMOVE_RECURSE
  "CMakeFiles/test_sexp.dir/test_sexp.cpp.o"
  "CMakeFiles/test_sexp.dir/test_sexp.cpp.o.d"
  "test_sexp"
  "test_sexp.pdb"
  "test_sexp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
