file(REMOVE_RECURSE
  "CMakeFiles/test_prelude.dir/test_prelude.cpp.o"
  "CMakeFiles/test_prelude.dir/test_prelude.cpp.o.d"
  "test_prelude"
  "test_prelude.pdb"
  "test_prelude[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prelude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
