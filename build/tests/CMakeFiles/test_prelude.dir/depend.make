# Empty dependencies file for test_prelude.
# This may be replaced when dependencies are built.
