file(REMOVE_RECURSE
  "CMakeFiles/test_r4rs.dir/test_r4rs.cpp.o"
  "CMakeFiles/test_r4rs.dir/test_r4rs.cpp.o.d"
  "test_r4rs"
  "test_r4rs.pdb"
  "test_r4rs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_r4rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
