# Empty compiler generated dependencies file for test_r4rs.
# This may be replaced when dependencies are built.
