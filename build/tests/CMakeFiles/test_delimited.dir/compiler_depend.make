# Empty compiler generated dependencies file for test_delimited.
# This may be replaced when dependencies are built.
