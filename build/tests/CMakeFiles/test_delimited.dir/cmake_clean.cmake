file(REMOVE_RECURSE
  "CMakeFiles/test_delimited.dir/test_delimited.cpp.o"
  "CMakeFiles/test_delimited.dir/test_delimited.cpp.o.d"
  "test_delimited"
  "test_delimited.pdb"
  "test_delimited[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_delimited.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
