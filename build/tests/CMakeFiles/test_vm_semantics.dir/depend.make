# Empty dependencies file for test_vm_semantics.
# This may be replaced when dependencies are built.
