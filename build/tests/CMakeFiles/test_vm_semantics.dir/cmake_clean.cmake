file(REMOVE_RECURSE
  "CMakeFiles/test_vm_semantics.dir/test_vm_semantics.cpp.o"
  "CMakeFiles/test_vm_semantics.dir/test_vm_semantics.cpp.o.d"
  "test_vm_semantics"
  "test_vm_semantics.pdb"
  "test_vm_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
