# Empty dependencies file for test_core_stack.
# This may be replaced when dependencies are built.
