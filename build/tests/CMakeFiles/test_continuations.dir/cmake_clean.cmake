file(REMOVE_RECURSE
  "CMakeFiles/test_continuations.dir/test_continuations.cpp.o"
  "CMakeFiles/test_continuations.dir/test_continuations.cpp.o.d"
  "test_continuations"
  "test_continuations.pdb"
  "test_continuations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_continuations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
