file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_wind.dir/test_dynamic_wind.cpp.o"
  "CMakeFiles/test_dynamic_wind.dir/test_dynamic_wind.cpp.o.d"
  "test_dynamic_wind"
  "test_dynamic_wind.pdb"
  "test_dynamic_wind[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_wind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
