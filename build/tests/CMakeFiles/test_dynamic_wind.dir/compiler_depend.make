# Empty compiler generated dependencies file for test_dynamic_wind.
# This may be replaced when dependencies are built.
