file(REMOVE_RECURSE
  "CMakeFiles/osc_run.dir/osc_run.cpp.o"
  "CMakeFiles/osc_run.dir/osc_run.cpp.o.d"
  "osc_run"
  "osc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
