# Empty compiler generated dependencies file for osc_run.
# This may be replaced when dependencies are built.
