file(REMOVE_RECURSE
  "CMakeFiles/generators.dir/generators.cpp.o"
  "CMakeFiles/generators.dir/generators.cpp.o.d"
  "generators"
  "generators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
