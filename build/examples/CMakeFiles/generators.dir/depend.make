# Empty dependencies file for generators.
# This may be replaced when dependencies are built.
