file(REMOVE_RECURSE
  "CMakeFiles/logic.dir/logic.cpp.o"
  "CMakeFiles/logic.dir/logic.cpp.o.d"
  "logic"
  "logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
