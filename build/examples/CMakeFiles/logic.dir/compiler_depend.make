# Empty compiler generated dependencies file for logic.
# This may be replaced when dependencies are built.
