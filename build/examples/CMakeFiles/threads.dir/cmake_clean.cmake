file(REMOVE_RECURSE
  "CMakeFiles/threads.dir/threads.cpp.o"
  "CMakeFiles/threads.dir/threads.cpp.o.d"
  "threads"
  "threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
