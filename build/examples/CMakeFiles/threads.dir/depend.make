# Empty dependencies file for threads.
# This may be replaced when dependencies are built.
