# Empty compiler generated dependencies file for backtracking.
# This may be replaced when dependencies are built.
