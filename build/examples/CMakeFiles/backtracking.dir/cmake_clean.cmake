file(REMOVE_RECURSE
  "CMakeFiles/backtracking.dir/backtracking.cpp.o"
  "CMakeFiles/backtracking.dir/backtracking.cpp.o.d"
  "backtracking"
  "backtracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
