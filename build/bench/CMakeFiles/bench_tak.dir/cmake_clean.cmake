file(REMOVE_RECURSE
  "CMakeFiles/bench_tak.dir/bench_tak.cpp.o"
  "CMakeFiles/bench_tak.dir/bench_tak.cpp.o.d"
  "bench_tak"
  "bench_tak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
