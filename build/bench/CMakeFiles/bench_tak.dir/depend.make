# Empty dependencies file for bench_tak.
# This may be replaced when dependencies are built.
