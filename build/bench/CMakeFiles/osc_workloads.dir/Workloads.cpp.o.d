bench/CMakeFiles/osc_workloads.dir/Workloads.cpp.o: \
 /root/repo/bench/Workloads.cpp /usr/include/stdc-predef.h \
 /root/repo/bench/Workloads.h
