# Empty compiler generated dependencies file for osc_workloads.
# This may be replaced when dependencies are built.
