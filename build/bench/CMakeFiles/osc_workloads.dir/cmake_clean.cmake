file(REMOVE_RECURSE
  "CMakeFiles/osc_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/osc_workloads.dir/Workloads.cpp.o.d"
  "libosc_workloads.a"
  "libosc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
