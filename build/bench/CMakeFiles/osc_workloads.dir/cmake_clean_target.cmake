file(REMOVE_RECURSE
  "libosc_workloads.a"
)
