file(REMOVE_RECURSE
  "CMakeFiles/bench_frame_overhead.dir/bench_frame_overhead.cpp.o"
  "CMakeFiles/bench_frame_overhead.dir/bench_frame_overhead.cpp.o.d"
  "bench_frame_overhead"
  "bench_frame_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frame_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
