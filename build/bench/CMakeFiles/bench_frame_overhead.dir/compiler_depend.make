# Empty compiler generated dependencies file for bench_frame_overhead.
# This may be replaced when dependencies are built.
