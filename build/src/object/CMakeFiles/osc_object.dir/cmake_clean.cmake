file(REMOVE_RECURSE
  "CMakeFiles/osc_object.dir/Heap.cpp.o"
  "CMakeFiles/osc_object.dir/Heap.cpp.o.d"
  "CMakeFiles/osc_object.dir/ListUtil.cpp.o"
  "CMakeFiles/osc_object.dir/ListUtil.cpp.o.d"
  "libosc_object.a"
  "libosc_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
