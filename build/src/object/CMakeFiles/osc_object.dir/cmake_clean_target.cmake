file(REMOVE_RECURSE
  "libosc_object.a"
)
