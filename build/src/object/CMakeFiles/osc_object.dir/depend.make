# Empty dependencies file for osc_object.
# This may be replaced when dependencies are built.
