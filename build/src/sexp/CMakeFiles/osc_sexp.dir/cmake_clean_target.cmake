file(REMOVE_RECURSE
  "libosc_sexp.a"
)
