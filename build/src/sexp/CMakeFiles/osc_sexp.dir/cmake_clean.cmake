file(REMOVE_RECURSE
  "CMakeFiles/osc_sexp.dir/Printer.cpp.o"
  "CMakeFiles/osc_sexp.dir/Printer.cpp.o.d"
  "CMakeFiles/osc_sexp.dir/Reader.cpp.o"
  "CMakeFiles/osc_sexp.dir/Reader.cpp.o.d"
  "libosc_sexp.a"
  "libosc_sexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_sexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
