# Empty dependencies file for osc_sexp.
# This may be replaced when dependencies are built.
