file(REMOVE_RECURSE
  "CMakeFiles/osc_core.dir/ControlStack.cpp.o"
  "CMakeFiles/osc_core.dir/ControlStack.cpp.o.d"
  "libosc_core.a"
  "libosc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
