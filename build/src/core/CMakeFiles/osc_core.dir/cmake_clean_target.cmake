file(REMOVE_RECURSE
  "libosc_core.a"
)
