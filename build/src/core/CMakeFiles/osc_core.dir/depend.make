# Empty dependencies file for osc_core.
# This may be replaced when dependencies are built.
