file(REMOVE_RECURSE
  "CMakeFiles/osc_vm.dir/Interp.cpp.o"
  "CMakeFiles/osc_vm.dir/Interp.cpp.o.d"
  "CMakeFiles/osc_vm.dir/Prelude.cpp.o"
  "CMakeFiles/osc_vm.dir/Prelude.cpp.o.d"
  "CMakeFiles/osc_vm.dir/Primitives.cpp.o"
  "CMakeFiles/osc_vm.dir/Primitives.cpp.o.d"
  "CMakeFiles/osc_vm.dir/VM.cpp.o"
  "CMakeFiles/osc_vm.dir/VM.cpp.o.d"
  "libosc_vm.a"
  "libosc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
