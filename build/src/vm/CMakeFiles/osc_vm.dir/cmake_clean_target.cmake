file(REMOVE_RECURSE
  "libosc_vm.a"
)
