# Empty dependencies file for osc_vm.
# This may be replaced when dependencies are built.
