file(REMOVE_RECURSE
  "libosc_support.a"
)
