# Empty dependencies file for osc_support.
# This may be replaced when dependencies are built.
