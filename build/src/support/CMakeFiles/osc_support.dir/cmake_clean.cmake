file(REMOVE_RECURSE
  "CMakeFiles/osc_support.dir/Diag.cpp.o"
  "CMakeFiles/osc_support.dir/Diag.cpp.o.d"
  "CMakeFiles/osc_support.dir/Stats.cpp.o"
  "CMakeFiles/osc_support.dir/Stats.cpp.o.d"
  "libosc_support.a"
  "libosc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
