file(REMOVE_RECURSE
  "CMakeFiles/osc_compiler.dir/Bytecode.cpp.o"
  "CMakeFiles/osc_compiler.dir/Bytecode.cpp.o.d"
  "CMakeFiles/osc_compiler.dir/CodeGen.cpp.o"
  "CMakeFiles/osc_compiler.dir/CodeGen.cpp.o.d"
  "CMakeFiles/osc_compiler.dir/Expander.cpp.o"
  "CMakeFiles/osc_compiler.dir/Expander.cpp.o.d"
  "libosc_compiler.a"
  "libosc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
