
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/Bytecode.cpp" "src/compiler/CMakeFiles/osc_compiler.dir/Bytecode.cpp.o" "gcc" "src/compiler/CMakeFiles/osc_compiler.dir/Bytecode.cpp.o.d"
  "/root/repo/src/compiler/CodeGen.cpp" "src/compiler/CMakeFiles/osc_compiler.dir/CodeGen.cpp.o" "gcc" "src/compiler/CMakeFiles/osc_compiler.dir/CodeGen.cpp.o.d"
  "/root/repo/src/compiler/Expander.cpp" "src/compiler/CMakeFiles/osc_compiler.dir/Expander.cpp.o" "gcc" "src/compiler/CMakeFiles/osc_compiler.dir/Expander.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/osc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sexp/CMakeFiles/osc_sexp.dir/DependInfo.cmake"
  "/root/repo/build/src/object/CMakeFiles/osc_object.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/osc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
