file(REMOVE_RECURSE
  "libosc_compiler.a"
)
