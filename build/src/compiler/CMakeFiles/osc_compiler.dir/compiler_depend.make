# Empty compiler generated dependencies file for osc_compiler.
# This may be replaced when dependencies are built.
