//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E1 (§4, first paragraph): the continuation-intensive tak.
///
/// Paper: "we modified the call-intensive tak program so that each call
/// captures and invokes a continuation, either with call/cc or with
/// call/1cc.  The version using call/1cc is 13% faster than the version
/// using call/cc and allocates 23% less memory."
///
/// This binary measures tak(18,12,6) in three variants (plain, call/cc,
/// call/1cc) with wall time plus allocation and copy counters, then prints
/// the paper-vs-measured summary rows.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace osc;
using namespace osc::bench;

namespace {

struct VariantResult {
  double SecondsPerOp = 0;
  double BytesPerOp = 0;
  double WordsCopiedPerOp = 0;
};

void runTak(benchmark::State &State, const char *Call) {
  Interp I;
  mustEval(I, workloads::takVariants());
  uint64_t Ops = 0;
  CounterSnapshot Start = CounterSnapshot::take(I);
  for (auto _ : State) {
    Value V = mustEval(I, Call);
    benchmark::DoNotOptimize(V);
    ++Ops;
  }
  CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
  State.counters["bytes/op"] =
      benchmark::Counter(static_cast<double>(D.Bytes) / Ops);
  State.counters["words-copied/op"] =
      benchmark::Counter(static_cast<double>(D.WordsCopied) / Ops);
  State.counters["1cc-invokes/op"] =
      benchmark::Counter(static_cast<double>(D.OneShotInvokes) / Ops);
  State.counters["cc-invokes/op"] =
      benchmark::Counter(static_cast<double>(D.MultiShotInvokes) / Ops);
}

void BM_TakPlain(benchmark::State &State) {
  runTak(State, "(tak-plain 18 12 6)");
}
void BM_TakCallCC(benchmark::State &State) {
  runTak(State, "(tak-cc 18 12 6)");
}
void BM_TakCall1CC(benchmark::State &State) {
  runTak(State, "(tak-1cc 18 12 6)");
}
// Gabriel's ctak (continuations as escapes) for context: here every k2 is
// invoked exactly once too, so call/1cc applies; escapes discard frames
// rather than returning through a seal.
void BM_CtakCallCC(benchmark::State &State) {
  runTak(State, "(ctak 18 12 6)");
}
void BM_CtakCall1CC(benchmark::State &State) {
  runTak(State, "(ctak-1cc 18 12 6)");
}

BENCHMARK(BM_TakPlain)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TakCallCC)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TakCall1CC)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CtakCallCC)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CtakCall1CC)->Unit(benchmark::kMillisecond);

/// Re-measures the two continuation variants head-to-head with identical
/// iteration counts and prints the summary the paper reports.
void printSummary() {
  auto Measure = [](const char *Call) {
    Interp I;
    mustEval(I, workloads::takVariants());
    mustEval(I, Call); // Warm up.
    CounterSnapshot Start = CounterSnapshot::take(I);
    auto T0 = std::chrono::steady_clock::now();
    constexpr int Reps = 25;
    for (int R = 0; R != Reps; ++R)
      mustEval(I, Call);
    auto T1 = std::chrono::steady_clock::now();
    CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
    VariantResult V;
    V.SecondsPerOp = std::chrono::duration<double>(T1 - T0).count() / Reps;
    V.BytesPerOp = static_cast<double>(D.Bytes) / Reps;
    V.WordsCopiedPerOp = static_cast<double>(D.WordsCopied) / Reps;
    return V;
  };

  VariantResult CC = Measure("(tak-cc 18 12 6)");
  VariantResult OneCC = Measure("(tak-1cc 18 12 6)");

  double SpeedupPct = (CC.SecondsPerOp / OneCC.SecondsPerOp - 1.0) * 100.0;
  double AllocSavePct = (1.0 - OneCC.BytesPerOp / CC.BytesPerOp) * 100.0;

  std::printf("\n--- E1: tak(18,12,6), one continuation capture+invoke per "
              "call ---\n");
  std::printf("%-12s %14s %16s %18s\n", "variant", "time/run (ms)",
              "alloc/run (KB)", "words copied/run");
  std::printf("%-12s %14.2f %16.1f %18.0f\n", "call/cc",
              CC.SecondsPerOp * 1e3, CC.BytesPerOp / 1024.0,
              CC.WordsCopiedPerOp);
  std::printf("%-12s %14.2f %16.1f %18.0f\n", "call/1cc",
              OneCC.SecondsPerOp * 1e3, OneCC.BytesPerOp / 1024.0,
              OneCC.WordsCopiedPerOp);
  std::printf("call/1cc speedup over call/cc: %.1f%%   (paper: 13%%)\n",
              SpeedupPct);
  std::printf("call/1cc allocation reduction: %.1f%%   (paper: 23%%)\n",
              AllocSavePct);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printSummary();
  return 0;
}
