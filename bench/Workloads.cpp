#include "Workloads.h"

using namespace osc;

const char *workloads::threadSchedulerCommon() {
  return R"SCM(
;; Round-robin thread scheduler on a two-list FIFO queue.  The capture
;; operator %yield-capture is bound by the variant loaded before this file.

(define %tq-front '())
(define %tq-back '())
(define (%tq-push! t) (set! %tq-back (cons t %tq-back)))
(define (%tq-empty?) (and (null? %tq-front) (null? %tq-back)))
(define (%tq-pop!)
  (when (null? %tq-front)
    (set! %tq-front (reverse %tq-back))
    (set! %tq-back '()))
  (let ((t (car %tq-front)))
    (set! %tq-front (cdr %tq-front))
    t))

(define %fuel 0)
(define %interval 0)
(define %remaining 0)
(define %checksum 0)
(define %finish #f)

(define (%run-next)
  (set! %fuel %interval)
  ((%tq-pop!)))

;; Suspend the running thread: capture its continuation, queue the
;; resumption, and transfer to the next thread.
(define (%yield)
  (%yield-capture (lambda (k)
    (%tq-push! (lambda () (k #f)))
    (%run-next))))

;; fib instrumented with a decrement-per-call fuel counter, as in Figure 5:
;; a context switch every %interval procedure calls.
(define (%thread-fib n)
  (set! %fuel (- %fuel 1))
  (if (<= %fuel 0) (%yield) #f)
  (if (< n 2)
      n
      (+ (%thread-fib (- n 1)) (%thread-fib (- n 2)))))

(define (%thread-done r)
  (set! %checksum (+ %checksum r))
  (set! %remaining (- %remaining 1))
  (if (%tq-empty?)
      (%finish %checksum)
      (%run-next)))

;; Runs n threads, each computing fib(fib-n), switching every interval
;; calls.  Returns n * fib(fib-n) as a checksum.
(define (run-threads n fib-n interval)
  (set! %tq-front '())
  (set! %tq-back '())
  (set! %interval interval)
  (set! %remaining n)
  (set! %checksum 0)
  (%yield-capture (lambda (finish)
    (set! %finish finish)
    (let loop ((i 0))
      (if (< i n)
          (begin
            (%tq-push! (lambda () (%thread-done (%thread-fib fib-n))))
            (loop (+ i 1)))
          (%run-next))))))
)SCM";
}

const char *workloads::threadsCallCC() {
  return "(define %yield-capture call/cc)";
}

const char *workloads::threadsCall1CC() {
  return "(define %yield-capture call/1cc)";
}

const char *workloads::threadsCPS() {
  return R"SCM(
;; The CPS thread system: the continuation of every fib step is an explicit
;; heap-allocated closure, simulating a heap-based representation of
;; control.  Scheduling is the same FIFO queue and the same fuel counter.

(define %ctq-front '())
(define %ctq-back '())
(define (%ctq-push! t) (set! %ctq-back (cons t %ctq-back)))
(define (%ctq-empty?) (and (null? %ctq-front) (null? %ctq-back)))
(define (%ctq-pop!)
  (when (null? %ctq-front)
    (set! %ctq-front (reverse %ctq-back))
    (set! %ctq-back '()))
  (let ((t (car %ctq-front)))
    (set! %ctq-front (cdr %ctq-front))
    t))

(define %cfuel 0)
(define %cinterval 0)
(define %cremaining 0)
(define %cchecksum 0)

(define (%crun-next)
  (set! %cfuel %cinterval)
  ((%ctq-pop!)))

(define (%fib-cps n k)
  (set! %cfuel (- %cfuel 1))
  (if (<= %cfuel 0)
      (begin
        (%ctq-push! (lambda () (%fib-cps-body n k)))
        (%crun-next))
      (%fib-cps-body n k)))

(define (%fib-cps-body n k)
  (if (< n 2)
      (k n)
      (%fib-cps (- n 1)
        (lambda (a)
          (%fib-cps (- n 2)
            (lambda (b) (k (+ a b))))))))

(define (run-threads-cps n fib-n interval)
  (set! %ctq-front '())
  (set! %ctq-back '())
  (set! %cinterval interval)
  (set! %cremaining n)
  (set! %cchecksum 0)
  (let loop ((i 0))
    (if (< i n)
        (begin
          (%ctq-push!
           (lambda ()
             (%fib-cps fib-n
               (lambda (r)
                 (set! %cchecksum (+ %cchecksum r))
                 (set! %cremaining (- %cremaining 1))
                 (if (zero? %cremaining)
                     %cchecksum
                     (%crun-next))))))
          (loop (+ i 1)))
        (%crun-next))))
)SCM";
}

const char *workloads::threadsEngines() {
  return R"SCM(
;; Preemptive round-robin threads on engines: the VM timer interrupts after
;; `interval` procedure calls and the expired computation is re-queued as a
;; new engine (a one-shot continuation under the hood).

(define %eq-front '())
(define %eq-back '())
(define (%eq-push! t) (set! %eq-back (cons t %eq-back)))
(define (%eq-pop!)
  (when (null? %eq-front)
    (set! %eq-front (reverse %eq-back))
    (set! %eq-back '()))
  (let ((t (car %eq-front)))
    (set! %eq-front (cdr %eq-front))
    t))

(define (%engine-fib n)
  (if (< n 2) n (+ (%engine-fib (- n 1)) (%engine-fib (- n 2)))))

(define (run-threads-engines n fib-n interval)
  (set! %eq-front '())
  (set! %eq-back '())
  (let spawn ((i 0))
    (when (< i n)
      (%eq-push! (make-engine (lambda () (%engine-fib fib-n))))
      (spawn (+ i 1))))
  (let ((total 0) (remaining n))
    (let drive ()
      (if (zero? remaining)
          total
          ((%eq-pop!) interval
           (lambda (left r)
             (set! total (+ total r))
             (set! remaining (- remaining 1))
             (drive))
           (lambda (e2)
             (%eq-push! e2)
             (drive)))))))
)SCM";
}

const char *workloads::takVariants() {
  return R"SCM(
;; §4: "we modified the call-intensive tak program so that each call
;; captures and invokes a continuation, either with call/cc or call/1cc".

(define (tak-plain x y z)
  (if (not (< y x))
      z
      (tak-plain (tak-plain (- x 1) y z)
                 (tak-plain (- y 1) z x)
                 (tak-plain (- z 1) x y))))

(define (tak-cc x y z)
  (call/cc
   (lambda (k)
     (k (if (not (< y x))
            z
            (tak-cc (tak-cc (- x 1) y z)
                    (tak-cc (- y 1) z x)
                    (tak-cc (- z 1) x y)))))))

(define (tak-1cc x y z)
  (call/1cc
   (lambda (k)
     (k (if (not (< y x))
            z
            (tak-1cc (tak-1cc (- x 1) y z)
                     (tak-1cc (- y 1) z x)
                     (tak-1cc (- z 1) x y)))))))

;; Gabriel's ctak: continuations used as pure escapes (captured at entry,
;; invoked to return).  Unlike tak-cc/tak-1cc above it escapes from inside
;; the recursion, so the k invocations discard pending frames.
(define (ctak x y z)
  (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (ctak-aux k
                (call/cc (lambda (k2) (ctak-aux k2 (- x 1) y z)))
                (call/cc (lambda (k2) (ctak-aux k2 (- y 1) z x)))
                (call/cc (lambda (k2) (ctak-aux k2 (- z 1) x y))))))

(define (ctak-1cc x y z)
  (call/1cc (lambda (k) (ctak-aux-1cc k x y z))))
(define (ctak-aux-1cc k x y z)
  (if (not (< y x))
      (k z)
      (ctak-aux-1cc k
        (call/1cc (lambda (k2) (ctak-aux-1cc k2 (- x 1) y z)))
        (call/1cc (lambda (k2) (ctak-aux-1cc k2 (- y 1) z x)))
        (call/1cc (lambda (k2) (ctak-aux-1cc k2 (- z 1) x y))))))
)SCM";
}

const char *workloads::deepRecursion() {
  return R"SCM(
;; §4: a program that repeatedly recurs deeply while doing very little work
;; between calls — the stack-overflow stress.

(define (deep n)
  (if (zero? n) 0 (+ 1 (deep (- n 1)))))

(define (deep-repeat reps n)
  (let loop ((r reps) (acc 0))
    (if (zero? r) acc (loop (- r 1) (+ acc (deep n))))))
)SCM";
}

const char *workloads::boyer() {
  return R"SCM(
;; Gabriel's Boyer benchmark, reduced rule set.  Deliberately written in
;; the original's closure-free direct style: the only closures created are
;; the top-level definitions themselves, so the steady state allocates no
;; closures at all (§5).

(define *lemmas* '())   ;; alist: function symbol -> list of (equal lhs rhs)

(define (get-lemmas s)
  (let ((e (assq s *lemmas*)))
    (if e (cdr e) '())))

(define (add-lemma! term)
  (let ((f (car (cadr term))))
    (let ((e (assq f *lemmas*)))
      (if e
          (set-cdr! e (cons term (cdr e)))
          (set! *lemmas* (cons (list f term) *lemmas*))))))

(define (add-lemmas! terms)
  (for-each add-lemma! terms))

;; One-way unification: pattern variables are the non-pair atoms of term2.
(define (one-way-unify term1 term2 subst)
  (cond ((not (pair? term2))
         (let ((b (assq term2 subst)))
           (if b
               (if (equal? term1 (cdr b)) subst #f)
               (cons (cons term2 term1) subst))))
        ((not (pair? term1)) #f)
        ((eq? (car term1) (car term2))
         (one-way-unify-lst (cdr term1) (cdr term2) subst))
        (else #f)))

(define (one-way-unify-lst l1 l2 subst)
  (cond ((and (null? l1) (null? l2)) subst)
        ((or (null? l1) (null? l2)) #f)
        (else
         (let ((s (one-way-unify (car l1) (car l2) subst)))
           (if s (one-way-unify-lst (cdr l1) (cdr l2) s) #f)))))

(define (apply-subst subst term)
  (if (pair? term)
      (cons (car term) (apply-subst-lst subst (cdr term)))
      (let ((b (assq term subst)))
        (if b (cdr b) term))))

(define (apply-subst-lst subst l)
  (if (null? l)
      '()
      (cons (apply-subst subst (car l)) (apply-subst-lst subst (cdr l)))))

(define (rewrite term)
  (if (pair? term)
      (rewrite-with-lemmas (cons (car term) (rewrite-args (cdr term)))
                           (get-lemmas (car term)))
      term))

(define (rewrite-args l)
  (if (null? l) '() (cons (rewrite (car l)) (rewrite-args (cdr l)))))

(define (rewrite-with-lemmas term lemmas)
  (if (null? lemmas)
      term
      (let ((s (one-way-unify term (cadr (car lemmas)) '())))
        (if s
            (rewrite (apply-subst s (caddr (car lemmas))))
            (rewrite-with-lemmas term (cdr lemmas))))))

(define (truep x lst) (if (equal? x '(t)) #t (if (member x lst) #t #f)))
(define (falsep x lst) (if (equal? x '(f)) #t (if (member x lst) #t #f)))

(define (tautologyp x true-lst false-lst)
  (cond ((truep x true-lst) #t)
        ((falsep x false-lst) #f)
        ((not (pair? x)) #f)
        ((eq? (car x) 'if)
         (cond ((truep (cadr x) true-lst)
                (tautologyp (caddr x) true-lst false-lst))
               ((falsep (cadr x) false-lst)
                (tautologyp (cadddr x) true-lst false-lst))
               (else
                (and (tautologyp (caddr x)
                                 (cons (cadr x) true-lst) false-lst)
                     (tautologyp (cadddr x)
                                 true-lst (cons (cadr x) false-lst))))))
        (else #f)))

(define (tautp x) (tautologyp (rewrite x) '() '()))

(define (boyer-setup!)
  (set! *lemmas* '())
  (add-lemmas!
   '((equal (if (if a b c) d e) (if a (if b d e) (if c d e)))
     (equal (and p q) (if p (if q (t) (f)) (f)))
     (equal (or p q) (if p (t) (if q (t) (f))))
     (equal (not p) (if p (f) (t)))
     (equal (implies p q) (if p (if q (t) (f)) (t)))
     (equal (iff x y) (and (implies x y) (implies y x)))
     (equal (plus (plus x y) z) (plus x (plus y z)))
     (equal (equal (plus a b) (zero)) (and (zerop a) (zerop b)))
     (equal (difference x x) (zero))
     (equal (equal (plus a b) (plus a c)) (equal b c))
     (equal (equal (zero) (difference x y)) (not (lessp y x)))
     (equal (equal x (difference x y)) (and (numberp x)
                                            (or (equal x (zero))
                                                (zerop y))))
     (equal (append (append x y) z) (append x (append y z)))
     (equal (reverse (append a b)) (append (reverse b) (reverse a)))
     (equal (times x (plus y z)) (plus (times x y) (times x z)))
     (equal (times (times x y) z) (times x (times y z)))
     (equal (equal (times x y) (zero)) (or (zerop x) (zerop y)))
     (equal (length (append a b)) (plus (length a) (length b)))
     (equal (remainder x x) (zero))
     (equal (remainder (times x y) x) (zero))
     (equal (lessp (remainder x y) y) (not (zerop y)))
     (equal (member x (append a b)) (or (member x a) (member x b)))
     (equal (member x (reverse y)) (member x y))
     (equal (zerop (plus a b)) (and (zerop a) (zerop b)))
     (equal (equal (append a b) (append a c)) (equal b c))
     (equal (meaning (plus-tree (append x y)) a)
            (plus (meaning (plus-tree x) a) (meaning (plus-tree y) a))))))

(define (boyer-run)
  (tautp
   (apply-subst
    '((x . (f (plus (plus a b) (plus c (zero)))))
      (y . (f (times (times a b) (plus c d))))
      (z . (f (reverse (append (append a b) (nil)))))
      (u . (equal (plus a b) (difference x y)))
      (w . (lessp (remainder a b) (member a (length b)))))
    '(implies (and (implies x y)
                   (and (implies y z)
                        (and (implies z u) (implies u w))))
              (implies x w)))))
)SCM";
}
