//===----------------------------------------------------------------------===//
///
/// \file
/// Scheme sources for the paper's evaluation workloads (§4), shared by the
/// benchmark harness and the integration tests.
///
/// The three thread systems mirror the paper's: one built on call/cc, one
/// on call/1cc, and one in continuation-passing style (simulating a
/// heap-based representation of control).  Each runs N threads computing
/// fib(F) with the simple doubly recursive algorithm, context-switching
/// every I procedure calls via a decrement-per-call fuel counter — the
/// instrumentation is identical across the three systems so only the
/// control representation differs.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_BENCH_WORKLOADS_H
#define OSC_BENCH_WORKLOADS_H

namespace osc::workloads {

/// Round-robin scheduler + instrumented fib on stack continuations.
/// Defines (run-threads n fib-n interval) returning the number of threads
/// completed; the capture operator is %yield-capture, bound by the two
/// variants below.
const char *threadSchedulerCommon();

/// Binds %yield-capture to call/cc (multi-shot transfers, Fig. 3 copying
/// on every resume).
const char *threadsCallCC();

/// Binds %yield-capture to call/1cc (one-shot transfers, Fig. 4 zero-copy
/// segment swaps).
const char *threadsCall1CC();

/// The CPS thread system: control lives in heap-allocated closures; defines
/// (run-threads-cps n fib-n interval).
const char *threadsCPS();

/// Extension: preemptive threads on engines (Dybvig & Hieb).  The VM timer
/// counts every procedure call, so "interval" is exactly the paper's
/// context-switch frequency; each preemption is a one-shot capture.
/// Defines (run-threads-engines n fib-n interval).
const char *threadsEngines();

/// §4 first experiment: tak where every call captures and invokes a
/// continuation.  Defines (tak-plain x y z), (tak-cc x y z) and
/// (tak-1cc x y z).
const char *takVariants();

/// §4 third experiment: repeated deep non-tail recursion exercising the
/// overflow machinery.  Defines (deep n) and (deep-repeat reps n).
const char *deepRecursion();

/// Gabriel's Boyer benchmark (reduced rule set): the rewrite-based
/// tautology checker §5 discusses — Appel & Shao report 5.75 closure
/// instructions per frame for it, while the stack representation allocates
/// no closures at all.  Defines (boyer-setup!) and (boyer-run), the latter
/// returning #t (the theorem proves).
const char *boyer();

} // namespace osc::workloads

#endif // OSC_BENCH_WORKLOADS_H
