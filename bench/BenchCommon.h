//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the benchmark binaries.
///
//===----------------------------------------------------------------------===//

#ifndef OSC_BENCH_BENCHCOMMON_H
#define OSC_BENCH_BENCHCOMMON_H

#include "support/Diag.h"
#include "osc.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace osc::bench {

/// Evaluates \p Src, aborting the benchmark on error (a benchmark that
/// silently measures an error path is worse than no benchmark).
inline Value mustEval(Interp &I, const std::string &Src) {
  Interp::Result R = I.eval(Src);
  if (!R.Ok)
    oscFatal(("benchmark workload failed: " + R.Error).c_str());
  return R.Val;
}

/// True when OSC_BENCH_FAST is set: trims the largest configurations so the
/// whole suite runs in seconds (shapes are preserved, absolute magnitudes
/// shrink).
inline bool fastMode() { return std::getenv("OSC_BENCH_FAST") != nullptr; }

/// Snapshot of the counters that matter for the paper's comparisons.
struct CounterSnapshot {
  uint64_t Bytes, WordsCopied, OneShotInvokes, MultiShotInvokes, Overflows,
      SegAllocs, CacheHits, Instructions, Calls, Closures;

  static CounterSnapshot take(const Interp &I) {
    Stats::Snapshot S = I.snapshot();
    return {S.BytesAllocated, S.WordsCopied,   S.OneShotInvokes,
            S.MultiShotInvokes, S.Overflows,   S.SegmentsAllocated,
            S.SegmentCacheHits, S.Instructions, S.ProcedureCalls,
            S.ClosuresAllocated};
  }
  CounterSnapshot delta(const CounterSnapshot &Later) const {
    return {Later.Bytes - Bytes,
            Later.WordsCopied - WordsCopied,
            Later.OneShotInvokes - OneShotInvokes,
            Later.MultiShotInvokes - MultiShotInvokes,
            Later.Overflows - Overflows,
            Later.SegAllocs - SegAllocs,
            Later.CacheHits - CacheHits,
            Later.Instructions - Instructions,
            Later.Calls - Calls,
            Later.Closures - Closures};
  }
};

} // namespace osc::bench

#endif // OSC_BENCH_BENCHCOMMON_H
