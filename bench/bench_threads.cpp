//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E2 (Figure 5) and E4 (the §5 crossover claim).
///
/// Paper, Figure 5: "the relative performance of CPS, call/cc, and call/1cc
/// versions of a thread system.  Each run involved 10, 100, or 1000 active
/// threads each computing the 20th Fibonacci number with the simple doubly
/// recursive algorithm.  Context switch frequency is shown varying from
/// once every procedure call through once every 512 procedure calls.
/// Times are shown in milliseconds."
///
/// Reported shapes: call/1cc threads are consistently faster than call/cc
/// threads (advantage shrinking at low switch frequencies); CPS is fastest
/// only for extremely rapid context switches (more often than once every
/// 4–8 procedure calls) and loses its advantage as the interval grows.
///
/// The harness prints one table per thread count — rows are switch
/// intervals, columns the three systems — followed by the measured
/// crossover points (§5: a simple heap-based implementation is superior
/// only if context switches occur more frequently than once every eight
/// procedure calls; about once every four for call/1cc).
///
/// OSC_BENCH_FAST=1 trims thread counts / fib size for quick smoke runs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace osc;
using namespace osc::bench;
using namespace osc::workloads;

namespace {

struct Sample {
  double Ms = 0;
  uint64_t WordsCopied = 0;
  uint64_t Switches = 0;
};

Sample runVariant(const char *Setup, const char *Runner, int Threads,
                  int FibN, int Interval) {
  Interp I;
  mustEval(I, std::string(Setup));
  std::string Call = "(" + std::string(Runner) + " " +
                     std::to_string(Threads) + " " + std::to_string(FibN) +
                     " " + std::to_string(Interval) + ")";
  CounterSnapshot Start = CounterSnapshot::take(I);
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, Call);
  auto T1 = std::chrono::steady_clock::now();
  CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
  Sample S;
  S.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  S.WordsCopied = D.WordsCopied;
  S.Switches = D.OneShotInvokes + D.MultiShotInvokes;
  return S;
}

} // namespace

int main() {
  const bool Fast = fastMode();
  const int FibN = Fast ? 14 : 20;
  std::vector<int> ThreadCounts = Fast ? std::vector<int>{10, 100}
                                       : std::vector<int>{10, 100, 1000};
  std::vector<int> Intervals = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};

  std::printf("E2 / Figure 5: thread system, %s threads x fib(%d), "
              "context switch every N procedure calls.\n",
              Fast ? "{10,100}" : "{10,100,1000}", FibN);
  std::printf("Times in milliseconds (lower is better).\n");

  struct Row {
    int Interval;
    double Cps, Cc, OneCc;
  };

  std::string CcSetup = std::string(threadsCallCC()) + threadSchedulerCommon();
  std::string OneSetup =
      std::string(threadsCall1CC()) + threadSchedulerCommon();

  for (int N : ThreadCounts) {
    std::printf("\n-- %d threads --\n", N);
    std::printf("%-10s %12s %12s %12s %12s %10s %14s\n", "interval",
                "CPS (ms)", "call/cc", "call/1cc", "engines", "1cc/cc",
                "cc words-cp");
    std::vector<Row> Rows;
    for (int Interval : Intervals) {
      Sample Cps = runVariant(threadsCPS(), "run-threads-cps", N, FibN,
                              Interval);
      Sample Cc = runVariant(CcSetup.c_str(), "run-threads", N, FibN,
                             Interval);
      Sample One = runVariant(OneSetup.c_str(), "run-threads", N, FibN,
                              Interval);
      // Extension column: preemptive engine threads (one-shot transfers,
      // switch frequency enforced by the VM timer).
      Sample Eng = runVariant(threadsEngines(), "run-threads-engines", N,
                              FibN, Interval);
      std::printf("%-10d %12.1f %12.1f %12.1f %12.1f %10.2f %14llu\n",
                  Interval, Cps.Ms, Cc.Ms, One.Ms, Eng.Ms, One.Ms / Cc.Ms,
                  static_cast<unsigned long long>(Cc.WordsCopied));
      Rows.push_back({Interval, Cps.Ms, Cc.Ms, One.Ms});
    }

    // E4: largest switch frequency (smallest interval) at which the stack
    // representations beat the heap/CPS representation.
    int CrossCc = -1, CrossOne = -1;
    for (const Row &R : Rows) {
      if (CrossCc < 0 && R.Cc <= R.Cps)
        CrossCc = R.Interval;
      if (CrossOne < 0 && R.OneCc <= R.Cps)
        CrossOne = R.Interval;
    }
    std::printf("crossover (first interval where stack beats CPS): "
                "call/cc at %d (paper: ~8), call/1cc at %d (paper: ~4)\n",
                CrossCc, CrossOne);
  }

  std::printf("\nShape checks (paper):\n"
              "  * call/1cc <= call/cc at every point, advantage largest at "
              "interval 1..8, a few percent beyond 128;\n"
              "  * CPS wins only at the very smallest intervals.\n");
  return 0;
}
