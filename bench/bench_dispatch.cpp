//===----------------------------------------------------------------------===//
///
/// \file
/// The dispatch benchmark: logical instructions retired per second for
/// classic call-heavy workloads (fib, tak, ack) plus a global-read/write
/// loop, each measured at four corners of the dispatch lattice:
///
///   * switch-bare    — portable switch loop, no fusion, no inline caches;
///   * switch-ic      — switch loop plus inline caches;
///   * threaded-bare  — computed-goto loop alone;
///   * threaded-full  — computed goto + superinstructions + inline caches
///                      (the shipping default).
///
/// Logical instruction counts are dispatch-invariant by construction — a
/// fused pair retires two, caches retire nothing — so the instructions
/// field is exact, identical across all four columns (the binary aborts
/// otherwise), and pinned to baseline via the gate's hard_eq list.  The
/// mips field is wall clock and therefore warn-only in CI; outside fast
/// mode the binary self-gates the headline claim instead: threaded-full
/// must retire instructions no slower than switch-bare on every workload,
/// and at least 1.25x faster on fib and tak.
///
/// Usage: bench_dispatch [--json <path>]  (OSC_BENCH_FAST=1 for a smoke run)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "compiler/Bytecode.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace osc;
using namespace osc::bench;

namespace {

struct Mode {
  const char *Name;
  bool Threaded;
  uint32_t Fuse;
  bool Caches;
};

const Mode ModeTab[] = {
    {"switch-bare", false, 0, false},
    {"switch-ic", false, 0, true},
    {"threaded-bare", true, 0, false},
    {"threaded-full", true, FuseAll, true},
};

struct Workload {
  const char *Name;
  const char *Setup;  ///< Definitions, evaluated before the warmup.
  const char *Warmup; ///< Small run: segments grown, caches primed.
  const char *Timed;  ///< The measured expression (fast-mode variant below).
  const char *TimedFast;
  const char *Expect; ///< write-form result of Timed / TimedFast.
  const char *ExpectFast;
  int N, NFast; ///< Workload size, recorded as column shape.
};

const Workload Workloads[] = {
    {"fib",
     "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
     "(fib 12)", "(fib 27)", "(fib 18)", "196418", "2584", 27, 18},
    {"tak",
     "(define (tak x y z)"
     "  (if (< y x)"
     "      (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))"
     "      z))"
     "(define (rep n acc)"
     "  (if (zero? n) acc (rep (- n 1) (+ acc (tak 18 12 6)))))",
     "(tak 12 8 4)", "(rep 25 0)", "(rep 1 0)", "175", "7", 25, 1},
    {"ack",
     "(define (ack m n)"
     "  (cond ((zero? m) (+ n 1))"
     "        ((zero? n) (ack (- m 1) 1))"
     "        (else (ack (- m 1) (ack m (- n 1))))))",
     "(ack 2 3)", "(ack 3 6)", "(ack 2 5)", "509", "13", 6, 5},
    {"global-loop",
     "(define g 0)"
     "(define (gloop n acc)"
     "  (if (zero? n) acc"
     "      (begin (set! g (+ g 1)) (gloop (- n 1) (+ acc g)))))",
     "(begin (set! g 0) (gloop 100 0))",
     "(begin (set! g 0) (gloop 300000 0))",
     "(begin (set! g 0) (gloop 5000 0))", "45000150000", "12502500", 300000,
     5000},
};

struct Column {
  std::string Name; ///< "<workload>/<mode>" — the gate's column key.
  const Workload *W = nullptr;
  const Mode *M = nullptr;
  uint64_t Instructions = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  double Ms = 0;

  double mips() const { return Ms > 0 ? Instructions / Ms / 1e3 : 0; }
};

Column runColumn(const Workload &W, const Mode &M) {
  Config C;
  C.ThreadedDispatch = M.Threaded;
  C.Superinstructions = M.Fuse;
  C.InlineCaches = M.Caches;
  Interp I(C);
  mustEval(I, W.Setup);
  mustEval(I, W.Warmup);

  // Best of three: every Timed expression is re-runnable (pure, or it
  // resets its own state), so repeats retire identical instruction
  // counts and the minimum wall clock discards scheduler noise and any
  // first-run cold-start (page faults, branch-predictor warmup).
  const char *Timed = fastMode() ? W.TimedFast : W.Timed;
  const char *Expect = fastMode() ? W.ExpectFast : W.Expect;
  const int Reps = fastMode() ? 1 : 3;
  Column Col;
  Col.Name = std::string(W.Name) + "/" + M.Name;
  Col.W = &W;
  Col.M = &M;
  for (int R = 0; R < Reps; ++R) {
    Stats::Snapshot S0 = I.snapshot();
    auto T0 = std::chrono::steady_clock::now();
    Value V = mustEval(I, Timed);
    auto T1 = std::chrono::steady_clock::now();
    Stats::Snapshot D = I.snapshot() - S0;
    double Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;

    if (I.valueToString(V) != Expect)
      oscFatal(("bench_dispatch: " + Col.Name + " computed " +
                I.valueToString(V) + ", expected " + Expect +
                "; the workload drifted")
                   .c_str());
    if (R == 0) {
      Col.Instructions = D.Instructions;
      Col.CacheHits = D.CacheHits;
      Col.CacheMisses = D.CacheMisses;
      Col.Ms = Ms;
    } else {
      if (D.Instructions != Col.Instructions)
        oscFatal(("bench_dispatch: " + Col.Name +
                  " retired a different instruction count on a repeat run; "
                  "the workload is not re-runnable")
                     .c_str());
      Col.Ms = std::min(Col.Ms, Ms);
    }
  }
  return Col;
}

void writeJson(const std::string &Path, const std::vector<Column> &Cols,
               double SpeedupFib, double SpeedupTak) {
  std::ofstream Out(Path);
  if (!Out.good())
    oscFatal(("bench_dispatch: cannot write " + Path).c_str());
  Out << "{\n  \"name\": \"bench_dispatch\",\n"
      << "  \"hard_eq\": [\"instructions\"],\n"
      << "  \"speedup_enforced\": true,\n"
      << "  \"speedup_min\": 1.25,\n"
      << "  \"speedup_measurable\": " << (fastMode() ? "false" : "true")
      << ",\n"
      << "  \"speedup_fib\": " << SpeedupFib << ",\n"
      << "  \"speedup_tak\": " << SpeedupTak << ",\n"
      << "  \"columns\": [\n";
  for (size_t K = 0; K < Cols.size(); ++K) {
    const Column &C = Cols[K];
    Out << "    {\n"
        << "      \"name\": \"" << C.Name << "\",\n"
        << "      \"workload\": \"" << C.W->Name << "\",\n"
        << "      \"dispatch_mode\": \""
        << (C.M->Threaded ? "threaded" : "switch") << "\",\n"
        << "      \"superinstructions\": " << C.M->Fuse << ",\n"
        << "      \"inline_caches\": " << (C.M->Caches ? "true" : "false")
        << ",\n"
        << "      \"n\": " << (fastMode() ? C.W->NFast : C.W->N) << ",\n"
        << "      \"instructions\": " << C.Instructions << ",\n"
        << "      \"cache_hits\": " << C.CacheHits << ",\n"
        << "      \"cache_misses\": " << C.CacheMisses << ",\n"
        << "      \"elapsed_ms\": " << C.Ms << ",\n"
        << "      \"mips\": " << C.mips() << "\n    }"
        << (K + 1 < Cols.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--json" && K + 1 < Argc)
      JsonPath = Argv[++K];
  }

  std::printf("Dispatch: instructions/sec across the dispatch lattice "
              "(%s mode).\n\n",
              fastMode() ? "fast/smoke" : "full");

  std::vector<Column> Cols;
  for (const Workload &W : Workloads)
    for (const Mode &M : ModeTab)
      Cols.push_back(runColumn(W, M));

  std::printf("%24s %14s %10s %10s %12s %12s\n", "column", "instructions",
              "ms", "mips", "cache-hits", "cache-miss");
  for (const Column &C : Cols)
    std::printf("%24s %14llu %10.2f %10.1f %12llu %12llu\n", C.Name.c_str(),
                static_cast<unsigned long long>(C.Instructions), C.Ms,
                C.mips(), static_cast<unsigned long long>(C.CacheHits),
                static_cast<unsigned long long>(C.CacheMisses));

  // Logical instruction counts are the dispatch contract: all four
  // columns of a workload must retire exactly the same count, or the
  // modes have diverged and every other number is meaningless.
  for (const Workload &W : Workloads) {
    uint64_t Ref = 0;
    for (const Column &C : Cols) {
      if (C.W != &W)
        continue;
      if (Ref == 0)
        Ref = C.Instructions;
      else if (C.Instructions != Ref)
        oscFatal(("bench_dispatch: " + C.Name +
                  " retired a different logical instruction count than its "
                  "siblings; the dispatch modes have diverged")
                     .c_str());
    }
  }

  auto Mips = [&](const char *W, const char *M) {
    std::string Key = std::string(W) + "/" + M;
    for (const Column &C : Cols)
      if (C.Name == Key)
        return C.mips();
    oscFatal(("bench_dispatch: missing column " + Key).c_str());
    return 0.0;
  };
  double SpeedupFib = Mips("fib", "threaded-full") / Mips("fib", "switch-bare");
  double SpeedupTak = Mips("tak", "threaded-full") / Mips("tak", "switch-bare");

  if (!fastMode()) {
    // Wall-clock self-gates only outside fast mode: smoke workloads are
    // too small to time, and CI runners gate on the JSON shape instead.
    for (const Workload &W : Workloads)
      if (Mips(W.Name, "threaded-full") < Mips(W.Name, "switch-bare"))
        oscFatal(("bench_dispatch: threaded-full is slower than switch-bare "
                  "on " +
                  std::string(W.Name))
                     .c_str());
    if (SpeedupFib < 1.25 || SpeedupTak < 1.25)
      oscFatal("bench_dispatch: threaded+superinstructions+caches is below "
               "the 1.25x instructions/sec floor over the bare switch loop");
  }

  std::printf("\nthreaded-full over switch-bare: %.2fx on fib, %.2fx on tak "
              "(floor 1.25x%s).\n",
              SpeedupFib, SpeedupTak,
              fastMode() ? ", not gated in fast mode" : "");
  if (!JsonPath.empty()) {
    writeJson(JsonPath, Cols, SpeedupFib, SpeedupTak);
    std::printf("Wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
