//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E3 (§4, third paragraph): stack-overflow handling on deep
/// recursion.
///
/// Paper: "we compared the performance of a program that repeatedly recurs
/// deeply (one million calls) while doing very little work between calls.
/// In this extreme case overflow handling using one-shot continuations is
/// 300% faster and allocates much less.  In fact, after the first
/// recursion, the one-shot version always finds fresh stack segments in
/// the stack cache and so allocates very little additional memory."
///
/// The harness runs (deep 1000000) repeatedly under both overflow policies
/// with the paper's default 16KB (2048-word) segments and prints time,
/// copy traffic, and allocation per run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace osc;
using namespace osc::bench;

namespace {

struct PolicyResult {
  double MsPerRun = 0;
  double MBAllocPerRun = 0;
  double MWordsCopiedPerRun = 0;
  double CacheHitRate = 0;
  uint64_t Overflows = 0;
};

PolicyResult runPolicy(OverflowPolicy P, int Reps, int Depth) {
  Config C;
  C.SegmentWords = 2048; // The paper's 16KB default.
  C.InitialSegmentWords = 2048;
  C.Overflow = P;
  Interp I(C);
  mustEval(I, workloads::deepRecursion());
  // First descent warms the cache ("after the first recursion...").
  mustEval(I, "(deep " + std::to_string(Depth) + ")");

  CounterSnapshot Start = CounterSnapshot::take(I);
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(deep-repeat " + std::to_string(Reps) + " " +
                  std::to_string(Depth) + ")");
  auto T1 = std::chrono::steady_clock::now();
  CounterSnapshot D = Start.delta(CounterSnapshot::take(I));

  PolicyResult R;
  R.MsPerRun = std::chrono::duration<double>(T1 - T0).count() * 1e3 / Reps;
  R.MBAllocPerRun = static_cast<double>(D.Bytes) / Reps / (1 << 20);
  R.MWordsCopiedPerRun = static_cast<double>(D.WordsCopied) / Reps / 1e6;
  R.CacheHitRate = D.SegAllocs + D.CacheHits
                       ? static_cast<double>(D.CacheHits) /
                             (D.SegAllocs + D.CacheHits)
                       : 0.0;
  R.Overflows = D.Overflows / Reps;
  return R;
}

} // namespace

int main() {
  const bool Fast = fastMode();
  const int Depth = Fast ? 100000 : 1000000;
  const int Reps = Fast ? 3 : 5;

  std::printf("E3: repeated deep recursion, depth %d x %d runs, 2048-word "
              "segments.\n\n",
              Depth, Reps);
  std::printf("%-22s %12s %14s %16s %12s %12s\n", "overflow policy",
              "ms/run", "alloc MB/run", "Mwords-copied", "cache-hit%",
              "overflows");

  PolicyResult Multi = runPolicy(OverflowPolicy::MultiShot, Reps, Depth);
  PolicyResult One = runPolicy(OverflowPolicy::OneShot, Reps, Depth);

  std::printf("%-22s %12.1f %14.2f %16.2f %12.1f %12llu\n",
              "implicit call/cc", Multi.MsPerRun, Multi.MBAllocPerRun,
              Multi.MWordsCopiedPerRun, Multi.CacheHitRate * 100,
              static_cast<unsigned long long>(Multi.Overflows));
  std::printf("%-22s %12.1f %14.2f %16.2f %12.1f %12llu\n",
              "implicit call/1cc", One.MsPerRun, One.MBAllocPerRun,
              One.MWordsCopiedPerRun, One.CacheHitRate * 100,
              static_cast<unsigned long long>(One.Overflows));

  std::printf("\none-shot speedup: %.0f%% faster   (paper: 300%% faster)\n",
              (Multi.MsPerRun / One.MsPerRun - 1.0) * 100.0);
  std::printf("one-shot allocation: %.2f MB/run vs %.2f MB/run   (paper: "
              "\"allocates much less\")\n",
              One.MBAllocPerRun, Multi.MBAllocPerRun);
  return 0;
}
