//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5, native edition: the src/sched green-thread scheduler against
/// the Scheme-level thread systems (call/cc, call/1cc, engines) on the
/// paper's workload — N threads each computing fib(20), context switching
/// every I procedure calls.
///
/// Two claims are checked with exact counters, not timings:
///
///   * A steady-state native context switch copies ZERO stack words: both
///     suspension (captureOneShot) and resumption (the one-shot invoke)
///     are segment pointer swaps.  The harness aborts if WordsCopied moves
///     at all during the native runs.
///   * The call/cc thread system copies words on every resume (Fig. 3), so
///     its WordsCopied grows with the switch count.  The harness aborts if
///     it doesn't — otherwise the comparison would be measuring nothing.
///
/// The timing table mirrors bench_threads so the native column can be read
/// against the paper's three systems directly.  OSC_BENCH_FAST=1 shrinks
/// the workload for smoke runs.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace osc;
using namespace osc::bench;
using namespace osc::workloads;

namespace {

/// The native workload, shaped exactly like run-threads / run-threads-engines
/// in bench/Workloads.cpp: same doubly recursive fib, same completion
/// criterion (sum of all thread results), but scheduling and switching live
/// entirely inside the VM.
const char *NativeSetup =
    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
    "(define (run-threads-native n fib-n interval)"
    "  (let ((tids (map (lambda (i) (spawn (lambda () (fib fib-n))))"
    "                   (iota n))))"
    "    (scheduler-run interval)"
    "    (fold-left + 0 (map thread-join tids))))";

struct Sample {
  double Ms = 0;
  uint64_t WordsCopied = 0;
  uint64_t Switches = 0;
};

Sample runNative(int Threads, int FibN, int Interval) {
  Interp I;
  mustEval(I, NativeSetup);
  uint64_t Copied0 = I.snapshot().WordsCopied;
  uint64_t Switch0 = I.snapshot().ContextSwitches;
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(run-threads-native " + std::to_string(Threads) + " " +
                  std::to_string(FibN) + " " + std::to_string(Interval) + ")");
  auto T1 = std::chrono::steady_clock::now();
  Sample S;
  S.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  S.WordsCopied = I.snapshot().WordsCopied - Copied0;
  S.Switches = I.snapshot().ContextSwitches - Switch0;
  return S;
}

Sample runScheme(const std::string &Setup, const char *Runner, int Threads,
                 int FibN, int Interval) {
  Interp I;
  mustEval(I, Setup);
  CounterSnapshot Start = CounterSnapshot::take(I);
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(" + std::string(Runner) + " " + std::to_string(Threads) + " " +
                  std::to_string(FibN) + " " + std::to_string(Interval) + ")");
  auto T1 = std::chrono::steady_clock::now();
  CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
  Sample S;
  S.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  S.WordsCopied = D.WordsCopied;
  S.Switches = D.OneShotInvokes + D.MultiShotInvokes;
  return S;
}

} // namespace

int main() {
  const bool Fast = fastMode();
  const int FibN = Fast ? 14 : 20;
  std::vector<int> ThreadCounts = Fast ? std::vector<int>{10, 100}
                                       : std::vector<int>{10, 100, 1000};
  std::vector<int> Intervals = Fast ? std::vector<int>{1, 8, 64, 512}
                                    : std::vector<int>{1,  2,  4,   8,  16,
                                                       32, 64, 128, 256, 512};

  // --- Part 1: the zero-copy steady state, isolated ------------------------
  //
  // A pure switch loop (threads that only yield) makes the per-switch cost
  // visible with nothing else on the meter.
  {
    const int Yielders = 4;
    const int Rounds = Fast ? 2000 : 20000;
    Interp I;
    std::string Setup =
        "(define (yielder n)"
        "  (lambda () (let loop ((i 0))"
        "    (if (= i n) 'done (begin (yield) (loop (+ i 1)))))))";
    for (int T = 0; T < Yielders; ++T)
      Setup += "(spawn (yielder " + std::to_string(Rounds) + "))";
    mustEval(I, Setup);
    uint64_t Copied0 = I.snapshot().WordsCopied;
    uint64_t Switch0 = I.snapshot().ContextSwitches;
    auto T0 = std::chrono::steady_clock::now();
    mustEval(I, "(scheduler-run)");
    auto T1 = std::chrono::steady_clock::now();
    uint64_t Switches = I.snapshot().ContextSwitches - Switch0;
    uint64_t Copied = I.snapshot().WordsCopied - Copied0;
    double Ns =
        std::chrono::duration<double>(T1 - T0).count() * 1e9 / Switches;
    std::printf("Steady-state native switch: %llu switches, %llu words "
                "copied (%.3f words/switch), %.0f ns/switch.\n",
                static_cast<unsigned long long>(Switches),
                static_cast<unsigned long long>(Copied),
                Switches ? double(Copied) / Switches : 0.0, Ns);
    if (Copied != 0)
      oscFatal("native scheduler copied stack words in steady state; the "
               "one-shot switch path has regressed");
  }

  // --- Part 2: Figure 5 with a native column -------------------------------

  std::printf("\nFigure 5 + native scheduler: %s threads x fib(%d), switch "
              "every N procedure calls.  Times in ms.\n",
              Fast ? "{10,100}" : "{10,100,1000}", FibN);

  std::string CcSetup = std::string(threadsCallCC()) + threadSchedulerCommon();
  std::string OneSetup =
      std::string(threadsCall1CC()) + threadSchedulerCommon();

  uint64_t NativeCopiedTotal = 0, NativeSwitchTotal = 0;
  uint64_t CcCopiedTotal = 0, CcSwitchTotal = 0;

  for (int N : ThreadCounts) {
    std::printf("\n-- %d threads --\n", N);
    std::printf("%-10s %12s %12s %12s %12s %14s %14s\n", "interval",
                "native", "engines", "call/cc", "call/1cc", "native wds/sw",
                "cc wds/sw");
    for (int Interval : Intervals) {
      Sample Nat = runNative(N, FibN, Interval);
      Sample Eng = runScheme(threadsEngines(), "run-threads-engines", N, FibN,
                             Interval);
      Sample Cc = runScheme(CcSetup, "run-threads", N, FibN, Interval);
      Sample One = runScheme(OneSetup, "run-threads", N, FibN, Interval);
      NativeCopiedTotal += Nat.WordsCopied;
      NativeSwitchTotal += Nat.Switches;
      CcCopiedTotal += Cc.WordsCopied;
      CcSwitchTotal += Cc.Switches;
      std::printf("%-10d %12.1f %12.1f %12.1f %12.1f %14.2f %14.2f\n",
                  Interval, Nat.Ms, Eng.Ms, Cc.Ms, One.Ms,
                  Nat.Switches ? double(Nat.WordsCopied) / Nat.Switches : 0.0,
                  Cc.Switches ? double(Cc.WordsCopied) / Cc.Switches : 0.0);
    }
  }

  std::printf("\nTotals: native %llu words copied across %llu switches; "
              "call/cc %llu across %llu.\n",
              static_cast<unsigned long long>(NativeCopiedTotal),
              static_cast<unsigned long long>(NativeSwitchTotal),
              static_cast<unsigned long long>(CcCopiedTotal),
              static_cast<unsigned long long>(CcSwitchTotal));
  if (NativeCopiedTotal != 0)
    oscFatal("native scheduler copied stack words during the fib workload; "
             "switches are expected to stay zero-copy");
  if (CcCopiedTotal == 0)
    oscFatal("call/cc thread system copied no stack words; the baseline is "
             "not exercising multi-shot resumption");
  std::printf("Check passed: native switches copy zero stack words; the "
              "call/cc system pays %.1f words per switch.\n",
              CcSwitchTotal ? double(CcCopiedTotal) / CcSwitchTotal : 0.0);
  return 0;
}
