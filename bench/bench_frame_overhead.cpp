//===----------------------------------------------------------------------===//
///
/// \file
/// Experiment E5 (§5): per-frame overhead of the stack representation vs a
/// heap/CPS representation of control.
///
/// Paper: Appel & Shao report ~7.4 instructions/frame for a simulated
/// stack model, attributing 3.4 to closure creation; the authors measure
/// ~0.1 instructions/frame of continuation-related overhead in their
/// stack-based system, and zero closure allocation for Boyer-class code.
///
/// Our analog on the VM: run the same workloads in direct style and in
/// CPS, and report per-procedure-call allocation (bytes/call) and executed
/// instructions/call.  Direct style on the segmented stack should allocate
/// ~0 bytes per call; CPS pays a closure per non-tail continuation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace osc;
using namespace osc::bench;

namespace {

const char *directFib = "(define (fib n)"
                        "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";

const char *cpsFib =
    "(define (fib-k n k)"
    "  (if (< n 2)"
    "      (k n)"
    "      (fib-k (- n 1)"
    "             (lambda (a) (fib-k (- n 2) (lambda (b) (k (+ a b))))))))"
    "(define (fib n) (fib-k n (lambda (r) r)))";

// A Boyer-flavoured workload: heavy list rewriting with helper calls that
// are live across calls (the case where Appel & Shao's model must copy
// variables into closures while a true stack leaves them in place).
const char *directRewrite =
    "(define (rewrite t d)"
    "  (if (zero? d)"
    "      t"
    "      (if (pair? t)"
    "          (cons (rewrite (car t) (- d 1)) (rewrite (cdr t) (- d 1)))"
    "          (if (null? t) t (if (eq? t 'a) 'b 'a)))))"
    "(define (drive n)"
    "  (let loop ((i 0) (acc 0))"
    "    (if (= i n)"
    "        acc"
    "        (loop (+ i 1)"
    "              (+ acc (length (rewrite '((a b) (c (a b)) a) 6)))))))";

const char *cpsRewrite =
    "(define (rewrite-k t d k)"
    "  (if (zero? d)"
    "      (k t)"
    "      (if (pair? t)"
    "          (rewrite-k (car t) (- d 1)"
    "            (lambda (x) (rewrite-k (cdr t) (- d 1)"
    "              (lambda (y) (k (cons x y))))))"
    "          (k (if (null? t) t (if (eq? t 'a) 'b 'a))))))"
    "(define (drive n)"
    "  (let loop ((i 0) (acc 0))"
    "    (if (= i n)"
    "        acc"
    "        (loop (+ i 1)"
    "              (+ acc (length (rewrite-k '((a b) (c (a b)) a) 6"
    "                                        (lambda (r) r))))))))";

struct Overheads {
  double BytesPerCall;
  double InstrsPerCall;
  double Ms;
  double ClosuresPerCall;
};

Overheads measure(const char *Setup, const std::string &Call) {
  Interp I;
  mustEval(I, Setup);
  mustEval(I, Call); // Warm up (and take one-time GC growth out).
  CounterSnapshot Start = CounterSnapshot::take(I);
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, Call);
  auto T1 = std::chrono::steady_clock::now();
  CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
  Overheads O;
  O.BytesPerCall = static_cast<double>(D.Bytes) / D.Calls;
  O.InstrsPerCall = static_cast<double>(D.Instructions) / D.Calls;
  O.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  O.ClosuresPerCall = static_cast<double>(D.Closures) / D.Calls;
  return O;
}

void report(const char *Name, const Overheads &Direct, const Overheads &Cps) {
  std::printf("%-10s %10.2f %12.2f %10.1f | %10.2f %12.2f %10.1f\n", Name,
              Direct.BytesPerCall, Direct.InstrsPerCall, Direct.Ms,
              Cps.BytesPerCall, Cps.InstrsPerCall, Cps.Ms);
}

} // namespace

int main() {
  const bool Fast = fastMode();
  std::string FibCall = Fast ? "(fib 20)" : "(fib 25)";
  std::string RewriteCall = Fast ? "(drive 2000)" : "(drive 20000)";

  std::printf("E5: per-procedure-call overhead, direct style (segmented "
              "stack) vs CPS (heap closures).\n\n");
  std::printf("%-10s %10s %12s %10s | %10s %12s %10s\n", "workload",
              "dir B/call", "dir ins/call", "dir ms", "cps B/call",
              "cps ins/call", "cps ms");

  report("fib", measure(directFib, FibCall), measure(cpsFib, FibCall));
  report("rewrite", measure(directRewrite, RewriteCall),
         measure(cpsRewrite, RewriteCall));

  // The paper's own data point: for Boyer, Appel & Shao report 5.75
  // closure-creation instructions per frame in the heap model; the
  // stack-based implementation "allocates no closures at all".
  {
    Interp I;
    mustEval(I, osc::workloads::boyer());
    mustEval(I, "(boyer-setup!)");
    mustEval(I, "(boyer-run)"); // Warm up.
    CounterSnapshot Start = CounterSnapshot::take(I);
    auto T0 = std::chrono::steady_clock::now();
    Value R = mustEval(I, "(boyer-run)");
    auto T1 = std::chrono::steady_clock::now();
    CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
    if (!R.isTrue())
      oscFatal("boyer failed to prove its theorem");
    std::printf("%-10s %10s %12s %10s | closures/call = %.4f over %llu "
                "calls  (paper: 0)\n",
                "boyer", "-", "-", "-",
                static_cast<double>(D.Closures) / D.Calls,
                static_cast<unsigned long long>(D.Calls));
    std::printf("%-10s boyer direct-style: %.2f B/call, %.2f ins/call, "
                "%.1f ms\n", "",
                static_cast<double>(D.Bytes) / D.Calls,
                static_cast<double>(D.Instructions) / D.Calls,
                std::chrono::duration<double>(T1 - T0).count() * 1e3);
  }

  std::printf("\nShape check (paper/§5): the stack representation allocates "
              "~0 bytes per call for\nthese programs, while the CPS/heap "
              "representation pays a closure per non-tail call\n(Appel & "
              "Shao's 3.4+ closure-creation instructions per frame).\n");
  return 0;
}
