//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation benchmarks for the design choices the paper calls out:
///
///   A1 (§3.2)  the stack-segment cache — "without a stack segment cache …
///              many programs written in terms of call/1cc were
///              unacceptably slow";
///   A2 (§3.2)  copy-up hysteresis on one-shot overflow — naive handling
///              "can cause bouncing";
///   A3 (§3.3)  linear promotion vs the proposed shared-flag O(1) scheme;
///   A4 (§3.4)  seal displacement vs whole-segment encapsulation
///              (fragmentation from dormant one-shot continuations);
///   A5 (Fig 3) the copy bound on multi-shot reinstatement.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace osc;
using namespace osc::bench;

namespace {

double timeMs(Interp &I, const std::string &Call) {
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, Call);
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count() * 1e3;
}

int scale(int Full, int Fast) { return fastMode() ? Fast : Full; }

void ablationSegmentCache() {
  std::printf("\n--- A1: segment cache on one-shot capture/invoke churn "
              "(§3.2) ---\n");
  std::printf("%-14s %10s %14s %14s\n", "cache", "ms", "segments-alloc",
              "cache-hits");
  const int Spins = scale(200000, 20000);
  for (bool Enabled : {true, false}) {
    Config C;
    C.SegmentCacheEnabled = Enabled;
    Interp I(C);
    mustEval(I, "(define (spin n)"
                "  (if (zero? n) 'done"
                "      (begin (car (list (call/1cc (lambda (k) (k 1)))))"
                "             (spin (- n 1)))))");
    double Ms = timeMs(I, "(spin " + std::to_string(Spins) + ")");
    std::printf("%-14s %10.1f %14llu %14llu\n",
                Enabled ? "enabled" : "disabled", Ms,
                static_cast<unsigned long long>(I.stats().SegmentsAllocated),
                static_cast<unsigned long long>(I.stats().SegmentCacheHits));
  }
}

void ablationOverflowCopyUp() {
  std::printf("\n--- A2: one-shot overflow copy-up hysteresis (§3.2) ---\n");
  std::printf("%-14s %10s %12s %16s\n", "copy-up", "ms", "overflows",
              "words-copied");
  const int Saws = scale(2000, 300);
  for (uint32_t H : {0u, 2u, 8u, 32u}) {
    Config C;
    C.SegmentWords = 256;
    C.InitialSegmentWords = 256;
    C.Overflow = OverflowPolicy::OneShot;
    C.OverflowCopyUpFrames = H;
    Interp I(C);
    mustEval(I,
             "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
             "(define (saw k) (if (zero? k) 0 (begin (deep 3)"
             "                                       (saw (- k 1)))))"
             "(define (fill n) (if (zero? n) (saw " +
                 std::to_string(Saws) +
                 ") (+ 1 (fill (- n 1)))))"
                 "(define (sweep d) (if (zero? d) 'done"
                 "                      (begin (fill d) (sweep (- d 1)))))");
    double Ms = timeMs(I, "(sweep 60)");
    std::printf("%-14u %10.1f %12llu %16llu\n", H, Ms,
                static_cast<unsigned long long>(I.stats().Overflows),
                static_cast<unsigned long long>(I.stats().WordsCopied));
  }
}

void ablationPromotion() {
  std::printf("\n--- A3: promotion strategy (§3.3) ---\n");
  std::printf("%-14s %10s %14s %16s\n", "strategy", "ms", "promotions",
              "walk-steps");
  const int Rounds = scale(2000, 300);
  // Each round parks a chain of 40 one-shot captures, then performs one
  // call/cc which must promote the whole chain.
  const std::string Prog =
      "(define (chain d done)"
      "  (if (zero? d)"
      "      (begin (car (list (%call/cc (lambda (m) 'promote))))"
      "             (done #f))"
      "      (car (list (%call/1cc (lambda (k) (chain (- d 1) done)))))))"
      "(define (rounds r)"
      "  (if (zero? r) 'done"
      "      (begin (car (list (%call/1cc (lambda (done)"
      "                          (chain 40 done)))))"
      "             (rounds (- r 1)))))";
  for (PromotionStrategy P :
       {PromotionStrategy::Linear, PromotionStrategy::SharedFlag}) {
    Config C;
    C.Promotion = P;
    C.InitialSegmentWords = 1 << 16;
    Interp I(C);
    mustEval(I, Prog);
    double Ms = timeMs(I, "(rounds " + std::to_string(Rounds) + ")");
    std::printf("%-14s %10.1f %14llu %16llu\n",
                P == PromotionStrategy::Linear ? "linear" : "shared-flag",
                Ms, static_cast<unsigned long long>(I.stats().Promotions),
                static_cast<unsigned long long>(
                    I.stats().PromotionWalkSteps));
  }
}

void ablationSealDisplacement() {
  std::printf("\n--- A4: seal displacement vs whole-segment encapsulation "
              "(§3.4) ---\n");
  std::printf("%-18s %10s %22s\n", "seal-displacement", "ms",
              "live segment words");
  const int Parked = scale(2000, 200);
  for (uint32_t SD : {0u, 64u, 256u, 1024u}) {
    Config C;
    C.SealDisplacementWords = SD;
    Interp I(C);
    mustEval(I, "(define parked '())"
                "(define (park i n)"
                "  (if (= i n)"
                "      (vm-live-segment-words)"
                "      (car (list (%call/1cc (lambda (k)"
                "                   (set! parked (cons k parked))"
                "                   (park (+ i 1) n)))))))");
    auto T0 = std::chrono::steady_clock::now();
    Value Words = mustEval(I, "(park 0 " + std::to_string(Parked) + ")");
    auto T1 = std::chrono::steady_clock::now();
    std::printf("%-18u %10.1f %22lld\n", SD,
                std::chrono::duration<double>(T1 - T0).count() * 1e3,
                static_cast<long long>(Words.asFixnum()));
  }
}

void ablationCopyBound() {
  std::printf("\n--- A5: copy bound on multi-shot reinstatement (Fig. 3) "
              "---\n");
  std::printf("%-14s %10s %16s %10s\n", "bound (words)", "ms",
              "words-copied", "splits");
  const int Invokes = scale(20000, 2000);
  for (uint32_t Bound : {64u, 256u, 1024u, 65536u}) {
    Config C;
    C.CopyBoundWords = Bound;
    C.InitialSegmentWords = 1 << 16;
    Interp I(C);
    // Capture a 500-frame continuation once, then re-enter it repeatedly;
    // each re-entry reinstates only up to the copy bound.
    mustEval(I, "(define k #f)"
                "(define n 0)"
                "(define limit 0)"
                "(define (deep d)"
                "  (if (zero? d)"
                "      (call/cc (lambda (c) (set! k c) 0))"
                "      (+ 1 (deep (- d 1)))))"
                "(define (spin)"
                "  (deep 500)"
                "  (set! n (+ n 1))"
                "  (if (< n limit) (k 0) 'done))");
    double Ms = timeMs(I, "(set! n 0) (set! limit " +
                              std::to_string(Invokes) + ") (spin)");
    std::printf("%-14u %10.1f %16llu %10llu\n", Bound, Ms,
                static_cast<unsigned long long>(I.stats().WordsCopied),
                static_cast<unsigned long long>(I.stats().Splits));
  }
}

void ablationInvokeCostVsDepth() {
  std::printf("\n--- A6: capture+invoke cost vs captured stack depth "
              "(Fig. 3 vs Fig. 4) ---\n");
  std::printf("%-8s %14s %14s %10s %18s\n", "depth", "call/cc ns/op",
              "call/1cc ns/op", "cc/1cc", "cc words-cp/op");
  const int Ops = scale(30000, 3000);
  for (int Depth : {4, 16, 64, 256, 1024}) {
    double Ns[2];
    uint64_t Copied[2];
    int Idx = 0;
    for (const char *Capture : {"call/cc", "call/1cc"}) {
      Config C;
      C.InitialSegmentWords = 1 << 16;
      C.SegmentWords = 1 << 16;
      C.CopyBoundWords = 1 << 16; // Isolate copying from splitting.
      Interp I(C);
      // Capture at the bottom of a `Depth`-frame dive; the receiver
      // returns immediately, implicitly invoking the captured
      // continuation (Fig. 2's displaced return).  Multi-shot pays a copy
      // proportional to the sealed depth on that return (Fig. 3);
      // one-shot swaps segments in O(1) (Fig. 4).
      mustEval(I, "(define (dive d)"
                  "  (if (zero? d)"
                  "      (car (list (" +
                      std::string(Capture) +
                      " (lambda (k) 0))))"
                      "      (+ 1 (dive (- d 1)))))"
                      "(define (spin n)"
                      "  (if (zero? n) 'ok (begin (dive " +
                      std::to_string(Depth) +
                      ") (spin (- n 1)))))");
      CounterSnapshot Start = CounterSnapshot::take(I);
      auto T0 = std::chrono::steady_clock::now();
      mustEval(I, "(spin " + std::to_string(Ops) + ")");
      auto T1 = std::chrono::steady_clock::now();
      CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
      Ns[Idx] = std::chrono::duration<double>(T1 - T0).count() * 1e9 / Ops;
      Copied[Idx] = D.WordsCopied / Ops;
      ++Idx;
    }
    std::printf("%-8d %14.0f %14.0f %10.2f %18llu\n", Depth, Ns[0], Ns[1],
                Ns[0] / Ns[1], static_cast<unsigned long long>(Copied[0]));
  }
  std::printf("(multi-shot reinstatement copies the sealed frames back — "
              "cost grows with depth\n — while one-shot reinstatement is a "
              "constant-time segment swap.)\n");
}

} // namespace

int main() {
  std::printf("Ablations of the paper's design choices (see DESIGN.md "
              "A1-A6).%s\n",
              fastMode() ? "  [fast mode]" : "");
  ablationSegmentCache();
  ablationOverflowCopyUp();
  ablationPromotion();
  ablationSealDisplacement();
  ablationCopyBound();
  ablationInvokeCostVsDepth();
  return 0;
}
