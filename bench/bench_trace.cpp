//===----------------------------------------------------------------------===//
///
/// \file
/// Cost of the control-event tracer on the continuation-intensive tak.
///
/// The acceptance bar for the tracer is that a binary with tracing compiled
/// in but *disabled* behaves like one without it: the OSC_TRACE guard is a
/// pointer test plus a flag test, and no bytecode instruction is added, so
/// Stats::Instructions must be bit-identical between a traced and an
/// untraced run and the per-instruction wall cost of the disabled guards
/// must stay within noise (<= 1%).
///
/// Three variants of tak-cc (one capture + one invoke per call):
///   disabled  -- trace never started (the default production state)
///   enabled   -- ring buffer live, every control event recorded
///   enabled/wrap -- tiny ring, every emit also evicts (worst case)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>

using namespace osc;
using namespace osc::bench;

namespace {

const char *takCall() { return fastMode() ? "(tak-cc 14 10 4)" : "(tak-cc 18 12 6)"; }

void runTraced(benchmark::State &State, bool Enabled, size_t RingEvents) {
  Config C;
  C.TraceBufferEvents = RingEvents;
  Interp I(C);
  mustEval(I, workloads::takVariants());
  if (Enabled)
    I.trace().start();
  uint64_t Ops = 0;
  CounterSnapshot Start = CounterSnapshot::take(I);
  for (auto _ : State) {
    Value V = mustEval(I, takCall());
    benchmark::DoNotOptimize(V);
    ++Ops;
  }
  CounterSnapshot D = Start.delta(CounterSnapshot::take(I));
  State.counters["instr/op"] =
      benchmark::Counter(static_cast<double>(D.Instructions) / Ops);
  State.counters["events/op"] =
      benchmark::Counter(static_cast<double>(I.trace().emitted()) / Ops);
}

void BM_TakTraceDisabled(benchmark::State &State) {
  runTraced(State, /*Enabled=*/false, /*RingEvents=*/1 << 16);
}
void BM_TakTraceEnabled(benchmark::State &State) {
  runTraced(State, /*Enabled=*/true, /*RingEvents=*/1 << 20);
}
void BM_TakTraceEnabledTinyRing(benchmark::State &State) {
  runTraced(State, /*Enabled=*/true, /*RingEvents=*/64);
}

BENCHMARK(BM_TakTraceDisabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TakTraceEnabled)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TakTraceEnabledTinyRing)->Unit(benchmark::kMillisecond);

/// Head-to-head rerun with identical iteration counts, printing the
/// per-instruction overhead the acceptance criterion is stated in.
void printSummary() {
  struct Sample {
    double SecondsPerOp = 0;
    uint64_t InstructionsPerOp = 0;
    uint64_t EventsPerOp = 0;
  };
  auto Measure = [](bool Enabled) {
    Interp I;
    mustEval(I, workloads::takVariants());
    if (Enabled)
      I.trace().start();
    mustEval(I, takCall()); // Warm up.
    uint64_t Instr0 = I.snapshot().Instructions;
    uint64_t Events0 = I.trace().emitted();
    auto T0 = std::chrono::steady_clock::now();
    const int Reps = fastMode() ? 5 : 25;
    for (int R = 0; R != Reps; ++R)
      mustEval(I, takCall());
    auto T1 = std::chrono::steady_clock::now();
    Sample S;
    S.SecondsPerOp = std::chrono::duration<double>(T1 - T0).count() / Reps;
    S.InstructionsPerOp = (I.snapshot().Instructions - Instr0) / Reps;
    S.EventsPerOp = (I.trace().emitted() - Events0) / Reps;
    return S;
  };

  Sample Off = Measure(false);
  Sample On = Measure(true);

  double OffNsPerInstr = Off.SecondsPerOp * 1e9 / Off.InstructionsPerOp;
  double OnNsPerInstr = On.SecondsPerOp * 1e9 / On.InstructionsPerOp;
  double EnabledPct = (On.SecondsPerOp / Off.SecondsPerOp - 1.0) * 100.0;

  std::printf("\n--- tracer cost on %s ---\n", takCall());
  std::printf("%-10s %14s %18s %14s %12s\n", "tracing", "time/run (ms)",
              "instructions/run", "events/run", "ns/instr");
  std::printf("%-10s %14.2f %18llu %14llu %12.3f\n", "disabled",
              Off.SecondsPerOp * 1e3,
              static_cast<unsigned long long>(Off.InstructionsPerOp),
              static_cast<unsigned long long>(Off.EventsPerOp), OffNsPerInstr);
  std::printf("%-10s %14.2f %18llu %14llu %12.3f\n", "enabled",
              On.SecondsPerOp * 1e3,
              static_cast<unsigned long long>(On.InstructionsPerOp),
              static_cast<unsigned long long>(On.EventsPerOp), OnNsPerInstr);
  std::printf("instructions identical: %s   enabled overhead: %.1f%%\n",
              Off.InstructionsPerOp == On.InstructionsPerOp ? "yes" : "NO",
              EnabledPct);
  if (Off.InstructionsPerOp != On.InstructionsPerOp) {
    std::printf("FAIL: tracing perturbed the instruction stream\n");
    std::exit(1);
  }
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printSummary();
  return 0;
}
