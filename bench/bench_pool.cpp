//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded-pool benchmark: the same PING/EVAL traffic as bench_serve,
/// but served by Pool with 1, 2 and 4 workers.  Each worker is a whole
/// Interp + Reactor on its own OS thread, so throughput should scale
/// near-linearly with the shard count — while the paper's invariant holds
/// on every shard independently: zero stack words copied per steady-state
/// park.
///
/// Two checks gate the run:
///
///   * per-shard zero-copy (always enforced): no worker in any column may
///     copy a single stack word while serving;
///   * scaling (enforced only with >= 5 hardware threads and not in
///     OSC_BENCH_FAST mode): 4 workers must deliver >= 2.5x the
///     single-worker throughput.  The ratio is always printed and always
///     lands in the JSON, so constrained CI boxes still record it.
///
/// Usage: bench_pool [--json <path>]      (OSC_BENCH_FAST=1 for a smoke run)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "osc.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace osc;
using namespace osc::bench;

namespace {

struct Column {
  int Workers = 0;
  int Clients = 0;
  uint64_t Requests = 0;
  double Ms = 0;
  uint64_t IoParks = 0;
  uint64_t WordsCopied = 0;
  uint64_t Accepted = 0;
  std::vector<uint64_t> ShardWordsCopied; ///< Per worker — all must be 0.
  std::vector<uint64_t> ShardRequests;

  double requestsPerSec() const { return Ms > 0 ? Requests / (Ms / 1e3) : 0; }
};

/// One full round: every client sends, then every client reads.  All
/// clients' requests are in flight at once, spread across the shards.
void oneRound(std::vector<Client> &Cs, int Round) {
  const int Clients = static_cast<int>(Cs.size());
  for (int K = 0; K < Clients; ++K) {
    bool Ok = Cs[K].sendLine(K % 2 ? "PING"
                                   : "EVAL (+ " + std::to_string(K) + " " +
                                         std::to_string(Round) + ")");
    if (!Ok)
      oscFatal("bench_pool: send failed");
  }
  for (int K = 0; K < Clients; ++K) {
    std::string Reply;
    if (!Cs[K].recvLine(Reply))
      oscFatal("bench_pool: no reply");
    std::string Want = K % 2 ? "PONG" : std::to_string(K + Round);
    if (Reply != Want)
      oscFatal(
          ("bench_pool: bad reply: got " + Reply + " want " + Want).c_str());
  }
}

Column runColumn(int Workers, int Clients, int Rounds) {
  Pool::Options O;
  O.Workers = Workers;
  O.MaxInflight = Clients;
  Pool P(O);
  if (!P.start())
    oscFatal(("bench_pool: " + P.error().Message).c_str());

  std::vector<Client> Cs(Clients);
  std::string E;
  for (int K = 0; K < Clients; ++K)
    if (!Cs[K].connect(P.tcpPort(), E))
      oscFatal(("bench_pool: connect: " + E).c_str());

  oneRound(Cs, 0); // Warmup: every conn placed, spawned and parked once.
  auto T0 = std::chrono::steady_clock::now();
  for (int R = 1; R <= Rounds; ++R)
    oneRound(Cs, R);
  auto T1 = std::chrono::steady_clock::now();

  for (Client &C : Cs)
    C.close();
  P.stop();
  if (!P.error().ok())
    oscFatal(("bench_pool: pool error: " + P.error().Message).c_str());

  Column Col;
  Col.Workers = Workers;
  Col.Clients = Clients;
  Col.Requests = uint64_t(Rounds) * Clients; // Timed rounds only.
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Stats::Snapshot D = P.snapshot() - P.baseline();
  Col.IoParks = D.IoParks;
  Col.WordsCopied = D.WordsCopied;
  Col.Accepted = D.AcceptedConnections;
  for (int W = 0; W < Workers; ++W) {
    Stats::Snapshot S = P.snapshot(W) - P.baseline(W);
    Col.ShardWordsCopied.push_back(S.WordsCopied);
    Col.ShardRequests.push_back(S.RequestsServed);
  }
  return Col;
}

void writeJson(const std::string &Path, const std::vector<Column> &Cols,
               double Scaling, bool ScalingEnforced) {
  std::ofstream Out(Path);
  if (!Out.good())
    oscFatal(("bench_pool: cannot write " + Path).c_str());
  Out << "{\n  \"name\": \"bench_pool\",\n  \"scaling_4v1\": " << Scaling
      << ",\n  \"scaling_enforced\": " << (ScalingEnforced ? "true" : "false")
      << ",\n  \"columns\": [\n";
  for (size_t K = 0; K < Cols.size(); ++K) {
    const Column &C = Cols[K];
    // Columns are keyed by "name" in the regression gate: worker count
    // alone stopped being unique once the 256-client burst column joined
    // the three 64-client scaling columns.
    Out << "    {\n"
        << "      \"name\": \"w" << C.Workers << "-c" << C.Clients << "\",\n"
        << "      \"workers\": " << C.Workers << ",\n"
        << "      \"clients\": " << C.Clients << ",\n"
        << "      \"requests\": " << C.Requests << ",\n"
        << "      \"elapsed_ms\": " << C.Ms << ",\n"
        << "      \"requests_per_sec\": " << C.requestsPerSec() << ",\n"
        << "      \"io_parks\": " << C.IoParks << ",\n"
        << "      \"accepted\": " << C.Accepted << ",\n"
        << "      \"words_copied\": " << C.WordsCopied << ",\n"
        << "      \"shard_words_copied\": [";
    for (size_t W = 0; W < C.ShardWordsCopied.size(); ++W)
      Out << (W ? ", " : "") << C.ShardWordsCopied[W];
    Out << "],\n      \"shard_requests\": [";
    for (size_t W = 0; W < C.ShardRequests.size(); ++W)
      Out << (W ? ", " : "") << C.ShardRequests[W];
    Out << "]\n    }" << (K + 1 < Cols.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--json" && K + 1 < Argc)
      JsonPath = Argv[++K];
  }

  const int Rounds = fastMode() ? 5 : 100;
  const unsigned Cores = std::thread::hardware_concurrency();
  std::printf("Sharded pool: %d rounds per column, %u hardware thread(s).\n\n",
              Rounds, Cores);

  // Three 64-client columns measure shard scaling; the 4x256 column holds
  // the worker count fixed and quadruples the concurrent connections, so
  // it stresses admission and the handoff queues rather than throughput
  // (256 parked conn threads per run, most of them idle at any instant).
  std::vector<Column> Cols;
  for (int W : {1, 2, 4})
    Cols.push_back(runColumn(W, /*Clients=*/64, Rounds));
  Cols.push_back(runColumn(/*Workers=*/4, /*Clients=*/256, Rounds));

  std::printf("%8s %8s %10s %10s %12s %10s %14s\n", "workers", "clients",
              "requests", "ms", "req/s", "io-parks", "words-copied");
  for (const Column &C : Cols)
    std::printf("%8d %8d %10llu %10.1f %12.0f %10llu %14llu\n", C.Workers,
                C.Clients, static_cast<unsigned long long>(C.Requests), C.Ms,
                C.requestsPerSec(), static_cast<unsigned long long>(C.IoParks),
                static_cast<unsigned long long>(C.WordsCopied));

  // Per-shard zero-copy: the paper's invariant must hold on every worker
  // of every column, not just in aggregate.
  for (const Column &C : Cols)
    for (size_t W = 0; W < C.ShardWordsCopied.size(); ++W)
      if (C.ShardWordsCopied[W] != 0)
        oscFatal(("bench_pool: worker " + std::to_string(W) + " of the " +
                  std::to_string(C.Workers) +
                  "-worker column copied stack words while serving")
                     .c_str());

  double Scaling = Cols[0].requestsPerSec() > 0
                       ? Cols[2].requestsPerSec() / Cols[0].requestsPerSec()
                       : 0;
  // The scaling assertion needs real parallelism: 4 worker threads + the
  // acceptor need at least 5 hardware threads to run concurrently, and
  // fast mode's few rounds are all warmup noise.
  const bool EnforceScaling = Cores >= 5 && !fastMode();
  std::printf("\n4-worker vs 1-worker throughput: %.2fx (%s)\n", Scaling,
              EnforceScaling ? "enforced: must be >= 2.5"
                             : "informational on this machine");
  if (EnforceScaling && Scaling < 2.5)
    oscFatal("bench_pool: 4 workers delivered < 2.5x the single-worker "
             "throughput; sharding has regressed");

  std::printf("Check passed: every shard of every column served with 0 "
              "stack words copied.\n");
  if (!JsonPath.empty()) {
    writeJson(JsonPath, Cols, Scaling, EnforceScaling);
    std::printf("Wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
