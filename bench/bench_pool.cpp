//===----------------------------------------------------------------------===//
///
/// \file
/// The sharded-pool benchmark: the same PING/EVAL traffic as bench_serve,
/// but served by Pool with 1, 2 and 4 workers over both accept paths.
/// Each worker is a whole Interp + Reactor on its own OS thread, so
/// throughput should scale near-linearly with the shard count — while the
/// paper's invariant holds on every shard independently: zero stack words
/// copied per steady-state park.
///
/// Columns:
///
///   * reuseport w1/w2/w4 at 64 clients — the scaling series on the
///     default accept path (every shard owns a SO_REUSEPORT listener and
///     accepts in-shard, no cross-thread handoff);
///   * reuseport w4 at 256 clients — admission burst, worker count fixed;
///   * central w1/w4 at 64 clients — the fallback path (one acceptor
///     thread batching fds into per-shard MPSC queues), kept measured so
///     a regression in either path is visible against the other.
///
/// Two checks gate the run:
///
///   * per-shard zero-copy (always enforced): no worker in any column may
///     copy a single stack word while serving;
///   * scaling (policy: always >= 2.5x, measurable only with >= 5
///     hardware threads and not in OSC_BENCH_FAST mode): 4 reuseport
///     workers must deliver >= 2.5x the single-worker throughput.  The
///     ratio is always printed and always lands in the JSON with a
///     "scaling_measurable" capability flag, so constrained CI boxes
///     still record it and the gate knows not to trust it there.
///
/// Usage: bench_pool [--json <path>]      (OSC_BENCH_FAST=1 for a smoke run)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "osc.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace osc;
using namespace osc::bench;

namespace {

struct Column {
  ListenMode Mode = ListenMode::ReusePort;
  int Workers = 0;
  int Clients = 0;
  uint64_t Requests = 0;
  double Ms = 0;
  uint64_t IoParks = 0;
  uint64_t WordsCopied = 0;
  uint64_t Accepted = 0;
  uint64_t AcceptBatches = 0;
  std::vector<uint64_t> ShardWordsCopied; ///< Per worker — all must be 0.
  std::vector<uint64_t> ShardRequests;

  double requestsPerSec() const { return Ms > 0 ? Requests / (Ms / 1e3) : 0; }
  std::string name() const {
    return "w" + std::to_string(Workers) + "-c" + std::to_string(Clients) +
           "-" + listenModeName(Mode);
  }
};

/// One full round: every client sends, then every client reads.  All
/// clients' requests are in flight at once, spread across the shards.
void oneRound(std::vector<Client> &Cs, int Round) {
  const int Clients = static_cast<int>(Cs.size());
  for (int K = 0; K < Clients; ++K) {
    bool Ok = Cs[K].sendLine(K % 2 ? "PING"
                                   : "EVAL (+ " + std::to_string(K) + " " +
                                         std::to_string(Round) + ")");
    if (!Ok)
      oscFatal("bench_pool: send failed");
  }
  for (int K = 0; K < Clients; ++K) {
    std::string Reply;
    if (!Cs[K].recvLine(Reply))
      oscFatal("bench_pool: no reply");
    std::string Want = K % 2 ? "PONG" : std::to_string(K + Round);
    if (Reply != Want)
      oscFatal(
          ("bench_pool: bad reply: got " + Reply + " want " + Want).c_str());
  }
}

Column runColumn(ListenMode Mode, int Workers, int Clients, int Rounds) {
  ServeOptions O;
  O.Mode = Mode;
  O.Workers = Workers;
  O.MaxInflight = Clients;
  Pool P(O);
  if (!P.start())
    oscFatal(("bench_pool: " + P.error().Message).c_str());
  if (P.listenMode() != Mode)
    oscFatal(("bench_pool: requested " + std::string(listenModeName(Mode)) +
              " but pool fell back to " +
              std::string(listenModeName(P.listenMode())))
                 .c_str());

  std::vector<Client> Cs(Clients);
  std::string E;
  for (int K = 0; K < Clients; ++K)
    if (!Cs[K].connect(P.tcpPort(), E))
      oscFatal(("bench_pool: connect: " + E).c_str());

  oneRound(Cs, 0); // Warmup: every conn placed, spawned and parked once.
  auto T0 = std::chrono::steady_clock::now();
  for (int R = 1; R <= Rounds; ++R)
    oneRound(Cs, R);
  auto T1 = std::chrono::steady_clock::now();

  for (Client &C : Cs)
    C.close();
  P.stop();
  if (!P.error().ok())
    oscFatal(("bench_pool: pool error: " + P.error().Message).c_str());

  Column Col;
  Col.Mode = Mode;
  Col.Workers = Workers;
  Col.Clients = Clients;
  Col.Requests = uint64_t(Rounds) * Clients; // Timed rounds only.
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Stats::Snapshot D = P.snapshot() - P.baseline();
  Col.IoParks = D.IoParks;
  Col.WordsCopied = D.WordsCopied;
  Col.Accepted = D.AcceptedConnections;
  Col.AcceptBatches = D.AcceptBatches;
  for (int W = 0; W < Workers; ++W) {
    Stats::Snapshot S = P.snapshot(W) - P.baseline(W);
    Col.ShardWordsCopied.push_back(S.WordsCopied);
    Col.ShardRequests.push_back(S.RequestsServed);
  }
  return Col;
}

void writeJson(const std::string &Path, const std::vector<Column> &Cols,
               double Scaling, double ScalingCentral, bool Measurable,
               unsigned Cores) {
  std::ofstream Out(Path);
  if (!Out.good())
    oscFatal(("bench_pool: cannot write " + Path).c_str());
  // Policy vs capability: scaling_enforced + scaling_min state the
  // standing requirement (4 reuseport workers >= 2.5x one), while
  // scaling_measurable records whether *this* host could test it
  // (>= 5 hardware threads, not a fast-mode smoke).  The gate fails a
  // measurable run below the floor and merely records the ratio
  // elsewhere — dropping the policy on a small box would read as
  // "nothing to enforce".
  Out << "{\n  \"name\": \"bench_pool\",\n"
      << "  \"cores\": " << Cores << ",\n"
      << "  \"scaling_4v1\": " << Scaling << ",\n"
      << "  \"scaling_4v1_central\": " << ScalingCentral << ",\n"
      << "  \"scaling_min\": 2.5,\n"
      << "  \"scaling_enforced\": true,\n"
      << "  \"scaling_measurable\": " << (Measurable ? "true" : "false")
      << ",\n"
      << "  \"hard_eq\": [\"listen_mode\"],\n"
      << "  \"columns\": [\n";
  for (size_t K = 0; K < Cols.size(); ++K) {
    const Column &C = Cols[K];
    // Columns are keyed by "name" in the regression gate; the name folds
    // in workers, clients and the accept path, each of which changes
    // what the numbers mean.
    Out << "    {\n"
        << "      \"name\": \"" << C.name() << "\",\n"
        << "      \"listen_mode\": \"" << listenModeName(C.Mode) << "\",\n"
        << "      \"workers\": " << C.Workers << ",\n"
        << "      \"clients\": " << C.Clients << ",\n"
        << "      \"requests\": " << C.Requests << ",\n"
        << "      \"elapsed_ms\": " << C.Ms << ",\n"
        << "      \"requests_per_sec\": " << C.requestsPerSec() << ",\n"
        << "      \"io_parks\": " << C.IoParks << ",\n"
        << "      \"accepted\": " << C.Accepted << ",\n"
        << "      \"accept_batches\": " << C.AcceptBatches << ",\n"
        << "      \"words_copied\": " << C.WordsCopied << ",\n"
        << "      \"shard_words_copied\": [";
    for (size_t W = 0; W < C.ShardWordsCopied.size(); ++W)
      Out << (W ? ", " : "") << C.ShardWordsCopied[W];
    Out << "],\n      \"shard_requests\": [";
    for (size_t W = 0; W < C.ShardRequests.size(); ++W)
      Out << (W ? ", " : "") << C.ShardRequests[W];
    Out << "]\n    }" << (K + 1 < Cols.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--json" && K + 1 < Argc)
      JsonPath = Argv[++K];
  }

  const int Rounds = fastMode() ? 5 : 100;
  const unsigned Cores = std::thread::hardware_concurrency();
  std::printf("Sharded pool: %d rounds per column, %u hardware thread(s).\n\n",
              Rounds, Cores);

  // The reuseport 64-client series measures shard scaling on the default
  // accept path; the 4x256 column holds the worker count fixed and
  // quadruples the concurrent connections, stressing admission rather
  // than throughput.  The central columns measure the fallback path's
  // acceptor + handoff overhead at both ends of the worker range.
  std::vector<Column> Cols;
  for (int W : {1, 2, 4})
    Cols.push_back(runColumn(ListenMode::ReusePort, W, /*Clients=*/64, Rounds));
  Cols.push_back(
      runColumn(ListenMode::ReusePort, /*Workers=*/4, /*Clients=*/256, Rounds));
  for (int W : {1, 4})
    Cols.push_back(
        runColumn(ListenMode::CentralAcceptor, W, /*Clients=*/64, Rounds));

  std::printf("%18s %8s %10s %10s %12s %10s %10s %14s\n", "column", "clients",
              "requests", "ms", "req/s", "io-parks", "batches",
              "words-copied");
  for (const Column &C : Cols)
    std::printf("%18s %8d %10llu %10.1f %12.0f %10llu %10llu %14llu\n",
                C.name().c_str(), C.Clients,
                static_cast<unsigned long long>(C.Requests), C.Ms,
                C.requestsPerSec(), static_cast<unsigned long long>(C.IoParks),
                static_cast<unsigned long long>(C.AcceptBatches),
                static_cast<unsigned long long>(C.WordsCopied));

  // Per-shard zero-copy: the paper's invariant must hold on every worker
  // of every column, not just in aggregate.
  for (const Column &C : Cols)
    for (size_t W = 0; W < C.ShardWordsCopied.size(); ++W)
      if (C.ShardWordsCopied[W] != 0)
        oscFatal(("bench_pool: worker " + std::to_string(W) + " of column " +
                  C.name() + " copied stack words while serving")
                     .c_str());

  double Scaling = Cols[0].requestsPerSec() > 0
                       ? Cols[2].requestsPerSec() / Cols[0].requestsPerSec()
                       : 0;
  double ScalingCentral = Cols[4].requestsPerSec() > 0
                              ? Cols[5].requestsPerSec() / Cols[4].requestsPerSec()
                              : 0;
  // The policy (>= 2.5x) stands everywhere; the measurement needs real
  // parallelism — 4 worker threads plus the client thread — and fast
  // mode's few rounds are all warmup noise.  On smaller hosts the ratio
  // is recorded as informational and the JSON says so.
  const bool Measurable = Cores >= 5 && !fastMode();
  std::printf("\n4-worker vs 1-worker throughput: reuseport %.2fx, "
              "central %.2fx (floor 2.5x, %s)\n",
              Scaling, ScalingCentral,
              Measurable ? "measurable on this host"
                         : "not measurable on this host");
  if (Measurable && Scaling < 2.5)
    oscFatal("bench_pool: 4 reuseport workers delivered < 2.5x the "
             "single-worker throughput; sharding has regressed");

  std::printf("Check passed: every shard of every column served with 0 "
              "stack words copied.\n");
  if (!JsonPath.empty()) {
    writeJson(JsonPath, Cols, Scaling, ScalingCentral, Measurable, Cores);
    std::printf("Wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
