//===----------------------------------------------------------------------===//
///
/// \file
/// The serving-layer benchmark: the continuation-per-request eval server
/// under 64 concurrent in-flight requests, one-shot switching against the
/// multi-shot baseline shim (Config::SchedOneShotSwitch = false).
///
/// Every request thread parks at least once (reading the request line) and
/// usually twice (writing the reply); the claim carried up from the paper
/// is that with one-shot switching each of those parks resumes with ZERO
/// stack words copied, while the shimmed baseline pays a stack copy per
/// park.  The harness aborts if either side of the comparison fails:
///
///   * one-shot column: WordsCopied must not move at all during serving;
///   * baseline column: WordsCopied must grow, or the shim is not shimming.
///
/// It also asserts the server actually sustained >= 64 concurrent parked
/// requests (IoWaitPeak), so the throughput number is measuring real
/// concurrency and not a serialized accident.
///
/// Usage: bench_serve [--json <path>]     (OSC_BENCH_FAST=1 for a smoke run)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "osc.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace osc;
using namespace osc::bench;

namespace {

constexpr int Clients = 64;

struct Column {
  const char *Name = "";
  bool OneShot = true;
  uint64_t Requests = 0;
  double Ms = 0;
  uint64_t IoParks = 0;
  uint64_t IoWakes = 0;
  uint64_t IoWaitPeak = 0;
  uint64_t WordsCopied = 0;
  uint64_t Accepted = 0;

  double requestsPerSec() const { return Ms > 0 ? Requests / (Ms / 1e3) : 0; }
  double wordsPerRequest() const {
    return Requests ? double(WordsCopied) / Requests : 0;
  }
};

/// One full round: every client sends, then every client reads its reply.
/// All `Clients` requests are in flight simultaneously between the two
/// loops, which is what pushes IoWaitPeak to the client count.
void oneRound(std::vector<Client> &Cs, int Round) {
  for (int K = 0; K < Clients; ++K) {
    bool Ok = Cs[K].sendLine(K % 2 ? "PING"
                                   : "EVAL (+ " + std::to_string(K) + " " +
                                         std::to_string(Round) + ")");
    if (!Ok)
      oscFatal("bench_serve: send failed");
  }
  for (int K = 0; K < Clients; ++K) {
    std::string Reply;
    if (!Cs[K].recvLine(Reply))
      oscFatal("bench_serve: no reply");
    std::string Want = K % 2 ? "PONG" : std::to_string(K + Round);
    if (Reply != Want)
      oscFatal(("bench_serve: bad reply: got " + Reply + " want " + Want)
                   .c_str());
  }
}

Column runColumn(const char *Name, bool OneShot, int Rounds) {
  ServeOptions O;
  O.MaxInflight = Clients;
  O.VmCfg.SchedOneShotSwitch = OneShot;
  Server S(O);
  if (!S.start())
    oscFatal(("bench_serve: " + S.error().Message).c_str());

  std::vector<Client> Cs(Clients);
  std::string E;
  for (int K = 0; K < Clients; ++K)
    if (!Cs[K].connect(S.tcpPort(), E))
      oscFatal(("bench_serve: connect: " + E).c_str());

  oneRound(Cs, 0); // Warmup: all spawns and first parks behind us.
  auto T0 = std::chrono::steady_clock::now();
  for (int R = 1; R <= Rounds; ++R)
    oneRound(Cs, R);
  auto T1 = std::chrono::steady_clock::now();

  for (Client &C : Cs)
    C.close();
  S.stop();
  if (!S.result().Ok)
    oscFatal(("bench_serve: server error: " + S.result().Error).c_str());

  Stats::Snapshot St = S.snapshot();
  const Stats::Snapshot &B = S.baseline();
  Column Col;
  Col.Name = Name;
  Col.OneShot = OneShot;
  Col.Requests = uint64_t(Rounds) * Clients;
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Col.IoParks = St.IoParks - B.IoParks;
  Col.IoWakes = St.IoWakes - B.IoWakes;
  Col.IoWaitPeak = St.IoWaitPeak;
  Col.WordsCopied = St.WordsCopied - B.WordsCopied;
  Col.Accepted = St.AcceptedConnections - B.AcceptedConnections;
  return Col;
}

void writeJson(const std::string &Path, const std::vector<Column> &Cols) {
  std::ofstream Out(Path);
  if (!Out.good())
    oscFatal(("bench_serve: cannot write " + Path).c_str());
  Out << "{\n  \"name\": \"bench_serve\",\n  \"clients\": " << Clients
      << ",\n  \"columns\": [\n";
  for (size_t K = 0; K < Cols.size(); ++K) {
    const Column &C = Cols[K];
    Out << "    {\n"
        << "      \"name\": \"" << C.Name << "\",\n"
        << "      \"one_shot\": " << (C.OneShot ? "true" : "false") << ",\n"
        << "      \"requests\": " << C.Requests << ",\n"
        << "      \"elapsed_ms\": " << C.Ms << ",\n"
        << "      \"requests_per_sec\": " << C.requestsPerSec() << ",\n"
        << "      \"io_parks\": " << C.IoParks << ",\n"
        << "      \"io_wakes\": " << C.IoWakes << ",\n"
        << "      \"io_wait_peak\": " << C.IoWaitPeak << ",\n"
        << "      \"words_copied\": " << C.WordsCopied << ",\n"
        << "      \"words_per_request\": " << C.wordsPerRequest() << "\n"
        << "    }" << (K + 1 < Cols.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--json" && K + 1 < Argc)
      JsonPath = Argv[++K];
  }

  const int Rounds = fastMode() ? 5 : 100;
  std::printf("Eval server: %d clients, %d rounds, all requests in flight "
              "between send and read.\n\n",
              Clients, Rounds);

  std::vector<Column> Cols;
  Cols.push_back(runColumn("one-shot", /*OneShot=*/true, Rounds));
  Cols.push_back(runColumn("multi-shot-shim", /*OneShot=*/false, Rounds));

  std::printf("%-16s %10s %10s %12s %10s %12s %14s\n", "column", "requests",
              "ms", "req/s", "io-parks", "wait-peak", "words/request");
  for (const Column &C : Cols)
    std::printf("%-16s %10llu %10.1f %12.0f %10llu %12llu %14.2f\n", C.Name,
                static_cast<unsigned long long>(C.Requests), C.Ms,
                C.requestsPerSec(),
                static_cast<unsigned long long>(C.IoParks),
                static_cast<unsigned long long>(C.IoWaitPeak),
                C.wordsPerRequest());

  const Column &One = Cols[0], &Shim = Cols[1];
  if (One.IoWaitPeak < Clients)
    oscFatal("bench_serve: never reached 64 concurrent parked requests; the "
             "workload is not exercising concurrency");
  if (One.WordsCopied != 0)
    oscFatal("bench_serve: one-shot serving copied stack words; the "
             "park/resume path has regressed");
  if (Shim.WordsCopied == 0)
    oscFatal("bench_serve: the multi-shot shim copied nothing; the baseline "
             "is not exercising multi-shot resumption");
  if (One.IoParks != One.IoWakes)
    oscFatal("bench_serve: unbalanced parks/wakes");

  std::printf("\nCheck passed: %llu one-shot parks copied 0 words; the "
              "multi-shot shim paid %.2f words per request.\n",
              static_cast<unsigned long long>(One.IoParks),
              Shim.wordsPerRequest());
  if (!JsonPath.empty()) {
    writeJson(JsonPath, Cols);
    std::printf("Wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
