//===----------------------------------------------------------------------===//
///
/// \file
/// The delimited-control benchmark: two workloads on the capture-to-mark
/// path, each measured once one-shot (Config::DelimOneShot, the default)
/// and once on the copying shim (DelimOneShot=false: reset marks are
/// captured multi-shot, so every slice member must be deep-cloned before
/// its link can be rewritten).
///
///   * generator — values pumped through (yield v) / (generator-next g);
///   * handler   — (perform 'bench 'tick i) dispatched from a deep call
///     chain to a (with-handler ...) clause that immediately resumes:
///     the effect-handler steady state of a request loop.
///
/// The claim checked with exact counters, not timings: a steady-state
/// yield/next or perform/resume round trip on the one-shot path copies
/// ZERO stack words — the cut relinks continuation headers up to the
/// delimiter's mark and the splice is a single link store.  The harness
/// aborts if WordsCopied moves at all during the one-shot runs, and also
/// aborts if a shim column does NOT copy (a shim that stopped copying
/// would make the comparison vacuous).
///
/// Usage: bench_control [--json <path>]   (OSC_BENCH_FAST=1 for a smoke run)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace osc;
using namespace osc::bench;

namespace {

/// A generator whose extent is a few frames deep, so each yield's slice
/// has real substance (deep enough that a copying implementation pays,
/// shallow enough to model a streaming producer's steady state).
const char *Setup =
    "(define (pump depth)"
    "  (make-generator"
    "   (lambda (v)"
    "     (define (deep n i)"
    "       (if (zero? n) (yield i) (+ 1 (deep (- n 1) i))))"
    "     (let loop ((i 0))"
    "       (deep depth i)"
    "       (loop (+ i 1))))))"
    "(define (drain g n)"
    "  (let loop ((k 0) (acc 0))"
    "    (if (= k n) acc (loop (+ k 1) (+ acc (generator-next g 0))))))";

struct Column {
  std::string Name;
  std::string Op = "yield"; ///< "yield" or "perform": names the JSON keys.
  bool OneShot = true;
  uint64_t Ops = 0;
  double Ms = 0;
  uint64_t WordsCopied = 0;      ///< Steady-state total (post-warmup).
  uint64_t SliceClonedWords = 0; ///< Subset of WordsCopied due to cloning.
  uint64_t SliceCaptures = 0;
  uint64_t SliceSplices = 0;

  double wordsPerOp() const {
    return Ops ? double(WordsCopied) / double(Ops) : 0;
  }
};

Column runColumn(bool OneShot, int Depth, int Yields) {
  Config C;
  C.DelimOneShot = OneShot;
  Interp I(C);
  mustEval(I, Setup);
  mustEval(I, "(define g (pump " + std::to_string(Depth) + "))"
              "(drain g 3)"); // Warmup: segments grown, stub frames planted.

  Stats::Snapshot S0 = I.snapshot();
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(drain g " + std::to_string(Yields) + ")");
  auto T1 = std::chrono::steady_clock::now();
  Stats::Snapshot D = I.snapshot() - S0;

  Column Col;
  Col.Name = OneShot ? "generator-oneshot" : "generator-copying-shim";
  Col.Op = "yield";
  Col.OneShot = OneShot;
  Col.Ops = uint64_t(Yields);
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Col.WordsCopied = D.WordsCopied;
  Col.SliceClonedWords = D.SliceClonedWords;
  Col.SliceCaptures = D.SliceCaptures;
  Col.SliceSplices = D.SliceSplices;
  return Col;
}

/// The effect-handler steady state: a resuming clause, performs arriving
/// from \p Depth frames below the delimiter.  Each perform cuts the slice
/// to the handler's mark and each resume splices it back — the exact
/// request-loop shape the serving layer runs.
const char *HandlerSetup =
    "(define (deep-perform n i)"
    "  (if (zero? n)"
    "      (perform 'bench 'tick i)"
    "      (+ 1 (deep-perform (- n 1) i))))"
    "(define (burst depth n)"
    "  (with-handler 'bench ((tick k a) (k a))"
    "    (let loop ((i 0) (acc 0))"
    "      (if (= i n) acc"
    "          (loop (+ i 1) (+ acc (deep-perform depth i)))))))";

Column runHandlerColumn(bool OneShot, int Depth, int Performs) {
  Config C;
  C.DelimOneShot = OneShot;
  Interp I(C);
  mustEval(I, HandlerSetup);
  mustEval(I, "(burst " + std::to_string(Depth) + " 3)"); // Warmup.

  Stats::Snapshot S0 = I.snapshot();
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(burst " + std::to_string(Depth) + " " +
              std::to_string(Performs) + ")");
  auto T1 = std::chrono::steady_clock::now();
  Stats::Snapshot D = I.snapshot() - S0;

  if (D.Performs != uint64_t(Performs))
    oscFatal("bench_control: the handler column did not perform the "
             "requested number of operations; the workload drifted");

  Column Col;
  Col.Name = OneShot ? "handler-oneshot" : "handler-copying-shim";
  Col.Op = "perform";
  Col.OneShot = OneShot;
  Col.Ops = uint64_t(Performs);
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Col.WordsCopied = D.WordsCopied;
  Col.SliceClonedWords = D.SliceClonedWords;
  Col.SliceCaptures = D.SliceCaptures;
  Col.SliceSplices = D.SliceSplices;
  return Col;
}

void writeJson(const std::string &Path, const std::vector<Column> &Cols) {
  std::ofstream Out(Path);
  if (!Out.good())
    oscFatal(("bench_control: cannot write " + Path).c_str());
  Out << "{\n  \"name\": \"bench_control\",\n  \"columns\": [\n";
  for (size_t K = 0; K < Cols.size(); ++K) {
    const Column &C = Cols[K];
    Out << "    {\n"
        << "      \"name\": \"" << C.Name << "\",\n"
        << "      \"one_shot\": " << (C.OneShot ? "true" : "false") << ",\n"
        << "      \"" << C.Op << "s\": " << C.Ops << ",\n"
        << "      \"elapsed_ms\": " << C.Ms << ",\n"
        << "      \"words_copied\": " << C.WordsCopied << ",\n"
        << "      \"words_copied_per_" << C.Op << "\": " << C.wordsPerOp()
        << ",\n"
        << "      \"slice_cloned_words\": " << C.SliceClonedWords << ",\n"
        << "      \"slice_captures\": " << C.SliceCaptures << ",\n"
        << "      \"slice_splices\": " << C.SliceSplices << "\n    }"
        << (K + 1 < Cols.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--json" && K + 1 < Argc)
      JsonPath = Argv[++K];
  }

  const int Depth = 24;
  const int Ops = fastMode() ? 2000 : 100000;
  std::printf("Delimited control: %d yields through a depth-%d generator, "
              "%d performs from depth %d under a resuming handler.\n\n",
              Ops, Depth, Ops, Depth);

  std::vector<Column> Cols;
  Cols.push_back(runColumn(/*OneShot=*/true, Depth, Ops));
  Cols.push_back(runColumn(/*OneShot=*/false, Depth, Ops));
  Cols.push_back(runHandlerColumn(/*OneShot=*/true, Depth, Ops));
  Cols.push_back(runHandlerColumn(/*OneShot=*/false, Depth, Ops));

  std::printf("%24s %10s %10s %14s %12s\n", "column", "ops", "ms",
              "words-copied", "words/op");
  for (const Column &C : Cols)
    std::printf("%24s %10llu %10.1f %14llu %12.2f\n", C.Name.c_str(),
                static_cast<unsigned long long>(C.Ops), C.Ms,
                static_cast<unsigned long long>(C.WordsCopied),
                C.wordsPerOp());

  // The paper's invariant, delimited edition: zero words copied per yield
  // and per perform/resume in the one-shot steady state — and the
  // contrast must be real: each shim column exists to show what the
  // one-shot representation saves.
  for (const Column &C : Cols) {
    if (C.OneShot && C.WordsCopied != 0)
      oscFatal(("bench_control: the " + C.Name +
                " column copied stack words; the capture-to-mark path has "
                "regressed to copying")
                   .c_str());
    if (!C.OneShot && C.WordsCopied == 0)
      oscFatal(("bench_control: the " + C.Name +
                " column copied nothing; the comparison is measuring two "
                "identical paths")
                   .c_str());
  }

  std::printf("\nCheck passed: one-shot yields and performs copied 0 stack "
              "words (shim paid %.2f words/yield, %.2f words/perform).\n",
              Cols[1].wordsPerOp(), Cols[3].wordsPerOp());
  if (!JsonPath.empty()) {
    writeJson(JsonPath, Cols);
    std::printf("Wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
