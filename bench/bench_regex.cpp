//===----------------------------------------------------------------------===//
///
/// \file
/// The regex-engine benchmark: three workloads on the bytecode Pike VM
/// (src/regex), all gated on exact counters rather than timings.
///
///   * search-throughput — whole-string regex-search over a synthetic log
///     corpus: raw scanning rate, no continuations involved;
///   * stream — chunked matching through a producer/consumer pair of
///     green threads rendezvousing on a channel, so every chunk handoff
///     is a scheduler park.  Measured once with one-shot switching (the
///     default) and once on the SchedOneShotSwitch=false copying shim:
///     steady-state streaming parks must copy ZERO stack words one-shot,
///     and a strictly positive count on the shim keeps the contrast real;
///   * pathological — the classic (a?)^n a^n against a^n, exponential
///     under backtracking.  The thread-list executor's machine-checkable
///     linearity bound is Steps <= (bytes+1) * instructions; the harness
///     aborts the moment any run exceeds it, a wall-clock-free proof that
///     the engine cannot blow up.
///
/// Usage: bench_regex [--json <path>]   (OSC_BENCH_FAST=1 for a smoke run)
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace osc;
using namespace osc::bench;

namespace {

struct Column {
  std::string Name;
  bool OneShot = true;
  uint64_t Bytes = 0;
  uint64_t Chunks = 0;    ///< Stream columns: chunk handoffs (parks).
  uint64_t N = 0;         ///< Pathological columns: the n in (a?)^n a^n.
  uint64_t Steps = 0;     ///< Executor visits (Stats::RegexSteps).
  uint64_t StepsBound = 0;///< (bytes+1) * instructions, 0 when untracked.
  double Ms = 0;
  uint64_t WordsCopied = 0;

  double mbPerSec() const {
    return Ms > 0 ? double(Bytes) / 1e6 / (Ms / 1e3) : 0;
  }
};

/// A log-like corpus.  The throughput pattern never matches it, so every
/// search scans end to end — otherwise leftmost-match semantics would
/// stop the scan at the first hit and the column would measure a prefix.
std::string corpus(size_t Lines) {
  std::string Text;
  Text.reserve(Lines * 48);
  for (size_t K = 0; K < Lines; ++K) {
    Text += "tick ";
    Text += std::to_string(K * 7919 % 100000);
    Text += (K % 17 == 0) ? " GET /idx status=200 " : " put cache=warm ";
  }
  return Text;
}

Column runThroughput(int Execs, const std::string &Text) {
  Interp I;
  mustEval(I, "(define re (regex-compile \"status=5[0-9][0-9]\"))"
              "(define text \"" + Text + "\")");
  mustEval(I, "(regex-search re text)"); // Warmup.

  Stats::Snapshot S0 = I.snapshot();
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(let loop ((k 0) (r #f))"
              "  (if (= k " + std::to_string(Execs) + ") r"
              "      (loop (+ k 1) (regex-search re text))))");
  auto T1 = std::chrono::steady_clock::now();
  Stats::Snapshot D = I.snapshot() - S0;

  Column Col;
  Col.Name = "search-throughput";
  Col.Bytes = D.RegexBytesScanned;
  Col.Steps = D.RegexSteps;
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Col.WordsCopied = D.WordsCopied;
  return Col;
}

/// The streaming shape: a producer green thread hands chunks to a
/// consumer over a rendezvous channel; the consumer feeds the incremental
/// matcher.  Every handoff parks both sides, so the run is dominated by
/// scheduler switches — exactly what the one-shot representation makes
/// copy-free.
Column runStream(bool OneShot, int Chunks, int ChunkBytes) {
  Config C;
  C.SchedOneShotSwitch = OneShot;
  Interp I(C);
  std::string Chunk(static_cast<size_t>(ChunkBytes), 'x');
  mustEval(I, "(define re (regex-compile \"zz9q\"))" // absent from traffic
              "(define ch (make-channel 0))"
              "(define chunk \"" + Chunk + "\")"
              "(define st #f)"
              "(define (stream-run n)"
              "  (set! st (regex-stream re))"
              "  (spawn (lambda ()"
              "    (let loop ((k 0))"
              "      (if (< k n)"
              "          (begin (channel-send! ch chunk) (loop (+ k 1)))))))"
              "  (spawn (lambda ()"
              "    (let loop ((k 0))"
              "      (if (< k n)"
              "          (begin (regex-stream-feed! st (channel-recv ch))"
              "                 (loop (+ k 1)))))))"
              "  (scheduler-run))");
  mustEval(I, "(stream-run 4)"); // Warmup: segments grown, stubs planted.

  Stats::Snapshot S0 = I.snapshot();
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(stream-run " + std::to_string(Chunks) + ")");
  auto T1 = std::chrono::steady_clock::now();
  Stats::Snapshot D = I.snapshot() - S0;

  if (D.RegexStreamFeeds != uint64_t(Chunks))
    oscFatal("bench_regex: the stream column did not feed the requested "
             "number of chunks; the workload drifted");

  Column Col;
  Col.Name = OneShot ? "stream-oneshot" : "stream-copying-shim";
  Col.OneShot = OneShot;
  Col.Bytes = D.RegexBytesScanned;
  Col.Chunks = uint64_t(Chunks);
  Col.Steps = D.RegexSteps;
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Col.WordsCopied = D.WordsCopied;
  return Col;
}

Column runPathological(int N) {
  Interp I;
  std::string Pat, Text(static_cast<size_t>(N), 'a');
  for (int K = 0; K < N; ++K)
    Pat += "a?";
  Pat += Text;
  mustEval(I, "(define re (regex-compile \"" + Pat + "\"))"
              "(define text \"" + Text + "\")");
  uint64_t NInstrs = static_cast<uint64_t>(
      mustEval(I, "(regex-program-size re)").asFixnum());

  Stats::Snapshot S0 = I.snapshot();
  auto T0 = std::chrono::steady_clock::now();
  mustEval(I, "(if (regex-match re text) 'hit 'miss)");
  auto T1 = std::chrono::steady_clock::now();
  Stats::Snapshot D = I.snapshot() - S0;

  Column Col;
  Col.Name = "pathological-n" + std::to_string(N);
  Col.N = uint64_t(N);
  Col.Bytes = uint64_t(N);
  Col.Steps = D.RegexSteps;
  Col.StepsBound = (uint64_t(N) + 1) * NInstrs;
  Col.Ms = std::chrono::duration<double>(T1 - T0).count() * 1e3;
  Col.WordsCopied = D.WordsCopied;
  if (Col.Steps > Col.StepsBound)
    oscFatal(("bench_regex: " + Col.Name + " exceeded the linearity bound "
              "(steps > (bytes+1)*instructions) — the executor has "
              "regressed to blowup territory")
                 .c_str());
  return Col;
}

void writeJson(const std::string &Path, const std::vector<Column> &Cols) {
  std::ofstream Out(Path);
  if (!Out.good())
    oscFatal(("bench_regex: cannot write " + Path).c_str());
  // words_copied rides the gate's per-baseline hard_eq list: on one-shot
  // columns it must be EXACTLY baseline (i.e. zero), not merely "no
  // worse" — a decrease would mean the column stopped measuring parks.
  Out << "{\n  \"name\": \"bench_regex\",\n"
      << "  \"hard_eq\": [\"words_copied\"],\n  \"columns\": [\n";
  for (size_t K = 0; K < Cols.size(); ++K) {
    const Column &C = Cols[K];
    Out << "    {\n"
        << "      \"name\": \"" << C.Name << "\",\n"
        << "      \"one_shot\": " << (C.OneShot ? "true" : "false") << ",\n"
        << "      \"bytes\": " << C.Bytes << ",\n";
    if (C.Chunks)
      Out << "      \"chunks\": " << C.Chunks << ",\n";
    if (C.N)
      Out << "      \"n\": " << C.N << ",\n";
    Out << "      \"steps\": " << C.Steps << ",\n";
    if (C.StepsBound)
      Out << "      \"steps_bound\": " << C.StepsBound << ",\n";
    Out << "      \"elapsed_ms\": " << C.Ms << ",\n"
        << "      \"mbytes_per_sec\": " << C.mbPerSec() << ",\n"
        << "      \"words_copied\": " << C.WordsCopied << "\n    }"
        << (K + 1 < Cols.size() ? "," : "") << "\n";
  }
  Out << "  ]\n}\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int K = 1; K < Argc; ++K) {
    std::string A = Argv[K];
    if (A == "--json" && K + 1 < Argc)
      JsonPath = Argv[++K];
  }

  const bool Fast = fastMode();
  const int Execs = Fast ? 20 : 400;
  const int Chunks = Fast ? 500 : 20000;
  const int ChunkBytes = 64;
  const std::string Text = corpus(Fast ? 200 : 2000);

  std::printf("Regex engine: %d searches over a %zu-byte corpus, %d "
              "chunked feeds through parked green threads, and the "
              "(a?)^n a^n family under the linearity bound.\n\n",
              Execs, Text.size(), Chunks);

  std::vector<Column> Cols;
  Cols.push_back(runThroughput(Execs, Text));
  Cols.push_back(runStream(/*OneShot=*/true, Chunks, ChunkBytes));
  Cols.push_back(runStream(/*OneShot=*/false, Chunks, ChunkBytes));
  for (int N : {8, 16, 32})
    Cols.push_back(runPathological(N));

  std::printf("%24s %12s %12s %10s %14s %10s\n", "column", "bytes", "steps",
              "ms", "words-copied", "MB/s");
  for (const Column &C : Cols)
    std::printf("%24s %12llu %12llu %10.2f %14llu %10.1f\n", C.Name.c_str(),
                static_cast<unsigned long long>(C.Bytes),
                static_cast<unsigned long long>(C.Steps), C.Ms,
                static_cast<unsigned long long>(C.WordsCopied), C.mbPerSec());

  // The paper's invariant carried into the regex service: steady-state
  // streaming parks copy nothing one-shot, and the shim column must show
  // what that saves — a shim that stopped copying is measuring nothing.
  for (const Column &C : Cols) {
    if (C.OneShot && C.WordsCopied != 0)
      oscFatal(("bench_regex: the " + C.Name +
                " column copied stack words in the one-shot steady state")
                   .c_str());
    if (!C.OneShot && C.WordsCopied == 0)
      oscFatal("bench_regex: the stream-copying-shim column copied "
               "nothing; the comparison is measuring two identical paths");
  }

  std::printf("\nCheck passed: one-shot streaming parks copied 0 stack "
              "words (shim paid %.1f words/chunk); every pathological "
              "run stayed under (bytes+1)*instructions.\n",
              Cols[2].Chunks ? double(Cols[2].WordsCopied) / Cols[2].Chunks
                             : 0);
  if (!JsonPath.empty()) {
    writeJson(JsonPath, Cols);
    std::printf("Wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
