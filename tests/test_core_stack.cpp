// C++-level unit tests of the core control-stack machinery, independent of
// the compiler and VM: synthetic frames are built by hand and the capture /
// invoke / overflow / promotion operations of ControlStack are checked
// field by field against Figures 1-4.

#include "core/ControlStack.h"
#include "core/FrameWalk.h"
#include "object/Heap.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class CoreStackTest : public ::testing::Test {
protected:
  CoreStackTest() : H(S, 1 << 30) {}

  void init(const Config &C) {
    Cfg = C;
    CS = std::make_unique<ControlStack>(H, S, Cfg);
    CS->plantBaseFrame();
  }

  /// A code object whose pc=1 return point has frame-size word \p D.
  Code *makeCode(uint32_t D, uint32_t MaxDepth = 16) {
    uint32_t Instrs[2] = {D, 0};
    Vector *Consts = H.allocVector(0);
    return H.allocCode(Value::falseV(), Value::object(Consts), 0, false,
                       MaxDepth, Instrs, 2);
  }

  /// Pushes a synthetic 2-word frame (header only) on top of the current
  /// frame; the header records the caller's frame size.
  void pushFrame(Code *RetInto) {
    Value *Sl = CS->slots();
    uint32_t NewFp = CS->Top;
    Sl[NewFp + FrameRetCode] = Value::object(RetInto);
    Sl[NewFp + FrameRetPc] = Value::fixnum(1);
    CS->Fp = NewFp;
    CS->Top = NewFp + FrameHeaderWords;
  }

  Config Cfg;
  Stats S;
  Heap H;
  std::unique_ptr<ControlStack> CS;
};

} // namespace

TEST_F(CoreStackTest, PlantBaseFrame) {
  init(Config());
  EXPECT_EQ(CS->Fp, 0u);
  EXPECT_EQ(CS->Top, FrameHeaderWords);
  EXPECT_TRUE(CS->slots()[FrameRetCode].isUnderflowMarker());
  EXPECT_TRUE(isBaseFrame(CS->slots(), 0));
  // The link is the halt continuation.
  auto *Halt = castObj<Continuation>(CS->link());
  EXPECT_TRUE(Halt->isHalt());
  EXPECT_EQ(CS->chainLength(), 1u);
}

TEST_F(CoreStackTest, FrameWalking) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2); // Frame at 2, below it the 2-word base frame.
  pushFrame(C2); // Frame at 4.
  pushFrame(C2); // Frame at 6.
  const Value *Sl = CS->slots();
  EXPECT_EQ(CS->Fp, 6u);
  EXPECT_EQ(previousFrame(Sl, 6), 4u);
  EXPECT_EQ(previousFrame(Sl, 4), 2u);
  EXPECT_EQ(walkDownFrames(Sl, 6, 2), 2u);
  EXPECT_EQ(walkDownFrames(Sl, 6, 50), 0u); // Stops at the base frame.
  EXPECT_FALSE(isBaseFrame(Sl, 6));
  EXPECT_TRUE(isBaseFrame(Sl, 0));
}

TEST_F(CoreStackTest, MultiShotCaptureSealsAndShortens) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2);
  pushFrame(C2);
  uint32_t CapBefore = CS->capacity();

  Value KV = CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  EXPECT_EQ(K->Size, 6);          // Two frames + base frame sealed.
  EXPECT_EQ(K->SegSize, K->Size); // Multi-shot: sizes equal (Fig. 2).
  EXPECT_FALSE(K->isOneShot());
  EXPECT_FALSE(K->isShot());
  EXPECT_EQ(CS->capacity(), CapBefore - 6); // Segment shortened.
  EXPECT_TRUE(K->segment()->Shared);
  EXPECT_TRUE(CS->link().identical(KV));
  EXPECT_EQ(S.MultiShotCaptures, 1u);
}

TEST_F(CoreStackTest, OneShotCaptureTakesWholeSegment) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2);
  uint32_t CapBefore = CS->capacity();

  Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  EXPECT_EQ(K->Size, 4);
  EXPECT_EQ(K->SegSize, static_cast<int64_t>(CapBefore)); // Whole segment.
  EXPECT_TRUE(K->isOneShot());
  EXPECT_FALSE(K->segment()->Shared); // Sole owner until reinstated.
  // A fresh segment became current.
  EXPECT_NE(CS->slots(), K->slots());
  EXPECT_EQ(S.OneShotCaptures, 1u);
  EXPECT_EQ(S.SegmentsAllocated, 2u);
}

TEST_F(CoreStackTest, EmptyCaptureShortCircuits) {
  init(Config());
  Value Link = CS->link();
  Value K1 = CS->captureMultiShot(0, Value(), 0);
  Value K2 = CS->captureOneShot(0, Value(), 0);
  EXPECT_TRUE(K1.identical(Link));
  EXPECT_TRUE(K2.identical(Link));
  EXPECT_EQ(S.EmptyCaptures, 2u);
  EXPECT_EQ(S.MultiShotCaptures, 0u);
  EXPECT_EQ(S.OneShotCaptures, 0u);
}

TEST_F(CoreStackTest, MultiShotInvokeCopiesAndPreserves) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2);
  // Mark a recognizable word inside the sealed region.
  CS->slots()[CS->Top - 1] = Value::fixnum(12345);
  Value KV = CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);

  // Start a new base and invoke.
  CS->beginBaseFrame(8);
  CS->plantBaseFrame();
  uint64_t CopiedBefore = S.WordsCopied;
  ResumePoint RP = CS->invoke(K);
  EXPECT_FALSE(RP.Halted);
  EXPECT_EQ(RP.Pc, 1);
  EXPECT_EQ(RP.Fp, 2u); // Size 4 - frame size 2.
  EXPECT_EQ(RP.Top, 4u);
  EXPECT_EQ(S.WordsCopied - CopiedBefore, 4u); // Fig. 3: copied back.
  EXPECT_EQ(CS->slots()[3].asFixnum(), 12345);
  // Still invocable: not shot.
  EXPECT_FALSE(K->isShot());
  CS->beginBaseFrame(8);
  CS->plantBaseFrame();
  ResumePoint RP2 = CS->invoke(K);
  EXPECT_EQ(RP2.Fp, 2u);
  EXPECT_EQ(S.MultiShotInvokes, 2u);
}

TEST_F(CoreStackTest, OneShotInvokeZeroCopyAndShotMarking) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2);
  Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  StackSegment *Captured = K->segment();

  CS->plantBaseFrame();
  uint64_t CopiedBefore = S.WordsCopied;
  ResumePoint RP = CS->invoke(K);
  EXPECT_EQ(S.WordsCopied, CopiedBefore); // Fig. 4: zero copy.
  EXPECT_EQ(RP.Fp, 2u);
  EXPECT_EQ(CS->slots(), Captured->Slots); // The saved segment is current.
  // Fig. 4: "the current size and segment size are then set to -1".
  EXPECT_EQ(K->Size, -1);
  EXPECT_EQ(K->SegSize, -1);
  EXPECT_TRUE(K->isShot());
  EXPECT_EQ(S.OneShotInvokes, 1u);
}

TEST_F(CoreStackTest, OneShotInvokeRecyclesTheDiscardedSegment) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2);
  Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  CS->plantBaseFrame();
  EXPECT_EQ(CS->cacheSize(), 0u);
  CS->invoke(castObj<Continuation>(KV));
  // The fresh segment that was current got cached (§3.2).
  EXPECT_EQ(CS->cacheSize(), 1u);
  EXPECT_EQ(S.SegmentCacheReleases, 1u);
}

TEST_F(CoreStackTest, PromotionLinear) {
  init(Config());
  Code *C2 = makeCode(2);
  // Chain two one-shot captures, then a multi-shot capture.
  pushFrame(C2);
  Value K1 = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  CS->plantBaseFrame();
  pushFrame(C2);
  Value K2 = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  CS->plantBaseFrame();
  EXPECT_TRUE(castObj<Continuation>(K1)->isOneShot());
  EXPECT_TRUE(castObj<Continuation>(K2)->isOneShot());

  pushFrame(C2);
  CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  // §3.3: both one-shots below the multi-shot capture were promoted.
  EXPECT_FALSE(castObj<Continuation>(K1)->isOneShot());
  EXPECT_FALSE(castObj<Continuation>(K2)->isOneShot());
  EXPECT_EQ(castObj<Continuation>(K1)->Size,
            castObj<Continuation>(K1)->SegSize);
  EXPECT_EQ(S.Promotions, 2u);
}

TEST_F(CoreStackTest, PromotionSharedFlag) {
  Config C;
  C.Promotion = PromotionStrategy::SharedFlag;
  init(C);
  Code *C2 = makeCode(2);
  pushFrame(C2);
  Value K1 = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  CS->plantBaseFrame();
  pushFrame(C2);
  Value K2 = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  CS->plantBaseFrame();
  // Both share the era flag.
  EXPECT_TRUE(castObj<Continuation>(K1)->Flag.identical(
      castObj<Continuation>(K2)->Flag));

  pushFrame(C2);
  CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  // O(1): a single flag write promoted both; sizes still differ.
  EXPECT_FALSE(castObj<Continuation>(K1)->isOneShot());
  EXPECT_FALSE(castObj<Continuation>(K2)->isOneShot());
  EXPECT_NE(castObj<Continuation>(K1)->Size,
            castObj<Continuation>(K1)->SegSize);
  EXPECT_EQ(S.PromotionWalkSteps, 0u);
}

TEST_F(CoreStackTest, SplittingOnInvoke) {
  Config C;
  C.CopyBoundWords = 8;
  C.InitialSegmentWords = 4096;
  init(C);
  Code *C2 = makeCode(2);
  for (int J = 0; J != 20; ++J)
    pushFrame(C2); // 40 words of frames above the base.
  Value KV = CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  EXPECT_EQ(K->Size, 42);

  CS->beginBaseFrame(64);
  CS->plantBaseFrame();
  uint64_t CopiedBefore = S.WordsCopied;
  CS->invoke(K);
  // Only the top piece (<= bound) was copied; the rest waits behind a
  // zero-copy bottom piece linked below (Fig. 3 / splitting).
  EXPECT_LE(S.WordsCopied - CopiedBefore, 8u);
  EXPECT_GE(S.Splits, 1u);
  auto *Bottom = castObj<Continuation>(CS->link());
  EXPECT_FALSE(Bottom->isHalt());
  EXPECT_EQ(Bottom->Size, Bottom->SegSize);
}

TEST_F(CoreStackTest, PrepareCallOverflowOneShotPolicy) {
  Config C;
  C.SegmentWords = 64;
  C.InitialSegmentWords = 64;
  C.Overflow = OverflowPolicy::OneShot;
  C.OverflowCopyUpFrames = 2;
  init(C);
  Code *C2 = makeCode(2);
  while (CS->Top + 16 <= CS->capacity())
    pushFrame(C2);

  Value *OldSlots = CS->slots();
  uint32_t OldFp = CS->Fp;
  CallFramePlan Plan =
      CS->prepareCall(Value::object(C2), 1, /*D=*/2, /*NArgs=*/0,
                      /*CalleeNeed=*/32);
  (void)OldSlots;
  // Relocated: a one-shot continuation now links the old segment.
  EXPECT_EQ(S.Overflows, 1u);
  auto *K = castObj<Continuation>(CS->link());
  EXPECT_TRUE(K->isOneShot());
  // Copy-up of 2 frames: the callee frame lands above 2 relocated frames
  // plus D: new fp = (OldFp + D) - boundary where boundary = OldFp - 2.
  EXPECT_EQ(Plan.NewFp, 4u);
  EXPECT_FALSE(Plan.BaseFrame);
  // The relocated region's bottom frame became a base frame.
  EXPECT_TRUE(isBaseFrame(CS->slots(), 0));
  (void)OldFp;
}

TEST_F(CoreStackTest, PrepareCallOverflowMultiShotPolicy) {
  Config C;
  C.SegmentWords = 64;
  C.InitialSegmentWords = 64;
  C.Overflow = OverflowPolicy::MultiShot;
  init(C);
  Code *C2 = makeCode(2);
  while (CS->Top + 16 <= CS->capacity())
    pushFrame(C2);

  CallFramePlan Plan =
      CS->prepareCall(Value::object(C2), 1, 2, 0, 32);
  EXPECT_EQ(S.Overflows, 1u);
  auto *K = castObj<Continuation>(CS->link());
  EXPECT_EQ(K->Size, K->SegSize); // Implicit call/cc: multi-shot seal.
  EXPECT_TRUE(Plan.BaseFrame);    // Callee frame at the new segment base.
  EXPECT_EQ(Plan.NewFp, 0u);
}

TEST_F(CoreStackTest, GrowWindowPreservesContents) {
  Config C;
  C.SegmentWords = 64;
  C.InitialSegmentWords = 64;
  init(C);
  Code *C2 = makeCode(2);
  pushFrame(C2);
  CS->slots()[3] = Value::fixnum(777);
  CS->growWindow(1024);
  EXPECT_GE(CS->capacity(), 1024u);
  EXPECT_EQ(CS->slots()[3].asFixnum(), 777);
  EXPECT_EQ(CS->Fp, 2u);
}

TEST_F(CoreStackTest, UnderflowReachesHalt) {
  init(Config());
  ResumePoint RP = CS->underflow();
  EXPECT_TRUE(RP.Halted);
  EXPECT_EQ(S.Underflows, 1u);
}

TEST_F(CoreStackTest, ResidentWordsAndChainLength) {
  init(Config());
  Code *C2 = makeCode(2);
  uint64_t Initial = CS->residentSegmentWords();
  pushFrame(C2);
  CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  EXPECT_EQ(CS->chainLength(), 2u); // One-shot + halt.
  EXPECT_GT(CS->residentSegmentWords(), Initial);
}

TEST_F(CoreStackTest, CacheReusePrefersFit) {
  Config C;
  C.SegmentCacheEnabled = true;
  init(C);
  Code *C2 = makeCode(2);
  // Capture + invoke cycles populate and drain the cache.
  for (int J = 0; J != 5; ++J) {
    pushFrame(C2);
    Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
    CS->plantBaseFrame();
    CS->invoke(castObj<Continuation>(KV));
  }
  EXPECT_GE(S.SegmentCacheHits, 4u);
  EXPECT_LE(S.SegmentsAllocated, 3u);
}

TEST_F(CoreStackTest, TailCallOverflowKeepsHeader) {
  Config C;
  C.SegmentWords = 64;
  C.InitialSegmentWords = 64;
  C.Overflow = OverflowPolicy::OneShot;
  C.OverflowCopyUpFrames = 0;
  init(C);
  Code *C2 = makeCode(2);
  while (CS->Top + 16 <= CS->capacity())
    pushFrame(C2);

  // The pending tail frame reuses the current header; after relocation the
  // (sole moved) frame must sit at the new base with the underflow marker,
  // its real return address captured into the overflow continuation.
  uint32_t OldFp = CS->Fp;
  (void)OldFp;
  CallFramePlan Plan = CS->prepareTailCall(/*NArgs=*/0, /*CalleeNeed=*/32);
  EXPECT_EQ(S.Overflows, 1u);
  EXPECT_EQ(Plan.NewFp, 0u);
  EXPECT_TRUE(isBaseFrame(CS->slots(), 0));
  auto *K = castObj<Continuation>(CS->link());
  EXPECT_TRUE(K->isOneShot());
  EXPECT_TRUE(K->RetCode.identical(Value::object(C2)));
  EXPECT_EQ(K->RetPc, 1);
}

TEST_F(CoreStackTest, SealDisplacementSharesBuffer) {
  Config C;
  C.SealDisplacementWords = 16;
  init(C);
  Code *C2 = makeCode(2);
  pushFrame(C2);
  uint32_t Boundary = CS->Fp + 2;
  Value *SlotsBefore = CS->slots();
  Value KV = CS->captureOneShot(Boundary, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  // §3.4: sealed at boundary + displacement; current window is the
  // remainder of the same buffer.
  EXPECT_EQ(K->SegSize, static_cast<int64_t>(Boundary + 16));
  EXPECT_EQ(CS->slots(), SlotsBefore + Boundary + 16);
  EXPECT_TRUE(K->segment()->Shared);
  EXPECT_EQ(S.SegmentsAllocated, 1u); // No fresh segment was needed.

  // Reinstating the sealed view swaps back into the shared buffer.
  CS->plantBaseFrame();
  CS->invoke(K);
  EXPECT_EQ(CS->slots(), SlotsBefore);
  EXPECT_EQ(CS->capacity(), Boundary + 16);
}

TEST_F(CoreStackTest, SealDisplacementFallsBackWhenRemainderTooSmall) {
  Config C;
  C.SealDisplacementWords = 1 << 20; // Bigger than any segment.
  init(C);
  Code *C2 = makeCode(2);
  pushFrame(C2);
  Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  // Falls back to whole-segment encapsulation + fresh segment.
  EXPECT_EQ(K->SegSize, static_cast<int64_t>(Cfg.InitialSegmentWords));
  EXPECT_EQ(S.SegmentsAllocated, 2u);
}

TEST_F(CoreStackTest, MultiShotInvokeIntoTooSmallWindow) {
  Config C;
  C.InitialSegmentWords = 4096;
  C.SegmentWords = 4096;
  C.CopyBoundWords = 1 << 20; // No splitting: force the big copy.
  init(C);
  Code *C2 = makeCode(2);
  for (int J = 0; J != 100; ++J)
    pushFrame(C2);
  Value KV = CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  ASSERT_EQ(K->Size, 202);

  // Make the current window tiny: capture again near the top.
  while (CS->capacity() > 64) {
    CS->plantBaseFrame();
    pushFrame(C2);
    CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  }
  ASSERT_LT(CS->capacity(), 202u);
  CS->plantBaseFrame();
  ResumePoint RP = CS->invoke(K);
  EXPECT_EQ(RP.Fp, 200u);
  EXPECT_GE(CS->capacity(), 202u); // A big-enough window was installed.
}

TEST_F(CoreStackTest, RepeatedInvokeAfterSplitCopiesBounded) {
  Config C;
  C.CopyBoundWords = 8;
  C.InitialSegmentWords = 4096;
  init(C);
  Code *C2 = makeCode(2);
  for (int J = 0; J != 50; ++J)
    pushFrame(C2);
  Value KV = CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);

  // After the first invoke splits K, later invokes stay within the bound
  // without splitting again.
  CS->beginBaseFrame(64);
  CS->plantBaseFrame();
  CS->invoke(K);
  uint64_t SplitsAfterFirst = S.Splits;
  for (int J = 0; J != 5; ++J) {
    uint64_t Before = S.WordsCopied;
    CS->beginBaseFrame(64);
    CS->plantBaseFrame();
    CS->invoke(K);
    EXPECT_LE(S.WordsCopied - Before, 8u);
  }
  EXPECT_EQ(S.Splits, SplitsAfterFirst);
}

TEST_F(CoreStackTest, UnderflowChainsThroughSplitPieces) {
  Config C;
  C.CopyBoundWords = 8;
  C.InitialSegmentWords = 4096;
  init(C);
  Code *C2 = makeCode(2);
  for (int J = 0; J != 20; ++J)
    pushFrame(C2);
  Value KV = CS->captureMultiShot(CS->Fp + 2, Value::object(C2), 1);
  auto *K = castObj<Continuation>(KV);
  CS->beginBaseFrame(64);
  CS->plantBaseFrame();
  CS->invoke(K);
  // The chain now contains the bottom split piece(s); walking down via
  // repeated underflow must reach halt without error.
  uint32_t Guard = 0;
  for (;;) {
    ASSERT_LT(++Guard, 100u);
    // Simulate returning through every frame of the current window.
    while (!isBaseFrame(CS->slots(), CS->Fp))
      CS->Fp = previousFrame(CS->slots(), CS->Fp);
    ResumePoint RP = CS->underflow();
    if (RP.Halted)
      break;
  }
  SUCCEED();
}

TEST_F(CoreStackTest, CacheRespectsDisable) {
  Config C;
  C.SegmentCacheEnabled = false;
  init(C);
  Code *C2 = makeCode(2);
  for (int J = 0; J != 3; ++J) {
    pushFrame(C2);
    Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
    CS->plantBaseFrame();
    CS->invoke(castObj<Continuation>(KV));
  }
  EXPECT_EQ(CS->cacheSize(), 0u);
  EXPECT_EQ(S.SegmentCacheHits, 0u);
  EXPECT_GE(S.SegmentsAllocated, 4u);
}

TEST_F(CoreStackTest, WillCollectDropsCache) {
  init(Config());
  Code *C2 = makeCode(2);
  pushFrame(C2);
  Value KV = CS->captureOneShot(CS->Fp + 2, Value::object(C2), 1);
  CS->plantBaseFrame();
  CS->invoke(castObj<Continuation>(KV));
  ASSERT_GT(CS->cacheSize(), 0u);
  H.collect();
  EXPECT_EQ(CS->cacheSize(), 0u);
}
