// Coverage for the prelude library procedures and remaining R4RS-ish
// behaviours not exercised by the focused suites.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class PreludeTest : public ::testing::Test {
protected:
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

} // namespace

TEST_F(PreludeTest, CxrCompositions) {
  EXPECT_EQ(run("(caar '((1 2) 3))"), "1");
  EXPECT_EQ(run("(cadr '(1 2 3))"), "2");
  EXPECT_EQ(run("(cdar '((1 2) 3))"), "(2)");
  EXPECT_EQ(run("(cddr '(1 2 3 4))"), "(3 4)");
  EXPECT_EQ(run("(caddr '(1 2 3 4))"), "3");
  EXPECT_EQ(run("(cadddr '(1 2 3 4))"), "4");
}

TEST_F(PreludeTest, ListUtilities) {
  EXPECT_EQ(run("(last-pair '(1 2 3))"), "(3)");
  EXPECT_EQ(run("(list-copy '(1 2 3))"), "(1 2 3)");
  EXPECT_EQ(run("(define a '(1 2)) (eq? a (list-copy a))"), "#f");
  EXPECT_EQ(run("(equal? a (list-copy a))"), "#t");
  EXPECT_EQ(run("(vector-map (lambda (x) (* x x)) #(1 2 3))"), "#(1 4 9)");
  EXPECT_EQ(run("(for-each (lambda (x) x) '())"), "#<unspecified>");
}

TEST_F(PreludeTest, CharPredicates) {
  EXPECT_EQ(run("(char=? #\\a #\\a)"), "#t");
  EXPECT_EQ(run("(char=? #\\a #\\b)"), "#f");
  EXPECT_EQ(run("(char<? #\\a #\\b)"), "#t");
  EXPECT_EQ(run("(char>? #\\b #\\a)"), "#t");
  EXPECT_EQ(run("(char<=? #\\a #\\a)"), "#t");
  EXPECT_EQ(run("(char>=? #\\a #\\b)"), "#f");
}

TEST_F(PreludeTest, StringListConversions) {
  EXPECT_EQ(run("(string->list \"abc\")"), "(#\\a #\\b #\\c)");
  EXPECT_EQ(run("(list->string '(#\\h #\\i))"), "\"hi\"");
  EXPECT_EQ(run("(list->string (string->list \"round\"))"), "\"round\"");
  EXPECT_EQ(run("(string->list \"\")"), "()");
}

TEST_F(PreludeTest, SortNumbers) {
  EXPECT_EQ(run("(sort-numbers '(3 1 2))"), "(1 2 3)");
  EXPECT_EQ(run("(sort-numbers '())"), "()");
  EXPECT_EQ(run("(sort-numbers '(5 5 1))"), "(1 5 5)");
  EXPECT_EQ(run("(sort-numbers '(2.5 1 3))"), "(1 2.5 3)");
  EXPECT_EQ(run("(sort-numbers '(1 x))"),
            "error: sort-numbers: not a number: x");
}

TEST_F(PreludeTest, FoldsAndFilters) {
  EXPECT_EQ(run("(fold-left (lambda (acc x) (cons x acc)) '() '(1 2 3))"),
            "(3 2 1)");
  EXPECT_EQ(run("(fold-right (lambda (x acc) (cons x acc)) '() '(1 2 3))"),
            "(1 2 3)");
  EXPECT_EQ(run("(filter pair? '(1 (2) 3 (4)))"), "((2) (4))");
  EXPECT_EQ(run("(map (lambda (p) (apply + p)) '((1 2) (3 4)))"), "(3 7)");
}

TEST_F(PreludeTest, GensymIsFresh) {
  EXPECT_EQ(run("(eq? (gensym) (gensym))"), "#f");
  EXPECT_EQ(run("(symbol? (gensym))"), "#t");
}

TEST_F(PreludeTest, NumberStringEdges) {
  EXPECT_EQ(run("(number->string -42)"), "\"-42\"");
  EXPECT_EQ(run("(string->number \"-42\")"), "-42");
  EXPECT_EQ(run("(string->number \"2.5\")"), "2.5");
  EXPECT_EQ(run("(string->number \"\")"), "#f");
  EXPECT_EQ(run("(string->number \"12abc\")"), "#f");
}

TEST_F(PreludeTest, MixedNumericComparisons) {
  EXPECT_EQ(run("(< 1 1.5 2)"), "#t");
  EXPECT_EQ(run("(= 2 2.0)"), "#t");
  EXPECT_EQ(run("(integer? 2.0)"), "#t");
  EXPECT_EQ(run("(integer? 2.5)"), "#f");
  EXPECT_EQ(run("(max 1 2.5 2)"), "2.5");
  EXPECT_EQ(run("(/ 1 2)"), "0.5");
  EXPECT_EQ(run("(/ 2.0)"), "0.5");
}

TEST_F(PreludeTest, IotaAndRanges) {
  EXPECT_EQ(run("(iota 0)"), "()");
  EXPECT_EQ(run("(iota 1)"), "(0)");
  EXPECT_EQ(run("(apply + (iota 100))"), "4950");
}

TEST_F(PreludeTest, DeepPreludeFunctionsUnderTinySegments) {
  Config C;
  C.SegmentWords = 100;
  C.InitialSegmentWords = 100;
  Interp Small(C);
  // map/filter/fold are non-tail-recursive: they must survive overflow.
  EXPECT_EQ(Small.evalToString("(length (map (lambda (x) x) (iota 2000)))"),
            "2000");
  EXPECT_EQ(Small.evalToString("(length (filter even? (iota 2000)))"),
            "1000");
  EXPECT_EQ(Small.evalToString(
                "(fold-right + 0 (iota 1000))"),
            "499500");
}
