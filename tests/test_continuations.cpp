// Multi-shot continuation semantics (call/cc): escapes, re-entry,
// generators, loops, interaction with the segment machinery under small
// segment sizes, and the counters that Figs. 2-3 imply.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

std::string run(Interp &I, const std::string &Src) {
  return I.evalToString(Src);
}

} // namespace

TEST(CallCC, EscapeFromMap) {
  Interp I;
  EXPECT_EQ(run(I, "(call/cc (lambda (k)"
                   "  (for-each (lambda (x) (if (eq? x 'stop) (k x) #f))"
                   "            '(a b stop c))"
                   "  'fell-through))"),
            "stop");
}

TEST(CallCC, ReturnNormallyWhenUnused) {
  Interp I;
  EXPECT_EQ(run(I, "(call/cc (lambda (k) 99))"), "99");
}

TEST(CallCC, ReenterContinuationMultipleTimes) {
  Interp I;
  // The classic re-entrant counter: k is invoked three times.
  EXPECT_EQ(run(I, "(define k #f)"
                   "(define n 0)"
                   "(define r (+ 1 (call/cc (lambda (c) (set! k c) 0))))"
                   "(set! n (+ n 1))"
                   "(if (< r 4) (k r) (list r n))"),
            "(4 4)");
}

TEST(CallCC, GeneratorViaMultiShot) {
  Interp I;
  ASSERT_EQ(run(I, "(define resume #f)"
                   "(define (make-gen lst)"
                   "  (lambda (return)"
                   "    (for-each (lambda (x)"
                   "                (set! return"
                   "                      (call/cc (lambda (r)"
                   "                                 (set! resume r)"
                   "                                 (return x)))))"
                   "              lst)"
                   "    (return 'done)))"
                   "(define (next)"
                   "  (call/cc (lambda (k)"
                   "    (if resume (resume k) ((make-gen '(1 2 3)) k)))))"
                   "(list (next) (next) (next) (next))"),
            "(1 2 3 done)");
}

TEST(CallCC, YinYangBounded) {
  Interp I;
  // The yin-yang puzzle run for a bounded number of steps: counts how many
  // times control passes through; exercises repeated reinstatement of the
  // same multi-shot continuations.
  EXPECT_EQ(run(I, "(define count 0)"
                   "(define out '())"
                   "(call/cc (lambda (done)"
                   "  (let* ((yin ((lambda (cc)"
                   "                 (set! count (+ count 1))"
                   "                 (if (> count 20) (done 'stop) #f)"
                   "                 (set! out (cons 'yin out))"
                   "                 cc)"
                   "               (call/cc (lambda (c) c))))"
                   "         (yang ((lambda (cc)"
                   "                  (set! out (cons 'yang out))"
                   "                  cc)"
                   "                (call/cc (lambda (c) c)))))"
                   "    (yin yang))))"
                   "(> (length out) 20)"),
            "#t");
}

TEST(CallCC, TailPositionCaptureEmptySegment) {
  // A tail call to %call/cc whose frame sits at a segment base triggers the
  // empty-segment short-circuit (§3.2): the link itself serves as the
  // continuation and no new continuation object is sealed.
  Interp I;
  // (f) in tail position replaces the toplevel frame at the segment base;
  // the capture inside is also in tail position, so the segment is empty.
  EXPECT_EQ(run(I, "(define (f) (%call/cc (lambda (k) 42)))"
                   "(f)"),
            "42");
  EXPECT_GT(I.stats().EmptyCaptures, 0u);
  EXPECT_EQ(I.stats().MultiShotCaptures, 0u);
}

TEST(CallCC, CapturesShortenTheSegment) {
  Interp I;
  uint64_t Before = I.stats().MultiShotCaptures;
  run(I, "(define (burn n)"
         "  (if (zero? n) 0 (+ 1 (call/cc (lambda (k) (burn (- n 1)))))))"
         "(burn 100)");
  EXPECT_GE(I.stats().MultiShotCaptures - Before, 100u);
}

TEST(CallCC, LoopViaContinuation) {
  Interp I;
  EXPECT_EQ(run(I, "(define k #f)"
                   "(define i 0)"
                   "(call/cc (lambda (c) (set! k c)))"
                   "(set! i (+ i 1))"
                   "(if (< i 10) (k #f) i)"),
            "10");
}

TEST(CallCC, ContinuationIsAProcedure) {
  Interp I;
  EXPECT_EQ(run(I, "(call/cc procedure?)"), "#t");
  // The raw primitive continuation object:
  EXPECT_EQ(run(I, "(%call/cc continuation?)"), "#t");
  EXPECT_EQ(run(I, "(%call/cc (lambda (k) (%continuation-one-shot? k)))"),
            "#f");
}

TEST(CallCC, MultiShotInvokeCopiesWords) {
  Interp I;
  run(I, "(define k #f)"
         "(define n 0)"
         "(define (deep d)"
         "  (if (zero? d)"
         "      (call/cc (lambda (c) (set! k c) 0))"
         "      (+ 1 (deep (- d 1)))))"
         "(deep 30)"
         "(set! n (+ n 1))"
         "(if (< n 5) (k 0) 'done)");
  EXPECT_GE(I.stats().MultiShotInvokes, 4u);
  EXPECT_GT(I.stats().WordsCopied, 0u);
}

TEST(CallCC, SplittingRespectsCopyBound) {
  Config C;
  C.InitialSegmentWords = 1 << 16;
  C.CopyBoundWords = 64; // Tiny bound: deep continuations must split.
  Interp I(C);
  EXPECT_EQ(run(I, "(define k #f)"
                   "(define n 0)"
                   "(define (deep d)"
                   "  (if (zero? d)"
                   "      (call/cc (lambda (c) (set! k c) 0))"
                   "      (+ 1 (deep (- d 1)))))"
                   "(define r (deep 400))"
                   "(set! n (+ n 1))"
                   "(if (< n 3) (k 0) r)"),
            "400");
  EXPECT_GT(I.stats().Splits, 0u);
}

TEST(CallCC, DeepContinuationCorrectAcrossConfigs) {
  for (uint32_t Bound : {32u, 128u, 4096u}) {
    Config C;
    C.CopyBoundWords = Bound;
    Interp I(C);
    EXPECT_EQ(run(I, "(define k #f)"
                     "(define n 0)"
                     "(define (deep d)"
                     "  (if (zero? d)"
                     "      (call/cc (lambda (c) (set! k c) 0))"
                     "      (+ 1 (deep (- d 1)))))"
                     "(define r (deep 500))"
                     "(set! n (+ n 1))"
                     "(if (< n 4) (k 0) (list r n))"),
              "(500 4)")
        << "copy bound " << Bound;
  }
}

TEST(CallCC, NonLocalExitUnwindAndRedo) {
  Interp I;
  // Capture inside one eval, invoke within the same program, with state.
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(define result"
                   "  (call/cc (lambda (exit)"
                   "    (note 'a)"
                   "    (exit 'early)"
                   "    (note 'never)"
                   "    'late)))"
                   "(list result (reverse log))"),
            "(early (a))");
}

TEST(CallCC, CallCCOfCallCC) {
  Interp I;
  // ((call/cc call/cc) id) patterns — stress continuation-as-receiver.
  EXPECT_EQ(run(I, "(define (id x) x)"
                   "(procedure? (call/cc call/cc))"),
            "#t");
  EXPECT_EQ(run(I, "((call/cc (lambda (k) k)) (lambda (x) 42))"), "42");
}

TEST(CallCC, InvokeWithMultipleValues) {
  Interp I;
  EXPECT_EQ(run(I, "(call-with-values"
                   "  (lambda () (call/cc (lambda (k) (k 1 2 3))))"
                   "  list)"),
            "(1 2 3)");
}

TEST(CallCC, CapturedAcrossEvals) {
  Interp I;
  ASSERT_EQ(run(I, "(define k #f)"
                   "(+ 100 (call/cc (lambda (c) (set! k c) 0)))"),
            "100");
  // Invoking k in a later eval resumes the *old* toplevel, which becomes
  // the result of this eval.
  EXPECT_EQ(run(I, "(k 5)"), "105");
}

TEST(CallCC, StatsAccounting) {
  Interp I;
  run(I, "(define ks '())"
         "(define (cap) (call/cc (lambda (k) (set! ks (cons k ks)) 0)))"
         "(+ (cap) (cap) (cap))");
  // Non-tail captures seal real continuations; tail ones may short-circuit.
  EXPECT_GE(I.stats().MultiShotCaptures + I.stats().EmptyCaptures, 3u);
  EXPECT_GE(I.stats().MultiShotCaptures, 2u);
  EXPECT_EQ(I.stats().OneShotInvokes, 0u);
}
