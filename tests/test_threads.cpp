// Integration tests for the three user-level thread systems the paper's
// Figure 5 compares: call/cc, call/1cc and CPS.  All three must compute the
// same results for every thread count and context-switch interval; the
// counters must show the representation differences (copying vs zero-copy
// vs no captures at all).

#include "Workloads.h"
#include "osc.h"

#include <gtest/gtest.h>

#include <string>

using namespace osc;
using namespace osc::workloads;

namespace {

int64_t fibRef(int N) { return N < 2 ? N : fibRef(N - 1) + fibRef(N - 2); }

std::string runThreads(Interp &I, const char *Variant, int N, int FibN,
                       int Interval) {
  std::string Setup = std::string(Variant) + threadSchedulerCommon();
  if (!I.eval(Setup).Ok)
    return "setup failed";
  return I.evalToString("(run-threads " + std::to_string(N) + " " +
                        std::to_string(FibN) + " " +
                        std::to_string(Interval) + ")");
}

std::string runCPS(Interp &I, int N, int FibN, int Interval) {
  if (!I.eval(threadsCPS()).Ok)
    return "setup failed";
  return I.evalToString("(run-threads-cps " + std::to_string(N) + " " +
                        std::to_string(FibN) + " " +
                        std::to_string(Interval) + ")");
}

} // namespace

TEST(Threads, AllVariantsAgreeAcrossIntervals) {
  for (int Interval : {1, 2, 7, 32, 512}) {
    std::string Expect = std::to_string(8 * fibRef(12));
    Interp I1, I2, I3;
    EXPECT_EQ(runThreads(I1, threadsCallCC(), 8, 12, Interval), Expect)
        << "call/cc interval " << Interval;
    EXPECT_EQ(runThreads(I2, threadsCall1CC(), 8, 12, Interval), Expect)
        << "call/1cc interval " << Interval;
    EXPECT_EQ(runCPS(I3, 8, 12, Interval), Expect)
        << "cps interval " << Interval;
  }
}

TEST(Threads, AllVariantsAgreeAcrossThreadCounts) {
  for (int N : {1, 3, 25}) {
    std::string Expect = std::to_string(N * fibRef(10));
    Interp I1, I2, I3;
    EXPECT_EQ(runThreads(I1, threadsCallCC(), N, 10, 4), Expect);
    EXPECT_EQ(runThreads(I2, threadsCall1CC(), N, 10, 4), Expect);
    EXPECT_EQ(runCPS(I3, N, 10, 4), Expect);
  }
}

TEST(Threads, OneShotVariantDoesZeroCopyTransfers) {
  Interp I;
  ASSERT_EQ(runThreads(I, threadsCall1CC(), 10, 12, 4),
            std::to_string(10 * fibRef(12)));
  EXPECT_GT(I.stats().OneShotInvokes, 100u);
  // Each switch is a segment swap, not a copy: copied words should be tiny
  // relative to the multi-shot variant below.
  Interp IM;
  ASSERT_EQ(runThreads(IM, threadsCallCC(), 10, 12, 4),
            std::to_string(10 * fibRef(12)));
  EXPECT_GT(IM.stats().MultiShotInvokes, 100u);
  EXPECT_GT(IM.stats().WordsCopied, 10 * I.stats().WordsCopied);
}

TEST(Threads, CPSVariantCapturesNothing) {
  Interp I;
  ASSERT_EQ(runCPS(I, 10, 12, 4), std::to_string(10 * fibRef(12)));
  EXPECT_EQ(I.stats().MultiShotCaptures, 0u);
  EXPECT_EQ(I.stats().OneShotCaptures, 0u);
}

TEST(Threads, OneShotVariantLeansOnSegmentCache) {
  Interp I;
  ASSERT_EQ(runThreads(I, threadsCall1CC(), 10, 12, 2),
            std::to_string(10 * fibRef(12)));
  EXPECT_GT(I.stats().SegmentCacheHits, I.stats().SegmentsAllocated * 10);
}

TEST(Threads, ManyThreadsSmallSegments) {
  // 200 threads with small segments: forces the segment machinery through
  // constant churn while threads also overflow.
  Config C;
  C.SegmentWords = 512;
  C.InitialSegmentWords = 512;
  Interp I(C);
  ASSERT_EQ(runThreads(I, threadsCall1CC(), 200, 10, 8),
            std::to_string(200 * fibRef(10)));
}

TEST(Threads, EngineThreadsAgreeWithCooperative) {
  for (int Interval : {3, 40, 500}) {
    Interp I;
    ASSERT_TRUE(I.eval(threadsEngines()).Ok);
    EXPECT_EQ(I.evalToString("(run-threads-engines 6 11 " +
                             std::to_string(Interval) + ")"),
              std::to_string(6 * fibRef(11)))
        << "interval " << Interval;
    if (Interval == 3)
      EXPECT_GT(I.stats().OneShotCaptures, 50u); // Real preemptions.
  }
}

TEST(Threads, EngineThreadsUnderTinySegments) {
  Config C;
  C.SegmentWords = 256;
  C.InitialSegmentWords = 256;
  Interp I(C);
  ASSERT_TRUE(I.eval(threadsEngines()).Ok);
  EXPECT_EQ(I.evalToString("(run-threads-engines 20 10 7)"),
            std::to_string(20 * fibRef(10)));
}

TEST(Threads, TakVariantsAgree) {
  Interp I;
  ASSERT_TRUE(I.eval(takVariants()).Ok);
  EXPECT_EQ(I.evalToString("(tak-plain 14 10 4)"), "5");
  EXPECT_EQ(I.evalToString("(tak-cc 14 10 4)"), "5");
  EXPECT_EQ(I.evalToString("(tak-1cc 14 10 4)"), "5");
  EXPECT_EQ(I.evalToString("(list (tak-plain 18 12 6) (tak-cc 18 12 6)"
                           "      (tak-1cc 18 12 6))"),
            "(7 7 7)");
}

TEST(Threads, TakOneShotAllocatesLessThanMultiShot) {
  // §4: the call/1cc tak "allocates 23% less memory" than the call/cc one.
  Interp I1, I2;
  ASSERT_TRUE(I1.eval(takVariants()).Ok);
  ASSERT_TRUE(I2.eval(takVariants()).Ok);
  uint64_t Before1 = I1.stats().BytesAllocated;
  uint64_t Before2 = I2.stats().BytesAllocated;
  ASSERT_EQ(I1.evalToString("(tak-1cc 16 11 5)"), "11");
  ASSERT_EQ(I2.evalToString("(tak-cc 16 11 5)"), "11");
  uint64_t OneShotBytes = I1.stats().BytesAllocated - Before1;
  uint64_t MultiBytes = I2.stats().BytesAllocated - Before2;
  EXPECT_LT(OneShotBytes, MultiBytes);
}

TEST(Threads, DeepRepeatMatchesAcrossPolicies) {
  for (OverflowPolicy P :
       {OverflowPolicy::OneShot, OverflowPolicy::MultiShot}) {
    Config C;
    C.SegmentWords = 1024;
    C.InitialSegmentWords = 1024;
    C.Overflow = P;
    Interp I(C);
    ASSERT_TRUE(I.eval(deepRecursion()).Ok);
    EXPECT_EQ(I.evalToString("(deep-repeat 10 5000)"), "50000");
  }
}

TEST(Threads, BoyerProvesItsTheoremWithoutClosures) {
  Interp I;
  ASSERT_TRUE(I.eval(boyer()).Ok);
  ASSERT_TRUE(I.eval("(boyer-setup!)").Ok);
  uint64_t ClosuresBefore = I.stats().ClosuresAllocated;
  uint64_t CallsBefore = I.stats().ProcedureCalls;
  EXPECT_EQ(I.evalToString("(boyer-run)"), "#t");
  // §5: the stack-based implementation allocates no closures for Boyer.
  EXPECT_EQ(I.stats().ClosuresAllocated - ClosuresBefore, 0u);
  EXPECT_GT(I.stats().ProcedureCalls - CallsBefore, 100000u);
}

TEST(Threads, CtakVariantsAgree) {
  Interp I;
  ASSERT_TRUE(I.eval(takVariants()).Ok);
  EXPECT_EQ(I.evalToString("(ctak 14 10 4)"), "5");
  EXPECT_EQ(I.evalToString("(ctak-1cc 14 10 4)"), "5");
  EXPECT_EQ(I.evalToString("(list (ctak 18 12 6) (ctak-1cc 18 12 6))"),
            "(7 7)");
}
