// Scheme-semantics tests for the expander + compiler + VM pipeline: special
// forms, closures, assignment conversion, varargs, derived forms, data
// primitives.  The control representation is exercised indirectly (every
// call runs on the segmented stack); dedicated continuation tests live in
// test_continuations.cpp / test_oneshot.cpp.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class VmSemantics : public ::testing::Test {
protected:
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

} // namespace

TEST_F(VmSemantics, Literals) {
  EXPECT_EQ(run("42"), "42");
  EXPECT_EQ(run("-7"), "-7");
  EXPECT_EQ(run("#t"), "#t");
  EXPECT_EQ(run("#f"), "#f");
  EXPECT_EQ(run("'()"), "()");
  EXPECT_EQ(run("\"hi\\n\""), "\"hi\\n\"");
  EXPECT_EQ(run("#\\a"), "#\\a");
  EXPECT_EQ(run("#\\space"), "#\\space");
  EXPECT_EQ(run("3.5"), "3.5");
  EXPECT_EQ(run("'sym"), "sym");
  EXPECT_EQ(run("''x"), "(quote x)");
}

TEST_F(VmSemantics, QuoteStructures) {
  EXPECT_EQ(run("'(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("'(1 . 2)"), "(1 . 2)");
  EXPECT_EQ(run("'(a (b c) d)"), "(a (b c) d)");
  EXPECT_EQ(run("'#(1 2 3)"), "#(1 2 3)");
}

TEST_F(VmSemantics, IfAndTruthiness) {
  EXPECT_EQ(run("(if #t 1 2)"), "1");
  EXPECT_EQ(run("(if #f 1 2)"), "2");
  EXPECT_EQ(run("(if 0 'yes 'no)"), "yes");    // 0 is true in Scheme
  EXPECT_EQ(run("(if '() 'yes 'no)"), "yes");  // so is ()
  EXPECT_EQ(run("(if (> 3 2) 'a 'b)"), "a");
}

TEST_F(VmSemantics, LambdaAndClosures) {
  EXPECT_EQ(run("((lambda (x y) (+ x y)) 3 4)"), "7");
  EXPECT_EQ(run("(define (adder n) (lambda (x) (+ x n))) ((adder 10) 5)"),
            "15");
  EXPECT_EQ(run("(define (compose f g) (lambda (x) (f (g x))))"
                "(define (inc x) (+ x 1))"
                "(define (dbl x) (* x 2))"
                "((compose inc dbl) 5)"),
            "11");
  // Capture through two lambda levels.
  EXPECT_EQ(run("(define (f a) (lambda (b) (lambda (c) (+ a (+ b c)))))"
                "(((f 1) 2) 3)"),
            "6");
}

TEST_F(VmSemantics, VarargsAndApply) {
  EXPECT_EQ(run("((lambda args args) 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("((lambda (a . rest) (cons a rest)) 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("((lambda (a b . r) r) 1 2)"), "()");
  EXPECT_EQ(run("(apply + '(1 2 3))"), "6");
  EXPECT_EQ(run("(apply + 1 2 '(3 4))"), "10");
  EXPECT_EQ(run("(apply list 1 '(2 3))"), "(1 2 3)");
  EXPECT_EQ(run("(apply apply (list + (list 1 2)))"), "3");
}

TEST_F(VmSemantics, SetAndBoxing) {
  EXPECT_EQ(run("(define x 1) (set! x 5) x"), "5");
  // Assigned local captured by a closure: shared cell semantics.
  EXPECT_EQ(run("(define (counter)"
                "  (let ((n 0))"
                "    (lambda () (set! n (+ n 1)) n)))"
                "(define c (counter))"
                "(c) (c) (c)"),
            "3");
  // Two closures over the same cell.
  EXPECT_EQ(run("(define (make)"
                "  (let ((n 0))"
                "    (cons (lambda () (set! n (+ n 1)) n)"
                "          (lambda () n))))"
                "(define p (make))"
                "((car p)) ((car p))"
                "((cdr p))"),
            "2");
}

TEST_F(VmSemantics, LetForms) {
  EXPECT_EQ(run("(let ((x 2) (y 3)) (* x y))"), "6");
  EXPECT_EQ(run("(let ((x 2)) (let ((x 3) (y x)) (+ x y)))"), "5");
  EXPECT_EQ(run("(let* ((x 2) (y (* x 3))) (+ x y))"), "8");
  EXPECT_EQ(run("(letrec ((even? (lambda (n) (if (zero? n) #t (odd? (- n 1)))))"
                "         (odd?  (lambda (n) (if (zero? n) #f (even? (- n 1))))))"
                "  (even? 100))"),
            "#t");
  EXPECT_EQ(run("(let loop ((i 0) (acc '()))"
                "  (if (= i 4) (reverse acc) (loop (+ i 1) (cons i acc))))"),
            "(0 1 2 3)");
  // Non-tail let followed by more computation (SetTop path).
  EXPECT_EQ(run("(+ (let ((a 1) (b 2)) (+ a b)) (let ((c 3)) c))"), "6");
}

TEST_F(VmSemantics, InternalDefines) {
  EXPECT_EQ(run("(define (f x)"
                "  (define y (* x 2))"
                "  (define (g z) (+ z y))"
                "  (g 1))"
                "(f 10)"),
            "21");
  // Mutually recursive internal defines.
  EXPECT_EQ(run("(define (f n)"
                "  (define (ev? n) (if (zero? n) #t (od? (- n 1))))"
                "  (define (od? n) (if (zero? n) #f (ev? (- n 1))))"
                "  (ev? n))"
                "(f 10)"),
            "#t");
}

TEST_F(VmSemantics, CondCaseAndOrWhenUnless) {
  EXPECT_EQ(run("(cond (#f 1) (#t 2) (else 3))"), "2");
  EXPECT_EQ(run("(cond (#f 1) (else 3))"), "3");
  EXPECT_EQ(run("(cond ((assv 2 '((1 . a) (2 . b))) => cdr) (else 'no))"),
            "b");
  EXPECT_EQ(run("(cond (42))"), "42");
  EXPECT_EQ(run("(case 3 ((1 2) 'small) ((3 4) 'medium) (else 'big))"),
            "medium");
  EXPECT_EQ(run("(case 9 ((1 2) 'small) ((3 4) 'medium) (else 'big))"),
            "big");
  EXPECT_EQ(run("(and)"), "#t");
  EXPECT_EQ(run("(and 1 2 3)"), "3");
  EXPECT_EQ(run("(and 1 #f 3)"), "#f");
  EXPECT_EQ(run("(or)"), "#f");
  EXPECT_EQ(run("(or #f 2 3)"), "2");
  EXPECT_EQ(run("(or #f #f)"), "#f");
  EXPECT_EQ(run("(when (> 2 1) 'a 'b)"), "b");
  EXPECT_EQ(run("(unless (> 2 1) 'a)"), "#<unspecified>");
}

TEST_F(VmSemantics, DoLoops) {
  EXPECT_EQ(run("(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 5) acc))"),
            "10");
  EXPECT_EQ(run("(do ((v (make-vector 3)) (i 0 (+ i 1)))"
                "    ((= i 3) v)"
                "  (vector-set! v i (* i i)))"),
            "#(0 1 4)");
}

TEST_F(VmSemantics, Quasiquote) {
  EXPECT_EQ(run("`(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(run("`(1 ,(+ 1 1) 3)"), "(1 2 3)");
  EXPECT_EQ(run("`(1 ,@(list 2 3) 4)"), "(1 2 3 4)");
  EXPECT_EQ(run("(let ((x 5)) `(a ,x))"), "(a 5)");
  EXPECT_EQ(run("`#(1 ,(+ 1 1))"), "#(1 2)");
}

TEST_F(VmSemantics, NumericTower) {
  EXPECT_EQ(run("(quotient 17 5)"), "3");
  EXPECT_EQ(run("(remainder 17 5)"), "2");
  EXPECT_EQ(run("(modulo -7 3)"), "2");
  EXPECT_EQ(run("(remainder -7 3)"), "-1");
  EXPECT_EQ(run("(abs -5)"), "5");
  EXPECT_EQ(run("(min 3 1 2)"), "1");
  EXPECT_EQ(run("(max 3 1 2)"), "3");
  EXPECT_EQ(run("(+ 1 2.5)"), "3.5");
  EXPECT_EQ(run("(< 1 2 3)"), "#t");
  EXPECT_EQ(run("(< 1 3 2)"), "#f");
  EXPECT_EQ(run("(= 2 2 2)"), "#t");
  EXPECT_EQ(run("(even? 4)"), "#t");
  EXPECT_EQ(run("(odd? 4)"), "#f");
  EXPECT_EQ(run("(- 5)"), "-5");
}

TEST_F(VmSemantics, ListLibrary) {
  EXPECT_EQ(run("(length '(a b c))"), "3");
  EXPECT_EQ(run("(append '(1 2) '(3) '() '(4 5))"), "(1 2 3 4 5)");
  EXPECT_EQ(run("(reverse '(1 2 3))"), "(3 2 1)");
  EXPECT_EQ(run("(list-tail '(a b c d) 2)"), "(c d)");
  EXPECT_EQ(run("(list-ref '(a b c d) 2)"), "c");
  EXPECT_EQ(run("(memq 'c '(a b c d))"), "(c d)");
  EXPECT_EQ(run("(memv 2 '(1 2 3))"), "(2 3)");
  EXPECT_EQ(run("(member '(1) '((0) (1) (2)))"), "((1) (2))");
  EXPECT_EQ(run("(assq 'b '((a 1) (b 2)))"), "(b 2)");
  EXPECT_EQ(run("(assoc '(x) '(((x) . 1)))"), "((x) . 1)");
  EXPECT_EQ(run("(map (lambda (x) (* x x)) '(1 2 3))"), "(1 4 9)");
  EXPECT_EQ(run("(map + '(1 2 3) '(10 20 30))"), "(11 22 33)");
  EXPECT_EQ(run("(filter odd? '(1 2 3 4 5))"), "(1 3 5)");
  EXPECT_EQ(run("(fold-left + 0 '(1 2 3 4))"), "10");
  EXPECT_EQ(run("(fold-right cons '() '(1 2 3))"), "(1 2 3)");
  EXPECT_EQ(run("(iota 5)"), "(0 1 2 3 4)");
  EXPECT_EQ(run("(list? '(1 2))"), "#t");
  EXPECT_EQ(run("(list? '(1 . 2))"), "#f");
}

TEST_F(VmSemantics, EqualityPredicates) {
  EXPECT_EQ(run("(eq? 'a 'a)"), "#t");
  EXPECT_EQ(run("(eq? '(a) '(a))"), "#f");
  EXPECT_EQ(run("(eqv? 1.5 1.5)"), "#t");
  EXPECT_EQ(run("(equal? '(1 (2 3)) '(1 (2 3)))"), "#t");
  EXPECT_EQ(run("(equal? \"ab\" \"ab\")"), "#t");
  EXPECT_EQ(run("(equal? #(1 2) #(1 2))"), "#t");
  EXPECT_EQ(run("(equal? #(1 2) #(1 3))"), "#f");
}

TEST_F(VmSemantics, VectorsAndStrings) {
  EXPECT_EQ(run("(vector-length (make-vector 4 'x))"), "4");
  EXPECT_EQ(run("(vector-ref (vector 'a 'b 'c) 1)"), "b");
  EXPECT_EQ(run("(let ((v (make-vector 2 0))) (vector-set! v 1 9) v)"),
            "#(0 9)");
  EXPECT_EQ(run("(vector->list #(1 2 3))"), "(1 2 3)");
  EXPECT_EQ(run("(list->vector '(1 2))"), "#(1 2)");
  EXPECT_EQ(run("(string-length \"hello\")"), "5");
  EXPECT_EQ(run("(string-append \"foo\" \"bar\")"), "\"foobar\"");
  EXPECT_EQ(run("(substring \"hello\" 1 3)"), "\"el\"");
  EXPECT_EQ(run("(string=? \"a\" \"a\" \"a\")"), "#t");
  EXPECT_EQ(run("(string->symbol \"abc\")"), "abc");
  EXPECT_EQ(run("(symbol->string 'abc)"), "\"abc\"");
  EXPECT_EQ(run("(string->number \"42\")"), "42");
  EXPECT_EQ(run("(string->number \"nope\")"), "#f");
  EXPECT_EQ(run("(number->string 42)"), "\"42\"");
  EXPECT_EQ(run("(char->integer #\\A)"), "65");
  EXPECT_EQ(run("(integer->char 97)"), "#\\a");
}

TEST_F(VmSemantics, HigherOrderPrimitivesAreFirstClass) {
  // Open-coded at call sites, but also real procedures.
  EXPECT_EQ(run("(map car '((1 2) (3 4)))"), "(1 3)");
  EXPECT_EQ(run("(map + '(1 2) '(3 4))"), "(4 6)");
  EXPECT_EQ(run("(let ((f cons)) (f 1 2))"), "(1 . 2)");
}

TEST_F(VmSemantics, ShadowingPrimitivesLexically) {
  // A lexical binding of a primitive name must win over open-coding.
  EXPECT_EQ(run("(let ((+ -)) (+ 10 4))"), "6");
  EXPECT_EQ(run("(let ((car cdr)) (car '(1 2 3)))"), "(2 3)");
}

TEST_F(VmSemantics, Errors) {
  EXPECT_EQ(run("(car 5)"), "error: car: not a pair: 5");
  EXPECT_EQ(run("(undefined-fn 1)"), "error: unbound variable: undefined-fn");
  EXPECT_EQ(run("(error \"boom\" 1 2)"), "error: error: boom 1 2");
  EXPECT_EQ(run("((lambda (x) x))"),
            "error: wrong number of arguments (0) to #<procedure>");
  EXPECT_EQ(run("(vector-ref (vector 1) 5)"),
            "error: vector-ref: index out of range");
  EXPECT_EQ(run("(set! nope 3)"), "error: set! of unbound variable: nope");
  EXPECT_EQ(run("(1 2 3)"), "error: attempt to apply non-procedure 1");
}

TEST_F(VmSemantics, TailPositionsDontGrowTheStack) {
  // Mutual recursion through and/or/cond/when in tail position.
  EXPECT_EQ(run("(define (f n) (if (zero? n) 'done (g (- n 1))))"
                "(define (g n) (f n))"
                "(f 300000)"),
            "done");
  EXPECT_EQ(run("(define (f n) (cond ((zero? n) 'done) (else (f (- n 1)))))"
                "(f 300000)"),
            "done");
  EXPECT_EQ(run("(define (f n) (and (> n -1) (or (zero? n) (f (- n 1)))))"
                "(f 300000)"),
            "#t");
}

TEST_F(VmSemantics, MultipleValues) {
  EXPECT_EQ(run("(call-with-values (lambda () (values 1 2)) +)"), "3");
  EXPECT_EQ(run("(call-with-values (lambda () (values)) (lambda () 'none))"),
            "none");
  EXPECT_EQ(run("(call-with-values (lambda () 42) (lambda (x) (* x 2)))"),
            "84");
  EXPECT_EQ(run("(call-with-values (lambda () (values 1 2 3)) list)"),
            "(1 2 3)");
  // values in non-tail position: single-value continuation takes the first.
  EXPECT_EQ(run("(+ 1 (values 5))"), "6");
  // Nested call-with-values.
  EXPECT_EQ(run("(call-with-values"
                "  (lambda () (call-with-values (lambda () (values 1 2))"
                "                               (lambda (a b) (values b a))))"
                "  list)"),
            "(2 1)");
}

TEST_F(VmSemantics, GcSurvivesWorkload) {
  // Allocate enough to force several collections and verify structure
  // integrity afterwards.
  EXPECT_EQ(run("(define (build n) "
                "  (let loop ((i 0) (acc '()))"
                "    (if (= i n) acc (loop (+ i 1) (cons (list i i) acc)))))"
                "(define big (build 50000))"
                "(gc)"
                "(length big)"),
            "50000");
  EXPECT_GT(I.stats().GcCount, 0u);
  EXPECT_EQ(run("(car (car big))"), "49999");
}
