// The sharded serving pool (src/serve/Pool): fd handoff to specific
// workers over socketpairs, 64+ concurrent clients load-balanced across
// 4 shards over real loopback TCP, worker-crash propagation through
// ErrorKind, deterministic per-worker trace dumps, aggregation of
// per-shard Stats::Snapshots, clean stop with requests in flight, and
// the paper's invariant held per shard — zero stack words copied per
// steady-state park on every worker.
//
// Registered under the ctest label "serve".

#include "osc.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace osc;

namespace {

ServeOptions options(int Workers,
                     ListenMode Mode = ListenMode::ReusePort) {
  ServeOptions O;
  O.Workers = Workers;
  O.MaxInflight = 64;
  O.Mode = Mode;
  return O;
}

void mustStart(Pool &P) {
  ASSERT_TRUE(P.start()) << P.error();
  ASSERT_NE(P.tcpPort(), 0);
}

std::string ask(Client &C, const std::string &Line) {
  std::string Reply;
  if (!C.request(Line, Reply))
    return "<no reply>";
  return Reply;
}

/// Spins (with a real deadline) until \p Pred holds — how the tests wait
/// for a specific worker-side state transition they can observe only
/// through the shard's atomic counters.
template <typename PredT> bool spinUntil(PredT Pred, int TimeoutMs = 10000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (!Pred()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// One socketpair round trip against a specific worker: hand one end to
/// the shard, speak the protocol over the other.
void askWorkerDirect(Pool &P, int Worker, const std::string &Line,
                     const std::string &Want) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  Error E = P.handoff(Worker, Sp[0]);
  ASSERT_TRUE(E.ok()) << E;
  Client C;
  C.adopt(Sp[1]);
  EXPECT_EQ(ask(C, Line), Want);
  C.close();
}

/// 64 clients against 4 shards, all requests in flight at once — over
/// either accept path.  ReusePort: the kernel spreads connections across
/// the shards' own listeners; CentralAcceptor: the acceptor thread
/// spreads them by load.  Either way each shard serves its own with zero
/// words copied per park.
void pingBurst(ListenMode Mode) {
  constexpr int N = 64;
  Pool P(options(4, Mode));
  mustStart(P);
  ASSERT_EQ(P.listenMode(), Mode);
  // Wait for every shard's startup parks (ReusePort: acceptor on the
  // listener + taker on take-conn; central: the worker loop's take-conn)
  // before the burst, so each shard's first delivery is a park-wake and
  // the AcceptBatches bounds below are deterministic — without the gate a
  // fast burst can beat the acceptor to io-accept and complete every
  // accept inline (batches legitimately 0).
  uint64_t StartParks = Mode == ListenMode::ReusePort ? 2 : 1;
  for (int W = 0; W < P.workers(); ++W)
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= StartParks;
    })) << "worker " << W;
  std::vector<Client> Cs(N);
  std::string E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].connect(P.tcpPort(), E)) << "client " << K << ": " << E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].sendLine(K % 2 ? "PING"
                                     : "EVAL (+ " + std::to_string(K) + " 1)"));
  for (int K = 0; K < N; ++K) {
    std::string Reply;
    ASSERT_TRUE(Cs[K].recvLine(Reply)) << "client " << K;
    EXPECT_EQ(Reply, K % 2 ? "PONG" : std::to_string(K + 1)) << "client " << K;
  }
  for (Client &C : Cs)
    C.close();
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();

  Stats::Snapshot D = P.snapshot() - P.baseline();
  EXPECT_EQ(D.RequestsServed, static_cast<uint64_t>(N));
  // Per-shard accept counts sum to the burst exactly — every connection
  // was accepted on (or handed to) exactly one shard.
  uint64_t PerShard = 0;
  for (int W = 0; W < P.workers(); ++W)
    PerShard += (P.snapshot(W) - P.baseline(W)).AcceptedConnections;
  EXPECT_EQ(PerShard, static_cast<uint64_t>(N));
  EXPECT_EQ(D.AcceptedConnections, static_cast<uint64_t>(N));
  // Batching: each delivery wake accounts for >= 1 accepted connection.
  // The startup-park gate above guarantees each shard's first delivery
  // is a park-wake, so every shard that accepted anything has a batch;
  // inline accepts join the current batch, hence Batches <= Accepted.
  EXPECT_GE(D.AcceptBatches, 1u);
  EXPECT_LE(D.AcceptBatches, D.AcceptedConnections);
  for (int W = 0; W < P.workers(); ++W) {
    Stats::Snapshot S = P.snapshot(W) - P.baseline(W);
    if (S.AcceptedConnections > 0)
      EXPECT_GE(S.AcceptBatches, 1u) << "worker " << W;
    EXPECT_LE(S.AcceptBatches, S.AcceptedConnections) << "worker " << W;
  }
  // The headline invariant, per shard: serving parked and resumed on
  // every worker without copying a single stack word.
  for (int W = 0; W < P.workers(); ++W) {
    Stats::Snapshot S = P.snapshot(W) - P.baseline(W);
    EXPECT_GT(S.IoParks, 0u) << "worker " << W << " never parked";
    EXPECT_EQ(S.WordsCopied, 0u) << "worker " << W << " copied stack words";
  }
}

} // namespace

TEST(Pool, PingAcrossPoolTcp) { pingBurst(ListenMode::ReusePort); }

TEST(Pool, PingAcrossPoolTcpCentralAcceptor) {
  pingBurst(ListenMode::CentralAcceptor);
}

TEST(Pool, HandoffTargetsSpecificWorker) {
  Pool P(options(3));
  mustStart(P);
  askWorkerDirect(P, 2, "EVAL (* 6 7)", "42");
  askWorkerDirect(P, 0, "PING", "PONG");
  // The connections landed exactly where they were pushed.
  ASSERT_TRUE(spinUntil([&] {
    return (P.snapshot(2) - P.baseline(2)).ConnectionsClosed == 1 &&
           (P.snapshot(0) - P.baseline(0)).ConnectionsClosed == 1;
  }));
  EXPECT_EQ((P.snapshot(0) - P.baseline(0)).AcceptedConnections, 1u);
  EXPECT_EQ((P.snapshot(1) - P.baseline(1)).AcceptedConnections, 0u);
  EXPECT_EQ((P.snapshot(2) - P.baseline(2)).AcceptedConnections, 1u);
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
}

TEST(Pool, SnapshotAggregatesAcrossWorkers) {
  Pool P(options(4));
  mustStart(P);
  for (int W = 0; W < 4; ++W)
    askWorkerDirect(P, W, "PING", "PONG");
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  // The pool total is exactly the per-shard sum (operator+= over every
  // counter), and every shard contributed.
  Stats::Snapshot Sum;
  for (int W = 0; W < 4; ++W) {
    Stats::Snapshot S = P.snapshot(W);
    EXPECT_EQ((S - P.baseline(W)).RequestsServed, 1u) << "worker " << W;
    Sum += S;
  }
  Stats::Snapshot Total = P.snapshot();
  EXPECT_EQ(Total.RequestsServed, Sum.RequestsServed);
  EXPECT_EQ(Total.AcceptedConnections, Sum.AcceptedConnections);
  EXPECT_EQ(Total.Instructions, Sum.Instructions);
  EXPECT_EQ(Total.IoParks, Sum.IoParks);
  EXPECT_EQ((Total - P.baseline()).RequestsServed, 4u);
}

TEST(Pool, WorkerCrashPropagatesErrorKind) {
  // A worker program that dies immediately: the pool reports the failure
  // through the same structured Error the embedding API uses, tagged
  // with the shard that crashed.
  ServeOptions O = options(2);
  O.Program = "(car 1)";
  Pool P(O);
  mustStart(P);
  // Gate on the observable counter delta rather than racing stop()
  // against the restart sequence: the shard crashes on every (re)start,
  // so once WorkerRestarts reaches the cap the final failure is recorded
  // and stop() below never depends on crash/join timing.
  ASSERT_TRUE(spinUntil([&] {
    return (P.snapshot(0) - P.baseline(0)).WorkerRestarts >=
           static_cast<uint64_t>(O.MaxWorkerRestarts);
  }));
  P.stop();
  EXPECT_FALSE(P.error().ok());
  EXPECT_EQ(P.error().Kind, ErrorKind::Runtime);
  EXPECT_NE(P.error().Message.find("worker 0"), std::string::npos)
      << P.error();
  EXPECT_NE(P.error().Message.find("car"), std::string::npos) << P.error();
  EXPECT_FALSE(P.result(0).Ok);
  EXPECT_EQ(P.result(0).Kind, ErrorKind::Runtime);
}

TEST(Pool, HandoffAfterStopIsServerStopped) {
  Pool P(options(2));
  mustStart(P);
  P.stop();
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  Error E = P.handoff(1, Sp[0]);
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.Kind, ErrorKind::ServerStopped);
  // On failure the caller keeps the fd.
  ::close(Sp[0]);
  ::close(Sp[1]);
}

namespace {

/// stop() is initiated while requests are still in flight; the pool must
/// drain them (every client gets its reply) and shut down clean.  In
/// ReusePort mode this exercises the shutdown drain: connections the
/// kernel completed but no shard accepted yet are admitted (io-try-accept)
/// before the listeners close.
void cleanStopInflight(ListenMode Mode) {
  constexpr int N = 16;
  Pool P(options(4, Mode));
  mustStart(P);
  std::vector<Client> Cs(N);
  std::string E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].connect(P.tcpPort(), E)) << E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].sendLine("EVAL (+ " + std::to_string(K) + " 10)"));

  std::thread Stopper([&P] { P.stop(); });
  for (int K = 0; K < N; ++K) {
    std::string Reply;
    EXPECT_TRUE(Cs[K].recvLine(Reply)) << "client " << K;
    EXPECT_EQ(Reply, std::to_string(K + 10));
  }
  for (Client &C : Cs)
    C.close();
  Stopper.join();
  ASSERT_TRUE(P.error().ok()) << P.error();
  EXPECT_EQ((P.snapshot() - P.baseline()).RequestsServed,
            static_cast<uint64_t>(N));
}

} // namespace

TEST(Pool, CleanStopWithInflightRequests) {
  cleanStopInflight(ListenMode::ReusePort);
}

TEST(Pool, CleanStopWithInflightRequestsCentralAcceptor) {
  cleanStopInflight(ListenMode::CentralAcceptor);
}

TEST(Pool, ReusePortWorkerRestartRebindsItsListener) {
  // A 1-worker ReusePort pool whose program serves exactly one connection
  // per run, then crashes: every restart must re-bind the shard's
  // listener on the same port, so a fresh client reaches the fresh
  // Interp.  The taker mirrors the real worker's shutdown path so stop()
  // stays prompt.
  ServeOptions O;
  O.Workers = 1;
  O.Mode = ListenMode::ReusePort;
  O.Program = R"scheme(
(define (acceptor)
  (let ((conn (io-accept *listener*)))
    (if (eof-object? conn)
        'closed
        (begin
          (io-write conn "HI\n")
          (io-close conn)
          (car 1)))))
(define (taker)
  (let ((conn (io-take-conn)))
    (if (eof-object? conn)
        (io-close *listener*)
        (taker))))
(spawn acceptor)
(spawn taker)
(scheduler-run *preempt*)
)scheme";
  Pool P(O);
  mustStart(P);
  ASSERT_EQ(P.listenMode(), ListenMode::ReusePort);
  for (int Round = 0; Round < 2; ++Round) {
    // A connect can race the crash window (old listener closed, new one
    // just bound): retry until the live listener answers.
    ASSERT_TRUE(spinUntil([&] {
      Client C;
      std::string E, Reply;
      if (!C.connect(P.tcpPort(), E))
        return false;
      return C.recvLine(Reply, 2000) && Reply == "HI";
    })) << "round " << Round;
  }
  // Both serves crashed the worker; both restarts re-bound the listener.
  ASSERT_TRUE(spinUntil([&] {
    return (P.snapshot(0) - P.baseline(0)).WorkerRestarts >= 2;
  }));
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  EXPECT_GE((P.snapshot() - P.baseline()).WorkerRestarts, 2u);
}

namespace {

/// Runs a fixed two-worker workload where every worker-side transition is
/// gated on observable counter changes, so the shard's event order — and
/// therefore its trace — is a function of the program alone.  The
/// connections go through handoff (which both modes serve) rather than
/// TCP, because ReusePort's kernel balancing would make *placement*
/// nondeterministic; what the test pins is each shard's own event order.
/// Returns the two tagged dumps.
void tracedRun(ListenMode Mode, std::vector<std::string> &Dumps) {
  ServeOptions O;
  O.Workers = 2;
  O.MaxInflight = 4;
  O.Mode = Mode;
  O.TraceWorkers = true;
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();

  // A ReusePort shard parks one extra thread at startup (its acceptor,
  // on the shard listener) on top of the taker's take-conn park, so
  // every park gate below shifts by one.
  uint64_t G = Mode == ListenMode::ReusePort ? 1 : 0;
  for (int W = 0; W < 2; ++W) {
    // Wait for the shard's take-conn park before handing over, so the
    // take never short-circuits.
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= 1 + G;
    })) << "worker " << W;
    int Sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
    ASSERT_TRUE(P.handoff(W, Sp[0]).ok());
    // Wait until the conn thread has parked reading and the worker loop
    // has parked on its next take, so the PING below always finds a
    // parked reader.
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= 3 + G;
    })) << "worker " << W;
    Client C;
    C.adopt(Sp[1]);
    EXPECT_EQ(ask(C, "PING"), "PONG");
    // After answering, the conn thread loops back into io-read-line.  Wait
    // for that park (the shard's 4th) before closing, so EOF always finds
    // a parked reader instead of racing an inline read.
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= 4 + G;
    })) << "worker " << W;
    C.close();
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).ConnectionsClosed >= 1;
    })) << "worker " << W;
  }
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  for (int W = 0; W < 2; ++W)
    Dumps.push_back(P.traceDump(W));
}

/// The determinism contract, per mode: two identical runs produce
/// byte-identical per-shard dumps, and the two shards (same workload)
/// produce identical dumps modulo the shard tag.
void checkDeterministicTraces(ListenMode Mode) {
  std::vector<std::string> A, B;
  tracedRun(Mode, A);
  if (testing::Test::HasFatalFailure())
    return;
  tracedRun(Mode, B);
  if (testing::Test::HasFatalFailure())
    return;
  ASSERT_EQ(A.size(), 2u);
  ASSERT_EQ(B.size(), 2u);
  for (int W = 0; W < 2; ++W) {
    EXPECT_FALSE(A[static_cast<size_t>(W)].empty()) << "worker " << W;
    // Byte-identical across runs: per-shard sequence numbers, port ids
    // (never fds) and the workload fully determine the dump.
    EXPECT_EQ(A[static_cast<size_t>(W)], B[static_cast<size_t>(W)])
        << "worker " << W << " trace differs between identical runs";
    // Tagged with the shard id, line by line.
    EXPECT_EQ(A[static_cast<size_t>(W)].rfind("w" + std::to_string(W) + " ",
                                              0),
              0u);
  }
  // The two shards ran the same workload: identical traces modulo tag.
  std::string W0 = A[0], W1 = A[1];
  size_t Pos = 0;
  while ((Pos = W1.find("w1 ", Pos)) != std::string::npos)
    W1.replace(Pos, 3, "w0 ");
  EXPECT_EQ(W0, W1);
}

} // namespace

TEST(Pool, DeterministicPerWorkerTraces) {
  checkDeterministicTraces(ListenMode::ReusePort);
}

TEST(Pool, DeterministicPerWorkerTracesCentralAcceptor) {
  checkDeterministicTraces(ListenMode::CentralAcceptor);
}
