// The sharded serving pool (src/serve/Pool): fd handoff to specific
// workers over socketpairs, 64+ concurrent clients load-balanced across
// 4 shards over real loopback TCP, worker-crash propagation through
// ErrorKind, deterministic per-worker trace dumps, aggregation of
// per-shard Stats::Snapshots, clean stop with requests in flight, and
// the paper's invariant held per shard — zero stack words copied per
// steady-state park on every worker.
//
// Registered under the ctest label "serve".

#include "osc.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace osc;

namespace {

Pool::Options options(int Workers) {
  Pool::Options O;
  O.Workers = Workers;
  O.MaxInflight = 64;
  return O;
}

void mustStart(Pool &P) {
  ASSERT_TRUE(P.start()) << P.error();
  ASSERT_NE(P.tcpPort(), 0);
}

std::string ask(Client &C, const std::string &Line) {
  std::string Reply;
  if (!C.request(Line, Reply))
    return "<no reply>";
  return Reply;
}

/// Spins (with a real deadline) until \p Pred holds — how the tests wait
/// for a specific worker-side state transition they can observe only
/// through the shard's atomic counters.
template <typename PredT> bool spinUntil(PredT Pred, int TimeoutMs = 10000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (!Pred()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// One socketpair round trip against a specific worker: hand one end to
/// the shard, speak the protocol over the other.
void askWorkerDirect(Pool &P, int Worker, const std::string &Line,
                     const std::string &Want) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  Error E = P.handoff(Worker, Sp[0]);
  ASSERT_TRUE(E.ok()) << E;
  Client C;
  C.adopt(Sp[1]);
  EXPECT_EQ(ask(C, Line), Want);
  C.close();
}

} // namespace

TEST(Pool, PingAcrossPoolTcp) {
  // 64 clients against 4 shards, all requests in flight at once.  The
  // acceptor spreads connections by load; each shard serves its own with
  // zero words copied per park.
  constexpr int N = 64;
  Pool P(options(4));
  mustStart(P);
  std::vector<Client> Cs(N);
  std::string E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].connect(P.tcpPort(), E)) << "client " << K << ": " << E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].sendLine(K % 2 ? "PING"
                                     : "EVAL (+ " + std::to_string(K) + " 1)"));
  for (int K = 0; K < N; ++K) {
    std::string Reply;
    ASSERT_TRUE(Cs[K].recvLine(Reply)) << "client " << K;
    EXPECT_EQ(Reply, K % 2 ? "PONG" : std::to_string(K + 1)) << "client " << K;
  }
  for (Client &C : Cs)
    C.close();
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();

  Stats::Snapshot D = P.snapshot() - P.baseline();
  EXPECT_EQ(D.RequestsServed, static_cast<uint64_t>(N));
  EXPECT_EQ(D.AcceptedConnections, static_cast<uint64_t>(N));
  // The headline invariant, per shard: serving parked and resumed on
  // every worker without copying a single stack word.
  for (int W = 0; W < P.workers(); ++W) {
    Stats::Snapshot S = P.snapshot(W) - P.baseline(W);
    EXPECT_GT(S.IoParks, 0u) << "worker " << W << " never parked";
    EXPECT_EQ(S.WordsCopied, 0u) << "worker " << W << " copied stack words";
  }
}

TEST(Pool, HandoffTargetsSpecificWorker) {
  Pool P(options(3));
  mustStart(P);
  askWorkerDirect(P, 2, "EVAL (* 6 7)", "42");
  askWorkerDirect(P, 0, "PING", "PONG");
  // The connections landed exactly where they were pushed.
  ASSERT_TRUE(spinUntil([&] {
    return (P.snapshot(2) - P.baseline(2)).ConnectionsClosed == 1 &&
           (P.snapshot(0) - P.baseline(0)).ConnectionsClosed == 1;
  }));
  EXPECT_EQ((P.snapshot(0) - P.baseline(0)).AcceptedConnections, 1u);
  EXPECT_EQ((P.snapshot(1) - P.baseline(1)).AcceptedConnections, 0u);
  EXPECT_EQ((P.snapshot(2) - P.baseline(2)).AcceptedConnections, 1u);
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
}

TEST(Pool, SnapshotAggregatesAcrossWorkers) {
  Pool P(options(4));
  mustStart(P);
  for (int W = 0; W < 4; ++W)
    askWorkerDirect(P, W, "PING", "PONG");
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  // The pool total is exactly the per-shard sum (operator+= over every
  // counter), and every shard contributed.
  Stats::Snapshot Sum;
  for (int W = 0; W < 4; ++W) {
    Stats::Snapshot S = P.snapshot(W);
    EXPECT_EQ((S - P.baseline(W)).RequestsServed, 1u) << "worker " << W;
    Sum += S;
  }
  Stats::Snapshot Total = P.snapshot();
  EXPECT_EQ(Total.RequestsServed, Sum.RequestsServed);
  EXPECT_EQ(Total.AcceptedConnections, Sum.AcceptedConnections);
  EXPECT_EQ(Total.Instructions, Sum.Instructions);
  EXPECT_EQ(Total.IoParks, Sum.IoParks);
  EXPECT_EQ((Total - P.baseline()).RequestsServed, 4u);
}

TEST(Pool, WorkerCrashPropagatesErrorKind) {
  // A worker program that dies immediately: the pool reports the failure
  // through the same structured Error the embedding API uses, tagged
  // with the shard that crashed.
  Pool::Options O = options(2);
  O.Program = "(car 1)";
  Pool P(O);
  mustStart(P);
  // Gate on the observable counter delta rather than racing stop()
  // against the restart sequence: the shard crashes on every (re)start,
  // so once WorkerRestarts reaches the cap the final failure is recorded
  // and stop() below never depends on crash/join timing.
  ASSERT_TRUE(spinUntil([&] {
    return (P.snapshot(0) - P.baseline(0)).WorkerRestarts >=
           static_cast<uint64_t>(O.MaxWorkerRestarts);
  }));
  P.stop();
  EXPECT_FALSE(P.error().ok());
  EXPECT_EQ(P.error().Kind, ErrorKind::Runtime);
  EXPECT_NE(P.error().Message.find("worker 0"), std::string::npos)
      << P.error();
  EXPECT_NE(P.error().Message.find("car"), std::string::npos) << P.error();
  EXPECT_FALSE(P.result(0).Ok);
  EXPECT_EQ(P.result(0).Kind, ErrorKind::Runtime);
}

TEST(Pool, HandoffAfterStopIsServerStopped) {
  Pool P(options(2));
  mustStart(P);
  P.stop();
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  Error E = P.handoff(1, Sp[0]);
  EXPECT_FALSE(E.ok());
  EXPECT_EQ(E.Kind, ErrorKind::ServerStopped);
  // On failure the caller keeps the fd.
  ::close(Sp[0]);
  ::close(Sp[1]);
}

TEST(Pool, CleanStopWithInflightRequests) {
  // stop() is initiated while requests are still in flight; the pool
  // must drain them (every client gets its reply) and shut down clean.
  constexpr int N = 16;
  Pool P(options(4));
  mustStart(P);
  std::vector<Client> Cs(N);
  std::string E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].connect(P.tcpPort(), E)) << E;
  for (int K = 0; K < N; ++K)
    ASSERT_TRUE(Cs[K].sendLine("EVAL (+ " + std::to_string(K) + " 10)"));

  std::thread Stopper([&P] { P.stop(); });
  for (int K = 0; K < N; ++K) {
    std::string Reply;
    ASSERT_TRUE(Cs[K].recvLine(Reply)) << "client " << K;
    EXPECT_EQ(Reply, std::to_string(K + 10));
  }
  for (Client &C : Cs)
    C.close();
  Stopper.join();
  ASSERT_TRUE(P.error().ok()) << P.error();
  EXPECT_EQ((P.snapshot() - P.baseline()).RequestsServed,
            static_cast<uint64_t>(N));
}

namespace {

/// Runs a fixed two-worker workload where every worker-side transition is
/// gated on observable counter changes, so the shard's event order — and
/// therefore its trace — is a function of the program alone.  Returns the
/// two tagged dumps.
void tracedRun(std::vector<std::string> &Dumps) {
  Pool::Options O;
  O.Workers = 2;
  O.MaxInflight = 4;
  O.TraceWorkers = true;
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();

  for (int W = 0; W < 2; ++W) {
    // Wait for the shard's take-conn park before handing over, so the
    // take never short-circuits.
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= 1;
    })) << "worker " << W;
    int Sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
    ASSERT_TRUE(P.handoff(W, Sp[0]).ok());
    // Wait until the conn thread has parked reading and the worker loop
    // has parked on its next take, so the PING below always finds a
    // parked reader.
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= 3;
    })) << "worker " << W;
    Client C;
    C.adopt(Sp[1]);
    EXPECT_EQ(ask(C, "PING"), "PONG");
    // After answering, the conn thread loops back into io-read-line.  Wait
    // for that park (the shard's 4th) before closing, so EOF always finds
    // a parked reader instead of racing an inline read.
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).IoParks >= 4;
    })) << "worker " << W;
    C.close();
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(W) - P.baseline(W)).ConnectionsClosed >= 1;
    })) << "worker " << W;
  }
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  for (int W = 0; W < 2; ++W)
    Dumps.push_back(P.traceDump(W));
}

} // namespace

TEST(Pool, DeterministicPerWorkerTraces) {
  std::vector<std::string> A, B;
  tracedRun(A);
  if (HasFatalFailure())
    return;
  tracedRun(B);
  if (HasFatalFailure())
    return;
  ASSERT_EQ(A.size(), 2u);
  ASSERT_EQ(B.size(), 2u);
  for (int W = 0; W < 2; ++W) {
    EXPECT_FALSE(A[static_cast<size_t>(W)].empty()) << "worker " << W;
    // Byte-identical across runs: per-shard sequence numbers, port ids
    // (never fds) and the workload fully determine the dump.
    EXPECT_EQ(A[static_cast<size_t>(W)], B[static_cast<size_t>(W)])
        << "worker " << W << " trace differs between identical runs";
    // Tagged with the shard id, line by line.
    EXPECT_EQ(A[static_cast<size_t>(W)].rfind("w" + std::to_string(W) + " ",
                                              0),
              0u);
  }
  // The two shards ran the same workload: identical traces modulo tag.
  std::string W0 = A[0], W1 = A[1];
  size_t Pos = 0;
  while ((Pos = W1.find("w1 ", Pos)) != std::string::npos)
    W1.replace(Pos, 3, "w0 ");
  EXPECT_EQ(W0, W1);
}
