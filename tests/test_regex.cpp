// The bytecode regex subsystem (src/regex) end to end: parser errors as
// trappable VM errors, anchoring and character-class edge cases, the
// streaming matcher across arbitrary chunk boundaries, one-shot reuse
// detection on a suspended match resumption, and the MATCH /
// MATCH/STREAM protocol verbs over real loopback TCP on both the
// stand-alone Server and the sharded Pool — including slow-client
// reaping with a byte-identical teardown trace.
//
// Registered under the ctest label "regex" (the serve-layer tests here
// also answer to -L regex so the subsystem runs in isolation).

#include "osc.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace osc;

namespace {

class RegexTest : public ::testing::Test {
protected:
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

ServeOptions serverOptions() {
  ServeOptions O;
  O.MaxInflight = 64;
  return O;
}

void mustStart(Server &S) {
  ASSERT_TRUE(S.start()) << S.error();
  ASSERT_NE(S.tcpPort(), 0);
}

std::string ask(Client &C, const std::string &Line) {
  std::string Reply;
  if (!C.request(Line, Reply))
    return "<no reply>";
  return Reply;
}

} // namespace

// --- compilation and parse errors --------------------------------------------

TEST_F(RegexTest, CompileYieldsARegexObject) {
  EXPECT_EQ(run("(regex? (regex-compile \"a+b\"))"), "#t");
  EXPECT_EQ(run("(regex? \"a+b\")"), "#f");
  EXPECT_EQ(run("(regex? 42)"), "#f");
  // The program is a compact bytecode buffer, not a tree walk.
  EXPECT_EQ(run("(> (regex-program-size (regex-compile \"a|b|c\")) 0)"), "#t");
}

TEST_F(RegexTest, ParseErrorsAreTrappableAndTheVmSurvives) {
  // Every malformed pattern is an ordinary VM error naming the defect and
  // echoing the pattern; the Interp keeps evaluating afterwards.
  struct Case {
    const char *Pat;
    const char *Defect;
  };
  const Case Cases[] = {
      {"a{3,1}", "reversed repetition bounds"},
      {"*a", "nothing to repeat"},
      {"a**", "nested quantifier"},
      {"(ab", "unmatched '('"},
      {"ab)", "unmatched ')'"},
      {"[z-a]", "reversed class range"},
      {"[abc", "unterminated character class"},
      {"a{2", "unterminated repetition"},
      {"a{999}", "repetition bound exceeds 255"},
      {"ab\\\\", "trailing backslash"}, // reaches the engine as ab\
      {"\\\\q", "bad escape"},          // reaches the engine as \q
  };
  for (const Case &C : Cases) {
    std::string R =
        run(std::string("(regex-compile \"") + C.Pat + "\")");
    EXPECT_NE(R.find("error:"), std::string::npos) << C.Pat << " => " << R;
    EXPECT_NE(R.find(C.Defect), std::string::npos) << C.Pat << " => " << R;
  }
  EXPECT_EQ(run("(+ 1 2)"), "3"); // the VM is still standing
  EXPECT_EQ(run("(regex-search (regex-compile \"b+\") \"abbbc\")"), "(1 . 4)");
}

TEST_F(RegexTest, TryCompileTurnsErrorsIntoFalse) {
  EXPECT_EQ(run("(regex-try-compile \"a{3,1}\")"), "#f");
  EXPECT_EQ(run("(regex? (regex-try-compile \"a{1,3}\"))"), "#t");
}

// --- matching semantics ------------------------------------------------------

TEST_F(RegexTest, SearchIsLeftmostLongest) {
  EXPECT_EQ(run("(regex-search (regex-compile \"a+\") \"baaac\")"), "(1 . 4)");
  // Leftmost wins over longer-but-later.
  EXPECT_EQ(run("(regex-search (regex-compile \"a+\") \"abaaa\")"), "(0 . 1)");
  EXPECT_EQ(run("(regex-search (regex-compile \"x\") \"abc\")"), "#f");
  // Alternation takes the longest match at the leftmost start.
  EXPECT_EQ(run("(regex-search (regex-compile \"ab|abc\") \"zabcz\")"),
            "(1 . 4)");
}

TEST_F(RegexTest, FullMatchMustConsumeTheWholeString) {
  EXPECT_EQ(run("(regex-match (regex-compile \"a*b\") \"aaab\")"), "#t");
  EXPECT_EQ(run("(regex-match (regex-compile \"a*b\") \"aaabc\")"), "#f");
  EXPECT_EQ(run("(regex-match (regex-compile \"a*\") \"\")"), "#t");
  EXPECT_EQ(run("(regex-match (regex-compile \"(ab|cd){2}\") \"abcd\")"),
            "#t");
  EXPECT_EQ(run("(regex-match (regex-compile \"(ab|cd){2}\") \"abc\")"),
            "#f");
}

TEST_F(RegexTest, Anchors) {
  EXPECT_EQ(run("(regex-search (regex-compile \"^foo\") \"foobar\")"),
            "(0 . 3)");
  EXPECT_EQ(run("(regex-search (regex-compile \"^foo\") \"barfoo\")"), "#f");
  EXPECT_EQ(run("(regex-search (regex-compile \"foo$\") \"barfoo\")"),
            "(3 . 6)");
  EXPECT_EQ(run("(regex-search (regex-compile \"foo$\") \"fooba\")"), "#f");
  EXPECT_EQ(run("(regex-search (regex-compile \"^ab$\") \"ab\")"), "(0 . 2)");
  EXPECT_EQ(run("(regex-search (regex-compile \"^ab$\") \"xab\")"), "#f");
  // ^ mid-pattern via alternation still only fires at offset zero.
  EXPECT_EQ(run("(regex-search (regex-compile \"^a|b\") \"cab\")"), "(2 . 3)");
  EXPECT_EQ(run("(regex-search (regex-compile \"^$\") \"\")"), "(0 . 0)");
}

TEST_F(RegexTest, CharacterClassEdgeCases) {
  // ']' as the first member is a literal.
  EXPECT_EQ(run("(regex-search (regex-compile \"[]a]+\") \"x]a]y\")"),
            "(1 . 4)");
  // Negation, with '^' only special in first position.
  EXPECT_EQ(run("(regex-search (regex-compile \"[^0-9]+\") \"12ab34\")"),
            "(2 . 4)");
  EXPECT_EQ(run("(regex-search (regex-compile \"[a^]+\") \"z^aq\")"),
            "(1 . 3)");
  // '-' is a literal when leading or trailing.
  EXPECT_EQ(run("(regex-search (regex-compile \"[-az]+\") \"q-a-z\")"),
            "(1 . 5)");
  EXPECT_EQ(run("(regex-search (regex-compile \"[az-]+\") \"qa-z\")"),
            "(1 . 4)");
  // Perl-style class escapes compose inside brackets.
  EXPECT_EQ(run("(regex-search (regex-compile \"[\\\\d_]+\") \"ab1_2c\")"),
            "(2 . 5)");
  EXPECT_EQ(run("(regex-match (regex-compile \"[\\\\w]+\") \"a_9Z\")"), "#t");
  EXPECT_EQ(run("(regex-search (regex-compile \"\\\\s+\") \"ab \\tcd\")"),
            "(2 . 4)");
  EXPECT_EQ(run("(regex-search (regex-compile \"\\\\D+\") \"12ab3\")"),
            "(2 . 4)");
  // A class matches exactly one byte; '.' refuses newline, classes don't.
  EXPECT_EQ(run("(regex-match (regex-compile \"[ab]\") \"ab\")"), "#f");
  EXPECT_EQ(run("(regex-search (regex-compile \".\") \"\\n x\")"), "(1 . 2)");
  EXPECT_EQ(run("(regex-search (regex-compile \"[^x]\") \"\\nx\")"),
            "(0 . 1)");
}

TEST_F(RegexTest, BoundedRepetition) {
  EXPECT_EQ(run("(regex-match (regex-compile \"a{3}\") \"aaa\")"), "#t");
  EXPECT_EQ(run("(regex-match (regex-compile \"a{3}\") \"aa\")"), "#f");
  EXPECT_EQ(run("(regex-match (regex-compile \"a{2,}\") \"aaaaa\")"), "#t");
  EXPECT_EQ(run("(regex-match (regex-compile \"a{2,}\") \"a\")"), "#f");
  EXPECT_EQ(run("(regex-search (regex-compile \"a{2,3}\") \"caaaaat\")"),
            "(1 . 4)");
  EXPECT_EQ(run("(regex-match (regex-compile \"a{0,2}\") \"\")"), "#t");
}

// --- the streaming matcher ---------------------------------------------------

TEST_F(RegexTest, StreamFindsMatchesAcrossChunkBoundaries) {
  // The needle straddles the boundary; state carries across feeds.
  EXPECT_EQ(run("(define st (regex-stream (regex-compile \"needle\")))"
                "(regex-stream-feed! st \"hay nee\")"),
            "#f");
  EXPECT_EQ(run("(regex-stream-feed! st \"dle stack\")"), "(4 . 10)");
  EXPECT_EQ(run("(regex-stream-done? st)"), "#t");
  // Byte-at-a-time chunking decides at exactly the same offsets.
  EXPECT_EQ(run("(define st2 (regex-stream (regex-compile \"needle\")))"
                "(let loop ((i 0) (r #f))"
                "  (if (or r (>= i 10)) r"
                "      (loop (+ i 1)"
                "            (regex-stream-feed!"
                "             st2 (substring \"hay needle\" i (+ i 1))))))"),
            "(4 . 10)");
}

TEST_F(RegexTest, StreamEndDecidesAndNoMatchIsASymbol) {
  EXPECT_EQ(run("(define st (regex-stream (regex-compile \"xyz\")))"
                "(regex-stream-feed! st \"abc\")"),
            "#f");
  EXPECT_EQ(run("(regex-stream-end! st)"), "nomatch");
  EXPECT_EQ(run("(regex-stream-done? st)"), "#t");
  // An end-anchored pattern cannot decide before end-of-input.
  EXPECT_EQ(run("(define st2 (regex-stream (regex-compile \"ab$\")))"
                "(regex-stream-feed! st2 \"zab\")"),
            "#f");
  EXPECT_EQ(run("(regex-stream-end! st2)"), "(1 . 3)");
  // A begin-anchored miss is decided without waiting for more input.
  EXPECT_EQ(run("(define st3 (regex-stream (regex-compile \"^ab\")))"
                "(regex-stream-feed! st3 \"xy\")"),
            "nomatch");
  EXPECT_EQ(run("(regex-stream-offset st3)"), "1");
}

TEST_F(RegexTest, StreamObjectsSurviveGC) {
  // The matcher and program are ordinary heap objects: force collections
  // with live streams in flight and keep matching.
  EXPECT_EQ(run("(define st (regex-stream (regex-compile \"abc+d\")))"
                "(let loop ((i 0))"
                "  (if (< i 50)"
                "      (begin (make-vector 512 i) (gc)"
                "             (regex-stream-feed! st \"abc\")"
                "             (loop (+ i 1)))"
                "      'fed))"),
            "fed");
  EXPECT_EQ(run("(regex-stream-feed! st \"cccd\")"), "(147 . 154)");
}

// --- one-shot discipline around a suspended match ----------------------------

TEST_F(RegexTest, SuspendedMatchResumptionIsOneShot) {
  // A MATCH/STREAM-shaped suspension: feed, park via shift, resume once
  // to finish the match — then prove the stashed continuation is spent.
  EXPECT_EQ(run("(define saved #f)"
                "(define st (regex-stream (regex-compile \"ab\")))"
                "(reset 'p"
                "  (regex-stream-feed! st \"a\")"
                "  (shift 'p k (set! saved k) 'parked)"
                "  (regex-stream-feed! st \"b\"))"),
            "parked");
  EXPECT_EQ(run("(saved 'resume)"), "(0 . 2)");
  std::string Second = run("(saved 'resume)");
  EXPECT_NE(Second.find("delimited continuation invoked a second time"),
            std::string::npos)
      << Second;
  EXPECT_EQ(run("(+ 1 2)"), "3"); // the error unwound cleanly
}

// --- the MATCH and MATCH/STREAM protocol verbs -------------------------------

TEST(RegexServe, MatchVerbOnServer) {
  Server S(serverOptions());
  mustStart(S);
  Client C;
  std::string E;
  ASSERT_TRUE(C.connect(S.tcpPort(), E)) << E;
  EXPECT_EQ(ask(C, "MATCH b+ abbbc"), "FOUND 1 4");
  EXPECT_EQ(ask(C, "MATCH ^foo barfoo"), "NOMATCH");
  EXPECT_EQ(ask(C, "MATCH [0-9]{3} order 123 shipped"), "FOUND 6 9");
  // The text may contain spaces; a literal space in the pattern is [ ].
  EXPECT_EQ(ask(C, "MATCH a[ ]b x a b y"), "FOUND 2 5");
  // Bad patterns and missing arguments answer ERR, never kill the conn.
  EXPECT_EQ(ask(C, "MATCH a{3,1} text"), "ERR");
  EXPECT_EQ(ask(C, "MATCH loner"), "ERR");
  EXPECT_EQ(ask(C, "PING"), "PONG");
  C.close();
  S.stop();
  EXPECT_TRUE(S.result().Ok) << S.result().Error;
  Stats::Snapshot D = S.snapshot() - S.baseline();
  EXPECT_GE(D.RegexExecs, 4u);
  EXPECT_GT(D.RegexBytesScanned, 0u);
}

TEST(RegexServe, MatchStreamVerbOnServer) {
  Server S(serverOptions());
  mustStart(S);
  Client C;
  std::string E;
  ASSERT_TRUE(C.connect(S.tcpPort(), E)) << E;
  // Undecided chunks answer AGAIN; the match lands across a boundary.
  ASSERT_TRUE(C.sendLine("MATCH/STREAM needle"));
  EXPECT_EQ(ask(C, "hay nee"), "AGAIN");
  EXPECT_EQ(ask(C, "dle stack"), "FOUND 4 10");
  // The connection returns to normal dispatch after the verb settles.
  EXPECT_EQ(ask(C, "PING"), "PONG");
  // END forces the decision at end-of-input.
  ASSERT_TRUE(C.sendLine("MATCH/STREAM xyz$"));
  EXPECT_EQ(ask(C, "abxyzc"), "AGAIN");
  EXPECT_EQ(ask(C, "xy"), "AGAIN");
  EXPECT_EQ(ask(C, "z"), "AGAIN");
  EXPECT_EQ(ask(C, "END"), "FOUND 6 9");
  ASSERT_TRUE(C.sendLine("MATCH/STREAM nope"));
  EXPECT_EQ(ask(C, "some text"), "AGAIN");
  EXPECT_EQ(ask(C, "END"), "NOMATCH");
  // A bad pattern is one ERR line; the verb never starts.
  EXPECT_EQ(ask(C, "MATCH/STREAM a{9,1}"), "ERR");
  EXPECT_EQ(ask(C, "EVAL (+ 20 22)"), "42");
  C.close();
  S.stop();
  EXPECT_TRUE(S.result().Ok) << S.result().Error;
  Stats::Snapshot D = S.snapshot() - S.baseline();
  EXPECT_GE(D.RegexStreamFeeds, 6u);
}

TEST(RegexServe, MatchStreamKeepsTheZeroCopyInvariant) {
  // The generator driving MATCH/STREAM parks once per chunk; in the
  // one-shot steady state not one stack word may move.
  Server S(serverOptions());
  mustStart(S);
  Client C;
  std::string E;
  ASSERT_TRUE(C.connect(S.tcpPort(), E)) << E;
  ASSERT_EQ(ask(C, "PING"), "PONG"); // warmup park
  ASSERT_TRUE(C.sendLine("MATCH/STREAM zz9"));
  ASSERT_EQ(ask(C, "warm"), "AGAIN");
  uint64_t Fed = 4;
  uint64_t W0 = S.snapshot().WordsCopied;
  for (int K = 0; K < 64; ++K) {
    std::string Chunk = "chunk " + std::to_string(K);
    ASSERT_EQ(ask(C, Chunk), "AGAIN") << K;
    Fed += Chunk.size();
  }
  EXPECT_EQ(ask(C, "zz"), "AGAIN");
  EXPECT_EQ(ask(C, "9 tail"), "FOUND " + std::to_string(Fed) + " " +
                                  std::to_string(Fed + 3));
  EXPECT_EQ(S.snapshot().WordsCopied, W0);
  C.close();
  S.stop();
  EXPECT_TRUE(S.result().Ok) << S.result().Error;
}

TEST(RegexServe, MatchVerbsOnPool) {
  // The verbs ride protocolSource, so every pool shard serves them too.
  ServeOptions O;
  O.Workers = 3;
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();
  std::vector<Client> Cs(6);
  std::string E;
  for (size_t K = 0; K < Cs.size(); ++K)
    ASSERT_TRUE(Cs[K].connect(P.tcpPort(), E)) << "client " << K << ": " << E;
  for (size_t K = 0; K < Cs.size(); ++K)
    EXPECT_EQ(ask(Cs[K], "MATCH a+b z" + std::string(K + 1, 'a') + "bz"),
              "FOUND 1 " + std::to_string(K + 3))
        << "client " << K;
  // A streaming match on one shard while the others keep answering.
  ASSERT_TRUE(Cs[0].sendLine("MATCH/STREAM end$"));
  EXPECT_EQ(ask(Cs[0], "not yet"), "AGAIN");
  EXPECT_EQ(ask(Cs[1], "MATCH q+ qqq"), "FOUND 0 3");
  EXPECT_EQ(ask(Cs[0], "the end"), "AGAIN");
  EXPECT_EQ(ask(Cs[0], "END"), "FOUND 11 14");
  EXPECT_EQ(ask(Cs[0], "PING"), "PONG");
  for (Client &C : Cs)
    C.close();
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  Stats::Snapshot D = P.snapshot() - P.baseline();
  EXPECT_GE(D.RegexExecs, 7u);
  EXPECT_EQ(D.WordsCopied, 0u);
}

// --- slow-client reaping mid-stream ------------------------------------------

TEST(RegexServe, ReapedMidStreamClientUnwindsTheVerb) {
  // A client opens MATCH/STREAM, sends one chunk, then stalls past the
  // connection deadline: the reactor reaps it, the generator's parked
  // read wakes with EOF, and the verb unwinds without copying a word.
  ServeOptions O = serverOptions();
  O.ConnDeadlineMs = 50;
  Server S(O);
  mustStart(S);
  Client C;
  std::string E;
  ASSERT_TRUE(C.connect(S.tcpPort(), E)) << E;
  ASSERT_TRUE(C.sendLine("MATCH/STREAM needle"));
  ASSERT_EQ(ask(C, "hay nee"), "AGAIN");
  // Stall.  The server must reap us; the socket just goes quiet/EOF.
  std::string L;
  EXPECT_FALSE(C.recvLine(L, 2000));
  C.close();
  S.stop();
  EXPECT_TRUE(S.result().Ok) << S.result().Error;
  Stats::Snapshot D = S.snapshot() - S.baseline();
  EXPECT_GE(D.ConnsReaped, 1u);
  EXPECT_GE(D.Timeouts, 1u);
  EXPECT_EQ(D.WordsCopied, 0u);
}

TEST(RegexServe, MidStreamReapTraceIsByteIdentical) {
  // The deterministic in-VM copy of the reap: the MATCH/STREAM shape —
  // a generator whose body reads a deadlined port and feeds a regex
  // stream, driven from a conn thread — torn down by the reactor's
  // clock.  Two runs must produce byte-identical traces, and the
  // teardown must not copy stack words.
  auto Run = [](std::string &Dump, Stats::Snapshot &Delta) {
    Interp I;
    Stats::Snapshot B = I.snapshot();
    I.trace().start();
    auto R = I.eval(
        "(define p (open-pipe))"
        "(io-set-deadline! (car p) 5)"
        "(define re (regex-compile \"needle\"))"
        "(define replies '())"
        "(spawn (lambda ()"
        "  (let ((g (make-generator"
        "            (lambda (v)"
        "              (let ((st (regex-stream re)))"
        "                (let loop ()"
        "                  (let ((chunk (io-read-line (car p))))"
        "                    (cond"
        "                      ((eof-object? chunk) 'eof)"
        "                      ((string=? chunk \"END\")"
        "                       (yield (regex-stream-end! st)) 'done)"
        "                      (else"
        "                       (let ((r (regex-stream-feed! st chunk)))"
        "                         (if r (begin (yield r) 'done)"
        "                             (begin (yield 'again) (loop)))))))))))))"
        "    (let drive ()"
        "      (let ((reply (generator-next g)))"
        "        (if (eof-object? reply)"
        "            'reaped"
        "            (begin (set! replies (cons reply replies))"
        "                   (drive))))))))"
        "(spawn (lambda () (io-write (cdr p) \"hay nee\\n\")))"
        "(scheduler-run)"
        "replies");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(I.valueToString(R.Val), "(again)");
    I.trace().stop();
    Dump = I.trace().toString();
    Delta = I.snapshot() - B;
  };
  std::string A, B;
  Stats::Snapshot DA, DB;
  Run(A, DA);
  if (::testing::Test::HasFatalFailure())
    return;
  Run(B, DB);
  if (::testing::Test::HasFatalFailure())
    return;
  EXPECT_EQ(DA.Timeouts, 1u);
  EXPECT_EQ(DA.ConnsReaped, 1u);
  EXPECT_EQ(DA.WordsCopied, 0u);
  EXPECT_EQ(DA.RegexStreamFeeds, 1u);
  EXPECT_EQ(A, B) << "mid-stream reap trace differs between identical runs";
  EXPECT_NE(A.find("io-timeout"), std::string::npos) << A;
}

// --- counters ----------------------------------------------------------------

TEST_F(RegexTest, VmStatReportsRegexCounters) {
  run("(regex-search (regex-compile \"a+\") \"caat\")");
  EXPECT_EQ(run("(> (vm-stat 'regex-compiles) 0)"), "#t");
  EXPECT_EQ(run("(> (vm-stat 'regex-execs) 0)"), "#t");
  EXPECT_EQ(run("(>= (vm-stat 'regex-bytes-scanned) 4)"), "#t");
  EXPECT_EQ(run("(> (vm-stat 'regex-steps) 0)"), "#t");
  run("(define st (regex-stream (regex-compile \"q\")))"
      "(regex-stream-feed! st \"zzz\")");
  EXPECT_EQ(run("(> (vm-stat 'regex-stream-feeds) 0)"), "#t");
}
