// Delimited control (shift/reset) built on the undelimited continuations,
// via Filinski's metacontinuation construction ("Representing Monads",
// POPL 94).  This is a demanding workout for multi-shot capture: every
// shift captures, and captured subcontinuations are re-entered freely.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

const char *DelimitedLib = R"SCM(
;; reset* / shift* take thunks/procedures (we have no macros).
(define *meta-k* (lambda (v) (error "shift outside reset")))

(define (reset* thunk)
  (call/cc (lambda (k)
    (let ((saved *meta-k*))
      (set! *meta-k* (lambda (v)
                       (set! *meta-k* saved)
                       (k v)))
      (let ((v (thunk)))
        (*meta-k* v))))))

(define (shift* f)
  (call/cc (lambda (k)
    (*meta-k* (f (lambda (v)
                   (reset* (lambda () (k v)))))))))
)SCM";

class DelimitedTest : public ::testing::Test {
protected:
  void SetUp() override { ASSERT_TRUE(I.eval(DelimitedLib).Ok); }
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

} // namespace

TEST_F(DelimitedTest, ResetWithoutShift) {
  EXPECT_EQ(run("(reset* (lambda () 42))"), "42");
  EXPECT_EQ(run("(+ 1 (reset* (lambda () (* 2 3))))"), "7");
}

TEST_F(DelimitedTest, ShiftDiscardsDelimitedContext) {
  EXPECT_EQ(run("(+ 1 (reset* (lambda ()"
                "  (+ 2 (shift* (lambda (k) 100))))))"),
            "101");
}

TEST_F(DelimitedTest, ShiftInvokesOnce) {
  EXPECT_EQ(run("(+ 1 (reset* (lambda ()"
                "  (+ 2 (shift* (lambda (k) (k 3)))))))"),
            "6");
}

TEST_F(DelimitedTest, ShiftInvokesTwice) {
  // k = (lambda (v) (+ 2 v)) delimited; (k (k 3)) = 2+(2+3) = 7.
  EXPECT_EQ(run("(+ 1 (reset* (lambda ()"
                "  (+ 2 (shift* (lambda (k) (k (k 3))))))))"),
            "8");
}

TEST_F(DelimitedTest, NestedResets) {
  EXPECT_EQ(run("(reset* (lambda ()"
                "  (+ 1 (reset* (lambda ()"
                "    (+ 10 (shift* (lambda (k) (k 100)))))))))"),
            "111");
  // The inner shift only captures up to the inner reset.
  EXPECT_EQ(run("(+ 1000 (reset* (lambda ()"
                "  (+ 100 (reset* (lambda ()"
                "    (shift* (lambda (k) 1))))))))"),
            "1101");
}

TEST_F(DelimitedTest, ShiftReturningAFunction) {
  // The classic: reset returns the delimited continuation itself.
  EXPECT_EQ(run("(define k1 (reset* (lambda ()"
                "  (+ 1 (shift* (lambda (k) k))))))"
                "(list (k1 10) (k1 20) (k1 (k1 5)))"),
            "(11 21 7)");
}

TEST_F(DelimitedTest, NondeterminismViaShift) {
  // amb over shift/reset: collect all results of a two-way choice.
  EXPECT_EQ(run("(define (choice xs)"
                "  (shift* (lambda (k)"
                "    (apply append (map (lambda (x) (k x)) xs)))))"
                "(reset* (lambda ()"
                "  (let ((x (choice '(1 2 3))))"
                "    (let ((y (choice '(10 20))))"
                "      (list (+ x y))))))"),
            "(11 21 12 22 13 23)");
}

TEST_F(DelimitedTest, StateMonadViaShift) {
  // A getter/setter state effect interpreted by the delimited context.
  EXPECT_EQ(run("(define (get) (shift* (lambda (k) (lambda (s) ((k s) s)))))"
                "(define (put s2)"
                "  (shift* (lambda (k) (lambda (s) ((k 'ok) s2)))))"
                "(define (run-state thunk s0)"
                "  ((reset* (lambda ()"
                "     (let ((r (thunk))) (lambda (s) (list r s)))))"
                "   s0))"
                "(run-state (lambda ()"
                "             (let ((x (get)))"
                "               (put (* x 10))"
                "               (+ x (get))))"
                "           7)"),
            "(77 70)");
}

TEST_F(DelimitedTest, GeneratorsViaShift) {
  EXPECT_EQ(run("(define (yield v) (shift* (lambda (k) (cons v (k #f)))))"
                "(reset* (lambda ()"
                "  (yield 1) (yield 2) (yield 3) '()))"),
            "(1 2 3)");
}

TEST_F(DelimitedTest, WorksUnderHostileConfigs) {
  for (int Variant = 0; Variant != 2; ++Variant) {
    Config C;
    if (Variant == 0) {
      C.SegmentWords = 128;
      C.InitialSegmentWords = 128;
    } else {
      C.CopyBoundWords = 16;
      C.Promotion = PromotionStrategy::SharedFlag;
    }
    Interp Small(C);
    ASSERT_TRUE(Small.eval(DelimitedLib).Ok);
    EXPECT_EQ(Small.evalToString(
                  "(define (choice xs)"
                  "  (shift* (lambda (k)"
                  "    (apply append (map (lambda (x) (k x)) xs)))))"
                  "(reset* (lambda ()"
                  "  (let ((x (choice '(1 2 3 4))))"
                  "    (let ((y (choice '(1 2 3 4))))"
                  "      (if (= (+ x y) 5) (list (list x y)) '())))))"),
              "((1 4) (2 3) (3 2) (4 1))")
        << "variant " << Variant;
  }
}

TEST_F(DelimitedTest, InteroperatesWithOneShotEscapes) {
  // A one-shot escape that jumps out of a reset altogether.
  EXPECT_EQ(run("(call/1cc (lambda (out)"
                "  (reset* (lambda ()"
                "    (+ 1 (shift* (lambda (k) (out (k 10)))))))))"),
            "11");
}
