// Garbage collector tests: liveness via roots, cycles, precise tracing of
// continuation stack ranges, segment-cache discarding at GC, and
// whole-interpreter integrity under GC pressure.

#include "object/Heap.h"
#include "object/ListUtil.h"
#include "support/Stats.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class GcTest : public ::testing::Test {
protected:
  GcTest() : H(S, /*GcThresholdBytes=*/1 << 30) {}
  Stats S;
  Heap H;
};

} // namespace

TEST_F(GcTest, UnrootedObjectsAreFreed) {
  for (int J = 0; J != 1000; ++J)
    H.allocPair(Value::nil(), Value::nil());
  uint64_t Before = S.GcBytesFreed;
  H.collect();
  EXPECT_GE(S.GcBytesFreed - Before, 1000 * sizeof(Pair));
}

TEST_F(GcTest, RootedObjectsSurvive) {
  GCRoot R(H, Value::object(H.allocPair(Value::fixnum(1), Value::nil())));
  H.collect();
  EXPECT_EQ(car(R.get()).asFixnum(), 1);
  // Reachability through the root keeps the whole structure alive.
  castObj<Pair>(R.get())->Cdr =
      Value::object(H.allocPair(Value::fixnum(2), Value::nil()));
  H.collect();
  EXPECT_EQ(car(cdr(R.get())).asFixnum(), 2);
}

TEST_F(GcTest, CyclesAreCollected) {
  {
    Pair *A = H.allocPair(Value::nil(), Value::nil());
    Pair *B = H.allocPair(Value::nil(), Value::nil());
    A->Cdr = Value::object(B);
    B->Cdr = Value::object(A);
  }
  uint64_t Freed = S.GcBytesFreed;
  H.collect();
  EXPECT_GE(S.GcBytesFreed - Freed, 2 * sizeof(Pair));
}

TEST_F(GcTest, RootedCycleSurvives) {
  Pair *A = H.allocPair(Value::fixnum(1), Value::nil());
  Pair *B = H.allocPair(Value::fixnum(2), Value::object(A));
  A->Cdr = Value::object(B);
  GCRoot R(H, Value::object(A));
  H.collect();
  EXPECT_EQ(car(R.get()).asFixnum(), 1);
  EXPECT_EQ(car(cdr(R.get())).asFixnum(), 2);
}

TEST_F(GcTest, SymbolsPersist) {
  Symbol *Sym = H.intern("persistent");
  Sym->Global = Value::fixnum(9);
  H.collect();
  EXPECT_EQ(H.intern("persistent"), Sym);
  EXPECT_EQ(Sym->Global.asFixnum(), 9);
}

TEST_F(GcTest, ContinuationTracesOnlyItsOccupiedRange) {
  // Build a continuation viewing a segment: slots inside [Start, Size)
  // keep their referents alive, slots above do not.
  StackSegment *Seg = H.allocSegment(32);
  Pair *Kept = H.allocPair(Value::fixnum(1), Value::nil());
  Pair *Dead = H.allocPair(Value::fixnum(2), Value::nil());
  Seg->Slots[3] = Value::object(Kept);
  Seg->Slots[20] = Value::object(Dead); // Above the sealed size.
  Continuation *K = H.allocContinuation();
  K->Seg = Value::object(Seg);
  K->Start = 0;
  K->Size = 10;
  K->SegSize = 32;
  K->RetCode = Value::fixnum(0);
  GCRoot R(H, Value::object(K));

  uint64_t Freed = S.GcBytesFreed;
  H.collect();
  // Kept survived; Dead was collected.
  EXPECT_EQ(car(Seg->Slots[3]).asFixnum(), 1);
  EXPECT_GE(S.GcBytesFreed - Freed, sizeof(Pair));
}

TEST_F(GcTest, ShotContinuationRetainsNothing) {
  StackSegment *Seg = H.allocSegment(16);
  Seg->Slots[2] = Value::object(H.allocPair(Value::fixnum(3), Value::nil()));
  Continuation *K = H.allocContinuation();
  K->Seg = Value::object(Seg);
  K->Start = 0;
  K->Size = -1; // Shot.
  K->SegSize = -1;
  K->RetCode = Value::fixnum(0);
  GCRoot R(H, Value::object(K));
  uint64_t Freed = S.GcBytesFreed;
  H.collect();
  EXPECT_GE(S.GcBytesFreed - Freed, sizeof(Pair));
}

TEST_F(GcTest, GrowthTriggersAndThresholdAdapts) {
  Stats S2;
  Heap Small(S2, /*GcThresholdBytes=*/64 * 1024);
  GCRoot Keep(Small, Value::nil());
  for (int J = 0; J != 10000; ++J) {
    if (Small.needsGC())
      Small.collect();
    Keep.set(Value::object(
        Small.allocPair(Value::fixnum(J), J % 100 ? Keep.get() : Value::nil())));
  }
  EXPECT_GT(S2.GcCount, 0u);
}

// --- Interpreter-level GC behavior -------------------------------------------

TEST(GcInterp, SegmentCacheDiscardedAtCollection) {
  Interp I;
  I.eval("(define (spin n)"
         "  (if (zero? n) 'done"
         "      (begin (car (list (call/1cc (lambda (k) (k 1)))))"
         "             (spin (- n 1)))))"
         "(spin 100)");
  ASSERT_GT(I.control().cacheSize(), 0u);
  I.collect();
  EXPECT_EQ(I.control().cacheSize(), 0u); // §3.2: GC discards the cache.
}

TEST(GcInterp, LiveContinuationsSurviveCollection) {
  Interp I;
  EXPECT_EQ(I.evalToString(
                "(define k #f)"
                "(define n 0)"
                "(define (deep d)"
                "  (if (zero? d) (call/cc (lambda (c) (set! k c) 0))"
                "      (+ 1 (deep (- d 1)))))"
                "(define r (deep 100))"
                "(gc) (gc)"
                "(set! n (+ n 1))"
                "(if (< n 3) (k 0) (list r n))"),
            "(100 3)");
}

TEST(GcInterp, HeapPressureDuringContinuationChurn) {
  Config C;
  C.GcThresholdBytes = 256 * 1024; // Frequent collections.
  Interp I(C);
  EXPECT_EQ(I.evalToString(
                "(define (work n acc)"
                "  (if (zero? n) acc"
                "      (work (- n 1)"
                "            (car (list (call/1cc (lambda (k)"
                "                         (k (cons n acc)))))))))"
                "(length (work 20000 '()))"),
            "20000");
  EXPECT_GT(I.stats().GcCount, 0u);
}

TEST(GcInterp, DormantOneShotSegmentsFreedWhenDropped) {
  Interp I;
  I.eval("(define parked '())"
         "(define (loop i)"
         "  (if (= i 20) 'ok"
         "      (car (list (%call/1cc (lambda (k)"
         "                   (set! parked (cons k parked))"
         "                   (loop (+ i 1))))))))"
         "(loop 0)");
  I.collect();
  uint64_t WhileParked = I.heap().segmentWordsInHeap();
  I.eval("(set! parked '())");
  I.collect();
  uint64_t AfterDrop = I.heap().segmentWordsInHeap();
  EXPECT_LT(AfterDrop, WhileParked);
}
