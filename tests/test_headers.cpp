// The public-header contract.  The heavy lifting happens at build time:
// tests/CMakeLists.txt generates one TU per public header that includes
// it (twice) with nothing else, so a header that stops being
// self-contained or idempotent breaks the test_headers build.  The
// runtime checks below pin down the API surface those headers promise.

#include "osc.h"

#include <gtest/gtest.h>

#include <type_traits>

using namespace osc;

TEST(Headers, UmbrellaExposesTheEmbeddingSurface) {
  // Everything docs/EMBEDDING.md names must be reachable from osc.h
  // alone.  Compile-time: these types exist and have the promised shape.
  static_assert(std::is_constructible_v<Interp, const Config &>);
  static_assert(std::is_constructible_v<Server, ServeOptions>);
  static_assert(std::is_constructible_v<Pool, ServeOptions>);
  static_assert(std::is_default_constructible_v<Client>);
  static_assert(std::is_default_constructible_v<Stats::Snapshot>);
  static_assert(std::is_default_constructible_v<Error>);
  static_assert(std::is_default_constructible_v<NativeDef>);
  SUCCEED();
}

TEST(Headers, ServeOptionsIsTheOneOptionsSurface) {
  // Both serving fronts take the same struct, and the pool-only knobs
  // have the documented defaults (ReusePort is the default accept path).
  ServeOptions O;
  EXPECT_EQ(O.Workers, 1);
  EXPECT_EQ(O.Mode, ListenMode::ReusePort);
  EXPECT_EQ(O.MaxWorkerRestarts, 3);
  EXPECT_STREQ(listenModeName(ListenMode::ReusePort), "reuseport");
  EXPECT_STREQ(listenModeName(ListenMode::CentralAcceptor), "central");
}

TEST(Headers, DeprecatedOptionsAliasesStillCompile) {
  // The pre-ServeOptions spellings must keep working for one release:
  // same struct, same fields, constructible into either front.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  static_assert(std::is_same_v<Server::Options, ServeOptions>);
  static_assert(std::is_same_v<Pool::Options, ServeOptions>);
  Server::Options SO;
  SO.MaxInflight = 8;
  Pool::Options PO;
  PO.Workers = 2;
  static_assert(std::is_constructible_v<Server, Server::Options>);
  static_assert(std::is_constructible_v<Pool, Pool::Options>);
  EXPECT_EQ(SO.MaxInflight, 8);
  EXPECT_EQ(PO.Workers, 2);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
}

TEST(Headers, ErrorKindNamesAreStable) {
  EXPECT_STREQ(errorKindName(ErrorKind::None), "ok");
  EXPECT_STREQ(errorKindName(ErrorKind::Parse), "parse");
  EXPECT_STREQ(errorKindName(ErrorKind::Runtime), "runtime");
  EXPECT_STREQ(errorKindName(ErrorKind::Fault), "fault");
  EXPECT_STREQ(errorKindName(ErrorKind::Io), "io");
  EXPECT_STREQ(errorKindName(ErrorKind::ServerStopped), "server-stopped");
}

TEST(Headers, SnapshotIsPlainData) {
  // A Snapshot must stay freely copyable plain data — it is the type
  // that crosses threads (pool aggregation) and gets stored in benches.
  static_assert(std::is_trivially_copyable_v<Stats::Snapshot>);
  Stats::Snapshot A;
  A.Instructions = 7;
  Stats::Snapshot B = A;
  B += A;
  EXPECT_EQ(B.Instructions, 14u);
  EXPECT_EQ((B - A).Instructions, 7u);
}
