// End-to-end smoke tests: the interpreter boots (prelude loads) and basic
// evaluation works.  Deeper per-module suites live in the sibling files.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

TEST(Smoke, Arithmetic) {
  Interp I;
  EXPECT_EQ(I.evalToString("(+ 1 2)"), "3");
  EXPECT_EQ(I.evalToString("(* 6 7)"), "42");
  EXPECT_EQ(I.evalToString("(- 10 4 3)"), "3");
}

TEST(Smoke, DefineAndCall) {
  Interp I;
  EXPECT_EQ(I.evalToString("(define (sq x) (* x x)) (sq 9)"), "81");
}

TEST(Smoke, TailRecursionDeep) {
  Interp I;
  EXPECT_EQ(I.evalToString("(define (loop n acc)"
                           "  (if (zero? n) acc (loop (- n 1) (+ acc 1))))"
                           "(loop 1000000 0)"),
            "1000000");
}

TEST(Smoke, CallCCBasic) {
  Interp I;
  EXPECT_EQ(I.evalToString("(call/cc (lambda (k) (+ 1 (k 41))))"), "41");
  EXPECT_EQ(I.evalToString("(+ 1 (call/cc (lambda (k) 41)))"), "42");
}

TEST(Smoke, Call1CCBasic) {
  Interp I;
  EXPECT_EQ(I.evalToString("(call/1cc (lambda (k) (k 7)))"), "7");
  EXPECT_EQ(I.evalToString("(+ 1 (call/1cc (lambda (k) 41)))"), "42");
}
