// Integration test for the paper's §2 interoperation scenario: "a Prolog
// interpreter might use multi-shot continuations to support nondeterminism
// while employing a thread system based on one-shot continuations at a
// lower level."  Backtracking across thread-yield points re-returns
// through scheduler one-shots, which is only sound because call/cc
// promotes them (§3.3) — so this is the end-to-end test of promotion.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

const char *InteropLib = R"SCM(
;; amb on multi-shot continuations.
(define %fail #f)
(define (amb-init! on-exhausted) (set! %fail on-exhausted))
(define (amb-list choices)
  (call/cc (lambda (k)
    (let ((prev %fail))
      (let try ((cs choices))
        (if (null? cs)
            (begin (set! %fail prev) (%fail))
            (begin
              (call/cc (lambda (retry)
                (set! %fail (lambda () (retry #f)))
                (k (car cs))))
              (try (cdr cs)))))))))
(define (require p) (if p #t (%fail)))

;; Cooperative threads on one-shot continuations.
(define %rq-front '())
(define %rq-back '())
(define (%rq-push! t) (set! %rq-back (cons t %rq-back)))
(define (%rq-empty?) (and (null? %rq-front) (null? %rq-back)))
(define (%rq-pop!)
  (when (null? %rq-front)
    (set! %rq-front (reverse %rq-back))
    (set! %rq-back '()))
  (let ((t (car %rq-front)))
    (set! %rq-front (cdr %rq-front))
    t))
(define %sched-exit #f)
(define (%schedule!) (if (%rq-empty?) (%sched-exit 'done) ((%rq-pop!))))
(define (spawn! thunk) (%rq-push! (lambda () (thunk) (%schedule!))))
(define (yield!)
  ;; Save/restore the per-search failure continuation across suspension.
  (let ((saved %fail))
    (call/1cc (lambda (k)
      (%rq-push! (lambda () (k #f)))
      (%schedule!)))
    (set! %fail saved)))
(define (run-scheduler)
  (call/1cc (lambda (exit)
    (set! %sched-exit exit)
    (%schedule!))))

;; A search that yields between choice points: find pairs (x, y) from
;; 0..n-1 with x + y = n and x > y, collecting every solution.
(define (pair-search n)
  (define out '())
  (call/cc (lambda (done)
    (amb-init! (lambda () (done (reverse out))))
    (let ((x (amb-list (iota n))))
      (yield!)                      ;; suspend inside the search
      (let ((y (amb-list (iota n))))
        (yield!)
        (require (= (+ x y) n))
        (require (> x y))
        (set! out (cons (list x y) out))
        (%fail))))))
)SCM";

} // namespace

TEST(Interop, BacktrackingAcrossYieldsViaPromotion) {
  Interp I;
  ASSERT_TRUE(I.eval(InteropLib).Ok);
  // Two searches interleave; each backtracks through dozens of yields.
  EXPECT_EQ(I.evalToString("(define r1 #f)"
                           "(define r2 #f)"
                           "(spawn! (lambda () (set! r1 (pair-search 8))))"
                           "(spawn! (lambda () (set! r2 (pair-search 6))))"
                           "(run-scheduler)"
                           "(list r1 r2)"),
            "(((5 3) (6 2) (7 1)) ((4 2) (5 1)))");
  // The soundness hinges on promotion: multi-shot captures promoted the
  // scheduler's one-shot continuations before re-returning through them.
  EXPECT_GT(I.stats().Promotions, 0u);
  EXPECT_GT(I.stats().OneShotCaptures, 10u);
  EXPECT_GT(I.stats().MultiShotInvokes, 10u);
}

TEST(Interop, SameUnderSharedFlagPromotion) {
  Config C;
  C.Promotion = PromotionStrategy::SharedFlag;
  Interp I(C);
  ASSERT_TRUE(I.eval(InteropLib).Ok);
  EXPECT_EQ(I.evalToString("(define r #f)"
                           "(spawn! (lambda () (set! r (pair-search 8))))"
                           "(run-scheduler)"
                           "r"),
            "((5 3) (6 2) (7 1))");
}

TEST(Interop, SameUnderTinySegments) {
  Config C;
  C.SegmentWords = 128;
  C.InitialSegmentWords = 128;
  Interp I(C);
  ASSERT_TRUE(I.eval(InteropLib).Ok);
  EXPECT_EQ(I.evalToString("(define r1 #f)"
                           "(define r2 #f)"
                           "(spawn! (lambda () (set! r1 (pair-search 8))))"
                           "(spawn! (lambda () (set! r2 (pair-search 6))))"
                           "(run-scheduler)"
                           "(list r1 r2)"),
            "(((5 3) (6 2) (7 1)) ((4 2) (5 1)))");
}
