// The I/O reactor (src/io) as seen from inside the VM: ports over pipes
// and socketpairs, green threads parking on would-block reads/writes via
// one-shot continuation capture, deterministic wake ordering, the EOF
// object, channel-close! wake semantics, and the sched-stats snapshot.
//
// The headline property under test is the paper's: a steady-state
// park/resume copies zero stack words, even when the parked continuation
// spans several tiny segments.
//
// Registered under the ctest label "serve" together with test_serve.

#include "core/Config.h"
#include "vm/Interp.h"

#include <gtest/gtest.h>

#include <string>

using namespace osc;

namespace {

std::string run(Interp &I, const std::string &Src) {
  return I.evalToString(Src);
}

// A reader green thread that collects every line from port `rd` until EOF
// and leaves the list (in arrival order) in `got`.
const char *ReaderDef =
    "(define got '())"
    "(define reader (spawn (lambda ()"
    "  (let loop ()"
    "    (let ((l (io-read-line rd)))"
    "      (if (eof-object? l) (reverse got)"
    "          (begin (set! got (cons l got)) (loop))))))))";

} // namespace

// --- Pipes and the park/wake round trip -------------------------------------

TEST(IoReactor, PipeParkWakeRoundTrip) {
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))" +
                       std::string(ReaderDef) +
                       "(spawn (lambda ()"
                       "  (io-write wr \"alpha\n\")"
                       "  (yield)"
                       "  (io-write wr \"beta\n\")"
                       "  (io-close wr)))"
                       "(scheduler-run)"
                       "(thread-join reader)"),
            "(\"alpha\" \"beta\")");
  // The reader parked at least once (on the empty pipe) and every park
  // was matched by a wake.
  EXPECT_EQ(run(I, "(> (vm-stat 'io-parks) 0)"), "#t");
  EXPECT_EQ(run(I, "(= (vm-stat 'io-parks) (vm-stat 'io-wakes))"), "#t");
}

TEST(IoReactor, SocketpairRoundTrip) {
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-socketpair))"
                   "(define rd (car p)) (define wr (cdr p))" +
                       std::string(ReaderDef) +
                       "(spawn (lambda ()"
                       "  (io-write wr \"one\n\")"
                       "  (io-write wr \"two\n\")"
                       "  (io-close wr)))"
                       "(scheduler-run)"
                       "(thread-join reader)"),
            "(\"one\" \"two\")");
}

TEST(IoReactor, EofTailWithoutNewlineIsDelivered) {
  // Bytes after the last newline still form a final line at EOF.
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))" +
                       std::string(ReaderDef) +
                       "(spawn (lambda ()"
                       "  (io-write wr \"full\ntail\")"
                       "  (io-close wr)))"
                       "(scheduler-run)"
                       "(thread-join reader)"),
            "(\"full\" \"tail\")");
}

TEST(IoReactor, ReadAfterEofKeepsReturningEof) {
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))"
                   "(io-close wr)"
                   "(list (eof-object? (io-read-line rd))"
                   "      (eof-object? (io-read-line rd)))"),
            "(#t #t)");
}

TEST(IoReactor, MainComputationBlocksInlineWithoutScheduler) {
  // Outside any green thread there is nothing to park: io-read-line on
  // the main computation polls inline.  Data already buffered in the
  // pipe is simply delivered.
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))"
                   "(io-write wr \"main\nline\n\")"
                   "(list (io-read-line rd) (io-read-line rd))"),
            "(\"main\" \"line\")");
  EXPECT_EQ(run(I, "(vm-stat 'io-parks)"), "0");
}

TEST(IoReactor, WriterParksWhenPipeIsFull) {
  // One line far larger than a pipe's kernel buffer: the writer must
  // park mid-write and the reader must drain it across several wakes.
  Interp I;
  EXPECT_EQ(
      run(I, "(define p (open-pipe))"
             "(define rd (car p)) (define wr (cdr p))"
             "(define (grow s n) (if (zero? n) s (grow (string-append s s) (- n 1))))"
             "(define big (grow \"0123456789abcdef\" 13))" // 16 * 2^13 = 128 KiB
             "(define reader (spawn (lambda ()"
             "  (let loop ((n 0))"
             "    (let ((l (io-read-line rd)))"
             "      (if (eof-object? l) n (loop (+ n (string-length l)))))))))"
             "(spawn (lambda ()"
             "  (io-write wr (string-append big \"\n\"))"
             "  (io-close wr)))"
             "(scheduler-run)"
             "(list (thread-join reader) (= (thread-join reader) (string-length big)))"),
      "(131072 #t)");
  EXPECT_EQ(run(I, "(> (vm-stat 'io-parks) 1)"), "#t");
  EXPECT_EQ(run(I, "(> (vm-stat 'bytes-written) 131071)"), "#t");
  EXPECT_EQ(run(I, "(> (vm-stat 'bytes-read) 131071)"), "#t");
}

TEST(IoReactor, CloseWakesParkedReaderWithEof) {
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))"
                   "(define t (spawn (lambda () (eof-object? (io-read-line rd)))))"
                   "(spawn (lambda () (io-close rd)))"
                   "(scheduler-run)"
                   "(thread-join t)"),
            "#t");
  EXPECT_EQ(run(I, "(= (vm-stat 'io-parks) (vm-stat 'io-wakes))"), "#t");
}

TEST(IoReactor, ClosedPortOperationsFail) {
  Interp I;
  auto R = I.eval("(define p (open-pipe))"
                  "(io-close (cdr p))"
                  "(io-write (cdr p) \"late\n\")");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("closed"), std::string::npos) << R.Error;
  EXPECT_EQ(run(I, "(io-closed? (cdr p))"), "#t");
  EXPECT_EQ(run(I, "(io-closed? (car p))"), "#f");
}

TEST(IoReactor, PollTimeoutSurfacesAsError) {
  // A reader parked on a pipe nobody ever writes: the reactor's poll
  // deadline turns the stall into a trappable error instead of a hang.
  Config C;
  C.IoPollTimeoutMs = 50;
  Interp I(C);
  auto R = I.eval("(define p (open-pipe))"
                  "(spawn (lambda () (io-read-line (car p))))"
                  "(scheduler-run)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("io: poll timed out"), std::string::npos) << R.Error;
  // The VM survives the abort and is reusable.
  EXPECT_EQ(run(I, "(+ 1 2)"), "3");
}

// --- Zero-copy parks ---------------------------------------------------------

TEST(IoReactor, SteadyStateParkResumeCopiesZeroWords) {
  Interp I;
  // Warm up one full park/wake cycle, then measure a second one.
  std::string Cycle = "(define p (open-pipe))"
                      "(define rd (car p)) (define wr (cdr p))"
                      "(define t (spawn (lambda () (io-read-line rd))))"
                      "(spawn (lambda () (io-write wr \"ping\n\") (io-close wr)))"
                      "(scheduler-run)"
                      "(thread-join t)";
  EXPECT_EQ(run(I, Cycle), "\"ping\"");
  EXPECT_EQ(run(I, "(define w0 (vm-stat 'words-copied))"
                   "(define parks0 (vm-stat 'io-parks))" +
                       Cycle +
                       "(list (- (vm-stat 'words-copied) w0)"
                       "      (> (vm-stat 'io-parks) parks0))"),
            "(0 #t)");
}

TEST(IoReactor, MultiShotShimCopiesOnEveryPark) {
  // The baseline column: with SchedOneShotSwitch off, every park is a
  // multi-shot capture and every resume pays a stack copy.
  Config C;
  C.SchedOneShotSwitch = false;
  Interp I(C);
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))"
                   "(define w0 (vm-stat 'words-copied))"
                   "(define t (spawn (lambda () (io-read-line rd))))"
                   "(spawn (lambda () (io-write wr \"ping\n\") (io-close wr)))"
                   "(scheduler-run)"
                   "(list (thread-join t) (> (vm-stat 'words-copied) w0))"),
            "(\"ping\" #t)");
}

TEST(IoReactor, ParkedContinuationAcrossTinySegmentsResumesIntact) {
  // The satellite case: 32-word segments force the parked thread's
  // continuation to span several segments; the one-shot resume must
  // reinstate it byte-identically (the arithmetic proves every frame
  // survived) and still copy nothing.
  Config C;
  C.SegmentWords = 32;
  C.InitialSegmentWords = 64;
  C.CopyBoundWords = 16;
  uint64_t Copied[2];
  for (bool OneShot : {true, false}) {
    Config P = C;
    P.SchedOneShotSwitch = OneShot;
    Interp I(P);
    EXPECT_EQ(
        run(I, "(define p (open-pipe))"
               "(define rd (car p)) (define wr (cdr p))"
               "(define (deep n)"
               "  (if (zero? n)"
               "      (string-length (io-read-line rd))"
               "      (+ 1 (deep (- n 1)))))"
               "(define t (spawn (lambda () (deep 40))))"
               "(spawn (lambda () (io-write wr \"hello\n\")))"
               "(scheduler-run)"
               "(thread-join t)"),
        "45")
        << "one-shot=" << OneShot;
    EXPECT_EQ(run(I, "(> (vm-stat 'overflows) 0)"), "#t");
    Copied[OneShot ? 0 : 1] = I.stats().WordsCopied;
  }
  // Segment overflow during the deep recursion legitimately copies a few
  // bounded frames in both modes; the multi-shot shim additionally pays
  // a full stack copy per park, so it must copy strictly more.
  EXPECT_LT(Copied[0], Copied[1]);
}

// --- Determinism -------------------------------------------------------------

namespace {

// Two fresh interpreters, same program, same config: the control-event
// traces (which include IoWait/IoReady with stable port ids) must match
// byte for byte.
void expectDeterministicTrace(const Config &C, const std::string &Body) {
  std::string Src = "(trace-start!)" + Body + "(trace-stop!) (trace-dump)";
  Interp A(C), B(C);
  auto RA = A.eval(Src);
  auto RB = B.eval(Src);
  ASSERT_TRUE(RA.Ok) << RA.Error;
  ASSERT_TRUE(RB.Ok) << RB.Error;
  std::string DA = A.valueToString(RA.Val), DB = B.valueToString(RB.Val);
  EXPECT_EQ(DA, DB);
  EXPECT_NE(DA.find("io-wait"), std::string::npos) << DA;
  EXPECT_NE(DA.find("io-ready"), std::string::npos) << DA;
}

const char *TracedBody =
    "(define p (open-pipe))"
    "(define rd (car p)) (define wr (cdr p))"
    "(define t (spawn (lambda ()"
    "  (let loop ((n 0))"
    "    (let ((l (io-read-line rd)))"
    "      (if (eof-object? l) n (loop (+ n (string-length l)))))))))"
    "(spawn (lambda ()"
    "  (io-write wr \"aa\n\") (yield)"
    "  (io-write wr \"bbb\n\")"
    "  (io-close wr)))"
    "(scheduler-run)"
    "(thread-join t)";

} // namespace

TEST(IoDeterminism, TraceIdenticalRunToRun) {
  expectDeterministicTrace(Config{}, TracedBody);
}

TEST(IoDeterminism, TraceIdenticalUnderScriptedPreemption) {
  Config C;
  C.Faults.PreemptAtCalls = {5, 9, 17, 23, 31};
  expectDeterministicTrace(C, TracedBody);
}

TEST(IoDeterminism, TraceIdenticalUnderTinySegments) {
  Config C;
  C.SegmentWords = 32;
  C.InitialSegmentWords = 64;
  C.CopyBoundWords = 16;
  expectDeterministicTrace(C, TracedBody);
}

TEST(IoDeterminism, WakeOrderFollowsPortIdThenSeq) {
  // Two readers parked on two different pipes become ready in the same
  // poll; the reactor must wake them in port-id order, not fd or arrival
  // order.  Both pipes are written while the readers are parked.
  Interp I;
  EXPECT_EQ(run(I, "(define p1 (open-pipe)) (define p2 (open-pipe))"
                   "(define order '())"
                   "(define (reader tag rd)"
                   "  (lambda ()"
                   "    (io-read-line rd)"
                   "    (set! order (cons tag order))))"
                   // Spawn in reverse port order: wake order must still
                   // follow port ids.
                   "(spawn (reader 'b (car p2)))"
                   "(spawn (reader 'a (car p1)))"
                   "(spawn (lambda ()"
                   "  (io-write (cdr p2) \"x\n\")"
                   "  (io-write (cdr p1) \"y\n\")))"
                   "(scheduler-run)"
                   "(reverse order)"),
            "(a b)");
}

// --- channel-close! ----------------------------------------------------------

TEST(ChannelClose, ParkedReceiversWakeWithEofInOrder) {
  Interp I;
  EXPECT_EQ(run(I, "(define ch (make-channel 0))"
                   "(define order '())"
                   "(define (rx tag)"
                   "  (lambda ()"
                   "    (let ((v (channel-recv ch)))"
                   "      (set! order (cons (list tag (eof-object? v)) order)))))"
                   "(spawn (rx 'first))"
                   "(spawn (rx 'second))"
                   "(spawn (lambda () (channel-close! ch)))"
                   "(scheduler-run)"
                   "(reverse order)"),
            "((first #t) (second #t))");
  EXPECT_EQ(run(I, "(vm-stat 'channels-closed)"), "1");
}

TEST(ChannelClose, BufferedValuesDrainBeforeEof) {
  Interp I;
  EXPECT_EQ(run(I, "(define ch (make-channel 4))"
                   "(channel-send! ch 'a) (channel-send! ch 'b)"
                   "(channel-close! ch)"
                   "(list (channel-recv ch) (channel-recv ch)"
                   "      (eof-object? (channel-recv ch)))"),
            "(a b #t)");
}

TEST(ChannelClose, SendOnClosedChannelFails) {
  Interp I;
  auto R = I.eval("(define ch (make-channel 2))"
                  "(channel-close! ch)"
                  "(channel-send! ch 1)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("closed"), std::string::npos) << R.Error;
}

TEST(ChannelClose, ParkedSenderIsPoisonedAndVmSurvives) {
  Interp I;
  auto R = I.eval("(define ch (make-channel 0))"
                  "(spawn (lambda () (channel-send! ch 'stuck)))"
                  "(spawn (lambda () (channel-close! ch)))"
                  "(scheduler-run)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("closed while a send was parked"), std::string::npos)
      << R.Error;
  EXPECT_EQ(run(I, "(* 7 6)"), "42");
  EXPECT_EQ(run(I, "(channel-closed? ch)"), "#t");
}

TEST(ChannelClose, CloseIsIdempotent) {
  Interp I;
  EXPECT_EQ(run(I, "(define ch (make-channel 1))"
                   "(channel-close! ch)"
                   "(channel-close! ch)"
                   "(list (channel-closed? ch) (vm-stat 'channels-closed))"),
            "(#t 1)");
}

TEST(ChannelClose, ClosedPredicateOnOpenChannel) {
  Interp I;
  EXPECT_EQ(run(I, "(channel-closed? (make-channel 3))"), "#f");
}

// --- sched-stats -------------------------------------------------------------

TEST(SchedStats, AlistCarriesTheCounters) {
  Interp I;
  EXPECT_EQ(run(I, "(define p (open-pipe))"
                   "(define rd (car p)) (define wr (cdr p))"
                   "(define t (spawn (lambda () (io-read-line rd))))"
                   "(spawn (lambda () (io-write wr \"hi\n\") (io-close wr)))"
                   "(scheduler-run)"
                   "(define s (sched-stats))"
                   "(define (stat k) (cdr (assq k s)))"
                   "(list (stat 'threads-spawned)"
                   "      (> (stat 'io-parks) 0)"
                   "      (= (stat 'io-parks) (stat 'io-wakes))"
                   "      (stat 'words-copied)"
                   "      (>= (stat 'bytes-written) 3)"
                   "      (> (stat 'one-shot-invokes) 0)"
                   // The accept-path counters ride in the same alist (and
                   // vm-stat) even off the serving stack: nothing accepted
                   // here, so both are present and zero.
                   "      (stat 'accepted-connections)"
                   "      (stat 'accept-batches)"
                   "      (vm-stat 'accept-batches))"),
            "(2 #t #t 0 #t #t 0 0 0)");
}

TEST(SchedStats, MatchesVmStat) {
  Interp I;
  EXPECT_EQ(run(I, "(spawn (lambda () (yield) 'x))"
                   "(spawn (lambda () (yield) 'y))"
                   "(scheduler-run)"
                   "(= (cdr (assq 'context-switches (sched-stats)))"
                   "   (vm-stat 'context-switches))"),
            "#t");
}

// --- string->datum -----------------------------------------------------------

TEST(StringToDatum, ParsesASexpr) {
  Interp I;
  EXPECT_EQ(run(I, "(string->datum \"(+ 1 (* 2 3))\")"), "(+ 1 (* 2 3))");
  EXPECT_EQ(run(I, "(string->datum \"42\")"), "42");
}

TEST(StringToDatum, EmptyAndGarbageYieldEof) {
  Interp I;
  EXPECT_EQ(run(I, "(list (eof-object? (string->datum \"\"))"
                   "      (eof-object? (string->datum \"   \"))"
                   "      (eof-object? (string->datum \"(unclosed\")))"),
            "(#t #t #t)");
}
