// The control-operator fuzzing oracle shared by test_control_fuzz.cpp.
//
// A seeded generator produces well-formed random nests of every control
// form the VM exposes — reset/shift (tagged, resuming and abortive),
// with-handler/perform (deep and shallow), dynamic-wind, call/cc,
// call/1cc, generators, async/await — as integer-valued expressions that
// also print, so success flag, value, error text, output AND the
// filtered control-event trace are all observable.  The oracle runs each
// program under the one-shot delimited representation and under the
// Config::DelimOneShot=false copying shim and demands byte-identical
// observations; a shrinker reduces any mismatch to a minimal tree by
// subtree deletion and hoisting.
//
// Everything here is deterministic: the same seed always yields the same
// program, so a failure message's (seed, config) pair is a complete
// reproducer.

#ifndef OSC_TESTS_CONTROLFUZZ_H
#define OSC_TESTS_CONTROLFUZZ_H

#include "osc.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace osc_fuzz {

// --- deterministic PRNG (splitmix64) -----------------------------------------

struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
  bool chance(uint32_t Pct) { return below(100) < Pct; }
};

// --- program trees -----------------------------------------------------------

enum class FKind {
  Lit,            ///< small integer
  Add,            ///< (+ a b)
  Sub,            ///< (- a b)
  Seq,            ///< (begin a b)
  Display,        ///< (begin (display a) (newline) b)
  Reset,          ///< (reset 'tN body)
  ShiftResume,    ///< (shift 'tN k (+ a (k b))) — k used exactly once
  ShiftAbort,     ///< (shift 'tN k a) — k never used
  HandlerDeep,    ///< (with-handler 'hN clauses... body)
  HandlerShallow, ///< (with-shallow-handler 'hN clauses... body)
  Perform,        ///< (perform 'hN 'opM arg)
  Wind,           ///< (dynamic-wind before body after), thunks print
  Esc1cc,         ///< (call/1cc (lambda (k) ...)) — escape once or unused
  EscCc,          ///< (call/cc  (lambda (k) ...)) — same shape
  GenDrive,       ///< make-generator with two yields, driven to eof, summed
  AsyncRun,       ///< (let ((f (async body))) (scheduler-run) (future-get f))
  RegexSearch,    ///< (+ kid <span-sum of a fixed regex-search>) — exercises
                  ///< regex heap objects (and their GC tracing) inside
                  ///< arbitrary control nests; Op picks the pattern/text pair
};

constexpr int NumFKinds = static_cast<int>(FKind::RegexSearch) + 1;

/// The RegexSearch pattern/text pairs, indexed by FNode::Op.  Spans are
/// fixed, so the leaf's value is a compile-time-known integer: matches
/// contribute start+end, a miss contributes 0.
struct RegexCase {
  const char *Pat;
  const char *Text;
};
constexpr RegexCase RegexCases[] = {
    {"a+b", "zzaab"},    // (2 . 5)  -> 7
    {"[0-9]+", "x42y"},  // (1 . 3)  -> 4
    {"q", "nope"},       // #f       -> 0
    {"^ab?c$", "ac"},    // (0 . 2)  -> 2
};
constexpr int NumRegexCases =
    static_cast<int>(sizeof(RegexCases) / sizeof(RegexCases[0]));

struct FNode {
  FKind K = FKind::Lit;
  int Lit = 1; ///< literal value (Lit)
  int Tag = 0; ///< reset/handler tag index
  int Op = 0;  ///< operation index (Perform), variant flag (Esc1cc/EscCc)
  int Uid = 0; ///< uniquifies bound names and print markers
  int NClauses = 1; ///< handler clause count (1 or 2)
  std::vector<FNode> Kids;
};

inline size_t countForms(const FNode &N) {
  size_t C = 1;
  for (const FNode &K : N.Kids)
    C += countForms(K);
  return C;
}

inline void renderInto(const FNode &N, std::string &S) {
  auto U = std::to_string(N.Uid);
  switch (N.K) {
  case FKind::Lit:
    S += std::to_string(N.Lit);
    return;
  case FKind::Add:
  case FKind::Sub:
    S += N.K == FKind::Add ? "(+ " : "(- ";
    renderInto(N.Kids[0], S);
    S += " ";
    renderInto(N.Kids[1], S);
    S += ")";
    return;
  case FKind::Seq:
    S += "(begin ";
    renderInto(N.Kids[0], S);
    S += " ";
    renderInto(N.Kids[1], S);
    S += ")";
    return;
  case FKind::Display:
    S += "(begin (display ";
    renderInto(N.Kids[0], S);
    S += ") (newline) ";
    renderInto(N.Kids[1], S);
    S += ")";
    return;
  case FKind::Reset:
    S += "(reset 't" + std::to_string(N.Tag) + " ";
    renderInto(N.Kids[0], S);
    S += ")";
    return;
  case FKind::ShiftResume:
    S += "(shift 't" + std::to_string(N.Tag) + " j" + U + " (+ ";
    renderInto(N.Kids[0], S);
    S += " (j" + U + " ";
    renderInto(N.Kids[1], S);
    S += ")))";
    return;
  case FKind::ShiftAbort:
    S += "(shift 't" + std::to_string(N.Tag) + " j" + U + " ";
    renderInto(N.Kids[0], S);
    S += ")";
    return;
  case FKind::HandlerDeep:
  case FKind::HandlerShallow:
    // Kids: [0]=body, [1]=op0 resume augend, ([2]=op1 abort value).
    S += N.K == FKind::HandlerDeep ? "(with-handler 'h" : "(with-shallow-handler 'h";
    S += std::to_string(N.Tag);
    S += " ((op0 j" + U + " a" + U + ") (j" + U + " (+ a" + U + " ";
    renderInto(N.Kids[1], S);
    S += ")))";
    if (N.NClauses > 1) {
      S += " ((op1 q" + U + " b" + U + ") (+ b" + U + " ";
      renderInto(N.Kids[2], S);
      S += "))";
    }
    S += " ";
    renderInto(N.Kids[0], S);
    S += ")";
    return;
  case FKind::Perform:
    S += "(perform 'h" + std::to_string(N.Tag) + " 'op" +
         std::to_string(N.Op) + " ";
    renderInto(N.Kids[0], S);
    S += ")";
    return;
  case FKind::Wind:
    S += "(dynamic-wind (lambda () (display 'i" + U +
         ")) (lambda () ";
    renderInto(N.Kids[0], S);
    S += ") (lambda () (display 'o" + U + ")))";
    return;
  case FKind::Esc1cc:
  case FKind::EscCc: {
    const char *Form = N.K == FKind::Esc1cc ? "(call/1cc" : "(call/cc";
    if (N.Op == 0) {
      // k unused: the capture is pure cost.
      S += std::string(Form) + " (lambda (j" + U + ") ";
      renderInto(N.Kids[0], S);
      S += "))";
    } else {
      // One-shot-respecting escape through a pending (+ _).
      S += std::string(Form) + " (lambda (j" + U + ") (+ ";
      renderInto(N.Kids[0], S);
      S += " (j" + U + " ";
      renderInto(N.Kids[1], S);
      S += "))))";
    }
    return;
  }
  case FKind::GenDrive:
    // Two yields then a final value, driven to eof and summed.  Yield
    // arguments may themselves shift/perform through the generator's
    // delimiter — the saved-prompt path in packDelimK.
    S += "(let ((g" + U + " (make-generator (lambda (v" + U + ") (yield ";
    renderInto(N.Kids[0], S);
    S += ") (yield ";
    renderInto(N.Kids[1], S);
    S += ") ";
    renderInto(N.Kids[2], S);
    S += "))))" //
         " (let lp" + U + " ((x" + U + " (generator-next g" + U + ")) (s" + U +
         " 0)) (if (eof-object? x" + U + ") s" + U + " (lp" + U +
         " (generator-next g" + U + ") (+ s" + U + " x" + U + ")))))";
    return;
  case FKind::AsyncRun:
    S += "(let ((f" + U + " (async ";
    renderInto(N.Kids[0], S);
    S += "))) (scheduler-run) (future-get f" + U + "))";
    return;
  case FKind::RegexSearch: {
    const RegexCase &RC = RegexCases[N.Op % NumRegexCases];
    S += "(+ ";
    renderInto(N.Kids[0], S);
    S += " (let ((m" + U + " (regex-search (regex-compile \"" +
         std::string(RC.Pat) + "\") \"" + RC.Text + "\")))" //
         " (if (pair? m" + U + ") (+ (car m" + U + ") (cdr m" + U + ")) 0)))";
    return;
  }
  }
}

inline std::string render(const FNode &N) {
  std::string S;
  renderInto(N, S);
  return S;
}

// --- generation --------------------------------------------------------------

struct GenCtx {
  std::vector<int> ResetTags;   ///< tags with a live enclosing reset
  std::vector<int> HandlerTags; ///< tags with a live enclosing handler
  int Depth = 0;
  bool TopLevel = true; ///< AsyncRun only here (scheduler-run must not nest)
};

inline FNode genExpr(Rng &R, GenCtx Ctx, int &Budget, int &Uid);

inline FNode genLit(Rng &R) {
  FNode N;
  N.K = FKind::Lit;
  N.Lit = static_cast<int>(R.below(9)) + 1;
  return N;
}

inline FNode genExpr(Rng &R, GenCtx Ctx, int &Budget, int &Uid) {
  if (Budget <= 1 || Ctx.Depth >= 7)
    return genLit(R);
  Budget -= 1;
  GenCtx Inner = Ctx;
  Inner.Depth += 1;
  Inner.TopLevel = false;

  // Weighted pick over the applicable productions.
  struct Choice {
    FKind K;
    int Weight;
  };
  std::vector<Choice> Cs = {
      {FKind::Lit, 10},        {FKind::Add, 14},
      {FKind::Sub, 6},         {FKind::Seq, 4},
      {FKind::Display, 7},     {FKind::Reset, 10},
      {FKind::HandlerDeep, 10}, {FKind::HandlerShallow, 4},
      {FKind::Wind, 8},        {FKind::Esc1cc, 5},
      {FKind::EscCc, 3},       {FKind::GenDrive, 5},
      {FKind::RegexSearch, 4},
  };
  if (!Ctx.ResetTags.empty()) {
    Cs.push_back({FKind::ShiftResume, 9});
    Cs.push_back({FKind::ShiftAbort, 4});
  }
  if (!Ctx.HandlerTags.empty())
    Cs.push_back({FKind::Perform, 12});
  if (Ctx.TopLevel)
    Cs.push_back({FKind::AsyncRun, 8});

  int Total = 0;
  for (const Choice &C : Cs)
    Total += C.Weight;
  int Pick = static_cast<int>(R.below(static_cast<uint32_t>(Total)));
  FKind K = FKind::Lit;
  for (const Choice &C : Cs) {
    Pick -= C.Weight;
    if (Pick < 0) {
      K = C.K;
      break;
    }
  }

  FNode N;
  N.K = K;
  N.Uid = Uid++;
  switch (K) {
  case FKind::Lit:
    return genLit(R);
  case FKind::Add:
  case FKind::Sub:
  case FKind::Seq:
  case FKind::Display:
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::Reset: {
    N.Tag = static_cast<int>(R.below(3));
    GenCtx Body = Inner;
    Body.ResetTags.push_back(N.Tag);
    N.Kids.push_back(genExpr(R, Body, Budget, Uid));
    return N;
  }
  case FKind::ShiftResume:
    N.Tag = Ctx.ResetTags[R.below(static_cast<uint32_t>(Ctx.ResetTags.size()))];
    // The receiver body runs outside the delimiter it just cut away, but
    // outer delimiters are still live: reuse the *outer* context minus
    // nothing (the innermost matching reset is consumed at runtime; a
    // nested same-tag shift in the receiver would bind further out, which
    // is legal and must agree across representations).
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::ShiftAbort:
    N.Tag = Ctx.ResetTags[R.below(static_cast<uint32_t>(Ctx.ResetTags.size()))];
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::HandlerDeep:
  case FKind::HandlerShallow: {
    N.Tag = static_cast<int>(R.below(3));
    N.NClauses = R.chance(40) ? 2 : 1;
    GenCtx Body = Inner;
    Body.HandlerTags.push_back(N.Tag);
    N.Kids.push_back(genExpr(R, Body, Budget, Uid)); // body
    // Clause expressions run outside the handler's own delimiter.
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid)); // op0 resume augend
    if (N.NClauses > 1)
      N.Kids.push_back(genExpr(R, Inner, Budget, Uid)); // op1 abort value
    return N;
  }
  case FKind::Perform:
    N.Tag =
        Ctx.HandlerTags[R.below(static_cast<uint32_t>(Ctx.HandlerTags.size()))];
    // op0 always resumes, op1 aborts where a 2-clause handler catches it
    // and forwards outward (possibly to a "no handler" error — which must
    // be identical in both worlds too).
    N.Op = static_cast<int>(R.below(2));
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::Wind:
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::Esc1cc:
  case FKind::EscCc:
    N.Op = R.chance(70) ? 1 : 0;
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    if (N.Op == 1)
      N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::GenDrive:
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  case FKind::AsyncRun: {
    // The async body runs on a fresh green thread with an empty prompt
    // table: enclosing resets/handlers are unreachable from it.
    GenCtx Body = Inner;
    Body.ResetTags.clear();
    Body.HandlerTags.clear();
    N.Kids.push_back(genExpr(R, Body, Budget, Uid));
    return N;
  }
  case FKind::RegexSearch:
    N.Op = static_cast<int>(R.below(static_cast<uint32_t>(NumRegexCases)));
    N.Kids.push_back(genExpr(R, Inner, Budget, Uid));
    return N;
  }
  return genLit(R);
}

/// One whole fuzz program for \p Seed: a single integer-valued expression
/// built from up to ~16 forms.
inline FNode genProgram(uint64_t Seed) {
  Rng R(Seed);
  int Budget = 4 + static_cast<int>(R.below(13));
  int Uid = 0;
  return genExpr(R, GenCtx{}, Budget, Uid);
}

// --- the oracle --------------------------------------------------------------

/// Everything the differential oracle compares.  Trace holds only the
/// control-semantic events (reset/shift/splice/handle/perform/wind) by
/// name — representation events (captures, clones, segment traffic)
/// legitimately differ between the two worlds.
struct Observed {
  bool Ok = false;
  std::string Val;
  std::string Err;
  std::string Out;
  std::string Trace;
};

inline bool operator==(const Observed &A, const Observed &B) {
  return A.Ok == B.Ok && A.Val == B.Val && A.Err == B.Err && A.Out == B.Out &&
         A.Trace == B.Trace;
}

inline bool operator!=(const Observed &A, const Observed &B) {
  return !(A == B);
}

inline std::string describe(const Observed &O) {
  return "{ok=" + std::to_string(O.Ok) + " val=" + O.Val + " err=" + O.Err +
         " out=" + O.Out + " trace=[" + O.Trace + "]}";
}

inline bool isSemanticEvent(osc::TraceEvent E) {
  switch (E) {
  case osc::TraceEvent::Reset:
  case osc::TraceEvent::Shift:
  case osc::TraceEvent::Splice:
  case osc::TraceEvent::Handle:
  case osc::TraceEvent::Perform:
  case osc::TraceEvent::WindEnter:
  case osc::TraceEvent::WindExit:
    return true;
  default:
    return false;
  }
}

/// Runs \p Source under \p C with DelimOneShot forced to \p OneShot.
/// \p PreludePatch, when non-empty, is evaluated first — the seeded-bug
/// test uses it to sabotage one world.
inline Observed runOnce(osc::Config C, const std::string &Source, bool OneShot,
                        const std::string &PreludePatch = "") {
  C.DelimOneShot = OneShot;
  osc::Interp I(C);
  I.captureOutput(true);
  if (!PreludePatch.empty()) {
    auto P = I.eval(PreludePatch);
    if (!P.Ok)
      return {false, "", "prelude patch failed: " + P.Error, "", ""};
  }
  I.trace().start();
  auto R = I.eval(Source);
  I.trace().stop();
  Observed O;
  O.Ok = R.Ok;
  if (R.Ok)
    O.Val = I.valueToString(R.Val);
  O.Err = R.Error;
  O.Out = I.takeOutput();
  for (const osc::Trace::Record &Rec : I.trace().snapshot())
    if (isSemanticEvent(Rec.Kind)) {
      O.Trace += osc::traceEventName(Rec.Kind);
      O.Trace += " ";
    }
  return O;
}

/// True when the one-shot representation and the copying shim disagree on
/// \p Source under \p C — the property the fuzzer hunts for.  \p BugPatch
/// sabotages the one-shot world only.
inline bool mismatches(const osc::Config &C, const std::string &Source,
                       const std::string &BugPatch = "") {
  Observed Fast = runOnce(C, Source, /*OneShot=*/true, BugPatch);
  Observed Shim = runOnce(C, Source, /*OneShot=*/false);
  return Fast != Shim;
}

// --- shrinking ---------------------------------------------------------------

inline FNode *nodeAt(FNode &Root, const std::vector<int> &Path) {
  FNode *N = &Root;
  for (int I : Path)
    N = &N->Kids[static_cast<size_t>(I)];
  return N;
}

inline void collectPaths(const FNode &N, std::vector<int> &Cur,
                         std::vector<std::vector<int>> &Out) {
  Out.push_back(Cur);
  for (size_t I = 0; I != N.Kids.size(); ++I) {
    Cur.push_back(static_cast<int>(I));
    collectPaths(N.Kids[I], Cur, Out);
    Cur.pop_back();
  }
}

/// Greedy delta-debugging on the tree: repeatedly try to replace any node
/// by the literal 1, then by any of its children, keeping every
/// replacement under which \p StillFails(render(tree)) holds.  Runs to a
/// fixpoint; the result is 1-minimal under these two operations.
template <typename PredT> inline FNode shrink(FNode Program, PredT StillFails) {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<std::vector<int>> Paths;
    std::vector<int> Cur;
    collectPaths(Program, Cur, Paths);
    for (const auto &Path : Paths) {
      FNode *N = nodeAt(Program, Path);
      if (N->K == FKind::Lit)
        continue;
      // Try the whole subtree -> 1.
      FNode Saved = *N;
      FNode Lit;
      Lit.K = FKind::Lit;
      Lit.Lit = 1;
      *N = Lit;
      if (StillFails(render(Program))) {
        Changed = true;
        break; // paths into the old subtree are stale; restart the scan
      }
      *N = Saved;
      // Try hoisting each child over its parent.
      bool Hoisted = false;
      for (size_t I = 0; I != Saved.Kids.size(); ++I) {
        *N = Saved.Kids[I];
        if (StillFails(render(Program))) {
          Changed = true;
          Hoisted = true;
          break;
        }
        *N = Saved;
      }
      if (Hoisted)
        break;
    }
  }
  return Program;
}

} // namespace osc_fuzz

#endif // OSC_TESTS_CONTROLFUZZ_H
