// Failure-injection suite: every runtime error path must produce a clear
// diagnostic, abort only the current evaluation, and leave the machine —
// including the control stack — in a usable state.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class ErrorsTest : public ::testing::Test {
protected:
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

} // namespace

TEST_F(ErrorsTest, TypeErrors) {
  EXPECT_EQ(run("(car 1)"), "error: car: not a pair: 1");
  EXPECT_EQ(run("(cdr #t)"), "error: cdr: not a pair: #t");
  EXPECT_EQ(run("(+ 1 'a)"), "error: add: not a number: a");
  EXPECT_EQ(run("(< 1 \"x\")"), "error: num<: not a number: \"x\"");
  EXPECT_EQ(run("(vector-ref '(1) 0)"), "error: vector-ref: bad arguments");
  EXPECT_EQ(run("(string-length 5)"), "error: string-length: not a string");
  EXPECT_EQ(run("(length '(1 . 2))"),
            "error: length: not a proper list: (1 . 2)");
  EXPECT_EQ(run("(zero? 'x)"), "error: zero?: not a number: x");
}

TEST_F(ErrorsTest, ArityErrors) {
  EXPECT_EQ(run("((lambda (a b) a) 1)"),
            "error: wrong number of arguments (1) to #<procedure>");
  EXPECT_EQ(run("((lambda (a) a) 1 2)"),
            "error: wrong number of arguments (2) to #<procedure>");
  EXPECT_EQ(run("(cons 1)"),
            "error: wrong number of arguments (1) to #<native cons>");
  EXPECT_EQ(run("(apply +)"),
            "error: wrong number of arguments (1) to #<native apply>");
  EXPECT_EQ(run("(%call/cc)"),
            "error: wrong number of arguments (0) to #<native %call/cc>");
  EXPECT_EQ(run("(%call/1cc (lambda (k) k) 'extra)"),
            "error: wrong number of arguments (2) to #<native %call/1cc>");
}

TEST_F(ErrorsTest, ApplyNonProcedure) {
  EXPECT_EQ(run("(5 6)"), "error: attempt to apply non-procedure 5");
  EXPECT_EQ(run("('sym)"), "error: attempt to apply non-procedure sym");
  EXPECT_EQ(run("(apply 7 '(1))"),
            "error: attempt to apply non-procedure 7");
  EXPECT_EQ(run("(\"str\" 1)"),
            "error: attempt to apply non-procedure \"str\"");
}

TEST_F(ErrorsTest, ApplyImproperList) {
  EXPECT_EQ(run("(apply + '(1 . 2))"),
            "error: apply: last argument is not a proper list");
  EXPECT_EQ(run("(apply + 1 2)"),
            "error: apply: last argument is not a proper list");
}

TEST_F(ErrorsTest, UnboundVariables) {
  EXPECT_EQ(run("nope"), "error: unbound variable: nope");
  EXPECT_EQ(run("(set! nope 1)"), "error: set! of unbound variable: nope");
  // Using a letrec variable before initialization is caught because the
  // reference reads the undefined marker through the cell... which flows
  // into the operator position.
  EXPECT_EQ(run("(letrec ((f (g)) (g (lambda () 1))) f)"),
            "error: attempt to apply non-procedure #<undefined>");
}

TEST_F(ErrorsTest, DivisionErrors) {
  EXPECT_EQ(run("(quotient 1 0)"), "error: quotient: division by zero");
  EXPECT_EQ(run("(remainder 1 0)"), "error: remainder: division by zero");
  EXPECT_EQ(run("(modulo 1 0)"), "error: modulo: division by zero");
}

TEST_F(ErrorsTest, UserErrorsWithIrritants) {
  EXPECT_EQ(run("(error \"bad thing\")"), "error: error: bad thing");
  EXPECT_EQ(run("(error 'who \"msg\" 1 '(2))"),
            "error: error: who \"msg\" 1 (2)");
}

TEST_F(ErrorsTest, ShotContinuationErrors) {
  EXPECT_EQ(run("(define k #f)"
                "(car (list (call/1cc (lambda (c) (set! k c) (c 1)))))"
                "(k 2)"),
            "error: one-shot continuation invoked a second time");
  // Implicit re-invocation via underflow is also caught.
  EXPECT_EQ(run("(define k2 #f)"
                "(define once #f)"
                "(define (grab) (car (list (%call/1cc (lambda (c)"
                "  (set! k2 c) 'first)))))"
                "(grab)"
                "(if once 'done (begin (set! once #t) (k2 'second)))"),
            "error: one-shot continuation invoked a second time");
}

TEST_F(ErrorsTest, MachineUsableAfterEveryError) {
  const char *Errors[] = {
      "(car 1)",
      "(undefined-thing)",
      "((lambda (x) x))",
      "(vector-ref (vector) 2)",
      "(error \"synthetic\")",
  };
  for (const char *E : Errors) {
    EXPECT_NE(run(E).find("error:"), std::string::npos) << E;
    EXPECT_EQ(run("(+ 40 2)"), "42") << "after " << E;
    EXPECT_EQ(run("(call/1cc (lambda (k) (k 'alive)))"), "alive")
        << "after " << E;
  }
}

TEST_F(ErrorsTest, ErrorDeepInsideContinuationMachinery) {
  // Error raised in a thread body mid-scheduling.
  EXPECT_EQ(run("(define pending #f)"
                "(car (list (call/1cc (lambda (k)"
                "  (set! pending k)"
                "  (car 'boom)))))"),
            "error: car: not a pair: boom");
  // The aborted evaluation left a dormant continuation; invoking it later
  // still works (it resumes the *old* toplevel, which completes).
  EXPECT_EQ(run("(pending 'recovered)"), "recovered");
}

TEST_F(ErrorsTest, ErrorsUnderTinySegments) {
  Config C;
  C.SegmentWords = 96;
  C.InitialSegmentWords = 96;
  Interp Small(C);
  EXPECT_EQ(Small.evalToString("(define (deep n)"
                               "  (if (zero? n) (car 'x)"
                               "      (+ 1 (deep (- n 1)))))"
                               "(deep 500)"),
            "error: car: not a pair: x");
  EXPECT_EQ(Small.evalToString("(define (deep2 n)"
                               "  (if (zero? n) 0 (+ 1 (deep2 (- n 1)))))"
                               "(deep2 500)"),
            "500");
}

TEST_F(ErrorsTest, TimerErrors) {
  EXPECT_EQ(run("(%set-timer! 0 (lambda (k v) v))"),
            "error: %set-timer!: ticks must be a positive fixnum");
  EXPECT_EQ(run("(%set-timer! 'soon (lambda (k v) v))"),
            "error: %set-timer!: ticks must be a positive fixnum");
}

TEST_F(ErrorsTest, VmStatUnknownCounter) {
  EXPECT_EQ(run("(vm-stat 'no-such-counter)"),
            "error: vm-stat: unknown counter: no-such-counter");
  EXPECT_EQ(run("(vm-stat \"words\")"), "error: vm-stat: expects a symbol");
}

TEST_F(ErrorsTest, BacktraceNamesTheCallChain) {
  Interp::Result R = I.eval("(define (inner x) (car x))"
                            "(define (middle x) (+ 1 (inner x)))"
                            "(define (outer x) (+ 2 (middle x)))"
                            "(+ 3 (outer 5))");
  ASSERT_FALSE(R.Ok);
  ASSERT_GE(R.Backtrace.size(), 4u);
  // Innermost first: the failing native ran inside inner's frame context.
  std::string Joined;
  for (const std::string &Fr : R.Backtrace)
    Joined += Fr + " ";
  EXPECT_NE(Joined.find("inner"), std::string::npos) << Joined;
  EXPECT_NE(Joined.find("middle"), std::string::npos) << Joined;
  EXPECT_NE(Joined.find("outer"), std::string::npos) << Joined;
  EXPECT_NE(Joined.find("toplevel"), std::string::npos) << Joined;
}

TEST_F(ErrorsTest, BacktraceCrossesSegmentBoundaries) {
  // Under tiny segments the failing chain spans many segments; the walk
  // must hop through the continuation chain (§3.1 stack walking).
  Config C;
  C.SegmentWords = 96;
  C.InitialSegmentWords = 96;
  Interp Small(C);
  Interp::Result R =
      Small.eval("(define (deep n)"
                 "  (if (zero? n) (vector-ref (vector) 1)"
                 "      (+ 1 (deep (- n 1)))))"
                 "(deep 200)");
  ASSERT_FALSE(R.Ok);
  unsigned Deeps = 0;
  for (const std::string &Fr : R.Backtrace)
    if (Fr == "deep")
      ++Deeps;
  EXPECT_GE(Deeps, 10u) << "backtrace did not cross segment seals";
}

TEST_F(ErrorsTest, BacktraceEmptyOnSyntaxErrors) {
  Interp::Result R = I.eval("(if)");
  ASSERT_FALSE(R.Ok);
  EXPECT_TRUE(R.Backtrace.empty());
}
