// Reader and printer unit tests.

#include "object/Heap.h"
#include "object/ListUtil.h"
#include "sexp/Printer.h"
#include "sexp/Reader.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class SexpTest : public ::testing::Test {
protected:
  SexpTest() : H(S) {}

  /// Read one datum and print it back in write form.
  std::string roundTrip(const std::string &In) {
    ReadResult R = readDatum(H, In);
    if (!R.Ok)
      return "error: " + R.Error;
    return writeToString(R.Datum);
  }

  Stats S;
  Heap H;
};

} // namespace

TEST_F(SexpTest, Atoms) {
  EXPECT_EQ(roundTrip("42"), "42");
  EXPECT_EQ(roundTrip("-17"), "-17");
  EXPECT_EQ(roundTrip("+5"), "5");
  EXPECT_EQ(roundTrip("3.25"), "3.25");
  EXPECT_EQ(roundTrip("-0.5"), "-0.5");
  EXPECT_EQ(roundTrip("1e3"), "1000.0");
  EXPECT_EQ(roundTrip("foo"), "foo");
  EXPECT_EQ(roundTrip("set!"), "set!");
  EXPECT_EQ(roundTrip("+"), "+");
  EXPECT_EQ(roundTrip("-"), "-");
  EXPECT_EQ(roundTrip("..."), "...");
  EXPECT_EQ(roundTrip("list->vector"), "list->vector");
  EXPECT_EQ(roundTrip("#t"), "#t");
  EXPECT_EQ(roundTrip("#f"), "#f");
}

TEST_F(SexpTest, Characters) {
  EXPECT_EQ(roundTrip("#\\a"), "#\\a");
  EXPECT_EQ(roundTrip("#\\Z"), "#\\Z");
  EXPECT_EQ(roundTrip("#\\space"), "#\\space");
  EXPECT_EQ(roundTrip("#\\newline"), "#\\newline");
  EXPECT_EQ(roundTrip("#\\tab"), "#\\tab");
  EXPECT_EQ(roundTrip("#\\("), "#\\(");
}

TEST_F(SexpTest, Strings) {
  EXPECT_EQ(roundTrip("\"hello\""), "\"hello\"");
  EXPECT_EQ(roundTrip("\"a\\nb\""), "\"a\\nb\"");
  EXPECT_EQ(roundTrip("\"say \\\"hi\\\"\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(roundTrip("\"back\\\\slash\""), "\"back\\\\slash\"");
  EXPECT_EQ(roundTrip("\"\""), "\"\"");
}

TEST_F(SexpTest, Lists) {
  EXPECT_EQ(roundTrip("()"), "()");
  EXPECT_EQ(roundTrip("(1 2 3)"), "(1 2 3)");
  EXPECT_EQ(roundTrip("(1 . 2)"), "(1 . 2)");
  EXPECT_EQ(roundTrip("(1 2 . 3)"), "(1 2 . 3)");
  EXPECT_EQ(roundTrip("((a) (b c) ())"), "((a) (b c) ())");
  EXPECT_EQ(roundTrip("[1 2]"), "(1 2)"); // Brackets accepted.
  EXPECT_EQ(roundTrip("( 1\n\t2 )"), "(1 2)");
}

TEST_F(SexpTest, Vectors) {
  EXPECT_EQ(roundTrip("#()"), "#()");
  EXPECT_EQ(roundTrip("#(1 2 3)"), "#(1 2 3)");
  EXPECT_EQ(roundTrip("#(a #(b) ())"), "#(a #(b) ())");
}

TEST_F(SexpTest, QuoteSugar) {
  EXPECT_EQ(roundTrip("'x"), "(quote x)");
  EXPECT_EQ(roundTrip("`x"), "(quasiquote x)");
  EXPECT_EQ(roundTrip(",x"), "(unquote x)");
  EXPECT_EQ(roundTrip(",@x"), "(unquote-splicing x)");
  EXPECT_EQ(roundTrip("'(1 '2)"), "(quote (1 (quote 2)))");
}

TEST_F(SexpTest, Comments) {
  EXPECT_EQ(roundTrip("; hi\n42"), "42");
  EXPECT_EQ(roundTrip("(1 ; mid\n 2)"), "(1 2)");
  EXPECT_EQ(roundTrip("#;(skipped) 7"), "7");
  EXPECT_EQ(roundTrip("#;1 #;2 3"), "3");
}

TEST_F(SexpTest, Errors) {
  EXPECT_TRUE(roundTrip("(1 2").starts_with("error:"));
  EXPECT_TRUE(roundTrip(")").starts_with("error:"));
  EXPECT_TRUE(roundTrip("\"unterminated").starts_with("error:"));
  EXPECT_TRUE(roundTrip("(1 . )").starts_with("error:"));
  EXPECT_TRUE(roundTrip("#q").starts_with("error:"));
  EXPECT_TRUE(roundTrip("(. 2)").starts_with("error:"));
}

TEST_F(SexpTest, ErrorsCarryLineNumbers) {
  ReadResult R = readDatum(H, "\n\n(1 2");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("line 3"), std::string::npos) << R.Error;
}

TEST_F(SexpTest, ReadAll) {
  Reader Rd(H, "1 (2 3) foo");
  std::vector<Value> Out;
  std::string Err;
  ASSERT_TRUE(Rd.readAll(Out, Err));
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(writeToString(Out[0]), "1");
  EXPECT_EQ(writeToString(Out[1]), "(2 3)");
  EXPECT_EQ(writeToString(Out[2]), "foo");
}

TEST_F(SexpTest, ReadAllEmpty) {
  Reader Rd(H, "  ; just a comment\n");
  std::vector<Value> Out;
  std::string Err;
  ASSERT_TRUE(Rd.readAll(Out, Err));
  EXPECT_TRUE(Out.empty());
}

TEST_F(SexpTest, SymbolsAreInterned) {
  ReadResult A = readDatum(H, "hello");
  ReadResult B = readDatum(H, "hello");
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_TRUE(A.Datum.identical(B.Datum));
}

TEST_F(SexpTest, DisplayVsWrite) {
  ReadResult R = readDatum(H, "(\"hi\" #\\x)");
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(writeToString(R.Datum), "(\"hi\" #\\x)");
  EXPECT_EQ(displayToString(R.Datum), "(hi x)");
}

TEST_F(SexpTest, DeeplyNested) {
  std::string In, Expect;
  for (int J = 0; J != 200; ++J)
    In += "(";
  In += "x";
  for (int J = 0; J != 200; ++J)
    In += ")";
  EXPECT_EQ(roundTrip(In), In);
}
