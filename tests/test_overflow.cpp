// Stack-segment overflow handling (§3.2): overflow as implicit call/cc vs
// implicit call/1cc, copy-up hysteresis, interaction with explicitly
// captured continuations, and the deep-recursion behavior the paper's §4
// benchmark measures.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

std::string run(Interp &I, const std::string &Src) {
  return I.evalToString(Src);
}

// A non-tail-recursive summation: every level holds a live frame, so depth
// N needs N frames — the overflow machinery must chain segments.
const char *DeepProg = "(define (deep n)"
                       "  (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
                       "(deep 50000)";

Config tinyConfig(OverflowPolicy P, uint32_t CopyUp = 8) {
  Config C;
  C.SegmentWords = 256;
  C.InitialSegmentWords = 256;
  C.Overflow = P;
  C.OverflowCopyUpFrames = CopyUp;
  return C;
}

} // namespace

TEST(Overflow, DeepRecursionOneShotPolicy) {
  Interp I(tinyConfig(OverflowPolicy::OneShot));
  EXPECT_EQ(run(I, DeepProg), "50000");
  EXPECT_GT(I.stats().Overflows, 100u);
  EXPECT_GT(I.stats().Underflows, 100u);
}

TEST(Overflow, DeepRecursionMultiShotPolicy) {
  Interp I(tinyConfig(OverflowPolicy::MultiShot));
  EXPECT_EQ(run(I, DeepProg), "50000");
  EXPECT_GT(I.stats().Overflows, 100u);
}

TEST(Overflow, OneShotPolicyCopiesLessThanMultiShot) {
  Interp IOne(tinyConfig(OverflowPolicy::OneShot));
  Interp IMulti(tinyConfig(OverflowPolicy::MultiShot));
  run(IOne, DeepProg);
  run(IMulti, DeepProg);
  // Returning through a one-shot seal reinstates with zero copy; through a
  // multi-shot seal it copies frames back.  §4: "overflow handling using
  // one-shot continuations is 300% faster and allocates much less".
  EXPECT_LT(IOne.stats().WordsCopied * 4, IMulti.stats().WordsCopied);
}

TEST(Overflow, OneShotPolicyReusesCachedSegments) {
  Interp I(tinyConfig(OverflowPolicy::OneShot));
  // Repeated descents: "after the first recursion, the one-shot version
  // always finds fresh stack segments in the stack cache".
  run(I, "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
         "(define (go k) (if (zero? k) 'done (begin (deep 2000)"
         "                                          (go (- k 1)))))"
         "(go 20)");
  EXPECT_GT(I.stats().SegmentCacheHits, I.stats().SegmentsAllocated * 4);
}

TEST(Overflow, NaiveOneShotBouncesMoreThanHysteresis) {
  // §3.2: without copy-up hysteresis an immediate return switches back to
  // the full segment and the next call overflows again ("bouncing").  Run
  // a short sawtooth at a sweep of fill depths so that some depth parks the
  // oscillation right at the segment boundary.
  const char *Sawtooth =
      "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
      "(define (saw k) (if (zero? k) 0 (begin (deep 3) (saw (- k 1)))))"
      "(define (fill n) (if (zero? n) (saw 500) (+ 1 (fill (- n 1)))))"
      "(define (sweep d) (if (zero? d) 'done (begin (fill d)"
      "                                             (sweep (- d 1)))))"
      "(sweep 60)";
  Interp INaive(tinyConfig(OverflowPolicy::OneShot, /*CopyUp=*/0));
  Interp IHyst(tinyConfig(OverflowPolicy::OneShot, /*CopyUp=*/8));
  run(INaive, Sawtooth);
  run(IHyst, Sawtooth);
  EXPECT_GT(INaive.stats().Overflows, IHyst.stats().Overflows * 2);
}

TEST(Overflow, ResultsIdenticalAcrossSegmentSizes) {
  for (uint32_t Words : {96u, 200u, 1024u, 16384u}) {
    for (OverflowPolicy P :
         {OverflowPolicy::OneShot, OverflowPolicy::MultiShot}) {
      Config C;
      C.SegmentWords = Words;
      C.InitialSegmentWords = Words;
      C.Overflow = P;
      Interp I(C);
      EXPECT_EQ(run(I, "(define (deep n)"
                       "  (if (zero? n) 0 (+ 1 (deep (- n 1)))))"
                       "(deep 5000)"),
                "5000")
          << "segment words " << Words;
    }
  }
}

TEST(Overflow, ExplicitCaptureAcrossSegmentBoundary) {
  // A continuation captured while the stack spans several segments must
  // reinstate the whole logical stack (chained underflows).
  for (OverflowPolicy P :
       {OverflowPolicy::OneShot, OverflowPolicy::MultiShot}) {
    Interp I(tinyConfig(P));
    EXPECT_EQ(run(I, "(define k #f)"
                     "(define n 0)"
                     "(define (deep d)"
                     "  (if (zero? d)"
                     "      (call/cc (lambda (c) (set! k c) 0))"
                     "      (+ 1 (deep (- d 1)))))"
                     "(define r (deep 500))"
                     "(set! n (+ n 1))"
                     "(if (< n 3) (k 0) (list r n))"),
              "(500 3)");
  }
}

TEST(Overflow, OneShotCaptureAcrossSegmentBoundary) {
  Interp I(tinyConfig(OverflowPolicy::OneShot));
  EXPECT_EQ(run(I, "(define (escape)"
                   "  (call/1cc (lambda (k)"
                   "    (let loop ((d 2000))"
                   "      (if (zero? d) (k 'out) (+ 1 (loop (- d 1))))))))"
                   "(define r (escape))"
                   "r"),
            "out");
}

TEST(Overflow, PromotionOfImplicitOneShots) {
  // Deep recursion under the one-shot policy leaves implicit one-shot
  // continuations in the chain; call/cc must promote them so the captured
  // continuation can be invoked repeatedly (§3.3).
  Interp I(tinyConfig(OverflowPolicy::OneShot));
  EXPECT_EQ(run(I, "(define k #f)"
                   "(define n 0)"
                   "(define (deep d)"
                   "  (if (zero? d)"
                   "      (call/cc (lambda (c) (set! k c) 0))"
                   "      (+ 1 (deep (- d 1)))))"
                   "(define r (deep 1000))"
                   "(set! n (+ n 1))"
                   "(if (< n 4) (k 0) (list r n))"),
            "(1000 4)");
  EXPECT_GT(I.stats().Promotions, 0u);
}

TEST(Overflow, HugeSingleFrame) {
  // A frame larger than the segment size forces allocation of an oversized
  // segment rather than looping on overflow.
  Config C;
  C.SegmentWords = 64;
  C.InitialSegmentWords = 64;
  Interp I(C);
  // 80 live arguments in one call.
  std::string Call = "(define (f . xs) (length xs)) (f";
  for (int J = 0; J != 80; ++J)
    Call += " " + std::to_string(J);
  Call += ")";
  EXPECT_EQ(run(I, Call), "80");
}

TEST(Overflow, MutualRecursionAcrossSegments) {
  Interp I(tinyConfig(OverflowPolicy::OneShot));
  EXPECT_EQ(run(I, "(define (ev? n) (if (zero? n) #t (begin (od? (- n 1)))))"
                   "(define (od? n) (if (zero? n) #f (begin (ev? (- n 1)))))"
                   "(define (sum n) (if (zero? n) 0 (+ (if (ev? n) 1 0)"
                   "                                   (sum (- n 1)))))"
                   "(sum 3000)"),
            "1500");
}
