// The shared configuration lattice: every point a control-representation
// test sweep should cover (segment size x copy bound x overflow policy x
// promotion strategy x seal displacement x cache on/off x dispatch mode x
// superinstruction mask x inline caches).  Used by
// test_properties.cpp (semantics identical at every point) and
// test_differential.cpp (call/1cc == call/cc at every point); keep the two
// sweeps over the exact same set.

#ifndef OSC_TESTS_CONFIGLATTICE_H
#define OSC_TESTS_CONFIGLATTICE_H

#include "core/Config.h"

#include <vector>

namespace osc_test {

struct ConfigPoint {
  const char *Name;
  osc::Config C;
};

inline std::vector<ConfigPoint> configLattice() {
  using osc::Config;
  using osc::OverflowPolicy;
  using osc::PromotionStrategy;
  std::vector<ConfigPoint> Points;
  auto Add = [&](const char *Name, auto Mutate) {
    Config C;
    Mutate(C);
    Points.push_back({Name, C});
  };
  Add("defaults", [](Config &) {});
  Add("tiny-segments-oneshot", [](Config &C) {
    C.SegmentWords = 128;
    C.InitialSegmentWords = 128;
    C.Overflow = OverflowPolicy::OneShot;
  });
  Add("tiny-segments-multishot", [](Config &C) {
    C.SegmentWords = 128;
    C.InitialSegmentWords = 128;
    C.Overflow = OverflowPolicy::MultiShot;
  });
  Add("tiny-copy-bound", [](Config &C) { C.CopyBoundWords = 32; });
  Add("no-cache", [](Config &C) { C.SegmentCacheEnabled = false; });
  Add("shared-flag-promotion",
      [](Config &C) { C.Promotion = PromotionStrategy::SharedFlag; });
  Add("seal-displacement", [](Config &C) { C.SealDisplacementWords = 96; });
  Add("hostile", [](Config &C) {
    // Everything small and non-default at once.
    C.SegmentWords = 96;
    C.InitialSegmentWords = 96;
    C.CopyBoundWords = 16;
    C.Overflow = OverflowPolicy::OneShot;
    C.OverflowCopyUpFrames = 1;
    C.Promotion = PromotionStrategy::SharedFlag;
    C.SealDisplacementWords = 24;
    C.GcThresholdBytes = 64 * 1024;
  });
  Add("hostile-multishot", [](Config &C) {
    C.SegmentWords = 96;
    C.InitialSegmentWords = 96;
    C.CopyBoundWords = 16;
    C.Overflow = OverflowPolicy::MultiShot;
    C.GcThresholdBytes = 64 * 1024;
  });
  Add("naive-overflow", [](Config &C) {
    C.SegmentWords = 128;
    C.InitialSegmentWords = 128;
    C.Overflow = OverflowPolicy::OneShot;
    C.OverflowCopyUpFrames = 0;
  });
  // Dispatch lattice: the threaded/switch loops, the superinstruction
  // fusion mask, and the inline caches must all be observationally
  // equivalent — same results, same logical instruction counts, same
  // fault boundaries.  (The defaults point above is threaded + full
  // fusion + caches.)
  Add("switch-dispatch", [](Config &C) { C.ThreadedDispatch = false; });
  Add("no-superinstructions", [](Config &C) { C.Superinstructions = 0; });
  Add("sparse-superinstructions",
      [](Config &C) { C.Superinstructions = 0x555u; });
  Add("no-inline-caches", [](Config &C) { C.InlineCaches = false; });
  Add("switch-bare", [](Config &C) {
    // Every dispatch feature off at once, on tiny segments so the
    // control machinery is exercised too.
    C.ThreadedDispatch = false;
    C.Superinstructions = 0;
    C.InlineCaches = false;
    C.SegmentWords = 128;
    C.InitialSegmentWords = 128;
    C.Overflow = OverflowPolicy::OneShot;
  });
  return Points;
}

} // namespace osc_test

#endif // OSC_TESTS_CONFIGLATTICE_H
