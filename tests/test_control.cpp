// The delimited-control subsystem (src/control): tagged reset/shift built
// on the one-shot substrate, plus the generator and async/await prelude
// layers.  Three kinds of coverage:
//
//   1. Semantics: value flow through reset/shift, tag selection, winder
//      travel across the delimiter, one-shot reuse detection, and the
//      prompt table's pruning behaviour under undelimited escapes.
//   2. Representation: the capture-to-mark path relinks headers and never
//      copies stack words in the one-shot steady state (SliceClonedWords
//      and WordsCopied stay flat across generator yields), while the
//      Config::DelimOneShot=false copying shim clones every member.
//   3. Differential: every program here runs under DelimOneShot on and
//      off at every point of the shared config lattice with byte-identical
//      observable behaviour — the shim is the semantic oracle for the
//      zero-copy path, mirroring what test_differential.cpp does for
//      call/1cc vs call/cc.
//
// Registered under the ctest label "control".

#include "ConfigLattice.h"
#include "osc.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace osc;
using osc_test::ConfigPoint;
using osc_test::configLattice;

namespace {

class ControlTest : public ::testing::Test {
protected:
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

// --- reset/shift semantics ------------------------------------------------------

TEST_F(ControlTest, ResetWithoutShiftIsTransparent) {
  EXPECT_EQ(run("(reset 'p 42)"), "42");
  EXPECT_EQ(run("(+ 1 (reset 'p (* 2 3)))"), "7");
  EXPECT_EQ(run("(reset 'p (reset 'q (+ 20 22)))"), "42");
}

TEST_F(ControlTest, ShiftAbortsToTheDelimiter) {
  // The receiver's value becomes the reset's value; the delimited context
  // (+ 2 _) is discarded when k is never invoked.
  EXPECT_EQ(run("(+ 1 (reset 'p (+ 2 (shift 'p k 100))))"), "101");
}

TEST_F(ControlTest, InvokingKRunsTheSlice) {
  EXPECT_EQ(run("(reset 'p (+ 1 (shift 'p k (k 10))))"), "11");
  // The receiver continues around the invocation: k returns the slice's
  // completion value into the receiver's own frame.
  EXPECT_EQ(run("(reset 'p (+ 1 (shift 'p k (+ 100 (k 10)))))"), "111");
}

TEST_F(ControlTest, ShiftInTailPositionCapturesEmptySlice) {
  EXPECT_EQ(run("(reset 'p (shift 'p k (k 42)))"), "42");
  EXPECT_EQ(run("(+ 1 (reset 'p (shift 'p k 41)))"), "42");
}

TEST_F(ControlTest, TagsSelectTheDelimiter) {
  // shift 'outer jumps past the inner 'inner delimiter entirely.
  EXPECT_EQ(
      run("(reset 'outer (+ 1 (reset 'inner (+ 10 (shift 'outer k (k 100))))))"),
      "111");
  EXPECT_EQ(
      run("(reset 'outer (+ 1 (reset 'inner (+ 10 (shift 'outer k 100)))))"),
      "100");
  // Same-tag nesting picks the innermost delimiter.
  EXPECT_EQ(run("(reset 'p (+ 1 (reset 'p (+ 10 (shift 'p k (k 100))))))"),
            "111");
}

TEST_F(ControlTest, ShiftWithoutResetIsAnError) {
  auto R = I.eval("(shift 'nope k 1)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no reset for tag"), std::string::npos) << R.Error;
}

TEST_F(ControlTest, DelimitedContinuationIsOneShot) {
  auto R = I.eval("(reset 'p (+ 1 (shift 'p k (k (k 10)))))");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invoked a second time"), std::string::npos)
      << R.Error;
}

TEST_F(ControlTest, KSurvivesBeingInvokedAfterTheReceiverReturned) {
  // The classic suspended-computation shape: the receiver smuggles k out,
  // the reset returns, and k is invoked later from a different extent.
  // The delimiter travels with k, so the slice's eventual value surfaces
  // at the invoke site.
  EXPECT_EQ(run("(define k* #f)"
                "(define r1 (reset 'p (+ 1 (shift 'p k (set! k* k) 'parked))))"
                "(list r1 (+ 100 (k* 10)))"),
            "(parked 111)");
}

TEST_F(ControlTest, ResumedSliceCanShiftAgain) {
  // After a splice the delimiter is re-established around the slice, so a
  // second shift inside the resumed computation finds it (what generators
  // depend on).
  EXPECT_EQ(run("(define k* #f)"
                "(reset 'p (+ 1 (shift 'p a (set! k* a) 'x)"
                "             (shift 'p b (set! k* b) 0)))"
                "(k* 10)"),
            "0");
}

TEST_F(ControlTest, EscapePastThePromptPrunesItsRecord) {
  // A call/1cc escape jumps out of the reset without returning through the
  // prompt stub; the stranded record must not catch a later same-tag shift.
  auto R = I.eval("(call/1cc (lambda (out)"
                  "  (reset 'p (out 'escaped))))"
                  "(shift 'p k 1)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no reset for tag"), std::string::npos) << R.Error;
}

TEST_F(ControlTest, MultipleValuesFlowThroughReset) {
  EXPECT_EQ(run("(call-with-values (lambda () (reset 'p (values 1 2 3)))"
                "                  list)"),
            "(1 2 3)");
}

// --- dynamic-wind across the delimiter ------------------------------------------

TEST_F(ControlTest, ShiftRunsAfterThunksAndReentryRunsBeforeThunks) {
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define r"
                "  (reset 'p"
                "    (dynamic-wind"
                "      (lambda () (note 'in))"
                "      (lambda () (+ 1 (shift 'p k (note 'recv) (k 10))))"
                "      (lambda () (note 'out)))))"
                "(list r (reverse log))"),
            "(11 (in out recv in out))");
}

TEST_F(ControlTest, AbortWithoutResumeOnlyUnwinds) {
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define r"
                "  (reset 'p"
                "    (dynamic-wind"
                "      (lambda () (note 'in))"
                "      (lambda () (shift 'p k 'aborted))"
                "      (lambda () (note 'out)))))"
                "(list r (reverse log))"),
            "(aborted (in out))");
}

TEST_F(ControlTest, ReentryRebasesOntoTheInvokeSitesWinders) {
  // k is invoked inside a *different* dynamic-wind: the slice's winders
  // re-enter on top of the invoke site's, and unwinding on completion
  // leaves the invoke site's extent intact.
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define k* #f)"
                "(reset 'p"
                "  (dynamic-wind"
                "    (lambda () (note 'slice-in))"
                "    (lambda () (shift 'p k (set! k* k) 'parked))"
                "    (lambda () (note 'slice-out))))"
                "(dynamic-wind"
                "  (lambda () (note 'host-in))"
                "  (lambda () (k* 7))"
                "  (lambda () (note 'host-out)))"
                "(reverse log)"),
            "(slice-in slice-out host-in slice-in slice-out host-out)");
}

// --- generators -----------------------------------------------------------------

TEST_F(ControlTest, GeneratorYieldsThenEof) {
  EXPECT_EQ(run("(define g (make-generator"
                "  (lambda (v) (yield 1) (yield 2) (yield 3) 'end)))"
                "(list (generator-next g) (generator-next g)"
                "      (generator-next g) (generator-next g)"
                "      (generator-next g))"),
            "(1 2 3 #<eof> #<eof>)");
}

TEST_F(ControlTest, GeneratorRoundTripsValuesBothWays) {
  // (yield v) evaluates to the value handed to the resuming
  // generator-next — a full two-way conversation.
  EXPECT_EQ(run("(define g (make-generator"
                "  (lambda (v)"
                "    (let* ((a (yield (* v 2)))"
                "           (b (yield (+ a 1))))"
                "      (yield (list a b))))))"
                "(list (generator-next g 5) (generator-next g 7)"
                "      (generator-next g 9) (generator-next g))"),
            "(10 8 (7 9) #<eof>)");
}

TEST_F(ControlTest, GeneratorsAreIndependent) {
  EXPECT_EQ(run("(define (counter) (make-generator"
                "  (lambda (v) (let loop ((i 0)) (yield i) (loop (+ i 1))))))"
                "(define a (counter)) (define b (counter))"
                "(list (generator-next a) (generator-next a)"
                "      (generator-next b) (generator-next a)"
                "      (generator-next b))"),
            "(0 1 0 2 1)");
}

TEST_F(ControlTest, GeneratorsNest) {
  // The inner generator's yields bind to the innermost live delimiter, so
  // driving an inner generator from inside an outer one works.
  EXPECT_EQ(run("(define (walk l) (make-generator"
                "  (lambda (v) (for-each (lambda (x) (yield x)) l) 'done)))"
                "(define g (make-generator"
                "  (lambda (v)"
                "    (let ((inner (walk '(1 2))))"
                "      (let loop ()"
                "        (let ((x (generator-next inner)))"
                "          (unless (eof-object? x)"
                "            (yield (* 10 x))"
                "            (loop)))))"
                "    'outer-done)))"
                "(list (generator-next g) (generator-next g)"
                "      (generator-next g))"),
            "(10 20 #<eof>)");
}

TEST_F(ControlTest, YieldWithNoArgumentIsStillTheSchedulerYield) {
  EXPECT_EQ(run("(define out '())"
                "(define (worker tag)"
                "  (lambda ()"
                "    (set! out (cons tag out)) (yield)"
                "    (set! out (cons tag out))))"
                "(spawn (worker 'a)) (spawn (worker 'b))"
                "(scheduler-run)"
                "(reverse out)"),
            "(a b a b)");
}

TEST_F(ControlTest, GeneratorSurvivesSchedulerParks) {
  // The suspended slice lives in the heap, not on the thread's chain, so a
  // generator keeps working across channel parks of its owning thread —
  // the shape the server's STREAM verb relies on.
  EXPECT_EQ(run("(define ch (make-channel 0))"
                "(define out '())"
                "(define g (make-generator"
                "  (lambda (v) (yield 'a) (yield 'b) (yield 'c) 'fin)))"
                "(spawn (lambda ()"
                "  (let loop ()"
                "    (let ((x (generator-next g)))"
                "      (if (eof-object? x) (channel-close! ch)"
                "          (begin (channel-send! ch x) (loop)))))))"
                "(spawn (lambda ()"
                "  (let loop ()"
                "    (let ((x (channel-recv ch)))"
                "      (unless (eof-object? x)"
                "        (set! out (cons x out)) (loop))))))"
                "(scheduler-run)"
                "(reverse out)"),
            "(a b c)");
}

// --- async/await ----------------------------------------------------------------

TEST_F(ControlTest, AsyncBodyRunsUnderTheScheduler) {
  EXPECT_EQ(run("(define f (async (+ 40 2)))"
                "(scheduler-run)"
                "(future-get f)"),
            "42");
}

TEST_F(ControlTest, AwaitChainsFutures) {
  EXPECT_EQ(run("(define f1 (async (+ 1 2)))"
                "(define f2 (async (* (await f1) 10)))"
                "(define f3 (async (+ (await f2) 7)))"
                "(scheduler-run)"
                "(future-get f3)"),
            "37");
}

TEST_F(ControlTest, AwaitParksWithoutBlockingSiblings) {
  // While one async body is parked in await, other threads keep running;
  // the awaited value arrives from a plain worker thread.
  EXPECT_EQ(run("(define ch (make-channel 0))"
                "(define f (async (list 'got (await ch))))"
                "(spawn (lambda () (channel-send! ch (list 99))))"
                "(scheduler-run)"
                "(future-get f)"),
            "(got 99)");
}

TEST_F(ControlTest, MultipleAwaitsInOneBody) {
  EXPECT_EQ(run("(define a (async 1))"
                "(define b (async 2))"
                "(define c (async (+ (await a) (await b))))"
                "(scheduler-run)"
                "(future-get c)"),
            "3");
}

// --- representation: the zero-copy capture path ---------------------------------

TEST(ControlRepresentation, SteadyStateYieldCopiesZeroWords) {
  // After warm-up, each yield/next round trip is: one-shot capture, cut to
  // the mark (header relinks only), splice (one link store), one-shot
  // invoke.  No stack words move and nothing is cloned.
  Interp I;
  ASSERT_TRUE(I.eval("(define g (make-generator (lambda (v)"
                     "  (let loop ((i 0)) (yield i) (loop (+ i 1))))))"
                     "(generator-next g) (generator-next g)")
                  .Ok);
  uint64_t W0 = I.stats().WordsCopied;
  uint64_t C0 = I.stats().SliceClonedWords;
  uint64_t Cap0 = I.stats().SliceCaptures;
  ASSERT_TRUE(I.eval("(let loop ((i 0))"
                     "  (when (< i 200) (generator-next g) (loop (+ i 1))))")
                  .Ok);
  EXPECT_EQ(I.stats().WordsCopied, W0);
  EXPECT_EQ(I.stats().SliceClonedWords, C0);
  EXPECT_EQ(I.stats().SliceCaptures, Cap0 + 200);
  EXPECT_GE(I.stats().SliceSplices, 200u);
}

TEST(ControlRepresentation, CopyingShimClonesEveryMember) {
  // With DelimOneShot off, reset marks are captured multi-shot and every
  // slice member fails the exclusively-owned test, so the same program
  // pays real word copies — the contrast bench_control quantifies.
  Config C;
  C.DelimOneShot = false;
  Interp I(C);
  ASSERT_TRUE(I.eval("(define g (make-generator (lambda (v)"
                     "  (let loop ((i 0)) (yield i) (loop (+ i 1))))))"
                     "(generator-next g) (generator-next g)")
                  .Ok);
  uint64_t C0 = I.stats().SliceClonedWords;
  ASSERT_TRUE(I.eval("(let loop ((i 0))"
                     "  (when (< i 50) (generator-next g) (loop (+ i 1))))")
                  .Ok);
  EXPECT_GT(I.stats().SliceClonedWords, C0);
}

TEST(ControlRepresentation, CountersExposedThroughVmStat) {
  Interp I;
  EXPECT_EQ(I.evalToString("(reset 'p (shift 'p k (k 1)))"
                           "(list (> (vm-stat 'prompt-resets) 0)"
                           "      (> (vm-stat 'slice-captures) 0)"
                           "      (> (vm-stat 'slice-splices) 0))"),
            "(#t #t #t)");
}

TEST(ControlRepresentation, TraceRecordsResetShiftSplice) {
  Interp I;
  I.trace().start();
  auto R = I.eval("(reset 'p (+ 1 (shift 'p k (k 10))))");
  I.trace().stop();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool SawReset = false, SawShift = false, SawSplice = false;
  for (const Trace::Record &Rec : I.trace().snapshot()) {
    if (Rec.Kind == TraceEvent::Reset)
      SawReset = true;
    if (Rec.Kind == TraceEvent::Shift) {
      SawShift = true;
      EXPECT_EQ(Rec.Payload[2], 0u) << "steady-state shift cloned a member";
    }
    if (Rec.Kind == TraceEvent::Splice)
      SawSplice = true;
  }
  EXPECT_TRUE(SawReset && SawShift && SawSplice) << I.trace().toString();
}

// --- differential: DelimOneShot on == off across the lattice --------------------

struct Observed {
  bool Ok = false;
  std::string Val;
  std::string Err;
  std::string Out;
};

bool operator==(const Observed &A, const Observed &B) {
  return A.Ok == B.Ok && A.Val == B.Val && A.Err == B.Err && A.Out == B.Out;
}

std::ostream &operator<<(std::ostream &OS, const Observed &O) {
  return OS << "{ok=" << O.Ok << " val=" << O.Val << " err=" << O.Err
            << " out=" << O.Out << "}";
}

Observed runOnce(Config C, const std::string &Source, bool OneShot) {
  C.DelimOneShot = OneShot;
  Interp I(C);
  I.captureOutput(true);
  auto R = I.eval(Source);
  Observed O;
  O.Ok = R.Ok;
  if (R.Ok)
    O.Val = I.valueToString(R.Val);
  O.Err = R.Error;
  O.Out = I.takeOutput();
  return O;
}

struct Program {
  const char *Name;
  const char *Source;
};

const Program DelimPrograms[] = {
    {"value-flow",
     "(list (reset 'p (+ 1 (shift 'p k (k 10))))"
     "      (+ 1 (reset 'p (+ 2 (shift 'p k 100))))"
     "      (reset 'p (+ 1 (shift 'p k (+ 100 (k 10))))))"},
    {"nested-tags",
     "(list (reset 'a (+ 1 (reset 'b (+ 10 (shift 'a k (k 100))))))"
     "      (reset 'a (+ 1 (reset 'b (+ 10 (shift 'b k (k 100))))))"
     "      (reset 'p (+ 1 (reset 'p (+ 10 (shift 'p k (k 100)))))))"},
    {"wind-crossing",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(define r (reset 'p (dynamic-wind"
     "  (lambda () (note 'in))"
     "  (lambda () (+ 1 (shift 'p k (note 'recv) (k 10))))"
     "  (lambda () (note 'out)))))"
     "(list r (reverse log))"},
    {"parked-slice-generator",
     "(define g (make-generator (lambda (v)"
     "  (let loop ((i 0) (acc 0))"
     "    (if (= i 5) acc (loop (+ i 1) (+ acc (yield i))))))))"
     "(define parts '())"
     "(let loop ((x (generator-next g 0)))"
     "  (if (eof-object? x) (reverse parts)"
     "      (begin (set! parts (cons x parts))"
     "             (loop (generator-next g (* 2 x))))))"},
    {"one-shot-reuse-error",
     "(display (reset 'p (+ 1 (shift 'p k (k 1)))))"
     "(reset 'p (+ 1 (shift 'p k (k (k 10)))))"},
    {"async-await-pipeline",
     "(define f1 (async (+ 1 2)))"
     "(define f2 (async (* (await f1) 10)))"
     "(define sink '())"
     "(spawn (lambda () (set! sink (future-get f2))))"
     "(scheduler-run)"
     "sink"},
    {"escape-prunes-prompt",
     "(display (call/1cc (lambda (out) (reset 'p (out 'gone)))))"
     "(newline)"
     "(shift 'p k 1)"},
};

class DelimDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(DelimDifferential, OneShotEqualsCopyingShim) {
  auto [ProgIdx, CfgIdx] = GetParam();
  const Program &P = DelimPrograms[ProgIdx];
  std::vector<ConfigPoint> Lattice = configLattice();
  const ConfigPoint &CP = Lattice[CfgIdx];
  Observed Fast = runOnce(CP.C, P.Source, /*OneShot=*/true);
  Observed Shim = runOnce(CP.C, P.Source, /*OneShot=*/false);
  EXPECT_EQ(Fast, Shim) << "program " << P.Name << " under config "
                        << CP.Name;
}

std::string delimName(
    const ::testing::TestParamInfo<std::tuple<size_t, size_t>> &Info) {
  auto [ProgIdx, CfgIdx] = Info.param;
  std::string N = std::string(DelimPrograms[ProgIdx].Name) + "_" +
                  configLattice()[CfgIdx].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, DelimDifferential,
    ::testing::Combine(
        ::testing::Range<size_t>(0, std::size(DelimPrograms)),
        ::testing::Range<size_t>(0, configLattice().size())),
    delimName);

} // namespace
