// The delimited-control subsystem (src/control): tagged reset/shift built
// on the one-shot substrate, plus the generator and async/await prelude
// layers.  Three kinds of coverage:
//
//   1. Semantics: value flow through reset/shift, tag selection, winder
//      travel across the delimiter, one-shot reuse detection, and the
//      prompt table's pruning behaviour under undelimited escapes.
//   2. Representation: the capture-to-mark path relinks headers and never
//      copies stack words in the one-shot steady state (SliceClonedWords
//      and WordsCopied stay flat across generator yields), while the
//      Config::DelimOneShot=false copying shim clones every member.
//   3. Differential: every program here runs under DelimOneShot on and
//      off at every point of the shared config lattice with byte-identical
//      observable behaviour — the shim is the semantic oracle for the
//      zero-copy path, mirroring what test_differential.cpp does for
//      call/1cc vs call/cc.
//
// Registered under the ctest label "control".

#include "ConfigLattice.h"
#include "osc.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace osc;
using osc_test::ConfigPoint;
using osc_test::configLattice;

namespace {

class ControlTest : public ::testing::Test {
protected:
  std::string run(const std::string &Src) { return I.evalToString(Src); }
  Interp I;
};

// --- reset/shift semantics ------------------------------------------------------

TEST_F(ControlTest, ResetWithoutShiftIsTransparent) {
  EXPECT_EQ(run("(reset 'p 42)"), "42");
  EXPECT_EQ(run("(+ 1 (reset 'p (* 2 3)))"), "7");
  EXPECT_EQ(run("(reset 'p (reset 'q (+ 20 22)))"), "42");
}

TEST_F(ControlTest, ShiftAbortsToTheDelimiter) {
  // The receiver's value becomes the reset's value; the delimited context
  // (+ 2 _) is discarded when k is never invoked.
  EXPECT_EQ(run("(+ 1 (reset 'p (+ 2 (shift 'p k 100))))"), "101");
}

TEST_F(ControlTest, InvokingKRunsTheSlice) {
  EXPECT_EQ(run("(reset 'p (+ 1 (shift 'p k (k 10))))"), "11");
  // The receiver continues around the invocation: k returns the slice's
  // completion value into the receiver's own frame.
  EXPECT_EQ(run("(reset 'p (+ 1 (shift 'p k (+ 100 (k 10)))))"), "111");
}

TEST_F(ControlTest, ShiftInTailPositionCapturesEmptySlice) {
  EXPECT_EQ(run("(reset 'p (shift 'p k (k 42)))"), "42");
  EXPECT_EQ(run("(+ 1 (reset 'p (shift 'p k 41)))"), "42");
}

TEST_F(ControlTest, TagsSelectTheDelimiter) {
  // shift 'outer jumps past the inner 'inner delimiter entirely.
  EXPECT_EQ(
      run("(reset 'outer (+ 1 (reset 'inner (+ 10 (shift 'outer k (k 100))))))"),
      "111");
  EXPECT_EQ(
      run("(reset 'outer (+ 1 (reset 'inner (+ 10 (shift 'outer k 100)))))"),
      "100");
  // Same-tag nesting picks the innermost delimiter.
  EXPECT_EQ(run("(reset 'p (+ 1 (reset 'p (+ 10 (shift 'p k (k 100))))))"),
            "111");
}

TEST_F(ControlTest, ShiftWithoutResetIsAnError) {
  auto R = I.eval("(shift 'nope k 1)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no reset for tag"), std::string::npos) << R.Error;
}

TEST_F(ControlTest, DelimitedContinuationIsOneShot) {
  auto R = I.eval("(reset 'p (+ 1 (shift 'p k (k (k 10)))))");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invoked a second time"), std::string::npos)
      << R.Error;
}

TEST_F(ControlTest, KSurvivesBeingInvokedAfterTheReceiverReturned) {
  // The classic suspended-computation shape: the receiver smuggles k out,
  // the reset returns, and k is invoked later from a different extent.
  // The delimiter travels with k, so the slice's eventual value surfaces
  // at the invoke site.
  EXPECT_EQ(run("(define k* #f)"
                "(define r1 (reset 'p (+ 1 (shift 'p k (set! k* k) 'parked))))"
                "(list r1 (+ 100 (k* 10)))"),
            "(parked 111)");
}

TEST_F(ControlTest, ResumedSliceCanShiftAgain) {
  // After a splice the delimiter is re-established around the slice, so a
  // second shift inside the resumed computation finds it (what generators
  // depend on).
  EXPECT_EQ(run("(define k* #f)"
                "(reset 'p (+ 1 (shift 'p a (set! k* a) 'x)"
                "             (shift 'p b (set! k* b) 0)))"
                "(k* 10)"),
            "0");
}

TEST_F(ControlTest, EscapePastThePromptPrunesItsRecord) {
  // A call/1cc escape jumps out of the reset without returning through the
  // prompt stub; the stranded record must not catch a later same-tag shift.
  auto R = I.eval("(call/1cc (lambda (out)"
                  "  (reset 'p (out 'escaped))))"
                  "(shift 'p k 1)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no reset for tag"), std::string::npos) << R.Error;
}

TEST_F(ControlTest, MultipleValuesFlowThroughReset) {
  EXPECT_EQ(run("(call-with-values (lambda () (reset 'p (values 1 2 3)))"
                "                  list)"),
            "(1 2 3)");
}

// --- dynamic-wind across the delimiter ------------------------------------------

TEST_F(ControlTest, ShiftRunsAfterThunksAndReentryRunsBeforeThunks) {
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define r"
                "  (reset 'p"
                "    (dynamic-wind"
                "      (lambda () (note 'in))"
                "      (lambda () (+ 1 (shift 'p k (note 'recv) (k 10))))"
                "      (lambda () (note 'out)))))"
                "(list r (reverse log))"),
            "(11 (in out recv in out))");
}

TEST_F(ControlTest, AbortWithoutResumeOnlyUnwinds) {
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define r"
                "  (reset 'p"
                "    (dynamic-wind"
                "      (lambda () (note 'in))"
                "      (lambda () (shift 'p k 'aborted))"
                "      (lambda () (note 'out)))))"
                "(list r (reverse log))"),
            "(aborted (in out))");
}

TEST_F(ControlTest, ReentryRebasesOntoTheInvokeSitesWinders) {
  // k is invoked inside a *different* dynamic-wind: the slice's winders
  // re-enter on top of the invoke site's, and unwinding on completion
  // leaves the invoke site's extent intact.
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define k* #f)"
                "(reset 'p"
                "  (dynamic-wind"
                "    (lambda () (note 'slice-in))"
                "    (lambda () (shift 'p k (set! k* k) 'parked))"
                "    (lambda () (note 'slice-out))))"
                "(dynamic-wind"
                "  (lambda () (note 'host-in))"
                "  (lambda () (k* 7))"
                "  (lambda () (note 'host-out)))"
                "(reverse log)"),
            "(slice-in slice-out host-in slice-in slice-out host-out)");
}

TEST(ControlGCTest, PromptRecordsSurviveACollectionMidExtent) {
  // The prompt table is a GC root: a collection fired while a handler
  // extent is live must keep the record's tag, mark, winders and handler
  // values alive (PromptTable::traceRoots), or the later perform would
  // dispatch through freed objects.  A small threshold forces several
  // collections inside the extent before the perform runs.
  // The heap re-arms its threshold to 2x live bytes after every
  // collection, so the loop has to outgrow what the prelude load left
  // armed — hence the generous iteration count; the GcCount delta below
  // keeps the test honest.
  Config C;
  C.GcThresholdBytes = 32 * 1024;
  Interp I(C);
  Stats::Snapshot S0 = I.snapshot();
  EXPECT_EQ(I.evalToString("(with-handler 'gc ((op k a) (k (+ a 1)))"
                           "  (let loop ((i 0) (acc 0))"
                           "    (if (= i 50000)"
                           "        (perform 'gc 'op acc)"
                           "        (loop (+ i 1) (+ acc (length (list i i i)))))))"),
            "150001");
  EXPECT_GT((I.snapshot() - S0).GcCount, 0u)
      << "the workload never collected inside the extent";
}

TEST_F(ControlTest, DormantFirstClassKSurvivesADelimitedCut) {
  // Found by the control fuzzer (ControlFuzz.h seed 96534540, shrunk):
  // call/1cc captures j inside the reset extent, then a shift cuts a
  // slice whose frames j still points into.  Relinking those frames under
  // the receiver would silently retarget j — invoking it must instead
  // escape through the capture-time chain, so the reset returns 1 to
  // toplevel and the receiver's pending (+ 1 _) is abandoned.  The cut
  // detects the first-class alias (Continuation::ByValue) and clones the
  // shared suffix of the slice, exactly like the multi-shot shim.
  EXPECT_EQ(run("(reset 't0"
                "  (call/1cc (lambda (j)"
                "    (+ (shift 't0 s (+ 1 (s 1)))"
                "       (j 1)))))"),
            "1");
}

TEST_F(ControlTest, NestedDormantKsForceSuffixCloning) {
  // Sharing is suffix-closed: both nested call/1cc members sit in the cut
  // slice, and the dormant outer j1 must still reach the reset's return
  // point after the inner frames were spliced and run.
  EXPECT_EQ(run("(reset 't0"
                "  (call/1cc (lambda (j1)"
                "    (call/1cc (lambda (j2)"
                "      (+ (shift 't0 s (+ 1 (s 1)))"
                "         (j1 5)))))))"),
            "5");
}

// --- generators -----------------------------------------------------------------

TEST_F(ControlTest, GeneratorYieldsThenEof) {
  EXPECT_EQ(run("(define g (make-generator"
                "  (lambda (v) (yield 1) (yield 2) (yield 3) 'end)))"
                "(list (generator-next g) (generator-next g)"
                "      (generator-next g) (generator-next g)"
                "      (generator-next g))"),
            "(1 2 3 #<eof> #<eof>)");
}

TEST_F(ControlTest, GeneratorRoundTripsValuesBothWays) {
  // (yield v) evaluates to the value handed to the resuming
  // generator-next — a full two-way conversation.
  EXPECT_EQ(run("(define g (make-generator"
                "  (lambda (v)"
                "    (let* ((a (yield (* v 2)))"
                "           (b (yield (+ a 1))))"
                "      (yield (list a b))))))"
                "(list (generator-next g 5) (generator-next g 7)"
                "      (generator-next g 9) (generator-next g))"),
            "(10 8 (7 9) #<eof>)");
}

TEST_F(ControlTest, GeneratorsAreIndependent) {
  EXPECT_EQ(run("(define (counter) (make-generator"
                "  (lambda (v) (let loop ((i 0)) (yield i) (loop (+ i 1))))))"
                "(define a (counter)) (define b (counter))"
                "(list (generator-next a) (generator-next a)"
                "      (generator-next b) (generator-next a)"
                "      (generator-next b))"),
            "(0 1 0 2 1)");
}

TEST_F(ControlTest, GeneratorsNest) {
  // The inner generator's yields bind to the innermost live delimiter, so
  // driving an inner generator from inside an outer one works.
  EXPECT_EQ(run("(define (walk l) (make-generator"
                "  (lambda (v) (for-each (lambda (x) (yield x)) l) 'done)))"
                "(define g (make-generator"
                "  (lambda (v)"
                "    (let ((inner (walk '(1 2))))"
                "      (let loop ()"
                "        (let ((x (generator-next inner)))"
                "          (unless (eof-object? x)"
                "            (yield (* 10 x))"
                "            (loop)))))"
                "    'outer-done)))"
                "(list (generator-next g) (generator-next g)"
                "      (generator-next g))"),
            "(10 20 #<eof>)");
}

TEST_F(ControlTest, YieldWithNoArgumentIsStillTheSchedulerYield) {
  EXPECT_EQ(run("(define out '())"
                "(define (worker tag)"
                "  (lambda ()"
                "    (set! out (cons tag out)) (yield)"
                "    (set! out (cons tag out))))"
                "(spawn (worker 'a)) (spawn (worker 'b))"
                "(scheduler-run)"
                "(reverse out)"),
            "(a b a b)");
}

TEST_F(ControlTest, GeneratorSurvivesSchedulerParks) {
  // The suspended slice lives in the heap, not on the thread's chain, so a
  // generator keeps working across channel parks of its owning thread —
  // the shape the server's STREAM verb relies on.
  EXPECT_EQ(run("(define ch (make-channel 0))"
                "(define out '())"
                "(define g (make-generator"
                "  (lambda (v) (yield 'a) (yield 'b) (yield 'c) 'fin)))"
                "(spawn (lambda ()"
                "  (let loop ()"
                "    (let ((x (generator-next g)))"
                "      (if (eof-object? x) (channel-close! ch)"
                "          (begin (channel-send! ch x) (loop)))))))"
                "(spawn (lambda ()"
                "  (let loop ()"
                "    (let ((x (channel-recv ch)))"
                "      (unless (eof-object? x)"
                "        (set! out (cons x out)) (loop))))))"
                "(scheduler-run)"
                "(reverse out)"),
            "(a b c)");
}

// --- async/await ----------------------------------------------------------------

TEST_F(ControlTest, AsyncBodyRunsUnderTheScheduler) {
  EXPECT_EQ(run("(define f (async (+ 40 2)))"
                "(scheduler-run)"
                "(future-get f)"),
            "42");
}

TEST_F(ControlTest, AwaitChainsFutures) {
  EXPECT_EQ(run("(define f1 (async (+ 1 2)))"
                "(define f2 (async (* (await f1) 10)))"
                "(define f3 (async (+ (await f2) 7)))"
                "(scheduler-run)"
                "(future-get f3)"),
            "37");
}

TEST_F(ControlTest, AwaitParksWithoutBlockingSiblings) {
  // While one async body is parked in await, other threads keep running;
  // the awaited value arrives from a plain worker thread.
  EXPECT_EQ(run("(define ch (make-channel 0))"
                "(define f (async (list 'got (await ch))))"
                "(spawn (lambda () (channel-send! ch (list 99))))"
                "(scheduler-run)"
                "(future-get f)"),
            "(got 99)");
}

TEST_F(ControlTest, MultipleAwaitsInOneBody) {
  EXPECT_EQ(run("(define a (async 1))"
                "(define b (async 2))"
                "(define c (async (+ (await a) (await b))))"
                "(scheduler-run)"
                "(future-get c)"),
            "3");
}

// --- effect handlers (with-handler / perform) -----------------------------------
//
// The handler veneer is a shift0 variant: doPerform pops the handler's own
// prompt record before running the clause, so clauses run *outside* their
// own delimiter — abortive operations are just clauses that never invoke
// k, and an unmatched operation forwards outward by re-performing.

TEST_F(ControlTest, HandlerResumesTheSlice) {
  EXPECT_EQ(run("(with-handler 'io ((get k) (k 42))"
                "  (+ 1 (perform 'io 'get)))"),
            "43");
  // Operation arguments flow into the clause's formals.
  EXPECT_EQ(run("(with-handler 'st ((add k a b) (k (+ a b)))"
                "  (* 2 (perform 'st 'add 3 4)))"),
            "14");
}

TEST_F(ControlTest, DeepHandlerStaysInstalledAcrossPerforms) {
  // Deep mode: the splice re-pushes the handler with the slice, so every
  // perform in the body finds it again.
  EXPECT_EQ(run("(with-handler 'c ((tick k) (k 1))"
                "  (+ (perform 'c 'tick) (perform 'c 'tick)"
                "     (perform 'c 'tick)))"),
            "3");
}

TEST_F(ControlTest, AbortiveOperationDiscardsTheSlice) {
  // The clause never invokes k: its value is the with-handler form's
  // value, and the (+ 2 _) slice is simply dropped.
  EXPECT_EQ(run("(+ 1 (with-handler 't ((bail k v) v)"
                "       (+ 2 (perform 't 'bail 100))))"),
            "101");
}

TEST_F(ControlTest, NormalReturnIsTheBodyValue) {
  EXPECT_EQ(run("(with-handler 'u ((op k) (k 1)) 'plain)"), "plain");
  EXPECT_EQ(run("(+ 1 (with-handler 'u ((op k) (k 1)) (+ 20 21)))"), "42");
}

TEST_F(ControlTest, ShallowHandlerHandlesExactlyOnce) {
  // Shallow mode: the handler is consumed by the first perform; the
  // second one forwards to the next matching handler out.
  EXPECT_EQ(run("(with-handler 'tag ((op k) (k 'outer))"
                "  (with-shallow-handler 'tag ((op k) (k 'once))"
                "    (cons (perform 'tag 'op) (perform 'tag 'op))))"),
            "(once . outer)");
}

TEST_F(ControlTest, UnmatchedOperationForwardsOutward) {
  // The inner handler has no 'pong clause: the dispatcher re-performs to
  // the outer handler and resumes the inner k with its answer.
  EXPECT_EQ(run("(with-handler 'fx ((pong k) (k 'from-outer))"
                "  (with-handler 'fx ((ping k) (k 'inner-ping))"
                "    (list (perform 'fx 'ping) (perform 'fx 'pong))))"),
            "(inner-ping from-outer)");
}

TEST_F(ControlTest, TagsSelectTheHandler) {
  // Distinct tags route independently even when nested.
  EXPECT_EQ(run("(with-handler 'a ((op k) (k 'handled-a))"
                "  (with-handler 'b ((op k) (k 'handled-b))"
                "    (list (perform 'a 'op) (perform 'b 'op))))"),
            "(handled-a handled-b)");
  // Plain resets with the same tag are transparent to perform: it binds
  // to handlers only, cutting straight through the reset's prompt.
  EXPECT_EQ(run("(with-handler 'p ((op k) (k 7))"
                "  (reset 'p (+ 1 (perform 'p 'op))))"),
            "8");
}

TEST_F(ControlTest, ClausesRunOutsideTheirOwnDelimiter) {
  // shift0 discipline: a perform from inside a clause must find the
  // *outer* handler, never the one whose clause is running.
  EXPECT_EQ(run("(with-handler 'e ((op k) (k 'outer-answer))"
                "  (with-handler 'e ((op k) (k (perform 'e 'op)))"
                "    (perform 'e 'op)))"),
            "outer-answer");
}

TEST_F(ControlTest, PerformWithoutHandlerIsAnError) {
  auto R = I.eval("(perform 'nobody 'op 1)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("no handler for tag"), std::string::npos) << R.Error;
  // A plain reset with the right tag is not a handler.
  auto R2 = I.eval("(reset 'p (perform 'p 'op))");
  ASSERT_FALSE(R2.Ok);
  EXPECT_NE(R2.Error.find("no handler for tag"), std::string::npos)
      << R2.Error;
}

TEST_F(ControlTest, HandlerContinuationIsOneShot) {
  auto R = I.eval("(with-handler 'd ((op k) (k (k 1)))"
                  "  (+ 1 (perform 'd 'op)))");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("invoked a second time"), std::string::npos)
      << R.Error;
}

TEST_F(ControlTest, HandlerKSurvivesTheFormReturning) {
  // The clause smuggles k out and returns; the with-handler form settles
  // on the clause's value, and k is invoked later from a fresh extent —
  // the suspended slice completes there, like a parked generator.
  EXPECT_EQ(run("(define k* #f)"
                "(define r1 (with-handler 'p ((op k) (set! k* k) 'parked)"
                "             (+ 1 (perform 'p 'op))))"
                "(list r1 (+ 100 (k* 10)))"),
            "(parked 111)");
}

TEST_F(ControlTest, PerformRunsAfterThunksOnAbort) {
  // Winder travel matches shift: cutting the slice runs the after-thunks
  // of every dynamic-wind between the perform and the handler.
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define r (with-handler 'a ((bail k v) (note 'clause) v)"
                "  (dynamic-wind"
                "    (lambda () (note 'in))"
                "    (lambda () (perform 'a 'bail 'done))"
                "    (lambda () (note 'out)))))"
                "(list r (reverse log))"),
            "(done (in out clause))");
}

TEST_F(ControlTest, ResumeRerunsBeforeThunks) {
  EXPECT_EQ(run("(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define r (with-handler 'b ((get k) (note 'clause) (k 5))"
                "  (dynamic-wind"
                "    (lambda () (note 'in))"
                "    (lambda () (+ 1 (perform 'b 'get)))"
                "    (lambda () (note 'out)))))"
                "(list r (reverse log))"),
            "(6 (in out clause in out))");
}

TEST_F(ControlTest, HandlerTagIsComparedByIdentity) {
  // The tag expression is evaluated once; any value works as a tag as
  // long as the perform presents the same (eq?) value.
  EXPECT_EQ(run("(define t (list 'fresh))"
                "(with-handler t ((op k) (k 'found))"
                "  (perform t 'op))"),
            "found");
}

TEST_F(ControlTest, HandlersComposeWithGenerators) {
  // A generator body performing effects interpreted outside the
  // generator: two distinct delimiters interleave their slices.
  EXPECT_EQ(run("(define g (make-generator (lambda (v)"
                "  (yield (perform 'env 'get))"
                "  (yield (perform 'env 'get))"
                "  'done)))"
                "(define n 0)"
                "(with-handler 'env ((get k) (set! n (+ n 10)) (k n))"
                "  (list (generator-next g) (generator-next g)))"),
            "(10 20)");
}

// --- representation: the zero-copy capture path ---------------------------------

TEST(ControlRepresentation, SteadyStateYieldCopiesZeroWords) {
  // After warm-up, each yield/next round trip is: one-shot capture, cut to
  // the mark (header relinks only), splice (one link store), one-shot
  // invoke.  No stack words move and nothing is cloned.
  Interp I;
  ASSERT_TRUE(I.eval("(define g (make-generator (lambda (v)"
                     "  (let loop ((i 0)) (yield i) (loop (+ i 1))))))"
                     "(generator-next g) (generator-next g)")
                  .Ok);
  uint64_t W0 = I.stats().WordsCopied;
  uint64_t C0 = I.stats().SliceClonedWords;
  uint64_t Cap0 = I.stats().SliceCaptures;
  ASSERT_TRUE(I.eval("(let loop ((i 0))"
                     "  (when (< i 200) (generator-next g) (loop (+ i 1))))")
                  .Ok);
  EXPECT_EQ(I.stats().WordsCopied, W0);
  EXPECT_EQ(I.stats().SliceClonedWords, C0);
  EXPECT_EQ(I.stats().SliceCaptures, Cap0 + 200);
  EXPECT_GE(I.stats().SliceSplices, 200u);
}

TEST(ControlRepresentation, CopyingShimClonesEveryMember) {
  // With DelimOneShot off, reset marks are captured multi-shot and every
  // slice member fails the exclusively-owned test, so the same program
  // pays real word copies — the contrast bench_control quantifies.
  Config C;
  C.DelimOneShot = false;
  Interp I(C);
  ASSERT_TRUE(I.eval("(define g (make-generator (lambda (v)"
                     "  (let loop ((i 0)) (yield i) (loop (+ i 1))))))"
                     "(generator-next g) (generator-next g)")
                  .Ok);
  uint64_t C0 = I.stats().SliceClonedWords;
  ASSERT_TRUE(I.eval("(let loop ((i 0))"
                     "  (when (< i 50) (generator-next g) (loop (+ i 1))))")
                  .Ok);
  EXPECT_GT(I.stats().SliceClonedWords, C0);
}

TEST(ControlRepresentation, CountersExposedThroughVmStat) {
  Interp I;
  EXPECT_EQ(I.evalToString("(reset 'p (shift 'p k (k 1)))"
                           "(list (> (vm-stat 'prompt-resets) 0)"
                           "      (> (vm-stat 'slice-captures) 0)"
                           "      (> (vm-stat 'slice-splices) 0))"),
            "(#t #t #t)");
}

TEST(ControlRepresentation, TraceRecordsResetShiftSplice) {
  Interp I;
  I.trace().start();
  auto R = I.eval("(reset 'p (+ 1 (shift 'p k (k 10))))");
  I.trace().stop();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool SawReset = false, SawShift = false, SawSplice = false;
  for (const Trace::Record &Rec : I.trace().snapshot()) {
    if (Rec.Kind == TraceEvent::Reset)
      SawReset = true;
    if (Rec.Kind == TraceEvent::Shift) {
      SawShift = true;
      EXPECT_EQ(Rec.Payload[2], 0u) << "steady-state shift cloned a member";
    }
    if (Rec.Kind == TraceEvent::Splice)
      SawSplice = true;
  }
  EXPECT_TRUE(SawReset && SawShift && SawSplice) << I.trace().toString();
}

TEST(ControlRepresentation, SteadyStatePerformCopiesZeroWords) {
  // The handler analogue of the generator invariant: after warm-up, each
  // perform-and-resume round trip cuts the slice to the handler's mark by
  // header relinking and splices it back with a link store — no stack
  // words move, nothing is cloned.  bench_control quantifies the same
  // loop; tools/bench_gate.py enforces it on every bench run.
  Interp I;
  ASSERT_TRUE(I.eval("(define (burst n)"
                     "  (with-handler 'tick ((tick k) (k #t))"
                     "    (let loop ((i 0))"
                     "      (if (< i n)"
                     "          (begin (perform 'tick 'tick) (loop (+ i 1)))"
                     "          i))))"
                     "(burst 2)")
                  .Ok);
  uint64_t W0 = I.stats().WordsCopied;
  uint64_t C0 = I.stats().SliceClonedWords;
  uint64_t Cap0 = I.stats().SliceCaptures;
  ASSERT_TRUE(I.eval("(burst 200)").Ok);
  EXPECT_EQ(I.stats().WordsCopied, W0);
  EXPECT_EQ(I.stats().SliceClonedWords, C0);
  EXPECT_EQ(I.stats().SliceCaptures, Cap0 + 200);
}

TEST(ControlRepresentation, CopyingShimClonesEveryPerform) {
  // Same program under the DelimOneShot=false shim: every cut clones its
  // members, so SliceClonedWords must grow — the contrast the zero-copy
  // claim is measured against.
  Config C;
  C.DelimOneShot = false;
  Interp I(C);
  ASSERT_TRUE(I.eval("(define (burst n)"
                     "  (with-handler 'tick ((tick k) (k #t))"
                     "    (let loop ((i 0))"
                     "      (if (< i n)"
                     "          (begin (perform 'tick 'tick) (loop (+ i 1)))"
                     "          i))))"
                     "(burst 2)")
                  .Ok);
  uint64_t C0 = I.stats().SliceClonedWords;
  ASSERT_TRUE(I.eval("(burst 50)").Ok);
  EXPECT_GT(I.stats().SliceClonedWords, C0);
}

TEST(ControlRepresentation, HandlerCountersExposedThroughVmStat) {
  Interp I;
  EXPECT_EQ(I.evalToString(
                "(with-handler 'h ((op k) (k 1)) (perform 'h 'op)"
                "                                (perform 'h 'op))"
                "(list (vm-stat 'handlers-installed) (vm-stat 'performs))"),
            "(1 2)");
}

TEST(ControlRepresentation, TraceRecordsHandleAndPerform) {
  Interp I;
  I.trace().start();
  auto R = I.eval("(with-handler 'h ((op k) (k 10))"
                  "  (+ 1 (perform 'h 'op)))");
  I.trace().stop();
  ASSERT_TRUE(R.Ok) << R.Error;
  bool SawHandle = false, SawPerform = false, SawSplice = false;
  for (const Trace::Record &Rec : I.trace().snapshot()) {
    if (Rec.Kind == TraceEvent::Handle) {
      SawHandle = true;
      EXPECT_EQ(Rec.Payload[1], 0u) << "deep handler traced as shallow";
    }
    if (Rec.Kind == TraceEvent::Perform) {
      SawPerform = true;
      EXPECT_EQ(Rec.Payload[2], 0u) << "steady-state perform cloned a member";
    }
    if (Rec.Kind == TraceEvent::Splice)
      SawSplice = true;
  }
  EXPECT_TRUE(SawHandle && SawPerform && SawSplice) << I.trace().toString();
}

// --- differential: DelimOneShot on == off across the lattice --------------------

struct Observed {
  bool Ok = false;
  std::string Val;
  std::string Err;
  std::string Out;
};

bool operator==(const Observed &A, const Observed &B) {
  return A.Ok == B.Ok && A.Val == B.Val && A.Err == B.Err && A.Out == B.Out;
}

std::ostream &operator<<(std::ostream &OS, const Observed &O) {
  return OS << "{ok=" << O.Ok << " val=" << O.Val << " err=" << O.Err
            << " out=" << O.Out << "}";
}

Observed runOnce(Config C, const std::string &Source, bool OneShot) {
  C.DelimOneShot = OneShot;
  Interp I(C);
  I.captureOutput(true);
  auto R = I.eval(Source);
  Observed O;
  O.Ok = R.Ok;
  if (R.Ok)
    O.Val = I.valueToString(R.Val);
  O.Err = R.Error;
  O.Out = I.takeOutput();
  return O;
}

struct Program {
  const char *Name;
  const char *Source;
};

const Program DelimPrograms[] = {
    {"value-flow",
     "(list (reset 'p (+ 1 (shift 'p k (k 10))))"
     "      (+ 1 (reset 'p (+ 2 (shift 'p k 100))))"
     "      (reset 'p (+ 1 (shift 'p k (+ 100 (k 10))))))"},
    {"nested-tags",
     "(list (reset 'a (+ 1 (reset 'b (+ 10 (shift 'a k (k 100))))))"
     "      (reset 'a (+ 1 (reset 'b (+ 10 (shift 'b k (k 100))))))"
     "      (reset 'p (+ 1 (reset 'p (+ 10 (shift 'p k (k 100)))))))"},
    {"wind-crossing",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(define r (reset 'p (dynamic-wind"
     "  (lambda () (note 'in))"
     "  (lambda () (+ 1 (shift 'p k (note 'recv) (k 10))))"
     "  (lambda () (note 'out)))))"
     "(list r (reverse log))"},
    {"parked-slice-generator",
     "(define g (make-generator (lambda (v)"
     "  (let loop ((i 0) (acc 0))"
     "    (if (= i 5) acc (loop (+ i 1) (+ acc (yield i))))))))"
     "(define parts '())"
     "(let loop ((x (generator-next g 0)))"
     "  (if (eof-object? x) (reverse parts)"
     "      (begin (set! parts (cons x parts))"
     "             (loop (generator-next g (* 2 x))))))"},
    {"one-shot-reuse-error",
     "(display (reset 'p (+ 1 (shift 'p k (k 1)))))"
     "(reset 'p (+ 1 (shift 'p k (k (k 10)))))"},
    {"async-await-pipeline",
     "(define f1 (async (+ 1 2)))"
     "(define f2 (async (* (await f1) 10)))"
     "(define sink '())"
     "(spawn (lambda () (set! sink (future-get f2))))"
     "(scheduler-run)"
     "sink"},
    {"escape-prunes-prompt",
     "(display (call/1cc (lambda (out) (reset 'p (out 'gone)))))"
     "(newline)"
     "(shift 'p k 1)"},
    {"handler-state-effect",
     // get/put interpreted by a deep handler holding mutable state: every
     // perform cuts and splices under both representations.
     "(define cell 0)"
     "(with-handler 'st ((get k) (k cell))"
     "              ((put k v) (set! cell v) (k 'ok))"
     "  (perform 'st 'put 10)"
     "  (let ((a (perform 'st 'get)))"
     "    (perform 'st 'put (* a 3))"
     "    (list a (perform 'st 'get))))"},
    {"handler-abort-through-winders",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(define r (with-handler 'x ((bail k v) (note 'clause) v)"
     "  (dynamic-wind (lambda () (note 'in))"
     "                (lambda () (perform 'x 'bail 'stopped))"
     "                (lambda () (note 'out)))))"
     "(list r (reverse log))"},
    {"shallow-handler-chain",
     "(with-handler 'tag ((op k) (k 'deep))"
     "  (with-shallow-handler 'tag ((op k) (k 'shallow))"
     "    (list (perform 'tag 'op) (perform 'tag 'op)"
     "          (perform 'tag 'op))))"},
    {"handler-forwarding-double-error",
     // First form prints, second must fail identically: k is one-shot in
     // both worlds (the shim clones slices but keeps the contract).
     "(display (with-handler 'f ((op k) (k 1)) (perform 'f 'op)))"
     "(newline)"
     "(with-handler 'f ((op k) (k (k 1))) (perform 'f 'op))"},
    {"handler-under-generator",
     "(define g (make-generator (lambda (v)"
     "  (yield (perform 'env 'get)) (yield (perform 'env 'get)) 'done)))"
     "(define n 0)"
     "(with-handler 'env ((get k) (set! n (+ n 10)) (k n))"
     "  (list (generator-next g) (generator-next g)))"},
    {"nursery-cancels-parked-children",
     "(define out '())"
     "(define (note x) (set! out (cons x out)))"
     "(define tids '())"
     "(spawn (lambda ()"
     "  (nursery"
     "   (set! tids (cons (spawn (lambda ()"
     "     (note 'c1) (channel-recv (make-channel 0)) (note 'never))) tids))"
     "   (set! tids (cons (spawn (lambda ()"
     "     (note 'c2) (channel-recv (make-channel 0)) (note 'never))) tids))"
     "   (yield)"
     "   (note 'scope-end))))"
     "(scheduler-run)"
     "(list (reverse out) (map thread-state (reverse tids))"
     "      (vm-stat 'nursery-cancels))"},
};

class DelimDifferential
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(DelimDifferential, OneShotEqualsCopyingShim) {
  auto [ProgIdx, CfgIdx] = GetParam();
  const Program &P = DelimPrograms[ProgIdx];
  std::vector<ConfigPoint> Lattice = configLattice();
  const ConfigPoint &CP = Lattice[CfgIdx];
  Observed Fast = runOnce(CP.C, P.Source, /*OneShot=*/true);
  Observed Shim = runOnce(CP.C, P.Source, /*OneShot=*/false);
  EXPECT_EQ(Fast, Shim) << "program " << P.Name << " under config "
                        << CP.Name;
}

std::string delimName(
    const ::testing::TestParamInfo<std::tuple<size_t, size_t>> &Info) {
  auto [ProgIdx, CfgIdx] = Info.param;
  std::string N = std::string(DelimPrograms[ProgIdx].Name) + "_" +
                  configLattice()[CfgIdx].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, DelimDifferential,
    ::testing::Combine(
        ::testing::Range<size_t>(0, std::size(DelimPrograms)),
        ::testing::Range<size_t>(0, configLattice().size())),
    delimName);

} // namespace
