// dynamic-wind and its interaction with both continuation flavors.  The
// paper maintains dynamic-wind support alongside one-shot continuations;
// these tests pin the unwind/rewind ordering.

#include "osc.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

std::string run(Interp &I, const std::string &Src) {
  return I.evalToString(Src);
}

} // namespace

TEST(DynamicWind, NormalFlow) {
  Interp I;
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(define r (dynamic-wind"
                   "            (lambda () (note 'before))"
                   "            (lambda () (note 'during) 42)"
                   "            (lambda () (note 'after))))"
                   "(list r (reverse log))"),
            "(42 (before during after))");
}

TEST(DynamicWind, ReturnsThunkValues) {
  Interp I;
  EXPECT_EQ(run(I, "(dynamic-wind (lambda () #f)"
                   "              (lambda () (values 1 2))"
                   "              (lambda () #f))"),
            "1");
  EXPECT_EQ(run(I, "(call-with-values"
                   "  (lambda () (dynamic-wind (lambda () #f)"
                   "                           (lambda () (values 1 2))"
                   "                           (lambda () #f)))"
                   "  list)"),
            "(1 2)");
}

TEST(DynamicWind, EscapeRunsAfterThunk) {
  Interp I;
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(call/cc (lambda (k)"
                   "  (dynamic-wind"
                   "    (lambda () (note 'in))"
                   "    (lambda () (note 'body) (k 'escaped) (note 'no))"
                   "    (lambda () (note 'out)))))"
                   "(reverse log)"),
            "(in body out)");
}

TEST(DynamicWind, OneShotEscapeRunsAfterThunk) {
  Interp I;
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(call/1cc (lambda (k)"
                   "  (dynamic-wind"
                   "    (lambda () (note 'in))"
                   "    (lambda () (note 'body) (k 'escaped) (note 'no))"
                   "    (lambda () (note 'out)))))"
                   "(reverse log)"),
            "(in body out)");
}

TEST(DynamicWind, ReentryRunsBeforeThunk) {
  Interp I;
  // Jumping back *into* a dynamic extent re-runs the before thunk.
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(define k #f)"
                   "(define n 0)"
                   "(dynamic-wind"
                   "  (lambda () (note 'in))"
                   "  (lambda ()"
                   "    (call/cc (lambda (c) (set! k c)))"
                   "    (set! n (+ n 1)))"
                   "  (lambda () (note 'out)))"
                   "(if (< n 3) (k #f) (list n (reverse log)))"),
            "(3 (in out in out in out))");
}

TEST(DynamicWind, NestedUnwindOrder) {
  Interp I;
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(call/cc (lambda (k)"
                   "  (dynamic-wind"
                   "    (lambda () (note 'in1))"
                   "    (lambda ()"
                   "      (dynamic-wind"
                   "        (lambda () (note 'in2))"
                   "        (lambda () (k 'jump))"
                   "        (lambda () (note 'out2))))"
                   "    (lambda () (note 'out1)))))"
                   "(reverse log)"),
            "(in1 in2 out2 out1)");
}

TEST(DynamicWind, SharedTailNotUnwound) {
  Interp I;
  // Jumping between two points inside the same dynamic extent must not run
  // that extent's before/after thunks.
  EXPECT_EQ(run(I, "(define log '())"
                   "(define (note x) (set! log (cons x log)))"
                   "(define k #f)"
                   "(define n 0)"
                   "(dynamic-wind"
                   "  (lambda () (note 'in))"
                   "  (lambda ()"
                   "    (call/cc (lambda (c) (set! k c)))"
                   "    (set! n (+ n 1))"
                   "    (if (< n 3) (k #f) #f))"
                   "  (lambda () (note 'out)))"
                   "(reverse log)"),
            "(in out)");
}

TEST(DynamicWind, GeneratorAcrossWind) {
  Interp I;
  // A generator whose body sits inside a dynamic-wind: every suspension
  // unwinds, every resumption rewinds.
  EXPECT_EQ(run(I, "(define enters 0)"
                   "(define exits 0)"
                   "(define resume #f)"
                   "(define (gen consume)"
                   "  (dynamic-wind"
                   "    (lambda () (set! enters (+ enters 1)))"
                   "    (lambda ()"
                   "      (for-each (lambda (x)"
                   "                  (set! consume"
                   "                        (call/cc (lambda (r)"
                   "                                   (set! resume r)"
                   "                                   (consume x)))))"
                   "                '(1 2))"
                   "      (consume 'eos))"
                   "    (lambda () (set! exits (+ exits 1)))))"
                   "(define (next)"
                   "  (call/cc (lambda (k) (if resume (resume k) (gen k)))))"
                   "(define a (next)) (define b (next)) (define c (next))"
                   "(list a b c enters exits)"),
            "(1 2 eos 3 3)");
}

TEST(DynamicWind, ErrorInsideExtentDoesNotCrash) {
  Interp I;
  // VM errors abort the evaluation; the after thunk cannot run (errors are
  // not continuations), but the machine stays usable.
  EXPECT_EQ(run(I, "(dynamic-wind (lambda () #f)"
                   "              (lambda () (car 5))"
                   "              (lambda () #f))"),
            "error: car: not a pair: 5");
  EXPECT_EQ(run(I, "(+ 1 2)"), "3");
}
