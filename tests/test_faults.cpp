// Deterministic fault injection (support/Fault.h): forced GCs at every
// allocation, injected stack-segment allocation failures, and scripted
// preemption-timer expiries.  Faults are armed *after* construction via
// Interp::faults() so the prelude loads unmolested; segment-failure
// ordinals are computed relative to segmentAllocRequests() for the same
// reason.
//
// Run these under the asan-ubsan preset too: the segment-failure sweep is
// specifically designed to catch dangling cache entries and half-switched
// control state on the error path.

#include "osc.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace osc;

namespace {

// --- Forced GC every allocation ------------------------------------------------

struct GcProgram {
  const char *Name;
  const char *Source;
  const char *Expect;
};

const GcProgram GcPrograms[] = {
    {"reentrant-callcc",
     "(define k #f) (define n 0)"
     "(define (deep d) (if (zero? d) (call/cc (lambda (c) (set! k c) 0))"
     "                     (+ 1 (deep (- d 1)))))"
     "(define r (deep 60)) (set! n (+ n 1))"
     "(if (< n 3) (k 0) (list r n))",
     "(60 3)"},
    {"oneshot-escape",
     "(call/1cc (lambda (return)"
     "  (let loop ((i 0))"
     "    (if (= (* i i) 144) (return i) (loop (+ i 1))))))",
     "12"},
    {"coroutine-transfer",
     "(define producer-k #f) (define consumer-k #f) (define out '())"
     "(define (yield v)"
     "  (call/1cc (lambda (k) (set! producer-k k) (consumer-k v))))"
     "(define (producer) (yield 'a) (yield 'b) (consumer-k 'eos))"
     "(define (next)"
     "  (call/1cc (lambda (k)"
     "    (set! consumer-k k)"
     "    (if producer-k (producer-k #f) (producer)))))"
     "(let loop ()"
     "  (let ((v (next)))"
     "    (if (eq? v 'eos) (reverse out)"
     "        (begin (set! out (cons v out)) (loop)))))",
     "(a b)"},
    {"dynamic-wind-jumps",
     "(define log '()) (define k #f) (define n 0)"
     "(dynamic-wind"
     "  (lambda () (set! log (cons 'in log)))"
     "  (lambda () (call/cc (lambda (c) (set! k c))) (set! n (+ n 1)))"
     "  (lambda () (set! log (cons 'out log))))"
     "(if (< n 3) (k #f) (reverse log))",
     "(in out in out in out)"},
    {"generator",
     "(define resume #f)"
     "(define (gen consume)"
     "  (for-each (lambda (x)"
     "              (set! consume (call/cc (lambda (r)"
     "                                       (set! resume r)"
     "                                       (consume x)))))"
     "            '(1 2 3))"
     "  (consume 'done))"
     "(define (next)"
     "  (call/cc (lambda (k) (if resume (resume k) (gen k)))))"
     "(list (next) (next) (next) (next))",
     "(1 2 3 done)"},
};

class GcEveryAllocation : public ::testing::TestWithParam<size_t> {};

TEST_P(GcEveryAllocation, SemanticsUnchanged) {
  // GC at literally every allocation is the harshest safepoint schedule
  // the design permits; any unrooted live object or stale segment-cache
  // entry dies here.  Results must match an unfaulted run exactly.
  const GcProgram &P = GcPrograms[GetParam()];
  Interp I;
  I.faults().GcEveryNAllocs = 1;
  uint64_t Before = I.stats().GcCount;
  EXPECT_EQ(I.evalToString(P.Source), P.Expect) << P.Name;
  EXPECT_GT(I.stats().GcCount, Before) << "fault plan never fired";
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, GcEveryAllocation,
                         ::testing::Range<size_t>(0, std::size(GcPrograms)),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           std::string N = GcPrograms[Info.param].Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST(GcEveryAllocationTest, EveryFewAllocationsAlsoClean) {
  for (uint64_t N : {2, 7, 31}) {
    Interp I;
    I.faults().GcEveryNAllocs = N;
    EXPECT_EQ(I.evalToString("(define (build n acc)"
                             "  (if (zero? n) acc"
                             "      (build (- n 1) (cons (list n) acc))))"
                             "(length (build 300 '()))"),
              "300")
        << "GcEveryNAllocs=" << N;
  }
}

// --- Injected segment-allocation failures --------------------------------------

// Deep non-tail recursion: overflows repeatedly, so it needs fresh
// segments well past the prelude's appetite.
const char *DeepProg =
    "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1))))) (deep 4000)";

Config smallSegments() {
  Config C;
  C.SegmentWords = 128;
  C.InitialSegmentWords = 128;
  return C;
}

TEST(SegmentAllocFailure, RaisesCatchableErrorAndStaysUsable) {
  Interp I(smallSegments());
  // Fail the 3rd fresh segment allocation after this point.
  I.faults().FailSegmentAlloc = I.control().segmentAllocRequests() + 3;
  auto R = I.eval(DeepProg);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("segment allocation"), std::string::npos)
      << R.Error;
  // The fault is one-shot (a specific ordinal): the VM must be fully
  // usable afterwards — simple evaluation, captures, and enough recursion
  // to allocate fresh segments again.
  EXPECT_EQ(I.evalToString("(+ 1 2)"), "3");
  EXPECT_EQ(I.evalToString("(call/cc (lambda (k) (k 'alive)))"), "alive");
  EXPECT_EQ(I.evalToString(DeepProg), "4000");
}

TEST(SegmentAllocFailure, SweepEveryEarlyOrdinal) {
  // Fail the 1st, 2nd, ... 12th allocation in turn.  Wherever the failure
  // lands — initial window, overflow, capture's fresh segment, invoke's
  // grow path — the error must be clean and the interpreter must survive.
  // Under asan this doubles as a leak/dangling-cache check.
  for (uint64_t K = 1; K <= 12; ++K) {
    Interp I(smallSegments());
    I.faults().FailSegmentAlloc = I.control().segmentAllocRequests() + K;
    auto R = I.eval(DeepProg);
    if (!R.Ok) {
      EXPECT_NE(R.Error.find("segment allocation"), std::string::npos)
          << "K=" << K << ": " << R.Error;
    }
    I.faults().FailSegmentAlloc = 0;
    EXPECT_EQ(I.evalToString("(+ 1 2)"), "3") << "K=" << K;
    // Force a collection: any dangling cache entry left by the unwound
    // allocation dies here, not silently later.
    I.collect();
    EXPECT_EQ(I.evalToString(DeepProg), "4000") << "K=" << K;
  }
}

TEST(SegmentAllocFailure, FailureDuringCaptureHeavyProgram) {
  const char *Prog =
      "(define ks '())"
      "(define (save) (car (list (%call/1cc (lambda (k)"
      "  (set! ks (cons k ks)) 1)))))"
      "(define (spine d)"
      "  (if (zero? d) (save) (+ (save) (spine (- d 1)))))"
      "(spine 40)";
  for (uint64_t K = 1; K <= 8; ++K) {
    Interp I(smallSegments());
    I.faults().FailSegmentAlloc = I.control().segmentAllocRequests() + K;
    auto R = I.eval(Prog);
    if (!R.Ok) {
      EXPECT_NE(R.Error.find("segment allocation"), std::string::npos)
          << "K=" << K << ": " << R.Error;
    }
    I.faults().FailSegmentAlloc = 0;
    EXPECT_EQ(I.evalToString("(+ 2 3)"), "5") << "K=" << K;
  }
}

TEST(SegmentAllocFailure, ErrorReportsOrdinal) {
  Interp I(smallSegments());
  uint64_t Target = I.control().segmentAllocRequests() + 2;
  I.faults().FailSegmentAlloc = Target;
  auto R = I.eval(DeepProg);
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find(std::to_string(Target)), std::string::npos)
      << R.Error;
}

// --- Scripted preemption expiries ----------------------------------------------

TEST(PreemptSchedule, ForcesDeterministicSwitches) {
  // Two workers under a huge natural interval: without the injected
  // schedule there would be no preemption at all; with it, the switches
  // happen exactly at the scripted call ordinals — so two identically
  // armed runs interleave identically.
  const char *Prog = "(define (spin n) (if (zero? n) 'done (spin (- n 1))))"
                     "(spawn (lambda () (spin 400)))"
                     "(spawn (lambda () (spin 400)))"
                     "(scheduler-run 1000000)";
  auto RunOnce = [&](Interp &I) {
    I.faults().PreemptAtCalls = {50, 100, 150, 200, 250, 300};
    I.trace().start();
    auto R = I.eval(Prog);
    I.trace().stop();
    EXPECT_TRUE(R.Ok) << R.Error;
    return I.trace().toString();
  };
  Interp A, B;
  std::string TA = RunOnce(A), TB = RunOnce(B);
  EXPECT_GT(A.stats().PreemptiveSwitches, 0u);
  EXPECT_EQ(A.stats().PreemptiveSwitches, B.stats().PreemptiveSwitches);
  EXPECT_EQ(TA, TB);
}

TEST(PreemptSchedule, ExpiryOutsideSchedulerIsHarmless) {
  // An injected expiry with no engine timer armed and no scheduler active
  // must be swallowed by the stale-expiry path, not corrupt anything.
  Interp I;
  I.faults().PreemptAtCalls = {3, 6, 9};
  EXPECT_EQ(I.evalToString("(define (f n) (if (zero? n) 'ok (f (- n 1))))"
                           "(f 50)"),
            "ok");
}

TEST(PreemptSchedule, ScheduleIsPerRun) {
  // PreemptAtCalls ordinals restart at every toplevel run: the same plan
  // fires again for a second eval.
  Interp I;
  I.faults().PreemptAtCalls = {20};
  const char *Prog = "(define (spin n) (if (zero? n) 'done (spin (- n 1))))"
                     "(spawn (lambda () (spin 100)))"
                     "(spawn (lambda () (spin 100)))"
                     "(scheduler-run 1000000)";
  ASSERT_TRUE(I.eval(Prog).Ok);
  uint64_t After1 = I.stats().PreemptiveSwitches;
  EXPECT_GT(After1, 0u);
  ASSERT_TRUE(I.eval(Prog).Ok);
  EXPECT_GT(I.stats().PreemptiveSwitches, After1);
}

// --- Faults compose with tracing -----------------------------------------------

TEST(FaultCompose, ForcedGcAppearsInTrace) {
  Interp I;
  I.faults().GcEveryNAllocs = 5;
  I.trace().start();
  ASSERT_TRUE(I.eval("(length (list 1 2 3 4 5))").Ok);
  I.trace().stop();
  bool SawGc = false;
  for (const auto &R : I.trace().snapshot())
    if (R.Kind == TraceEvent::GcStart)
      SawGc = true;
  EXPECT_TRUE(SawGc) << I.trace().toString();
}

} // namespace
