// Compiler unit tests: expander output, bytecode shape, the frame-size
// words at return points (§3.1 — the control representation depends on
// them), tail-call emission, MaxDepth and closure capture sets.

#include "compiler/Bytecode.h"
#include "compiler/CodeGen.h"
#include "compiler/Expander.h"
#include "core/FrameWalk.h"
#include "object/Heap.h"
#include "sexp/Printer.h"
#include "sexp/Reader.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace osc;

namespace {

class CompilerTest : public ::testing::Test {
protected:
  CompilerTest() : H(S) {}

  std::string expand(const std::string &Src) {
    ReadResult R = readDatum(H, Src);
    if (!R.Ok)
      return "read error";
    Expander Ex(H);
    Value Out;
    std::string Err;
    if (!Ex.expandToplevel(R.Datum, Out, Err))
      return Err;
    return writeToString(Out);
  }

  Code *compile(const std::string &Src, std::string &Err) {
    return compileMasked(Src, Config().Superinstructions, Err);
  }

  /// Compiles with an explicit superinstruction fusion mask (0 = unfused).
  Code *compileMasked(const std::string &Src, uint32_t FuseMask,
                      std::string &Err) {
    // Wrap every datum in one (begin ...) unit, as Interp::eval does.
    Reader Rd(H, Src);
    std::vector<Value> Forms;
    if (!Rd.readAll(Forms, Err))
      return nullptr;
    Value Unit = Value::nil();
    for (auto It = Forms.rbegin(); It != Forms.rend(); ++It)
      Unit = Value::object(H.allocPair(*It, Unit));
    Unit = Value::object(H.allocPair(Value::object(H.intern("begin")), Unit));
    Expander Ex(H);
    Value Expanded;
    if (!Ex.expandToplevel(Unit, Expanded, Err))
      return nullptr;
    Config Cfg;
    Cfg.Superinstructions = FuseMask;
    CodeGen Gen(H, Cfg);
    return Gen.compileToplevel(Expanded, Err);
  }

  /// Disassembles \p C and, recursively, every code object it references.
  std::string disasmTree(const Code *C) {
    std::string Out = disassemble(C);
    const Vector *Consts = castObj<Vector>(C->Consts);
    for (uint32_t I = 0; I != Consts->Len; ++I)
      if (isObj<Code>(Consts->get(I)))
        Out += disasmTree(castObj<Code>(Consts->get(I)));
    return Out;
  }

  std::string disasm(const std::string &Src) {
    std::string Err;
    Code *C = compile(Src, Err);
    return C ? disasmTree(C) : "error: " + Err;
  }

  Stats S;
  Heap H;
};

} // namespace

TEST_F(CompilerTest, ExpandDerivedForms) {
  EXPECT_EQ(expand("(when a b c)"),
            "(if a (begin b c) (quote #<unspecified>))");
  EXPECT_EQ(expand("(and)"), "(quote #t)");
  EXPECT_EQ(expand("(and x)"), "x");
  EXPECT_EQ(expand("(or)"), "(quote #f)");
  EXPECT_EQ(expand("(let* ((a 1)) a)"), "(let ((a 1)) a)");
  // let* nests.
  EXPECT_EQ(expand("(let* ((a 1) (b a)) b)"),
            "(let ((a 1)) (let ((b a)) b))");
}

TEST_F(CompilerTest, ExpandLetrecToBoxes) {
  std::string Out = expand("(letrec ((f (lambda () (f)))) (f))");
  // letrec becomes let of undefined + set!.
  EXPECT_NE(Out.find("#<undefined>"), std::string::npos) << Out;
  EXPECT_NE(Out.find("(set! f"), std::string::npos) << Out;
}

TEST_F(CompilerTest, ExpandNamedLet) {
  std::string Out = expand("(let loop ((i 0)) (loop (+ i 1)))");
  EXPECT_NE(Out.find("lambda"), std::string::npos);
  EXPECT_NE(Out.find("set! loop"), std::string::npos) << Out;
}

TEST_F(CompilerTest, ExpandQuasiquote) {
  EXPECT_EQ(expand("`(a ,b)"),
            "(cons (quote a) (cons b (quote ())))");
  std::string Splice = expand("`(a ,@xs)");
  EXPECT_NE(Splice.find("append"), std::string::npos) << Splice;
}

TEST_F(CompilerTest, ExpanderSyntaxErrors) {
  EXPECT_NE(expand("(if)").find("syntax error"), std::string::npos);
  EXPECT_NE(expand("(set! 5 x)").find("syntax error"), std::string::npos);
  EXPECT_NE(expand("(lambda (x))").find("syntax error"), std::string::npos);
  EXPECT_NE(expand("(let ((x)) x)").find("syntax error"), std::string::npos);
  EXPECT_NE(expand("(lambda (1) x)").find("syntax error"),
            std::string::npos);
  EXPECT_NE(expand("(cond (else 1) (#t 2))").find("syntax error"),
            std::string::npos);
}

TEST_F(CompilerTest, FrameSizeWordPrecedesReturnPoint) {
  // For every non-tail call instruction — plain [Call ci n D] or the fused
  // [GetGlobalCall k gci ci n D] — the frame-size word D is the *last*
  // operand, so the word at the return point minus one is D, and D is at
  // least the frame header size.  This is the §3.1 invariant stack walking
  // needs, and it must hold under every fusion mask.
  std::string Err;
  for (uint32_t Mask : {0u, static_cast<uint32_t>(FuseAll)}) {
    Code *C = compileMasked("(define (g x) x)(+ (g 1) (g (g 2)))", Mask, Err);
    ASSERT_NE(C, nullptr) << Err;
    // Instrs[0] is the entry frame-size word; decoding starts at pc 1.
    EXPECT_EQ(C->frameSizeAt(1), FrameHeaderWords);
    unsigned CallsSeen = 0;
    for (uint32_t Pc = 1; Pc < C->NInstrs;) {
      Op O = static_cast<Op>(C->Instrs[Pc]);
      unsigned NOps = opOperandCount(O);
      if (O == Op::Call || O == Op::GetGlobalCall) {
        uint32_t D = C->Instrs[Pc + NOps]; // The last operand word.
        int64_t RetPc = Pc + 1 + NOps;
        EXPECT_EQ(C->frameSizeAt(RetPc), D);
        EXPECT_GE(D, 2u);
        EXPECT_LE(D, C->MaxDepth);
        ++CallsSeen;
      }
      Pc += 1 + NOps;
    }
    // All three calls to g survive either way: unfused as Call, fused as
    // GetGlobalCall (the callee is a global reference directly before the
    // call, the highest-frequency call shape).
    EXPECT_GE(CallsSeen, 3u) << "mask=" << Mask;
  }
}

TEST_F(CompilerTest, TailCallsEmitted) {
  std::string D = disasm("(define (f n) (if (zero? n) 'done (f (- n 1))))");
  // The recursive self-call inside the lambda must be a tail-call; the
  // toplevel code has no `call` into f (only def-global machinery).
  EXPECT_NE(D.find("tail-call"), std::string::npos) << D;
}

TEST_F(CompilerTest, NonTailCallsUseFrames) {
  std::string D = disasm("(define (f n) (+ 1 (f n)))");
  EXPECT_NE(D.find("frame"), std::string::npos) << D;
  EXPECT_NE(D.find("call"), std::string::npos) << D;
}

TEST_F(CompilerTest, OpenCodedPrimitives) {
  // (+ a b) compiles to the add opcode, not a procedure call.
  std::string Err;
  Code *C = compile("(define (f a b) (+ a b))", Err);
  ASSERT_NE(C, nullptr);
  // Find the inner lambda in the constants.
  const Vector *Consts = castObj<Vector>(C->Consts);
  Code *Inner = nullptr;
  for (uint32_t I = 0; I != Consts->Len; ++I)
    if (isObj<Code>(Consts->get(I)))
      Inner = castObj<Code>(Consts->get(I));
  ASSERT_NE(Inner, nullptr);
  std::string D = disassemble(Inner);
  EXPECT_NE(D.find("add"), std::string::npos) << D;
  EXPECT_EQ(D.find("get-global"), std::string::npos) << D;
}

TEST_F(CompilerTest, ShadowedPrimitiveNotOpenCoded) {
  std::string Err;
  Code *C = compile("(define (f +) (+ 1 2))", Err);
  ASSERT_NE(C, nullptr);
  const Vector *Consts = castObj<Vector>(C->Consts);
  Code *Inner = nullptr;
  for (uint32_t I = 0; I != Consts->Len; ++I)
    if (isObj<Code>(Consts->get(I)))
      Inner = castObj<Code>(Consts->get(I));
  ASSERT_NE(Inner, nullptr);
  std::string D = disassemble(Inner);
  // The shadowed + is a local; the call goes through tail-call dispatch.
  EXPECT_NE(D.find("tail-call"), std::string::npos) << D;
}

TEST_F(CompilerTest, MaxDepthCoversArgumentsAndLocals) {
  std::string Err;
  Code *C = compile("(let ((a 1) (b 2) (c 3)) (list a b c (list a b c)))",
                    Err);
  ASSERT_NE(C, nullptr) << Err;
  // Header(2) + 3 locals + inner frame(2) + args... comfortably > 7.
  EXPECT_GE(C->MaxDepth, 8u);
}

TEST_F(CompilerTest, ClosureCaptureSlots) {
  // The inner lambda captures x and y; its code gets two extra slots past
  // the parameter, reflected in MaxDepth >= 2 (header) + 1 (param) + 2.
  std::string Err;
  Code *C = compile("(define (outer x y) (lambda (z) (+ x (+ y z))))", Err);
  ASSERT_NE(C, nullptr);
  const Vector *TopConsts = castObj<Vector>(C->Consts);
  Code *Outer = nullptr;
  for (uint32_t I = 0; I != TopConsts->Len; ++I)
    if (isObj<Code>(TopConsts->get(I)))
      Outer = castObj<Code>(TopConsts->get(I));
  ASSERT_NE(Outer, nullptr);
  const Vector *OuterConsts = castObj<Vector>(Outer->Consts);
  Code *Inner = nullptr;
  for (uint32_t I = 0; I != OuterConsts->Len; ++I)
    if (isObj<Code>(OuterConsts->get(I)))
      Inner = castObj<Code>(OuterConsts->get(I));
  ASSERT_NE(Inner, nullptr);
  EXPECT_GE(Inner->MaxDepth, 2u + 1u + 2u);
  std::string D = disassemble(Outer);
  EXPECT_NE(D.find("make-closure"), std::string::npos) << D;
}

TEST_F(CompilerTest, ConstantsDeduplicated) {
  std::string Err;
  Code *C = compile("(list 'a 'a 'a 1 1 1)", Err);
  ASSERT_NE(C, nullptr);
  const Vector *Consts = castObj<Vector>(C->Consts);
  unsigned As = 0, Ones = 0;
  for (uint32_t I = 0; I != Consts->Len; ++I) {
    Value V = Consts->get(I);
    if (isObj<Symbol>(V) && castObj<Symbol>(V)->name() == "a")
      ++As;
    if (V.isFixnum() && V.asFixnum() == 1)
      ++Ones;
  }
  EXPECT_EQ(As, 1u);
  EXPECT_EQ(Ones, 1u);
}

TEST_F(CompilerTest, CompileErrors) {
  std::string Err;
  EXPECT_EQ(compile("(lambda (x) (define y 1) 2 (define z 2) z)", Err),
            nullptr);
  Err.clear();
  EXPECT_EQ(compile("(set! (f) 3)", Err), nullptr);
}

TEST_F(CompilerTest, DisassemblerOutput) {
  std::string D = disasm("(if #t 1 2)");
  EXPECT_NE(D.find("jump-if-false"), std::string::npos) << D;
  EXPECT_NE(D.find("const"), std::string::npos);
  EXPECT_NE(D.find("return"), std::string::npos);
  EXPECT_NE(D.find("maxdepth="), std::string::npos);
}
