// Tiny-segment soak: the continuation, dynamic-wind, engine and scheduler
// suites' core programs re-run with segments so small (32 words, 16-word
// copy bound) that every non-trivial call overflows, every capture spans
// multiple segments, and every multi-shot reinstatement splits.  Any
// off-by-one in the boundary arithmetic that big segments would hide
// surfaces here — across every overflow-policy x promotion-strategy
// combination.

#include "osc.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace osc;

namespace {

struct Combo {
  const char *Name;
  OverflowPolicy Overflow;
  PromotionStrategy Promotion;
};

const Combo Combos[] = {
    {"oneshot-linear", OverflowPolicy::OneShot, PromotionStrategy::Linear},
    {"oneshot-sharedflag", OverflowPolicy::OneShot,
     PromotionStrategy::SharedFlag},
    {"multishot-linear", OverflowPolicy::MultiShot,
     PromotionStrategy::Linear},
    {"multishot-sharedflag", OverflowPolicy::MultiShot,
     PromotionStrategy::SharedFlag},
};

struct Program {
  const char *Name;
  const char *Source;
  const char *Expect;
};

// Drawn from test_continuations / test_dynamic_wind / test_engines /
// test_scheduler: every control shape those suites pin, in miniature.
const Program Programs[] = {
    // Continuations.
    {"deep-recursion",
     "(define (deep n) (if (zero? n) 0 (+ 1 (deep (- n 1))))) (deep 600)",
     "600"},
    {"escape-upward",
     "(call/cc (lambda (k) (+ 1 (k 'escaped) 1000)))", "escaped"},
    {"oneshot-escape",
     "(call/1cc (lambda (return)"
     "  (let loop ((i 0))"
     "    (if (= (* i i) 144) (return i) (loop (+ i 1))))))",
     "12"},
    {"reentrant-callcc",
     "(define k #f) (define n 0)"
     "(define (deep d) (if (zero? d) (call/cc (lambda (c) (set! k c) 0))"
     "                     (+ 1 (deep (- d 1)))))"
     "(define r (deep 80)) (set! n (+ n 1))"
     "(if (< n 4) (k 0) (list r n))",
     "(80 4)"},
    {"generator",
     "(define resume #f)"
     "(define (gen consume)"
     "  (for-each (lambda (x)"
     "              (set! consume (call/cc (lambda (r)"
     "                                       (set! resume r)"
     "                                       (consume x)))))"
     "            '(1 2 3))"
     "  (consume 'done))"
     "(define (next)"
     "  (call/cc (lambda (k) (if resume (resume k) (gen k)))))"
     "(list (next) (next) (next) (next))",
     "(1 2 3 done)"},
    {"coroutine-transfer",
     "(define producer-k #f) (define consumer-k #f) (define out '())"
     "(define (yield v)"
     "  (call/1cc (lambda (k) (set! producer-k k) (consumer-k v))))"
     "(define (producer) (yield 'a) (yield 'b) (consumer-k 'eos))"
     "(define (next)"
     "  (call/1cc (lambda (k)"
     "    (set! consumer-k k)"
     "    (if producer-k (producer-k #f) (producer)))))"
     "(let loop ()"
     "  (let ((v (next)))"
     "    (if (eq? v 'eos) (reverse out)"
     "        (begin (set! out (cons v out)) (loop)))))",
     "(a b)"},
    {"oneshot-then-promote",
     "(define k1 #f) (define km #f) (define n 0)"
     "(define (inner)"
     "  (%call/1cc (lambda (c) (set! k1 c)"
     "    (+ 100 (%call/cc (lambda (m) (set! km m) 0))))))"
     "(define r (inner))"
     "(set! n (+ n 1))"
     "(if (< n 3) (km n) (list r n))",
     "(102 3)"},
    {"shot-detection",
     "(define k #f)"
     "(car (list (call/1cc (lambda (c) (set! k c) (c 'once)))))"
     "(k 'twice)",
     "error: one-shot continuation invoked a second time"},
    {"deep-capture-deep-reinstate",
     "(define k #f) (define n 0)"
     "(define (deep d) (if (zero? d) (call/cc (lambda (c) (set! k c) 0))"
     "                     (+ 1 (deep (- d 1)))))"
     "(define first (deep 120))"
     "(set! n (+ n 1))"
     "(if (< n 3) (k 0) (list first n))",
     "(120 3)"},
    // dynamic-wind.
    {"wind-normal",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(define r (dynamic-wind (lambda () (note 'before))"
     "                        (lambda () (note 'during) 42)"
     "                        (lambda () (note 'after))))"
     "(list r (reverse log))",
     "(42 (before during after))"},
    {"wind-escape",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(call/cc (lambda (k)"
     "  (dynamic-wind (lambda () (note 'in))"
     "                (lambda () (k 'jumped))"
     "                (lambda () (note 'out)))))"
     "(reverse log)",
     "(in out)"},
    {"wind-reenter",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(define k #f) (define n 0)"
     "(dynamic-wind"
     "  (lambda () (note 'in))"
     "  (lambda () (call/cc (lambda (c) (set! k c))) (set! n (+ n 1)))"
     "  (lambda () (note 'out)))"
     "(if (< n 3) (k #f) (reverse log))",
     "(in out in out in out)"},
    {"wind-nested",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(dynamic-wind"
     "  (lambda () (note 'o-in))"
     "  (lambda () (dynamic-wind (lambda () (note 'i-in))"
     "                           (lambda () 'body)"
     "                           (lambda () (note 'i-out))))"
     "  (lambda () (note 'o-out)))"
     "(reverse log)",
     "(o-in i-in i-out o-out)"},
    // Engines.
    {"engine-completes",
     "(define e (make-engine (lambda () (+ 40 2))))"
     "(e 1000 (lambda (left result) result) (lambda (e2) 'expired))",
     "42"},
    {"engine-expire-resume",
     "(define (fib n)"
     "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
     "(define (drive eng)"
     "  (eng 40"
     "       (lambda (left r) r)"
     "       (lambda (e2) (drive e2))))"
     "(drive (make-engine (lambda () (fib 10))))",
     "55"},
    // Scheduler.
    {"sched-two-threads",
     "(define t1 (spawn (lambda () (* 6 7))))"
     "(define t2 (spawn (lambda () 'second)))"
     "(scheduler-run)"
     "(list (thread-join t1) (thread-join t2))",
     "(42 second)"},
    {"sched-yield-interleave",
     "(define out '())"
     "(define (worker tag)"
     "  (lambda ()"
     "    (let loop ((i 0))"
     "      (if (= i 3) 'done"
     "          (begin (set! out (cons (cons tag i) out))"
     "                 (yield)"
     "                 (loop (+ i 1)))))))"
     "(spawn (worker 'a))"
     "(spawn (worker 'b))"
     "(scheduler-run)"
     "(reverse out)",
     "((a . 0) (b . 0) (a . 1) (b . 1) (a . 2) (b . 2))"},
    {"sched-preemptive",
     "(define (spin n) (if (zero? n) 'done (spin (- n 1))))"
     "(spawn (lambda () (spin 500)))"
     "(spawn (lambda () (spin 500)))"
     "(scheduler-run 40)",
     "2"},
    {"sched-channel",
     "(define ch (make-channel 0))"
     "(spawn (lambda () (channel-send! ch 'ping) (channel-send! ch 'pong)))"
     "(define got '())"
     "(spawn (lambda ()"
     "         (set! got (list (channel-recv ch) (channel-recv ch)))))"
     "(scheduler-run)"
     "got",
     "(ping pong)"},
    // A thread parked on I/O while its continuation spans several split
    // 32-word segments: the one-shot resume must reinstate it
    // byte-identically (the +1 tower proves every frame survived).
    {"io-park-deep",
     "(define p (open-pipe))"
     "(define rd (car p)) (define wr (cdr p))"
     "(define (deep n)"
     "  (if (zero? n)"
     "      (string-length (io-read-line rd))"
     "      (+ 1 (deep (- n 1)))))"
     "(define t (spawn (lambda () (deep 40))))"
     "(spawn (lambda () (io-write wr \"hello\n\")))"
     "(scheduler-run)"
     "(thread-join t)",
     "45"},
    {"io-pipe-lines",
     "(define p (open-pipe))"
     "(define rd (car p)) (define wr (cdr p))"
     "(define got '())"
     "(define t (spawn (lambda ()"
     "  (let loop ()"
     "    (let ((l (io-read-line rd)))"
     "      (if (eof-object? l) (reverse got)"
     "          (begin (set! got (cons l got)) (loop))))))))"
     "(spawn (lambda ()"
     "  (io-write wr \"alpha\n\") (yield)"
     "  (io-write wr \"beta\n\") (io-close wr)))"
     "(scheduler-run)"
     "(thread-join t)",
     "(\"alpha\" \"beta\")"},
    {"io-channel-close",
     "(define ch (make-channel 2))"
     "(channel-send! ch 'x)"
     "(define drained '())"
     "(spawn (lambda ()"
     "  (let loop ()"
     "    (let ((v (channel-recv ch)))"
     "      (if (eof-object? v) 'done"
     "          (begin (set! drained (cons v drained)) (loop)))))))"
     "(spawn (lambda () (channel-send! ch 'y) (channel-close! ch)))"
     "(scheduler-run)"
     "(list drained (channel-closed? ch))",
     "((y x) #t)"},
    {"deadline-timeout",
     // The timeout escape crosses the poisoned park: with 32-word
     // segments the with-deadline capture and the parked one-shot both
     // span segment boundaries.
     "(define ch (make-channel 0))"
     "(define t (spawn (lambda ()"
     "  (with-deadline 5 (lambda () (channel-recv ch))))))"
     "(scheduler-run)"
     "(timeout-object? (thread-join t))",
     "#t"},
    {"deadline-inside-wind",
     "(define log '())"
     "(define (note x) (set! log (cons x log)))"
     "(define ch (make-channel 0))"
     "(define t (spawn (lambda ()"
     "  (with-deadline 5 (lambda ()"
     "    (dynamic-wind (lambda () (note 'in))"
     "                  (lambda () (channel-recv ch))"
     "                  (lambda () (note 'out))))))))"
     "(scheduler-run)"
     "(list (timeout-object? (thread-join t)) (reverse log))",
     "(#t (in out))"},
    {"deadline-vs-channel-close-race",
     "(define ch (make-channel 0))"
     "(define out '())"
     "(define t (spawn (lambda ()"
     "  (let ((r (with-deadline 1000 (lambda () (channel-recv ch)))))"
     "    (set! out (list (timeout-object? r) (eof-object? r)))))))"
     "(spawn (lambda () (channel-close! ch)))"
     "(scheduler-run)"
     "out",
     "(#f #t)"},
    // Delimited control (src/control): with 32-word segments the extent
    // between reset and shift overflows many times, so the capture-to-mark
    // cut walks a chain of several members and the splice relinks them all.
    {"delim-capture-across-segments",
     "(define (deep n)"
     "  (if (zero? n) (shift 'p k (+ 1000 (k 0))) (+ 1 (deep (- n 1)))))"
     "(reset 'p (deep 60))",
     "1060"},
    {"delim-generator-deep-yields",
     // Each yield cuts a slice whose members span segment boundaries; each
     // next splices them back.  The +1 towers prove every frame survived
     // both directions, repeatedly.
     "(define g (make-generator"
     "  (lambda (v)"
     "    (define (deep n) (if (zero? n) (yield 'mark) (+ 1 (deep (- n 1)))))"
     "    (yield (list (deep 40) (deep 50))))))"
     "(generator-next g)"
     "(generator-next g 0)"
     "(generator-next g 0)",
     "(40 50)"},
    {"delim-nested-resets-deep",
     // An outer-tag shift from under an inner delimiter, both extents deep
     // enough to overflow: the cut must pass straight through the inner
     // prompt's stub frame and mark.
     "(define (deep n f)"
     "  (if (zero? n) (f) (+ 1 (deep (- n 1) f))))"
     "(reset 'outer"
     "  (deep 30 (lambda ()"
     "    (reset 'inner"
     "      (deep 30 (lambda ()"
     "        (shift 'outer k (k 0))))))))",
     "60"},
    // Effect handlers under the same duress: each perform cuts a
    // multi-segment slice to the handler's mark; the resume splices it
    // back with every frame intact.
    {"handler-resume-across-segments",
     "(define (deep n)"
     "  (if (zero? n) (perform 'h 'get) (+ 1 (deep (- n 1)))))"
     "(with-handler 'h ((get k) (k 1000))"
     "  (deep 60))",
     "1060"},
    {"handler-abort-across-segments",
     // The abort unwinds 50 overflowed frames plus a dynamic-wind; the
     // after-thunk must run exactly once on the way to the clause.
     "(define hits 0)"
     "(define (deep n)"
     "  (if (zero? n) (perform 'h 'bail 'gone) (+ 1 (deep (- n 1)))))"
     "(define r (with-handler 'h ((bail k v) v)"
     "  (dynamic-wind"
     "    (lambda () #f)"
     "    (lambda () (deep 50))"
     "    (lambda () (set! hits (+ hits 1))))))"
     "(list r hits)",
     "(gone 1)"},
    {"handler-repeated-deep-performs",
     // Deep mode re-establishes the handler on every splice; five rounds
     // of 40-frame cut/splice cycles must all line up.
     "(define (deep n)"
     "  (if (zero? n) (perform 'c 'tick) (+ 1 (deep (- n 1)))))"
     "(with-handler 'c ((tick k) (k 0))"
     "  (let loop ((i 0) (acc 0))"
     "    (if (= i 5) acc (loop (+ i 1) (+ acc (deep 40))))))",
     "200"},
    {"nursery-cancels-deep-parked-children",
     // Each child parks at the bottom of a 40-frame recursion spanning
     // many 32-word segments; cancellation poisons the parked one-shot
     // without ever walking or copying those segments.
     "(define ch (make-channel 0))"
     "(define (deep n)"
     "  (if (zero? n) (channel-recv ch) (+ 1 (deep (- n 1)))))"
     "(define kids '())"
     "(spawn (lambda ()"
     "  (nursery"
     "   (set! kids (cons (spawn (lambda () (deep 40))) kids))"
     "   (set! kids (cons (spawn (lambda () (deep 40))) kids))"
     "   (yield))))"
     "(scheduler-run)"
     "(map thread-join (reverse kids))",
     "(cancelled cancelled)"},
    // Regex streaming under the same duress.  The natives never park, but
    // the threads and generators that drive them do — with 32-word
    // segments every chunk handoff crosses split segments.
    {"regex-stream-deep-feeder",
     // The feeder sits at the bottom of a 40-frame tower when it parks on
     // the channel; each resume reinstates the tower, then feeds.
     "(define re (regex-compile \"se+k\"))"
     "(define ch (make-channel 0))"
     "(define st (regex-stream re))"
     "(define (deep n)"
     "  (if (zero? n)"
     "      (let loop ((r #f))"
     "        (let ((c (channel-recv ch)))"
     "          (if (eof-object? c) r (loop (or r (regex-stream-feed! st c))))))"
     "      (car (cons (deep (- n 1)) n))))"
     "(define t (spawn (lambda () (deep 40))))"
     "(spawn (lambda ()"
     "  (for-each (lambda (c) (channel-send! ch c)) '(\"xse\" \"ee\" \"eky\"))"
     "  (channel-close! ch)))"
     "(scheduler-run)"
     "(thread-join t)",
     "(1 . 7)"},
    {"regex-generator-verdicts",
     // A generator feeds byte-at-a-time chunks and yields each interim
     // verdict; every yield/next is a cut/splice over tiny segments.
     "(define re (regex-compile \"ab*c$\"))"
     "(define g (make-generator"
     "  (lambda (chunks)"
     "    (let ((st (regex-stream re)))"
     "      (for-each (lambda (c) (yield (regex-stream-feed! st c))) chunks)"
     "      (yield (regex-stream-end! st))))))"
     "(let loop ((v (generator-next g '(\"a\" \"b\" \"b\" \"c\")))"
     "           (acc '()))"
     "  (if (eof-object? v) (reverse acc)"
     "      (loop (generator-next g #f) (cons v acc))))",
     "(#f #f #f #f (0 . 4))"},
    {"regex-search-from-handler-clause",
     // The clause runs the search, so the result rides the resume's
     // splice across segment boundaries from 30 frames down.
     "(define re (regex-compile \"n[0-9]+\"))"
     "(define (deep n text)"
     "  (if (zero? n) (perform 'rx 'scan text)"
     "      (car (cons (deep (- n 1) text) n))))"
     "(with-handler 'rx ((scan k text) (k (regex-search re text)))"
     "  (list (deep 30 \"abn42z\") (deep 30 \"none\")))",
     "((2 . 5) #f)"},
};

class TinySegments
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {
protected:
  static Config config(const Combo &Cb) {
    Config C;
    C.SegmentWords = 32;
    C.InitialSegmentWords = 64;
    C.CopyBoundWords = 16;
    C.Overflow = Cb.Overflow;
    C.Promotion = Cb.Promotion;
    return C;
  }
};

TEST_P(TinySegments, SameResultAsBigSegments) {
  auto [ProgIdx, ComboIdx] = GetParam();
  const Program &P = Programs[ProgIdx];
  Interp I(config(Combos[ComboIdx]));
  EXPECT_EQ(I.evalToString(P.Source), P.Expect)
      << P.Name << " under " << Combos[ComboIdx].Name;
}

std::string tinyName(
    const ::testing::TestParamInfo<std::tuple<size_t, size_t>> &Info) {
  auto [ProgIdx, ComboIdx] = Info.param;
  std::string N =
      std::string(Programs[ProgIdx].Name) + "_" + Combos[ComboIdx].Name;
  for (char &C : N)
    if (C == '-')
      C = '_';
  return N;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, TinySegments,
    ::testing::Combine(::testing::Range<size_t>(0, std::size(Programs)),
                       ::testing::Range<size_t>(0, std::size(Combos))),
    tinyName);

TEST(TinySegmentsSoak, SegmentsActuallyChurn) {
  // Sanity: the tiny configuration really does exercise the machinery —
  // a run that never overflowed would make the whole suite vacuous.
  Config C;
  C.SegmentWords = 32;
  C.InitialSegmentWords = 64;
  C.CopyBoundWords = 16;
  Interp I(C);
  ASSERT_EQ(I.evalToString("(define (deep n) (if (zero? n) 0 "
                           "(+ 1 (deep (- n 1))))) (deep 600)"),
            "600");
  EXPECT_GT(I.stats().Overflows, 10u);
  EXPECT_GT(I.stats().Underflows, 10u);
}

} // namespace
