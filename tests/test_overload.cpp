// Deadline-aware overload protection, bottom to top: timed parks on the
// reactor's deadline wheel (with-deadline, io-set-deadline!), timeout
// delivery by poisoning the parked one-shot — cancellation must copy
// zero stack words — bounded output buffering with a hard drop, admission
// control with fast BUSY shedding, idle-connection reaping over real
// sockets, and worker-crash auto-restart in the pool (the handoff queue
// and its queued fds survive the shard's Interp).  Every scenario is
// gated on the new counters: Timeouts, ConnsReaped, RequestsShed,
// WorkerRestarts.
//
// Registered under the ctest label "serve".

#include "osc.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace osc;

namespace {

std::string ask(Client &C, const std::string &Line) {
  std::string Reply;
  if (!C.request(Line, Reply))
    return "<no reply>";
  return Reply;
}

template <typename PredT> bool spinUntil(PredT Pred, int TimeoutMs = 10000) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(TimeoutMs);
  while (!Pred()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

} // namespace

// --- with-deadline: the trappable timeout ------------------------------------

TEST(Overload, WithDeadlineTimesOutZeroCopy) {
  // A channel nobody sends on: the recv parks forever, the deadline wheel
  // fires, and the cancellation consumes the parked one-shot by poisoning
  // it — the acceptance criterion is that this copies zero stack words.
  Interp I;
  Stats::Snapshot B = I.snapshot();
  EXPECT_EQ(I.evalToString(
                "(define ch (make-channel 0))"
                "(define t (spawn (lambda ()"
                "  (with-deadline 5 (lambda () (channel-recv ch))))))"
                "(scheduler-run)"
                "(timeout-object? (thread-join t))"),
            "#t");
  Stats::Snapshot A = I.snapshot();
  EXPECT_EQ(A.Timeouts - B.Timeouts, 1u);
  EXPECT_EQ(A.WordsCopied - B.WordsCopied, 0u);
}

TEST(Overload, WithDeadlineDisarmsOnNormalReturn) {
  Interp I;
  Stats::Snapshot B = I.snapshot();
  EXPECT_EQ(I.evalToString(
                "(define t (spawn (lambda ()"
                "  (with-deadline 1000 (lambda () (+ 40 2))))))"
                "(scheduler-run)"
                "(thread-join t)"),
            "42");
  Stats::Snapshot A = I.snapshot();
  EXPECT_EQ(A.Timeouts - B.Timeouts, 0u);
}

TEST(Overload, NestedDeadlinesInnerFiresOuterSurvives) {
  Interp I;
  Stats::Snapshot B = I.snapshot();
  EXPECT_EQ(I.evalToString(
                "(define ch (make-channel 0))"
                "(define t (spawn (lambda ()"
                "  (with-deadline 1000 (lambda ()"
                "    (let ((r (with-deadline 5 (lambda () (channel-recv ch)))))"
                "      (list (timeout-object? r) 'outer-alive)))))))"
                "(scheduler-run)"
                "(thread-join t)"),
            "(#t outer-alive)");
  Stats::Snapshot A = I.snapshot();
  EXPECT_EQ(A.Timeouts - B.Timeouts, 1u);
}

TEST(Overload, WithDeadlineRunsWindAfterThunks) {
  // The escape rides the winders-aware continuation, so a timeout fired
  // mid-dynamic-wind unwinds like any other escape.
  Interp I;
  EXPECT_EQ(I.evalToString(
                "(define log '())"
                "(define (note x) (set! log (cons x log)))"
                "(define ch (make-channel 0))"
                "(define t (spawn (lambda ()"
                "  (with-deadline 5 (lambda ()"
                "    (dynamic-wind (lambda () (note 'in))"
                "                  (lambda () (channel-recv ch))"
                "                  (lambda () (note 'out))))))))"
                "(scheduler-run)"
                "(list (timeout-object? (thread-join t)) (reverse log))"),
            "(#t (in out))");
}

TEST(Overload, WithDeadlineCoversIoParks) {
  // Same wheel, different waiter: a read parked on a pipe that never
  // produces a byte.
  Interp I;
  Stats::Snapshot B = I.snapshot();
  EXPECT_EQ(I.evalToString(
                "(define p (open-pipe))"
                "(define t (spawn (lambda ()"
                "  (with-deadline 5 (lambda () (io-read-line (car p)))))))"
                "(scheduler-run)"
                "(timeout-object? (thread-join t))"),
            "#t");
  Stats::Snapshot A = I.snapshot();
  EXPECT_EQ(A.Timeouts - B.Timeouts, 1u);
  EXPECT_EQ(A.WordsCopied - B.WordsCopied, 0u);
}

// --- Slow-client defense -----------------------------------------------------

TEST(Overload, PortDeadlineReapsSilentPeer) {
  // io-set-deadline! with no with-deadline armed: expiry drops the
  // connection (io-drop) rather than raising — the parked reader wakes
  // with EOF and unwinds normally.
  Interp I;
  Stats::Snapshot B = I.snapshot();
  EXPECT_EQ(I.evalToString(
                "(define p (open-pipe))"
                "(io-set-deadline! (car p) 5)"
                "(define t (spawn (lambda () (io-read-line (car p)))))"
                "(scheduler-run)"
                "(eof-object? (thread-join t))"),
            "#t");
  Stats::Snapshot A = I.snapshot();
  EXPECT_EQ(A.Timeouts - B.Timeouts, 1u);
  EXPECT_EQ(A.ConnsReaped - B.ConnsReaped, 1u);
  EXPECT_EQ(A.WordsCopied - B.WordsCopied, 0u);
}

TEST(Overload, OutputCapDropsConnection) {
  // A write that would push buffered-but-unsent output past the cap drops
  // the port and returns #f instead of buffering without bound.
  Config C;
  C.MaxOutputBufferBytes = 1024;
  Interp I(C);
  Stats::Snapshot B = I.snapshot();
  EXPECT_EQ(I.evalToString(
                "(define (grow s n)"
                "  (if (zero? n) s (grow (string-append s s) (- n 1))))"
                "(define chunk (grow \"x\" 11))" // 2048 bytes > the cap
                "(define p (open-pipe))"
                "(define t (spawn (lambda ()"
                "  (if (io-write (cdr p) chunk) 'buffered 'dropped))))"
                "(scheduler-run)"
                "(thread-join t)"),
            "dropped");
  Stats::Snapshot A = I.snapshot();
  EXPECT_EQ(A.ConnsReaped - B.ConnsReaped, 1u);
}

TEST(Overload, ServerReapsSlowClient) {
  // A client that connects and never sends a byte: the per-connection
  // deadline reaps it and the client sees the close as EOF.
  ServeOptions O;
  O.ConnDeadlineMs = 30;
  Server S(O);
  ASSERT_TRUE(S.start()) << S.error();
  Client Slow;
  std::string E;
  ASSERT_TRUE(Slow.connect(S.tcpPort(), E)) << E;
  std::string Reply;
  EXPECT_FALSE(Slow.recvLine(Reply, /*TimeoutMs=*/10000));
  Slow.close();
  // A well-behaved client is still served afterwards.
  Client C;
  ASSERT_TRUE(C.connect(S.tcpPort(), E)) << E;
  EXPECT_EQ(ask(C, "PING"), "PONG");
  C.close();
  S.stop();
  ASSERT_TRUE(S.result().Ok) << S.result().Error;
  Stats::Snapshot D = S.snapshot() - S.baseline();
  EXPECT_GE(D.ConnsReaped, 1u);
  EXPECT_GE(D.Timeouts, 1u);
}

// --- Admission control -------------------------------------------------------

TEST(Overload, ServerShedsPastMaxConns) {
  ServeOptions O;
  O.MaxConns = 1;
  Server S(O);
  ASSERT_TRUE(S.start()) << S.error();
  Client Held;
  std::string E;
  ASSERT_TRUE(Held.connect(S.tcpPort(), E)) << E;
  // Round-trip so the connection is admitted (not just accepted) before
  // the next one arrives.
  EXPECT_EQ(ask(Held, "PING"), "PONG");
  // Every arrival past the cap gets the fast BUSY line and a close.
  for (int K = 0; K < 3; ++K) {
    Client B;
    ASSERT_TRUE(B.connect(S.tcpPort(), E)) << E;
    std::string Reply;
    ASSERT_TRUE(B.recvLine(Reply)) << "shed client " << K;
    EXPECT_EQ(Reply, "BUSY");
    EXPECT_FALSE(B.recvLine(Reply)); // and nothing more: closed.
    B.close();
  }
  // The held connection still works, and its own QUIT shuts down cleanly
  // (stop()'s QUIT connection would be shed while Held is live).
  EXPECT_EQ(ask(Held, "QUIT"), "BYE");
  Held.close();
  S.wait();
  ASSERT_TRUE(S.result().Ok) << S.result().Error;
  Stats::Snapshot D = S.snapshot() - S.baseline();
  EXPECT_EQ(D.RequestsShed, 3u);
  EXPECT_EQ(D.RequestsServed, 1u);
}

TEST(Overload, PoolShedsPastMaxConns) {
  // Same admission logic, shard-local: the worker programs share the
  // protocol core.  Direct handoff makes the arrival order — and with it
  // the shed count — fully deterministic.
  ServeOptions O;
  O.Workers = 1;
  O.MaxConns = 1;
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  ASSERT_TRUE(P.handoff(0, Sp[0]).ok());
  Client Held;
  Held.adopt(Sp[1]);
  EXPECT_EQ(ask(Held, "PING"), "PONG"); // admitted, occupying the slot
  for (int K = 0; K < 3; ++K) {
    int Bp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Bp), 0);
    ASSERT_TRUE(P.handoff(0, Bp[0]).ok());
    Client B;
    B.adopt(Bp[1]);
    std::string Reply;
    ASSERT_TRUE(B.recvLine(Reply)) << "shed conn " << K;
    EXPECT_EQ(Reply, "BUSY");
    EXPECT_FALSE(B.recvLine(Reply));
    B.close();
  }
  Held.close();
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  Stats::Snapshot D = P.snapshot(0) - P.baseline(0);
  EXPECT_EQ(D.RequestsShed, 3u);
  EXPECT_EQ(D.RequestsServed, 1u);
}

// --- Worker restart ----------------------------------------------------------

namespace {

// A deliberately fragile shard program: CRASH kills the whole worker
// Interp mid-connection; anything else is answered OK.  Used to prove
// the pool stands a fresh Interp on the surviving handoff queue.
const char *FragileWorker = R"scheme(
(define (worker-loop)
  (let ((conn (io-take-conn)))
    (if (eof-object? conn)
        'closed
        (let ((line (io-read-line conn)))
          (if (and (string? line) (string=? line "CRASH"))
              (car 'boom)
              (begin
                (if (string? line) (io-write conn "OK\n"))
                (io-close conn)
                (worker-loop)))))))
(spawn worker-loop)
(scheduler-run)
)scheme";

} // namespace

TEST(Overload, PoolRestartsCrashedWorkerAndDrainsQueue) {
  ServeOptions O;
  O.Workers = 1;
  O.Program = FragileWorker;
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();

  // Queue three connections up front: the first crashes the shard, the
  // other two are still sitting in the handoff queue when it dies and
  // must be served by the restarted Interp.
  int Sp[3][2];
  Client Cs[3];
  for (int K = 0; K < 3; ++K) {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp[K]), 0);
    Cs[K].adopt(Sp[K][1]);
  }
  ASSERT_TRUE(Cs[0].sendLine("CRASH"));
  ASSERT_TRUE(Cs[1].sendLine("hello"));
  ASSERT_TRUE(Cs[2].sendLine("hello"));
  for (int K = 0; K < 3; ++K)
    ASSERT_TRUE(P.handoff(0, Sp[K][0]).ok()) << "conn " << K;

  // The crashed connection dies with its Interp (EOF, no reply) …
  std::string Reply;
  EXPECT_FALSE(Cs[0].recvLine(Reply));
  // … and the queued ones drain into the fresh Interp.
  ASSERT_TRUE(Cs[1].recvLine(Reply));
  EXPECT_EQ(Reply, "OK");
  ASSERT_TRUE(Cs[2].recvLine(Reply));
  EXPECT_EQ(Reply, "OK");
  for (Client &C : Cs)
    C.close();

  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();
  Stats::Snapshot D = P.snapshot(0) - P.baseline(0);
  EXPECT_EQ(D.WorkerRestarts, 1u);
  // Restart accounting keeps the shard's counters continuous: all three
  // accepted connections are closed by the time the pool stops.
  EXPECT_GE(D.AcceptedConnections, 3u);
  EXPECT_GE(D.ConnectionsClosed, 3u);
}

TEST(Overload, PoolGivesUpAfterMaxRestarts) {
  ServeOptions O;
  O.Workers = 1;
  O.MaxWorkerRestarts = 2;
  O.Program = "(car 'boom)";
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();
  // The shard crashes on every (re)start and is eventually given up on.
  // (Observed through the counters — result() is only valid after stop.)
  ASSERT_TRUE(spinUntil(
      [&] { return (P.snapshot(0) - P.baseline(0)).WorkerRestarts >= 2; }));
  P.stop();
  EXPECT_FALSE(P.error().ok());
  EXPECT_EQ(P.error().Kind, ErrorKind::Runtime);
  Stats::Snapshot D = P.snapshot(0) - P.baseline(0);
  EXPECT_EQ(D.WorkerRestarts, 2u);
}

// --- The acceptance scenario -------------------------------------------------

TEST(Overload, PoolShedsAndReapsUnderMixedLoad) {
  // One silent slow client per shard plus 64 fast clients across a
  // 4-worker pool: every slow client is reaped by the per-connection
  // deadline, every fast client is served, and the books balance
  // per shard.
  constexpr int Workers = 4;
  constexpr int Fast = 64;
  ServeOptions O;
  O.Workers = Workers;
  // Long enough that no fast client's park ever expires before its PING
  // (or our close) arrives, even on a loaded CI box; the slow clients
  // pay the full deadline, nobody else comes near it.
  O.ConnDeadlineMs = 500;
  Pool P(O);
  ASSERT_TRUE(P.start()) << P.error();

  Client Slow[Workers];
  for (int W = 0; W < Workers; ++W) {
    int Sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
    ASSERT_TRUE(P.handoff(W, Sp[0]).ok());
    Slow[W].adopt(Sp[1]);
  }
  std::vector<Client> CsFast(Fast);
  std::string E;
  for (int K = 0; K < Fast; ++K)
    ASSERT_TRUE(CsFast[K].connect(P.tcpPort(), E)) << "client " << K;
  for (int K = 0; K < Fast; ++K)
    ASSERT_TRUE(CsFast[K].sendLine("PING"));
  for (int K = 0; K < Fast; ++K) {
    std::string Reply;
    ASSERT_TRUE(CsFast[K].recvLine(Reply)) << "client " << K;
    EXPECT_EQ(Reply, "PONG") << "client " << K;
  }
  // Close the fast clients before sitting out the slow clients' deadline,
  // so their idle (re-armed) parks see EOF long before they could expire.
  for (Client &C : CsFast)
    C.close();
  // Every silent client is reaped: the drop surfaces as EOF client-side.
  for (int W = 0; W < Workers; ++W) {
    std::string Reply;
    EXPECT_FALSE(Slow[W].recvLine(Reply)) << "slow client " << W;
    Slow[W].close();
  }
  P.stop();
  ASSERT_TRUE(P.error().ok()) << P.error();

  Stats::Snapshot Total = P.snapshot() - P.baseline();
  EXPECT_EQ(Total.RequestsServed, static_cast<uint64_t>(Fast));
  EXPECT_EQ(Total.ConnsReaped, static_cast<uint64_t>(Workers));
  EXPECT_GE(Total.Timeouts, static_cast<uint64_t>(Workers));
  for (int W = 0; W < Workers; ++W) {
    Stats::Snapshot D = P.snapshot(W) - P.baseline(W);
    EXPECT_EQ(D.ConnsReaped, 1u) << "worker " << W; // its own slow client
    EXPECT_EQ(D.WordsCopied, 0u) << "worker " << W; // reaping included
  }
}

// --- Reap tears down the connection's task tree ------------------------------

TEST(Overload, ReapedConnectionCancelsItsTaskTree) {
  // The serving shape in miniature, deterministic end to end: a conn
  // thread owns a nursery, every in-flight "request" is a child parked on
  // a channel (one behind a sub-scope of its own), and the connection's
  // read is deadlined.  The reactor wakes the read with EOF, the conn
  // thread unwinds, and the scope exit cancels the whole tree — innermost
  // scope first, spawn order within each — with zero stack words copied
  // and a byte-identical trace across runs.
  auto Run = [](std::string &Dump, Stats::Snapshot &Delta) {
    Interp I;
    Stats::Snapshot B = I.snapshot();
    I.trace().start();
    auto R = I.eval(
        "(define ch (make-channel 0))"
        "(define p (open-pipe))"
        "(io-set-deadline! (car p) 5)"
        "(define line 'unset)"
        "(spawn (lambda ()"
        "  (nursery"
        "   (spawn (lambda () (channel-recv ch)))"
        "   (spawn (lambda () (channel-recv ch)))"
        "   (spawn (lambda ()"
        "     (nursery"
        "      (spawn (lambda () (channel-recv ch)))"
        "      (channel-recv ch))))"
        "   (set! line (io-read-line (car p))))))"
        "(scheduler-run)"
        "(eof-object? line)");
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(I.valueToString(R.Val), "#t");
    I.trace().stop();
    Dump = I.trace().toString();
    Delta = I.snapshot() - B;
  };
  std::string A, B;
  Stats::Snapshot DA, DB;
  Run(A, DA);
  if (::testing::Test::HasFatalFailure())
    return;
  Run(B, DB);
  if (::testing::Test::HasFatalFailure())
    return;
  // Three direct children plus the grandchild inside the sub-scope.
  EXPECT_EQ(DA.NurseryCancels, 4u);
  EXPECT_EQ(DA.Timeouts, 1u);
  EXPECT_EQ(DA.ConnsReaped, 1u);
  EXPECT_EQ(DA.WordsCopied, 0u);
  // Byte-identical run to run: teardown is ordered by the nursery's
  // lists and the reactor's tick clock, never by wall time.
  EXPECT_EQ(A, B) << "cancellation trace differs between identical runs";
  EXPECT_NE(A.find("io-timeout"), std::string::npos) << A;
  EXPECT_NE(A.find("nursery-cancel"), std::string::npos) << A;
}

TEST(Overload, PipelinedRequestsAllServedThenReapReclaimsTokens) {
  // The pipelined conn-loop: one connection fires five EVALs without
  // waiting, every reply comes back in order, and after the client goes
  // silent the deadline reaps the connection — the nursery scope closes
  // with no live handlers and the orphan-token drain leaves the books
  // balanced, so a later client is served normally.
  ServeOptions O;
  O.ConnDeadlineMs = 100;
  O.MaxInflight = 2;
  Server S(O);
  ASSERT_TRUE(S.start()) << S.error();
  Client C;
  std::string E;
  ASSERT_TRUE(C.connect(S.tcpPort(), E)) << E;
  for (int K = 0; K < 5; ++K)
    ASSERT_TRUE(C.sendLine("EVAL (+ " + std::to_string(K) + " 100)"));
  for (int K = 0; K < 5; ++K) {
    std::string Reply;
    ASSERT_TRUE(C.recvLine(Reply)) << "reply " << K;
    EXPECT_EQ(Reply, std::to_string(K + 100));
  }
  // Silent now: the per-connection deadline reaps us.
  std::string Reply;
  EXPECT_FALSE(C.recvLine(Reply, /*TimeoutMs=*/10000));
  C.close();
  Client C2;
  ASSERT_TRUE(C2.connect(S.tcpPort(), E)) << E;
  EXPECT_EQ(ask(C2, "PING"), "PONG");
  EXPECT_EQ(ask(C2, "QUIT"), "BYE");
  C2.close();
  S.wait();
  ASSERT_TRUE(S.result().Ok) << S.result().Error;
  Stats::Snapshot D = S.snapshot() - S.baseline();
  EXPECT_EQ(D.RequestsServed, 6u);
  EXPECT_GE(D.ConnsReaped, 1u);
}

TEST(Overload, ReapTraceIsDeterministic) {
  // Two identical reap runs produce byte-identical per-worker traces:
  // deadlines are measured on the reactor's virtual tick clock, so the
  // park → io-timeout → io-drop → io-ready sequence does not depend on
  // wall-clock jitter.
  auto Run = [](std::string &Dump) {
    ServeOptions O;
    O.Workers = 1;
    O.ConnDeadlineMs = 30;
    O.TraceWorkers = true;
    Pool P(O);
    ASSERT_TRUE(P.start()) << P.error();
    // Both startup parks (ReusePort: acceptor on the shard listener,
    // taker on take-conn) must land before the handoff, or the take
    // races between inline and park-wake and the traces diverge.
    uint64_t StartParks = P.listenMode() == ListenMode::ReusePort ? 2 : 1;
    ASSERT_TRUE(spinUntil([&] {
      return (P.snapshot(0) - P.baseline(0)).IoParks >= StartParks;
    }));
    int Sp[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
    ASSERT_TRUE(P.handoff(0, Sp[0]).ok());
    Client C;
    C.adopt(Sp[1]);
    std::string Reply;
    EXPECT_FALSE(C.recvLine(Reply)); // reaped: EOF, never a reply
    C.close();
    P.stop();
    ASSERT_TRUE(P.error().ok()) << P.error();
    Dump = P.traceDump(0);
  };
  std::string A, B;
  Run(A);
  if (::testing::Test::HasFatalFailure())
    return;
  Run(B);
  if (::testing::Test::HasFatalFailure())
    return;
  EXPECT_FALSE(A.empty());
  EXPECT_EQ(A, B) << "reap trace differs between identical runs";
  EXPECT_NE(A.find("io-timeout"), std::string::npos) << A;
  EXPECT_NE(A.find("io-drop"), std::string::npos) << A;
}
